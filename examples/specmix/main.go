// SPEC-analog mix analysis: runs every benchmark suite on the instrumented
// interpreter and reproduces the Chapter 5 observations — a handful of
// methods dominate each benchmark, and storage instructions execute almost
// entirely in resolved _Quick form.
package main

import (
	"fmt"
	"log"

	"javaflow"
)

func main() {
	for _, suite := range javaflow.Suites() {
		vm := javaflow.NewJVM()
		if err := suite.Register(vm); err != nil {
			log.Fatal(err)
		}
		if err := suite.Run(vm, 1); err != nil {
			log.Fatal(err)
		}

		p := vm.Profile
		hot := p.MethodsFor(0.90)
		fmt.Printf("%-22s %-12s %12d ops  %2d methods, %d cover 90%%\n",
			suite.Name, suite.Era, p.TotalOps(), p.MethodsExecuted(), len(hot))
		for i, ms := range p.TopMethods() {
			if i >= 3 {
				break
			}
			fmt.Printf("    %5.1f%%  %s\n", 100*ms.Share, ms.Signature)
		}
		if qs := p.QuickStats(); qs.Base+qs.Quick > 0 {
			fmt.Printf("    storage accesses: %.1f%% executed as _Quick\n",
				100*qs.QuickPercent())
		}
	}

	// Static dataflow summary across all hot methods: the no-back-merge
	// property that makes whole-method residency possible.
	var arcs, merges, backMerges int
	for _, m := range javaflow.NamedMethods() {
		an, err := javaflow.Analyze(m)
		if err != nil {
			log.Fatal(err)
		}
		arcs += len(an.Arcs)
		merges += an.Merges
		backMerges += an.BackMerges
	}
	fmt.Printf("\nstatic dataflow across %d named methods: %d arcs, %d merges, %d back merges\n",
		len(javaflow.NamedMethods()), arcs, merges, backMerges)
}
