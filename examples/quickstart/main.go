// Quickstart: assemble a small Java method, verify it, interpret it on the
// baseline JVM, then deploy it to the JavaFlow DataFlow Fabric and simulate
// its execution.
package main

import (
	"fmt"
	"log"

	"javaflow"
)

func main() {
	// int sum(int n): for (i = 0, s = 0; i < n; i++) s += i; return s;
	asm := javaflow.NewAssembler()
	asm.PushInt(0).IStore(1). // s = 0
					PushInt(0).IStore(2). // i = 0
					Label("loop").
					ILoad(2).ILoad(0).
					Branch(javaflow.OpIfIcmpge, "done").
					ILoad(1).ILoad(2).Op(javaflow.OpIadd).IStore(1).
					Iinc(2, 1).
					Branch(javaflow.OpGoto, "loop").
					Label("done").
					ILoad(1).Op(javaflow.OpIreturn)
	code, err := asm.Finish()
	if err != nil {
		log.Fatal(err)
	}

	m := &javaflow.Method{
		Name: "sum", Class: "Quickstart",
		Argc: 1, ReturnsValue: true, MaxLocals: 3,
		Code: code, Pool: javaflow.NewConstantPool(),
	}
	if err := javaflow.Verify(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d instructions, max stack %d\n\n%s\n",
		len(m.Code), m.MaxStack, javaflow.Disassemble(m.Code))

	// 1. Run it on the interpreting JVM (the baseline substrate).
	vm := javaflow.NewJVM()
	cls := javaflow.NewClass("Quickstart")
	cls.Add(m)
	if err := vm.Register(cls); err != nil {
		log.Fatal(err)
	}
	result, err := vm.Invoke(m, javaflow.Int(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter: sum(100) = %d (executed %d bytecodes)\n\n",
		result.I, vm.Profile.TotalOps())

	// 2. Deploy to each DataFlow Fabric configuration and simulate.
	fmt.Println("dataflow fabric simulation:")
	var base float64
	for _, cfg := range javaflow.Configurations() {
		machine := javaflow.NewMachine(cfg)
		dep, err := machine.Deploy(m)
		if err != nil {
			log.Fatal(err)
		}
		run, err := dep.ExecuteBoth()
		if err != nil {
			log.Fatal(err)
		}
		ipc := run.MeanIPC()
		if cfg.Name == "Baseline" {
			base = ipc
		}
		fmt.Printf("  %-10s IPC %.3f  FoM %3.0f%%  coverage %3.0f%%\n",
			cfg.Name, ipc, 100*ipc/base, 100*run.BP1.Coverage())
	}
}
