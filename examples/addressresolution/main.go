// Address resolution walkthrough: reproduces the Figure 21 simple example
// and the Figure 22 dataflow-merge example, showing how the serial-network
// needs-up protocol turns stack-oriented ByteCode into producer/consumer
// dataflow addresses — including a merge where both branch arms feed the
// same consumer side.
package main

import (
	"fmt"
	"log"

	"javaflow"
)

func deployAndDescribe(title string, m *javaflow.Method) {
	fmt.Println("=== " + title + " ===")
	machine := javaflow.NewMachine(javaflow.Configurations()[1]) // Compact10
	dep, err := machine.Deploy(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dep.DescribeResolution())
}

func main() {
	// Figure 21: receive 3 register values, add them, store to register 4.
	asm := javaflow.NewAssembler()
	asm.ILoad(1).ILoad(2).ILoad(3).
		Op(javaflow.OpIadd).Op(javaflow.OpIadd).
		IStore(4).
		Op(javaflow.OpReturn)
	code, err := asm.Finish()
	if err != nil {
		log.Fatal(err)
	}
	simple := &javaflow.Method{
		Name: "figure21", Class: "Demo", MaxLocals: 5,
		Code: code, Pool: javaflow.NewConstantPool(),
	}
	if err := javaflow.Verify(simple); err != nil {
		log.Fatal(err)
	}
	deployAndDescribe("Figure 21: simple address resolution", simple)

	// Figure 22: a dataflow merge — both arms of a conditional push the
	// value consumed at the join (side 1 of the istore receives data from
	// two producers, tagged with branch IDs during resolution).
	asm2 := javaflow.NewAssembler()
	asm2.ILoad(0).
		PushInt(10).
		Branch(javaflow.OpIfIcmpge, "else").
		ILoad(0).ILoad(0).Op(javaflow.OpImul). // then: x*x
		Branch(javaflow.OpGoto, "join").
		Label("else").
		ILoad(0).PushInt(1).Op(javaflow.OpIadd). // else: x+1
		Label("join").
		IStore(1).
		Op(javaflow.OpReturn)
	code, err = asm2.Finish()
	if err != nil {
		log.Fatal(err)
	}
	merge := &javaflow.Method{
		Name: "figure22", Class: "Demo", Argc: 1, MaxLocals: 2,
		Code: code, Pool: javaflow.NewConstantPool(),
	}
	if err := javaflow.Verify(merge); err != nil {
		log.Fatal(err)
	}
	deployAndDescribe("Figure 22: dataflow merge resolution", merge)

	// The static analyzer agrees with the distributed protocol.
	an, err := javaflow.Analyze(merge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d arcs, %d merges, %d back merges (always 0)\n",
		len(an.Arcs), an.Merges, an.BackMerges)
}
