// Heterogeneous fabric sweep: runs a population of methods through every
// machine configuration and prints the Figure-of-Merit ladder — the
// headline result that a sparse heterogeneous fabric retains roughly 40%
// of the collapsed-baseline IPC while using far simpler nodes. Also
// demonstrates the concurrent goroutine-per-node fabric agreeing with the
// deterministic resolver.
package main

import (
	"fmt"
	"log"
	"time"

	"javaflow"
)

func main() {
	// Population: the named SPEC-analog hot methods plus a slice of the
	// generated corpus.
	methods := javaflow.NamedMethods()
	for _, cls := range javaflow.GenerateMethods(7, 200) {
		for _, m := range cls.Methods {
			methods = append(methods, m)
		}
	}
	fmt.Printf("population: %d methods\n\n", len(methods))

	runner := &javaflow.Runner{MaxMeshCycles: 300_000}
	type row struct {
		name               string
		ipc, fom, par, rat float64
		n                  int
	}
	var rows []row
	var baseIPC map[string]float64

	for _, cfg := range javaflow.Configurations() {
		cr, err := runner.RunAll(cfg, methods)
		if err != nil {
			log.Fatal(err)
		}
		if cfg.Name == "Baseline" {
			baseIPC = make(map[string]float64)
			for _, run := range cr.Runs {
				baseIPC[run.Signature] = run.MeanIPC()
			}
		}
		var fomSum float64
		var fomN int
		for _, run := range cr.Runs {
			if b := baseIPC[run.Signature]; b > 0 {
				fomSum += run.MeanIPC() / b
				fomN++
			}
		}
		rows = append(rows, row{
			name: cfg.Name,
			ipc:  cr.IPCSummary().Mean,
			fom:  fomSum / float64(fomN),
			par:  cr.ParallelismMean(),
			rat:  cr.RatioSummary().Mean,
			n:    len(cr.Runs),
		})
	}

	fmt.Println("Config      n    IPC-mean  FoM    Parallel>=2  Nodes/Inst")
	for _, r := range rows {
		fmt.Printf("%-10s %4d  %.3f     %3.0f%%   %3.0f%%         %.2f\n",
			r.name, r.n, r.ipc, 100*r.fom, 100*r.par, r.rat)
	}

	// Concurrent GALS fabric: a goroutine per Instruction Node, channels
	// for the serial networks, purely local decisions.
	fmt.Println("\nconcurrent goroutine-per-node fabric (self-organizing load + resolution):")
	conc := &javaflow.ConcurrentFabric{
		Fabric:  javaflow.NewFabric(10, javaflow.PatternHetero),
		Timeout: 30 * time.Second,
	}
	for _, m := range javaflow.NamedMethods()[:5] {
		start := time.Now()
		placement, targets, err := conc.LoadAndResolve(m)
		if err != nil {
			log.Fatal(err)
		}
		nArcs := 0
		for _, ts := range targets {
			nArcs += len(ts)
		}
		fmt.Printf("  %-55s %3d insts over %3d nodes, %3d arcs resolved in %v\n",
			m.Signature(), len(m.Code), placement.MaxNode, nArcs,
			time.Since(start).Round(time.Millisecond))
	}
}
