package javaflow_test

import (
	"strings"
	"testing"

	"javaflow"
)

// buildSum assembles the quickstart method through the public API.
func buildSum(t *testing.T) *javaflow.Method {
	t.Helper()
	asm := javaflow.NewAssembler()
	asm.PushInt(0).IStore(1).
		PushInt(0).IStore(2).
		Label("loop").
		ILoad(2).ILoad(0).
		Branch(javaflow.OpIfIcmpge, "done").
		ILoad(1).ILoad(2).Op(javaflow.OpIadd).IStore(1).
		Iinc(2, 1).
		Branch(javaflow.OpGoto, "loop").
		Label("done").
		ILoad(1).Op(javaflow.OpIreturn)
	code, err := asm.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &javaflow.Method{
		Name: "sum", Class: "T", Argc: 1, ReturnsValue: true,
		MaxLocals: 3, Code: code, Pool: javaflow.NewConstantPool(),
	}
	if err := javaflow.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPublicAPIInterpreter(t *testing.T) {
	m := buildSum(t)
	vm := javaflow.NewJVM()
	cls := javaflow.NewClass("T")
	cls.Add(m)
	if err := vm.Register(cls); err != nil {
		t.Fatal(err)
	}
	got, err := vm.Invoke(m, javaflow.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 45 {
		t.Errorf("sum(10) = %d, want 45", got.I)
	}
}

func TestPublicAPIDeployAndExecute(t *testing.T) {
	m := buildSum(t)
	for _, cfg := range javaflow.Configurations() {
		machine := javaflow.NewMachine(cfg)
		dep, err := machine.Deploy(m)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		run, err := dep.ExecuteBoth()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if run.MeanIPC() <= 0 {
			t.Errorf("%s: non-positive IPC", cfg.Name)
		}
		if run.BP1.TimedOut || run.BP2.TimedOut {
			t.Errorf("%s: timed out", cfg.Name)
		}
	}
}

func TestPublicAPIAnalyze(t *testing.T) {
	m := buildSum(t)
	an, err := javaflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Arcs) == 0 {
		t.Error("no arcs")
	}
	if an.BackMerges != 0 {
		t.Errorf("back merges = %d", an.BackMerges)
	}
}

func TestPublicAPIDescriptions(t *testing.T) {
	m := buildSum(t)
	bundle := javaflow.DescribeTokenBundle(m)
	for _, want := range []string{"HEAD_TOKEN", "MEMORY_TOKEN", "REGISTER_TOKEN[2]", "TAIL_TOKEN"} {
		if !strings.Contains(bundle, want) {
			t.Errorf("bundle description missing %q", want)
		}
	}
	dis := javaflow.Disassemble(m.Code)
	if !strings.Contains(dis, "iinc 2, 1") {
		t.Errorf("disassembly missing iinc: %s", dis)
	}
}

func TestPublicAPISuitesAndGeneration(t *testing.T) {
	if len(javaflow.Suites()) < 10 {
		t.Error("expected the full suite roster")
	}
	if len(javaflow.NamedMethods()) < 15 {
		t.Error("expected the full named-method roster")
	}
	classes := javaflow.GenerateMethods(1, 10)
	n := 0
	for _, c := range classes {
		n += len(c.Methods)
	}
	if n != 10 {
		t.Errorf("generated %d methods, want 10", n)
	}
}

func TestPublicAPIConfigurations(t *testing.T) {
	cfgs := javaflow.Configurations()
	if len(cfgs) != 6 {
		t.Fatalf("%d configurations, want 6 (Table 15)", len(cfgs))
	}
	want := []string{"Baseline", "Compact10", "Compact4", "Compact2", "Sparse2", "Hetero2"}
	for i, name := range want {
		if cfgs[i].Name != name {
			t.Errorf("config %d = %s, want %s", i, cfgs[i].Name, name)
		}
	}
}
