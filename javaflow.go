// Package javaflow is the public API of the JavaFlow reproduction: a Java
// DataFlow Machine that loads whole JVM bytecode methods into a tiled
// fabric of single-instruction nodes, resolves producer/consumer addresses
// with a distributed serial-network protocol, and executes them under a
// token-bundle model that maps control flow onto dataflow.
//
// The package re-exports the stable surface of the internal packages:
//
//   - Building methods: Assembler, ConstantPool, Method, Verify.
//   - Interpreting them (the baseline JVM substrate): JVM, Value.
//   - Deploying and simulating them on the fabric: Machine, Deployment,
//     Configurations, Result.
//   - Analyzing them: Analyze (static dataflow), Profile (dynamic mix).
//   - Reproducing the paper: Experiments (Tables 1–28).
//
// Quickstart:
//
//	asm := javaflow.NewAssembler()
//	asm.ILoad(0).ILoad(1).Op(javaflow.OpIadd).Op(javaflow.OpIreturn)
//	code, _ := asm.Finish()
//	m := &javaflow.Method{Name: "add", Argc: 2, ReturnsValue: true,
//		MaxLocals: 2, Code: code, Pool: javaflow.NewConstantPool()}
//
//	machine := javaflow.NewMachine(javaflow.Configurations()[0])
//	dep, _ := machine.Deploy(m)
//	run, _ := dep.ExecuteBoth()
//	fmt.Printf("IPC %.3f\n", run.MeanIPC())
package javaflow

import (
	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/core"
	"javaflow/internal/dataflow"
	"javaflow/internal/experiments"
	"javaflow/internal/fabric"
	"javaflow/internal/jvm"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// ---- Building methods ----

// Assembler builds bytecode method bodies with symbolic labels.
type Assembler = bytecode.Assembler

// Instruction is one decoded ByteCode instruction in linear-address form.
type Instruction = bytecode.Instruction

// Opcode is a JVM operation code.
type Opcode = bytecode.Opcode

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler { return bytecode.NewAssembler() }

// Commonly used opcodes, re-exported for example code. The full set lives
// in internal/bytecode.
const (
	OpIadd        = bytecode.Iadd
	OpIsub        = bytecode.Isub
	OpImul        = bytecode.Imul
	OpDadd        = bytecode.Dadd
	OpDmul        = bytecode.Dmul
	OpIreturn     = bytecode.Ireturn
	OpDreturn     = bytecode.Dreturn
	OpReturn      = bytecode.Return
	OpGoto        = bytecode.Goto
	OpIfIcmplt    = bytecode.IfIcmplt
	OpIfIcmpge    = bytecode.IfIcmpge
	OpIaload      = bytecode.Iaload
	OpIastore     = bytecode.Iastore
	OpArraylength = bytecode.Arraylength
)

// Method is a verified Java method.
type Method = classfile.Method

// ConstantPool is the per-class constant pool.
type ConstantPool = classfile.ConstantPool

// Class groups methods with their static storage.
type Class = classfile.Class

// FieldRef and MethodRef are resolution-complete symbol references.
type (
	FieldRef  = classfile.FieldRef
	MethodRef = classfile.MethodRef
)

// NewConstantPool returns an empty pool (index 0 reserved).
func NewConstantPool() *ConstantPool { return classfile.NewConstantPool() }

// NewClass returns an empty class.
func NewClass(name string) *Class { return classfile.NewClass(name) }

// Verify runs the GPP-side preparation/verification pass and computes
// MaxStack.
func Verify(m *Method) error { return classfile.Verify(m) }

// Disassemble renders a method body in JAVAP-like numbered form.
func Disassemble(code []Instruction) string { return bytecode.Disassemble(code) }

// ---- Interpreting (the baseline JVM substrate) ----

// JVM is the interpreting baseline machine with dynamic-mix profiling.
type JVM = jvm.Machine

// Value is a typed JVM runtime value.
type Value = jvm.Value

// Profile accumulates the Chapter 5 dynamic-mix statistics.
type Profile = jvm.Profile

// NewJVM returns an empty interpreter.
func NewJVM() *JVM { return jvm.NewMachine() }

// Int, Long, Float, Double and Null construct runtime values.
func Int(v int64) Value      { return jvm.Int(v) }
func Long(v int64) Value     { return jvm.Long(v) }
func Float(v float64) Value  { return jvm.Float(v) }
func Double(v float64) Value { return jvm.Double(v) }

// Null is the null reference.
var Null = jvm.Null

// ---- The DataFlow machine ----

// Machine is a configured JavaFlow machine.
type Machine = core.Machine

// Deployment is a method resident in the fabric, ready to execute.
type Deployment = core.Deployment

// Config describes one machine configuration (Table 15).
type Config = sim.Config

// Result reports one simulated execution.
type Result = sim.Result

// MethodRun pairs both branch-policy executions.
type MethodRun = sim.MethodRun

// Runner sweeps method populations across configurations.
type Runner = sim.Runner

// BranchPolicy selects the BP-1/BP-2 branch methodology.
type BranchPolicy = sim.BranchPolicy

// BP1 and BP2 are the two studied branch policies.
const (
	BP1 = sim.BP1
	BP2 = sim.BP2
)

// Fabric describes fabric geometry; ConcurrentFabric is the goroutine-per-
// node runtime.
type (
	Fabric           = fabric.Fabric
	ConcurrentFabric = fabric.ConcurrentFabric
	Placement        = fabric.Placement
	Resolution       = fabric.Resolution
	NodeKind         = fabric.NodeKind
)

// Node-kind patterns for custom fabrics.
var (
	PatternCompact = fabric.PatternCompact
	PatternSparse  = fabric.PatternSparse
	PatternHetero  = fabric.PatternHetero
)

// NewMachine builds a machine for a configuration.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// NewFabric builds a fabric geometry.
func NewFabric(width int, pattern []NodeKind) *Fabric {
	return fabric.NewFabric(width, pattern)
}

// Configurations returns the six studied configurations (Table 15):
// Baseline, Compact10, Compact4, Compact2, Sparse2, Hetero2.
func Configurations() []Config { return sim.Configurations() }

// DescribeTokenBundle renders the Figure 23 token bundle for a method.
func DescribeTokenBundle(m *Method) string { return core.DescribeTokenBundle(m) }

// ---- Analysis ----

// DataflowAnalysis is the static producer/consumer analysis of a method.
type DataflowAnalysis = dataflow.Analysis

// Analyze computes the static dataflow analysis (arcs, fan-out, merges,
// jump statistics) of a verified method.
func Analyze(m *Method) (*DataflowAnalysis, error) { return dataflow.Analyze(m) }

// ---- Workloads ----

// Suite is a SPEC-analog benchmark with a driver.
type Suite = workload.Suite

// Suites returns the full SPEC-analog benchmark roster.
func Suites() []*Suite { return workload.AllSuites() }

// NamedMethods returns every hand-built SPEC-analog hot method.
func NamedMethods() []*Method { return workload.NamedMethods() }

// GenerateMethods builds the deterministic synthetic population used by the
// simulation studies.
func GenerateMethods(seed int64, count int) []*Class {
	return workload.Generate(workload.GenConfig{Seed: seed, Count: count})
}

// ---- Reproducing the paper ----

// Experiments is the table-regeneration context (Tables 1–28).
type Experiments = experiments.Context

// NewExperiments returns a context with the reproduction's default
// population sizes.
func NewExperiments() *Experiments { return experiments.NewContext() }
