package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(map[string]flagBound{
		"-workers": {4, 1}, "-run-cap": {0, 0}, "-peer-inflight": {0, 0},
	}); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	err := validateFlags(map[string]flagBound{
		"-workers":       {-2, 1},
		"-peer-inflight": {-1, 0},
		"-run-cap":       {-3, 0},
		"-batch-cap":     {3, 0},
	})
	if err == nil {
		t.Fatal("negative flags accepted")
	}
	for _, want := range []string{
		"-workers must be >= 1, got -2",
		"-peer-inflight must be >= 0, got -1",
		"-run-cap must be >= 0, got -3",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "-batch-cap") {
		t.Fatalf("in-range flag named in error: %v", err)
	}
}
