// Command jfserved is the JavaFlow simulation daemon: it loads the method
// population once, keeps deployments hot in a sharded LRU cache, and serves
// concurrent simulation traffic over HTTP. With -peers it becomes a
// dispatch front, sharding batch jobs across remote jfserved instances by
// consistent-hashing the method signature (falling back to the local
// scheduler when peers fail).
//
// Usage:
//
//	jfserved                       # serve :8077 with the default corpus
//	jfserved -addr :9000 -workers 8 -cache 4096
//	jfserved -gen 400              # smaller generated population (faster boot)
//	jfserved -store-dir ./results  # persist results across restarts
//	jfserved -store-dir ./results -compact-threshold 0.5   # auto-compact (sole writer)
//	jfserved -peers http://10.0.0.7:8077,http://10.0.0.8:8077
//	jfserved -store-dir ./r1 -peers ... -replicate-interval 15s  # anti-entropy replication
//	jfserved -store-dir ./r1 -peers ... -replicate-interval 1h -gossip-fanout 3
//
// With -replicate-interval every peer's segment log is pulled into the
// local store periodically, so each node ends up serving every warm
// result the fleet has computed — no shared filesystem needed. Unless
// -gossip-disable is set, replication also pushes: a node that commits
// new results notifies a few random peers immediately (POST
// /v1/replicate/notify), so warm convergence is sub-second and the
// periodic pull is just the repair path — it can be set very long.
//
// Endpoints:
//
//	POST /v1/run      {"config":"Hetero2","method":"scimark/fft/FFT.bitreverse/1"}
//	POST /v1/batch    {"configs":["Baseline"],"summaryOnly":true}
//	POST /v1/batch?stream=ndjson    (per-job results as they complete)
//	POST /v1/batch    {"scenario":"chapter7","summaryOnly":true}   (scenario-keyed)
//	GET  /v1/configs
//	GET  /v1/methods
//	GET  /v1/scenarios  (and /v1/scenarios/{name})
//	GET  /v1/store    (and POST /v1/store/compact)
//	GET  /v1/replicate/segments  (and /v1/replicate/segment/{seq}, POST /v1/replicate/sync)
//	POST /v1/replicate/notify    (gossip receiver)
//	GET  /v1/trace/{traceID}     (cross-node assembled trace tree)
//	GET  /v1/fleet    (aggregated fleet health across -peers)
//	GET  /metrics     (?format=prometheus for the text exposition)
//	GET  /debug/traces  (and /debug/traces/{traceID} for one trace's local spans)
//	GET  /debug/events  (?subsystem=&severity=&n= — structured event journal)
//	GET  /healthz
//
// SIGQUIT dumps the recent event journal to stderr.
//
// With -debug-addr a second listener serves net/http/pprof on a separate
// loopback port, keeping profiling endpoints off the service address.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/dispatch"
	"javaflow/internal/replicate"
	"javaflow/internal/scenario"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		cacheN    = flag.Int("cache", serve.DefaultCacheCapacity, "deployment cache capacity (entries)")
		gen       = flag.Int("gen", 1580, "generated-method population size")
		seed      = flag.Int64("seed", 2014, "generated-method population seed")
		cycles    = flag.Int("maxcycles", 400_000, "default per-execution mesh-cycle timeout")
		drain     = flag.Duration("drain", 5*time.Minute, "graceful-shutdown drain window for in-flight requests")
		stDir     = flag.String("store-dir", "", "directory for the persistent result store (empty = memory-only)")
		peers     = flag.String("peers", "", "comma-separated base URLs of backend jfserved instances to dispatch batches across")
		inflight  = flag.Int("peer-inflight", 0, "max concurrent jobs per dispatch backend (0 = default)")
		compact   = flag.Float64("compact-threshold", 0, "auto-compact the store when its garbage ratio reaches this fraction (0 = disabled; sole-writer stores only)")
		compactI  = flag.Duration("compact-interval", serve.DefaultCompactEvery, "how often the auto-compactor checks the garbage ratio")
		replInt   = flag.Duration("replicate-interval", 0, "pull new store segments from -peers this often (anti-entropy replication; 0 = disabled; requires -peers and -store-dir)")
		gossipF   = flag.Int("gossip-fanout", 0, "peers each gossip notification targets (0 = ceil(log2(peers+1)); requires replication)")
		gossipD   = flag.Bool("gossip-disable", false, "disable push/gossip notifications, leaving pull-only anti-entropy")
		advert    = flag.String("advertise", "", "base URL peers reach this node at, stamped on gossip notifications (default derived from -addr)")
		debugA    = flag.String("debug-addr", "", "optional second listen address serving net/http/pprof (e.g. 127.0.0.1:6060; empty = disabled)")
		runCap    = flag.Int("run-cap", 0, "max in-flight /v1/run requests before typed 429 shedding (0 = 256)")
		batchCap  = flag.Int("batch-cap", 0, "max in-flight /v1/batch requests before typed 429 shedding (0 = 4)")
		replCap   = flag.Int("replicate-cap", 0, "max in-flight /v1/replicate requests before typed 429 shedding (0 = 32)")
		traceRing = flag.Int("trace-ring", 0, "span ring capacity for /debug/traces and /v1/trace (0 = 512)")
		eventRing = flag.Int("event-ring", 0, "structured event journal capacity for /debug/events (0 = 512)")
	)
	flag.Parse()

	if err := validateFlags(map[string]flagBound{
		"-workers":       {*workers, 1},
		"-cache":         {*cacheN, 1},
		"-gen":           {*gen, 0},
		"-maxcycles":     {*cycles, 1},
		"-peer-inflight": {*inflight, 0},
		"-run-cap":       {*runCap, 0},
		"-batch-cap":     {*batchCap, 0},
		"-replicate-cap": {*replCap, 0},
		"-trace-ring":    {*traceRing, 0},
		"-event-ring":    {*eventRing, 0},
	}); err != nil {
		fmt.Fprintf(os.Stderr, "jfserved: %v\n", err)
		os.Exit(2)
	}

	var st *store.Store
	if *stDir != "" {
		var err error
		st, err = store.Open(*stDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jfserved: opening store: %v\n", err)
			os.Exit(1)
		}
	}
	// fatal closes the store (flushing write-behind appends) before
	// exiting non-zero; os.Exit skips deferred calls.
	fatal := func(format string, args ...any) {
		if st != nil {
			_ = st.Close()
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	methods := workload.Corpus(*seed, *gen)
	// The node name on spans, events and fleet rows is the URL peers
	// reach this node at, so cross-node trace assembly and /v1/fleet
	// agree with the -peers lists everywhere else.
	metrics := serve.NewMetricsOpts(serve.MetricsOptions{
		Node:      advertiseURL(*advert, *addr),
		TraceRing: *traceRing,
		EventRing: *eventRing,
	})
	if st != nil {
		st.SetJournal(metrics.Journal())
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:       *workers,
		Cache:         serve.NewDeploymentCache(*cacheN),
		MaxMeshCycles: *cycles,
		Store:         st,
		Metrics:       metrics,
	})
	svc := serve.NewService(sched, sim.Configurations(), methods)
	// Bounded admission: beyond the per-class caps, requests shed with a
	// typed 429 and a Retry-After derived from observed service rates,
	// instead of queueing until the fleet collapses.
	svc.SetAdmission(admit.New(admit.Options{
		RunCap:       *runCap,
		BatchCap:     *batchCap,
		ReplicateCap: *replCap,
		Parallelism:  *workers,
		Registry:     sched.Metrics().Registry(),
		Journal:      sched.Metrics().Journal(),
	}))
	if peerList := splitPeers(*peers); len(peerList) > 0 {
		// Fleet plane: /v1/trace/{id} and /v1/fleet fan out to the same
		// peer set dispatch and replication use.
		svc.SetFleet(serve.NewFleet(peerList, nil))
	}
	// Scenario catalog entries resolve against this node's own corpus
	// parameters, so scenario-keyed batches sweep exactly the methods the
	// daemon serves.
	svc.SetScenarios(scenario.NewRegistry(scenario.Defaults{
		Seed: *seed, GenCount: *gen, MaxMeshCycles: *cycles,
	}))

	logf := func(format string, args ...any) {
		fmt.Printf("jfserved: "+format+"\n", args...)
	}

	replicateNote := "no replication"
	var rep *replicate.Replicator
	if *replInt > 0 {
		if st == nil {
			fatal("jfserved: -replicate-interval requires -store-dir\n")
		}
		peerList := splitPeers(*peers)
		if len(peerList) == 0 {
			fatal("jfserved: -replicate-interval requires -peers\n")
		}
		ropts := replicate.Options{
			Store:    st,
			Peers:    peerList,
			Interval: *replInt,
			Logf:     logf,
			Tracer:   sched.Metrics().Tracer(),
			Registry: sched.Metrics().Registry(),
			Journal:  sched.Metrics().Journal(),
		}
		gossipNote := ", gossip off"
		if !*gossipD {
			ropts.Advertise = advertiseURL(*advert, *addr)
			ropts.GossipFanout = *gossipF
			if ropts.Advertise == "" {
				fatal("jfserved: cannot derive a gossip advertise URL from -addr %q; pass -advertise or -gossip-disable\n", *addr)
			}
			gossipNote = fmt.Sprintf(", gossiping as %s", ropts.Advertise)
		}
		var err error
		rep, err = replicate.New(ropts)
		if err != nil {
			fatal("jfserved: %v\n", err)
		}
		svc.SetReplicator(rep)
		replicateNote = fmt.Sprintf("replicating from %d peers every %v%s", len(peerList), *replInt, gossipNote)
	}

	dispatchNote := "single-node"
	if *peers != "" {
		opts := dispatch.Options{
			Peers:       splitPeers(*peers),
			Local:       sched,
			MaxInflight: *inflight,
			Tracer:      sched.Metrics().Tracer(),
			Registry:    sched.Metrics().Registry(),
			Journal:     sched.Metrics().Journal(),
		}
		if st != nil {
			// On a retry after a backend death, serve the job from the
			// local store when replication (or a past run) already holds
			// the key — byte-identical, no engine re-run.
			opts.WarmLocal = func(job serve.Job, maxCycles int) bool {
				return st.HasRun(store.RunKeyFor(job.Config, job.Method, maxCycles))
			}
		}
		if rep != nil {
			opts.SyncedPeers = rep.SyncedPeers
			if rep.GossipEnabled() {
				// Hinted handoff: a result computed while its ring owner was
				// down is recorded durably and pushed over when a probe sees
				// the owner return.
				opts.Hints = rep
			}
		}
		d, err := dispatch.New(opts)
		if err != nil {
			fatal("jfserved: %v\n", err)
		}
		svc.SetBatchRunner(d)
		probeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		up := d.HealthyPeers(probeCtx)
		cancel()
		dispatchNote = fmt.Sprintf("dispatching to %d peers (%d healthy now)", len(d.Backends()), up)
	}

	daemon := &serve.Daemon{
		Addr:             *addr,
		Service:          svc,
		Store:            st,
		Drain:            *drain,
		CompactThreshold: *compact,
		CompactEvery:     *compactI,
		Replicator:       rep,
		Logf:             logf,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the recent event journal to stderr instead of the Go
	// runtime's goroutine dump — the "what just happened on this node"
	// panic button for operators without curl access to /debug/events.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintf(os.Stderr, "jfserved: event journal (%d events recorded):\n",
				sched.Metrics().Journal().EventCount())
			sched.Metrics().Journal().WriteText(os.Stderr, 64)
		}
	}()

	if *debugA != "" {
		// net/http/pprof registers on http.DefaultServeMux; serving it on
		// a dedicated listener keeps profiling off the service address.
		debugSrv := &http.Server{Addr: *debugA, Handler: http.DefaultServeMux}
		go func() {
			logf("pprof listening on %s", *debugA)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logf("pprof server: %v", err)
			}
		}()
		defer debugSrv.Close()
	}

	storeNote := "memory-only"
	if st != nil {
		storeNote = fmt.Sprintf("store %s (%d warm records)", st.Dir(), st.Len())
	}
	err := daemon.Run(ctx, func(bound net.Addr) {
		fmt.Printf("jfserved: %d methods, %d configurations, %d workers, cache %d, %s, %s, %s — listening on %s\n",
			len(methods), len(svc.Configs()), *workers, *cacheN, storeNote, dispatchNote, replicateNote, bound)
	})
	if err != nil {
		// The daemon has already flushed and closed the store.
		fmt.Fprintf(os.Stderr, "jfserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("jfserved: shut down cleanly")
}

// advertiseURL resolves the base URL stamped on this node's gossip
// notifications: -advertise verbatim when given, otherwise derived from
// the listen address with wildcard hosts mapped to loopback (good for
// single-machine fleets; multi-host fleets should pass -advertise).
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return ""
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// flagBound pairs a flag's parsed value with the smallest value it
// accepts.
type flagBound struct {
	value, min int
}

// validateFlags rejects out-of-range numeric flags with one clear error
// naming every offender, before any state (store, listeners) is touched.
func validateFlags(bounds map[string]flagBound) error {
	var bad []string
	for name, b := range bounds {
		if b.value < b.min {
			bad = append(bad, fmt.Sprintf("%s must be >= %d, got %d", name, b.min, b.value))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("invalid flags: %s", strings.Join(bad, "; "))
}

// splitPeers parses the -peers flag, tolerating spaces and empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
