// Command jfserved is the JavaFlow simulation daemon: it loads the method
// population once, keeps deployments hot in a sharded LRU cache, and serves
// concurrent simulation traffic over HTTP.
//
// Usage:
//
//	jfserved                       # serve :8077 with the default corpus
//	jfserved -addr :9000 -workers 8 -cache 4096
//	jfserved -gen 400              # smaller generated population (faster boot)
//	jfserved -store-dir ./results  # persist results across restarts
//
// Endpoints:
//
//	POST /v1/run      {"config":"Hetero2","method":"scimark/fft/FFT.bitreverse/1"}
//	POST /v1/batch    {"configs":["Baseline"],"summaryOnly":true}
//	GET  /v1/configs
//	GET  /v1/methods
//	GET  /metrics
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		cacheN  = flag.Int("cache", serve.DefaultCacheCapacity, "deployment cache capacity (entries)")
		gen     = flag.Int("gen", 1580, "generated-method population size")
		seed    = flag.Int64("seed", 2014, "generated-method population seed")
		cycles  = flag.Int("maxcycles", 400_000, "default per-execution mesh-cycle timeout")
		drain   = flag.Duration("drain", 5*time.Minute, "graceful-shutdown drain window for in-flight requests")
		stDir   = flag.String("store-dir", "", "directory for the persistent result store (empty = memory-only)")
	)
	flag.Parse()

	var st *store.Store
	if *stDir != "" {
		var err error
		st, err = store.Open(*stDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jfserved: opening store: %v\n", err)
			os.Exit(1)
		}
	}
	// fatal closes the store (flushing write-behind appends) before
	// exiting non-zero; os.Exit skips deferred calls.
	fatal := func(format string, args ...any) {
		if st != nil {
			_ = st.Close()
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	methods := workload.Corpus(*seed, *gen)
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:       *workers,
		Cache:         serve.NewDeploymentCache(*cacheN),
		MaxMeshCycles: *cycles,
		Store:         st,
	})
	svc := serve.NewService(sched, sim.Configurations(), methods)
	srv := serve.NewServer(*addr, svc)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	storeNote := "memory-only"
	if st != nil {
		storeNote = fmt.Sprintf("store %s (%d warm records)", st.Dir(), st.Len())
	}
	fmt.Printf("jfserved: %d methods, %d configurations, %d workers, cache %d, %s — listening on %s\n",
		len(methods), len(svc.Configs()), *workers, *cacheN, storeNote, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("jfserved: %v\n", err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("jfserved: shutting down")
		// The drain window must accommodate a full in-flight batch sweep
		// (the server's write timeout allows one to run for minutes).
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal("jfserved: shutdown: %v\n", err)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "jfserved: closing store: %v\n", err)
			os.Exit(1)
		}
	}
}
