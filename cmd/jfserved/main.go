// Command jfserved is the JavaFlow simulation daemon: it loads the method
// population once, keeps deployments hot in a sharded LRU cache, and serves
// concurrent simulation traffic over HTTP.
//
// Usage:
//
//	jfserved                       # serve :8077 with the default corpus
//	jfserved -addr :9000 -workers 8 -cache 4096
//	jfserved -gen 400              # smaller generated population (faster boot)
//
// Endpoints:
//
//	POST /v1/run      {"config":"Hetero2","method":"scimark/fft/FFT.bitreverse/1"}
//	POST /v1/batch    {"configs":["Baseline"],"summaryOnly":true}
//	GET  /v1/configs
//	GET  /v1/methods
//	GET  /metrics
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size")
		cacheN  = flag.Int("cache", serve.DefaultCacheCapacity, "deployment cache capacity (entries)")
		gen     = flag.Int("gen", 1580, "generated-method population size")
		seed    = flag.Int64("seed", 2014, "generated-method population seed")
		cycles  = flag.Int("maxcycles", 400_000, "default per-execution mesh-cycle timeout")
		drain   = flag.Duration("drain", 5*time.Minute, "graceful-shutdown drain window for in-flight requests")
	)
	flag.Parse()

	methods := workload.Corpus(*seed, *gen)
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:       *workers,
		Cache:         serve.NewDeploymentCache(*cacheN),
		MaxMeshCycles: *cycles,
	})
	svc := serve.NewService(sched, sim.Configurations(), methods)
	srv := serve.NewServer(*addr, svc)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("jfserved: %d methods, %d configurations, %d workers, cache %d — listening on %s\n",
		len(methods), len(svc.Configs()), *workers, *cacheN, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "jfserved: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("jfserved: shutting down")
		// The drain window must accommodate a full in-flight batch sweep
		// (the server's write timeout allows one to run for minutes).
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "jfserved: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
