// Command javaflow demonstrates the machine end to end: loading a method
// into the DataFlow Fabric (Figure 20), distributed address resolution
// (Figures 21–22), the token bundle (Figure 23), the heterogeneous layout
// (Figure 26), and a full per-method simulation across all configurations
// (the Figures 27–31 sample analysis).
//
// Usage:
//
//	javaflow -list                        # list available methods
//	javaflow -method nextDouble           # end-to-end sample analysis
//	javaflow -method nextDouble -config Hetero2 -demo load,resolve,bundle
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"javaflow/internal/classfile"
	"javaflow/internal/core"
	"javaflow/internal/fabric"
	"javaflow/internal/report"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available SPEC-analog methods")
		method  = flag.String("method", "nextDouble", "method name or full signature")
		cfgName = flag.String("config", "Hetero2", "configuration for the demos")
		demos   = flag.String("demo", "load,resolve,bundle,run", "comma-separated demos: load,resolve,bundle,hetero,run")
	)
	flag.Parse()

	if *list {
		for _, m := range workload.NamedMethods() {
			fmt.Printf("%-60s %4d instructions\n", m.Signature(), len(m.Code))
		}
		return
	}

	m := findMethod(*method)
	if m == nil {
		fmt.Fprintf(os.Stderr, "javaflow: no method matching %q (try -list)\n", *method)
		os.Exit(1)
	}

	cfg, ok := findConfig(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "javaflow: no configuration %q\n", *cfgName)
		os.Exit(1)
	}

	for _, demo := range strings.Split(*demos, ",") {
		switch strings.TrimSpace(demo) {
		case "load":
			demoLoad(cfg, m)
		case "resolve":
			demoResolve(cfg, m)
		case "bundle":
			fmt.Println(core.DescribeTokenBundle(m))
		case "hetero":
			demoHetero()
		case "run":
			demoRun(m)
		default:
			fmt.Fprintf(os.Stderr, "javaflow: unknown demo %q\n", demo)
			os.Exit(2)
		}
	}
}

func findMethod(name string) *classfile.Method {
	for _, m := range workload.NamedMethods() {
		if m.Signature() == name || m.Name == name {
			return m
		}
	}
	return nil
}

func findConfig(name string) (sim.Config, bool) {
	for _, cfg := range sim.Configurations() {
		if strings.EqualFold(cfg.Name, name) {
			return cfg, true
		}
	}
	return sim.Config{}, false
}

// demoLoad walks the greedy self-organizing load (Figure 20).
func demoLoad(cfg sim.Config, m *classfile.Method) {
	machine := core.NewMachine(cfg)
	dep, err := machine.DeployTraced(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "javaflow: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("=== Figure 20: loading a method (%s fabric) ===\n", cfg.Name)
	fmt.Println(dep.Placement.DescribeLoad())
}

// demoResolve prints the resolved dataflow (Figures 21–22).
func demoResolve(cfg sim.Config, m *classfile.Method) {
	machine := core.NewMachine(cfg)
	dep, err := machine.Deploy(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "javaflow: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("=== Figures 21-22: DataFlow address resolution ===")
	fmt.Println(dep.DescribeResolution())
}

// demoHetero prints the Figure 26 heterogeneous row layout.
func demoHetero() {
	fmt.Println("=== Figure 26: heterogeneous DataFlow configuration (one 10-wide row) ===")
	f := fabric.NewFabric(10, fabric.PatternHetero)
	for n := 0; n < 10; n++ {
		x, y := f.Position(n)
		fmt.Printf("  node %2d (%d,%d): %s\n", n, x, y, f.Kind(n))
	}
	fmt.Println("  mix per 10 nodes: 6 arithmetic, 1 floating point, 2 storage, 1 control")
}

// demoRun executes the method on every configuration (Figure 31's
// simulation-results view).
func demoRun(m *classfile.Method) {
	fmt.Printf("=== Figure 31-style simulation results: %s ===\n", m.Signature())
	runner := &sim.Runner{}
	t := report.New("", "Config", "IPC BP-1", "IPC BP-2", "FoM", "Coverage", "Parallel>=2", "Inst/MaxNode")
	var base float64
	for _, cfg := range sim.Configurations() {
		run, err := runner.RunMethod(cfg, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "javaflow: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		mean := run.MeanIPC()
		if cfg.Name == "Baseline" {
			base = mean
		}
		fom := 0.0
		if base > 0 {
			fom = mean / base
		}
		ratio := float64(run.BP1.MaxNode) / float64(run.BP1.Static)
		t.Add(cfg.Name, run.BP1.IPC(), run.BP2.IPC(), report.Pct(fom),
			report.Pct(run.BP1.Coverage()), report.Pct(run.BP1.Parallelism()), ratio)
	}
	fmt.Println(t)
}
