// Command jfanalyze runs the Chapter 5 benchmark analysis: it executes the
// SPEC-analog suites on the instrumented interpreter and reports method
// utilization, dynamic and static instruction mixes, and the dataflow /
// control-flow profile of the hot methods.
//
// Usage:
//
//	jfanalyze                 # all suites at the default scale
//	jfanalyze -suite compress -scale 4
package main

import (
	"flag"
	"fmt"
	"os"

	"javaflow/internal/dataflow"
	"javaflow/internal/jvm"
	"javaflow/internal/report"
	"javaflow/internal/workload"
)

func main() {
	var (
		suiteName = flag.String("suite", "", "run a single suite (default: all)")
		scale     = flag.Int("scale", 2, "driver iteration scale")
		top       = flag.Int("top", 4, "methods to list per suite")
	)
	flag.Parse()

	for _, s := range workload.AllSuites() {
		if *suiteName != "" && s.Name != *suiteName {
			continue
		}
		if err := analyze(s, *scale, *top); err != nil {
			fmt.Fprintf(os.Stderr, "jfanalyze: %v\n", err)
			os.Exit(1)
		}
	}
}

func analyze(s *workload.Suite, scale, top int) error {
	vm := jvm.NewMachine()
	if err := s.Register(vm); err != nil {
		return err
	}
	if err := s.Run(vm, scale); err != nil {
		return err
	}
	p := vm.Profile

	fmt.Printf("== %s (%s analog) ==\n", s.Name, s.Era)
	fmt.Printf("total ops %s, %d methods executed, %d methods cover 90%%\n",
		report.Sci(float64(p.TotalOps())), p.MethodsExecuted(), len(p.MethodsFor(0.90)))

	t := report.New("top methods:", "Class-Method", "Ops", "Share", "Invocations")
	for i, ms := range p.TopMethods() {
		if i >= top {
			break
		}
		t.Add(ms.Signature, report.Sci(float64(ms.Ops)), report.Pct(ms.Share),
			p.Invocations(ms.Signature))
	}
	fmt.Println(t)

	qs := p.QuickStats()
	if qs.Base+qs.Quick > 0 {
		fmt.Printf("storage resolution: %d base, %d _Quick (%s resolved)\n",
			qs.Base, qs.Quick, report.Pct(qs.QuickPercent()))
	}

	rows, err := dataflow.AnalyzeAll(s.AllMethods())
	if err != nil {
		return err
	}
	st := report.New("static dataflow profile:",
		"Method", "Insts", "Regs", "Stack", "Arcs", "Merges", "Fwd", "Back", "FanOutMax")
	for _, r := range rows {
		st.Add(r.Signature, r.StaticInst, r.Registers, r.MaxStack,
			r.TotalArcs, r.Merges, r.ForwardJumps, r.BackJumps, int(r.FanOutMax))
	}
	fmt.Println(st)
	return nil
}
