// Command jfbench regenerates the dissertation's evaluation tables
// (Tables 1–28) from the reproduction's substrates.
//
// Usage:
//
//	jfbench -all                 # every table, in order
//	jfbench -table 22            # one table
//	jfbench -table 22 -gen 400   # smaller generated population (faster)
//
// The population defaults mirror the dissertation: ~1,600 methods, two
// branch-policy executions each, six machine configurations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"javaflow/internal/experiments"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate every table (1-28)")
		table     = flag.String("table", "", "comma-separated table numbers to regenerate")
		ablations = flag.Bool("ablations", false, "run the design-space ablation sweeps")
		scale     = flag.Int("scale", 2, "benchmark driver iteration scale")
		gen       = flag.Int("gen", 1580, "generated-method population size")
		seed      = flag.Int64("seed", 2014, "generated-method population seed")
		cycles    = flag.Int("maxcycles", 400_000, "per-execution mesh-cycle timeout")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size (1 = serial)")
	)
	flag.Parse()

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.GenCount = *gen
	ctx.Seed = *seed
	ctx.MaxMeshCycles = *cycles
	ctx.Workers = *workers

	if *ablations {
		tables, err := ctx.Ablations()
		if err != nil {
			fmt.Fprintf(os.Stderr, "jfbench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		if !*all && *table == "" {
			return
		}
	}

	if !*all && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	var numbers []int
	if *all {
		for n := 1; n <= 28; n++ {
			numbers = append(numbers, n)
		}
	} else {
		for _, part := range strings.Split(*table, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "jfbench: bad table number %q\n", part)
				os.Exit(2)
			}
			numbers = append(numbers, n)
		}
	}

	for _, n := range numbers {
		t, err := ctx.TableByNumber(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t)
	}
}
