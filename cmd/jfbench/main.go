// Command jfbench regenerates the dissertation's evaluation tables
// (Tables 1–28) from the reproduction's substrates.
//
// Usage:
//
//	jfbench -all                 # every table, in order
//	jfbench -table 22            # one table
//	jfbench -table 22 -gen 400   # smaller generated population (faster)
//	jfbench -all -store-dir ./results   # reuse prior runs across invocations
//	jfbench -all -store-dir ./results -peers http://10.0.0.7:8077 -pull
//	                             # pull the fleet's warm results first,
//	                             # compute only what nobody has
//	jfbench -fleet http://10.0.0.7:8077 # render the fleet-health table
//	jfbench -scenarios           # list the scenario catalog
//	jfbench -scenario chaos-fleet       # run one scenario bundle
//	jfbench -scenario-file my.json      # run a user scenario (JSON)
//	jfbench -sweep-digest        # per-config digests of the legacy sweep path
//
// The population defaults mirror the dissertation: ~1,600 methods, two
// branch-policy executions each, six machine configurations. With
// -store-dir, completed MethodRuns are persisted and reused by later
// invocations (and by jfserved pointed at the same directory); the
// cold/warm split is reported on stderr at exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"javaflow/internal/experiments"
	"javaflow/internal/replicate"
	"javaflow/internal/scenario"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

func main() {
	start := time.Now()
	var (
		all       = flag.Bool("all", false, "regenerate every table (1-28)")
		table     = flag.String("table", "", "comma-separated table numbers to regenerate")
		ablations = flag.Bool("ablations", false, "run the design-space ablation sweeps")
		scale     = flag.Int("scale", 2, "benchmark driver iteration scale")
		gen       = flag.Int("gen", 1580, "generated-method population size")
		seed      = flag.Int64("seed", 2014, "generated-method population seed")
		cycles    = flag.Int("maxcycles", 400_000, "per-execution mesh-cycle timeout")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker pool size (1 = serial)")
		stDir     = flag.String("store-dir", "", "persistent result store directory (empty = recompute everything)")
		peers     = flag.String("peers", "", "comma-separated jfserved base URLs to dispatch sweeps across (must serve the same -gen/-seed corpus)")
		pull      = flag.Bool("pull", false, "pull the -peers' warm results into -store-dir (one anti-entropy round), then sweep locally over the warmed store instead of dispatching; the exit report splits pulled vs computed")
		scenName  = flag.String("scenario", "", "run one scenario bundle from the registry (see -scenarios)")
		scenFile  = flag.String("scenario-file", "", "load, validate and run a user scenario bundle from a JSON file")
		scenList  = flag.Bool("scenarios", false, "list the scenario catalog and exit")
		sweepDig  = flag.Bool("sweep-digest", false, "run the legacy hard-coded sweep path and print per-configuration result digests (for catalog-equivalence checks)")
		fleetURL  = flag.String("fleet", "", "fetch <base URL>/v1/fleet from a running jfserved and render the aggregated fleet-health table, then exit")
	)
	flag.Parse()

	if err := validateFlags(map[string]flagBound{
		"-scale":     {*scale, 1},
		"-gen":       {*gen, 0},
		"-maxcycles": {*cycles, 1},
		"-workers":   {*workers, 1},
	}); err != nil {
		fmt.Fprintf(os.Stderr, "jfbench: %v\n", err)
		os.Exit(2)
	}

	if *fleetURL != "" {
		if err := renderFleet(os.Stdout, *fleetURL); err != nil {
			fmt.Fprintf(os.Stderr, "jfbench: fleet: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Scale = *scale
	ctx.GenCount = *gen
	ctx.Seed = *seed
	ctx.MaxMeshCycles = *cycles
	ctx.Workers = *workers
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	// -pull uses the peers as replication sources and sweeps locally over
	// the warmed store; without it they are dispatch backends (a
	// dispatched job runs remotely, so pulling first would be pointless).
	if !*pull {
		ctx.Peers = peerList
	}

	// fail closes the store (flushing queued writes) before exiting
	// non-zero; os.Exit skips deferred calls.
	fail := func(code int, format string, args ...any) {
		_ = ctx.Close()
		if format != "" {
			fmt.Fprintf(os.Stderr, format, args...)
		}
		os.Exit(code)
	}

	if *stDir != "" {
		if err := ctx.OpenStore(*stDir); err != nil {
			fail(1, "jfbench: %v\n", err)
		}
	}

	if *pull {
		if ctx.Store() == nil || len(peerList) == 0 {
			fail(2, "jfbench: -pull requires -store-dir and -peers\n")
		}
		rep, err := replicate.New(replicate.Options{Store: ctx.Store(), Peers: peerList})
		if err != nil {
			fail(1, "jfbench: %v\n", err)
		}
		pullCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		err = rep.SyncNow(pullCtx)
		cancel()
		if err != nil {
			// A down peer is not fatal: the sweep still runs, computing
			// (or dispatching) whatever could not be pulled.
			fmt.Fprintf(os.Stderr, "jfbench: pull: %v\n", err)
		}
	}

	// The scenario registry resolves catalog entries against the same
	// -seed/-gen/-maxcycles the legacy sweeps use, so the two paths sweep
	// identical populations.
	reg := scenario.NewRegistry(scenario.Defaults{
		Seed: *seed, GenCount: *gen, MaxMeshCycles: *cycles,
	})

	if *scenList {
		for _, name := range reg.Names() {
			b, err := reg.Get(name)
			if err != nil {
				fail(1, "jfbench: %v\n", err)
			}
			fmt.Printf("%-20s %-12s %s\n", b.Name, b.Tier, b.Description)
		}
		if err := ctx.Close(); err != nil {
			fail(1, "jfbench: closing store: %v\n", err)
		}
		return
	}

	if *sweepDig {
		for _, cfg := range sim.Configurations() {
			cr, err := ctx.SimResults(cfg)
			if err != nil {
				fail(1, "jfbench: %v\n", err)
			}
			digest, err := scenario.DigestRuns(cr.Runs)
			if err != nil {
				fail(1, "jfbench: %v\n", err)
			}
			cd := scenario.ConfigDigest{
				Config: cfg.Name, Methods: len(cr.Runs),
				Skipped: cr.Skipped, TimedOut: cr.TimedOut, Digest: digest,
			}
			fmt.Println(cd.DigestLine())
		}
		reportStore(ctx)
		reportDispatch(ctx)
		reportTraces(ctx)
		reportEngine(start)
		if err := ctx.Close(); err != nil {
			fail(1, "jfbench: closing store: %v\n", err)
		}
		return
	}

	if *scenName != "" || *scenFile != "" {
		if *scenName != "" && *scenFile != "" {
			fail(2, "jfbench: -scenario and -scenario-file are mutually exclusive\n")
		}
		var bundle *scenario.Bundle
		var err error
		if *scenFile != "" {
			bundle, err = reg.LoadFile(*scenFile)
		} else {
			bundle, err = reg.Get(*scenName)
		}
		if err != nil {
			var nf *scenario.NotFoundError
			if errors.As(err, &nf) {
				fail(2, "jfbench: %v (use -scenarios to list the catalog)\n", err)
			}
			fail(2, "jfbench: %v\n", err)
		}
		resolved, err := bundle.Resolve(reg.Defaults())
		if err != nil {
			fail(2, "jfbench: %v\n", err)
		}
		report, err := ctx.RunScenario(resolved)
		if err != nil {
			fail(1, "jfbench: %v\n", err)
		}
		fmt.Print(report.Render())
		reportStore(ctx)
		reportDispatch(ctx)
		reportTraces(ctx)
		reportEngine(start)
		if err := ctx.Close(); err != nil {
			fail(1, "jfbench: closing store: %v\n", err)
		}
		if !report.Passed {
			os.Exit(1)
		}
		return
	}

	if *ablations {
		tables, err := ctx.Ablations()
		if err != nil {
			fail(1, "jfbench: %v\n", err)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		if !*all && *table == "" {
			reportStore(ctx)
			reportDispatch(ctx)
			reportTraces(ctx)
			reportEngine(start)
			if err := ctx.Close(); err != nil {
				fail(1, "jfbench: closing store: %v\n", err)
			}
			return
		}
	}

	if !*all && *table == "" {
		flag.Usage()
		fail(2, "")
	}

	var numbers []int
	if *all {
		for n := 1; n <= 28; n++ {
			numbers = append(numbers, n)
		}
	} else {
		for _, part := range strings.Split(*table, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fail(2, "jfbench: bad table number %q\n", part)
			}
			numbers = append(numbers, n)
		}
	}

	for _, n := range numbers {
		t, err := ctx.TableByNumber(n)
		if err != nil {
			fail(1, "jfbench: %v\n", err)
		}
		fmt.Println(t)
	}

	reportStore(ctx)
	reportDispatch(ctx)
	reportTraces(ctx)
	reportEngine(start)
	if err := ctx.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "jfbench: closing store: %v\n", err)
		os.Exit(1)
	}
}

// reportEngine prints the event-driven engine core's throughput for the
// whole invocation: simulated mesh cycles per wall second, events
// processed, and how much simulated time was fast-forwarded. Silent when
// every result came from the store or remote peers (no local engine runs).
func reportEngine(start time.Time) {
	t := sim.TotalEngineStats()
	if t.Runs == 0 {
		return
	}
	secs := time.Since(start).Seconds()
	var rate float64
	if secs > 0 {
		rate = float64(t.SimulatedMeshCycles) / secs
	}
	skipped := 0.0
	if t.SimulatedMeshCycles > 0 {
		skipped = 100 * float64(t.CyclesSkipped) / float64(t.SimulatedMeshCycles)
	}
	fmt.Fprintf(os.Stderr,
		"jfbench: engine — %d runs, %d simulated mesh cycles (%.1fM cycles/s), %d events, %.1f%% of cycles skipped\n",
		t.Runs, t.SimulatedMeshCycles, rate/1e6, t.Events, skipped)
}

// reportDispatch prints the per-backend job split of a -peers run, so a
// 1-vs-N comparison can see how the sweep sharded.
func reportDispatch(ctx *experiments.Context) {
	st := ctx.DispatchStats()
	if st == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "jfbench: dispatch — %d retries, %d local fallbacks\n",
		st.Retries, st.LocalFallbacks)
	for _, b := range st.Backends {
		fmt.Fprintf(os.Stderr, "jfbench: dispatch backend %s — %d jobs, %d errors, %.1f%% ring share\n",
			b.Name, b.Jobs, b.Errors, 100*b.RingShare)
	}
}

// reportTraces prints the invocation's span count and its slowest spans,
// so a slow sweep points at its bottleneck without a second run. Silent
// when nothing was traced.
func reportTraces(ctx *experiments.Context) {
	tr := ctx.Scheduler().Metrics().Tracer()
	if tr.SpanCount() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "jfbench: traces — %d spans recorded\n", tr.SpanCount())
	for _, sp := range tr.Slowest(3) {
		fmt.Fprintf(os.Stderr, "jfbench: trace %s span %s %s — %.1fms\n",
			sp.TraceID, sp.SpanID, sp.Name, float64(sp.DurationNS)/1e6)
	}
}

// reportStore prints the cold/warm split of a store-backed run: how many
// MethodRuns were served from prior invocations versus executed fresh.
func reportStore(ctx *experiments.Context) {
	st := ctx.Store()
	if st == nil {
		return
	}
	stats := st.Stats()
	total := stats.RunHits + stats.RunMisses
	if total == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"jfbench: store %s — %d/%d runs warm (%.1f%%), %d cold, %d deployments reused, %d records persisted\n",
		st.Dir(), stats.RunHits, total, 100*float64(stats.RunHits)/float64(total),
		stats.RunMisses, stats.DeployHits, stats.Records)
	if stats.IngestedRecords > 0 || stats.IngestSkipped > 0 {
		fmt.Fprintf(os.Stderr,
			"jfbench: replicate — %d records pulled from peers (%d offered but already present), %d runs computed this invocation\n",
			stats.IngestedRecords, stats.IngestSkipped, stats.RunMisses)
	}
	if stats.PutErrors > 0 {
		fmt.Fprintf(os.Stderr,
			"jfbench: warning: %d store writes failed; results may not be reusable (ctx.Close reports the first error)\n",
			stats.PutErrors)
	}
}

// renderFleet fetches base's /v1/fleet document and renders it as the
// operator-facing fleet-health table: one row per node, then the
// lossless fleet-wide merge (counters summed, latency histograms merged
// bucket-by-bucket, so the percentiles are true union percentiles).
func renderFleet(w io.Writer, base string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/fleet")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/fleet: http %d", resp.StatusCode)
	}
	var snap serve.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-28s %-5s %10s %10s %8s %8s %8s %10s\n",
		"NODE", "UP", "REQUESTS", "JOBS", "ERRORS", "INFLGT", "EVENTS", "P99(ms)")
	for _, n := range snap.Nodes {
		if !n.Up || n.Metrics == nil {
			reason := n.Err
			if reason == "" {
				reason = "no metrics"
			}
			fmt.Fprintf(w, "%-28s %-5s %s\n", n.Node, "down", reason)
			continue
		}
		m := n.Metrics
		p99 := "-"
		if m.JobLatency != nil && m.JobLatency.Count > 0 {
			p99 = fmt.Sprintf("%.1f", float64(m.JobLatency.Quantile(0.99))/1e6)
		}
		fmt.Fprintf(w, "%-28s %-5s %10d %10d %8d %8d %8d %10s\n",
			n.Node, "up", m.Requests, m.Jobs, m.JobErrors, m.InFlight, m.Events, p99)
	}
	partial := ""
	if snap.Partial {
		partial = " (partial: at least one node did not answer)"
	}
	fmt.Fprintf(w, "fleet: %d/%d nodes up, %d requests, %d jobs (%d errors), p50 %.1fms p95 %.1fms p99 %.1fms%s\n",
		snap.NodesUp, snap.NodesTotal, snap.Fleet.Requests, snap.Fleet.Jobs, snap.Fleet.JobErrors,
		snap.Fleet.P50LatencyMS, snap.Fleet.P95LatencyMS, snap.Fleet.P99LatencyMS, partial)
	return nil
}

// flagBound pairs a flag's parsed value with the smallest value it
// accepts.
type flagBound struct {
	value, min int
}

// validateFlags rejects out-of-range numeric flags with one clear error
// naming every offender, before any sweep state is built.
func validateFlags(bounds map[string]flagBound) error {
	var bad []string
	for name, b := range bounds {
		if b.value < b.min {
			bad = append(bad, fmt.Sprintf("%s must be >= %d, got %d", name, b.min, b.value))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("invalid flags: %s", strings.Join(bad, "; "))
}
