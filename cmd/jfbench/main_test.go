package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(map[string]flagBound{
		"-workers": {8, 1}, "-gen": {0, 0},
	}); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	err := validateFlags(map[string]flagBound{
		"-workers":   {0, 1},
		"-maxcycles": {-5, 1},
		"-gen":       {100, 0},
	})
	if err == nil {
		t.Fatal("out-of-range flags accepted")
	}
	for _, want := range []string{
		"-workers must be >= 1, got 0",
		"-maxcycles must be >= 1, got -5",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "-gen") {
		t.Fatalf("in-range flag named in error: %v", err)
	}
}
