// Benchmarks regenerating every table and figure of the dissertation's
// evaluation, one bench per table. Run a single table with e.g.
//
//	go test -bench 'BenchmarkTable22$' -benchtime 1x
//
// Each iteration rebuilds the table from scratch on a reduced population
// (the full population is the jfbench default); results print via -v or the
// jfbench command.
package javaflow_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"javaflow"
	"javaflow/internal/experiments"
	"javaflow/internal/fabric"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

// benchContext caches one shared experiment context across benches so that
// `go test -bench .` does not recompute the simulation sweep 28 times.
var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

func sharedContext() *experiments.Context {
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext()
		benchCtx.Scale = 1
		benchCtx.GenCount = 300
		benchCtx.MaxMeshCycles = 300_000
	})
	return benchCtx
}

func benchTable(b *testing.B, n int) {
	b.Helper()
	ctx := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := ctx.TableByNumber(n)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("table %d empty", n)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkTable01(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable02(b *testing.B) { benchTable(b, 2) }
func BenchmarkTable03(b *testing.B) { benchTable(b, 3) }
func BenchmarkTable04(b *testing.B) { benchTable(b, 4) }
func BenchmarkTable05(b *testing.B) { benchTable(b, 5) }
func BenchmarkTable06(b *testing.B) { benchTable(b, 6) }
func BenchmarkTable07(b *testing.B) { benchTable(b, 7) }
func BenchmarkTable08(b *testing.B) { benchTable(b, 8) }
func BenchmarkTable09(b *testing.B) { benchTable(b, 9) }
func BenchmarkTable10(b *testing.B) { benchTable(b, 10) }
func BenchmarkTable11(b *testing.B) { benchTable(b, 11) }
func BenchmarkTable12(b *testing.B) { benchTable(b, 12) }
func BenchmarkTable13(b *testing.B) { benchTable(b, 13) }
func BenchmarkTable14(b *testing.B) { benchTable(b, 14) }
func BenchmarkTable15(b *testing.B) { benchTable(b, 15) }
func BenchmarkTable16(b *testing.B) { benchTable(b, 16) }
func BenchmarkTable17(b *testing.B) { benchTable(b, 17) }
func BenchmarkTable18(b *testing.B) { benchTable(b, 18) }
func BenchmarkTable19(b *testing.B) { benchTable(b, 19) }
func BenchmarkTable20(b *testing.B) { benchTable(b, 20) }
func BenchmarkTable21(b *testing.B) { benchTable(b, 21) }
func BenchmarkTable22(b *testing.B) { benchTable(b, 22) }
func BenchmarkTable23(b *testing.B) { benchTable(b, 23) }
func BenchmarkTable24(b *testing.B) { benchTable(b, 24) }
func BenchmarkTable25(b *testing.B) { benchTable(b, 25) }
func BenchmarkTable26(b *testing.B) { benchTable(b, 26) }
func BenchmarkTable27(b *testing.B) { benchTable(b, 27) }
func BenchmarkTable28(b *testing.B) { benchTable(b, 28) }

// ---- Figure demonstrations ----

// BenchmarkFigure20LoadMethod measures the greedy self-organizing load
// (Figure 20) of the hottest SciMark method into the heterogeneous fabric.
func BenchmarkFigure20LoadMethod(b *testing.B) {
	m := namedMethod(b, "scimark/utils/Random.nextDouble/0")
	loader := &fabric.Loader{Fabric: fabric.NewFabric(10, fabric.PatternHetero)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loader.Load(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure22Resolution measures distributed address resolution.
func BenchmarkFigure22Resolution(b *testing.B) {
	m := namedMethod(b, "scimark/fft/FFT.transform_internal/2")
	loader := &fabric.Loader{Fabric: fabric.NewFabric(10, fabric.PatternCompact)}
	p, err := loader.Load(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fabric.Resolve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure31NextDouble measures the full per-method simulation used
// for the Figures 27–31 sample analysis.
func BenchmarkFigure31NextDouble(b *testing.B) {
	m := namedMethod(b, "scimark/utils/Random.nextDouble/0")
	runner := &sim.Runner{}
	cfg := heteroConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunMethod(cfg, m); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Substrate microbenchmarks ----

// BenchmarkInterpreterNextDouble measures the baseline JVM substrate.
func BenchmarkInterpreterNextDouble(b *testing.B) {
	vm := javaflow.NewJVM()
	suite := suiteByName(b, "scimark.monte_carlo")
	if err := suite.Register(vm); err != nil {
		b.Fatal(err)
	}
	rnd, err := workload.NewRandom(vm, 42)
	if err != nil {
		b.Fatal(err)
	}
	m := namedMethod(b, "scimark/utils/Random.nextDouble/0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Invoke(m, rnd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentFabric measures the goroutine-per-node protocol.
func BenchmarkConcurrentFabric(b *testing.B) {
	m := namedMethod(b, "scimark/utils/Random.nextDouble/0")
	conc := &fabric.ConcurrentFabric{Fabric: fabric.NewFabric(10, fabric.PatternHetero)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := conc.LoadAndResolve(m); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers ----

func namedMethod(b *testing.B, sig string) *javaflow.Method {
	b.Helper()
	for _, m := range workload.NamedMethods() {
		if m.Signature() == sig {
			return m
		}
	}
	b.Fatalf("no method %s", sig)
	return nil
}

func suiteByName(b *testing.B, name string) *workload.Suite {
	b.Helper()
	for _, s := range workload.AllSuites() {
		if s.Name == name {
			return s
		}
	}
	b.Fatalf("no suite %s", name)
	return nil
}

func heteroConfig(b *testing.B) sim.Config {
	b.Helper()
	for _, cfg := range sim.Configurations() {
		if cfg.Name == "Hetero2" {
			return cfg
		}
	}
	b.Fatal("no Hetero2")
	return sim.Config{}
}

// BenchmarkAblationSerialRatio measures the serial-clock design-space sweep
// (the fine-grained Compact10/4/2 ladder).
func BenchmarkAblationSerialRatio(b *testing.B) {
	ctx := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := ctx.AblationSerialRatio()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkDeploymentCacheSweep measures the deployment cache's effect on
// repeated population sweeps: "uncached" deploys every method from scratch
// each iteration (the seed's per-run pipeline), "cached" serves deployments
// from a warmed serve.DeploymentCache. The delta is pure Figure 20 +
// Figure 22 work amortized away.
func BenchmarkDeploymentCacheSweep(b *testing.B) {
	methods := workload.NamedMethods()
	cfg := heteroConfig(b)
	const maxCycles = 200_000

	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh cache every iteration keeps each sweep cold.
			sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: maxCycles})
			if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: maxCycles})
		if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreSweep measures the persistent result store against the
// in-memory path: "cold" pays execution plus write-behind persistence,
// "warm" is a fresh process (empty LRU) answering the whole sweep from
// disk-backed records without touching the engine.
func BenchmarkStoreSweep(b *testing.B) {
	methods := workload.NamedMethods()
	cfg := heteroConfig(b)
	const maxCycles = 200_000
	dir := b.TempDir()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: maxCycles, Store: st})
			if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})

	seed, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: maxCycles, Store: seed})
	if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			// A fresh scheduler + cache per iteration models a restarted
			// process whose only warmth is the store.
			sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: maxCycles, Store: st})
			if _, err := sched.RunAll(context.Background(), cfg, methods); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkEngineRun pits the event-driven engine core against the
// reference clock-by-clock loop on the slowest named workload method (by
// simulated mesh cycles on the tightest serial budget). Both sub-benches
// execute the identical resolved deployment cold; the differential tests
// prove the results byte-identical, so the delta is pure loop mechanics.
// CI guards the event core at ≥5x fewer ns/op and allocs/op.
func BenchmarkEngineRun(b *testing.B) {
	cfg := benchConfig(b, "Compact2")
	const maxCycles = 400_000

	var slowRes *fabric.Resolution
	slowCycles := 0
	slowSig := ""
	for _, m := range workload.NamedMethods() {
		res, err := sim.DeployMethod(cfg, m)
		if err != nil {
			continue
		}
		eng := sim.NewEngine(cfg, res, sim.BP1)
		eng.SetMaxCycles(maxCycles)
		r, err := eng.Run()
		if err != nil || r.TimedOut {
			continue
		}
		if r.MeshCycles > slowCycles {
			slowCycles, slowRes, slowSig = r.MeshCycles, res, m.Signature()
		}
	}
	if slowRes == nil {
		b.Fatal("no runnable named method")
	}
	b.Logf("slowest method: %s (%d mesh cycles on %s)", slowSig, slowCycles, cfg.Name)

	b.Run("event", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine(cfg, slowRes, sim.BP1)
			eng.SetMaxCycles(maxCycles)
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine(cfg, slowRes, sim.BP1)
			eng.SetMaxCycles(maxCycles)
			if _, err := eng.RunReference(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchConfig(b *testing.B, name string) sim.Config {
	b.Helper()
	for _, cfg := range sim.Configurations() {
		if cfg.Name == name {
			return cfg
		}
	}
	b.Fatalf("no config %s", name)
	return sim.Config{}
}

// BenchmarkDeployPipeline isolates the work the cache saves: the verify +
// load + resolve pipeline alone, cold versus cached.
func BenchmarkDeployPipeline(b *testing.B) {
	methods := workload.NamedMethods()
	cfg := heteroConfig(b)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range methods {
				if _, err := sim.DeployMethod(cfg, m); err != nil {
					var le *fabric.LoadError
					if !errors.As(err, &le) {
						b.Fatal(err)
					}
				}
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		cache := serve.NewDeploymentCache(0)
		for _, m := range methods {
			cache.ResolveMethod(cfg, m) // nolint:errcheck — warmup; rejects are cached too
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range methods {
				if _, err := cache.ResolveMethod(cfg, m); err != nil {
					var le *fabric.LoadError
					if !errors.As(err, &le) {
						b.Fatal(err)
					}
				}
			}
		}
	})
}
