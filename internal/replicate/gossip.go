// Push/rumor-mongering side of the replicator: instead of waiting for a
// peer's next pull round, a node that commits payload records advertises
// the (segment seq, size, CRC) delta at a few random peers, which pull
// exactly that range immediately and relay the rumor onward. TTL plus
// rumor-ID dedup makes rumors die out; the periodic pull loop stays the
// repair path for anything a partition or a dropped rumor missed.
//
// Hinted handoff rides the same substrate: when dispatch observes that a
// key's ring owner was down while the result was computed elsewhere, it
// records a durable hint (a store meta record keyed by the owner's URL);
// when a probe sees the owner healthy again, the hint turns into one
// direct notification so the owner pulls the backlog instead of waiting
// for its own next pull interval.
package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/obs"
	"javaflow/internal/store"
)

const (
	// DefaultGossipTTL is the hop budget on locally originated rumors:
	// with fanout f and TTL t a rumor can reach f^t nodes, so 3 hops at
	// log-N fanout covers any fleet this system targets.
	DefaultGossipTTL = 3
	// maxGossipTTL caps the TTL accepted from the wire, so a buggy or
	// hostile peer cannot mint immortal rumors.
	maxGossipTTL = 8
	// gossipDebounce coalesces the append-hook burst of a sweep into one
	// advertisement: peers need the final delta, not one rumor per record.
	gossipDebounce = 25 * time.Millisecond
	// rumorDedupCap bounds the seen-rumor set (FIFO eviction). Rumors
	// identify monotonic log positions, so evicting an old ID can at
	// worst cost one redundant no-op pull, never correctness.
	rumorDedupCap = 4096
	// notifyTimeout bounds one outbound notification, including the
	// receiver's synchronous catch-up pull.
	notifyTimeout = 30 * time.Second
	// handoffMetaPrefix namespaces durable hinted-handoff meta records in
	// the store ("meta|handoff|<owner URL>").
	handoffMetaPrefix = "handoff|"
	// maxHintSignatures bounds one owner's hint record; past that the
	// hint's delivery already pushes the full manifest, so dropping the
	// per-signature detail loses nothing but operator color.
	maxHintSignatures = 256
)

// ErrGossipDisabled reports a gossip entry point on a pull-only
// replicator. The serve handler maps it to 404, mirroring how endpoints
// behave when no replicator is configured at all.
var ErrGossipDisabled = errors.New("replicate: gossip not enabled (no advertise URL)")

// ErrBadNotification reports a structurally invalid notification (empty
// origin or no segments); the serve handler maps it to 400.
var ErrBadNotification = errors.New("replicate: bad notification: origin and segments are required")

// Notification is the POST /v1/replicate/notify wire body: "Origin has
// these segment positions — pull from it if you are behind, and pass it
// on while TTL lasts." Segments carry cumulative positions, not diffs,
// so a rumor lost to a partition is healed by any later rumor (or the
// pull loop) rather than leaving a hole.
type Notification struct {
	// Origin is the advertising node's base URL as its peers know it.
	Origin string `json:"origin"`
	// TTL is the remaining hop budget; a receiver relays with TTL-1
	// while TTL > 1.
	TTL int `json:"ttl"`
	// Segments are the origin's segment positions being advertised.
	Segments []store.SegmentInfo `json:"segments"`
}

// NotifyOutcome is the notify response body.
type NotifyOutcome struct {
	// Result classifies what the receiver did: "pulled" (was behind,
	// caught up synchronously), "current" (nothing missing), "duplicate"
	// (rumor already seen), "self" (own rumor echoed back), or
	// "unknown-origin" (origin is not a configured peer, nothing to pull
	// from).
	Result string `json:"result"`
	// Ingested / Skipped count records merged vs. already present during
	// a synchronous pull.
	Ingested int64 `json:"ingested"`
	Skipped  int64 `json:"skipped"`
	// Relayed is how many peers the rumor was forwarded to.
	Relayed int `json:"relayed"`
}

// gossip is the replicator's push-side state.
type gossip struct {
	advertise string
	fanout    int
	ttl       int
	dirty     chan struct{} // append-hook wakeups, capacity 1

	mu sync.Mutex
	// lastAdvertised is the per-segment size already pushed at peers;
	// the next advertisement carries only segments that grew past it.
	lastAdvertised map[int]int64
	rumorSeen      map[string]bool
	rumorFIFO      []string

	sent, sendErrors, received atomic.Int64
	duplicates, unknownOrigin  atomic.Int64
	pulls, relayed             atomic.Int64
	hintsRecorded              atomic.Int64
	hintsDelivered, hintErrors atomic.Int64
	hintMu                     sync.Mutex // serializes hint-record read-modify-write
}

// newGossip sizes the fanout for a fleet of peerCount peers.
func newGossip(advertise string, peerCount, fanout, ttl int) *gossip {
	if fanout <= 0 {
		fanout = int(math.Ceil(math.Log2(float64(peerCount + 1))))
	}
	if fanout < 1 {
		fanout = 1
	}
	if fanout > peerCount {
		fanout = peerCount
	}
	if ttl <= 0 {
		ttl = DefaultGossipTTL
	}
	if ttl > maxGossipTTL {
		ttl = maxGossipTTL
	}
	return &gossip{
		advertise:      advertise,
		fanout:         fanout,
		ttl:            ttl,
		dirty:          make(chan struct{}, 1),
		lastAdvertised: make(map[int]int64),
		rumorSeen:      make(map[string]bool),
	}
}

// GossipEnabled reports whether this replicator pushes as well as pulls.
func (r *Replicator) GossipEnabled() bool { return r.g != nil }

// startGossip installs the store append hook and launches the notifier
// loop; the returned channel closes when the loop exits. A pull-only
// replicator returns an already closed channel.
func (r *Replicator) startGossip(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	if r.g == nil {
		close(done)
		return done
	}
	r.st.SetAppendHook(func() {
		select {
		case r.g.dirty <- struct{}{}:
		default: // a wakeup is already pending; the delta is cumulative
		}
	})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-r.g.dirty:
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(gossipDebounce):
			}
			// Fold in wakeups that arrived while debouncing; the manifest
			// read below covers them.
			select {
			case <-r.g.dirty:
			default:
			}
			if err := r.AdvertiseNow(ctx); err != nil && ctx.Err() == nil {
				r.logff("replicate: gossip: %v", err)
			}
		}
	}()
	return done
}

// AdvertiseNow flushes the store and pushes the not-yet-advertised
// segment delta at GossipFanout random peers. It is a no-op when nothing
// grew since the last successful advertisement. Exposed for hinted
// handoff and tests; the notifier loop is the normal caller.
//
// The advertisement runs under its own trace span (a fresh trace unless
// the caller's ctx already carries one), and the minted context flows
// into every notify POST — so the receivers' server spans, their relay
// pulls, and the relays' receivers all correlate under one trace ID.
func (r *Replicator) AdvertiseNow(ctx context.Context) (err error) {
	ctx, span := r.tracer.StartSpan(ctx, "gossip.advertise")
	defer func() { span.End(err) }()
	g := r.g
	if g == nil {
		return ErrGossipDisabled
	}
	// Flush first: peers pull through ReadSegmentAt, which only serves
	// written bytes — and a rumor must never advertise positions the
	// origin cannot back with durable data.
	if err := r.st.Flush(); err != nil {
		return err
	}
	manifest, err := r.st.Manifest()
	if err != nil {
		return err
	}
	g.mu.Lock()
	var delta []store.SegmentInfo
	live := make(map[int]bool, len(manifest))
	for _, seg := range manifest {
		live[seg.Seq] = true
		if seg.Size > g.lastAdvertised[seg.Seq] {
			delta = append(delta, seg)
		}
	}
	// Forget positions for segments compaction folded away, mirroring the
	// pull loop's stale-cursor cleanup.
	for seq := range g.lastAdvertised {
		if !live[seq] {
			delete(g.lastAdvertised, seq)
		}
	}
	g.mu.Unlock()
	if len(delta) == 0 {
		return nil
	}
	sort.Slice(delta, func(i, j int) bool { return delta[i].Seq < delta[j].Seq })
	n := Notification{Origin: g.advertise, TTL: g.ttl, Segments: delta}
	targets := r.pickTargets(g.fanout, g.advertise)
	ok := r.sendNotify(ctx, n, targets)
	span.SetAttr("segments", strconv.Itoa(len(delta)))
	span.SetAttr("sent", strconv.Itoa(ok))
	if ok == 0 && len(targets) > 0 {
		// Leave lastAdvertised untouched: the next wakeup (or the next
		// commit) re-advertises the whole delta, so a total push outage
		// degrades to pull-only instead of silently dropping ranges.
		return fmt.Errorf("replicate: gossip: notify failed for all %d peer(s)", len(targets))
	}
	g.mu.Lock()
	for _, seg := range delta {
		if seg.Size > g.lastAdvertised[seg.Seq] {
			g.lastAdvertised[seg.Seq] = seg.Size
		}
	}
	g.mu.Unlock()
	return nil
}

// pickTargets draws up to fanout distinct random peers, excluding any
// whose normalized name appears in exclude.
func (r *Replicator) pickTargets(fanout int, exclude ...string) []*peerState {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var pool []*peerState
	for _, p := range r.peers {
		if !skip[p.name] {
			pool = append(pool, p)
		}
	}
	rand.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > fanout {
		pool = pool[:fanout]
	}
	return pool
}

// sendNotify posts n at every target concurrently and returns how many
// accepted it.
func (r *Replicator) sendNotify(ctx context.Context, n Notification, targets []*peerState) (ok int) {
	if len(targets) == 0 {
		return 0
	}
	var okCount atomic.Int64
	var wg sync.WaitGroup
	for _, p := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, notifyTimeout)
			defer cancel()
			if err := r.postNotify(sctx, p.name, n); err != nil {
				r.g.sendErrors.Add(1)
				// A peer that cannot be told about new data may be
				// partitioned from us; the pull loop is the repair path.
				r.journal.Emit("replicate", "partition_suspected", obs.SevWarn, traceIDFrom(ctx),
					"peer", p.name, "error", err.Error())
				r.logff("replicate: gossip: notify %s: %v", p.name, err)
				return
			}
			r.g.sent.Add(1)
			okCount.Add(1)
		}()
	}
	wg.Wait()
	return int(okCount.Load())
}

// rumorID canonically names one advertisement: same origin + same
// positions = same rumor, regardless of which peer relayed it or how the
// origin URL was spelled.
func rumorID(origin string, segs []store.SegmentInfo) string {
	parts := make([]string, 0, len(segs)+1)
	parts = append(parts, origin)
	sorted := append([]store.SegmentInfo(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	for _, s := range sorted {
		parts = append(parts, strconv.Itoa(s.Seq)+":"+strconv.FormatInt(s.Size, 10))
	}
	return strings.Join(parts, "|")
}

// markRumor records id as seen, evicting the oldest entry past the cap.
// It returns false when the rumor was already known.
func (g *gossip) markRumor(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.rumorSeen[id] {
		return false
	}
	g.rumorSeen[id] = true
	g.rumorFIFO = append(g.rumorFIFO, id)
	if len(g.rumorFIFO) > rumorDedupCap {
		delete(g.rumorSeen, g.rumorFIFO[0])
		g.rumorFIFO = g.rumorFIFO[1:]
	}
	return true
}

// unmarkRumor forgets id, so a rumor whose pull failed can be accepted
// again on retry instead of being deduped into a hole until the next
// pull round.
func (g *gossip) unmarkRumor(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.rumorSeen, id)
	for i, v := range g.rumorFIFO {
		if v == id {
			g.rumorFIFO = append(g.rumorFIFO[:i], g.rumorFIFO[i+1:]...)
			break
		}
	}
}

// HandleNotify is the receiver side of a rumor: dedup it, pull the
// advertised range from the origin synchronously (so the sender's POST
// returning means the data moved), then relay it onward with TTL-1.
// The pull shares the round mutex with the periodic loop, so cursors
// never race.
func (r *Replicator) HandleNotify(ctx context.Context, n Notification) (NotifyOutcome, error) {
	ctx, span := r.tracer.StartSpan(ctx, "gossip.notify")
	out, err := r.handleNotify(ctx, n)
	span.SetAttr("origin", normalizePeer(n.Origin))
	span.SetAttr("result", out.Result)
	span.End(err)
	return out, err
}

func (r *Replicator) handleNotify(ctx context.Context, n Notification) (NotifyOutcome, error) {
	var out NotifyOutcome
	g := r.g
	if g == nil {
		return out, ErrGossipDisabled
	}
	origin := normalizePeer(n.Origin)
	if origin == "" || len(n.Segments) == 0 {
		return out, ErrBadNotification
	}
	g.received.Add(1)
	if origin == g.advertise {
		out.Result = "self"
		return out, nil
	}
	id := rumorID(origin, n.Segments)
	if !g.markRumor(id) {
		g.duplicates.Add(1)
		out.Result = "duplicate"
		return out, nil
	}
	p := r.peerByName(origin)
	if p == nil {
		// Nothing to pull from (no cursor namespace for a stranger) and
		// nothing worth relaying: peers we cannot verify would spread
		// unverifiable rumors.
		g.unknownOrigin.Add(1)
		out.Result = "unknown-origin"
		return out, nil
	}

	r.syncMu.Lock()
	cursor := p.loadCursor(r.st)
	behind := false
	for _, seg := range n.Segments {
		if cursor[seg.Seq] < seg.Size {
			behind = true
			break
		}
	}
	var res pullResult
	var pullErr error
	if behind {
		g.pulls.Add(1)
		res, pullErr = r.pullSegments(ctx, p, n.Segments, cursor)
		if res.segsPulled > 0 {
			// Cursor strictly after the data, as everywhere else.
			r.st.PutMeta(cursorMetaPrefix+p.name, store.MarshalCursor(cursor))
			if err := r.st.Flush(); err != nil && pullErr == nil {
				pullErr = err
			}
		}
		p.mu.Lock()
		p.cursor = cursor
		p.ingested += res.ingested
		p.skipped += res.skipped
		p.bytesFetched += res.fetched
		p.segsPulled += res.segsPulled
		if pullErr != nil {
			p.lastErr = pullErr.Error()
		}
		p.mu.Unlock()
	}
	r.syncMu.Unlock()
	if pullErr != nil {
		// Forget the rumor so a re-send retries the pull instead of
		// deduping into a gap the repair loop would have to fill.
		g.unmarkRumor(id)
		return out, pullErr
	}
	out.Ingested, out.Skipped = res.ingested, res.skipped
	if behind {
		out.Result = "pulled"
	} else {
		out.Result = "current"
	}

	ttl := n.TTL
	if ttl > maxGossipTTL {
		ttl = maxGossipTTL
	}
	if ttl > 1 {
		targets := r.pickTargets(g.fanout, origin, g.advertise)
		if len(targets) > 0 {
			out.Relayed = len(targets)
			g.relayed.Add(int64(len(targets)))
			relay := Notification{Origin: origin, TTL: ttl - 1, Segments: n.Segments}
			// Detached: the sender's POST must not wait for the next hop;
			// sendNotify bounds each send with notifyTimeout. The trace
			// context survives the detach so relay hops stay correlated
			// under the originating advertisement's trace ID.
			rctx := context.Background()
			if tc, ok := obs.TraceFrom(ctx); ok {
				rctx = obs.ContextWithTrace(rctx, tc)
			}
			go r.sendNotify(rctx, relay, targets)
		}
	}
	return out, nil
}

// GossipStats is the push side's observable state, folded into Stats.
type GossipStats struct {
	// Advertise is the origin URL stamped on this node's rumors.
	Advertise string `json:"advertise"`
	Fanout    int    `json:"fanout"`
	TTL       int    `json:"ttl"`
	// RumorsSent counts accepted outbound notifications (originated and
	// relayed); SendErrors counts rejected or unreachable ones.
	RumorsSent int64 `json:"rumorsSent"`
	SendErrors int64 `json:"sendErrors"`
	// RumorsReceived counts inbound notifications before dedup.
	RumorsReceived int64 `json:"rumorsReceived"`
	Duplicates     int64 `json:"duplicates"`
	UnknownOrigin  int64 `json:"unknownOrigin"`
	// PullsTriggered counts rumors that found this node behind and
	// triggered a synchronous catch-up pull.
	PullsTriggered int64 `json:"pullsTriggered"`
	// Relayed counts onward forwards of fresh rumors.
	Relayed int64 `json:"relayed"`
	// HintsRecorded / HintsDelivered count hinted-handoff writes and
	// successful deliveries to recovered owners; HintErrors counts
	// failed delivery attempts (retried on the owner's next recovery).
	HintsRecorded  int64 `json:"hintsRecorded"`
	HintsDelivered int64 `json:"hintsDelivered"`
	HintErrors     int64 `json:"hintErrors"`
}

// gossipStats snapshots the gossip counters (nil when gossip is off).
func (r *Replicator) gossipStats() *GossipStats {
	g := r.g
	if g == nil {
		return nil
	}
	return &GossipStats{
		Advertise:      g.advertise,
		Fanout:         g.fanout,
		TTL:            g.ttl,
		RumorsSent:     g.sent.Load(),
		SendErrors:     g.sendErrors.Load(),
		RumorsReceived: g.received.Load(),
		Duplicates:     g.duplicates.Load(),
		UnknownOrigin:  g.unknownOrigin.Load(),
		PullsTriggered: g.pulls.Load(),
		Relayed:        g.relayed.Load(),
		HintsRecorded:  g.hintsRecorded.Load(),
		HintsDelivered: g.hintsDelivered.Load(),
		HintErrors:     g.hintErrors.Load(),
	}
}

// hintValue is the durable hint record body: which signatures the owner
// missed while it was down. Delivery pushes the full manifest (cursor
// comparison on the owner's side pulls only what it lacks), so the
// signature list is operator color, not the transfer unit.
type hintValue struct {
	Signatures []string `json:"signatures"`
}

// RecordHint durably notes that owner — a ring peer, by base URL — was
// unavailable when this node committed the result for signature, so the
// owner is missing a key it should serve warm. Implements dispatch's
// Hints seam. Hints are written through the store's ordered log as meta
// records; they never replicate (Ingest skips meta), so each node only
// delivers what it witnessed.
func (r *Replicator) RecordHint(owner, signature string) {
	g := r.g
	if g == nil {
		return
	}
	owner = normalizePeer(owner)
	if owner == "" {
		return
	}
	g.hintMu.Lock()
	defer g.hintMu.Unlock()
	var hv hintValue
	if val, ok := r.st.GetMeta(handoffMetaPrefix + owner); ok {
		_ = json.Unmarshal(val, &hv)
	}
	for _, s := range hv.Signatures {
		if s == signature {
			return // already hinted; no extra log traffic
		}
	}
	if len(hv.Signatures) < maxHintSignatures {
		hv.Signatures = append(hv.Signatures, signature)
	}
	data, _ := json.Marshal(hv)
	r.st.PutMeta(handoffMetaPrefix+owner, data)
	g.hintsRecorded.Add(1)
}

// DeliverHints checks for a pending hint against owner and, if one
// exists, pushes this node's full manifest at it as one direct TTL-1
// notification — the owner's cursor comparison pulls exactly the backlog
// it missed. Called by dispatch when a probe sees the owner healthy
// again; the delivery runs detached so the probing job is never blocked
// on it. Implements dispatch's Hints seam.
func (r *Replicator) DeliverHints(owner string) {
	g := r.g
	if g == nil {
		return
	}
	owner = normalizePeer(owner)
	g.hintMu.Lock()
	val, ok := r.st.GetMeta(handoffMetaPrefix + owner)
	g.hintMu.Unlock()
	var hv hintValue
	if !ok || json.Unmarshal(val, &hv) != nil || len(hv.Signatures) == 0 {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), notifyTimeout)
		defer cancel()
		if err := r.st.Flush(); err != nil {
			g.hintErrors.Add(1)
			return
		}
		manifest, err := r.st.Manifest()
		if err != nil || len(manifest) == 0 {
			g.hintErrors.Add(1)
			return
		}
		n := Notification{Origin: g.advertise, TTL: 1, Segments: manifest}
		if err := r.postNotify(ctx, owner, n); err != nil {
			g.hintErrors.Add(1)
			r.logff("replicate: handoff to %s failed (kept for next recovery): %v", owner, err)
			return
		}
		g.hintMu.Lock()
		r.st.PutMeta(handoffMetaPrefix+owner, []byte("{}"))
		g.hintMu.Unlock()
		g.hintsDelivered.Add(1)
		r.logff("replicate: delivered handoff hint to recovered owner %s (%d signature(s))", owner, len(hv.Signatures))
	}()
}
