package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"javaflow/internal/admit"
	"javaflow/internal/obs"
	"javaflow/internal/store"
)

// Manifest is the GET /v1/replicate/segments wire envelope, shared by the
// serve handler (producer) and this client (consumer).
type Manifest struct {
	Segments []store.SegmentInfo `json:"segments"`
}

// maxSegmentFetch bounds one segment response: segments rotate at 8 MiB
// by default, so anything near this is a misconfigured peer, not data.
const maxSegmentFetch = 256 << 20

// maxErrorBody bounds how much of a failed response becomes error text.
const maxErrorBody = 4 << 10

// get issues one GET against the peer and returns the response on status
// 200, closing the body on every other path.
func (r *Replicator) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	obs.Inject(req, ctx)
	// Carry this round's deadline so an overloaded peer can shed the pull
	// at admission instead of streaming bytes nobody will wait for.
	admit.Inject(req, ctx)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		resp.Body.Close()
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, fmt.Errorf("replicate: %s: status %d: %s", url, resp.StatusCode, msg)
	}
	return resp, nil
}

// fetchManifest polls one peer's segment inventory.
func (r *Replicator) fetchManifest(ctx context.Context, base string) ([]store.SegmentInfo, error) {
	resp, err := r.get(ctx, strings.TrimRight(base, "/")+"/v1/replicate/segments")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("replicate: decoding manifest from %s: %w", base, err)
	}
	return m.Segments, nil
}

// postNotify pushes one rumor at a peer's POST /v1/replicate/notify.
// Only status 200 counts as delivered; anything else (including a peer
// running without gossip, which answers 404) is an error the caller
// accounts as a failed send.
func (r *Replicator) postNotify(ctx context.Context, base string, n Notification) error {
	body, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	url := normalizePeer(base) + "/v1/replicate/notify"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(req, ctx)
	admit.Inject(req, ctx)
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return fmt.Errorf("replicate: %s: status %d: %s", url, resp.StatusCode, msg)
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	return nil
}

// fetchSegment streams segment seq's bytes from offset from to its
// currently visible end.
func (r *Replicator) fetchSegment(ctx context.Context, base string, seq int, from int64) ([]byte, error) {
	url := fmt.Sprintf("%s/v1/replicate/segment/%d?from=%d", strings.TrimRight(base, "/"), seq, from)
	resp, err := r.get(ctx, url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentFetch))
	if err != nil {
		return nil, fmt.Errorf("replicate: reading segment %d from %s: %w", seq, base, err)
	}
	return data, nil
}
