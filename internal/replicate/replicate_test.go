package replicate_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/replicate"
	"javaflow/internal/scenario/chaos"
	"javaflow/internal/scenario/chaosfs"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

const testMaxCycles = 200_000

// cursorMetaPrefix mirrors the replicator's store-meta namespace — pinned
// here so a rename upstream fails a test instead of silently orphaning
// persisted cursors.
const cursorMetaPrefix = "replcursor|"

func compact2(t testing.TB) sim.Config {
	t.Helper()
	for _, cfg := range sim.Configurations() {
		if cfg.Name == "Compact2" {
			return cfg
		}
	}
	t.Fatal("no Compact2 configuration")
	return sim.Config{}
}

// hostableMethods returns n named-corpus methods the Compact2 fabric
// accepts — methods whose runs every node can both compute and serve.
func hostableMethods(t testing.TB, n int) []*classfile.Method {
	t.Helper()
	cfg := compact2(t)
	var out []*classfile.Method
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err == nil {
			out = append(out, m)
			if len(out) == n {
				return out
			}
		}
	}
	t.Fatalf("only %d hostable methods, want %d", len(out), n)
	return nil
}

// node is one simulated jfserved: its own store directory, scheduler,
// service, and HTTP server.
type node struct {
	dir   string
	st    *store.Store
	sched *serve.Scheduler
	svc   *serve.Service
	ts    *httptest.Server
}

func newNode(t *testing.T, methods []*classfile.Method) *node {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers:       2,
		MaxMeshCycles: testMaxCycles,
		Store:         st,
	})
	svc := serve.NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(serve.NewHandler(svc))
	n := &node{dir: dir, st: st, sched: sched, svc: svc, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return n
}

// compute runs m on this node's scheduler (persisting the result) and
// flushes the store so the segment bytes are pullable.
func (n *node) compute(t *testing.T, m *classfile.Method) sim.MethodRun {
	t.Helper()
	run, err := n.sched.RunMethodCycles(context.Background(), compact2(t), m, testMaxCycles)
	if err != nil {
		t.Fatalf("compute %s: %v", m.Signature(), err)
	}
	if err := n.st.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return run
}

func newReplicator(t *testing.T, st *store.Store, peers ...string) *replicate.Replicator {
	t.Helper()
	r, err := replicate.New(replicate.Options{Store: st, Peers: peers})
	if err != nil {
		t.Fatalf("replicate.New: %v", err)
	}
	return r
}

func syncNow(t *testing.T, r *replicate.Replicator) {
	t.Helper()
	if err := r.SyncNow(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// encodedRun fetches k from st and returns the stable binary encoding.
func encodedRun(t *testing.T, st *store.Store, k store.RunKey) []byte {
	t.Helper()
	run, ok := st.GetRun(k)
	if !ok {
		t.Fatalf("key %s missing", k.Signature)
	}
	data, err := run.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestConvergenceAllToAll is the acceptance contract: three nodes run
// disjoint sweeps, replicate all-to-all, and every store must converge to
// the same live-record set, with every record byte-identical to the node
// that computed it — no engine re-runs.
func TestConvergenceAllToAll(t *testing.T) {
	methods := hostableMethods(t, 3)
	cfg := compact2(t)
	nodes := []*node{newNode(t, methods), newNode(t, methods), newNode(t, methods)}

	// Disjoint sweeps: node i computes only method i.
	for i, n := range nodes {
		n.compute(t, methods[i])
	}

	// One all-to-all anti-entropy round.
	for i, n := range nodes {
		peers := make([]string, 0, 2)
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p.ts.URL)
			}
		}
		syncNow(t, newReplicator(t, n.st, peers...))
	}

	// Every node serves every run, byte-identical to every other node.
	for _, m := range methods {
		k := store.RunKeyFor(cfg, m, testMaxCycles)
		want := encodedRun(t, nodes[0].st, k)
		for _, n := range nodes[1:] {
			if !bytes.Equal(encodedRun(t, n.st, k), want) {
				t.Fatalf("run %s differs across nodes", m.Signature())
			}
		}
	}

	// Convergence in the admin report: identical payload record counts
	// (meta records are node-local cursors and excluded by contract).
	base := nodes[0].st.Admin()
	if base.Records-base.MetaRecords == 0 {
		t.Fatal("no payload records after convergence")
	}
	for _, n := range nodes[1:] {
		rep := n.st.Admin()
		if rep.Records-rep.MetaRecords != base.Records-base.MetaRecords {
			t.Fatalf("payload record counts diverge: %d vs %d",
				rep.Records-rep.MetaRecords, base.Records-base.MetaRecords)
		}
	}

	// HTTP contract: GET /v1/run for any key is byte-identical across
	// nodes and a pure store hit — zero additional engine runs.
	misses := make([]int64, len(nodes))
	for i, n := range nodes {
		misses[i] = n.st.Stats().RunMisses
	}
	for _, m := range methods {
		var want []byte
		for i, n := range nodes {
			body := postRun(t, n.ts.URL, "Compact2", m.Signature())
			if i == 0 {
				want = body
			} else if !bytes.Equal(body, want) {
				t.Fatalf("POST /v1/run %s differs between node 0 and node %d:\n%s\nvs\n%s",
					m.Signature(), i, want, body)
			}
		}
	}
	for i, n := range nodes {
		if got := n.st.Stats().RunMisses; got != misses[i] {
			t.Fatalf("node %d re-ran the engine for replicated keys (misses %d -> %d)", i, misses[i], got)
		}
	}
}

func postRun(t *testing.T, base, cfgName, sig string) []byte {
	t.Helper()
	body, err := json.Marshal(serve.RunRequest{Config: cfgName, Method: sig})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run %s: status %d: %s", sig, resp.StatusCode, data)
	}
	return data
}

// TestConvergenceTransitiveChain: records hop through intermediate nodes
// (epidemic propagation) — C pulls only from B, B only from A, yet A's
// record reaches C because ingested records land in B's own segments.
func TestConvergenceTransitiveChain(t *testing.T) {
	methods := hostableMethods(t, 1)
	cfg := compact2(t)
	a := newNode(t, methods)
	b := newNode(t, methods)
	c := newNode(t, methods)
	a.compute(t, methods[0])

	syncNow(t, newReplicator(t, b.st, a.ts.URL))
	syncNow(t, newReplicator(t, c.st, b.ts.URL))

	k := store.RunKeyFor(cfg, methods[0], testMaxCycles)
	if !bytes.Equal(encodedRun(t, c.st, k), encodedRun(t, a.st, k)) {
		t.Fatal("record did not propagate A -> B -> C byte-identically")
	}
}

// TestCursorPersistence: a fresh replicator over the same store resumes
// from the persisted cursor — nothing is re-fetched, nothing re-offered.
func TestCursorPersistence(t *testing.T) {
	methods := hostableMethods(t, 1)
	src := newNode(t, methods)
	src.compute(t, methods[0])

	dst := newNode(t, methods)
	r1 := newReplicator(t, dst.st, src.ts.URL)
	syncNow(t, r1)
	s1 := r1.Stats()
	if len(s1.Peers) != 1 || s1.Peers[0].BytesFetched == 0 || s1.Peers[0].RecordsIngested == 0 {
		t.Fatalf("first sync stats = %+v, want a real pull", s1.Peers)
	}
	if !s1.Peers[0].CaughtUp {
		t.Fatalf("first sync did not catch up: %+v", s1.Peers[0])
	}
	if _, ok := dst.st.GetMeta(cursorMetaPrefix + src.ts.URL); !ok {
		t.Fatal("cursor not persisted in the store")
	}

	// A brand-new replicator (a restarted daemon) must pick the cursor up
	// from the store and fetch zero bytes.
	r2 := newReplicator(t, dst.st, src.ts.URL)
	syncNow(t, r2)
	s2 := r2.Stats()
	if s2.Peers[0].BytesFetched != 0 || s2.Peers[0].RecordsIngested != 0 || s2.Peers[0].RecordsSkipped != 0 {
		t.Fatalf("resumed sync re-fetched: %+v", s2.Peers[0])
	}
	if !s2.Peers[0].CaughtUp {
		t.Fatalf("resumed sync not caught up: %+v", s2.Peers[0])
	}
	if got := r2.SyncedPeers(); len(got) != 1 || got[0] != src.ts.URL {
		t.Fatalf("SyncedPeers = %v, want the source", got)
	}
}

// TestCrashMidIngestReplaysFromDurableCursor extends the corruption
// harness across the wire: a destination crash tears its ingested tail
// and the cursor behind it; after reopening, the next round re-fetches
// from the last durable point and converges.
func TestCrashMidIngestReplaysFromDurableCursor(t *testing.T) {
	methods := hostableMethods(t, 3)
	cfg := compact2(t)
	src := newNode(t, methods)
	for _, m := range methods {
		src.compute(t, m)
	}

	dstDir := t.TempDir()
	dst, err := store.Open(dstDir, store.Options{})
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	syncNow(t, newReplicator(t, dst, src.ts.URL))
	full := dst.Len() // runs + deployments + the cursor meta record
	if err := dst.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Crash: tear the tail of the destination's only segment — the cursor
	// record (appended last) plus part of the final ingested record.
	seg, err := chaosfs.LastSegment(dstDir)
	if err != nil {
		t.Fatalf("no destination segments: %v", err)
	}
	// 160 bytes reaches past the ~100-byte cursor record, into the last
	// data record.
	if err := chaosfs.TruncateTail(seg, 160); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	dst2, err := store.Open(dstDir, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dst2.Close()
	if _, ok := dst2.GetMeta(cursorMetaPrefix + src.ts.URL); ok {
		t.Fatal("cursor survived the tear that lost its records")
	}
	// The tear must have cost the cursor plus at least one data record.
	before := dst2.Len()
	if before > full-2 {
		t.Fatalf("tear lost too little (%d of %d records live)", before, full)
	}

	r := newReplicator(t, dst2, src.ts.URL)
	syncNow(t, r)
	for _, m := range methods {
		k := store.RunKeyFor(cfg, m, testMaxCycles)
		if !bytes.Equal(encodedRun(t, dst2, k), encodedRun(t, src.st, k)) {
			t.Fatalf("record %s not byte-identical after recovery", m.Signature())
		}
	}
	st := r.Stats()
	if st.Peers[0].BytesFetched == 0 || !st.Peers[0].CaughtUp {
		t.Fatalf("recovery round stats = %+v, want a re-fetch that catches up", st.Peers[0])
	}
}

// TestPartialRoundKeepsCursorProgress: when one segment of a round fails
// to fetch, the progress made on earlier segments must be kept (cursor
// persisted) so the next round re-fetches only the failed segment onward.
func TestPartialRoundKeepsCursorProgress(t *testing.T) {
	srcDir := t.TempDir()
	// MaxSegmentBytes 1 rotates on every append: one record per segment.
	src, err := store.Open(srcDir, store.Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	cfg := compact2(t)
	m := hostableMethods(t, 1)[0]
	run, err := (&sim.Runner{MaxMeshCycles: testMaxCycles}).RunMethod(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	var keys []store.RunKey
	for i := 0; i < 3; i++ {
		k := store.RunKeyFor(cfg, m, testMaxCycles)
		k.Signature = fmt.Sprintf("%s#%d", k.Signature, i)
		keys = append(keys, k)
		src.PutRun(k, run)
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	manifest, err := src.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest) < 2 {
		t.Fatalf("want >=2 source segments, got %+v", manifest)
	}
	lastSeq := manifest[len(manifest)-1].Seq

	// Serve the source through a flap gate that can fail the last segment.
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: src})
	gate := &chaos.FlapGate{
		Inner: serve.NewHandler(serve.NewService(sched, sim.Configurations(), nil)),
		Match: func(r *http.Request) bool {
			return r.URL.Path == fmt.Sprintf("/v1/replicate/segment/%d", lastSeq)
		},
	}
	ts := httptest.NewServer(gate)
	t.Cleanup(ts.Close)

	dst, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	r := newReplicator(t, dst, ts.URL)

	gate.Down()
	if err := r.SyncNow(context.Background()); err == nil {
		t.Fatal("sync succeeded despite the injected segment failure")
	}
	if gate.Faults() == 0 {
		t.Fatal("flap gate never rejected the targeted segment fetch")
	}
	s1 := r.Stats().Peers[0]
	if s1.BytesFetched == 0 || s1.CaughtUp || s1.LastError == "" {
		t.Fatalf("partial round stats = %+v, want progress recorded with an error", s1)
	}
	if _, ok := dst.GetMeta(cursorMetaPrefix + ts.URL); !ok {
		t.Fatal("partial progress was not persisted")
	}

	gate.Up()
	syncNow(t, r)
	s2 := r.Stats().Peers[0]
	// The recovery round must fetch only the failed tail, not re-download
	// the already-ingested prefix.
	var total int64
	for _, seg := range manifest {
		total += seg.Size
	}
	delta := s2.BytesFetched - s1.BytesFetched
	if delta <= 0 || delta >= total {
		t.Fatalf("recovery fetched %d of %d log bytes after %d, want only the failed remainder",
			delta, total, s1.BytesFetched)
	}
	if !s2.CaughtUp || s2.LastError != "" {
		t.Fatalf("recovery round stats = %+v, want caught up", s2)
	}
	for _, k := range keys {
		if !dst.HasRun(k) {
			t.Fatalf("key %s missing after recovery", k.Signature)
		}
	}
}

// TestForcedSyncEndpoint drives POST /v1/replicate/sync end to end: the
// destination daemon pulls on demand and reports its replication stats.
func TestForcedSyncEndpoint(t *testing.T) {
	methods := hostableMethods(t, 1)
	src := newNode(t, methods)
	src.compute(t, methods[0])

	dst := newNode(t, methods)
	dst.svc.SetReplicator(newReplicator(t, dst.st, src.ts.URL))

	resp, err := http.Post(dst.ts.URL+"/v1/replicate/sync", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST sync: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST sync: status %d: %s", resp.StatusCode, body)
	}
	var stats replicate.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Rounds != 1 || len(stats.Peers) != 1 || stats.Peers[0].RecordsIngested == 0 {
		t.Fatalf("sync stats = %+v, want one round with ingested records", stats)
	}
	k := store.RunKeyFor(compact2(t), methods[0], testMaxCycles)
	if !dst.st.HasRun(k) {
		t.Fatal("forced sync did not ingest the record")
	}

	// Without a replicator the endpoint 404s.
	bare := newNode(t, methods)
	resp2, err := http.Post(bare.ts.URL+"/v1/replicate/sync", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST sync: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("sync without replicator: status %d, want 404", resp2.StatusCode)
	}
}
