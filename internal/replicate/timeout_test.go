package replicate

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/store"
)

// TestDefaultClientHasTransportTimeouts pins that a Replicator built
// without a client gets transport-level dial and response-header bounds —
// the regression this PR fixes was a default transport that could hang a
// sync round forever on a wedged peer.
func TestDefaultClientHasTransportTimeouts(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := New(Options{Store: st, Peers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := r.client.Transport.(*http.Transport)
	if !ok {
		t.Fatal("default client transport is not *http.Transport")
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Fatal("default client has no ResponseHeaderTimeout")
	}
	if tr.DialContext == nil {
		t.Fatal("default client has no bounded dialer")
	}
}

// TestSyncNowFailsFastOnStalledPeer is the satellite regression test: a
// peer that accepts the manifest GET and never writes headers must fail
// its slice of the round at the header timeout, not wedge SyncNow until
// the caller's context expires.
func TestSyncNowFailsFastOnStalledPeer(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // never write headers
	}))
	defer ts.Close()
	defer close(stall) // LIFO: unblock the handler before Close waits on it

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := New(Options{
		Store: st,
		Peers: []string{ts.URL},
		Client: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: 200 * time.Millisecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- r.SyncNow(context.Background()) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("SyncNow succeeded against a stalled peer")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SyncNow wedged past the header timeout on a stalled peer")
	}
}

// TestPullCarriesDeadlineHeader pins deadline propagation on the pull
// path: a sync round driven by a context with a deadline announces that
// deadline to the peer, so an overloaded peer can shed the pull at
// admission.
func TestPullCarriesDeadlineHeader(t *testing.T) {
	headers := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case headers <- r.Header.Get(admit.DeadlineHeader):
		default:
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := New(Options{Store: st, Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = r.SyncNow(ctx) // peer answers 404; only the outbound header matters

	select {
	case h := <-headers:
		if h == "" {
			t.Fatal("manifest GET carried no deadline header despite a context deadline")
		}
		if _, ok := admit.ParseDeadline(h, time.Now()); !ok {
			t.Fatalf("deadline header %q does not parse", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the manifest GET")
	}
}
