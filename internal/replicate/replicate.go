// Package replicate keeps a fleet of jfserved stores convergent without
// shared filesystems or consensus, on two planes sharing one substrate.
// The pull plane is classic anti-entropy: a background Replicator on
// every node periodically polls its peers' segment manifests (GET
// /v1/replicate/segments), streams only the segment bytes it has not
// ingested yet (GET /v1/replicate/segment/{seq}, resumed from a per-peer
// cursor persisted in the local store), and merges the fetched frames
// through store.Ingest — which re-validates every CRC and skips keys that
// are already live. The push plane is gossip/rumor mongering (see
// gossip.go): a node that commits payload records advertises the new
// segment positions at a few random peers (POST /v1/replicate/notify),
// which pull the delta immediately and relay the rumor onward with a TTL
// — warm results are fleet-wide in milliseconds while the pull loop,
// which repairs anything push missed, can tick hourly.
//
// No node coordinates, and any topology that keeps the fleet connected
// converges every store to the union of all live records. Convergence is
// trivially safe because records are content-keyed and immutable — two
// nodes can only ever disagree by one of them missing a record, never by
// holding different values for the same key — so "merge" degenerates to
// byte-exact dedup, and a node that pulled a record serves it
// byte-identical to the node that computed it, without re-running the
// engine.
//
// Crash safety rides on the store's ordering guarantee: a peer's cursor
// is appended to the log after the records it claims, so a crash
// mid-ingest tears away the cursor no later than the data. Reopening
// replays from the last durable cursor and the next round re-fetches the
// lost tail; dedup absorbs anything that survived twice.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/obs"
	"javaflow/internal/store"
)

// DefaultInterval is the anti-entropy polling period when Options.Interval
// is zero: short enough that a warm result computed anywhere is fleet-wide
// within seconds, long enough that idle fleets cost a few manifest GETs.
const DefaultInterval = 15 * time.Second

// Transport bounds for the default peer client: a peer that accepts the
// TCP connection but never answers must fail fast, not hold the round.
const (
	defaultDialTimeout           = 5 * time.Second
	defaultResponseHeaderTimeout = 30 * time.Second
)

// cursorMetaPrefix namespaces the per-peer cursor meta records in the
// store ("meta|replcursor|<peer URL>").
const cursorMetaPrefix = "replcursor|"

// normalizePeer canonicalizes a peer base URL exactly the way
// dispatch.Remote.Name() does. Every identity derived from a peer URL —
// cursor meta keys, rumor dedup IDs, notification origins, handoff hint
// keys — MUST pass through here, so "http://h:1" and "http://h:1/" can
// never fork into two cursor namespaces or two independent rumors for
// the same delta.
func normalizePeer(p string) string { return strings.TrimRight(p, "/") }

// Options configures a Replicator.
type Options struct {
	// Store is the local store foreign segments merge into. Required.
	Store *store.Store
	// Peers are the base URLs of the jfserved instances to pull from
	// (typically the same list dispatch uses).
	Peers []string
	// Interval is the polling period (<=0 uses DefaultInterval).
	Interval time.Duration
	// Client is the HTTP client for peer traffic (nil uses a dedicated
	// client; per-request lifetimes come from contexts, not client
	// timeouts, because a segment fetch is bounded by segment size).
	Client *http.Client
	// Logf, when non-nil, receives operator-facing progress lines.
	Logf func(format string, args ...any)

	// Advertise, when non-empty, enables push/rumor-mongering gossip and
	// is the base URL peers reach this node at (it becomes
	// Notification.Origin, so it must appear in the peers' own Peers
	// lists, or they will drop the rumor as unknown-origin). With gossip
	// enabled, Start also installs a store append hook: every committed
	// payload record wakes the notifier, which advertises the (segment
	// seq, size, CRC) delta to GossipFanout random peers; the periodic
	// pull loop remains the repair path for missed rumors.
	Advertise string
	// GossipFanout is how many random peers each advertisement (and each
	// onward relay) targets. <=0 picks ceil(log2(len(Peers)+1)) — the
	// classic epidemic fanout that reaches N nodes in O(log N) hops.
	GossipFanout int
	// GossipTTL is the hop budget stamped on locally originated rumors
	// (<=0 uses DefaultGossipTTL). Together with rumor-ID dedup it makes
	// rumors die out instead of echoing forever.
	GossipTTL int

	// Tracer records pull and gossip spans; pass the serving node's
	// serve.Metrics tracer so replication hops land in the same
	// /debug/traces dump as the requests they serve. Nil disables spans.
	Tracer *obs.Tracer
	// Registry receives the replicator's counters and per-peer pull
	// histograms. Nil leaves them unregistered (still visible in Stats).
	Registry *obs.Registry
	// Journal receives replication state transitions (foreign-segment
	// ingests, cursor heals after a failing peer recovers, suspected
	// partitions when gossip sends fail) as structured events. Nil
	// disables event recording.
	Journal *obs.Journal
}

// peerState is one peer's replication position and accounting. The mutex
// guards everything below it; the sync loop writes, Stats and SyncedPeers
// read.
type peerState struct {
	name string

	mu           sync.Mutex
	cursor       map[int]int64 // seq -> bytes ingested (persisted in the store)
	loaded       bool          // cursor recovered from the store yet?
	ingested     int64
	skipped      int64
	bytesFetched int64
	segsPulled   int64
	lastSync     time.Time // completion time of the last successful round
	lastErr      string
	caughtUp     bool // last round ended with every manifest segment fully ingested
}

// Replicator pulls missing store segments from peers. All methods are safe
// for concurrent use; rounds themselves are serialized.
type Replicator struct {
	st       *store.Store
	peers    []*peerState
	interval time.Duration
	client   *http.Client
	logf     func(format string, args ...any)

	syncMu sync.Mutex // one reconciliation (round or notify pull) at a time
	rounds atomic.Int64
	errs   atomic.Int64

	tracer   *obs.Tracer
	journal  *obs.Journal
	pullHist *obs.HistogramVec // per-peer pull duration (round slice or notify delta)

	// g is the push/rumor-mongering side; nil when Options.Advertise is
	// empty (pull-only replicator).
	g *gossip
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// New builds a replicator over opts.Peers. Peer reachability is not
// checked here — an unreachable peer just fails its slice of each round
// and is retried on the next.
func New(opts Options) (*Replicator, error) {
	if opts.Store == nil {
		return nil, errors.New("replicate: Options.Store is required")
	}
	if len(opts.Peers) == 0 {
		return nil, errors.New("replicate: at least one peer is required")
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	client := opts.Client
	if client == nil {
		// No overall timeout — a segment fetch is bounded by segment size,
		// not wall time — but the transport bounds connection establishment
		// and time-to-first-header so a wedged peer fails its slice of the
		// round instead of stalling the sync loop until the context expires.
		client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: defaultDialTimeout}).DialContext,
			ResponseHeaderTimeout: defaultResponseHeaderTimeout,
			MaxIdleConns:          len(opts.Peers) * 2,
			MaxIdleConnsPerHost:   2,
		}}
	}
	r := &Replicator{
		st:       opts.Store,
		interval: interval,
		client:   client,
		logf:     opts.Logf,
	}
	seen := make(map[string]bool, len(opts.Peers))
	for _, p := range opts.Peers {
		// Normalize exactly the way dispatch.Remote.Name() does, so
		// SyncedPeers matches backend names (warm-retry preference) and a
		// trailing slash in -peers cannot fork a second cursor namespace.
		p = normalizePeer(p)
		if seen[p] {
			return nil, fmt.Errorf("replicate: duplicate peer %q", p)
		}
		seen[p] = true
		r.peers = append(r.peers, &peerState{name: p})
	}
	if opts.Advertise != "" {
		r.g = newGossip(normalizePeer(opts.Advertise), len(r.peers), opts.GossipFanout, opts.GossipTTL)
	}
	r.tracer = opts.Tracer
	r.journal = opts.Journal
	r.register(opts.Registry)
	return r, nil
}

// register exposes the replicator's counters and per-peer pull histograms
// in the node registry (no-op on a nil registry).
func (r *Replicator) register(reg *obs.Registry) {
	r.pullHist = reg.NewHistogramVec("javaflow_replicate_pull_duration_seconds",
		"Per-peer reconciliation latency: a pull round's slice or a gossip delta pull.", "peer")
	if reg == nil {
		return
	}
	reg.CounterFunc("javaflow_replicate_rounds_total", "Completed anti-entropy rounds.",
		func() float64 { return float64(r.rounds.Load()) })
	reg.CounterFunc("javaflow_replicate_round_errors_total", "Per-peer failures across rounds.",
		func() float64 { return float64(r.errs.Load()) })
	reg.CounterFunc("javaflow_replicate_ingested_records_total", "Records pulled in from peers.",
		func() float64 {
			var n int64
			for _, p := range r.peers {
				p.mu.Lock()
				n += p.ingested
				p.mu.Unlock()
			}
			return float64(n)
		})
	if r.g != nil {
		reg.CounterFunc("javaflow_gossip_rumors_sent_total", "Gossip notifications sent (originated).",
			func() float64 { return float64(r.g.sent.Load()) })
		reg.CounterFunc("javaflow_gossip_rumors_relayed_total", "Gossip notifications relayed onward.",
			func() float64 { return float64(r.g.relayed.Load()) })
		reg.CounterFunc("javaflow_gossip_rumors_received_total", "Gossip notifications received.",
			func() float64 { return float64(r.g.received.Load()) })
		reg.CounterFunc("javaflow_gossip_duplicates_total", "Received rumors dropped as duplicates.",
			func() float64 { return float64(r.g.duplicates.Load()) })
		reg.CounterFunc("javaflow_gossip_pulls_total", "Delta pulls triggered by notifications.",
			func() float64 { return float64(r.g.pulls.Load()) })
	}
}

// peerByName finds the configured peer whose normalized base URL is name.
func (r *Replicator) peerByName(name string) *peerState {
	for _, p := range r.peers {
		if p.name == name {
			return p
		}
	}
	return nil
}

func (r *Replicator) logff(format string, args ...any) {
	if r.logf != nil {
		r.logf(format, args...)
	}
}

// Start launches the background sync loop: one round immediately (so a
// fresh daemon warms up without waiting a full interval), then one per
// interval. With gossip enabled (Options.Advertise) it also installs the
// store append hook and starts the notifier, so every committed payload
// record — engine run or ingested foreign frame — is pushed at random
// peers without waiting for their next pull. The returned stop is
// idempotent and waits for any in-flight round to finish.
func (r *Replicator) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.SyncNow(ctx); err != nil && ctx.Err() == nil {
			r.logff("replicate: %v", err)
		}
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if err := r.SyncNow(ctx); err != nil && ctx.Err() == nil {
				r.logff("replicate: %v", err)
			}
		}
	}()
	gossipDone := r.startGossip(ctx)
	var once sync.Once
	return func() {
		once.Do(func() {
			if r.g != nil {
				r.st.SetAppendHook(nil)
			}
			cancel()
			<-done
			<-gossipDone
		})
	}
}

// SyncNow runs one full anti-entropy round inline: every peer's manifest
// is polled and every missing segment range fetched and ingested. Rounds
// are serialized — a forced round concurrent with the background loop
// waits its turn. The returned error joins the per-peer failures; a peer
// that failed keeps its cursor and is retried next round.
func (r *Replicator) SyncNow(ctx context.Context) error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	var errs []error
	for _, p := range r.peers {
		if err := ctx.Err(); err != nil {
			return err
		}
		pctx, span := r.tracer.StartSpan(ctx, "replicate.pull")
		span.SetAttr("peer", p.name)
		start := time.Now()
		err := r.syncPeer(pctx, p)
		r.pullHist.With(p.name).Record(time.Since(start))
		span.End(err)
		if err != nil {
			r.errs.Add(1)
			errs = append(errs, fmt.Errorf("peer %s: %w", p.name, err))
		}
	}
	r.rounds.Add(1)
	return errors.Join(errs...)
}

// loadCursor returns a copy of the peer's cursor, recovering it from the
// store's meta record on first use (the last durable point — records the
// cursor claims are guaranteed replayed, see store.PutMeta).
func (p *peerState) loadCursor(st *store.Store) map[int]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.loaded {
		p.cursor = make(map[int]int64)
		if val, ok := st.GetMeta(cursorMetaPrefix + p.name); ok {
			p.cursor = store.UnmarshalCursor(val)
		}
		p.loaded = true
	}
	out := make(map[int]int64, len(p.cursor))
	for seq, off := range p.cursor {
		out[seq] = off
	}
	return out
}

// fail records a round failure for Stats.
func (p *peerState) fail(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.caughtUp = false
	p.mu.Unlock()
}

// pullResult accumulates one reconciliation pass against a peer.
type pullResult struct {
	ingested, skipped, fetched, segsPulled int64
}

// pullSegments fetches and ingests every byte of segs that cursor has
// not covered yet, advancing cursor in place. It is the shared transfer
// path for the periodic pull round (called with a full manifest) and a
// gossip notification (called with just the advertised delta). The
// caller persists the advanced cursor after the data and owns the peer
// bookkeeping; a mid-pass failure returns the progress made so far —
// already ingested segments are durable, so their cursor advance
// survives and the next reconciliation re-fetches only the failed
// segment onward, not the whole log.
func (r *Replicator) pullSegments(ctx context.Context, p *peerState, segs []store.SegmentInfo, cursor map[int]int64) (pullResult, error) {
	var res pullResult
	sorted := append([]store.SegmentInfo(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	for _, seg := range sorted {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		from := cursor[seg.Seq]
		if from >= seg.Size {
			continue
		}
		data, err := r.fetchSegment(ctx, p.name, seg.Seq, from)
		if err != nil {
			return res, err
		}
		// A full-segment fetch can be checked against the advertised CRC;
		// partial resumes rely on the per-frame CRCs Ingest enforces.
		if from == 0 && int64(len(data)) >= seg.Size {
			if crc32.Checksum(data[:seg.Size], castagnoli) != seg.CRC32C {
				return res, fmt.Errorf("replicate: segment %d checksum mismatch (transfer corrupt or segment rewritten)", seg.Seq)
			}
		}
		ires, err := r.st.Ingest(data)
		if err != nil {
			// Includes *store.MaintenanceBusyError when a compaction holds
			// the store; this segment's cursor is untouched, the next
			// reconciliation re-fetches it.
			return res, err
		}
		if ires.Bytes == 0 && len(data) > 0 {
			return res, fmt.Errorf("replicate: segment %d yielded no frames at offset %d (cursor off a frame boundary?)", seg.Seq, from)
		}
		cursor[seg.Seq] = from + ires.Bytes
		res.ingested += int64(ires.Ingested)
		res.skipped += int64(ires.Skipped + ires.SkippedMeta)
		res.fetched += int64(len(data))
		res.segsPulled++
		if ires.CRCSkipped > 0 {
			r.logff("replicate: %s segment %d: %d checksum-failed frame(s) skipped", p.name, seg.Seq, ires.CRCSkipped)
		}
	}
	return res, nil
}

// syncPeer reconciles this store against one peer: fetch the manifest,
// stream every byte range the cursor has not covered, ingest, then
// persist the advanced cursor (after the data, never before).
func (r *Replicator) syncPeer(ctx context.Context, p *peerState) error {
	manifest, err := r.fetchManifest(ctx, p.name)
	if err != nil {
		p.fail(err)
		return err
	}
	cursor := p.loadCursor(r.st)
	res, roundErr := r.pullSegments(ctx, p, manifest, cursor)
	ingested, skipped, fetched, segsPulled := res.ingested, res.skipped, res.fetched, res.segsPulled

	caughtUp := roundErr == nil
	if roundErr == nil {
		// Forget positions for segments the peer compacted away; their
		// replacement (a higher seq) is covered by the rounds above, and a
		// stale entry would leak one map slot per compaction forever.
		// Only on a clean round — after a failure the manifest was not
		// fully worked, and progress must never be thrown away.
		live := make(map[int]bool, len(manifest))
		for _, seg := range manifest {
			live[seg.Seq] = true
			if cursor[seg.Seq] < seg.Size {
				caughtUp = false
			}
		}
		for seq := range cursor {
			if !live[seq] {
				delete(cursor, seq)
			}
		}
	}

	if segsPulled > 0 {
		// Persist the cursor strictly after the ingested records: the log
		// is ordered, so a torn tail can never keep the cursor while
		// losing the data it claims.
		r.st.PutMeta(cursorMetaPrefix+p.name, store.MarshalCursor(cursor))
		if err := r.st.Flush(); err != nil {
			if roundErr == nil {
				roundErr = err
			}
			caughtUp = false
		} else {
			r.logff("replicate: %s — %d records ingested, %d already present, %d bytes from %d segment(s)",
				p.name, ingested, skipped, fetched, segsPulled)
			if ingested > 0 {
				r.journal.Emit("replicate", "ingest", obs.SevInfo, traceIDFrom(ctx),
					"peer", p.name,
					"records", strconv.FormatInt(ingested, 10),
					"bytes", strconv.FormatInt(fetched, 10))
			}
		}
	}

	p.mu.Lock()
	p.cursor = cursor
	p.ingested += ingested
	p.skipped += skipped
	p.bytesFetched += fetched
	p.segsPulled += segsPulled
	p.caughtUp = caughtUp
	healed := roundErr == nil && p.lastErr != ""
	if roundErr != nil {
		p.lastErr = roundErr.Error()
	} else {
		p.lastSync = time.Now()
		p.lastErr = ""
	}
	p.mu.Unlock()
	if healed {
		// The peer's cursor advanced cleanly after at least one failed
		// round — the partition (or crash) against it has healed.
		r.journal.Emit("replicate", "cursor_heal", obs.SevInfo, traceIDFrom(ctx), "peer", p.name)
	}
	return roundErr
}

// traceIDFrom extracts the active trace ID for journal events ("" when
// the context carries no trace).
func traceIDFrom(ctx context.Context) string {
	tc, _ := obs.TraceFrom(ctx)
	return tc.TraceID
}

// SyncedPeers lists the peers whose segment logs this node had fully
// ingested as of their last successful round — peers actively exchanging
// segments with us. Dispatch fronts prefer these on a warm-key retry: in
// a fully meshed fleet a caught-up peer holds every warm result any node
// has computed, so routing a retry there serves bytes from its store
// instead of re-running the engine somewhere cold.
func (r *Replicator) SyncedPeers() []string {
	var out []string
	for _, p := range r.peers {
		p.mu.Lock()
		if p.caughtUp && p.lastErr == "" {
			out = append(out, p.name)
		}
		p.mu.Unlock()
	}
	return out
}

// PeerStats is one peer's slice of Stats — the /v1/store and /metrics
// replication block.
type PeerStats struct {
	Peer string `json:"peer"`
	// Cursor is the persisted per-segment position (seq -> bytes
	// ingested), the exact state a restart resumes from.
	Cursor map[string]int64 `json:"cursor,omitempty"`
	// RecordsIngested / RecordsSkipped count pulled records versus
	// offered-but-already-present ones, over this process's lifetime.
	RecordsIngested int64 `json:"recordsIngested"`
	RecordsSkipped  int64 `json:"recordsSkipped"`
	BytesFetched    int64 `json:"bytesFetched"`
	SegmentsPulled  int64 `json:"segmentsPulled"`
	// LastSyncUnixMs is when the last successful round against this peer
	// finished (0 = never).
	LastSyncUnixMs int64  `json:"lastSyncUnixMs"`
	LastError      string `json:"lastError,omitempty"`
	// CaughtUp reports whether that round left nothing unfetched.
	CaughtUp bool `json:"caughtUp"`
}

// Stats is the replicator's observable state.
type Stats struct {
	IntervalSeconds float64 `json:"intervalSeconds"`
	Rounds          int64   `json:"rounds"`
	RoundErrors     int64   `json:"roundErrors"`
	// Gossip is the push/rumor-mongering block; absent on pull-only
	// replicators (Options.Advertise unset).
	Gossip *GossipStats `json:"gossip,omitempty"`
	Peers  []PeerStats  `json:"peers"`
}

// Stats snapshots the replication counters and per-peer cursors.
func (r *Replicator) Stats() Stats {
	s := Stats{
		IntervalSeconds: r.interval.Seconds(),
		Rounds:          r.rounds.Load(),
		RoundErrors:     r.errs.Load(),
		Gossip:          r.gossipStats(),
		Peers:           make([]PeerStats, 0, len(r.peers)),
	}
	for _, p := range r.peers {
		p.mu.Lock()
		ps := PeerStats{
			Peer:            p.name,
			RecordsIngested: p.ingested,
			RecordsSkipped:  p.skipped,
			BytesFetched:    p.bytesFetched,
			SegmentsPulled:  p.segsPulled,
			LastError:       p.lastErr,
			CaughtUp:        p.caughtUp,
		}
		if !p.lastSync.IsZero() {
			ps.LastSyncUnixMs = p.lastSync.UnixMilli()
		}
		if len(p.cursor) > 0 {
			ps.Cursor = make(map[string]int64, len(p.cursor))
			for seq, off := range p.cursor {
				ps.Cursor[fmt.Sprintf("%d", seq)] = off
			}
		}
		p.mu.Unlock()
		s.Peers = append(s.Peers, ps)
	}
	return s
}
