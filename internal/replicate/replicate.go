// Package replicate keeps a fleet of jfserved stores convergent without
// shared filesystems or consensus: a background Replicator on every node
// periodically polls its peers' segment manifests (GET
// /v1/replicate/segments), streams only the segment bytes it has not
// ingested yet (GET /v1/replicate/segment/{seq}, resumed from a per-peer
// cursor persisted in the local store), and merges the fetched frames
// through store.Ingest — which re-validates every CRC and skips keys that
// are already live.
//
// The protocol is pull-based anti-entropy in the classic epidemic style:
// no node pushes, no node coordinates, and any polling topology that
// keeps the fleet connected converges every store to the union of all
// live records. Convergence is trivially safe because records are
// content-keyed and immutable — two nodes can only ever disagree by one
// of them missing a record, never by holding different values for the
// same key — so "merge" degenerates to byte-exact dedup, and a node that
// pulled a record serves it byte-identical to the node that computed it,
// without re-running the engine.
//
// Crash safety rides on the store's ordering guarantee: a peer's cursor
// is appended to the log after the records it claims, so a crash
// mid-ingest tears away the cursor no later than the data. Reopening
// replays from the last durable cursor and the next round re-fetches the
// lost tail; dedup absorbs anything that survived twice.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/store"
)

// DefaultInterval is the anti-entropy polling period when Options.Interval
// is zero: short enough that a warm result computed anywhere is fleet-wide
// within seconds, long enough that idle fleets cost a few manifest GETs.
const DefaultInterval = 15 * time.Second

// cursorMetaPrefix namespaces the per-peer cursor meta records in the
// store ("meta|replcursor|<peer URL>").
const cursorMetaPrefix = "replcursor|"

// Options configures a Replicator.
type Options struct {
	// Store is the local store foreign segments merge into. Required.
	Store *store.Store
	// Peers are the base URLs of the jfserved instances to pull from
	// (typically the same list dispatch uses).
	Peers []string
	// Interval is the polling period (<=0 uses DefaultInterval).
	Interval time.Duration
	// Client is the HTTP client for peer traffic (nil uses a dedicated
	// client; per-request lifetimes come from contexts, not client
	// timeouts, because a segment fetch is bounded by segment size).
	Client *http.Client
	// Logf, when non-nil, receives operator-facing progress lines.
	Logf func(format string, args ...any)
}

// peerState is one peer's replication position and accounting. The mutex
// guards everything below it; the sync loop writes, Stats and SyncedPeers
// read.
type peerState struct {
	name string

	mu           sync.Mutex
	cursor       map[int]int64 // seq -> bytes ingested (persisted in the store)
	loaded       bool          // cursor recovered from the store yet?
	ingested     int64
	skipped      int64
	bytesFetched int64
	segsPulled   int64
	lastSync     time.Time // completion time of the last successful round
	lastErr      string
	caughtUp     bool // last round ended with every manifest segment fully ingested
}

// Replicator pulls missing store segments from peers. All methods are safe
// for concurrent use; rounds themselves are serialized.
type Replicator struct {
	st       *store.Store
	peers    []*peerState
	interval time.Duration
	client   *http.Client
	logf     func(format string, args ...any)

	syncMu sync.Mutex // one anti-entropy round at a time
	rounds atomic.Int64
	errs   atomic.Int64
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// New builds a replicator over opts.Peers. Peer reachability is not
// checked here — an unreachable peer just fails its slice of each round
// and is retried on the next.
func New(opts Options) (*Replicator, error) {
	if opts.Store == nil {
		return nil, errors.New("replicate: Options.Store is required")
	}
	if len(opts.Peers) == 0 {
		return nil, errors.New("replicate: at least one peer is required")
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        len(opts.Peers) * 2,
			MaxIdleConnsPerHost: 2,
		}}
	}
	r := &Replicator{
		st:       opts.Store,
		interval: interval,
		client:   client,
		logf:     opts.Logf,
	}
	seen := make(map[string]bool, len(opts.Peers))
	for _, p := range opts.Peers {
		// Normalize exactly the way dispatch.Remote.Name() does, so
		// SyncedPeers matches backend names (warm-retry preference) and a
		// trailing slash in -peers cannot fork a second cursor namespace.
		p = strings.TrimRight(p, "/")
		if seen[p] {
			return nil, fmt.Errorf("replicate: duplicate peer %q", p)
		}
		seen[p] = true
		r.peers = append(r.peers, &peerState{name: p})
	}
	return r, nil
}

func (r *Replicator) logff(format string, args ...any) {
	if r.logf != nil {
		r.logf(format, args...)
	}
}

// Start launches the background sync loop: one round immediately (so a
// fresh daemon warms up without waiting a full interval), then one per
// interval. The returned stop is idempotent and waits for any in-flight
// round to finish.
func (r *Replicator) Start() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.SyncNow(ctx); err != nil && ctx.Err() == nil {
			r.logff("replicate: %v", err)
		}
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if err := r.SyncNow(ctx); err != nil && ctx.Err() == nil {
				r.logff("replicate: %v", err)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// SyncNow runs one full anti-entropy round inline: every peer's manifest
// is polled and every missing segment range fetched and ingested. Rounds
// are serialized — a forced round concurrent with the background loop
// waits its turn. The returned error joins the per-peer failures; a peer
// that failed keeps its cursor and is retried next round.
func (r *Replicator) SyncNow(ctx context.Context) error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	var errs []error
	for _, p := range r.peers {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := r.syncPeer(ctx, p); err != nil {
			r.errs.Add(1)
			errs = append(errs, fmt.Errorf("peer %s: %w", p.name, err))
		}
	}
	r.rounds.Add(1)
	return errors.Join(errs...)
}

// loadCursor returns a copy of the peer's cursor, recovering it from the
// store's meta record on first use (the last durable point — records the
// cursor claims are guaranteed replayed, see store.PutMeta).
func (p *peerState) loadCursor(st *store.Store) map[int]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.loaded {
		p.cursor = make(map[int]int64)
		if val, ok := st.GetMeta(cursorMetaPrefix + p.name); ok {
			p.cursor = store.UnmarshalCursor(val)
		}
		p.loaded = true
	}
	out := make(map[int]int64, len(p.cursor))
	for seq, off := range p.cursor {
		out[seq] = off
	}
	return out
}

// fail records a round failure for Stats.
func (p *peerState) fail(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.caughtUp = false
	p.mu.Unlock()
}

// syncPeer reconciles this store against one peer: fetch the manifest,
// stream every byte range the cursor has not covered, ingest, then
// persist the advanced cursor (after the data, never before). A failure
// partway through the round keeps the progress made so far — already
// ingested segments are durable, so their cursor advance is persisted
// before the error is reported and the next round re-fetches only the
// failed segment onward, not the whole log.
func (r *Replicator) syncPeer(ctx context.Context, p *peerState) error {
	manifest, err := r.fetchManifest(ctx, p.name)
	if err != nil {
		p.fail(err)
		return err
	}
	cursor := p.loadCursor(r.st)

	var ingested, skipped, fetched, segsPulled int64
	var roundErr error
	sort.Slice(manifest, func(i, j int) bool { return manifest[i].Seq < manifest[j].Seq })
	for _, seg := range manifest {
		if roundErr = ctx.Err(); roundErr != nil {
			break
		}
		from := cursor[seg.Seq]
		if from >= seg.Size {
			continue
		}
		data, err := r.fetchSegment(ctx, p.name, seg.Seq, from)
		if err != nil {
			roundErr = err
			break
		}
		// A full-segment fetch can be checked against the manifest CRC;
		// partial resumes rely on the per-frame CRCs Ingest enforces.
		if from == 0 && int64(len(data)) >= seg.Size {
			if crc32.Checksum(data[:seg.Size], castagnoli) != seg.CRC32C {
				roundErr = fmt.Errorf("replicate: segment %d checksum mismatch (transfer corrupt or segment rewritten)", seg.Seq)
				break
			}
		}
		res, err := r.st.Ingest(data)
		if err != nil {
			// Includes *store.MaintenanceBusyError when a compaction holds
			// the store; this segment's cursor is untouched, the next
			// round re-fetches it.
			roundErr = err
			break
		}
		if res.Bytes == 0 && len(data) > 0 {
			roundErr = fmt.Errorf("replicate: segment %d yielded no frames at offset %d (cursor off a frame boundary?)", seg.Seq, from)
			break
		}
		cursor[seg.Seq] = from + res.Bytes
		ingested += int64(res.Ingested)
		skipped += int64(res.Skipped + res.SkippedMeta)
		fetched += int64(len(data))
		segsPulled++
		if res.CRCSkipped > 0 {
			r.logff("replicate: %s segment %d: %d checksum-failed frame(s) skipped", p.name, seg.Seq, res.CRCSkipped)
		}
	}

	caughtUp := roundErr == nil
	if roundErr == nil {
		// Forget positions for segments the peer compacted away; their
		// replacement (a higher seq) is covered by the rounds above, and a
		// stale entry would leak one map slot per compaction forever.
		// Only on a clean round — after a failure the manifest was not
		// fully worked, and progress must never be thrown away.
		live := make(map[int]bool, len(manifest))
		for _, seg := range manifest {
			live[seg.Seq] = true
			if cursor[seg.Seq] < seg.Size {
				caughtUp = false
			}
		}
		for seq := range cursor {
			if !live[seq] {
				delete(cursor, seq)
			}
		}
	}

	if segsPulled > 0 {
		// Persist the cursor strictly after the ingested records: the log
		// is ordered, so a torn tail can never keep the cursor while
		// losing the data it claims.
		r.st.PutMeta(cursorMetaPrefix+p.name, store.MarshalCursor(cursor))
		if err := r.st.Flush(); err != nil {
			if roundErr == nil {
				roundErr = err
			}
			caughtUp = false
		} else {
			r.logff("replicate: %s — %d records ingested, %d already present, %d bytes from %d segment(s)",
				p.name, ingested, skipped, fetched, segsPulled)
		}
	}

	p.mu.Lock()
	p.cursor = cursor
	p.ingested += ingested
	p.skipped += skipped
	p.bytesFetched += fetched
	p.segsPulled += segsPulled
	p.caughtUp = caughtUp
	if roundErr != nil {
		p.lastErr = roundErr.Error()
	} else {
		p.lastSync = time.Now()
		p.lastErr = ""
	}
	p.mu.Unlock()
	return roundErr
}

// SyncedPeers lists the peers whose segment logs this node had fully
// ingested as of their last successful round — peers actively exchanging
// segments with us. Dispatch fronts prefer these on a warm-key retry: in
// a fully meshed fleet a caught-up peer holds every warm result any node
// has computed, so routing a retry there serves bytes from its store
// instead of re-running the engine somewhere cold.
func (r *Replicator) SyncedPeers() []string {
	var out []string
	for _, p := range r.peers {
		p.mu.Lock()
		if p.caughtUp && p.lastErr == "" {
			out = append(out, p.name)
		}
		p.mu.Unlock()
	}
	return out
}

// PeerStats is one peer's slice of Stats — the /v1/store and /metrics
// replication block.
type PeerStats struct {
	Peer string `json:"peer"`
	// Cursor is the persisted per-segment position (seq -> bytes
	// ingested), the exact state a restart resumes from.
	Cursor map[string]int64 `json:"cursor,omitempty"`
	// RecordsIngested / RecordsSkipped count pulled records versus
	// offered-but-already-present ones, over this process's lifetime.
	RecordsIngested int64 `json:"recordsIngested"`
	RecordsSkipped  int64 `json:"recordsSkipped"`
	BytesFetched    int64 `json:"bytesFetched"`
	SegmentsPulled  int64 `json:"segmentsPulled"`
	// LastSyncUnixMs is when the last successful round against this peer
	// finished (0 = never).
	LastSyncUnixMs int64  `json:"lastSyncUnixMs"`
	LastError      string `json:"lastError,omitempty"`
	// CaughtUp reports whether that round left nothing unfetched.
	CaughtUp bool `json:"caughtUp"`
}

// Stats is the replicator's observable state.
type Stats struct {
	IntervalSeconds float64     `json:"intervalSeconds"`
	Rounds          int64       `json:"rounds"`
	RoundErrors     int64       `json:"roundErrors"`
	Peers           []PeerStats `json:"peers"`
}

// Stats snapshots the replication counters and per-peer cursors.
func (r *Replicator) Stats() Stats {
	s := Stats{
		IntervalSeconds: r.interval.Seconds(),
		Rounds:          r.rounds.Load(),
		RoundErrors:     r.errs.Load(),
		Peers:           make([]PeerStats, 0, len(r.peers)),
	}
	for _, p := range r.peers {
		p.mu.Lock()
		ps := PeerStats{
			Peer:            p.name,
			RecordsIngested: p.ingested,
			RecordsSkipped:  p.skipped,
			BytesFetched:    p.bytesFetched,
			SegmentsPulled:  p.segsPulled,
			LastError:       p.lastErr,
			CaughtUp:        p.caughtUp,
		}
		if !p.lastSync.IsZero() {
			ps.LastSyncUnixMs = p.lastSync.UnixMilli()
		}
		if len(p.cursor) > 0 {
			ps.Cursor = make(map[string]int64, len(p.cursor))
			for seq, off := range p.cursor {
				ps.Cursor[fmt.Sprintf("%d", seq)] = off
			}
		}
		p.mu.Unlock()
		s.Peers = append(s.Peers, ps)
	}
	return s
}
