package replicate_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"javaflow/internal/replicate"
	"javaflow/internal/store"
)

// handoffMetaPrefix mirrors the replicator's hint namespace — pinned here
// so a rename upstream fails a test instead of orphaning durable hints.
const handoffMetaPrefix = "handoff|"

// newGossipReplicator builds a push-enabled replicator: advertise is the
// URL peers reach this node at, and the hour-long pull interval guarantees
// that anything converging inside a test did so via push, not the repair
// loop.
func newGossipReplicator(t *testing.T, st *store.Store, advertise string, peers ...string) *replicate.Replicator {
	t.Helper()
	r, err := replicate.New(replicate.Options{
		Store:     st,
		Peers:     peers,
		Interval:  time.Hour,
		Advertise: advertise,
	})
	if err != nil {
		t.Fatalf("replicate.New: %v", err)
	}
	return r
}

// postNotify drives POST /v1/replicate/notify and decodes the outcome.
func postNotify(t *testing.T, base string, n replicate.Notification) (int, replicate.NotifyOutcome) {
	t.Helper()
	body, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/replicate/notify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST notify: %v", err)
	}
	defer resp.Body.Close()
	var out replicate.NotifyOutcome
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode outcome: %v", err)
		}
	}
	return resp.StatusCode, out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConvergenceAllToAllGossip is TestConvergenceAllToAll's push twin:
// three gossiping nodes run disjoint sweeps and must converge to the same
// byte-identical record set WITHOUT a second pull round — the replicate
// interval is an hour, so only the commit-triggered advertisements can
// explain convergence.
func TestConvergenceAllToAllGossip(t *testing.T) {
	methods := hostableMethods(t, 3)
	cfg := compact2(t)
	nodes := []*node{newNode(t, methods), newNode(t, methods), newNode(t, methods)}

	reps := make([]*replicate.Replicator, len(nodes))
	for i, n := range nodes {
		peers := make([]string, 0, 2)
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p.ts.URL)
			}
		}
		reps[i] = newGossipReplicator(t, n.st, n.ts.URL, peers...)
		n.svc.SetReplicator(reps[i])
		stop := reps[i].Start()
		t.Cleanup(stop)
	}
	// Let each node finish its one startup pull round (over still-empty
	// stores) so the Rounds counter is quiescent before anything commits.
	for _, r := range reps {
		r := r
		waitFor(t, 5*time.Second, "startup round", func() bool { return r.Stats().Rounds >= 1 })
	}

	// Disjoint sweeps: node i computes only method i. Every append fires
	// the store hook, so the notifier advertises without being asked.
	for i, n := range nodes {
		n.compute(t, methods[i])
	}

	keys := make([]store.RunKey, len(methods))
	for i, m := range methods {
		keys[i] = store.RunKeyFor(cfg, m, testMaxCycles)
	}
	waitFor(t, 30*time.Second, "push convergence", func() bool {
		for _, n := range nodes {
			for _, k := range keys {
				if !n.st.HasRun(k) {
					return false
				}
			}
		}
		return true
	})

	// Byte-identical everywhere.
	for i, m := range methods {
		want := encodedRun(t, nodes[0].st, keys[i])
		for _, n := range nodes[1:] {
			if !bytes.Equal(encodedRun(t, n.st, keys[i]), want) {
				t.Fatalf("run %s differs across nodes", m.Signature())
			}
		}
	}

	// The proof: no node ran a second pull round, and every node was
	// caught up by at least one rumor-triggered pull.
	for i, r := range reps {
		s := r.Stats()
		if s.Rounds != 1 {
			t.Fatalf("node %d ran %d pull rounds; push convergence must not need more than the startup round", i, s.Rounds)
		}
		if s.Gossip == nil {
			t.Fatalf("node %d reports no gossip stats", i)
		}
		if s.Gossip.PullsTriggered == 0 {
			t.Fatalf("node %d converged without a rumor-triggered pull: %+v", i, s.Gossip)
		}
	}

	// Each node computed exactly its own method; everything else arrived
	// as bytes, never as an engine re-run.
	for i, n := range nodes {
		if misses := n.st.Stats().RunMisses; misses != 1 {
			t.Fatalf("node %d has %d engine misses, want exactly its own compute", i, misses)
		}
	}
}

// TestNotifyTrailingSlashSingleRumor pins the normalization contract: an
// origin spelled with a trailing slash is the same origin — one rumor
// dedup identity, one cursor namespace — not a fork.
func TestNotifyTrailingSlashSingleRumor(t *testing.T) {
	methods := hostableMethods(t, 1)
	cfg := compact2(t)
	src := newNode(t, methods)
	src.compute(t, methods[0])
	manifest, err := src.st.Manifest()
	if err != nil {
		t.Fatal(err)
	}

	dst := newNode(t, methods)
	dst.svc.SetReplicator(newGossipReplicator(t, dst.st, dst.ts.URL, src.ts.URL))

	// First notify, origin spelled with a trailing slash.
	status, out := postNotify(t, dst.ts.URL, replicate.Notification{
		Origin: src.ts.URL + "/", TTL: replicate.DefaultGossipTTL, Segments: manifest,
	})
	if status != http.StatusOK || out.Result != "pulled" || out.Ingested == 0 {
		t.Fatalf("slashed-origin notify: status %d outcome %+v, want a pull", status, out)
	}
	k := store.RunKeyFor(cfg, methods[0], testMaxCycles)
	if !bytes.Equal(encodedRun(t, dst.st, k), encodedRun(t, src.st, k)) {
		t.Fatal("notified pull not byte-identical")
	}

	// Same positions, canonical spelling: the rumor must dedup, not pull
	// again under a second identity.
	status, out = postNotify(t, dst.ts.URL, replicate.Notification{
		Origin: src.ts.URL, TTL: replicate.DefaultGossipTTL, Segments: manifest,
	})
	if status != http.StatusOK || out.Result != "duplicate" {
		t.Fatalf("canonical-origin notify: status %d outcome %+v, want duplicate", status, out)
	}

	// One cursor namespace: the canonical key exists, the slashed one
	// must not.
	if _, ok := dst.st.GetMeta(cursorMetaPrefix + src.ts.URL); !ok {
		t.Fatal("canonical cursor missing after notified pull")
	}
	if _, ok := dst.st.GetMeta(cursorMetaPrefix + src.ts.URL + "/"); ok {
		t.Fatal("trailing slash forked a second cursor namespace")
	}

	// Contract edges: a structurally empty notification is a 400, and a
	// pull-only node 404s the endpoint entirely.
	status, _ = postNotify(t, dst.ts.URL, replicate.Notification{TTL: 1})
	if status != http.StatusBadRequest {
		t.Fatalf("empty notification: status %d, want 400", status)
	}
	pullOnly := newNode(t, methods)
	pullOnly.svc.SetReplicator(newReplicator(t, pullOnly.st, src.ts.URL))
	status, _ = postNotify(t, pullOnly.ts.URL, replicate.Notification{
		Origin: src.ts.URL, TTL: 1, Segments: manifest,
	})
	if status != http.StatusNotFound {
		t.Fatalf("notify on pull-only node: status %d, want 404", status)
	}
}

// TestGossipRelayChain: a rumor hops A -> B -> C even though A never
// notifies C directly — B relays with TTL-1 — and a TTL of 1 stops the
// epidemic at the receiver.
func TestGossipRelayChain(t *testing.T) {
	methods := hostableMethods(t, 2)
	cfg := compact2(t)
	a := newNode(t, methods)
	b := newNode(t, methods)
	c := newNode(t, methods)

	aRep := newGossipReplicator(t, a.st, a.ts.URL, b.ts.URL)
	bRep := newGossipReplicator(t, b.st, b.ts.URL, a.ts.URL, c.ts.URL)
	cRep := newGossipReplicator(t, c.st, c.ts.URL, a.ts.URL)
	b.svc.SetReplicator(bRep)
	c.svc.SetReplicator(cRep)

	a.compute(t, methods[0])
	if err := aRep.AdvertiseNow(context.Background()); err != nil {
		t.Fatalf("advertise: %v", err)
	}

	// The receiver pulls synchronously before answering the POST, so A's
	// only peer is caught up the moment AdvertiseNow returns.
	k := store.RunKeyFor(cfg, methods[0], testMaxCycles)
	if !b.st.HasRun(k) {
		t.Fatal("first hop was not synchronous: B missing the key after AdvertiseNow")
	}

	// The second hop is B's detached relay: C is not A's peer, yet the
	// rumor reaches it (C pulls from A, the rumor's origin).
	waitFor(t, 10*time.Second, "relay to reach C", func() bool { return c.st.HasRun(k) })
	want := encodedRun(t, a.st, k)
	for _, n := range []*node{b, c} {
		if !bytes.Equal(encodedRun(t, n.st, k), want) {
			t.Fatal("relayed record not byte-identical")
		}
	}
	if g := bRep.Stats().Gossip; g.Relayed == 0 {
		t.Fatalf("B never relayed: %+v", g)
	}
	if g := cRep.Stats().Gossip; g.PullsTriggered != 1 {
		t.Fatalf("C gossip stats = %+v, want exactly one triggered pull", g)
	}

	// TTL floor: a fresh rumor delivered with TTL 1 is pulled but never
	// relayed onward.
	a.compute(t, methods[1])
	manifest, err := a.st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	out, err := bRep.HandleNotify(context.Background(), replicate.Notification{
		Origin: a.ts.URL, TTL: 1, Segments: manifest,
	})
	if err != nil || out.Result != "pulled" {
		t.Fatalf("TTL-1 notify: outcome %+v err %v, want a pull", out, err)
	}
	if out.Relayed != 0 {
		t.Fatalf("TTL-1 rumor was relayed to %d peer(s)", out.Relayed)
	}

	// A node's own rumor echoed back is ignored, and an origin outside
	// the peer list is dropped (nothing to pull from, nothing to relay).
	out, err = aRep.HandleNotify(context.Background(), replicate.Notification{
		Origin: a.ts.URL + "/", TTL: 2, Segments: manifest,
	})
	if err != nil || out.Result != "self" {
		t.Fatalf("echoed rumor: outcome %+v err %v, want self", out, err)
	}
	out, err = cRep.HandleNotify(context.Background(), replicate.Notification{
		Origin: b.ts.URL, TTL: 2, Segments: manifest,
	})
	if err != nil || out.Result != "unknown-origin" || out.Relayed != 0 {
		t.Fatalf("stranger rumor: outcome %+v err %v, want unknown-origin with no relay", out, err)
	}
}

// TestHandoffHintRecordAndDeliver drives the hinted-handoff seam directly:
// recording is durable, idempotent per signature, and normalized; delivery
// pushes the backlog at the recovered owner and clears the hint.
func TestHandoffHintRecordAndDeliver(t *testing.T) {
	methods := hostableMethods(t, 1)
	cfg := compact2(t)
	src := newNode(t, methods)
	dst := newNode(t, methods)

	srcRep := newGossipReplicator(t, src.st, src.ts.URL, dst.ts.URL)
	dstRep := newGossipReplicator(t, dst.st, dst.ts.URL, src.ts.URL)
	dst.svc.SetReplicator(dstRep)

	src.compute(t, methods[0])
	sig := methods[0].Signature()

	// Record under a sloppily spelled owner URL; the durable key must be
	// canonical, and re-recording the same signature must not grow it.
	srcRep.RecordHint(dst.ts.URL+"/", sig)
	srcRep.RecordHint(dst.ts.URL, sig)
	var hv struct {
		Signatures []string `json:"signatures"`
	}
	val, ok := src.st.GetMeta(handoffMetaPrefix + dst.ts.URL)
	if !ok {
		t.Fatal("hint not durably recorded under the canonical owner key")
	}
	if err := json.Unmarshal(val, &hv); err != nil || len(hv.Signatures) != 1 || hv.Signatures[0] != sig {
		t.Fatalf("hint record = %s (%v), want exactly [%s]", val, err, sig)
	}

	// Delivery is detached: the recovered owner converges shortly after.
	srcRep.DeliverHints(dst.ts.URL)
	k := store.RunKeyFor(cfg, methods[0], testMaxCycles)
	waitFor(t, 10*time.Second, "handoff delivery", func() bool { return dst.st.HasRun(k) })
	if !bytes.Equal(encodedRun(t, dst.st, k), encodedRun(t, src.st, k)) {
		t.Fatal("delivered backlog not byte-identical")
	}
	waitFor(t, 10*time.Second, "hint clearance", func() bool {
		return srcRep.Stats().Gossip.HintsDelivered == 1
	})
	val, ok = src.st.GetMeta(handoffMetaPrefix + dst.ts.URL)
	if !ok {
		t.Fatal("hint record vanished instead of clearing")
	}
	hv.Signatures = nil
	if err := json.Unmarshal(val, &hv); err != nil || len(hv.Signatures) != 0 {
		t.Fatalf("delivered hint not cleared: %s (%v)", val, err)
	}

	// A pull-only replicator has no push substrate: hints are no-ops.
	pullOnly := newReplicator(t, dst.st, src.ts.URL)
	pullOnly.RecordHint(src.ts.URL, sig)
	if _, ok := dst.st.GetMeta(handoffMetaPrefix + src.ts.URL); ok {
		t.Fatal("pull-only replicator recorded a hint")
	}
}
