package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"javaflow/internal/sim"
)

// ConfigDigest summarizes one configuration's sweep: how many methods ran
// and a SHA-256 digest over the concatenated MethodRun binary encodings in
// collection order. Two runs are byte-identical iff their digests match,
// which is what the CI catalog-equivalence check compares.
type ConfigDigest struct {
	Config   string `json:"config"`
	Methods  int    `json:"methods"`
	Skipped  int    `json:"skipped"`
	TimedOut int    `json:"timedOut"`
	Digest   string `json:"digest"`
}

// DigestRuns hashes the concatenated binary encodings of runs in order.
func DigestRuns(runs []sim.MethodRun) (string, error) {
	h := sha256.New()
	for _, run := range runs {
		data, err := run.MarshalBinary()
		if err != nil {
			return "", fmt.Errorf("scenario: encoding %s: %w", run.Signature, err)
		}
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DigestLine renders the stable one-line form shared by `jfbench -scenario`
// and the legacy `jfbench -sweep-digest` path, so CI can diff the two.
func (cd ConfigDigest) DigestLine() string {
	return fmt.Sprintf("digest %s methods=%d skipped=%d timedout=%d sha256=%s",
		cd.Config, cd.Methods, cd.Skipped, cd.TimedOut, cd.Digest)
}

// OracleReport summarizes a differential-oracle tier.
type OracleReport struct {
	Cells      int  `json:"cells"`
	Skipped    int  `json:"skipped"` // load-ineligible (method, config) pairs
	Mismatches int  `json:"mismatches"`
	Passed     bool `json:"passed"`
	// Detail carries the first divergence, for debugging.
	Detail string `json:"detail,omitempty"`
}

// FaultOutcome records one interpreted fault-schedule entry.
type FaultOutcome struct {
	Kind FaultKind `json:"kind"`
	// Injected reports the fault actually fired (a schedule that never
	// injects proves nothing).
	Injected bool `json:"injected"`
	// Recovered reports the system produced correct results anyway.
	Recovered bool   `json:"recovered"`
	Detail    string `json:"detail,omitempty"`
}

// TierResult is a per-tier pass/fail row.
type TierResult struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario string         `json:"scenario"`
	Tier     Tier           `json:"tier"`
	Configs  []ConfigDigest `json:"configs,omitempty"`
	Oracle   *OracleReport  `json:"oracle,omitempty"`
	Faults   []FaultOutcome `json:"faults,omitempty"`
	Tiers    []TierResult   `json:"tiers"`
	Passed   bool           `json:"passed"`
}

// Finish derives the per-tier rows and the overall verdict from the
// collected sections. Call once after all sections are filled in.
func (r *Report) Finish() {
	r.Tiers = r.Tiers[:0]
	r.Passed = true
	if len(r.Configs) > 0 {
		r.Tiers = append(r.Tiers, TierResult{
			Name: "sweep", Passed: true,
			Detail: fmt.Sprintf("%d configuration(s)", len(r.Configs)),
		})
	}
	if r.Oracle != nil {
		tr := TierResult{Name: "oracle", Passed: r.Oracle.Passed,
			Detail: fmt.Sprintf("%d cells, %d mismatches", r.Oracle.Cells, r.Oracle.Mismatches)}
		if !tr.Passed {
			r.Passed = false
		}
		r.Tiers = append(r.Tiers, tr)
	}
	if len(r.Faults) > 0 {
		ok := true
		for _, f := range r.Faults {
			if !f.Injected || !f.Recovered {
				ok = false
			}
		}
		if !ok {
			r.Passed = false
		}
		r.Tiers = append(r.Tiers, TierResult{Name: "chaos", Passed: ok,
			Detail: fmt.Sprintf("%d fault(s) injected", len(r.Faults))})
	}
}

// Render formats the report for terminals (jfbench output).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (tier %s)\n", r.Scenario, r.Tier)
	for _, cd := range r.Configs {
		fmt.Fprintf(&b, "  %s\n", cd.DigestLine())
	}
	if o := r.Oracle; o != nil {
		fmt.Fprintf(&b, "  oracle cells=%d skipped=%d mismatches=%d %s\n",
			o.Cells, o.Skipped, o.Mismatches, passFail(o.Passed))
		if o.Detail != "" {
			fmt.Fprintf(&b, "    first divergence: %s\n", o.Detail)
		}
	}
	for _, f := range r.Faults {
		fmt.Fprintf(&b, "  fault %-18s injected=%v recovered=%v %s\n",
			f.Kind, f.Injected, f.Recovered, f.Detail)
	}
	for _, tr := range r.Tiers {
		fmt.Fprintf(&b, "  tier %-8s %s (%s)\n", tr.Name, passFail(tr.Passed), tr.Detail)
	}
	fmt.Fprintf(&b, "scenario %s: %s\n", r.Scenario, passFail(r.Passed))
	return b.String()
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
