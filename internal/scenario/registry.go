package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Defaults parameterize catalog resolution so registry entries follow the
// process's -seed/-gen/-maxcycles flags instead of baking in copies.
type Defaults struct {
	Seed          int64
	GenCount      int
	MaxMeshCycles int
}

// Chapter-7 sweep defaults (Table 16 population, 400k-cycle bound), shared
// with experiments.Context.
const (
	DefaultSeed          = 2014
	DefaultGenCount      = 1580
	DefaultMaxMeshCycles = 400_000
)

func (d Defaults) withFallbacks() Defaults {
	if d.Seed == 0 {
		d.Seed = DefaultSeed
	}
	if d.GenCount == 0 {
		d.GenCount = DefaultGenCount
	}
	if d.MaxMeshCycles == 0 {
		d.MaxMeshCycles = DefaultMaxMeshCycles
	}
	return d
}

// NotFoundError reports an unknown scenario name.
type NotFoundError struct {
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("unknown scenario %q", e.Name)
}

// Registry holds the built-in catalog plus any user-loaded bundles, in
// registration order.
type Registry struct {
	defaults Defaults
	bundles  map[string]*Bundle
	order    []string
}

// NewRegistry builds a registry pre-populated with the catalog.
func NewRegistry(d Defaults) *Registry {
	r := &Registry{
		defaults: d.withFallbacks(),
		bundles:  make(map[string]*Bundle),
	}
	for _, b := range Catalog() {
		if err := r.Add(b); err != nil {
			panic(fmt.Sprintf("scenario: catalog entry broken: %v", err))
		}
	}
	return r
}

// Defaults returns the resolution defaults.
func (r *Registry) Defaults() Defaults { return r.defaults }

// Names lists scenarios in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Get returns a bundle by name or a *NotFoundError.
func (r *Registry) Get(name string) (*Bundle, error) {
	b, ok := r.bundles[name]
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return b, nil
}

// Resolve looks a scenario up and materializes it against the defaults.
func (r *Registry) Resolve(name string) (*Resolved, error) {
	b, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return b.Resolve(r.defaults)
}

// Add validates and registers a bundle; names are unique.
func (r *Registry) Add(b *Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if _, dup := r.bundles[b.Name]; dup {
		return fmt.Errorf("scenario %q already registered", b.Name)
	}
	r.bundles[b.Name] = b
	r.order = append(r.order, b.Name)
	return nil
}

// ParseBundle decodes one user scenario from JSON, rejecting unknown fields
// so typos fail loudly, and validates it.
func ParseBundle(data []byte) (*Bundle, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Bundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("scenario: parsing bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadFile reads, parses, validates and registers a user scenario file.
func (r *Registry) LoadFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	b, err := ParseBundle(data)
	if err != nil {
		return nil, err
	}
	if err := r.Add(b); err != nil {
		return nil, err
	}
	return b, nil
}

// Catalog returns the built-in bundles: every existing hard-coded suite
// sweep re-expressed as data (byte-identical results to the legacy paths),
// plus the adversarial oracle and chaos-fleet tiers.
func Catalog() []*Bundle {
	return []*Bundle{
		{
			Name:        "chapter7",
			Description: "Full Chapter-7 sweep: every named SPEC-analog method plus the seeded generated corpus across all six fabric configurations (the legacy jfbench -all population).",
			Tier:        TierStandard,
			Workload:    WorkloadSpec{Suites: []string{"named"}, Generated: &GenSpec{}},
		},
		{
			Name:        "scimark",
			Description: "SciMark 2.0 large analogs (FFT, LU, SOR, sparse matmult, Monte Carlo) across all configurations.",
			Tier:        TierStandard,
			Workload: WorkloadSpec{Suites: []string{
				"scimark.fft.large", "scimark.lu.large", "scimark.sor.large",
				"scimark.sparse.large", "scimark.monte_carlo",
			}},
		},
		{
			Name:        "crypto",
			Description: "SPECjvm2008 crypto.signverify analog (sha/mul/submul_1 kernels).",
			Tier:        TierStandard,
			Workload:    WorkloadSpec{Suites: []string{"crypto.signverify"}},
		},
		{
			Name:        "compress",
			Description: "Both compress eras (SPECjvm2008 compress and JVM98 _201_compress) over the shared LZW kernels.",
			Tier:        TierStandard,
			Workload:    WorkloadSpec{Suites: []string{"compress", "_201_compress"}},
		},
		{
			Name:        "spec98",
			Description: "The SPECjvm98 analog roster (_209_db, _222_mpegaudio, _202_jess, _227_mtrt, _228_jack, _201_compress).",
			Tier:        TierStandard,
			Workload:    WorkloadSpec{Suites: []string{"era:SpecJvm98"}},
		},
		{
			Name:        "adversarial-oracle",
			Description: "Property-generated bytecode corpus pushed through both engine loops (event-driven vs reference) with folding and a quiesce window; any divergence fails the tier.",
			Tier:        TierAdversarial,
			Workload:    WorkloadSpec{},
			Oracle: &OracleSpec{
				Seed: 9, Count: 16, MaxCycles: 60_000,
				Folding: true, QuiesceAt: 64, QuiesceFor: 700,
			},
		},
		{
			Name:        "overload",
			Description: "Overload drill on Compact2: a 4x-capacity flood against a capped admission gate must shed with typed 429s carrying an honest Retry-After while admitted work stays byte-identical and service recovers fully, and a wedged slow peer must be timed out at the transport and routed around.",
			Tier:        TierAdversarial,
			Workload:    WorkloadSpec{Suites: []string{"crypto.signverify"}},
			Configs:     []string{"Compact2"},
			Faults: []Fault{
				{Kind: FaultOverload, Cap: 2, Flood: 8},
				{Kind: FaultSlowPeer, DelayMs: 2000},
			},
		},
		{
			Name:        "chaos-fleet",
			Description: "Small corpus on Compact2 under the full fault schedule: a dispatch backend dies mid-batch, a replication peer flaps, a gossip partition drops push notifications until the next advertisement heals it, a flushed segment is corrupted on disk, and the deadline budget is squeezed.",
			Tier:        TierAdversarial,
			Workload: WorkloadSpec{
				Suites:    []string{"crypto.signverify"},
				Generated: &GenSpec{Seed: 11, Count: 24},
			},
			Configs: []string{"Compact2"},
			Faults: []Fault{
				{Kind: FaultBackendDeath, After: 1},
				{Kind: FaultPeerFlap},
				{Kind: FaultGossipPartition},
				{Kind: FaultStoreCorruption, Mode: CorruptBitFlip},
				{Kind: FaultDeadlinePressure, MaxCycles: 500},
			},
		},
	}
}
