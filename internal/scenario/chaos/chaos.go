// Package chaos holds the in-process fault injectors the scenario harness
// schedules against the dispatch and replication seams. They were promoted
// from one-off test doubles (PR 3's mid-batch backend death, PR 5's flapping
// replication peer) into reusable machinery: the fault tests and the
// `jfbench -scenario` chaos tiers now drive the same code.
//
// The package deliberately does not import internal/dispatch: Backend
// mirrors dispatch.Backend structurally, so FlakyBackend both wraps and
// satisfies it while staying importable from dispatch's own internal tests.
package chaos

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// Backend is structurally identical to dispatch.Backend.
type Backend interface {
	Name() string
	Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error)
}

// FlakyBackend wraps a Backend and kills it on schedule: after FailAfter
// successful calls (when >= 0), or whenever Kill has switched it off. Errors
// are transient from dispatch's point of view, so the ring retries the
// stranded jobs elsewhere — exactly the mid-batch death drill.
type FlakyBackend struct {
	Inner Backend
	// FailAfter is how many calls succeed before the backend dies;
	// negative means it only dies via Kill.
	FailAfter int64

	calls atomic.Int64
	dead  atomic.Bool
}

// Name reports the wrapped backend's name.
func (f *FlakyBackend) Name() string { return f.Inner.Name() }

// Run proxies to the wrapped backend until the death schedule fires.
func (f *FlakyBackend) Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	n := f.calls.Add(1)
	if f.dead.Load() || (f.FailAfter >= 0 && n > f.FailAfter) {
		return sim.MethodRun{}, fmt.Errorf("chaos: backend %s is dead", f.Inner.Name())
	}
	return f.Inner.Run(ctx, job, maxCycles)
}

// Kill switches the backend off immediately.
func (f *FlakyBackend) Kill() { f.dead.Store(true) }

// Revive brings a killed backend back and resets the call clock.
func (f *FlakyBackend) Revive() {
	f.dead.Store(false)
	f.calls.Store(0)
}

// Calls reports how many Run attempts the backend has seen.
func (f *FlakyBackend) Calls() int64 { return f.calls.Load() }

// FlapGate wraps an http.Handler and, while down, rejects matching requests
// with 500s — a flapping replication peer. Match selects which requests
// fault (nil = all). Down/Up flip the gate at any time, including from a
// request in flight.
type FlapGate struct {
	Inner http.Handler
	// Match limits faulting to selected requests, e.g. one segment path.
	Match func(r *http.Request) bool

	down   atomic.Bool
	faults atomic.Int64
}

// ServeHTTP rejects matching requests while the gate is down.
func (g *FlapGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() && (g.Match == nil || g.Match(r)) {
		g.faults.Add(1)
		http.Error(w, "chaos: peer flapping", http.StatusInternalServerError)
		return
	}
	g.Inner.ServeHTTP(w, r)
}

// Down starts faulting matching requests.
func (g *FlapGate) Down() { g.down.Store(true) }

// Up heals the peer.
func (g *FlapGate) Up() { g.down.Store(false) }

// Faults reports how many requests the gate rejected.
func (g *FlapGate) Faults() int64 { return g.faults.Load() }

// SlowGate wraps an http.Handler and, while slowed, holds matching requests
// for Delay before serving them — a peer that is alive at the TCP level but
// wedged at the application level. It drives two overload-protection
// drills: against a capped admission gate it synchronizes a flood so the
// burst arrives together, and against a dispatch client it proves transport
// header timeouts fail the attempt instead of pinning an inflight slot.
// The hold aborts early if the caller gives up (request context canceled),
// so abandoned requests do not leak goroutines for the full delay.
type SlowGate struct {
	Inner http.Handler
	// Match limits slowing to selected requests, e.g. POST /v1/run
	// (nil = all).
	Match func(r *http.Request) bool
	// Delay is how long each matching request is held.
	Delay time.Duration

	slow    atomic.Bool
	delayed atomic.Int64
}

// ServeHTTP holds matching requests while the gate is slowed.
func (g *SlowGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.slow.Load() && (g.Match == nil || g.Match(r)) {
		g.delayed.Add(1)
		t := time.NewTimer(g.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	g.Inner.ServeHTTP(w, r)
}

// Slow starts holding matching requests.
func (g *SlowGate) Slow() { g.slow.Store(true) }

// Fast heals the peer.
func (g *SlowGate) Fast() { g.slow.Store(false) }

// Delayed reports how many requests the gate held.
func (g *SlowGate) Delayed() int64 { return g.delayed.Load() }
