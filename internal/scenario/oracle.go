package scenario

import (
	"fmt"

	"javaflow/internal/classfile"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// RunOracle executes a differential-oracle tier: a seeded property-generated
// corpus is deployed onto every selected fabric and simulated by both engine
// loops — the event-driven core (Engine.Run) and the reference cycle loop
// (Engine.RunReference) — under both branch policies. Any divergence in
// Result structs or error text is a mismatch. This is the PR 4 differential
// invariant promoted from a test into schedulable scenario machinery.
func RunOracle(spec OracleSpec) (*OracleReport, error) {
	configs, err := configsByName(spec.Configs)
	if err != nil {
		return nil, fmt.Errorf("scenario: oracle: %w", err)
	}
	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = 60_000
	}

	var methods []*classfile.Method
	for _, cls := range workload.Generate(workload.GenConfig{Seed: spec.Seed, Count: spec.Count}) {
		for _, n := range cls.MethodNames() {
			methods = append(methods, cls.Methods[n])
		}
	}

	rep := &OracleReport{}
	for _, cfg := range configs {
		for _, m := range methods {
			res, err := sim.DeployMethod(cfg, m)
			if err != nil {
				rep.Skipped++ // ineligible for this fabric (Filter 1 etc.)
				continue
			}
			for _, policy := range []sim.BranchPolicy{sim.BP1, sim.BP2} {
				rep.Cells++
				newEngine := func() *sim.Engine {
					eng := sim.NewEngine(cfg, res, policy)
					eng.SetMaxCycles(maxCycles)
					if spec.Folding {
						eng.EnableFolding()
					}
					if spec.QuiesceFor > 0 {
						eng.ScheduleQuiesce(spec.QuiesceAt, spec.QuiesceFor)
					}
					return eng
				}
				ev, evErr := newEngine().Run()
				rf, rfErr := newEngine().RunReference()
				if detail, ok := diverged(m.Signature(), cfg.Name, policy, ev, rf, evErr, rfErr); !ok {
					rep.Mismatches++
					if rep.Detail == "" {
						rep.Detail = detail
					}
				}
			}
		}
	}
	rep.Passed = rep.Mismatches == 0
	return rep, nil
}

func diverged(sig, cfg string, p sim.BranchPolicy, ev, rf sim.Result, evErr, rfErr error) (string, bool) {
	cell := fmt.Sprintf("%s/%s/%s", sig, cfg, p)
	if (evErr == nil) != (rfErr == nil) {
		return fmt.Sprintf("%s: error divergence: event=%v reference=%v", cell, evErr, rfErr), false
	}
	if evErr != nil {
		if evErr.Error() != rfErr.Error() {
			return fmt.Sprintf("%s: error text divergence: event=%v reference=%v", cell, evErr, rfErr), false
		}
		return "", true
	}
	if ev != rf {
		return fmt.Sprintf("%s: result divergence: event=%+v reference=%+v", cell, ev, rf), false
	}
	return "", true
}
