// Package scenario is the declarative registry behind "as many scenarios as
// you can imagine": every Chapter-7 experiment — a workload mix × fabric
// geometry set × clocking policy, optionally under an adversarial fault
// schedule — is described as a data bundle instead of a hard-coded sweep.
// The built-in catalog re-expresses the existing suite sweeps byte-for-byte,
// user scenarios load from JSON, and the chaos tiers drive the injectors in
// the scenario/chaos and scenario/chaosfs subpackages against the
// dispatch/replicate/store seams.
package scenario

import (
	"fmt"
	"strings"

	"javaflow/internal/classfile"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// Tier grades a scenario's difficulty, after the honeycomb-style
// scenario/difficulty split: standard scenarios measure, adversarial ones
// also try to break the system (fault schedules, differential oracles).
type Tier string

const (
	TierStandard    Tier = "standard"
	TierAdversarial Tier = "adversarial"
)

// FaultKind names one injectable failure mode. Each kind maps onto a seam
// the repo already survives in one-off tests; the chaos harness makes the
// injection schedulable from data.
type FaultKind string

const (
	// FaultBackendDeath kills a dispatch backend mid-batch (the PR 3
	// failure drill): the ring must retry the stranded jobs elsewhere.
	FaultBackendDeath FaultKind = "backend-death"
	// FaultPeerFlap makes a replication peer serve errors for part of a
	// sync round, then heal: cursors must hold partial progress and the
	// next round must converge byte-identically.
	FaultPeerFlap FaultKind = "peer-flap"
	// FaultStoreCorruption damages a flushed segment on disk (CRC bit-flip
	// or tail truncation): reopen must quarantine the damage and
	// recomputation must restore byte-identical records.
	FaultStoreCorruption FaultKind = "store-corruption"
	// FaultDeadlinePressure squeezes the mesh-cycle budget until runs time
	// out, then restores it: timeouts must be reported, never mistaken for
	// results.
	FaultDeadlinePressure FaultKind = "deadline-pressure"
	// FaultGossipPartition drops a peer's inbound gossip notifications
	// while results commit, then heals the partition: the next
	// advertisement must catch the peer up to a byte-identical union with
	// no periodic pull round involved.
	FaultGossipPartition FaultKind = "gossip-partition"
	// FaultOverload floods the serving front past its run-class admission
	// cap: the overflow must shed with typed 429s carrying an honest
	// Retry-After, every admitted request must return byte-identical
	// results, and service must recover fully once the flood drains.
	FaultOverload FaultKind = "overload"
	// FaultSlowPeer wedges a dispatch peer — it accepts connections but
	// stalls before answering: the transport header timeout must fail the
	// attempt, and retry/local fallback must complete every job
	// byte-identically instead of letting the slow peer wedge the batch.
	FaultSlowPeer FaultKind = "slow-peer"
)

// Corruption modes for FaultStoreCorruption.
const (
	CorruptBitFlip  = "bitflip"
	CorruptTruncate = "truncate"
)

// Fault is one scheduled injection.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// After is, for backend-death, how many jobs the doomed backend
	// completes before dying (default 1).
	After int `json:"after,omitempty"`
	// Mode is, for store-corruption, "bitflip" (flip a CRC-trailer bit) or
	// "truncate" (drop the segment tail). Default "bitflip".
	Mode string `json:"mode,omitempty"`
	// MaxCycles is, for deadline-pressure, the squeezed per-run mesh-cycle
	// budget (default 500 — low enough that real methods time out).
	MaxCycles int `json:"maxCycles,omitempty"`
	// Cap is, for overload, the run-class admission cap the drill floods
	// against (default 2).
	Cap int `json:"cap,omitempty"`
	// Flood is, for overload, how many concurrent requests the drill
	// fires (default 4×Cap — the CI-pinned 4×-capacity flood).
	Flood int `json:"flood,omitempty"`
	// DelayMs is, for slow-peer, how long the wedged peer stalls before
	// answering, in milliseconds (default 2000).
	DelayMs int `json:"delayMs,omitempty"`
}

// GenSpec selects a slice of the seeded generated corpus. Zero fields
// inherit the registry defaults, so catalog entries track the -seed/-gen
// flags of whichever process resolves them.
type GenSpec struct {
	Seed  int64 `json:"seed,omitempty"`
	Count int   `json:"count,omitempty"`
}

// WorkloadSpec selects the method population to sweep.
type WorkloadSpec struct {
	// Suites lists selectors: an exact suite name ("scimark.fft.large"),
	// an era ("era:SpecJvm98"), or "named" for every hand-built
	// SPEC-analog method.
	Suites []string `json:"suites,omitempty"`
	// Generated appends (part of) the seeded generated corpus.
	Generated *GenSpec `json:"generated,omitempty"`
}

// OracleSpec configures a differential-oracle tier: a property-generated
// bytecode corpus pushed through both engine loops (Engine.Run vs
// Engine.RunReference), which must agree exactly.
type OracleSpec struct {
	Seed  int64 `json:"seed"`
	Count int   `json:"count"`
	// Configs limits the fabric geometries (default: all).
	Configs []string `json:"configs,omitempty"`
	// MaxCycles bounds each engine run (default 60000).
	MaxCycles int `json:"maxCycles,omitempty"`
	// Folding enables transfer folding on both loops.
	Folding bool `json:"folding,omitempty"`
	// QuiesceAt/QuiesceFor schedule a clock-quiesce window (disabled when
	// QuiesceFor is 0).
	QuiesceAt  int `json:"quiesceAt,omitempty"`
	QuiesceFor int `json:"quiesceFor,omitempty"`
}

// Bundle is one named scenario: everything needed to reproduce a run.
type Bundle struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Tier        Tier         `json:"tier"`
	Workload    WorkloadSpec `json:"workload"`
	// Configs lists fabric geometry/clocking entries by sim.Config name
	// (default: all six).
	Configs []string `json:"configs,omitempty"`
	// MaxMeshCycles bounds each simulated run (0 = resolver default).
	MaxMeshCycles int `json:"maxMeshCycles,omitempty"`
	// Oracle, when set, adds a differential-oracle tier.
	Oracle *OracleSpec `json:"oracle,omitempty"`
	// Faults is the chaos schedule, interpreted by the harness.
	Faults []Fault `json:"faults,omitempty"`
}

// ValidationError reports why a bundle is malformed.
type ValidationError struct {
	Scenario string
	Reason   string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("scenario %q: %s", e.Scenario, e.Reason)
}

func (b *Bundle) invalid(format string, args ...any) error {
	return &ValidationError{Scenario: b.Name, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the bundle against the catalog's invariants: known
// selectors, known fault kinds with sane parameters, and tier consistency
// (fault schedules and oracles are adversarial machinery).
func (b *Bundle) Validate() error {
	if b.Name == "" {
		return b.invalid("name must be non-empty")
	}
	switch b.Tier {
	case TierStandard, TierAdversarial:
	default:
		return b.invalid("unknown tier %q (want %q or %q)", b.Tier, TierStandard, TierAdversarial)
	}
	if len(b.Workload.Suites) == 0 && b.Workload.Generated == nil && b.Oracle == nil {
		return b.invalid("empty workload: select suites, a generated corpus, or an oracle")
	}
	for _, sel := range b.Workload.Suites {
		if _, err := suiteSelection(sel); err != nil {
			return b.invalid("%v", err)
		}
	}
	if g := b.Workload.Generated; g != nil && g.Count < 0 {
		return b.invalid("generated count must be >= 0, got %d", g.Count)
	}
	if _, err := configsByName(b.Configs); err != nil {
		return b.invalid("%v", err)
	}
	if b.MaxMeshCycles < 0 {
		return b.invalid("maxMeshCycles must be >= 0, got %d", b.MaxMeshCycles)
	}
	if o := b.Oracle; o != nil {
		if b.Tier != TierAdversarial {
			return b.invalid("oracle tiers require tier %q", TierAdversarial)
		}
		if o.Count <= 0 {
			return b.invalid("oracle count must be > 0, got %d", o.Count)
		}
		if o.MaxCycles < 0 || o.QuiesceAt < 0 || o.QuiesceFor < 0 {
			return b.invalid("oracle cycle bounds must be >= 0")
		}
		if _, err := configsByName(o.Configs); err != nil {
			return b.invalid("oracle: %v", err)
		}
	}
	if len(b.Faults) > 0 && b.Tier != TierAdversarial {
		return b.invalid("fault schedules require tier %q", TierAdversarial)
	}
	for i, f := range b.Faults {
		if err := f.validate(); err != nil {
			return b.invalid("fault %d: %v", i, err)
		}
	}
	return nil
}

func (f Fault) validate() error {
	switch f.Kind {
	case FaultBackendDeath:
		if f.After < 0 {
			return fmt.Errorf("%s: after must be >= 0, got %d", f.Kind, f.After)
		}
	case FaultPeerFlap:
	case FaultGossipPartition:
	case FaultStoreCorruption:
		switch f.Mode {
		case "", CorruptBitFlip, CorruptTruncate:
		default:
			return fmt.Errorf("%s: unknown mode %q (want %q or %q)",
				f.Kind, f.Mode, CorruptBitFlip, CorruptTruncate)
		}
	case FaultDeadlinePressure:
		if f.MaxCycles < 0 {
			return fmt.Errorf("%s: maxCycles must be >= 0, got %d", f.Kind, f.MaxCycles)
		}
	case FaultOverload:
		if f.Cap < 0 {
			return fmt.Errorf("%s: cap must be >= 0, got %d", f.Kind, f.Cap)
		}
		if f.Flood < 0 {
			return fmt.Errorf("%s: flood must be >= 0, got %d", f.Kind, f.Flood)
		}
	case FaultSlowPeer:
		if f.DelayMs < 0 {
			return fmt.Errorf("%s: delayMs must be >= 0, got %d", f.Kind, f.DelayMs)
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	return nil
}

// suiteSelection resolves one Suites selector to suites, or an error when
// nothing matches.
func suiteSelection(sel string) ([]*workload.Suite, error) {
	if sel == "named" {
		return workload.AllSuites(), nil
	}
	var out []*workload.Suite
	if era, ok := strings.CutPrefix(sel, "era:"); ok {
		for _, s := range workload.AllSuites() {
			if s.Era == era {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("unknown era selector %q", sel)
		}
		return out, nil
	}
	for _, s := range workload.AllSuites() {
		if s.Name == sel {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown suite %q", sel)
	}
	return out, nil
}

func configsByName(names []string) ([]sim.Config, error) {
	all := sim.Configurations()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]sim.Config, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]sim.Config, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown config %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// Resolved is a bundle joined against the registry defaults: the concrete
// method list, fabric configurations, and cycle budget a runner executes.
type Resolved struct {
	Bundle        *Bundle
	Methods       []*classfile.Method
	Configs       []sim.Config
	MaxMeshCycles int
}

// Resolve materializes the bundle. Method order is deterministic and, for
// the catalog entries, identical to the legacy hard-coded paths: suite
// selectors flatten in AllSuites order deduplicating by signature (exactly
// workload.NamedMethods for "named"), and the generated corpus appends in
// generation order — so "named" + default Generated is byte-for-byte
// workload.Corpus(d.Seed, d.GenCount).
func (b *Bundle) Resolve(d Defaults) (*Resolved, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var methods []*classfile.Method
	add := func(m *classfile.Method) {
		sig := m.Signature()
		if !seen[sig] {
			seen[sig] = true
			methods = append(methods, m)
		}
	}
	for _, sel := range b.Workload.Suites {
		suites, err := suiteSelection(sel)
		if err != nil {
			return nil, b.invalid("%v", err)
		}
		for _, s := range suites {
			for _, m := range s.AllMethods() {
				add(m)
			}
		}
	}
	if g := b.Workload.Generated; g != nil {
		seed, count := g.Seed, g.Count
		if seed == 0 {
			seed = d.Seed
		}
		if count == 0 {
			count = d.GenCount
		}
		for _, cls := range workload.Generate(workload.GenConfig{Seed: seed, Count: count}) {
			for _, n := range cls.MethodNames() {
				add(cls.Methods[n])
			}
		}
	}
	configs, err := configsByName(b.Configs)
	if err != nil {
		return nil, b.invalid("%v", err)
	}
	maxCycles := b.MaxMeshCycles
	if maxCycles == 0 {
		maxCycles = d.MaxMeshCycles
	}
	return &Resolved{Bundle: b, Methods: methods, Configs: configs, MaxMeshCycles: maxCycles}, nil
}
