package scenario_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"javaflow/internal/scenario"
	"javaflow/internal/workload"
)

// testDefaults keeps the generated corpus small so Resolve stays fast.
var testDefaults = scenario.Defaults{Seed: 2014, GenCount: 120, MaxMeshCycles: 400_000}

// TestCatalogRoundTrip: every built-in bundle must survive a JSON
// marshal/parse cycle unchanged — the catalog is expressible in exactly the
// format user scenario files use.
func TestCatalogRoundTrip(t *testing.T) {
	for _, b := range scenario.Catalog() {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("%s: marshal: %v", b.Name, err)
		}
		got, err := scenario.ParseBundle(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", b.Name, err)
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("%s: round trip changed the bundle:\n got %+v\nwant %+v", b.Name, got, b)
		}
	}
}

// TestCatalogResolves: every catalog entry must materialize against the
// defaults — a broken entry should fail here, not at jfbench runtime.
func TestCatalogResolves(t *testing.T) {
	reg := scenario.NewRegistry(testDefaults)
	for _, name := range reg.Names() {
		res, err := reg.Resolve(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := reg.Get(name)
		if len(res.Methods) == 0 && b.Oracle == nil {
			t.Fatalf("%s: resolved to an empty workload", name)
		}
		if len(res.Configs) == 0 {
			t.Fatalf("%s: resolved to zero configs", name)
		}
		if res.MaxMeshCycles != testDefaults.MaxMeshCycles {
			t.Fatalf("%s: maxMeshCycles = %d, want the default %d",
				name, res.MaxMeshCycles, testDefaults.MaxMeshCycles)
		}
	}
}

// TestChapter7MatchesLegacyCorpus is the catalog-equivalence contract at the
// population level: the chapter7 bundle must resolve to exactly
// workload.Corpus — same methods, same order — so its sweep is byte-identical
// to the legacy hard-coded path.
func TestChapter7MatchesLegacyCorpus(t *testing.T) {
	reg := scenario.NewRegistry(testDefaults)
	res, err := reg.Resolve("chapter7")
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Corpus(testDefaults.Seed, testDefaults.GenCount)
	if len(res.Methods) != len(want) {
		t.Fatalf("chapter7 resolved %d methods, corpus has %d", len(res.Methods), len(want))
	}
	for i := range want {
		if res.Methods[i].Signature() != want[i].Signature() {
			t.Fatalf("method %d: scenario %s vs corpus %s",
				i, res.Methods[i].Signature(), want[i].Signature())
		}
	}
}

// TestRegistryDefaultsFallbacks: zero-valued defaults inherit the Chapter-7
// constants instead of resolving empty populations.
func TestRegistryDefaultsFallbacks(t *testing.T) {
	d := scenario.NewRegistry(scenario.Defaults{}).Defaults()
	if d.Seed != scenario.DefaultSeed || d.GenCount != scenario.DefaultGenCount ||
		d.MaxMeshCycles != scenario.DefaultMaxMeshCycles {
		t.Fatalf("defaults = %+v, want the package constants", d)
	}
}

func TestRegistryUnknownScenario(t *testing.T) {
	reg := scenario.NewRegistry(testDefaults)
	_, err := reg.Get("no-such-scenario")
	var nf *scenario.NotFoundError
	if !errors.As(err, &nf) || nf.Name != "no-such-scenario" {
		t.Fatalf("err = %v, want *NotFoundError for the name", err)
	}
	if _, err := reg.Resolve("no-such-scenario"); !errors.As(err, &nf) {
		t.Fatalf("Resolve err = %v, want *NotFoundError", err)
	}
}

func TestRegistryRejectsDuplicate(t *testing.T) {
	reg := scenario.NewRegistry(testDefaults)
	dup := &scenario.Bundle{
		Name:     "crypto", // collides with the catalog entry
		Tier:     scenario.TierStandard,
		Workload: scenario.WorkloadSpec{Suites: []string{"crypto.signverify"}},
	}
	if err := reg.Add(dup); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate Add err = %v, want a rejection", err)
	}
}

// TestValidationErrors pins the error contract for malformed bundles: every
// rejection is a *ValidationError naming the scenario and the reason.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		label  string
		bundle scenario.Bundle
		want   string // substring of the reason
	}{
		{
			label:  "empty name",
			bundle: scenario.Bundle{Tier: scenario.TierStandard},
			want:   "name must be non-empty",
		},
		{
			label:  "unknown tier",
			bundle: scenario.Bundle{Name: "x", Tier: "heroic"},
			want:   `unknown tier "heroic"`,
		},
		{
			label:  "empty workload",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard},
			want:   "empty workload",
		},
		{
			label: "unknown suite",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Workload: scenario.WorkloadSpec{Suites: []string{"scimark.bogus"}}},
			want: `unknown suite "scimark.bogus"`,
		},
		{
			label: "unknown era",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Workload: scenario.WorkloadSpec{Suites: []string{"era:SpecJvm86"}}},
			want: `unknown era selector "era:SpecJvm86"`,
		},
		{
			label: "unknown config",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Workload: scenario.WorkloadSpec{Suites: []string{"named"}},
				Configs:  []string{"Compact3"}},
			want: `unknown config "Compact3"`,
		},
		{
			label: "faults without adversarial tier",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Workload: scenario.WorkloadSpec{Suites: []string{"named"}},
				Faults:   []scenario.Fault{{Kind: scenario.FaultPeerFlap}}},
			want: "fault schedules require tier",
		},
		{
			label: "oracle without adversarial tier",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Oracle: &scenario.OracleSpec{Seed: 1, Count: 4}},
			want: "oracle tiers require tier",
		},
		{
			label: "unknown fault kind",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierAdversarial,
				Workload: scenario.WorkloadSpec{Suites: []string{"named"}},
				Faults:   []scenario.Fault{{Kind: "power-loss"}}},
			want: `unknown fault kind "power-loss"`,
		},
		{
			label: "unknown corruption mode",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierAdversarial,
				Workload: scenario.WorkloadSpec{Suites: []string{"named"}},
				Faults:   []scenario.Fault{{Kind: scenario.FaultStoreCorruption, Mode: "shred"}}},
			want: `unknown mode "shred"`,
		},
		{
			label: "negative maxMeshCycles",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierStandard,
				Workload:      scenario.WorkloadSpec{Suites: []string{"named"}},
				MaxMeshCycles: -1},
			want: "maxMeshCycles must be >= 0",
		},
		{
			label: "zero oracle count",
			bundle: scenario.Bundle{Name: "x", Tier: scenario.TierAdversarial,
				Oracle: &scenario.OracleSpec{Seed: 1}},
			want: "oracle count must be > 0",
		},
	}
	for _, tc := range cases {
		err := tc.bundle.Validate()
		var ve *scenario.ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("%s: err = %v, want *ValidationError", tc.label, err)
		}
		if !strings.Contains(ve.Reason, tc.want) {
			t.Fatalf("%s: reason %q does not mention %q", tc.label, ve.Reason, tc.want)
		}
	}
}

// TestParseBundleRejectsUnknownFields: typos in user scenario files must fail
// loudly instead of silently resolving a different scenario.
func TestParseBundleRejectsUnknownFields(t *testing.T) {
	_, err := scenario.ParseBundle([]byte(`{"name":"x","tier":"standard","workloads":{}}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v, want an unknown-field rejection", err)
	}
	if _, err := scenario.ParseBundle([]byte(`{nope`)); err == nil {
		t.Fatal("malformed JSON parsed")
	}
}

// TestLoadFile drives the user-scenario path end to end: a JSON file loads,
// registers, and resolves; an invalid file reports a validation error.
func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "mine.json")
	if err := os.WriteFile(good, []byte(`{
		"name": "mine",
		"tier": "adversarial",
		"workload": {"suites": ["crypto.signverify"]},
		"configs": ["Compact2", "Hetero2"],
		"faults": [{"kind": "peer-flap"}, {"kind": "deadline-pressure", "maxCycles": 900}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := scenario.NewRegistry(testDefaults)
	b, err := reg.LoadFile(good)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if b.Name != "mine" || len(b.Faults) != 2 {
		t.Fatalf("loaded bundle = %+v", b)
	}
	res, err := reg.Resolve("mine")
	if err != nil {
		t.Fatalf("resolve loaded scenario: %v", err)
	}
	if len(res.Configs) != 2 || res.Configs[0].Name != "Compact2" {
		t.Fatalf("resolved configs = %+v", res.Configs)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"bad","tier":"standard","faults":[{"kind":"peer-flap"}],"workload":{"suites":["named"]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var ve *scenario.ValidationError
	if _, err := reg.LoadFile(bad); !errors.As(err, &ve) {
		t.Fatalf("invalid file err = %v, want *ValidationError", err)
	}
	if _, err := reg.LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
