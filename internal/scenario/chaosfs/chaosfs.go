// Package chaosfs provides the on-disk surgery primitives the chaos harness
// and the store corruption tests share: deterministic segment damage with no
// dependency on any other javaflow package, so even internal store tests can
// import it without a cycle.
package chaosfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Segments lists the store's segment files ("seg-*.jfs") in a directory,
// sorted by name (which is sequence order, since names are zero-padded).
func Segments(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.jfs"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// LastSegment returns the highest-sequence segment file.
func LastSegment(dir string) (string, error) {
	paths, err := Segments(dir)
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("chaosfs: no segment files in %s", dir)
	}
	return paths[len(paths)-1], nil
}

// TruncateTail cuts the final n bytes off a file — the shape of a crash
// mid-write or a torn replication transfer.
func TruncateTail(path string, n int) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if int64(n) > info.Size() {
		return fmt.Errorf("chaosfs: truncating %d bytes from %d-byte %s", n, info.Size(), path)
	}
	return os.Truncate(path, info.Size()-int64(n))
}

// FlipByte XORs mask into the byte at offset; a negative offset counts back
// from the end of the file (-1 is the last byte — a record's CRC trailer in
// the store format). This is the shape of silent media corruption.
func FlipByte(path string, offset int, mask byte) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += len(data)
	}
	if offset < 0 || offset >= len(data) {
		return fmt.Errorf("chaosfs: offset %d outside %d-byte %s", offset, len(data), path)
	}
	data[offset] ^= mask
	return os.WriteFile(path, data, 0o644)
}
