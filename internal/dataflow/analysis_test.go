package dataflow

import (
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/workload"
)

func method(t *testing.T, maxLocals int, build func(a *bytecode.Assembler)) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{
		Class: "T", Name: "m", MaxLocals: maxLocals,
		Code: code, Pool: classfile.NewConstantPool(),
	}
	return m
}

// The Figure 21 example: three register loads feeding an add chain.
//
//	0: iload_1  1: iload_2  2: iload_3  3: iadd  4: iadd  5: istore 4
//	6: return
func TestAnalyzeSimpleAddressResolutionExample(t *testing.T) {
	m := method(t, 5, func(a *bytecode.Assembler) {
		a.ILoad(1).ILoad(2).ILoad(3).
			Op(bytecode.Iadd).Op(bytecode.Iadd).
			Local(bytecode.Istore, 4).
			Op(bytecode.Return)
	})
	an, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	// Expected arcs (matching Figure 21's resolution):
	//   iload_2 (#1) -> iadd (#3) side 1, iload_3 (#2) -> iadd (#3) side 2,
	//   iload_1 (#0) -> iadd (#4) side 1, iadd (#3) -> iadd (#4) side 2,
	//   iadd (#4) -> istore (#5) side 1.
	want := []Arc{
		{0, 4, 1},
		{1, 3, 1},
		{2, 3, 2},
		{3, 4, 2},
		{4, 5, 1},
	}
	if len(an.Arcs) != len(want) {
		t.Fatalf("arcs = %+v, want %+v", an.Arcs, want)
	}
	for i, w := range want {
		if an.Arcs[i] != w {
			t.Errorf("arc %d = %+v, want %+v", i, an.Arcs[i], w)
		}
	}
	if an.Merges != 0 || an.BackMerges != 0 {
		t.Errorf("merges=%d back=%d, want 0/0", an.Merges, an.BackMerges)
	}
	if an.FanOut[0] != 1 || an.FanOut[3] != 1 {
		t.Errorf("fanout = %v", an.FanOut)
	}
}

// A dataflow merge: two branch arms each push a value consumed at the join
// (the Figure 22 situation).
func TestAnalyzeDataflowMerge(t *testing.T) {
	m := method(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Branch(bytecode.Ifeq, "else"). // 1
			Op(bytecode.Iconst1).          // 2 pushes
			Branch(bytecode.Goto, "join"). // 3
			Label("else").
			Op(bytecode.Iconst2). // 4 pushes
			Label("join").
			IStore(1). // 5 consumes from both 2 and 4
			Op(bytecode.Return)
	})
	an, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if an.Merges != 1 {
		t.Errorf("merges = %d, want 1", an.Merges)
	}
	var producers []int
	for _, arc := range an.Arcs {
		if arc.Consumer == 5 {
			producers = append(producers, arc.Producer)
		}
	}
	if len(producers) != 2 || producers[0] != 2 || producers[1] != 4 {
		t.Errorf("join producers = %v, want [2 4]", producers)
	}
	if an.BackMerges != 0 {
		t.Errorf("back merges = %d, want 0", an.BackMerges)
	}
}

func TestAnalyzeJumpStatistics(t *testing.T) {
	m := method(t, 2, func(a *bytecode.Assembler) {
		a.Label("top").
			Iinc(0, 1). // 0
			ILoad(0).   // 1
			PushInt(10).
			Branch(bytecode.IfIcmplt, "top"). // 3, back jump length 3
			ILoad(0).
			Branch(bytecode.Ifne, "end"). // 5, forward jump length 2
			Op(bytecode.Nop).
			Label("end").
			Op(bytecode.Return)
	})
	an, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.BackJumps) != 1 || an.BackJumps[0].Length() != 3 {
		t.Errorf("back jumps = %+v", an.BackJumps)
	}
	if len(an.ForwardJumps) != 1 || an.ForwardJumps[0].Length() != 2 {
		t.Errorf("forward jumps = %+v", an.ForwardJumps)
	}
}

func TestAnalyzeFanOutThroughDup(t *testing.T) {
	// dup is itself an instruction node: it consumes one value and
	// produces two, so the original producer's fan-out stays 1.
	m := method(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0). // 0
				Op(bytecode.Dup).   // 1: consumes #0, produces 2
				Op(bytecode.Iadd).  // 2: consumes both dup outputs
				IStore(1).          // 3
				Op(bytecode.Return) // 4
	})
	an, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if an.FanOut[0] != 1 {
		t.Errorf("iload fan-out = %d, want 1", an.FanOut[0])
	}
	if an.FanOut[1] != 2 {
		t.Errorf("dup fan-out = %d, want 2", an.FanOut[1])
	}
	if an.Merges != 0 {
		t.Errorf("merges = %d, want 0", an.Merges)
	}
}

func TestAnalyzeDetectsSpecial(t *testing.T) {
	m := method(t, 1, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Switch(map[int64]string{1: "one"}, "def").
			Label("one").Op(bytecode.Iconst1).Op(bytecode.Ireturn).
			Label("def").Op(bytecode.Iconst0).Op(bytecode.Ireturn)
	})
	an, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if !an.UsesSpecial {
		t.Error("lookupswitch should mark the method special")
	}
}

// The headline invariant of Section 5.4: across the entire corpus — named
// SPEC analogs plus the generated population — there are NO dataflow back
// merges. "Note that in the benchmarks, there are NO back merges" (Table 7).
func TestNoBackMergesAcrossCorpus(t *testing.T) {
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 3, Count: 400}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	totalArcs := 0
	for _, m := range methods {
		an, err := Analyze(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Signature(), err)
		}
		totalArcs += len(an.Arcs)
		if an.BackMerges != 0 {
			t.Errorf("%s: %d back merges, want 0", m.Signature(), an.BackMerges)
		}
	}
	if totalArcs == 0 {
		t.Fatal("no arcs analyzed")
	}
}

func TestCorpusSummaryShapes(t *testing.T) {
	var methods []*classfile.Method
	for _, c := range workload.Generate(workload.GenConfig{Seed: 19, Count: 600}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	rows, err := AnalyzeAll(methods)
	if err != nil {
		t.Fatal(err)
	}
	f1 := Select(rows, Filter1, nil)
	if len(f1) == 0 || len(f1) >= len(rows) {
		t.Fatalf("filter1 selected %d of %d", len(f1), len(rows))
	}
	sum := Summarize(f1)

	// Table 9 shape: median ~29, small registers/stack, zero back merges.
	if sum.StaticInst.Median < 12 || sum.StaticInst.Median > 80 {
		t.Errorf("median size = %v, want near 29", sum.StaticInst.Median)
	}
	if sum.BackMerge.Max != 0 {
		t.Errorf("max back merges = %v, want 0", sum.BackMerge.Max)
	}
	// Table 10 shape: fan-out averages barely above 1 ("Due to the lack of
	// optimization in the JAVAC compiler, these numbers are very small").
	if sum.FanOutAvg.Mean < 1.0 || sum.FanOutAvg.Mean > 1.5 {
		t.Errorf("fan-out mean = %v, want ~1.0", sum.FanOutAvg.Mean)
	}
	// Table 10 shape: short arcs.
	if sum.ArcAvg.Mean < 1.0 || sum.ArcAvg.Mean > 6.0 {
		t.Errorf("arc avg mean = %v, want small", sum.ArcAvg.Mean)
	}
	// Registers per method ~ the paper's 4.45 mean.
	if sum.Registers.Mean < 2 || sum.Registers.Mean > 14 {
		t.Errorf("registers mean = %v", sum.Registers.Mean)
	}
}

func TestStaticMixTable6Shape(t *testing.T) {
	methods := workload.NamedMethods()
	mix := MixOf(methods)
	total := float64(mix.Total())
	if total == 0 {
		t.Fatal("empty mix")
	}
	arith := float64(mix.Arith) / total
	storage := float64(mix.Storage) / total
	if arith < 0.35 || arith > 0.85 {
		t.Errorf("arith = %.2f, want dominant (~0.60)", arith)
	}
	if storage < 0.05 || storage > 0.40 {
		t.Errorf("storage = %.2f, want ~0.20", storage)
	}
}

func TestSelectFilter2(t *testing.T) {
	rows := []MethodRow{
		{Signature: "a", StaticInst: 50},
		{Signature: "b", StaticInst: 50},
		{Signature: "c", StaticInst: 5},
		{Signature: "d", StaticInst: 2000},
	}
	hot := map[string]bool{"a": true, "c": true, "d": true}
	got := Select(rows, Filter2, hot)
	if len(got) != 1 || got[0].Signature != "a" {
		t.Errorf("Filter2 = %+v, want just 'a'", got)
	}
}
