package dataflow

import (
	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/stats"
)

// MethodRow is the per-method record behind the corpus-level DataFlow
// tables (Tables 9–14).
type MethodRow struct {
	Signature  string
	StaticInst int
	Registers  int
	MaxStack   int
	BackMerges int

	FanOutAvg float64
	FanOutMax float64
	ArcAvg    float64
	ArcMax    float64

	Merges int

	ForwardJumps int
	FwdLenAvg    float64
	FwdLenMax    float64
	BackJumps    int
	BackLenAvg   float64
	BackLenMax   float64
	UsesSpecial  bool
	Calls        int
	TotalArcs    int
}

// Row condenses one analysis into its table record.
func (an *Analysis) Row() MethodRow {
	fan := an.FanOutStats()
	arcs := an.ArcLengths()
	fwd := JumpLengths(an.ForwardJumps)
	back := JumpLengths(an.BackJumps)
	return MethodRow{
		Signature:    an.Method.Signature(),
		StaticInst:   len(an.Method.Code),
		Registers:    an.RegistersUsed,
		MaxStack:     an.Method.MaxStack,
		BackMerges:   an.BackMerges,
		FanOutAvg:    stats.Mean(fan),
		FanOutMax:    stats.Max(fan),
		ArcAvg:       stats.Mean(arcs),
		ArcMax:       stats.Max(arcs),
		Merges:       an.Merges,
		ForwardJumps: len(an.ForwardJumps),
		FwdLenAvg:    stats.Mean(fwd),
		FwdLenMax:    stats.Max(fwd),
		BackJumps:    len(an.BackJumps),
		BackLenAvg:   stats.Mean(back),
		BackLenMax:   stats.Max(back),
		UsesSpecial:  an.UsesSpecial,
		Calls:        an.Calls,
		TotalArcs:    len(an.Arcs),
	}
}

// AnalyzeAll analyzes a method population, skipping methods that fail
// verification (none should).
func AnalyzeAll(methods []*classfile.Method) ([]MethodRow, error) {
	rows := make([]MethodRow, 0, len(methods))
	for _, m := range methods {
		an, err := Analyze(m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, an.Row())
	}
	return rows, nil
}

// Filter reproduces the dissertation's method filters (Table 16).
type Filter uint8

const (
	FilterAll Filter = iota
	Filter1          // 10 < static instructions < 1000
	Filter2          // top-90% dynamic ∩ Filter1 (requires hot-set info)
)

// InFilter1 applies the size window of Filter 1.
func InFilter1(staticInst int) bool {
	return staticInst > 10 && staticInst < 1000
}

// Select returns the rows passing the filter. hot (nil for FilterAll and
// Filter1) is the set of top-90% signatures for Filter2.
func Select(rows []MethodRow, f Filter, hot map[string]bool) []MethodRow {
	var out []MethodRow
	for _, r := range rows {
		switch f {
		case FilterAll:
			out = append(out, r)
		case Filter1:
			if InFilter1(r.StaticInst) {
				out = append(out, r)
			}
		case Filter2:
			if InFilter1(r.StaticInst) && hot[r.Signature] {
				out = append(out, r)
			}
		}
	}
	return out
}

// Column pulls one numeric column from a row set for summarization.
func Column(rows []MethodRow, get func(MethodRow) float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = get(r)
	}
	return out
}

// CorpusSummary aggregates the Table 9–14 statistics over a row set.
type CorpusSummary struct {
	StaticInst stats.Summary // Table 9
	Registers  stats.Summary
	Stack      stats.Summary
	BackMerge  stats.Summary

	FanOutAvg stats.Summary // Table 10
	FanOutMax stats.Summary
	ArcAvg    stats.Summary
	ArcMax    stats.Summary

	Merges stats.Summary // Table 12

	FwdJumps   stats.Summary // Table 13
	FwdLenAvg  stats.Summary
	FwdLenMax  stats.Summary
	BackJumps  stats.Summary // Table 14
	BackLenAvg stats.Summary
	BackLenMax stats.Summary
}

// Summarize computes the corpus summary.
func Summarize(rows []MethodRow) CorpusSummary {
	col := func(get func(MethodRow) float64) stats.Summary {
		return stats.Summarize(Column(rows, get))
	}
	return CorpusSummary{
		StaticInst: col(func(r MethodRow) float64 { return float64(r.StaticInst) }),
		Registers:  col(func(r MethodRow) float64 { return float64(r.Registers) }),
		Stack:      col(func(r MethodRow) float64 { return float64(r.MaxStack) }),
		BackMerge:  col(func(r MethodRow) float64 { return float64(r.BackMerges) }),
		FanOutAvg:  col(func(r MethodRow) float64 { return r.FanOutAvg }),
		FanOutMax:  col(func(r MethodRow) float64 { return r.FanOutMax }),
		ArcAvg:     col(func(r MethodRow) float64 { return r.ArcAvg }),
		ArcMax:     col(func(r MethodRow) float64 { return r.ArcMax }),
		Merges:     col(func(r MethodRow) float64 { return float64(r.Merges) }),
		FwdJumps:   col(func(r MethodRow) float64 { return float64(r.ForwardJumps) }),
		FwdLenAvg:  col(func(r MethodRow) float64 { return r.FwdLenAvg }),
		FwdLenMax:  col(func(r MethodRow) float64 { return r.FwdLenMax }),
		BackJumps:  col(func(r MethodRow) float64 { return float64(r.BackJumps) }),
		BackLenAvg: col(func(r MethodRow) float64 { return r.BackLenAvg }),
		BackLenMax: col(func(r MethodRow) float64 { return r.BackLenMax }),
	}
}

// StaticMix aggregates the 4-way static instruction mix (Table 6).
type StaticMix struct {
	Arith, Float, Control, Storage, Other int
}

// Total sums all classes.
func (s StaticMix) Total() int {
	return s.Arith + s.Float + s.Control + s.Storage + s.Other
}

// MixOf computes the static mix over a method set.
func MixOf(methods []*classfile.Method) StaticMix {
	var mix StaticMix
	for _, m := range methods {
		for _, in := range m.Code {
			switch in.Group().Mix() {
			case bytecode.MixArith:
				mix.Arith++
			case bytecode.MixFloat:
				mix.Float++
			case bytecode.MixControl:
				mix.Control++
			case bytecode.MixStorage:
				mix.Storage++
			default:
				mix.Other++
			}
		}
	}
	return mix
}
