// Package dataflow performs the static DataFlow/ControlFlow analysis of
// Chapter 5 (Section 5.4) and the per-method statistics of Section 7.2: it
// translates a verified ByteCode method into its producer/consumer arc set
// and measures fan-out, arc lengths, dataflow merges (and proves the absence
// of back merges), and forward/backward jump profiles.
//
// The load-bearing invariant: every analysis here is a pure function of
// the verified method body, so results may be cached by body hash and
// regenerated tables compare byte-for-byte across runs and machines.
package dataflow

import (
	"fmt"
	"sort"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// Arc is one producer→consumer dataflow edge: the producer's push is wired
// to one input side of the consumer during address resolution.
type Arc struct {
	Producer int // linear address of the pushing instruction
	Consumer int // linear address of the popping instruction
	Side     int // 1-based operand side at the consumer (1 = deepest)
}

// Length is the linear distance the operand travels.
func (a Arc) Length() int {
	d := a.Consumer - a.Producer
	if d < 0 {
		return -d
	}
	return d
}

// IsBack reports a dataflow back merge: data flowing to an earlier linear
// address. The JVM's stack-shape rule makes these impossible in valid
// JAVAC output (Section 5.4, Table 7 reports zero).
func (a Arc) IsBack() bool { return a.Consumer < a.Producer }

// Jump describes one control-flow branch site.
type Jump struct {
	From, To int
}

// Length is the linear branch distance.
func (j Jump) Length() int {
	d := j.To - j.From
	if d < 0 {
		return -d
	}
	return d
}

// Analysis is the full static dataflow description of one method.
type Analysis struct {
	Method *classfile.Method

	Arcs []Arc
	// FanOut[i] is the number of consumer sides instruction i feeds.
	FanOut map[int]int
	// Merges counts consumer sides fed by two or more producers.
	Merges int
	// BackMerges counts arcs that flow backwards (always 0 for valid
	// JAVAC-shaped code).
	BackMerges int

	ForwardJumps []Jump
	BackJumps    []Jump

	// RegistersUsed is the highest local register index touched plus one.
	RegistersUsed int
	// UsesSpecial reports instructions the fabric delegates wholesale to
	// the GPP (switches, jsr/ret, wide) — methods with these are excluded
	// from fabric simulation, as in the dissertation.
	UsesSpecial bool
	// Calls counts invoke sites.
	Calls int
}

// producerSet is a small sorted set of instruction indices.
type producerSet []int

func (s producerSet) has(v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

func (s producerSet) add(v int) (producerSet, bool) {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// union merges b into a, reporting whether a changed.
func (s producerSet) union(b producerSet) (producerSet, bool) {
	changed := false
	for _, v := range b {
		var c bool
		s, c = s.add(v)
		changed = changed || c
	}
	return s, changed
}

// absState is the abstract stack: one producer set per slot.
type absState []producerSet

func (st absState) clone() absState {
	out := make(absState, len(st))
	for i, s := range st {
		out[i] = append(producerSet(nil), s...)
	}
	return out
}

// Analyze computes the dataflow analysis for a verified method.
func Analyze(m *classfile.Method) (*Analysis, error) {
	if err := classfile.Verify(m); err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	an := &Analysis{Method: m, FanOut: make(map[int]int)}

	// Control-flow statistics and flags from a single scan.
	for i, in := range m.Code {
		if reg, ok := in.LocalIndex(); ok && reg+1 > an.RegistersUsed {
			an.RegistersUsed = reg + 1
		}
		switch in.Group() {
		case bytecode.GroupSpecial:
			// new/newarray/anewarray are GPP service allocations the
			// fabric supports via Service messages; switches and
			// subroutines change control flow and exclude the method.
			switch in.Op {
			case bytecode.Tableswitch, bytecode.Lookupswitch,
				bytecode.Jsr, bytecode.JsrW, bytecode.Ret, bytecode.Wide:
				an.UsesSpecial = true
			}
		case bytecode.GroupCall:
			an.Calls++
		}
		if in.IsBranch() {
			j := Jump{From: i, To: in.Target}
			if in.Target > i {
				an.ForwardJumps = append(an.ForwardJumps, j)
			} else {
				an.BackJumps = append(an.BackJumps, j)
			}
		}
	}
	if pr := m.ParamRegisters(); pr > an.RegistersUsed {
		an.RegistersUsed = pr
	}

	// Abstract interpretation to a fixpoint: entry abstract stack per
	// instruction.
	entry := make([]absState, len(m.Code))
	seen := make([]bool, len(m.Code))
	entry[0] = absState{}
	seen[0] = true
	work := []int{0}

	propagate := func(from int, to int, st absState) error {
		if to < 0 || to >= len(m.Code) {
			return fmt.Errorf("dataflow: branch from %d to out-of-range %d", from, to)
		}
		if !seen[to] {
			entry[to] = st.clone()
			seen[to] = true
			work = append(work, to)
			return nil
		}
		if len(entry[to]) != len(st) {
			return fmt.Errorf("dataflow: inconsistent stack depth at %d (%d vs %d)", to, len(entry[to]), len(st))
		}
		changed := false
		for i := range st {
			var c bool
			entry[to][i], c = entry[to][i].union(st[i])
			changed = changed || c
		}
		if changed {
			work = append(work, to)
		}
		return nil
	}

	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[idx]
		st := entry[idx].clone()

		if in.Pop > len(st) {
			return nil, fmt.Errorf("dataflow: underflow at %d (%s)", idx, in.Op)
		}
		st = st[:len(st)-in.Pop]
		for p := 0; p < in.Push; p++ {
			st = append(st, producerSet{idx})
		}

		switch {
		case in.IsReturn(), in.Op == bytecode.Ret:
			continue
		case in.Op == bytecode.Goto || in.Op == bytecode.GotoW:
			if err := propagate(idx, in.Target, st); err != nil {
				return nil, err
			}
		case in.Op == bytecode.Lookupswitch || in.Op == bytecode.Tableswitch:
			if err := propagate(idx, in.Target, st); err != nil {
				return nil, err
			}
			for _, t := range in.SwitchTargets {
				if err := propagate(idx, t, st); err != nil {
					return nil, err
				}
			}
		case in.Op == bytecode.Jsr || in.Op == bytecode.JsrW:
			if err := propagate(idx, in.Target, st); err != nil {
				return nil, err
			}
			// fall-through resumes without the pushed return address
			if err := propagate(idx, idx+1, st[:len(st)-1]); err != nil {
				return nil, err
			}
		case in.IsBranch():
			if err := propagate(idx, in.Target, st); err != nil {
				return nil, err
			}
			if err := propagate(idx, idx+1, st); err != nil {
				return nil, err
			}
		default:
			if err := propagate(idx, idx+1, st); err != nil {
				return nil, err
			}
		}
	}

	// Collect arcs from the fixpoint.
	seenArc := make(map[Arc]bool)
	for idx, in := range m.Code {
		if !seen[idx] || in.Pop == 0 {
			continue
		}
		st := entry[idx]
		group := st[len(st)-in.Pop:]
		for side, producers := range group {
			if len(producers) >= 2 {
				an.Merges++
			}
			for _, p := range producers {
				arc := Arc{Producer: p, Consumer: idx, Side: side + 1}
				if seenArc[arc] {
					continue
				}
				seenArc[arc] = true
				an.Arcs = append(an.Arcs, arc)
				an.FanOut[p]++
				if arc.IsBack() {
					an.BackMerges++
				}
			}
		}
	}
	sort.Slice(an.Arcs, func(i, j int) bool {
		a, b := an.Arcs[i], an.Arcs[j]
		if a.Producer != b.Producer {
			return a.Producer < b.Producer
		}
		if a.Consumer != b.Consumer {
			return a.Consumer < b.Consumer
		}
		return a.Side < b.Side
	})
	return an, nil
}

// FanOutStats returns the per-producer fan-out values (only producers with
// at least one consumer).
func (an *Analysis) FanOutStats() []float64 {
	out := make([]float64, 0, len(an.FanOut))
	keys := make([]int, 0, len(an.FanOut))
	for k := range an.FanOut {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		out = append(out, float64(an.FanOut[k]))
	}
	return out
}

// ArcLengths returns every arc's linear length.
func (an *Analysis) ArcLengths() []float64 {
	out := make([]float64, len(an.Arcs))
	for i, a := range an.Arcs {
		out[i] = float64(a.Length())
	}
	return out
}

// JumpLengths extracts branch distances.
func JumpLengths(js []Jump) []float64 {
	out := make([]float64, len(js))
	for i, j := range js {
		out[i] = float64(j.Length())
	}
	return out
}
