// Package core orchestrates the JavaFlow machine end to end: verification
// on the General Purpose Processor, greedy loading into the DataFlow
// Fabric, distributed address resolution over the Serial Networks, and
// token-bundle execution — the full lifecycle of Section 6.2/6.3.
//
// The load-bearing invariant is deploy determinism: the same verified
// method on the same fabric geometry always yields the same placement
// and address resolution, which is what makes deployment caching,
// store keying and cross-node byte-identity possible at all. A fabric
// rejection (fabric.LoadError) is a deterministic result of that same
// function, not a transient failure.
package core

import (
	"fmt"
	"strings"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
)

// DeploymentProvider supplies verified, loaded, address-resolved methods —
// the seam through which a shared deployment cache (internal/serve) backs a
// machine, so repeated deployments of the same method skip the Figure 20 +
// Figure 22 pipeline.
type DeploymentProvider interface {
	ResolveMethod(cfg sim.Config, m *classfile.Method) (*fabric.Resolution, error)
}

// Machine is one configured JavaFlow machine instance.
type Machine struct {
	cfg      sim.Config
	loader   *fabric.Loader
	provider DeploymentProvider
}

// NewMachine builds a machine for the given configuration.
func NewMachine(cfg sim.Config) *Machine {
	return &Machine{
		cfg:    cfg,
		loader: &fabric.Loader{Fabric: cfg.Fabric},
	}
}

// SetProvider routes this machine's deployments through a shared provider
// (typically a serve.DeploymentCache). A nil provider restores the direct
// per-call pipeline.
func (m *Machine) SetProvider(p DeploymentProvider) { m.provider = p }

// Config returns the machine's configuration.
func (m *Machine) Config() sim.Config { return m.cfg }

// Deployment is a method resident in the fabric, address-resolved and ready
// to execute.
type Deployment struct {
	Machine    *Machine
	Placement  *fabric.Placement
	Resolution *fabric.Resolution
}

// Deploy verifies, loads and resolves a method (the Figure 20 + Figure 22
// pipeline), consulting the machine's deployment provider when one is set.
// Methods containing GPP-only instructions return a *fabric.LoadError.
func (m *Machine) Deploy(method *classfile.Method) (*Deployment, error) {
	if m.provider != nil {
		resolution, err := m.provider.ResolveMethod(m.cfg, method)
		if err != nil {
			return nil, err
		}
		return &Deployment{Machine: m, Placement: resolution.Placement, Resolution: resolution}, nil
	}
	placement, err := m.loader.Load(method)
	if err != nil {
		return nil, err
	}
	resolution, err := fabric.Resolve(placement)
	if err != nil {
		return nil, err
	}
	return &Deployment{Machine: m, Placement: placement, Resolution: resolution}, nil
}

// DeployTraced is Deploy with the load walk recorded for demonstration.
func (m *Machine) DeployTraced(method *classfile.Method) (*Deployment, error) {
	traced := &fabric.Loader{Fabric: m.cfg.Fabric, Trace: true}
	placement, err := traced.Load(method)
	if err != nil {
		return nil, err
	}
	resolution, err := fabric.Resolve(placement)
	if err != nil {
		return nil, err
	}
	return &Deployment{Machine: m, Placement: placement, Resolution: resolution}, nil
}

// Execute runs the deployed method under one branch policy.
func (d *Deployment) Execute(policy sim.BranchPolicy) (sim.Result, error) {
	eng := sim.NewEngine(d.Machine.cfg, d.Resolution, policy)
	return eng.Run()
}

// ExecuteBoth runs both branch policies (the measurement methodology).
func (d *Deployment) ExecuteBoth() (sim.MethodRun, error) {
	run := sim.MethodRun{Signature: d.Placement.Method.Signature()}
	for _, policy := range []sim.BranchPolicy{sim.BP1, sim.BP2} {
		r, err := d.Execute(policy)
		if err != nil {
			return run, err
		}
		r.Policy = policy
		if policy == sim.BP1 {
			run.BP1 = r
		} else {
			run.BP2 = r
		}
	}
	return run, nil
}

// DescribeResolution renders the per-instruction resolved dataflow in the
// Figure 22 annotation style:
//
//	(x) A1 -> A2 [taken A3]  >> A4,s <<  pop/push  group
func (d *Deployment) DescribeResolution() string {
	m := d.Placement.Method
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow resolution of %s (%d instructions):\n", m.Signature(), len(m.Code))
	for i, in := range m.Code {
		dir := "(0)"
		if in.IsBranch() {
			if in.Target > i {
				dir = "(+)"
			} else {
				dir = "(-)"
			}
		}
		var targets []string
		for _, tg := range d.Resolution.Targets[i] {
			flag := ""
			if len(producersOf(d.Resolution, tg)) > 1 {
				flag = "M"
			}
			targets = append(targets, fmt.Sprintf("%d,%s%d", tg.Consumer, flag, tg.Side))
		}
		arrow := ""
		if len(targets) > 0 {
			arrow = " >> " + strings.Join(targets, " ") + " <<"
		}
		branch := ""
		if in.Target != bytecode.NoTarget {
			branch = fmt.Sprintf(" [taken %d]", in.Target)
		}
		fmt.Fprintf(&b, "  %s %3d %-20s%s%s  pop=%d push=%d  %s\n",
			dir, i, in.String(), branch, arrow, in.Pop, in.Push, in.Group())
	}
	fmt.Fprintf(&b, "  merges=%d backMerges=%d maxQUp=%d resolutionCycles=%d\n",
		d.Resolution.Merges, d.Resolution.BackMerges, d.Resolution.MaxQUp, d.Resolution.Cycles)
	return b.String()
}

// producersOf finds all producers feeding the same consumer side.
func producersOf(r *fabric.Resolution, tg fabric.Target) []int {
	var out []int
	for prod, targets := range r.Targets {
		for _, t := range targets {
			if t == tg {
				out = append(out, prod)
			}
		}
	}
	return out
}

// DescribeTokenBundle renders the Figure 23 bundle for a method.
func DescribeTokenBundle(m *classfile.Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "token bundle for %s:\n", m.Signature())
	b.WriteString("  1. HEAD_TOKEN    — leads the bundle; translates control flow to dataflow order\n")
	b.WriteString("  2. MEMORY_TOKEN  — carries the sequential memory order number\n")
	for r := 0; r < m.MaxLocals; r++ {
		fmt.Fprintf(&b, "  %d. REGISTER_TOKEN[%d]\n", 3+r, r)
	}
	fmt.Fprintf(&b, "  %d. TAIL_TOKEN    — barrier; may never pass any other token\n", 3+m.MaxLocals)
	return b.String()
}
