package core

import (
	"strings"
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
)

func figure21Method(t *testing.T) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	a.ILoad(1).ILoad(2).ILoad(3).
		Op(bytecode.Iadd).Op(bytecode.Iadd).
		Local(bytecode.Istore, 4).
		Op(bytecode.Return)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &classfile.Method{
		Class: "Demo", Name: "fig21", MaxLocals: 5,
		Code: code, Pool: classfile.NewConstantPool(),
	}
}

func TestMachineDeployExecute(t *testing.T) {
	for _, cfg := range sim.Configurations() {
		m := NewMachine(cfg)
		dep, err := m.Deploy(figure21Method(t))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		run, err := dep.ExecuteBoth()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if run.BP1.Fired != 7 || run.BP2.Fired != 7 {
			t.Errorf("%s: fired %d/%d, want 7/7", cfg.Name, run.BP1.Fired, run.BP2.Fired)
		}
	}
}

func TestMachineDeployRejectsIneligible(t *testing.T) {
	a := bytecode.NewAssembler()
	a.ILoad(0).Switch(map[int64]string{1: "x"}, "x").Label("x").Op(bytecode.Return)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	bad := &classfile.Method{Class: "Demo", Name: "sw", MaxLocals: 1,
		Code: code, Pool: classfile.NewConstantPool()}
	m := NewMachine(sim.Configurations()[0])
	_, err = m.Deploy(bad)
	var le *fabric.LoadError
	if err == nil {
		t.Fatal("switch method should be rejected")
	}
	if !errorsAs(err, &le) {
		t.Fatalf("want LoadError, got %T: %v", err, err)
	}
}

func errorsAs(err error, target **fabric.LoadError) bool {
	for err != nil {
		if le, ok := err.(*fabric.LoadError); ok {
			*target = le
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestDescribeResolution(t *testing.T) {
	m := NewMachine(sim.Configurations()[1])
	dep, err := m.Deploy(figure21Method(t))
	if err != nil {
		t.Fatal(err)
	}
	desc := dep.DescribeResolution()
	for _, want := range []string{"iload_1", ">> 4,1 <<", "merges=0 backMerges=0"} {
		if !strings.Contains(desc, want) {
			t.Errorf("description missing %q:\n%s", want, desc)
		}
	}
}

func TestDeployTraced(t *testing.T) {
	m := NewMachine(sim.Configurations()[5]) // Hetero2
	dep, err := m.DeployTraced(figure21Method(t))
	if err != nil {
		t.Fatal(err)
	}
	trace := dep.Placement.DescribeLoad()
	if !strings.Contains(trace, "-> node") || !strings.Contains(trace, "ratio") {
		t.Errorf("load trace malformed:\n%s", trace)
	}
}

func TestDescribeTokenBundle(t *testing.T) {
	desc := DescribeTokenBundle(figure21Method(t))
	if !strings.Contains(desc, "REGISTER_TOKEN[4]") || !strings.Contains(desc, "TAIL_TOKEN") {
		t.Errorf("bundle description malformed:\n%s", desc)
	}
}
