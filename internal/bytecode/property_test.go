package bytecode

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: PushInt followed by IntConst is the identity for every value in
// sipush range.
func TestPushIntRoundTripProperty(t *testing.T) {
	f := func(v int16) bool {
		a := NewAssembler()
		a.PushInt(int64(v))
		instrs, err := a.Finish()
		if err != nil || len(instrs) != 1 {
			return false
		}
		got, ok := instrs[0].IntConst()
		return ok && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Local() round-trips the register number for every load/store
// base opcode and register.
func TestLocalRoundTripProperty(t *testing.T) {
	bases := []Opcode{Iload, Lload, Fload, Dload, Aload, Istore, Lstore, Fstore, Dstore, Astore}
	f := func(baseIdx uint8, regRaw uint8) bool {
		base := bases[int(baseIdx)%len(bases)]
		reg := int(regRaw) % 64
		a := NewAssembler()
		a.Local(base, reg)
		instrs, err := a.Finish()
		if err != nil || len(instrs) != 1 {
			return false
		}
		got, ok := instrs[0].LocalIndex()
		return ok && got == reg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode round-trips randomly generated (valid) straight-
// line programs with interleaved branches.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAssembler()
		n := 3 + rng.Intn(40)
		a.Label("top")
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				a.PushInt(int64(rng.Intn(1 << 14)))
				a.IStore(rng.Intn(4))
			case 1:
				a.ILoad(rng.Intn(4)).ILoad(rng.Intn(4)).Op(Iadd).IStore(rng.Intn(4))
			case 2:
				a.Iinc(rng.Intn(4), rng.Intn(100)-50)
			case 3:
				a.ILoad(rng.Intn(4)).Branch(Ifle, "end")
			case 4:
				a.ILoad(rng.Intn(4)).Branch(Ifgt, "top")
			default:
				a.Op(Nop)
			}
		}
		a.Label("end").Op(Return)
		instrs, err := a.Finish()
		if err != nil {
			return false
		}
		code, err := Encode(instrs)
		if err != nil {
			return false
		}
		got, err := Decode(code, nil)
		if err != nil || len(got) != len(instrs) {
			return false
		}
		for i := range instrs {
			w, g := instrs[i], got[i]
			if w.Op != g.Op || w.A != g.A || w.B != g.B || w.Target != g.Target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every defined opcode's group maps to exactly one mix class and
// String() never panics or returns empty.
func TestOpcodeTotalityProperty(t *testing.T) {
	f := func(raw byte) bool {
		op := Opcode(raw)
		_ = op.String() // must not panic
		if !op.IsDefined() {
			return op.Group() == GroupInvalid
		}
		g := op.Group()
		if g == GroupInvalid {
			return false
		}
		m := g.Mix()
		return m <= MixOther && g.String() != "" && m.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
