package bytecode

import (
	"strings"
	"testing"
)

func TestOpcodeTableInvariants(t *testing.T) {
	ops := Opcodes()
	if len(ops) < 200 {
		t.Fatalf("opcode table has %d entries, want the full architected set (>=200)", len(ops))
	}
	for _, op := range ops {
		info := MustLookup(op)
		if info.Mnemonic == "" {
			t.Errorf("opcode 0x%02x has empty mnemonic", byte(op))
		}
		if info.Group == GroupInvalid {
			t.Errorf("%s has invalid group", info.Mnemonic)
		}
		if info.Pop < VarPop || info.Pop > 6 {
			t.Errorf("%s has implausible pop %d", info.Mnemonic, info.Pop)
		}
		if info.Push < 0 || info.Push > 6 {
			t.Errorf("%s has implausible push %d", info.Mnemonic, info.Push)
		}
		if info.Pop == VarPop && info.Group != GroupCall && op != Multianewarray {
			t.Errorf("%s has VarPop but is not a call", info.Mnemonic)
		}
	}
}

func TestOpcodeMnemonicsUnique(t *testing.T) {
	seen := make(map[string]Opcode)
	for _, op := range Opcodes() {
		m := MustLookup(op).Mnemonic
		if prev, dup := seen[m]; dup {
			t.Errorf("mnemonic %q used by 0x%02x and 0x%02x", m, byte(prev), byte(op))
		}
		seen[m] = op
	}
}

func TestGroupMixMapping(t *testing.T) {
	cases := []struct {
		op   Opcode
		want MixClass
	}{
		{Iadd, MixArith},
		{Iload1, MixArith},
		{Istore2, MixArith},
		{Iinc, MixArith},
		{Dup, MixArith},
		{Dmul, MixFloat},
		{I2d, MixFloat},
		{Goto, MixControl},
		{IfIcmplt, MixControl},
		{Invokestatic, MixControl},
		{Ireturn, MixControl},
		{Ldc, MixStorage},
		{Iaload, MixStorage},
		{PutfieldQuick, MixStorage},
		{New, MixOther},
	}
	for _, c := range cases {
		if got := c.op.Group().Mix(); got != c.want {
			t.Errorf("%s: mix = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestInstructionLocalIndex(t *testing.T) {
	cases := []struct {
		in   Instruction
		want int
		ok   bool
	}{
		{Make(Iload2), 2, true},
		{MakeA(Iload, 7), 7, true},
		{Make(Dstore3), 3, true},
		{mustIinc(5, -1), 5, true},
		{Make(Iadd), 0, false},
		{Make(Aload0), 0, true},
	}
	for _, c := range cases {
		got, ok := c.in.LocalIndex()
		if got != c.want || ok != c.ok {
			t.Errorf("%s: LocalIndex = (%d,%v), want (%d,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func mustIinc(local, delta int) Instruction {
	in := Make(Iinc)
	in.A, in.B = int64(local), int64(delta)
	return in
}

func TestIntConst(t *testing.T) {
	cases := []struct {
		in   Instruction
		want int64
		ok   bool
	}{
		{Make(IconstM1), -1, true},
		{Make(Iconst5), 5, true},
		{MakeA(Bipush, -100), -100, true},
		{MakeA(Sipush, 30000), 30000, true},
		{Make(Lconst1), 1, true},
		{Make(Dup), 0, false},
	}
	for _, c := range cases {
		got, ok := c.in.IntConst()
		if got != c.want || ok != c.ok {
			t.Errorf("%s: IntConst = (%d,%v), want (%d,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestAssemblerShortForms(t *testing.T) {
	a := NewAssembler()
	a.ILoad(0).ILoad(3).ILoad(4).DStore(2).DStore(9)
	instrs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := []Opcode{Iload0, Iload3, Iload, Dstore2, Dstore}
	for i, op := range want {
		if instrs[i].Op != op {
			t.Errorf("instr %d = %s, want %s", i, instrs[i].Op, op)
		}
	}
	if idx, _ := instrs[2].LocalIndex(); idx != 4 {
		t.Errorf("wide iload register = %d, want 4", idx)
	}
}

func TestAssemblerPushIntSelection(t *testing.T) {
	a := NewAssembler()
	a.PushInt(-1).PushInt(5).PushInt(6).PushInt(-128).PushInt(128).PushInt(-32768)
	instrs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := []Opcode{IconstM1, Iconst5, Bipush, Bipush, Sipush, Sipush}
	for i, op := range want {
		if instrs[i].Op != op {
			t.Errorf("instr %d = %s, want %s", i, instrs[i].Op, op)
		}
		v, ok := instrs[i].IntConst()
		if !ok {
			t.Errorf("instr %d: no IntConst", i)
		}
		_ = v
	}
}

func TestAssemblerBranchResolution(t *testing.T) {
	a := NewAssembler()
	a.Label("top").
		ILoad(0).
		Branch(Ifne, "exit").
		Branch(Goto, "top").
		Label("exit").
		Op(Return)
	instrs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if instrs[1].Target != 3 {
		t.Errorf("ifne target = %d, want 3", instrs[1].Target)
	}
	if instrs[2].Target != 0 {
		t.Errorf("goto target = %d, want 0", instrs[2].Target)
	}
	if !instrs[2].IsBranch() || instrs[2].IsConditional() {
		t.Errorf("goto classification wrong: branch=%v cond=%v", instrs[2].IsBranch(), instrs[2].IsConditional())
	}
	if !instrs[1].IsConditional() {
		t.Error("ifne should be conditional")
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.Branch(Goto, "nowhere")
	if _, err := a.Finish(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestAssemblerDuplicateLabel(t *testing.T) {
	a := NewAssembler()
	a.Label("x").Op(Nop).Label("x")
	if _, err := a.Finish(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestMakeCallPopResolution(t *testing.T) {
	cases := []struct {
		op      Opcode
		argc    int
		returns bool
		wantPop int
		wantPsh int
	}{
		{Invokestatic, 2, true, 2, 1},
		{Invokestatic, 0, false, 0, 0},
		{Invokevirtual, 2, true, 3, 1},
		{Invokespecial, 0, false, 1, 0},
		{Invokeinterface, 1, true, 2, 1},
	}
	for _, c := range cases {
		in := MakeCall(c.op, 9, c.argc, c.returns)
		if in.Pop != c.wantPop || in.Push != c.wantPsh {
			t.Errorf("%s argc=%d: pop/push = %d/%d, want %d/%d",
				c.op, c.argc, in.Pop, in.Push, c.wantPop, c.wantPsh)
		}
	}
}

type fixedResolver struct{ argc int }

func (f fixedResolver) CallEffect(int) (int, bool, error) { return f.argc, true, nil }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := NewAssembler()
	a.Label("loop").
		ILoad(1).
		PushInt(100).
		Branch(IfIcmpge, "done").
		ILoad(1).
		PushInt(-77).
		Op(Iadd).
		IStore(1).
		Iinc(1, 1).
		Field(Getfield, 12).
		Ldc(3, false).
		Ldc(300, false).
		Ldc(4, true).
		Call(Invokestatic, 7, 2, true).
		Op(Pop).
		Branch(Goto, "loop").
		Label("done").
		DLoad(2).
		Op(Dreturn)
	instrs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}

	code, err := Encode(instrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(code, fixedResolver{argc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(instrs) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(instrs))
	}
	for i := range instrs {
		w, g := instrs[i], got[i]
		if w.Op != g.Op || w.A != g.A || w.B != g.B || w.Target != g.Target ||
			w.Pop != g.Pop || w.Push != g.Push {
			t.Errorf("instr %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestEncodeDecodeSwitch(t *testing.T) {
	a := NewAssembler()
	a.ILoad(0).
		Switch(map[int64]string{1: "one", 5: "five", -3: "neg"}, "def").
		Label("one").Op(Iconst1).Op(Ireturn).
		Label("five").Op(Iconst5).Op(Ireturn).
		Label("neg").Op(IconstM1).Op(Ireturn).
		Label("def").Op(Iconst0).Op(Ireturn)
	instrs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sw := instrs[1]
	if sw.Op != Lookupswitch || len(sw.SwitchKeys) != 3 {
		t.Fatalf("switch malformed: %+v", sw)
	}
	if sw.SwitchKeys[0] != -3 || sw.SwitchKeys[2] != 5 {
		t.Errorf("switch keys not sorted: %v", sw.SwitchKeys)
	}

	code, err := Encode(instrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := got[1]
	if g.Target != sw.Target {
		t.Errorf("default target = %d, want %d", g.Target, sw.Target)
	}
	for i := range sw.SwitchKeys {
		if g.SwitchKeys[i] != sw.SwitchKeys[i] || g.SwitchTargets[i] != sw.SwitchTargets[i] {
			t.Errorf("arm %d: got (%d->%d), want (%d->%d)",
				i, g.SwitchKeys[i], g.SwitchTargets[i], sw.SwitchKeys[i], sw.SwitchTargets[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{0xfe}, nil); err == nil {
		t.Error("expected error on undefined opcode")
	}
	if _, err := Decode([]byte{byte(Bipush)}, nil); err == nil {
		t.Error("expected error on truncated operand")
	}
	if _, err := Decode([]byte{byte(Goto), 0x00, 0x05}, nil); err == nil {
		t.Error("expected error on branch into nowhere")
	}
}

func TestDisassembleFormat(t *testing.T) {
	a := NewAssembler()
	a.ILoad(0).Iinc(2, 3).Branch(Goto, "l").Label("l").Op(Return)
	instrs, _ := a.Finish()
	d := Disassemble(instrs)
	for _, want := range []string{"iload_0", "iinc 2, 3", "goto -> #3", "return"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestNegativeBranchEncode(t *testing.T) {
	// A back branch must encode as a negative 16-bit offset and decode back.
	a := NewAssembler()
	a.Label("top").Op(Nop).Op(Nop).Branch(Goto, "top")
	instrs, _ := a.Finish()
	code, err := Encode(instrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Target != 0 {
		t.Errorf("back-branch target = %d, want 0", got[2].Target)
	}
}
