package bytecode

import (
	"fmt"
	"sort"
)

// Assembler builds a method body instruction-by-instruction with symbolic
// branch labels. It selects the architected short forms (iload_0 …) where
// they exist, mirroring what JAVAC emits, so that static-mix statistics match
// real compiler output.
//
// The zero value is not usable; create with NewAssembler.
type Assembler struct {
	instrs []Instruction
	labels map[string]int
	fixups map[int]string // instruction index -> label
	errs   []error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Len returns the number of instructions emitted so far (the linear address
// of the next instruction).
func (a *Assembler) Len() int { return len(a.instrs) }

// Label binds name to the next emitted instruction.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.instrs)
	return a
}

// Op emits an instruction with no operand.
func (a *Assembler) Op(op Opcode) *Assembler {
	a.instrs = append(a.instrs, Make(op))
	return a
}

// OpA emits an instruction with a primary operand.
func (a *Assembler) OpA(op Opcode, operand int64) *Assembler {
	a.instrs = append(a.instrs, MakeA(op, operand))
	return a
}

// Branch emits a branch instruction targeting label.
func (a *Assembler) Branch(op Opcode, label string) *Assembler {
	info := MustLookup(op)
	if !info.Branch {
		a.errs = append(a.errs, fmt.Errorf("%s is not a branch opcode", op))
	}
	in := Make(op)
	a.fixups[len(a.instrs)] = label
	a.instrs = append(a.instrs, in)
	return a
}

// Iinc emits a local-increment of register local by delta.
func (a *Assembler) Iinc(local, delta int) *Assembler {
	in := Make(Iinc)
	in.A, in.B = int64(local), int64(delta)
	a.instrs = append(a.instrs, in)
	return a
}

// shortForm returns the _0.._3 variant of base for register n, if any.
// base must be the wide (operand-carrying) load/store opcode; the four short
// forms are architected to follow contiguously per type.
var shortForms = map[Opcode][4]Opcode{
	Iload:  {Iload0, Iload1, Iload2, Iload3},
	Lload:  {Lload0, Lload1, Lload2, Lload3},
	Fload:  {Fload0, Fload1, Fload2, Fload3},
	Dload:  {Dload0, Dload1, Dload2, Dload3},
	Aload:  {Aload0, Aload1, Aload2, Aload3},
	Istore: {Istore0, Istore1, Istore2, Istore3},
	Lstore: {Lstore0, Lstore1, Lstore2, Lstore3},
	Fstore: {Fstore0, Fstore1, Fstore2, Fstore3},
	Dstore: {Dstore0, Dstore1, Dstore2, Dstore3},
	Astore: {Astore0, Astore1, Astore2, Astore3},
}

// Local emits a local read/write using the short form when the register
// number permits (as JAVAC does). base is the wide opcode (Iload, Dstore…).
func (a *Assembler) Local(base Opcode, n int) *Assembler {
	if n < 0 {
		a.errs = append(a.errs, fmt.Errorf("negative register %d", n))
		n = 0
	}
	if forms, ok := shortForms[base]; ok && n < 4 {
		return a.Op(forms[n])
	}
	return a.OpA(base, int64(n))
}

// ILoad … AStore are convenience wrappers over Local.
func (a *Assembler) ILoad(n int) *Assembler  { return a.Local(Iload, n) }
func (a *Assembler) LLoad(n int) *Assembler  { return a.Local(Lload, n) }
func (a *Assembler) FLoad(n int) *Assembler  { return a.Local(Fload, n) }
func (a *Assembler) DLoad(n int) *Assembler  { return a.Local(Dload, n) }
func (a *Assembler) ALoad(n int) *Assembler  { return a.Local(Aload, n) }
func (a *Assembler) IStore(n int) *Assembler { return a.Local(Istore, n) }
func (a *Assembler) LStore(n int) *Assembler { return a.Local(Lstore, n) }
func (a *Assembler) FStore(n int) *Assembler { return a.Local(Fstore, n) }
func (a *Assembler) DStore(n int) *Assembler { return a.Local(Dstore, n) }
func (a *Assembler) AStore(n int) *Assembler { return a.Local(Astore, n) }

// PushInt emits the smallest constant-push form for v: iconst_*, bipush,
// or sipush. Values beyond 16 bits would need an ldc; the caller supplies a
// constant-pool index for those via Ldc.
func (a *Assembler) PushInt(v int64) *Assembler {
	switch {
	case v >= -1 && v <= 5:
		return a.Op(Iconst0 + Opcode(v)) // iconst_m1 is contiguous below iconst_0
	case v >= -128 && v <= 127:
		return a.OpA(Bipush, v)
	case v >= -32768 && v <= 32767:
		return a.OpA(Sipush, v)
	default:
		a.errs = append(a.errs, fmt.Errorf("PushInt %d out of sipush range; use Ldc", v))
		return a
	}
}

// Ldc emits a constant-pool load. Wide indices select ldc_w automatically;
// isWide selects ldc2_w for long/double constants.
func (a *Assembler) Ldc(cpIndex int, isWide bool) *Assembler {
	switch {
	case isWide:
		return a.OpA(Ldc2W, int64(cpIndex))
	case cpIndex <= 0xff:
		return a.OpA(Ldc, int64(cpIndex))
	default:
		return a.OpA(LdcW, int64(cpIndex))
	}
}

// Field emits a field access in its architected base form. Interpreters
// rewrite the base form to the _Quick variant on first execution, and the
// GPP rewrites statically before fabric loading (Section 5.2, Table 5);
// see QuickForm.
func (a *Assembler) Field(op Opcode, cpIndex int) *Assembler {
	if _, ok := QuickForm(op); !ok {
		a.errs = append(a.errs, fmt.Errorf("Field on non-field opcode %s", op))
		return a
	}
	return a.OpA(op, int64(cpIndex))
}

// QuickForm returns the resolved _Quick variant of a base field opcode.
// _Quick opcodes map to themselves.
func QuickForm(op Opcode) (Opcode, bool) {
	switch op {
	case Getstatic:
		return GetstaticQuick, true
	case Putstatic:
		return PutstaticQuick, true
	case Getfield:
		return GetfieldQuick, true
	case Putfield:
		return PutfieldQuick, true
	case GetstaticQuick, PutstaticQuick, GetfieldQuick, PutfieldQuick:
		return op, true
	}
	return op, false
}

// IsQuick reports whether op is a resolved _Quick storage opcode.
func IsQuick(op Opcode) bool {
	switch op {
	case GetstaticQuick, PutstaticQuick, GetfieldQuick, PutfieldQuick:
		return true
	}
	return false
}

// Call emits an invoke instruction with its signature-resolved pop count.
func (a *Assembler) Call(op Opcode, cpIndex int, argc int, returnsValue bool) *Assembler {
	a.instrs = append(a.instrs, MakeCall(op, int64(cpIndex), argc, returnsValue))
	return a
}

// Switch emits a lookupswitch with the given key->label arms and a default
// label. Keys are sorted as the architecture requires.
func (a *Assembler) Switch(arms map[int64]string, def string) *Assembler {
	in := Make(Lookupswitch)
	keys := make([]int64, 0, len(arms))
	for k := range arms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	in.SwitchKeys = keys
	in.SwitchTargets = make([]int, len(keys))
	idx := len(a.instrs)
	for i, k := range keys {
		a.fixups[encodeSwitchFixup(idx, i)] = arms[k]
	}
	a.fixups[encodeSwitchFixup(idx, -1)] = def
	a.instrs = append(a.instrs, in)
	return a
}

// Switch fixups are keyed by a composite of instruction index and arm number
// so they share the ordinary fixup table. Arm -1 is the default target.
func encodeSwitchFixup(instr, arm int) int { return -((instr+1)*1000 + (arm + 1)) }
func decodeSwitchFixup(key int) (instr, arm int, ok bool) {
	if key >= 0 {
		return 0, 0, false
	}
	k := -key
	return k/1000 - 1, k%1000 - 1, true
}

// Finish resolves all labels and returns the instruction stream.
func (a *Assembler) Finish() ([]Instruction, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	for key, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", label)
		}
		if instr, arm, isSwitch := decodeSwitchFixup(key); isSwitch {
			if arm < 0 {
				a.instrs[instr].Target = target
			} else {
				a.instrs[instr].SwitchTargets[arm] = target
			}
			continue
		}
		a.instrs[key].Target = target
	}
	for i, in := range a.instrs {
		if in.Info().Branch && in.Target == NoTarget {
			return nil, fmt.Errorf("instruction %d (%s) has unresolved target", i, in.Op)
		}
		if in.Target != NoTarget && (in.Target < 0 || in.Target > len(a.instrs)) {
			return nil, fmt.Errorf("instruction %d (%s) targets out of range %d", i, in.Op, in.Target)
		}
	}
	return a.instrs, nil
}
