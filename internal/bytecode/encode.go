package bytecode

import (
	"encoding/binary"
	"fmt"
)

// SignatureResolver resolves the stack effect of a call site from its
// constant-pool index. The General Purpose Processor performs this
// resolution before a method is loaded into the DataFlow Fabric
// (Section 6.2): "In the case of all instructions except Calls, this is a
// direct translation from the opcode."
type SignatureResolver interface {
	// CallEffect returns the number of arguments (excluding any receiver)
	// and whether the callee returns a value.
	CallEffect(cpIndex int) (argc int, returnsValue bool, err error)
}

// Encode serializes a decoded instruction stream to architected class-file
// byte form: one opcode byte plus big-endian operands, with branch targets
// re-expressed as signed 16-bit byte offsets relative to the branch opcode.
func Encode(instrs []Instruction) ([]byte, error) {
	// First pass: byte offset of each instruction.
	offsets := make([]int, len(instrs)+1)
	off := 0
	for i, in := range instrs {
		offsets[i] = off
		n, err := encodedLen(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		off += n
	}
	offsets[len(instrs)] = off

	buf := make([]byte, 0, off)
	for i, in := range instrs {
		b, err := encodeOne(in, offsets, i)
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, in.Op, err)
		}
		buf = append(buf, b...)
	}
	return buf, nil
}

func encodedLen(in Instruction) (int, error) {
	info, ok := Lookup(in.Op)
	if !ok {
		return 0, fmt.Errorf("undefined opcode 0x%02x", byte(in.Op))
	}
	if info.OperandBytes != VarLen {
		return 1 + info.OperandBytes, nil
	}
	switch in.Op {
	case Lookupswitch:
		// opcode + pad-to-4 + default(4) + npairs(4) + 8 per pair.
		// Padding depends on position; account for worst case in the
		// first pass by computing exactly in encodeOne. To keep offsets
		// consistent we disallow padding by aligning: we instead always
		// use 3 pad bytes' worth of space. See encodeOne.
		return 1 + 3 + 4 + 4 + 8*len(in.SwitchKeys), nil
	default:
		return 0, fmt.Errorf("variable-length opcode %s not encodable", in.Op)
	}
}

func encodeOne(in Instruction, offsets []int, idx int) ([]byte, error) {
	info := MustLookup(in.Op)
	myOff := offsets[idx]
	var buf []byte
	buf = append(buf, byte(in.Op))

	if in.Op == Lookupswitch {
		// Fixed 3-byte padding (we do not require 4-byte alignment of the
		// method base; the decoder mirrors this choice).
		buf = append(buf, 0, 0, 0)
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], uint32(offsets[in.Target]-myOff))
		buf = append(buf, w[:]...)
		binary.BigEndian.PutUint32(w[:], uint32(len(in.SwitchKeys)))
		buf = append(buf, w[:]...)
		for i, k := range in.SwitchKeys {
			binary.BigEndian.PutUint32(w[:], uint32(int32(k)))
			buf = append(buf, w[:]...)
			binary.BigEndian.PutUint32(w[:], uint32(offsets[in.SwitchTargets[i]]-myOff))
			buf = append(buf, w[:]...)
		}
		return buf, nil
	}

	if info.Branch {
		delta := offsets[in.Target] - myOff
		switch info.OperandBytes {
		case 2:
			if delta < -32768 || delta > 32767 {
				return nil, fmt.Errorf("branch offset %d exceeds 16 bits", delta)
			}
			buf = append(buf, byte(delta>>8), byte(delta))
		case 4:
			var w [4]byte
			binary.BigEndian.PutUint32(w[:], uint32(int32(delta)))
			buf = append(buf, w[:]...)
		}
		return buf, nil
	}

	switch info.OperandBytes {
	case 0:
	case 1:
		buf = append(buf, byte(in.A))
	case 2:
		if in.Op == Iinc {
			buf = append(buf, byte(in.A), byte(in.B))
		} else {
			buf = append(buf, byte(in.A>>8), byte(in.A))
		}
	case 3: // multianewarray: 2-byte cp index + dimensions byte
		buf = append(buf, byte(in.A>>8), byte(in.A), byte(in.B))
	case 4:
		if in.Op == Invokeinterface {
			buf = append(buf, byte(in.A>>8), byte(in.A), byte(in.B), 0)
		} else { // invokedynamic
			buf = append(buf, byte(in.A>>8), byte(in.A), 0, 0)
		}
	default:
		return nil, fmt.Errorf("unhandled operand width %d", info.OperandBytes)
	}
	return buf, nil
}

// Decode parses architected byte form back into linear-address instructions.
// resolver may be nil, in which case call sites keep Pop=VarPop and must be
// resolved before fabric loading.
func Decode(code []byte, resolver SignatureResolver) ([]Instruction, error) {
	// First pass: byte offset -> instruction index.
	idxAt := make(map[int]int)
	var instrs []Instruction
	type patch struct {
		instr  int
		arm    int // -1: Target; >=0: SwitchTargets[arm]
		target int // byte offset
	}
	var patches []patch

	for pc := 0; pc < len(code); {
		op := Opcode(code[pc])
		info, ok := Lookup(op)
		if !ok {
			return nil, fmt.Errorf("offset %d: undefined opcode 0x%02x", pc, byte(op))
		}
		idxAt[pc] = len(instrs)
		in := Instruction{Op: op, Target: NoTarget, Pop: info.Pop, Push: info.Push}
		myOff := pc
		pc++

		readU16 := func() (int, error) {
			if pc+2 > len(code) {
				return 0, fmt.Errorf("offset %d: truncated %s", myOff, op)
			}
			v := int(binary.BigEndian.Uint16(code[pc:]))
			pc += 2
			return v, nil
		}
		readS32 := func() (int, error) {
			if pc+4 > len(code) {
				return 0, fmt.Errorf("offset %d: truncated %s", myOff, op)
			}
			v := int(int32(binary.BigEndian.Uint32(code[pc:])))
			pc += 4
			return v, nil
		}

		switch {
		case op == Lookupswitch:
			pc += 3 // fixed padding, mirroring Encode
			def, err := readS32()
			if err != nil {
				return nil, err
			}
			patches = append(patches, patch{len(instrs), -1, myOff + def})
			n, err := readS32()
			if err != nil {
				return nil, err
			}
			if n < 0 || n > 1<<16 {
				return nil, fmt.Errorf("offset %d: implausible npairs %d", myOff, n)
			}
			in.SwitchKeys = make([]int64, n)
			in.SwitchTargets = make([]int, n)
			for i := 0; i < n; i++ {
				k, err := readS32()
				if err != nil {
					return nil, err
				}
				in.SwitchKeys[i] = int64(k)
				t, err := readS32()
				if err != nil {
					return nil, err
				}
				patches = append(patches, patch{len(instrs), i, myOff + t})
			}
		case op == Tableswitch || op == Wide:
			return nil, fmt.Errorf("offset %d: %s decoding not supported (assembler never emits it)", myOff, op)
		case info.Branch && info.OperandBytes == 2:
			v, err := readU16()
			if err != nil {
				return nil, err
			}
			patches = append(patches, patch{len(instrs), -1, myOff + int(int16(v))})
		case info.Branch && info.OperandBytes == 4:
			v, err := readS32()
			if err != nil {
				return nil, err
			}
			patches = append(patches, patch{len(instrs), -1, myOff + v})
		case info.OperandBytes == 1:
			if pc >= len(code) {
				return nil, fmt.Errorf("offset %d: truncated %s", myOff, op)
			}
			if op == Bipush {
				in.A = int64(int8(code[pc]))
			} else {
				in.A = int64(code[pc])
			}
			pc++
		case info.OperandBytes == 2:
			if op == Iinc {
				if pc+2 > len(code) {
					return nil, fmt.Errorf("offset %d: truncated iinc", myOff)
				}
				in.A = int64(code[pc])
				in.B = int64(int8(code[pc+1]))
				pc += 2
			} else {
				v, err := readU16()
				if err != nil {
					return nil, err
				}
				if op == Sipush {
					in.A = int64(int16(v))
				} else {
					in.A = int64(v)
				}
			}
		case info.OperandBytes == 3:
			if pc+3 > len(code) {
				return nil, fmt.Errorf("offset %d: truncated %s", myOff, op)
			}
			in.A = int64(binary.BigEndian.Uint16(code[pc:]))
			in.B = int64(code[pc+2])
			pc += 3
		case info.OperandBytes == 4:
			v, err := readU16()
			if err != nil {
				return nil, err
			}
			in.A = int64(v)
			if pc+2 > len(code) {
				return nil, fmt.Errorf("offset %d: truncated %s", myOff, op)
			}
			in.B = int64(code[pc])
			pc += 2
		}

		if info.Pop == VarPop && info.Group == GroupCall && resolver != nil {
			argc, rv, err := resolver.CallEffect(int(in.A))
			if err != nil {
				return nil, fmt.Errorf("offset %d: resolving %s: %w", myOff, op, err)
			}
			resolved := MakeCall(op, in.A, argc, rv)
			resolved.B = in.B
			in = resolved
		}
		instrs = append(instrs, in)
	}

	for _, p := range patches {
		ti, ok := idxAt[p.target]
		if !ok {
			return nil, fmt.Errorf("branch into middle of instruction at byte offset %d", p.target)
		}
		if p.arm < 0 {
			instrs[p.instr].Target = ti
		} else {
			instrs[p.instr].SwitchTargets[p.arm] = ti
		}
	}
	return instrs, nil
}

// Disassemble renders the stream in JAVAP-like numbered form (Figure 28).
func Disassemble(instrs []Instruction) string {
	out := ""
	for i, in := range instrs {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}
