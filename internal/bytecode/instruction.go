package bytecode

import "fmt"

// NoTarget marks the Target field of non-branch instructions.
const NoTarget = -1

// Instruction is a decoded ByteCode instruction in linear-address form.
//
// The JavaFlow fabric addresses instructions by their linear index in the
// method ("all instructions are a single length and the linear addresses are
// independent of the size of the ByteCode instructions", Section 4.2), so
// branch targets are instruction indices, not byte offsets. The byte-level
// encoding is handled by Encode/Decode.
type Instruction struct {
	Op Opcode

	// A is the primary operand: the immediate constant for bipush/sipush,
	// the local register index for wide-form loads/stores/iinc/ret, or the
	// constant-pool index for ldc/field/invoke/new instructions.
	A int64
	// B is the secondary operand (the iinc delta, or the invokeinterface
	// count byte).
	B int64

	// Target is the branch target as an instruction index, or NoTarget.
	Target int

	// SwitchTargets and SwitchKeys describe tableswitch/lookupswitch arms;
	// Target holds the default target for those opcodes.
	SwitchKeys    []int64
	SwitchTargets []int

	// Pop and Push are the resolved stack effects. For most instructions
	// they mirror the architected table; for invokes they are resolved
	// from the call signature by the General Purpose Processor before the
	// method is loaded into the fabric (Section 6.2).
	Pop, Push int
}

// Make builds an instruction with architected pop/push counts resolved.
// It panics on VarPop opcodes (calls), which need MakeCall.
func Make(op Opcode) Instruction {
	info := MustLookup(op)
	if info.Pop == VarPop {
		panic(fmt.Sprintf("bytecode: %s needs MakeCall (signature-dependent pop)", op))
	}
	return Instruction{Op: op, Target: NoTarget, Pop: info.Pop, Push: info.Push}
}

// MakeA builds an instruction with a primary operand.
func MakeA(op Opcode, a int64) Instruction {
	in := Make(op)
	in.A = a
	return in
}

// MakeCall builds an invoke instruction with its pop count resolved from the
// call signature: argc arguments plus one receiver for instance invokes, and
// a single pushed result when the callee returns a value.
func MakeCall(op Opcode, cpIndex int64, argc int, returnsValue bool) Instruction {
	info := MustLookup(op)
	if info.Group != GroupCall {
		panic(fmt.Sprintf("bytecode: MakeCall on non-call opcode %s", op))
	}
	pop := argc
	if op == Invokevirtual || op == Invokespecial || op == Invokeinterface {
		pop++ // objectref
	}
	push := 0
	if returnsValue {
		push = 1
	}
	return Instruction{Op: op, A: cpIndex, Target: NoTarget, Pop: pop, Push: push}
}

// Info returns the architected description of the instruction's opcode.
func (in Instruction) Info() Info { return MustLookup(in.Op) }

// Group returns the instruction group.
func (in Instruction) Group() Group { return in.Op.Group() }

// IsBranch reports whether the instruction may transfer control to Target.
func (in Instruction) IsBranch() bool {
	return in.Target != NoTarget && in.Info().Branch
}

// IsConditional reports whether the instruction is a conditional jump (it
// has both a taken and a not-taken successor).
func (in Instruction) IsConditional() bool {
	return in.IsBranch() && in.Op != Goto && in.Op != GotoW
}

// IsReturn reports whether the instruction ends the method.
func (in Instruction) IsReturn() bool {
	g := in.Group()
	return g == GroupReturn
}

// IsCall reports whether the instruction invokes another method.
func (in Instruction) IsCall() bool { return in.Group() == GroupCall }

// localIndexOps maps the short-form load/store opcodes to their implicit
// register numbers.
var localIndexOps = map[Opcode]int{
	Iload0: 0, Iload1: 1, Iload2: 2, Iload3: 3,
	Lload0: 0, Lload1: 1, Lload2: 2, Lload3: 3,
	Fload0: 0, Fload1: 1, Fload2: 2, Fload3: 3,
	Dload0: 0, Dload1: 1, Dload2: 2, Dload3: 3,
	Aload0: 0, Aload1: 1, Aload2: 2, Aload3: 3,
	Istore0: 0, Istore1: 1, Istore2: 2, Istore3: 3,
	Lstore0: 0, Lstore1: 1, Lstore2: 2, Lstore3: 3,
	Fstore0: 0, Fstore1: 1, Fstore2: 2, Fstore3: 3,
	Dstore0: 0, Dstore1: 1, Dstore2: 2, Dstore3: 3,
	Astore0: 0, Astore1: 1, Astore2: 2, Astore3: 3,
}

// LocalIndex returns the local register accessed by the instruction and true
// for local reads, writes and increments; otherwise (0, false).
func (in Instruction) LocalIndex() (int, bool) {
	switch in.Group() {
	case GroupLocalRead, GroupLocalWrite, GroupLocalInc:
		if idx, ok := localIndexOps[in.Op]; ok {
			return idx, true
		}
		return int(in.A), true
	}
	return 0, false
}

// constOps maps constant-pushing opcodes to their implicit integer payloads.
var constOps = map[Opcode]int64{
	IconstM1: -1, Iconst0: 0, Iconst1: 1, Iconst2: 2,
	Iconst3: 3, Iconst4: 4, Iconst5: 5,
	Lconst0: 0, Lconst1: 1,
}

// constFloatOps maps float/double constant opcodes to their payloads.
var constFloatOps = map[Opcode]float64{
	Fconst0: 0, Fconst1: 1, Fconst2: 2,
	Dconst0: 0, Dconst1: 1,
}

// IntConst returns the immediate integer constant produced by the
// instruction, if it is an integer constant producer.
func (in Instruction) IntConst() (int64, bool) {
	if v, ok := constOps[in.Op]; ok {
		return v, true
	}
	switch in.Op {
	case Bipush, Sipush:
		return in.A, true
	}
	return 0, false
}

// FloatConst returns the immediate floating constant produced by the
// instruction, if any.
func (in Instruction) FloatConst() (float64, bool) {
	v, ok := constFloatOps[in.Op]
	return v, ok
}

// String renders the instruction in JAVAP-like form (without addresses).
func (in Instruction) String() string {
	info := in.Info()
	switch {
	case in.Op == Iinc:
		return fmt.Sprintf("%s %d, %d", info.Mnemonic, in.A, in.B)
	case in.Target != NoTarget:
		return fmt.Sprintf("%s -> #%d", info.Mnemonic, in.Target)
	case info.OperandBytes > 0:
		return fmt.Sprintf("%s %d", info.Mnemonic, in.A)
	default:
		return info.Mnemonic
	}
}
