// Package bytecode defines the Java Virtual Machine instruction set as used
// by the JavaFlow machine: every architected opcode, its operand layout, its
// stack pop/push behaviour (Appendix A of the dissertation), and its
// instruction group, which determines both the kind of Instruction Node that
// can host it in the DataFlow Fabric and its execution latency.
//
// The package also provides an assembler for building methods
// programmatically (used by the synthetic SPEC-analog workload corpus), a
// binary encoder/decoder, and a JAVAP-style disassembler.
//
// The load-bearing invariant is encode/decode round-tripping: a method
// body's bytes are its identity (the store and the replication dedup key
// both hash them), so assembling, encoding and re-decoding a method must
// reproduce the original stream exactly.
package bytecode

import "fmt"

// Opcode is a single-byte JVM operation code.
type Opcode byte

// The complete architected opcode set of the Java Virtual Machine.
const (
	Nop             Opcode = 0x00
	AconstNull      Opcode = 0x01
	IconstM1        Opcode = 0x02
	Iconst0         Opcode = 0x03
	Iconst1         Opcode = 0x04
	Iconst2         Opcode = 0x05
	Iconst3         Opcode = 0x06
	Iconst4         Opcode = 0x07
	Iconst5         Opcode = 0x08
	Lconst0         Opcode = 0x09
	Lconst1         Opcode = 0x0a
	Fconst0         Opcode = 0x0b
	Fconst1         Opcode = 0x0c
	Fconst2         Opcode = 0x0d
	Dconst0         Opcode = 0x0e
	Dconst1         Opcode = 0x0f
	Bipush          Opcode = 0x10
	Sipush          Opcode = 0x11
	Ldc             Opcode = 0x12
	LdcW            Opcode = 0x13
	Ldc2W           Opcode = 0x14
	Iload           Opcode = 0x15
	Lload           Opcode = 0x16
	Fload           Opcode = 0x17
	Dload           Opcode = 0x18
	Aload           Opcode = 0x19
	Iload0          Opcode = 0x1a
	Iload1          Opcode = 0x1b
	Iload2          Opcode = 0x1c
	Iload3          Opcode = 0x1d
	Lload0          Opcode = 0x1e
	Lload1          Opcode = 0x1f
	Lload2          Opcode = 0x20
	Lload3          Opcode = 0x21
	Fload0          Opcode = 0x22
	Fload1          Opcode = 0x23
	Fload2          Opcode = 0x24
	Fload3          Opcode = 0x25
	Dload0          Opcode = 0x26
	Dload1          Opcode = 0x27
	Dload2          Opcode = 0x28
	Dload3          Opcode = 0x29
	Aload0          Opcode = 0x2a
	Aload1          Opcode = 0x2b
	Aload2          Opcode = 0x2c
	Aload3          Opcode = 0x2d
	Iaload          Opcode = 0x2e
	Laload          Opcode = 0x2f
	Faload          Opcode = 0x30
	Daload          Opcode = 0x31
	Aaload          Opcode = 0x32
	Baload          Opcode = 0x33
	Caload          Opcode = 0x34
	Saload          Opcode = 0x35
	Istore          Opcode = 0x36
	Lstore          Opcode = 0x37
	Fstore          Opcode = 0x38
	Dstore          Opcode = 0x39
	Astore          Opcode = 0x3a
	Istore0         Opcode = 0x3b
	Istore1         Opcode = 0x3c
	Istore2         Opcode = 0x3d
	Istore3         Opcode = 0x3e
	Lstore0         Opcode = 0x3f
	Lstore1         Opcode = 0x40
	Lstore2         Opcode = 0x41
	Lstore3         Opcode = 0x42
	Fstore0         Opcode = 0x43
	Fstore1         Opcode = 0x44
	Fstore2         Opcode = 0x45
	Fstore3         Opcode = 0x46
	Dstore0         Opcode = 0x47
	Dstore1         Opcode = 0x48
	Dstore2         Opcode = 0x49
	Dstore3         Opcode = 0x4a
	Astore0         Opcode = 0x4b
	Astore1         Opcode = 0x4c
	Astore2         Opcode = 0x4d
	Astore3         Opcode = 0x4e
	Iastore         Opcode = 0x4f
	Lastore         Opcode = 0x50
	Fastore         Opcode = 0x51
	Dastore         Opcode = 0x52
	Aastore         Opcode = 0x53
	Bastore         Opcode = 0x54
	Castore         Opcode = 0x55
	Sastore         Opcode = 0x56
	Pop             Opcode = 0x57
	Pop2            Opcode = 0x58
	Dup             Opcode = 0x59
	DupX1           Opcode = 0x5a
	DupX2           Opcode = 0x5b
	Dup2            Opcode = 0x5c
	Dup2X1          Opcode = 0x5d
	Dup2X2          Opcode = 0x5e
	Swap            Opcode = 0x5f
	Iadd            Opcode = 0x60
	Ladd            Opcode = 0x61
	Fadd            Opcode = 0x62
	Dadd            Opcode = 0x63
	Isub            Opcode = 0x64
	Lsub            Opcode = 0x65
	Fsub            Opcode = 0x66
	Dsub            Opcode = 0x67
	Imul            Opcode = 0x68
	Lmul            Opcode = 0x69
	Fmul            Opcode = 0x6a
	Dmul            Opcode = 0x6b
	Idiv            Opcode = 0x6c
	Ldiv            Opcode = 0x6d
	Fdiv            Opcode = 0x6e
	Ddiv            Opcode = 0x6f
	Irem            Opcode = 0x70
	Lrem            Opcode = 0x71
	Frem            Opcode = 0x72
	Drem            Opcode = 0x73
	Ineg            Opcode = 0x74
	Lneg            Opcode = 0x75
	Fneg            Opcode = 0x76
	Dneg            Opcode = 0x77
	Ishl            Opcode = 0x78
	Lshl            Opcode = 0x79
	Ishr            Opcode = 0x7a
	Lshr            Opcode = 0x7b
	Iushr           Opcode = 0x7c
	Lushr           Opcode = 0x7d
	Iand            Opcode = 0x7e
	Land            Opcode = 0x7f
	Ior             Opcode = 0x80
	Lor             Opcode = 0x81
	Ixor            Opcode = 0x82
	Lxor            Opcode = 0x83
	Iinc            Opcode = 0x84
	I2l             Opcode = 0x85
	I2f             Opcode = 0x86
	I2d             Opcode = 0x87
	L2i             Opcode = 0x88
	L2f             Opcode = 0x89
	L2d             Opcode = 0x8a
	F2i             Opcode = 0x8b
	F2l             Opcode = 0x8c
	F2d             Opcode = 0x8d
	D2i             Opcode = 0x8e
	D2l             Opcode = 0x8f
	D2f             Opcode = 0x90
	I2b             Opcode = 0x91
	I2c             Opcode = 0x92
	I2s             Opcode = 0x93
	Lcmp            Opcode = 0x94
	Fcmpl           Opcode = 0x95
	Fcmpg           Opcode = 0x96
	Dcmpl           Opcode = 0x97
	Dcmpg           Opcode = 0x98
	Ifeq            Opcode = 0x99
	Ifne            Opcode = 0x9a
	Iflt            Opcode = 0x9b
	Ifge            Opcode = 0x9c
	Ifgt            Opcode = 0x9d
	Ifle            Opcode = 0x9e
	IfIcmpeq        Opcode = 0x9f
	IfIcmpne        Opcode = 0xa0
	IfIcmplt        Opcode = 0xa1
	IfIcmpge        Opcode = 0xa2
	IfIcmpgt        Opcode = 0xa3
	IfIcmple        Opcode = 0xa4
	IfAcmpeq        Opcode = 0xa5
	IfAcmpne        Opcode = 0xa6
	Goto            Opcode = 0xa7
	Jsr             Opcode = 0xa8
	Ret             Opcode = 0xa9
	Tableswitch     Opcode = 0xaa
	Lookupswitch    Opcode = 0xab
	Ireturn         Opcode = 0xac
	Lreturn         Opcode = 0xad
	Freturn         Opcode = 0xae
	Dreturn         Opcode = 0xaf
	Areturn         Opcode = 0xb0
	Return          Opcode = 0xb1
	Getstatic       Opcode = 0xb2
	Putstatic       Opcode = 0xb3
	Getfield        Opcode = 0xb4
	Putfield        Opcode = 0xb5
	Invokevirtual   Opcode = 0xb6
	Invokespecial   Opcode = 0xb7
	Invokestatic    Opcode = 0xb8
	Invokeinterface Opcode = 0xb9
	Invokedynamic   Opcode = 0xba
	New             Opcode = 0xbb
	Newarray        Opcode = 0xbc
	Anewarray       Opcode = 0xbd
	Arraylength     Opcode = 0xbe
	Athrow          Opcode = 0xbf
	Checkcast       Opcode = 0xc0
	Instanceof      Opcode = 0xc1
	Monitorenter    Opcode = 0xc2
	Monitorexit     Opcode = 0xc3
	Wide            Opcode = 0xc4
	Multianewarray  Opcode = 0xc5
	Ifnull          Opcode = 0xc6
	Ifnonnull       Opcode = 0xc7
	GotoW           Opcode = 0xc8
	JsrW            Opcode = 0xc9

	// _Quick storage opcodes: non-architected variants used after the
	// constant-pool reference has been resolved to a direct offset
	// (Section 3.6 / Table 5 of the dissertation). The JavaFlow fabric
	// executes the _Quick forms; the interpreter rewrites the base form on
	// first execution, exactly as classic interpreters do.
	GetstaticQuick Opcode = 0xd2
	PutstaticQuick Opcode = 0xd3
	GetfieldQuick  Opcode = 0xd4
	PutfieldQuick  Opcode = 0xd5
)

// Group classifies instructions by processing behaviour, following the
// Appendix A tables. The group determines firing rules in the fabric
// (Section 6.3), the Instruction Node kind that may host the instruction,
// and the execution latency (Table 17).
type Group uint8

const (
	GroupInvalid    Group = iota
	GroupMove             // constants onto stack, dup/pop/swap (Table 31)
	GroupIntArith         // integer & logical arithmetic (Table 30)
	GroupFloatArith       // floating-point arithmetic & compares (Table 32)
	GroupFloatConv        // int/float/long/double conversions (Table 29)
	GroupControl          // conditional jumps and goto (Table 33)
	GroupCall             // invoke* (Table 34)
	GroupReturn           // *return, athrow (Table 35)
	GroupMemConst         // ldc family: unordered constant-pool reads (Table 36)
	GroupMemRead          // array loads, getfield/getstatic (Table 37)
	GroupMemWrite         // array stores, putfield/putstatic (Table 38)
	GroupLocalRead        // *load: register to dataflow (Table 39)
	GroupLocalWrite       // *store: dataflow to register (Table 40)
	GroupLocalInc         // iinc (Table 39, local increment)
	GroupSpecial          // new/checkcast/monitor/switch/jsr/wide… GPP-serviced (Table 41)
)

var groupNames = map[Group]string{
	GroupInvalid:    "invalid",
	GroupMove:       "move",
	GroupIntArith:   "int-arith",
	GroupFloatArith: "float-arith",
	GroupFloatConv:  "float-conv",
	GroupControl:    "control",
	GroupCall:       "call",
	GroupReturn:     "return",
	GroupMemConst:   "mem-const",
	GroupMemRead:    "mem-read",
	GroupMemWrite:   "mem-write",
	GroupLocalRead:  "local-read",
	GroupLocalWrite: "local-write",
	GroupLocalInc:   "local-inc",
	GroupSpecial:    "special",
}

func (g Group) String() string {
	if s, ok := groupNames[g]; ok {
		return s
	}
	return fmt.Sprintf("Group(%d)", uint8(g))
}

// MixClass is the coarse 4-way classification used for the static-mix
// analysis (Table 6) and for sizing the heterogeneous DataFlow Fabric
// (Figure 26): 6 arithmetic, 1 floating point, 2 storage, 1 control per 10
// Instruction Nodes.
type MixClass uint8

const (
	MixArith   MixClass = iota // integer arithmetic, moves, local register ops
	MixFloat                   // floating point arithmetic and conversions
	MixControl                 // jumps, goto, calls, returns
	MixStorage                 // memory reads/writes/constants
	MixOther                   // specials serviced by the GPP
)

func (m MixClass) String() string {
	switch m {
	case MixArith:
		return "arith"
	case MixFloat:
		return "float"
	case MixControl:
		return "control"
	case MixStorage:
		return "storage"
	default:
		return "other"
	}
}

// Mix maps an instruction group onto its static-mix class.
func (g Group) Mix() MixClass {
	switch g {
	case GroupMove, GroupIntArith, GroupLocalRead, GroupLocalWrite, GroupLocalInc:
		return MixArith
	case GroupFloatArith, GroupFloatConv:
		return MixFloat
	case GroupControl, GroupCall, GroupReturn:
		return MixControl
	case GroupMemConst, GroupMemRead, GroupMemWrite:
		return MixStorage
	default:
		return MixOther
	}
}

// VarPop marks instructions whose pop count depends on the call signature
// and is resolved by the General Purpose Processor before loading
// (Section 6.2, "Loading a Method").
const VarPop = -1

// Info describes the architected behaviour of one opcode.
type Info struct {
	Mnemonic string
	// OperandBytes is the number of immediate operand bytes following the
	// opcode in the encoded stream (VarLen for switch instructions).
	OperandBytes int
	// Pop and Push are the stack element counts consumed/produced
	// (Appendix A). Each value occupies one element regardless of width;
	// wide (long/double) payloads are carried as SUBSEQUENT_MESSAGE pairs
	// on the networks but count as a single dataflow token.
	Pop, Push int
	Group     Group
	// Branch reports whether the operand is a branch offset.
	Branch bool
}

// VarLen marks variable-length instructions (tableswitch/lookupswitch).
const VarLen = -1

var infos = map[Opcode]Info{
	Nop:        {"nop", 0, 0, 0, GroupMove, false},
	AconstNull: {"aconst_null", 0, 0, 1, GroupMove, false},
	IconstM1:   {"iconst_m1", 0, 0, 1, GroupMove, false},
	Iconst0:    {"iconst_0", 0, 0, 1, GroupMove, false},
	Iconst1:    {"iconst_1", 0, 0, 1, GroupMove, false},
	Iconst2:    {"iconst_2", 0, 0, 1, GroupMove, false},
	Iconst3:    {"iconst_3", 0, 0, 1, GroupMove, false},
	Iconst4:    {"iconst_4", 0, 0, 1, GroupMove, false},
	Iconst5:    {"iconst_5", 0, 0, 1, GroupMove, false},
	Lconst0:    {"lconst_0", 0, 0, 1, GroupMove, false},
	Lconst1:    {"lconst_1", 0, 0, 1, GroupMove, false},
	Fconst0:    {"fconst_0", 0, 0, 1, GroupMove, false},
	Fconst1:    {"fconst_1", 0, 0, 1, GroupMove, false},
	Fconst2:    {"fconst_2", 0, 0, 1, GroupMove, false},
	Dconst0:    {"dconst_0", 0, 0, 1, GroupMove, false},
	Dconst1:    {"dconst_1", 0, 0, 1, GroupMove, false},
	Bipush:     {"bipush", 1, 0, 1, GroupMove, false},
	Sipush:     {"sipush", 2, 0, 1, GroupMove, false},
	Ldc:        {"ldc", 1, 0, 1, GroupMemConst, false},
	LdcW:       {"ldc_w", 2, 0, 1, GroupMemConst, false},
	Ldc2W:      {"ldc2_w", 2, 0, 1, GroupMemConst, false},

	Iload: {"iload", 1, 0, 1, GroupLocalRead, false},
	Lload: {"lload", 1, 0, 1, GroupLocalRead, false},
	Fload: {"fload", 1, 0, 1, GroupLocalRead, false},
	Dload: {"dload", 1, 0, 1, GroupLocalRead, false},
	Aload: {"aload", 1, 0, 1, GroupLocalRead, false},

	Iload0: {"iload_0", 0, 0, 1, GroupLocalRead, false},
	Iload1: {"iload_1", 0, 0, 1, GroupLocalRead, false},
	Iload2: {"iload_2", 0, 0, 1, GroupLocalRead, false},
	Iload3: {"iload_3", 0, 0, 1, GroupLocalRead, false},
	Lload0: {"lload_0", 0, 0, 1, GroupLocalRead, false},
	Lload1: {"lload_1", 0, 0, 1, GroupLocalRead, false},
	Lload2: {"lload_2", 0, 0, 1, GroupLocalRead, false},
	Lload3: {"lload_3", 0, 0, 1, GroupLocalRead, false},
	Fload0: {"fload_0", 0, 0, 1, GroupLocalRead, false},
	Fload1: {"fload_1", 0, 0, 1, GroupLocalRead, false},
	Fload2: {"fload_2", 0, 0, 1, GroupLocalRead, false},
	Fload3: {"fload_3", 0, 0, 1, GroupLocalRead, false},
	Dload0: {"dload_0", 0, 0, 1, GroupLocalRead, false},
	Dload1: {"dload_1", 0, 0, 1, GroupLocalRead, false},
	Dload2: {"dload_2", 0, 0, 1, GroupLocalRead, false},
	Dload3: {"dload_3", 0, 0, 1, GroupLocalRead, false},
	Aload0: {"aload_0", 0, 0, 1, GroupLocalRead, false},
	Aload1: {"aload_1", 0, 0, 1, GroupLocalRead, false},
	Aload2: {"aload_2", 0, 0, 1, GroupLocalRead, false},
	Aload3: {"aload_3", 0, 0, 1, GroupLocalRead, false},

	Iaload: {"iaload", 0, 2, 1, GroupMemRead, false},
	Laload: {"laload", 0, 2, 1, GroupMemRead, false},
	Faload: {"faload", 0, 2, 1, GroupMemRead, false},
	Daload: {"daload", 0, 2, 1, GroupMemRead, false},
	Aaload: {"aaload", 0, 2, 1, GroupMemRead, false},
	Baload: {"baload", 0, 2, 1, GroupMemRead, false},
	Caload: {"caload", 0, 2, 1, GroupMemRead, false},
	Saload: {"saload", 0, 2, 1, GroupMemRead, false},

	Istore: {"istore", 1, 1, 0, GroupLocalWrite, false},
	Lstore: {"lstore", 1, 1, 0, GroupLocalWrite, false},
	Fstore: {"fstore", 1, 1, 0, GroupLocalWrite, false},
	Dstore: {"dstore", 1, 1, 0, GroupLocalWrite, false},
	Astore: {"astore", 1, 1, 0, GroupLocalWrite, false},

	Istore0: {"istore_0", 0, 1, 0, GroupLocalWrite, false},
	Istore1: {"istore_1", 0, 1, 0, GroupLocalWrite, false},
	Istore2: {"istore_2", 0, 1, 0, GroupLocalWrite, false},
	Istore3: {"istore_3", 0, 1, 0, GroupLocalWrite, false},
	Lstore0: {"lstore_0", 0, 1, 0, GroupLocalWrite, false},
	Lstore1: {"lstore_1", 0, 1, 0, GroupLocalWrite, false},
	Lstore2: {"lstore_2", 0, 1, 0, GroupLocalWrite, false},
	Lstore3: {"lstore_3", 0, 1, 0, GroupLocalWrite, false},
	Fstore0: {"fstore_0", 0, 1, 0, GroupLocalWrite, false},
	Fstore1: {"fstore_1", 0, 1, 0, GroupLocalWrite, false},
	Fstore2: {"fstore_2", 0, 1, 0, GroupLocalWrite, false},
	Fstore3: {"fstore_3", 0, 1, 0, GroupLocalWrite, false},
	Dstore0: {"dstore_0", 0, 1, 0, GroupLocalWrite, false},
	Dstore1: {"dstore_1", 0, 1, 0, GroupLocalWrite, false},
	Dstore2: {"dstore_2", 0, 1, 0, GroupLocalWrite, false},
	Dstore3: {"dstore_3", 0, 1, 0, GroupLocalWrite, false},
	Astore0: {"astore_0", 0, 1, 0, GroupLocalWrite, false},
	Astore1: {"astore_1", 0, 1, 0, GroupLocalWrite, false},
	Astore2: {"astore_2", 0, 1, 0, GroupLocalWrite, false},
	Astore3: {"astore_3", 0, 1, 0, GroupLocalWrite, false},

	Iastore: {"iastore", 0, 3, 0, GroupMemWrite, false},
	Lastore: {"lastore", 0, 3, 0, GroupMemWrite, false},
	Fastore: {"fastore", 0, 3, 0, GroupMemWrite, false},
	Dastore: {"dastore", 0, 3, 0, GroupMemWrite, false},
	Aastore: {"aastore", 0, 3, 0, GroupMemWrite, false},
	Bastore: {"bastore", 0, 3, 0, GroupMemWrite, false},
	Castore: {"castore", 0, 3, 0, GroupMemWrite, false},
	Sastore: {"sastore", 0, 3, 0, GroupMemWrite, false},

	Pop:    {"pop", 0, 1, 0, GroupMove, false},
	Pop2:   {"pop2", 0, 2, 0, GroupMove, false},
	Dup:    {"dup", 0, 1, 2, GroupMove, false},
	DupX1:  {"dup_x1", 0, 2, 3, GroupMove, false},
	DupX2:  {"dup_x2", 0, 3, 4, GroupMove, false},
	Dup2:   {"dup2", 0, 2, 4, GroupMove, false},
	Dup2X1: {"dup2_x1", 0, 3, 5, GroupMove, false},
	Dup2X2: {"dup2_x2", 0, 4, 6, GroupMove, false},
	Swap:   {"swap", 0, 2, 2, GroupMove, false},

	Iadd:  {"iadd", 0, 2, 1, GroupIntArith, false},
	Ladd:  {"ladd", 0, 2, 1, GroupIntArith, false},
	Fadd:  {"fadd", 0, 2, 1, GroupFloatArith, false},
	Dadd:  {"dadd", 0, 2, 1, GroupFloatArith, false},
	Isub:  {"isub", 0, 2, 1, GroupIntArith, false},
	Lsub:  {"lsub", 0, 2, 1, GroupIntArith, false},
	Fsub:  {"fsub", 0, 2, 1, GroupFloatArith, false},
	Dsub:  {"dsub", 0, 2, 1, GroupFloatArith, false},
	Imul:  {"imul", 0, 2, 1, GroupIntArith, false},
	Lmul:  {"lmul", 0, 2, 1, GroupIntArith, false},
	Fmul:  {"fmul", 0, 2, 1, GroupFloatArith, false},
	Dmul:  {"dmul", 0, 2, 1, GroupFloatArith, false},
	Idiv:  {"idiv", 0, 2, 1, GroupIntArith, false},
	Ldiv:  {"ldiv", 0, 2, 1, GroupFloatArith, false},
	Fdiv:  {"fdiv", 0, 2, 1, GroupFloatArith, false},
	Ddiv:  {"ddiv", 0, 2, 1, GroupFloatArith, false},
	Irem:  {"irem", 0, 2, 1, GroupIntArith, false},
	Lrem:  {"lrem", 0, 2, 1, GroupIntArith, false},
	Frem:  {"frem", 0, 2, 1, GroupFloatArith, false},
	Drem:  {"drem", 0, 2, 1, GroupFloatArith, false},
	Ineg:  {"ineg", 0, 1, 1, GroupIntArith, false},
	Lneg:  {"lneg", 0, 1, 1, GroupIntArith, false},
	Fneg:  {"fneg", 0, 1, 1, GroupFloatArith, false},
	Dneg:  {"dneg", 0, 1, 1, GroupFloatArith, false},
	Ishl:  {"ishl", 0, 2, 1, GroupIntArith, false},
	Lshl:  {"lshl", 0, 2, 1, GroupIntArith, false},
	Ishr:  {"ishr", 0, 2, 1, GroupIntArith, false},
	Lshr:  {"lshr", 0, 2, 1, GroupIntArith, false},
	Iushr: {"iushr", 0, 2, 1, GroupIntArith, false},
	Lushr: {"lushr", 0, 2, 1, GroupIntArith, false},
	Iand:  {"iand", 0, 2, 1, GroupIntArith, false},
	Land:  {"land", 0, 2, 1, GroupIntArith, false},
	Ior:   {"ior", 0, 2, 1, GroupIntArith, false},
	Lor:   {"lor", 0, 2, 1, GroupIntArith, false},
	Ixor:  {"ixor", 0, 2, 1, GroupIntArith, false},
	Lxor:  {"lxor", 0, 2, 1, GroupIntArith, false},

	Iinc: {"iinc", 2, 0, 0, GroupLocalInc, false},

	I2l: {"i2l", 0, 1, 1, GroupFloatConv, false},
	I2f: {"i2f", 0, 1, 1, GroupFloatConv, false},
	I2d: {"i2d", 0, 1, 1, GroupFloatConv, false},
	L2i: {"l2i", 0, 1, 1, GroupFloatConv, false},
	L2f: {"l2f", 0, 1, 1, GroupFloatConv, false},
	L2d: {"l2d", 0, 1, 1, GroupFloatConv, false},
	F2i: {"f2i", 0, 1, 1, GroupFloatConv, false},
	F2l: {"f2l", 0, 1, 1, GroupFloatConv, false},
	F2d: {"f2d", 0, 1, 1, GroupFloatConv, false},
	D2i: {"d2i", 0, 1, 1, GroupFloatConv, false},
	D2l: {"d2l", 0, 1, 1, GroupFloatConv, false},
	D2f: {"d2f", 0, 1, 1, GroupFloatConv, false},
	I2b: {"i2b", 0, 1, 1, GroupFloatConv, false},
	I2c: {"i2c", 0, 1, 1, GroupFloatConv, false},
	I2s: {"i2s", 0, 1, 1, GroupFloatConv, false},

	Lcmp:  {"lcmp", 0, 2, 1, GroupIntArith, false},
	Fcmpl: {"fcmpl", 0, 2, 1, GroupFloatArith, false},
	Fcmpg: {"fcmpg", 0, 2, 1, GroupFloatArith, false},
	Dcmpl: {"dcmpl", 0, 2, 1, GroupFloatArith, false},
	Dcmpg: {"dcmpg", 0, 2, 1, GroupFloatArith, false},

	Ifeq:         {"ifeq", 2, 1, 0, GroupControl, true},
	Ifne:         {"ifne", 2, 1, 0, GroupControl, true},
	Iflt:         {"iflt", 2, 1, 0, GroupControl, true},
	Ifge:         {"ifge", 2, 1, 0, GroupControl, true},
	Ifgt:         {"ifgt", 2, 1, 0, GroupControl, true},
	Ifle:         {"ifle", 2, 1, 0, GroupControl, true},
	IfIcmpeq:     {"if_icmpeq", 2, 2, 0, GroupControl, true},
	IfIcmpne:     {"if_icmpne", 2, 2, 0, GroupControl, true},
	IfIcmplt:     {"if_icmplt", 2, 2, 0, GroupControl, true},
	IfIcmpge:     {"if_icmpge", 2, 2, 0, GroupControl, true},
	IfIcmpgt:     {"if_icmpgt", 2, 2, 0, GroupControl, true},
	IfIcmple:     {"if_icmple", 2, 2, 0, GroupControl, true},
	IfAcmpeq:     {"if_acmpeq", 2, 2, 0, GroupControl, true},
	IfAcmpne:     {"if_acmpne", 2, 2, 0, GroupControl, true},
	Goto:         {"goto", 2, 0, 0, GroupControl, true},
	Jsr:          {"jsr", 2, 0, 1, GroupSpecial, true},
	Ret:          {"ret", 1, 0, 0, GroupSpecial, false},
	Tableswitch:  {"tableswitch", VarLen, 1, 0, GroupSpecial, false},
	Lookupswitch: {"lookupswitch", VarLen, 1, 0, GroupSpecial, false},

	Ireturn: {"ireturn", 0, 1, 0, GroupReturn, false},
	Lreturn: {"lreturn", 0, 1, 0, GroupReturn, false},
	Freturn: {"freturn", 0, 1, 0, GroupReturn, false},
	Dreturn: {"dreturn", 0, 1, 0, GroupReturn, false},
	Areturn: {"areturn", 0, 1, 0, GroupReturn, false},
	Return:  {"return", 0, 0, 0, GroupReturn, false},

	Getstatic: {"getstatic", 2, 0, 1, GroupMemRead, false},
	Putstatic: {"putstatic", 2, 1, 0, GroupMemWrite, false},
	Getfield:  {"getfield", 2, 1, 1, GroupMemRead, false},
	Putfield:  {"putfield", 2, 2, 0, GroupMemWrite, false},

	GetstaticQuick: {"getstatic_quick", 2, 0, 1, GroupMemRead, false},
	PutstaticQuick: {"putstatic_quick", 2, 1, 0, GroupMemWrite, false},
	GetfieldQuick:  {"getfield_quick", 2, 1, 1, GroupMemRead, false},
	PutfieldQuick:  {"putfield_quick", 2, 2, 0, GroupMemWrite, false},

	Invokevirtual:   {"invokevirtual", 2, VarPop, 1, GroupCall, false},
	Invokespecial:   {"invokespecial", 2, VarPop, 1, GroupCall, false},
	Invokestatic:    {"invokestatic", 2, VarPop, 1, GroupCall, false},
	Invokeinterface: {"invokeinterface", 4, VarPop, 1, GroupCall, false},
	Invokedynamic:   {"invokedynamic", 4, VarPop, 1, GroupCall, false},

	New:            {"new", 2, 0, 1, GroupSpecial, false},
	Newarray:       {"newarray", 1, 1, 1, GroupSpecial, false},
	Anewarray:      {"anewarray", 2, 1, 1, GroupSpecial, false},
	Arraylength:    {"arraylength", 0, 1, 1, GroupMemRead, false},
	Athrow:         {"athrow", 0, 1, 0, GroupReturn, false},
	Checkcast:      {"checkcast", 2, 1, 1, GroupSpecial, false},
	Instanceof:     {"instanceof", 2, 1, 1, GroupSpecial, false},
	Monitorenter:   {"monitorenter", 0, 1, 0, GroupSpecial, false},
	Monitorexit:    {"monitorexit", 0, 1, 0, GroupSpecial, false},
	Wide:           {"wide", VarLen, 0, 0, GroupSpecial, false},
	Multianewarray: {"multianewarray", 3, VarPop, 1, GroupSpecial, false},
	Ifnull:         {"ifnull", 2, 1, 0, GroupControl, true},
	Ifnonnull:      {"ifnonnull", 2, 1, 0, GroupControl, true},
	GotoW:          {"goto_w", 4, 0, 0, GroupControl, true},
	JsrW:           {"jsr_w", 4, 0, 1, GroupSpecial, true},
}

// Lookup returns the architected description of op and whether op is a
// defined opcode.
func Lookup(op Opcode) (Info, bool) {
	info, ok := infos[op]
	return info, ok
}

// MustLookup returns the description of op, panicking on undefined opcodes.
// It is intended for workload construction, where an undefined opcode is a
// programming error.
func MustLookup(op Opcode) Info {
	info, ok := infos[op]
	if !ok {
		panic(fmt.Sprintf("bytecode: undefined opcode 0x%02x", byte(op)))
	}
	return info
}

func (op Opcode) String() string {
	if info, ok := infos[op]; ok {
		return info.Mnemonic
	}
	return fmt.Sprintf("op#0x%02x", byte(op))
}

// Group returns the instruction group of op (GroupInvalid if undefined).
func (op Opcode) Group() Group {
	return infos[op].Group
}

// IsDefined reports whether op is an architected (or _Quick) opcode.
func (op Opcode) IsDefined() bool {
	_, ok := infos[op]
	return ok
}

// Opcodes returns every defined opcode in ascending numeric order.
func Opcodes() []Opcode {
	ops := make([]Opcode, 0, len(infos))
	for op := range infos {
		ops = append(ops, op)
	}
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j-1] > ops[j]; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
	return ops
}
