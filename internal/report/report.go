// Package report renders the result tables in aligned plain text, matching
// the dissertation's table layouts closely enough to compare side by side.
//
// The load-bearing invariant: rendering is deterministic — the same
// inputs produce the same bytes, with no map-iteration or locale
// dependence — because CI compares whole rendered tables with cmp/diff
// to prove single-node, dispatched and replicated sweeps agree.
package report

import (
	"fmt"
	"strings"

	"javaflow/internal/stats"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Add(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// AddSummary appends the five-statistic rows for a labelled Summary — the
// Mean/StdDev/Median/Max/Min layout of Tables 9–14.
func (t *Table) AddSummary(label string, s stats.Summary) *Table {
	return t.Add(label, s.Mean, s.StdDev, s.Median, s.Max, s.Min)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// Pct1 formats a fraction as a percentage with one decimal.
func Pct1(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Sci formats large counts in engineering style (the paper's 2.82E+11).
func Sci(v float64) string { return fmt.Sprintf("%.2e", v) }
