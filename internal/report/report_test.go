package report

import (
	"strings"
	"testing"

	"javaflow/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("Title", "Name", "Value")
	tbl.Add("short", 1)
	tbl.Add("a-much-longer-name", 2.5)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("missing header: %q", lines[1])
	}
	if !strings.Contains(out, "2.500") {
		t.Errorf("float not formatted to 3 decimals:\n%s", out)
	}
	// Columns align: the Value column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "Value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("short row %q", ln)
			continue
		}
	}
}

func TestAddSummary(t *testing.T) {
	tbl := New("", "Q", "Mean", "StdDev", "Median", "Max", "Min")
	tbl.AddSummary("x", stats.Summary{Mean: 1, StdDev: 2, Median: 3, Max: 4, Min: 5})
	out := tbl.String()
	for _, want := range []string{"1.000", "2.000", "3.000", "4.000", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary row missing %s:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.4); got != "40%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct1(0.123); got != "12.3%" {
		t.Errorf("Pct1 = %q", got)
	}
	if got := Sci(2.82e11); got != "2.82e+11" {
		t.Errorf("Sci = %q", got)
	}
}
