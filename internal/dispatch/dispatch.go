// Package dispatch shards simulation batches across multiple jfserved
// instances. A Dispatcher fronts N backends — remote peers spoken to over
// the /v1/run HTTP API, plus the in-process scheduler as a terminal
// fallback — behind the same RunBatch-shaped interface serve.Scheduler
// exposes, so the HTTP surface, the bench driver and the experiment sweeps
// can switch between one node and many without changing shape.
//
// Routing is a consistent-hash ring keyed on the method signature: the
// same method always lands on the same node, keeping that node's
// deployment cache (and persistent store) hot for it, and adding a peer
// only moves the keys the new peer takes over. Jobs fan out concurrently
// with per-backend bounded inflight; a job that fails transiently (peer
// down, 5xx, network error) is retried once on the next node clockwise —
// but only while the failed backend's token-bucket retry budget has
// tokens, so a dead backend sees at most the bucket's refill rate of
// extra fleet pressure, not one retry per failed job. A job whose retry
// is denied (or whose retry also fails) runs on the local scheduler — so
// a sweep completes, with identical results, even with every peer
// unreachable. Results are merged in submission order, byte-identical to
// the single-node serial path.
//
// Backends that keep failing are suspended after failureThreshold
// consecutive errors; a suspended backend is skipped at routing time (its
// keys shift to the next node clockwise, nobody else's move) and probed
// with a real job on a decorrelated-jitter backoff schedule — delays grow
// exponentially on average while the jitter spreads probes out — so it
// rejoins once healthy without the fleet's probes synchronizing into a
// thundering herd.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/fabric"
	"javaflow/internal/obs"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// Defaults for Options fields left zero.
const (
	defaultInflight         = 8
	defaultFailureThreshold = 3

	// defaultDialTimeout / defaultResponseHeaderTimeout bound the default
	// peer client. The dial bound is tight (a dead host must fail fast,
	// not pin an inflight slot for the kernel's SYN patience); the header
	// bound is generous because a cold /v1/run legitimately computes for
	// minutes before its first response byte.
	defaultDialTimeout           = 5 * time.Second
	defaultResponseHeaderTimeout = 5 * time.Minute
)

// Options configures a Dispatcher.
type Options struct {
	// Peers are the base URLs of remote jfserved instances (e.g.
	// "http://10.0.0.7:8077"). They must serve the same method and
	// configuration registry as this process.
	Peers []string
	// Client is the HTTP client for peer traffic (nil uses a dedicated
	// client with per-host keep-alive sized to the inflight bound).
	Client *http.Client
	// Local is the in-process scheduler: the terminal fallback for jobs
	// whose remote attempts fail, and the source of the default mesh-cycle
	// bound. Required.
	Local *serve.Scheduler
	// MaxInflight bounds concurrent jobs per backend (<=0 uses 8).
	MaxInflight int
	// Replicas is the virtual-node count per backend on the hash ring
	// (<=0 uses 128).
	Replicas int
	// FailureThreshold suspends a backend after this many consecutive
	// transient failures (<=0 uses 3).
	FailureThreshold int
	// ProbeBackoffBase / ProbeBackoffCap bound the decorrelated-jitter
	// schedule of suspension probes: a suspended backend is probed with a
	// real job no sooner than the current backoff delay after its last
	// failure, with the delay growing (jittered, up to 3× per step) toward
	// the cap while failures continue and resetting on success (<=0 uses
	// admit.DefaultBackoffBase / admit.DefaultBackoffCap).
	ProbeBackoffBase time.Duration
	ProbeBackoffCap  time.Duration
	// RetryBurst / RetryRate configure each backend's retry token bucket:
	// a transient failure may reroute its job to another node only while
	// the failed backend's budget has a token (burst capacity RetryBurst,
	// refilled at RetryRate tokens per second; <=0 uses
	// admit.DefaultRetryBurst / admit.DefaultRetryRate). An exhausted
	// budget sends the job straight to the warm-local/local fallback —
	// completion and byte-identity hold either way, the budget only
	// bounds how hard the rest of the fleet is hit on a backend's behalf.
	RetryBurst int
	RetryRate  float64
	// DialTimeout / ResponseHeaderTimeout bound the default peer client's
	// connection establishment and time-to-first-header (<=0 uses 5s /
	// 5m). Ignored when Client is set.
	DialTimeout           time.Duration
	ResponseHeaderTimeout time.Duration
	// Now and Rand are test seams for the probe schedule and its jitter
	// (nil uses time.Now and math/rand).
	Now  func() time.Time
	Rand func() float64
	// WarmLocal, when set, reports whether the local persistent store can
	// already serve job's result warm — e.g. a record anti-entropy
	// replication (internal/replicate) pulled from the fleet, or one this
	// node computed before. Consulted after a transient backend failure:
	// a warm local serve is byte-identical to the dead backend's answer
	// and skips both the network and the engine. maxCycles arrives
	// resolved (never 0).
	WarmLocal func(job serve.Job, maxCycles int) bool
	// SyncedPeers, when set, lists the backend names (exactly as given in
	// Peers) whose segment logs this node's replicator has fully caught up
	// with. On a retry the dispatcher prefers the ring owner among these:
	// a peer actively exchanging segments holds the fleet's warm results
	// — including the dead backend's — so the retry is served from its
	// store instead of re-running the engine on a cold node.
	SyncedPeers func() []string
	// Hints, when set, receives hinted-handoff callbacks (see Hints).
	// replicate.Replicator implements it over durable store meta records
	// and gossip notifications.
	Hints Hints
	// Tracer records dispatch-attempt spans; pass the serving node's
	// serve.Metrics tracer so one /debug/traces dump covers ingress and
	// fan-out. Nil disables span recording.
	Tracer *obs.Tracer
	// Registry receives the dispatcher's counters and per-backend/outcome
	// attempt histograms. Nil leaves them unregistered (still counted in
	// Stats).
	Registry *obs.Registry
	// Journal receives routing state transitions (backend suspension and
	// recovery, retry-budget denials, local fallbacks) as structured
	// events; pass the serving node's serve.Metrics journal. Nil disables
	// event recording.
	Journal *obs.Journal
}

// Hints is the hinted-handoff seam between dispatch (which observes ring
// owners dying and recovering) and replication (which owns durable state
// and peer transfer). Both methods are called on job hot paths and must
// not block on the network: RecordHint may write through the store's
// write-behind queue; DeliverHints must kick off its transfer in the
// background.
type Hints interface {
	// RecordHint notes that owner (a backend name) was unavailable when
	// the result for signature was committed somewhere else, so owner is
	// missing a key it should serve warm.
	RecordHint(owner, signature string)
	// DeliverHints is called when a probe observes owner healthy again;
	// pending hints against it should now be pushed over.
	DeliverHints(owner string)
}

// backendState wraps a Backend with its routing health and accounting.
type backendState struct {
	b   Backend
	sem chan struct{} // bounded inflight

	// retryBudget bounds how often jobs failing here may be rerouted to
	// other nodes; probeBackoff schedules suspension probes; nextProbe is
	// the earliest unix-nano instant the next probe may fire.
	retryBudget  *admit.RetryBudget
	probeBackoff *admit.Backoff
	nextProbe    atomic.Int64

	jobs        atomic.Int64 // jobs this backend completed (incl. rejections)
	errs        atomic.Int64 // transient failures observed here
	retriedAway atomic.Int64 // jobs rerouted after failing here
	retryDenied atomic.Int64 // reroutes denied by the exhausted retry budget
	consecFails atomic.Int64 // current consecutive-failure streak
	probeSkips  atomic.Int64 // routing decisions that skipped this backend while suspended
}

// Dispatcher routes jobs across backends. It implements serve.BatchRunner
// and is safe for concurrent use.
type Dispatcher struct {
	backends []*backendState
	ring     *ring
	local    *serve.Scheduler
	localSem chan struct{}

	failureThreshold int64
	now              func() time.Time

	warmLocal   func(job serve.Job, maxCycles int) bool
	syncedPeers func() []string
	hints       Hints

	tracer      *obs.Tracer
	journal     *obs.Journal
	attemptHist *obs.HistogramVec // per backend × outcome, failures included

	localFallbacks atomic.Int64
	retries        atomic.Int64
	retryDenials   atomic.Int64
	warmLocalHits  atomic.Int64
	warmRetries    atomic.Int64
	handoffHints   atomic.Int64
	ownerRecovers  atomic.Int64
	suspensions    atomic.Int64
}

var _ serve.BatchRunner = (*Dispatcher)(nil)

// New builds a dispatcher over opts.Peers. Peer URLs are validated here;
// reachability is not — unreachable peers are discovered (and routed
// around) per job.
func New(opts Options) (*Dispatcher, error) {
	if opts.Local == nil {
		return nil, errors.New("dispatch: Options.Local scheduler is required")
	}
	client := opts.Client
	if client == nil {
		inflight := opts.MaxInflight
		if inflight <= 0 {
			inflight = defaultInflight
		}
		dial := opts.DialTimeout
		if dial <= 0 {
			dial = defaultDialTimeout
		}
		header := opts.ResponseHeaderTimeout
		if header <= 0 {
			header = defaultResponseHeaderTimeout
		}
		// No overall client timeout: a cold job legitimately computes for
		// minutes and the per-request lifetime comes from the dispatch
		// context. The transport bounds are what keep a hung peer from
		// pinning an inflight slot forever: a dead host fails at the dial
		// bound, a wedged one at the time-to-first-header bound.
		client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: dial}).DialContext,
			ResponseHeaderTimeout: header,
			MaxIdleConns:          inflight * (len(opts.Peers) + 1),
			MaxIdleConnsPerHost:   inflight,
		}}
	}
	backends := make([]Backend, 0, len(opts.Peers))
	seen := make(map[string]bool, len(opts.Peers))
	for _, p := range opts.Peers {
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("dispatch: bad peer URL %q", p)
		}
		r := NewRemote(p, client)
		if seen[r.Name()] {
			return nil, fmt.Errorf("dispatch: duplicate peer %q", r.Name())
		}
		seen[r.Name()] = true
		backends = append(backends, r)
	}
	return NewWithBackends(backends, opts)
}

// NewWithBackends is New with explicit backends — the seam failure-mode
// tests inject doubles through. Options.Peers is ignored.
func NewWithBackends(backends []Backend, opts Options) (*Dispatcher, error) {
	if opts.Local == nil {
		return nil, errors.New("dispatch: Options.Local scheduler is required")
	}
	inflight := opts.MaxInflight
	if inflight <= 0 {
		inflight = defaultInflight
	}
	threshold := opts.FailureThreshold
	if threshold <= 0 {
		threshold = defaultFailureThreshold
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	d := &Dispatcher{
		local:            opts.Local,
		localSem:         make(chan struct{}, opts.Local.Workers()),
		failureThreshold: int64(threshold),
		now:              now,
		warmLocal:        opts.WarmLocal,
		syncedPeers:      opts.SyncedPeers,
		hints:            opts.Hints,
		tracer:           opts.Tracer,
		journal:          opts.Journal,
	}
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name()
		d.backends = append(d.backends, &backendState{
			b:            b,
			sem:          make(chan struct{}, inflight),
			retryBudget:  admit.NewRetryBudget(opts.RetryBurst, opts.RetryRate, now),
			probeBackoff: admit.NewBackoff(opts.ProbeBackoffBase, opts.ProbeBackoffCap, opts.Rand),
		})
	}
	d.ring = newRing(names, opts.Replicas)
	d.register(opts.Registry)
	return d, nil
}

// register exposes the dispatcher's counters and attempt histograms in
// the node registry (no-op on a nil registry).
func (d *Dispatcher) register(reg *obs.Registry) {
	d.attemptHist = reg.NewHistogramVec("javaflow_dispatch_attempt_duration_seconds",
		"Dispatch attempt latency per backend, failures and fallbacks included.",
		"backend", "outcome")
	if reg == nil {
		return
	}
	reg.CounterFunc("javaflow_dispatch_retries_total", "Jobs that needed a second node.",
		func() float64 { return float64(d.retries.Load()) })
	reg.CounterFunc("javaflow_dispatch_retry_budget_denied_total", "Network retries denied by an exhausted per-backend retry budget.",
		func() float64 { return float64(d.retryDenials.Load()) })
	reg.CounterFunc("javaflow_dispatch_local_fallbacks_total", "Jobs that ended on the in-process scheduler.",
		func() float64 { return float64(d.localFallbacks.Load()) })
	reg.CounterFunc("javaflow_dispatch_suspensions_total", "Backends crossing the consecutive-failure threshold into suspension.",
		func() float64 { return float64(d.suspensions.Load()) })
	reg.CounterFunc("javaflow_dispatch_warm_local_hits_total", "Retries short-circuited by the local store.",
		func() float64 { return float64(d.warmLocalHits.Load()) })
	reg.CounterFunc("javaflow_dispatch_handoff_hints_total", "Hinted handoffs recorded against absent ring owners.",
		func() float64 { return float64(d.handoffHints.Load()) })
	for _, bs := range d.backends {
		bs := bs
		reg.CounterFunc("javaflow_dispatch_backend_jobs_total", "Jobs completed per backend.",
			func() float64 { return float64(bs.jobs.Load()) }, "backend", bs.b.Name())
		reg.CounterFunc("javaflow_dispatch_backend_errors_total", "Transient failures per backend.",
			func() float64 { return float64(bs.errs.Load()) }, "backend", bs.b.Name())
	}
}

// Backends lists the backend names in ring-slot order.
func (d *Dispatcher) Backends() []string {
	names := make([]string, len(d.backends))
	for i, bs := range d.backends {
		names[i] = bs.b.Name()
	}
	return names
}

// HealthyPeers probes each backend that supports a health check (Remote's
// /healthz) and returns how many answered. Operator feedback at startup;
// routing health is learned from job outcomes, not from this.
func (d *Dispatcher) HealthyPeers(ctx context.Context) int {
	up := 0
	for _, bs := range d.backends {
		if h, ok := bs.b.(interface{ Healthy(context.Context) bool }); ok && h.Healthy(ctx) {
			up++
		}
	}
	return up
}

// suspended reports whether routing should skip backend i, with the probe
// escape hatch: once the backend's decorrelated-jitter backoff delay has
// elapsed since its last failure, exactly one routing decision (the CAS
// winner) sends a real job there, so a recovered peer rejoins without an
// external health checker and a still-dead one is probed on a decaying —
// never synchronized — cadence.
func (d *Dispatcher) suspended(i int) bool {
	bs := d.backends[i]
	if bs.consecFails.Load() < d.failureThreshold {
		return false
	}
	now := d.now().UnixNano()
	next := bs.nextProbe.Load()
	if now >= next && bs.nextProbe.CompareAndSwap(next, now+int64(bs.probeBackoff.Next())) {
		// This routing decision is the probe. If it fails, attempt()
		// pushes nextProbe further out; if it succeeds, the suspension
		// lifts and the backoff resets.
		return false
	}
	bs.probeSkips.Add(1)
	return true
}

// route picks the ring owner for sig, skipping exclude (-1 for none) and
// suspended backends. Returns -1 when no backend is available.
func (d *Dispatcher) route(sig string, exclude int) int {
	return d.ring.owner(sig, func(i int) bool {
		return i == exclude || d.suspended(i)
	})
}

// transient reports whether err should move the job to another node.
// Rejections are real results (the fabric refused the method — every node
// agrees), and cancellation is the caller's choice; everything else is a
// backend problem.
func transient(ctx context.Context, err error) bool {
	var le *fabric.LoadError
	if errors.As(err, &le) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Terminal only when the caller itself gave up: net/http's
		// transport timeouts (e.g. awaiting response headers) also match
		// context.DeadlineExceeded, and those are the peer's failure —
		// with a live caller context the job must be retried elsewhere.
		return ctx.Err() == nil
	}
	return true
}

// outcomeOf classifies an attempt result for histogram labels and span
// attributes. Every attempt lands in the histogram — failed and rejected
// ones included, so future load-adaptive routing sees failure latency.
func outcomeOf(ctx context.Context, err error) string {
	switch {
	case err == nil:
		return "ok"
	case !transient(ctx, err):
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return "canceled"
		}
		return "rejected"
	default:
		return "error"
	}
}

// attempt runs job on backend i under its inflight bound and updates that
// backend's health accounting. The attempt span and histogram cover the
// backend call only — inflight queueing is excluded so the numbers read
// as backend latency, not dispatcher congestion.
func (d *Dispatcher) attempt(ctx context.Context, i int, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	bs := d.backends[i]
	select {
	case bs.sem <- struct{}{}:
	case <-ctx.Done():
		return sim.MethodRun{}, ctx.Err()
	}
	defer func() { <-bs.sem }()

	ctx, span := d.tracer.StartSpan(ctx, "dispatch.attempt")
	span.SetAttr("backend", bs.b.Name())
	start := time.Now()
	run, err := bs.b.Run(ctx, job, maxCycles)
	outcome := outcomeOf(ctx, err)
	d.attemptHist.With(bs.b.Name(), outcome).Record(time.Since(start))
	span.SetAttr("outcome", outcome)
	if err != nil && transient(ctx, err) {
		span.End(err)
		bs.errs.Add(1)
		if bs.consecFails.Add(1) == d.failureThreshold {
			d.suspensions.Add(1)
			d.journal.Emit("dispatch", "suspension", obs.SevWarn, traceIDFrom(ctx),
				"backend", bs.b.Name(), "error", err.Error())
		}
		// Push the next probe out on the jittered schedule; while the
		// streak continues each failed probe lands further apart.
		bs.nextProbe.Store(d.now().UnixNano() + int64(bs.probeBackoff.Next()))
		return run, err
	}
	span.End(nil)
	// Success — including a typed rejection, which proves the backend is
	// healthy enough to have tried the deploy.
	bs.jobs.Add(1)
	bs.probeBackoff.Reset()
	bs.nextProbe.Store(0)
	if bs.consecFails.Swap(0) >= d.failureThreshold {
		// This was the probe that caught a suspended backend recovering.
		// Hand its hinted-handoff backlog over now, so its next
		// ring-owned requests are warm instead of cold engine runs.
		d.ownerRecovers.Add(1)
		d.journal.Emit("dispatch", "recovery", obs.SevInfo, traceIDFrom(ctx),
			"backend", bs.b.Name())
		if d.hints != nil {
			d.hints.DeliverHints(bs.b.Name())
		}
	}
	return run, err
}

// runLocal executes job on the in-process scheduler under its own inflight
// bound (the scheduler's worker count), so a dispatcher-wide fallback
// storm cannot oversubscribe the local pool.
func (d *Dispatcher) runLocal(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	select {
	case d.localSem <- struct{}{}:
	case <-ctx.Done():
		return sim.MethodRun{}, ctx.Err()
	}
	defer func() { <-d.localSem }()
	start := time.Now()
	run, err := d.local.RunMethodCycles(ctx, job.Config, job.Method, maxCycles)
	d.attemptHist.With("local", outcomeOf(ctx, err)).Record(time.Since(start))
	return run, err
}

// runJob is the per-job routing policy: ring owner, then — after a
// transient failure — a warm local serve if the store already holds the
// key, one retry on a replication-synced peer (falling back to the next
// node clockwise), then the local scheduler. A job that succeeds
// anywhere but its true ring owner records a hinted handoff: the owner
// was suspended or failing, so it is now missing a key it should serve
// warm, and the hint delivers the result when a probe sees it return.
func (d *Dispatcher) runJob(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	sig := job.Method.Signature()
	run, servedOn, err := d.runJobRouted(ctx, sig, job, maxCycles)
	if err == nil && d.hints != nil {
		// The unfiltered ring owner (nil skip): who *should* hold this
		// key, suspended or not.
		if owner := d.ring.owner(sig, nil); owner >= 0 && owner != servedOn {
			d.handoffHints.Add(1)
			d.hints.RecordHint(d.backends[owner].b.Name(), sig)
		}
	}
	return run, err
}

// runJobRouted is runJob's routing body; servedOn is the backend index
// that produced the result (-1 for the local scheduler).
func (d *Dispatcher) runJobRouted(ctx context.Context, sig string, job serve.Job, maxCycles int) (run sim.MethodRun, servedOn int, err error) {
	first := d.route(sig, -1)
	if first >= 0 {
		run, err = d.attempt(ctx, first, job, maxCycles)
		if err == nil || !transient(ctx, err) {
			return run, first, err
		}
		d.retries.Add(1)
		d.backends[first].retriedAway.Add(1)
		// A dead backend's results are not lost to the fleet: replication
		// pulled its segments here, so a key the fleet ever computed is
		// served from the local store — byte-identical, no engine run.
		if d.warmLocal != nil && d.warmLocal(job, maxCycles) {
			d.warmLocalHits.Add(1)
			run, err = d.runLocal(ctx, job, maxCycles)
			return run, -1, err
		}
		// The network retry spends from the failed backend's token bucket:
		// with the budget exhausted the job goes straight to the local
		// fallback (same bytes, no retry amplification against the fleet).
		if !d.backends[first].retryBudget.Allow() {
			d.backends[first].retryDenied.Add(1)
			d.retryDenials.Add(1)
			d.journal.Emit("dispatch", "retry_denied", obs.SevWarn, traceIDFrom(ctx),
				"backend", d.backends[first].b.Name())
		} else if second := d.routeRetry(sig, first); second >= 0 {
			run, err = d.attempt(ctx, second, job, maxCycles)
			if err == nil || !transient(ctx, err) {
				return run, second, err
			}
		}
	}
	d.localFallbacks.Add(1)
	if len(d.backends) > 0 {
		// Only notable when remotes exist: a dispatcher with no peers runs
		// everything locally by construction.
		d.journal.Emit("dispatch", "local_fallback", obs.SevInfo, traceIDFrom(ctx), "sig", sig)
	}
	run, err = d.runLocal(ctx, job, maxCycles)
	return run, -1, err
}

// traceIDFrom extracts the active trace ID for journal events ("" when
// the context carries no trace).
func traceIDFrom(ctx context.Context) string {
	tc, _ := obs.TraceFrom(ctx)
	return tc.TraceID
}

// routeRetry picks the second node for a job whose ring owner failed.
// With a SyncedPeers hook it prefers the ring owner among the peers whose
// stores replication has caught up with (they hold every warm result the
// fleet has, including the failed node's); otherwise — or when no synced
// peer is routable — it is the plain next-node-clockwise policy.
func (d *Dispatcher) routeRetry(sig string, exclude int) int {
	if d.syncedPeers != nil {
		synced := make(map[string]bool)
		for _, name := range d.syncedPeers() {
			synced[name] = true
		}
		if len(synced) > 0 {
			i := d.ring.owner(sig, func(i int) bool {
				return i == exclude || !synced[d.backends[i].b.Name()] || d.suspended(i)
			})
			if i >= 0 {
				d.warmRetries.Add(1)
				return i
			}
		}
	}
	return d.route(sig, exclude)
}

// maxCyclesOrDefault resolves the effective per-execution bound. Remotes
// are always sent an explicit bound — never 0 — so every backend simulates
// and store-keys the job identically to this node's default.
func (d *Dispatcher) maxCyclesOrDefault(maxCycles int) int {
	if maxCycles > 0 {
		return maxCycles
	}
	return d.local.MaxMeshCycles()
}

// RunBatchCycles dispatches jobs across the backends and returns one
// result per job in submission order, byte-identical to running the same
// batch on the local scheduler alone.
func (d *Dispatcher) RunBatchCycles(ctx context.Context, jobs []serve.Job, maxCycles int) []serve.JobResult {
	return d.RunBatchStream(ctx, jobs, maxCycles, nil)
}

// workerCount sizes the fan-out pool to the fleet's aggregate capacity:
// every backend's inflight bound plus the local pool, so the dispatcher
// can saturate all backends at once without spawning a goroutine per job.
func (d *Dispatcher) workerCount(jobs int) int {
	w := cap(d.localSem)
	for _, bs := range d.backends {
		w += cap(bs.sem)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunBatchStream is RunBatchCycles with incremental delivery: emit (when
// non-nil) receives each completed result exactly once, in submission
// order.
func (d *Dispatcher) RunBatchStream(ctx context.Context, jobs []serve.Job, maxCycles int, emit func(i int, r serve.JobResult)) []serve.JobResult {
	results := make([]serve.JobResult, len(jobs))
	for i, j := range jobs {
		results[i].Job = j
	}
	if len(jobs) == 0 {
		return results
	}
	maxCycles = d.maxCyclesOrDefault(maxCycles)

	indexes := make(chan int)
	// Buffered for the whole batch so workers and the feeder never block
	// on the collector.
	completed := make(chan int, len(jobs))
	var wg sync.WaitGroup
	for w := d.workerCount(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				run, err := d.runJob(ctx, jobs[i], maxCycles)
				results[i].Run = run
				results[i].Err = err
				completed <- i
			}
		}()
	}
	go func() {
	feed:
		for i := range jobs {
			select {
			case indexes <- i:
			case <-ctx.Done():
				// Jobs never handed to a worker report the cancellation;
				// delivered jobs stamp it via runJob's own ctx checks.
				for k := i; k < len(jobs); k++ {
					results[k].Err = ctx.Err()
					completed <- k
				}
				break feed
			}
		}
		close(indexes)
		wg.Wait()
		close(completed)
	}()

	done := make([]bool, len(results))
	next := 0
	for i := range completed {
		done[i] = true
		for next < len(results) && done[next] {
			if emit != nil {
				emit(next, results[next])
			}
			next++
		}
	}
	return results
}

// BackendStats is one backend's slice of Stats.
type BackendStats struct {
	Name string `json:"name"`
	// Jobs counts jobs this backend completed, including typed rejections.
	Jobs int64 `json:"jobs"`
	// Errors counts transient failures observed on this backend.
	Errors int64 `json:"errors"`
	// RetriedAway counts jobs rerouted to another node after failing here.
	RetriedAway int64 `json:"retriedAway"`
	// RetryBudgetDenied counts reroutes this backend's exhausted token
	// bucket sent to the local fallback instead of another node.
	RetryBudgetDenied int64 `json:"retryBudgetDenied"`
	// RingShare is the fraction of the hash keyspace this backend owns.
	RingShare float64 `json:"ringShare"`
	// Suspended reports whether routing currently skips this backend.
	Suspended bool `json:"suspended"`
}

// Stats is the dispatcher's GET /metrics payload.
type Stats struct {
	Backends []BackendStats `json:"backends"`
	// VirtualNodes is the total ring-point count (replicas × backends).
	VirtualNodes int `json:"virtualNodes"`
	// Retries counts jobs that needed a second node.
	Retries int64 `json:"retries"`
	// RetryBudgetDenials counts network retries the per-backend token
	// buckets denied (those jobs fell back locally instead).
	RetryBudgetDenials int64 `json:"retryBudgetDenials"`
	// LocalFallbacks counts jobs that ended on the in-process scheduler.
	LocalFallbacks int64 `json:"localFallbacks"`
	// WarmLocalHits counts retries short-circuited by the local store
	// already holding the key (replicated or previously computed).
	WarmLocalHits int64 `json:"warmLocalHits"`
	// WarmRetries counts retries routed to a replication-synced peer in
	// preference to the plain next node clockwise.
	WarmRetries int64 `json:"warmRetries"`
	// HandoffHints counts jobs that completed away from their true ring
	// owner and recorded a hinted handoff against it.
	HandoffHints int64 `json:"handoffHints"`
	// OwnerRecoveries counts probes that caught a suspended backend
	// healthy again (each triggers hint delivery when a Hints seam is
	// wired).
	OwnerRecoveries int64 `json:"ownerRecoveries"`
	// Suspensions counts backends crossing the consecutive-failure
	// threshold into suspension (once per streak, not per skipped job).
	Suspensions int64 `json:"suspensions"`
}

// Stats snapshots the dispatcher's routing counters.
func (d *Dispatcher) Stats() Stats {
	shares := d.ring.shares()
	s := Stats{
		Backends:           make([]BackendStats, len(d.backends)),
		VirtualNodes:       len(d.ring.points),
		Retries:            d.retries.Load(),
		RetryBudgetDenials: d.retryDenials.Load(),
		LocalFallbacks:     d.localFallbacks.Load(),
		WarmLocalHits:      d.warmLocalHits.Load(),
		WarmRetries:        d.warmRetries.Load(),
		HandoffHints:       d.handoffHints.Load(),
		OwnerRecoveries:    d.ownerRecovers.Load(),
		Suspensions:        d.suspensions.Load(),
	}
	for i, bs := range d.backends {
		s.Backends[i] = BackendStats{
			Name:              bs.b.Name(),
			Jobs:              bs.jobs.Load(),
			Errors:            bs.errs.Load(),
			RetriedAway:       bs.retriedAway.Load(),
			RetryBudgetDenied: bs.retryDenied.Load(),
			RingShare:         shares[i],
			Suspended:         bs.consecFails.Load() >= d.failureThreshold,
		}
	}
	return s
}

// DispatchStats implements serve's metrics hook (serve.DispatchStatser),
// folding Stats into GET /metrics.
func (d *Dispatcher) DispatchStats() any { return d.Stats() }
