package dispatch

import (
	"context"
	"reflect"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/scenario/chaos"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

// hostableMethod returns one named-corpus method the given configuration
// accepts.
func hostableMethod(t *testing.T, cfg sim.Config) *classfile.Method {
	t.Helper()
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err == nil {
			return m
		}
	}
	t.Fatal("no hostable method")
	return nil
}

// TestDispatchWarmLocalRetryServesFromStore: the ring owner dies, but the
// local store already holds the key (replication pulled it, or this node
// computed it before) — the retry must serve it from the store without a
// second network attempt or an engine re-run.
func TestDispatchWarmLocalRetryServesFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles, Store: st})
	cfg := testConfig(t, "Compact2")
	m := hostableMethod(t, cfg)

	// Warm the store (stands in for an anti-entropy pull of the dead
	// backend's segments).
	want, err := sched.RunMethodCycles(context.Background(), cfg, m, testMaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterSeed := st.Stats().RunMisses

	dead := &chaos.FlakyBackend{Inner: NewRemote("http://192.0.2.1:1", nil), FailAfter: -1}
	dead.Kill()
	d, err := NewWithBackends([]Backend{dead}, Options{
		Local: sched,
		WarmLocal: func(job serve.Job, maxCycles int) bool {
			return st.HasRun(store.RunKeyFor(job.Config, job.Method, maxCycles))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	got := d.RunBatchCycles(context.Background(), []serve.Job{{Config: cfg, Method: m}}, testMaxCycles)
	if got[0].Err != nil {
		t.Fatalf("warm retry failed: %v", got[0].Err)
	}
	if !reflect.DeepEqual(got[0].Run, want) {
		t.Fatal("warm retry result differs from the computed run")
	}
	stats := d.Stats()
	if stats.WarmLocalHits != 1 {
		t.Fatalf("warmLocalHits = %d, want 1 (stats %+v)", stats.WarmLocalHits, stats)
	}
	if stats.LocalFallbacks != 0 {
		t.Fatalf("warm serve counted as a blind local fallback: %+v", stats)
	}
	if misses := st.Stats().RunMisses; misses != missesAfterSeed {
		t.Fatalf("engine re-ran a warm key (store misses %d -> %d)", missesAfterSeed, misses)
	}
}

// TestDispatchRetryPrefersSyncedPeer: with a SyncedPeers hook, every job
// whose ring owner is dead must be retried on the replication-synced peer
// — never on the unsynced one — while ring-owned traffic is unaffected.
func TestDispatchRetryPrefersSyncedPeer(t *testing.T) {
	corpus := partitionCorpus()
	ts2, _ := newPeer(t, corpus)
	ts3, _ := newPeer(t, corpus)
	dead := &chaos.FlakyBackend{Inner: NewRemote("http://192.0.2.1:1", nil), FailAfter: -1}
	dead.Kill()
	b2 := NewRemote(ts2.URL, nil)
	b3 := NewRemote(ts3.URL, nil)

	d, err := NewWithBackends([]Backend{dead, b2, b3}, Options{
		Local: newLocalScheduler(),
		// Keep the dead node routable so every one of its jobs exercises
		// the retry path instead of being suspended away.
		FailureThreshold: 1 << 30,
		SyncedPeers:      func() []string { return []string{b3.Name()} },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pick methods until each backend owns a few signatures.
	counts := make([]int, 3)
	var methods []*classfile.Method
	for _, m := range corpus {
		owner := d.ring.owner(m.Signature(), nil)
		if counts[owner] >= 3 {
			continue
		}
		counts[owner]++
		methods = append(methods, m)
		if counts[0] >= 3 && counts[1] >= 3 && counts[2] >= 3 {
			break
		}
	}
	if counts[0] < 3 || counts[1] < 3 || counts[2] < 3 {
		t.Fatalf("could not partition corpus across 3 backends: %v", counts)
	}

	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	perOwner := make([]int64, 3)
	for _, j := range jobs {
		perOwner[d.ring.owner(j.Method.Signature(), nil)]++
	}

	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)

	stats := d.Stats()
	if stats.LocalFallbacks != 0 {
		t.Fatalf("jobs fell back locally: %+v", stats)
	}
	if stats.Retries != perOwner[0] || stats.WarmRetries != perOwner[0] {
		t.Fatalf("retries = %d, warmRetries = %d, want both %d (every dead-owned job preferred the synced peer)",
			stats.Retries, stats.WarmRetries, perOwner[0])
	}
	for _, b := range stats.Backends {
		switch b.Name {
		case b2.Name():
			if b.Jobs != perOwner[1] {
				t.Fatalf("unsynced peer served %d jobs, want only its %d ring-owned", b.Jobs, perOwner[1])
			}
		case b3.Name():
			if b.Jobs != perOwner[2]+perOwner[0] {
				t.Fatalf("synced peer served %d jobs, want its %d ring-owned plus %d retries",
					b.Jobs, perOwner[2], perOwner[0])
			}
		}
	}
}
