package dispatch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"javaflow/internal/classfile"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// testClock is a manually-advanced time source for the probe-schedule
// and retry-budget tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// deadBackend fails every job and records the fake-clock instant of each
// attempt, so the test can inspect probe spacing.
type deadBackend struct {
	name  string
	clock *testClock

	mu       sync.Mutex
	attempts []time.Time
}

func (b *deadBackend) Name() string { return b.name }

func (b *deadBackend) Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	b.mu.Lock()
	b.attempts = append(b.attempts, b.clock.Now())
	b.mu.Unlock()
	return sim.MethodRun{}, errors.New("dead")
}

func (b *deadBackend) attemptTimes() []time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]time.Time(nil), b.attempts...)
}

// TestProbeSpacingDecorrelatedJitter pins the acceptance criterion:
// under a dead backend, probe attempts are spaced on a growing, jittered
// schedule — strictly non-decreasing gaps up to the cap, never the old
// fixed cadence — measured entirely on a fake clock.
func TestProbeSpacingDecorrelatedJitter(t *testing.T) {
	methods := testMethods(t, 1)
	clock := newTestClock()
	dead := &deadBackend{name: "peer-dead", clock: clock}

	base, cap := 100*time.Millisecond, 10*time.Second
	d, err := NewWithBackends([]Backend{dead}, Options{
		Local:            newLocalScheduler(),
		FailureThreshold: 1,
		ProbeBackoffBase: base,
		ProbeBackoffCap:  cap,
		RetryBurst:       1000, // not under test here
		Now:              clock.Now,
		// Pin jitter at its upper edge so the schedule is deterministic:
		// each delay is exactly min(3*prev, cap). Jitter variability
		// itself is unit-tested in the admit package.
		Rand: func() float64 { return 1.0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "Compact2")
	job := []serve.Job{{Config: cfg, Method: methods[0]}}

	// Drive jobs on a tick far finer than the backoff growth: wall-clock
	// pressure is constant, so any spacing in the attempt log is the
	// probe schedule's doing.
	for i := 0; i < 2000; i++ {
		d.RunBatchCycles(context.Background(), job, testMaxCycles)
		clock.Advance(50 * time.Millisecond) // 100s of fake time total
	}

	times := dead.attemptTimes()
	if len(times) < 4 {
		t.Fatalf("only %d probe attempts in 100s of fake time, want enough to see spacing", len(times))
	}
	// First attempt is the initial failure; gaps between subsequent
	// attempts must respect the backoff envelope: at least base, at most
	// cap plus one driver tick of slack.
	var gaps []time.Duration
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]))
	}
	for i, g := range gaps {
		if g < base {
			t.Fatalf("gap %d = %v, below backoff base %v (immediate re-probe)", i, g, base)
		}
		if g > cap+50*time.Millisecond {
			t.Fatalf("gap %d = %v, beyond backoff cap %v", i, g, cap)
		}
	}
	// The schedule must grow: the late gaps must be meaningfully wider
	// than the early ones (decorrelated jitter trends 2x per step toward
	// the cap; a fixed cadence would keep them equal).
	if last, first := gaps[len(gaps)-1], gaps[0]; last < 4*first {
		t.Fatalf("probe gaps did not grow: first %v, last %v", first, last)
	}
	// And with ~2000 jobs offered, the dead backend saw only a handful of
	// probes — pressure decayed instead of tracking offered load.
	if len(times) > 40 {
		t.Fatalf("dead backend absorbed %d attempts from 2000 jobs; probing must decay", len(times))
	}
}

// TestRetryBudgetNeverExceeded pins the other half of the criterion: the
// number of jobs rerouted to a second node on a dead backend's behalf
// never exceeds its token budget, and every job still completes (locally)
// with results byte-identical to the serial path.
func TestRetryBudgetNeverExceeded(t *testing.T) {
	corpus := partitionCorpus()
	clock := newTestClock()
	dead := &deadBackend{name: "peer-dead", clock: clock}
	ts, _ := newPeer(t, corpus)
	healthy := NewRemote(ts.URL, nil)

	const burst, rate = 3, 0.5
	d, err := NewWithBackends([]Backend{dead, healthy}, Options{
		Local:            newLocalScheduler(),
		FailureThreshold: 1000, // keep the dead backend routable: owned jobs keep hitting it
		RetryBurst:       burst,
		RetryRate:        rate,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "Compact2")

	// Only methods whose ring owner is the dead backend exercise the
	// failure path; pick hostable ones so the fallback run succeeds.
	var owned []*classfile.Method
	for _, m := range corpus {
		if d.ring.owner(m.Signature(), nil) != 0 {
			continue
		}
		if _, err := sim.DeployMethod(cfg, m); err != nil {
			continue
		}
		if owned = append(owned, m); len(owned) == 4 {
			break
		}
	}
	if len(owned) == 0 {
		t.Fatal("no hostable corpus method owned by the dead backend")
	}

	const jobsN = 40
	var jobs []serve.Job
	for i := 0; i < jobsN; i++ {
		jobs = append(jobs, serve.Job{Config: cfg, Method: owned[i%len(owned)]})
	}
	var got []serve.JobResult
	for _, job := range jobs {
		got = append(got, d.RunBatchCycles(context.Background(), []serve.Job{job}, testMaxCycles)...)
		clock.Advance(time.Second) // refills rate tokens/sec
	}

	st := d.Stats()
	deadStats := st.Backends[0]
	// Tokens available over the run: burst + rate × elapsed. Reroutes to
	// the healthy peer must stay under that; the rest fell back locally.
	maxTokens := int64(burst) + int64(rate*float64(jobsN))
	rerouted := deadStats.RetriedAway - deadStats.RetryBudgetDenied
	if rerouted > maxTokens {
		t.Fatalf("%d reroutes exceeded the %d-token budget", rerouted, maxTokens)
	}
	if deadStats.RetryBudgetDenied == 0 {
		t.Fatal("budget never denied a retry; the test should exhaust it")
	}
	if st.RetryBudgetDenials != deadStats.RetryBudgetDenied {
		t.Fatalf("aggregate denials %d != backend denials %d", st.RetryBudgetDenials, deadStats.RetryBudgetDenied)
	}

	// Every job completed with the right bytes regardless of which path
	// served it.
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)
}

// TestRemoteTimeoutOnStalledPeer is the satellite regression test: a peer
// that accepts the connection and then never sends response headers must
// fail the attempt at the transport's header timeout instead of pinning
// the inflight slot until the caller gives up.
func TestRemoteTimeoutOnStalledPeer(t *testing.T) {
	methods := testMethods(t, 1)
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // hold the request open, never write headers
	}))
	defer ts.Close()
	defer close(stall) // LIFO: unblock the handler before Close waits on it

	client := &http.Client{Transport: &http.Transport{
		ResponseHeaderTimeout: 200 * time.Millisecond,
	}}
	remote := NewRemote(ts.URL, client)
	cfg := testConfig(t, "Compact2")

	done := make(chan error, 1)
	go func() {
		_, err := remote.Run(context.Background(), serve.Job{Config: cfg, Method: methods[0]}, testMaxCycles)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled peer reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled peer pinned the attempt past the header timeout")
	}
}

// TestDispatcherDefaultClientHasTimeouts pins that the dispatcher's
// default peer client is built with transport bounds — the regression
// this PR fixes was a default transport with no dial or header timeout.
func TestDispatcherDefaultClientHasTimeouts(t *testing.T) {
	if tr, ok := defaultRemoteClient.Transport.(*http.Transport); !ok {
		t.Fatal("default remote client transport is not *http.Transport")
	} else {
		if tr.ResponseHeaderTimeout <= 0 {
			t.Fatal("default remote client has no ResponseHeaderTimeout")
		}
		if tr.DialContext == nil {
			t.Fatal("default remote client has no bounded dialer")
		}
	}
}
