package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/scenario/chaos"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

const testMaxCycles = 200_000

func testConfig(t testing.TB, name string) sim.Config {
	t.Helper()
	for _, cfg := range sim.Configurations() {
		if cfg.Name == name {
			return cfg
		}
	}
	t.Fatalf("no configuration %q", name)
	return sim.Config{}
}

// testMethods returns the first n named-corpus methods (hostable or not —
// rejections must flow through dispatch identically too).
func testMethods(t testing.TB, n int) []*classfile.Method {
	t.Helper()
	methods := workload.NamedMethods()
	if len(methods) < n {
		t.Fatalf("only %d named methods, want %d", len(methods), n)
	}
	return methods[:n]
}

// newPeer starts a real jfserved HTTP instance over the given corpus and
// returns its Remote backend.
func newPeer(t *testing.T, methods []*classfile.Method) (*httptest.Server, *serve.Service) {
	t.Helper()
	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles})
	svc := serve.NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func newLocalScheduler() *serve.Scheduler {
	return serve.NewScheduler(serve.SchedulerOptions{Workers: 4, MaxMeshCycles: testMaxCycles})
}

func sweepJobs(t testing.TB, configNames []string, methods []*classfile.Method) []serve.Job {
	t.Helper()
	var jobs []serve.Job
	for _, name := range configNames {
		cfg := testConfig(t, name)
		for _, m := range methods {
			jobs = append(jobs, serve.Job{Config: cfg, Method: m})
		}
	}
	return jobs
}

// assertSameResults demands got and want agree run-for-run, byte-for-byte.
func assertSameResults(t *testing.T, got, want []serve.JobResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("job %d: err = %v, want %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			var gle, wle *fabric.LoadError
			if errors.As(got[i].Err, &gle) != errors.As(want[i].Err, &wle) {
				t.Fatalf("job %d: error kind differs: %v vs %v", i, got[i].Err, want[i].Err)
			}
			continue
		}
		if !reflect.DeepEqual(got[i].Run, want[i].Run) {
			t.Fatalf("job %d (%s on %s): dispatched run differs from local run:\n got %+v\nwant %+v",
				i, got[i].Job.Method.Signature(), got[i].Job.Config.Name, got[i].Run, want[i].Run)
		}
	}
	gotJSON, _ := json.Marshal(runsOf(got))
	wantJSON, _ := json.Marshal(runsOf(want))
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("dispatched results not byte-identical to local results")
	}
}

func runsOf(rs []serve.JobResult) []sim.MethodRun {
	out := make([]sim.MethodRun, 0, len(rs))
	for _, r := range rs {
		if r.Err == nil {
			out = append(out, r.Run)
		}
	}
	return out
}

// TestDispatchMatchesLocal is the acceptance contract: a sweep dispatched
// across two live backends is byte-identical to the same sweep on the
// local scheduler, and both backends served jobs.
func TestDispatchMatchesLocal(t *testing.T) {
	methods := testMethods(t, 12)
	ts1, _ := newPeer(t, methods)
	ts2, _ := newPeer(t, methods)

	d, err := New(Options{Peers: []string{ts1.URL, ts2.URL}, Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sweepJobs(t, []string{"Compact2", "Hetero2"}, methods)

	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)

	st := d.Stats()
	if st.LocalFallbacks != 0 || st.Retries != 0 {
		t.Fatalf("healthy sweep used retries/fallbacks: %+v", st)
	}
	for _, b := range st.Backends {
		if b.Jobs == 0 {
			t.Fatalf("backend %s served no jobs (stats %+v)", b.Name, st)
		}
		if b.Suspended || b.Errors != 0 {
			t.Fatalf("backend %s unhealthy after clean sweep: %+v", b.Name, b)
		}
	}
	if st.Backends[0].Jobs+st.Backends[1].Jobs != int64(len(jobs)) {
		t.Fatalf("backends served %d+%d jobs, want %d total",
			st.Backends[0].Jobs, st.Backends[1].Jobs, len(jobs))
	}
}

// TestDispatchAffinity: the same method must land on the same backend on
// every submission, across configurations — that is what keeps one node's
// deployment cache hot for it.
func TestDispatchAffinity(t *testing.T) {
	methods := testMethods(t, 8)
	ts1, svc1 := newPeer(t, methods)
	ts2, svc2 := newPeer(t, methods)
	d, err := New(Options{Peers: []string{ts1.URL, ts2.URL}, Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}

	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	// Re-running the identical sweep must hit each backend's deployment
	// cache: same methods → same nodes.
	misses1 := svc1.Scheduler().Cache().Stats().Misses
	misses2 := svc2.Scheduler().Cache().Stats().Misses
	d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	if m := svc1.Scheduler().Cache().Stats().Misses; m != misses1 {
		t.Fatalf("backend 1 took %d new cache misses on a repeat sweep", m-misses1)
	}
	if m := svc2.Scheduler().Cache().Stats().Misses; m != misses2 {
		t.Fatalf("backend 2 took %d new cache misses on a repeat sweep", m-misses2)
	}
}

// TestDispatchBackendDownAtStart: one peer is unreachable from the first
// job. Every job still completes with correct results via the retry path.
func TestDispatchBackendDownAtStart(t *testing.T) {
	methods := testMethods(t, 10)
	ts, _ := newPeer(t, methods)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // connection refused from the start

	d, err := New(Options{Peers: []string{ts.URL, deadURL}, Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)

	st := d.Stats()
	var deadStats, liveStats BackendStats
	for _, b := range st.Backends {
		if b.Name == deadURL {
			deadStats = b
		} else {
			liveStats = b
		}
	}
	if deadStats.Jobs != 0 || deadStats.Errors == 0 {
		t.Fatalf("dead backend stats: %+v", deadStats)
	}
	if liveStats.Jobs == 0 {
		t.Fatalf("live backend served nothing: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("expected retries away from the dead backend: %+v", st)
	}
}

// partitionCorpus is the method pool partitionByOwner draws from: the
// named corpus plus a generated tranche, so each backend owns enough
// signatures no matter how the ring hashes its (ephemeral-port) names.
func partitionCorpus() []*classfile.Method {
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 11, Count: 40}) {
		for _, n := range c.MethodNames() {
			methods = append(methods, c.Methods[n])
		}
	}
	return methods
}

// partitionByOwner picks methods until each of the dispatcher's two
// backends owns at least want signatures, returning the combined set —
// so tests that kill one backend know it had jobs before and after the
// kill, regardless of how the corpus hashes.
func partitionByOwner(t *testing.T, d *Dispatcher, want int) []*classfile.Method {
	t.Helper()
	counts := make([]int, 2)
	var out []*classfile.Method
	for _, m := range partitionCorpus() {
		owner := d.ring.owner(m.Signature(), nil)
		if counts[owner] >= want {
			continue
		}
		counts[owner]++
		out = append(out, m)
		if counts[0] >= want && counts[1] >= want {
			return out
		}
	}
	t.Fatalf("could not find %d methods per backend (got %v)", want, counts)
	return nil
}

// TestDispatchBackendDiesMidBatch kills one backend partway through a
// sweep: jobs routed to it afterwards must be retried on the surviving
// node and the merged results must still match the local path.
func TestDispatchBackendDiesMidBatch(t *testing.T) {
	corpus := partitionCorpus()
	ts1, _ := newPeer(t, corpus)
	ts2, _ := newPeer(t, corpus)
	// The flaky backend serves its first job, then dies. The injector is
	// the scenario harness's: the same machinery `jfbench -scenario` runs.
	flaky := &chaos.FlakyBackend{Inner: NewRemote(ts2.URL, nil), FailAfter: 1}

	d, err := NewWithBackends([]Backend{NewRemote(ts1.URL, nil), flaky}, Options{
		Local: newLocalScheduler(),
		// Serialize per-backend so "first job, then dead" is exact.
		MaxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Guarantee the flaky backend owns several signatures: at least one
	// succeeds, the rest fail mid-batch and must land elsewhere.
	methods := partitionByOwner(t, d, 4)

	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)

	st := d.Stats()
	if st.Retries == 0 {
		t.Fatalf("backend died mid-batch but nothing was retried: %+v", st)
	}
	for _, b := range st.Backends {
		if b.Name == flaky.Name() {
			if b.Jobs == 0 {
				t.Fatalf("flaky backend served nothing before dying: %+v", st)
			}
			if b.RetriedAway == 0 {
				t.Fatalf("no jobs retried away from the dead backend: %+v", st)
			}
		}
	}
}

// TestDispatchAllBackendsDownFallsBackLocal: with every peer unreachable
// the sweep must complete on the in-process scheduler with identical
// results.
func TestDispatchAllBackendsDownFallsBackLocal(t *testing.T) {
	methods := testMethods(t, 8)
	d1 := httptest.NewServer(nil)
	d2 := httptest.NewServer(nil)
	u1, u2 := d1.URL, d2.URL
	d1.Close()
	d2.Close()

	d, err := New(Options{Peers: []string{u1, u2}, Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sweepJobs(t, []string{"Hetero2"}, methods)
	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)

	st := d.Stats()
	if st.LocalFallbacks != int64(len(jobs)) {
		t.Fatalf("local fallbacks = %d, want %d (stats %+v)", st.LocalFallbacks, len(jobs), st)
	}
}

// TestDispatchNoPeers: a dispatcher with an empty ring is a working (if
// pointless) single-node runner.
func TestDispatchNoPeers(t *testing.T) {
	methods := testMethods(t, 4)
	d, err := New(Options{Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	got := d.RunBatchCycles(context.Background(), jobs, testMaxCycles)
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)
}

// TestDispatchRejectionsAreNotRetried: a typed fabric rejection is a real
// result every node agrees on; it must not burn the retry path or mark the
// backend unhealthy.
func TestDispatchRejectionsAreNotRetried(t *testing.T) {
	// Find a method the Compact2 fabric rejects.
	cfg := testConfig(t, "Compact2")
	var rejected *classfile.Method
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err != nil {
			rejected = m
			break
		}
	}
	if rejected == nil {
		t.Skip("no rejected method in the named corpus")
	}

	ts, _ := newPeer(t, []*classfile.Method{rejected})
	d, err := New(Options{Peers: []string{ts.URL}, Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	results := d.RunBatchCycles(context.Background(),
		[]serve.Job{{Config: cfg, Method: rejected}}, testMaxCycles)

	var le *fabric.LoadError
	if !errors.As(results[0].Err, &le) {
		t.Fatalf("err = %v, want *fabric.LoadError", results[0].Err)
	}
	st := d.Stats()
	if st.Retries != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("rejection triggered retries: %+v", st)
	}
	if st.Backends[0].Jobs != 1 || st.Backends[0].Errors != 0 {
		t.Fatalf("rejection miscounted: %+v", st.Backends[0])
	}
}

// blockingBackend holds one designated job until released — proof that
// streamed results flow before the batch finishes.
type blockingBackend struct {
	inner    Backend
	blockSig string
	release  chan struct{}
}

func (b *blockingBackend) Name() string { return b.inner.Name() }

func (b *blockingBackend) Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	if job.Method.Signature() == b.blockSig {
		select {
		case <-b.release:
		case <-ctx.Done():
			return sim.MethodRun{}, ctx.Err()
		}
	}
	return b.inner.Run(ctx, job, maxCycles)
}

// TestDispatchStreamIsIncremental: earlier jobs must be emitted while a
// later job is still executing. If the dispatcher buffered the whole batch
// before emitting, this test would deadlock (and fail on timeout): the
// blocked job is only released after the first emit arrives.
func TestDispatchStreamIsIncremental(t *testing.T) {
	methods := testMethods(t, 6)
	ts, _ := newPeer(t, methods)
	lastSig := methods[len(methods)-1].Signature()
	blocking := &blockingBackend{
		inner:    NewRemote(ts.URL, nil),
		blockSig: lastSig,
		release:  make(chan struct{}),
	}
	d, err := NewWithBackends([]Backend{blocking}, Options{Local: newLocalScheduler()})
	if err != nil {
		t.Fatal(err)
	}

	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	var order []int
	released := false
	done := make(chan []serve.JobResult, 1)
	emitFirst := make(chan struct{})
	go func() {
		done <- d.RunBatchStream(context.Background(), jobs, testMaxCycles, func(i int, r serve.JobResult) {
			order = append(order, i)
			if !released {
				released = true
				close(emitFirst)
			}
		})
	}()

	select {
	case <-emitFirst:
		// First result arrived while the last job was still blocked.
	case <-time.After(60 * time.Second):
		t.Fatal("no streamed result arrived while a later job was in flight")
	}
	close(blocking.release)
	results := <-done

	if len(order) != len(jobs) {
		t.Fatalf("emitted %d results for %d jobs", len(order), len(jobs))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emission out of submission order: %v", order)
		}
	}
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, results, want)
}

// TestDispatchSelfPeerDoesNotRecurse: a front listing itself as a peer
// must terminate after one hop — the dispatched request carries
// serve.DispatchedHeader, so the receiving handler executes on the local
// scheduler instead of re-entering the dispatcher. Without the header
// this test would recurse until the inflight semaphore deadlocks (and
// fail on timeout).
func TestDispatchSelfPeerDoesNotRecurse(t *testing.T) {
	methods := testMethods(t, 3)
	sched := newLocalScheduler()
	svc := serve.NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(ts.Close)

	// The service's own URL is its only peer.
	d, err := New(Options{Peers: []string{ts.URL}, Local: sched, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetBatchRunner(d)

	jobs := sweepJobs(t, []string{"Compact2"}, methods)
	resCh := make(chan []serve.JobResult, 1)
	go func() { resCh <- d.RunBatchCycles(context.Background(), jobs, testMaxCycles) }()
	var got []serve.JobResult
	select {
	case got = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatal("self-peer dispatch did not terminate")
	}
	want := newLocalScheduler().RunBatchCycles(context.Background(), jobs, testMaxCycles)
	assertSameResults(t, got, want)
	if st := d.Stats(); st.LocalFallbacks != 0 {
		t.Fatalf("self-peer sweep fell back instead of one-hop executing: %+v", st)
	}
}

// TestDispatchSuspensionAndProbe: after FailureThreshold consecutive
// failures a backend is skipped without burning a network attempt per job,
// and the probe path sends it a real job again once healthy — but only
// after the jittered backoff delay has elapsed on the test clock.
func TestDispatchSuspensionAndProbe(t *testing.T) {
	methods := testMethods(t, 6)
	ts, _ := newPeer(t, methods)
	flaky := &chaos.FlakyBackend{Inner: NewRemote(ts.URL, nil), FailAfter: -1}
	flaky.Kill()

	clock := newTestClock()
	d, err := NewWithBackends([]Backend{flaky}, Options{
		Local:            newLocalScheduler(),
		FailureThreshold: 2,
		MaxInflight:      1,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "Compact2")
	runOne := func() {
		d.RunBatchCycles(context.Background(), []serve.Job{{Config: cfg, Method: methods[0]}}, testMaxCycles)
	}
	// Two failures suspend it.
	runOne()
	runOne()
	if st := d.Stats(); !st.Backends[0].Suspended {
		t.Fatalf("backend not suspended after %d failures: %+v", 2, st.Backends[0])
	}
	errsAtSuspend := d.Stats().Backends[0].Errors

	// While suspended and inside the backoff window, jobs skip it
	// entirely (no new errors, no probes)...
	flaky.Revive()
	for i := 0; i < 5; i++ {
		runOne()
	}
	if st := d.Stats(); !st.Backends[0].Suspended || st.Backends[0].Jobs != 0 {
		t.Fatalf("backend probed before its backoff elapsed: %+v", st.Backends[0])
	}
	// ...then once the clock passes the jittered delay, the probe path
	// routes a real job there and the suspension lifts.
	for i := 0; i < 10; i++ {
		clock.Advance(time.Minute)
		runOne()
	}
	st := d.Stats()
	// ...but the probe path routed at least one real job there, which
	// succeeded and lifted the suspension.
	if st.Backends[0].Suspended {
		t.Fatalf("backend still suspended after successful probe: %+v", st.Backends[0])
	}
	if st.Backends[0].Jobs == 0 {
		t.Fatalf("probe never reached the recovered backend: %+v", st.Backends[0])
	}
	if st.Backends[0].Errors != errsAtSuspend {
		t.Fatalf("suspended backend took new errors: %+v", st.Backends[0])
	}
}
