package dispatch

import (
	"context"
	"sync"
	"testing"
	"time"

	"javaflow/internal/classfile"
	"javaflow/internal/scenario/chaos"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// hintLog is a Hints stub: it records the callbacks dispatch makes so the
// test can assert on the seam without a real replicator behind it.
type hintLog struct {
	mu        sync.Mutex
	recorded  [][2]string // (owner, signature) pairs
	delivered []string
}

func (h *hintLog) RecordHint(owner, signature string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recorded = append(h.recorded, [2]string{owner, signature})
}

func (h *hintLog) DeliverHints(owner string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.delivered = append(h.delivered, owner)
}

// TestDispatchHintedHandoffSeam pins when dispatch talks to the Hints
// seam: every job that succeeds away from its true ring owner records a
// hint against that owner, and the probe that catches a suspended owner
// recovering triggers exactly one delivery.
func TestDispatchHintedHandoffSeam(t *testing.T) {
	corpus := partitionCorpus()
	ts1, _ := newPeer(t, corpus)
	ts2, _ := newPeer(t, corpus)
	flaky := &chaos.FlakyBackend{Inner: NewRemote(ts1.URL, nil), FailAfter: -1}
	hints := &hintLog{}

	clock := newTestClock()
	d, err := NewWithBackends([]Backend{flaky, NewRemote(ts2.URL, nil)}, Options{
		Local:            newLocalScheduler(),
		FailureThreshold: 1,
		Hints:            hints,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A hostable method whose ring owner is the flaky backend, so its
	// failure forces the job elsewhere and its recovery is observable.
	cfg := testConfig(t, "Compact2")
	var m *classfile.Method
	for _, cand := range corpus {
		if d.ring.owner(cand.Signature(), nil) != 0 {
			continue
		}
		if _, err := sim.DeployMethod(cfg, cand); err == nil {
			m = cand
			break
		}
	}
	if m == nil {
		t.Fatal("no hostable corpus method owned by backend 0")
	}
	job := []serve.Job{{Config: cfg, Method: m}}
	runOnce := func() {
		t.Helper()
		if res := d.RunBatchCycles(context.Background(), job, testMaxCycles); res[0].Err != nil {
			t.Fatalf("job failed: %v", res[0].Err)
		}
	}

	// Owner dies mid-fleet: the job retries onto the healthy peer, and
	// that off-owner success must record a hint against the owner.
	flaky.Kill()
	runOnce()
	hints.mu.Lock()
	if len(hints.recorded) != 1 || hints.recorded[0] != [2]string{flaky.Name(), m.Signature()} {
		hints.mu.Unlock()
		t.Fatalf("recorded hints = %v, want one (%s, %s)", hints.recorded, flaky.Name(), m.Signature())
	}
	hints.mu.Unlock()

	// The owner comes back, but dispatch does not know yet: inside the
	// probe backoff window the next job is still routed around the
	// suspension (and hinted again); once the test clock passes the
	// jittered delay, the next job is the probe, whose success must
	// deliver the backlog.
	flaky.Revive()
	runOnce()
	clock.Advance(time.Minute)
	runOnce()
	hints.mu.Lock()
	defer hints.mu.Unlock()
	if len(hints.delivered) != 1 || hints.delivered[0] != flaky.Name() {
		t.Fatalf("delivered = %v, want exactly one delivery to %s", hints.delivered, flaky.Name())
	}
	for _, rec := range hints.recorded {
		if rec != [2]string{flaky.Name(), m.Signature()} {
			t.Fatalf("unexpected hint %v", rec)
		}
	}

	stats := d.Stats()
	if stats.HandoffHints != int64(len(hints.recorded)) {
		t.Fatalf("HandoffHints = %d, want %d", stats.HandoffHints, len(hints.recorded))
	}
	if stats.OwnerRecoveries != 1 {
		t.Fatalf("OwnerRecoveries = %d, want 1", stats.OwnerRecoveries)
	}
}
