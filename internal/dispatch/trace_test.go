package dispatch

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"javaflow/internal/obs"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// dumpSpans fetches one node's /debug/traces ring.
func dumpSpans(t *testing.T, baseURL string) []obs.Span {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces?n=256")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", resp.StatusCode)
	}
	var dump obs.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding trace dump: %v", err)
	}
	return dump.Recent
}

// TestTracePropagatesAcrossNodes is the distributed-tracing acceptance
// contract: a client-supplied X-Javaflow-Trace ID on a batch posted to a
// dispatch front must appear in the front's own trace ring at hop 0 AND in
// the backend's ring at hop 1 — one trace spanning both processes, with
// the hop count recording the wire crossing.
func TestTracePropagatesAcrossNodes(t *testing.T) {
	methods := testMethods(t, 2)

	// Backend node, with its own tracer behind its own /debug/traces.
	backend, _ := newPeer(t, methods)

	// Front node dispatching every batch job to the backend.
	frontSched := newLocalScheduler()
	frontSvc := serve.NewService(frontSched, sim.Configurations(), methods)
	d, err := New(Options{
		Peers:    []string{backend.URL},
		Local:    frontSched,
		Tracer:   frontSched.Metrics().Tracer(),
		Registry: frontSched.Metrics().Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frontSvc.SetBatchRunner(d)
	front := httptest.NewServer(serve.NewHandler(frontSvc))
	t.Cleanup(front.Close)

	const traceID = "0123456789abcdef"
	body, _ := json.Marshal(serve.BatchRequest{Configs: []string{"Hetero2"}, SummaryOnly: true})
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID+"-00000000000000aa-0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch: status %d", resp.StatusCode)
	}

	var frontHops, backHops []int
	for _, sp := range dumpSpans(t, front.URL) {
		if sp.TraceID == traceID {
			frontHops = append(frontHops, sp.Hop)
		}
	}
	for _, sp := range dumpSpans(t, backend.URL) {
		if sp.TraceID == traceID {
			backHops = append(backHops, sp.Hop)
			if sp.ParentID == "" {
				t.Errorf("backend span %s (%s) joined trace %s without a parent", sp.SpanID, sp.Name, traceID)
			}
		}
	}

	if len(frontHops) == 0 {
		t.Fatalf("front recorded no spans for client trace %s", traceID)
	}
	if len(backHops) == 0 {
		t.Fatalf("backend recorded no spans for client trace %s — trace did not cross the dispatch hop", traceID)
	}
	for _, h := range frontHops {
		if h != 0 {
			t.Errorf("front span at hop %d, want 0 (ingress joins the client's hop)", h)
		}
	}
	for _, h := range backHops {
		if h != 1 {
			t.Errorf("backend span at hop %d, want 1 (one wire crossing from the front)", h)
		}
	}
}
