package dispatch

import (
	"fmt"
	"math"
	"testing"
)

func TestRingDeterministicOwnership(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(names, 0)
	r2 := newRing(names, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("pkg/Class.method/%d", i)
		if got, want := r1.owner(key, nil), r2.owner(key, nil); got != want {
			t.Fatalf("key %q: owner differs across identical rings: %d vs %d", key, got, want)
		}
		if again := r1.owner(key, nil); again != r1.owner(key, nil) {
			t.Fatalf("key %q: owner not stable on one ring", key)
		}
	}
}

// Suspending one backend must move only that backend's keys; every key
// owned by a surviving backend stays put — the consistent-hash property
// that keeps deployment caches hot through peer failures.
func TestRingFailureMovesOnlyFailedKeys(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(names, 0)
	const dead = 1
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("pkg/Class.method/%d", i)
		before := r.owner(key, nil)
		after := r.owner(key, func(b int) bool { return b == dead })
		if before != dead && after != before {
			t.Fatalf("key %q moved from healthy backend %d to %d when backend %d died",
				key, before, after, dead)
		}
		if before == dead && after == dead {
			t.Fatalf("key %q still routed to dead backend", key)
		}
	}
	// All backends skipped: no owner.
	if got := r.owner("anything", func(int) bool { return true }); got != -1 {
		t.Fatalf("owner with all skipped = %d, want -1", got)
	}
}

func TestRingSharesRoughlyEven(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(names, 0)
	shares := r.shares()
	total := 0.0
	for i, s := range shares {
		total += s
		// 128 virtual nodes per backend keeps each share within a few x
		// of even; the bound here is loose on purpose.
		if s < 0.05 || s > 0.60 {
			t.Fatalf("backend %d owns %.1f%% of the keyspace", i, 100*s)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}

	// Job counts over a well-spread key population track the shares.
	counts := make([]int, len(names))
	const keys = 50000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("pkg%d/Class%d.method/%d", i*7919, i*104729, i%7), nil)]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if math.Abs(frac-shares[i]) > 0.02 {
			t.Fatalf("backend %d: observed %.1f%% of keys vs %.1f%% ring share",
				i, 100*frac, 100*shares[i])
		}
	}
}
