package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/obs"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
)

// A Backend executes one dispatched job: a remote jfserved instance over
// HTTP, the in-process scheduler, or a test double. Implementations must
// be safe for concurrent use; errors other than *fabric.LoadError and
// context cancellation are treated as transient and retried on another
// node.
type Backend interface {
	// Name identifies the backend in metrics and ring placement; names
	// must be unique within a dispatcher.
	Name() string
	// Run executes job under the given effective mesh-cycle bound (always
	// resolved, never 0) and returns the completed two-policy MethodRun.
	Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error)
}

// maxErrorBody bounds how much of a failed response is read for the error
// message.
const maxErrorBody = 1 << 20

// Remote is a Backend that forwards jobs to another jfserved instance via
// POST /v1/run. Config and method are sent by name, so the peer must serve
// the same registry (same corpus flags); a peer that does not know a name
// fails the job, which the dispatcher then retries elsewhere or runs
// locally.
type Remote struct {
	base   string // URL prefix without trailing slash, e.g. "http://host:8077"
	client *http.Client
}

// defaultRemoteClient serves NewRemote callers that pass no client. No
// overall timeout — a cold sweep job can legitimately simulate for a long
// time, so per-request lifetimes come from the dispatch context — but the
// transport bounds connection establishment and time-to-first-header, so
// a dead or wedged peer fails the attempt instead of pinning an inflight
// slot indefinitely.
var defaultRemoteClient = &http.Client{Transport: &http.Transport{
	DialContext:           (&net.Dialer{Timeout: defaultDialTimeout}).DialContext,
	ResponseHeaderTimeout: defaultResponseHeaderTimeout,
	MaxIdleConnsPerHost:   defaultInflight,
	IdleConnTimeout:       90 * time.Second,
}}

// NewRemote builds a backend for the jfserved instance at baseURL. A nil
// client uses a shared default with transport-level dial and
// response-header timeouts (but no overall request timeout; see
// defaultRemoteClient).
func NewRemote(baseURL string, client *http.Client) *Remote {
	if client == nil {
		client = defaultRemoteClient
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), client: client}
}

// Name returns the peer's base URL.
func (r *Remote) Name() string { return r.base }

// Run posts the job to the peer and decodes the result. Non-2xx responses
// become errors; a 422 rejection is rehydrated into the same typed
// *fabric.LoadError a local run would return, so skip accounting is
// identical on both paths.
func (r *Remote) Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	body, err := json.Marshal(serve.RunRequest{
		Config:        job.Config.Name,
		Method:        job.Method.Signature(),
		MaxMeshCycles: maxCycles,
	})
	if err != nil {
		return sim.MethodRun{}, fmt.Errorf("dispatch: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return sim.MethodRun{}, fmt.Errorf("dispatch: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// One hop only: the receiving node executes locally even if it is
	// itself a dispatch front (or this very process — a self-peer must
	// not recurse).
	req.Header.Set(serve.DispatchedHeader, "1")
	// Carry the caller's trace across the wire so the peer's server span
	// joins the same trace one hop deeper, and the caller's deadline so
	// the peer sheds work this hop can no longer wait for.
	obs.Inject(req, ctx)
	admit.Inject(req, ctx)

	resp, err := r.client.Do(req)
	if err != nil {
		return sim.MethodRun{}, fmt.Errorf("dispatch: %s: %w", r.base, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		var ep serve.ErrorPayload
		if json.Unmarshal(data, &ep) == nil && ep.Kind == serve.ErrKindRejected {
			return sim.MethodRun{}, ep.Err()
		}
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return sim.MethodRun{}, fmt.Errorf("dispatch: %s: status %d: %s", r.base, resp.StatusCode, msg)
	}

	var payload serve.RunPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return sim.MethodRun{}, fmt.Errorf("dispatch: %s: decoding response: %w", r.base, err)
	}
	// RunPayload carries both full Result structs; reassembling them is
	// lossless (all fields are ints, bools and strings), so a dispatched
	// run is byte-identical to a local one.
	return sim.MethodRun{Signature: payload.Signature, BP1: payload.BP1, BP2: payload.BP2}, nil
}

// Healthy reports whether the peer answers /healthz. Used for operator
// feedback at startup, not for routing — routing health is learned from
// job outcomes.
func (r *Remote) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// localBackend adapts the in-process scheduler to the Backend interface —
// the terminal fallback every dispatched job can land on.
type localBackend struct {
	sched *serve.Scheduler
}

func (l localBackend) Name() string { return "local" }

func (l localBackend) Run(ctx context.Context, job serve.Job, maxCycles int) (sim.MethodRun, error) {
	return l.sched.RunMethodCycles(ctx, job.Config, job.Method, maxCycles)
}
