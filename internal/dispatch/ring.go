package dispatch

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per backend. At 128 points per
// backend the keyspace shares of a handful of nodes are within a few
// percent of even, while ring construction and lookup stay trivial.
const defaultReplicas = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a backend.
type ringPoint struct {
	hash    uint64
	backend int
}

// ring is a consistent-hash ring over backend indexes. It is immutable
// after construction — backend health is handled at routing time by the
// caller's skip predicate, not by rebuilding the ring, so a flapping
// backend never reshuffles keys owned by healthy ones.
type ring struct {
	replicas int
	points   []ringPoint
	backends int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing places replicas virtual nodes per backend name on the circle.
// Names must be distinct; the backend index is the caller's slot.
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{
		replicas: replicas,
		points:   make([]ringPoint, 0, replicas*len(names)),
		backends: len(names),
	}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(name + "#" + strconv.Itoa(v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on backend so construction order never matters.
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// owner returns the backend owning key: the first virtual node clockwise
// from the key's hash whose backend the skip predicate accepts. Returns -1
// when every backend is skipped (or the ring is empty). The same key
// always lands on the same backend while that backend is accepted — the
// property that keeps a method's deployment cache hot on one node.
func (r *ring) owner(key string, skip func(backend int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := 0
	tried := make([]bool, r.backends)
	for i := 0; seen < r.backends && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.backend] {
			continue
		}
		tried[p.backend] = true
		seen++
		if skip == nil || !skip(p.backend) {
			return p.backend
		}
	}
	return -1
}

// shares returns each backend's fraction of the hash circle — the expected
// share of a uniformly hashed key population it owns.
func (r *ring) shares() []float64 {
	out := make([]float64, r.backends)
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 without overflowing
	for i, p := range r.points {
		// Arc from the previous point (wrapping) to p belongs to p.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		out[p.backend] += float64(arc) / whole
	}
	return out
}
