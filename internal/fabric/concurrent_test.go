package fabric

import (
	"testing"
	"time"

	"javaflow/internal/bytecode"
	"javaflow/internal/workload"
)

// The concurrent goroutine-per-node protocol must produce exactly the same
// placement and resolved dataflow as the deterministic loader/resolver.
func TestConcurrentMatchesDeterministic(t *testing.T) {
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 31, Count: 60}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	for _, pattern := range [][]NodeKind{PatternCompact, PatternSparse, PatternHetero} {
		f := NewFabric(10, pattern)
		det := &Loader{Fabric: f}
		conc := &ConcurrentFabric{Fabric: f, Timeout: 30 * time.Second}

		checked := 0
		for _, m := range methods {
			if len(m.Code) > 400 {
				continue // keep goroutine counts reasonable in tests
			}
			detP, err := det.Load(m)
			if err != nil {
				continue // ineligible for the fabric
			}
			detR, err := Resolve(detP)
			if err != nil {
				t.Fatalf("%s: %v", m.Signature(), err)
			}

			concP, concTargets, err := conc.LoadAndResolve(m)
			if err != nil {
				t.Fatalf("%s: concurrent: %v", m.Signature(), err)
			}
			for i := range detP.NodeOf {
				if concP.NodeOf[i] != detP.NodeOf[i] {
					t.Fatalf("%s: instruction %d at node %d concurrently, %d deterministically",
						m.Signature(), i, concP.NodeOf[i], detP.NodeOf[i])
				}
			}
			for i := range detR.Targets {
				if len(concTargets[i]) != len(detR.Targets[i]) {
					t.Fatalf("%s: instr %d: %d targets concurrently, %d deterministically",
						m.Signature(), i, len(concTargets[i]), len(detR.Targets[i]))
				}
				for k := range detR.Targets[i] {
					if concTargets[i][k] != detR.Targets[i][k] {
						t.Fatalf("%s: instr %d target %d: %+v vs %+v",
							m.Signature(), i, k, concTargets[i][k], detR.Targets[i][k])
					}
				}
			}
			checked++
		}
		if checked < 20 {
			t.Fatalf("only %d methods checked on pattern", checked)
		}
	}
}

func TestConcurrentRejectsIneligible(t *testing.T) {
	m := testMethod(t, 1, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Switch(map[int64]string{1: "x"}, "x").
			Label("x").Op(bytecode.Return)
	})
	conc := &ConcurrentFabric{Fabric: NewFabric(10, PatternCompact)}
	if _, _, err := conc.LoadAndResolve(m); err == nil {
		t.Fatal("switch method should be rejected")
	}
}
