package fabric

import (
	"fmt"
	"strings"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// Command is the network command vocabulary (Figure 14). The deterministic
// simulator and the concurrent runtime share these values.
type Command uint8

const (
	CmdLoadInstruction Command = iota
	CmdUnloadInstruction
	CmdSendAddressesDown
	CmdSendNeedsUp
	CmdHeadToken
	CmdMemoryToken
	CmdRegisterToken
	CmdTailToken
	CmdExceptionToken
	CmdQuiesce
	CmdResetAddress
	CmdSubsequentMessage
)

var commandNames = [...]string{
	"LOAD_INSTRUCTION", "UNLOAD_INSTRUCTION", "SEND_ADDRESSES_DOWN",
	"SEND_NEEDS_UP", "HEAD_TOKEN", "MEMORY_TOKEN", "REGISTER_TOKEN",
	"TAIL_TOKEN", "EXCEPTION_TOKEN", "QUIESCE", "RESET_ADDRESS",
	"SUBSEQUENT_MESSAGE",
}

func (c Command) String() string {
	if int(c) < len(commandNames) {
		return commandNames[c]
	}
	return fmt.Sprintf("CMD(%d)", uint8(c))
}

// LoadError reports a method the fabric cannot host.
type LoadError struct {
	Method string
	Reason string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("fabric: cannot load %s: %s", e.Method, e.Reason)
}

// Placement records where each instruction of a method landed.
type Placement struct {
	Fabric *Fabric
	Method *classfile.Method
	// NodeOf[i] is the serial node index hosting instruction i.
	NodeOf []int
	// MaxNode is the highest node index used plus one — the linear span
	// of the method in the fabric (Table 19's denominator).
	MaxNode int
	// LoadTrace records the accept/skip walk for demonstration output
	// (Figure 20). Only filled when Trace is enabled on the loader.
	LoadTrace []string
}

// Ratio is instructions-to-max-node (Tables 19–20; ≈1 compact, 2 sparse,
// ~3.1 heterogeneous).
func (p *Placement) Ratio() float64 {
	if len(p.NodeOf) == 0 {
		return 0
	}
	return float64(p.MaxNode) / float64(len(p.NodeOf))
}

// Loader performs the self-organizing, greedy load of Section 6.2: each
// instruction flows down the Serial Network from the Anchor and is captured
// by the first free node whose kind matches ("a matched non busy node
// accepts the instruction, marks itself busy and then continues to send
// subsequent instructions down the network", Figure 20).
type Loader struct {
	Fabric *Fabric
	// MaxNodes bounds the walk; methods that cannot place within it are
	// rejected (they would not fit the fabric). Zero means 1 << 20.
	MaxNodes int
	// Trace enables human-readable load traces on placements.
	Trace bool
}

// eligible rejects methods the simulation excludes wholesale: switch and
// subroutine instructions (Section 6.3, Special Instructions) — the GPP
// executes those methods instead.
func eligible(m *classfile.Method) error {
	for i, in := range m.Code {
		switch in.Op {
		case bytecode.Tableswitch, bytecode.Lookupswitch,
			bytecode.Jsr, bytecode.JsrW, bytecode.Ret, bytecode.Wide:
			return &LoadError{m.Signature(),
				fmt.Sprintf("instruction %d (%s) requires GPP execution", i, in.Op)}
		}
		if in.Pop == bytecode.VarPop {
			return &LoadError{m.Signature(),
				fmt.Sprintf("instruction %d (%s) not signature-resolved", i, in.Op)}
		}
	}
	return nil
}

// Load places a verified method into the fabric.
func (l *Loader) Load(m *classfile.Method) (*Placement, error) {
	if err := classfile.Verify(m); err != nil {
		return nil, err
	}
	if err := eligible(m); err != nil {
		return nil, err
	}
	maxNodes := l.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}

	p := &Placement{
		Fabric: l.Fabric,
		Method: m,
		NodeOf: make([]int, len(m.Code)),
	}
	// Placement is monotonic along the serial network: instruction i+1 is
	// accepted by the first matching node after instruction i's node, so
	// linear (serial) addresses remain in physical order — the property
	// the ordered networks' next-instruction routing relies on
	// (Section 4.2). This is what yields the Sparse2 ratio of exactly 2
	// and the heterogeneous ratio of ~3 (Table 19).
	cursor := 0
	for i, in := range m.Code {
		placed := false
		for n := cursor; n < maxNodes; n++ {
			if !l.Fabric.Kind(n).Accepts(in.Group()) {
				continue
			}
			cursor = n + 1
			p.NodeOf[i] = n
			if n+1 > p.MaxNode {
				p.MaxNode = n + 1
			}
			if l.Trace {
				x, y := l.Fabric.Position(n)
				p.LoadTrace = append(p.LoadTrace, fmt.Sprintf(
					"inst %3d %-18s -> node %3d (%d,%d) %s",
					i, in.String(), n, x, y, l.Fabric.Kind(n)))
			}
			placed = true
			break
		}
		if !placed {
			return nil, &LoadError{m.Signature(),
				fmt.Sprintf("no %s-capable node within %d for instruction %d (%s)",
					KindFor(in.Group()), maxNodes, i, in.Op)}
		}
	}
	return p, nil
}

// DescribeLoad renders the load trace (Figure 20 demonstration).
func (p *Placement) DescribeLoad() string {
	if len(p.LoadTrace) == 0 {
		return "(trace disabled)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "loading %s into %d-wide fabric:\n", p.Method.Signature(), p.Fabric.Width)
	for _, line := range p.LoadTrace {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  span: %d nodes for %d instructions (ratio %.2f)\n",
		p.MaxNode, len(p.NodeOf), p.Ratio())
	return b.String()
}
