package fabric

import (
	"fmt"
	"sort"

	"javaflow/internal/bytecode"
)

// Target is one resolved consumer address held by a producer node: the mesh
// destination and operand side its fired data is routed to (Section 6.2,
// "DataFlow Address Resolution"). These arrays are built by the fabric
// itself — "unlike other machines, these 'Push' addresses are generated
// automatically and not part of the instruction set stored in the General
// Purpose Processor's memory."
type Target struct {
	Consumer int // linear address of the consuming instruction
	Side     int // 1-based operand side at the consumer
}

// Resolution is the outcome of the two-pass serial-network protocol:
// CMD_SEND_ADDRESSES_DOWN followed by CMD_SEND_NEEDS_UP.
type Resolution struct {
	Placement *Placement

	// Targets[i] lists the resolved consumers of instruction i's pushes.
	Targets [][]Target

	// Sources[i] lists the control-flow predecessor instructions of i
	// (the sourceLinearAddresses each Instruction Data Unit learns during
	// the addresses-down pass).
	Sources [][]int

	// QUp[i] counts need-messages buffered at or forwarded through
	// instruction i during the needs-up pass; MaxQUp is the per-method
	// buffering requirement (Table 11).
	QUp    []int
	MaxQUp int

	// Cycles is the serial-cycle cost of the whole resolution: a full
	// traversal for each pass plus one explicit message per branch source
	// (Table 7 reports ≈2× the instruction count).
	Cycles int

	// Merges counts consumer sides fed by multiple producers (DataFlow
	// merges); BackMerges counts impossible backward flows and must be 0.
	Merges     int
	BackMerges int
}

// Resolve runs address resolution over a placed method.
func Resolve(p *Placement) (*Resolution, error) {
	m := p.Method
	n := len(m.Code)
	r := &Resolution{
		Placement: p,
		Targets:   make([][]Target, n),
		Sources:   make([][]int, n),
		QUp:       make([]int, n),
	}

	// ---- Pass 1: CMD_SEND_ADDRESSES_DOWN ----
	// Every instruction with a non-sequential successor identifies itself
	// to the target; sequential flow is implicit ("only those nodes that
	// are non-sequential must be explicitly identified").
	branchMessages := 0
	addSource := func(to, from int) {
		if to < 0 || to >= n {
			return
		}
		r.Sources[to] = append(r.Sources[to], from)
	}
	for i, in := range m.Code {
		switch {
		case in.IsReturn():
			// no successors
		case in.Op == bytecode.Goto || in.Op == bytecode.GotoW:
			addSource(in.Target, i)
			branchMessages++
		case in.IsBranch():
			addSource(in.Target, i)
			addSource(i+1, i)
			branchMessages++
		default:
			addSource(i+1, i)
		}
	}
	for i := range r.Sources {
		sort.Ints(r.Sources[i])
	}

	// ---- Pass 2: CMD_SEND_NEEDS_UP ----
	// Each instruction emits one need per pop; the need climbs the source
	// chains until a producer with an unsatisfied push captures it. A
	// Branch-ID tag deduplicates copies that reconverge above a control
	// split — modelled here by memoizing (node, skip) states per need.
	type capture struct{ producer, outIndex int }
	for c := n - 1; c >= 0; c-- {
		in := m.Code[c]
		for side := 1; side <= in.Pop; side++ {
			skip := in.Pop - side
			visited := make(map[[2]int]bool)
			producers := map[int]bool{}

			type state struct{ node, skip int }
			work := make([]state, 0, 4)
			for _, s := range r.Sources[c] {
				work = append(work, state{s, skip})
			}
			for len(work) > 0 {
				st := work[len(work)-1]
				work = work[:len(work)-1]
				key := [2]int{st.node, st.skip}
				if visited[key] {
					continue
				}
				visited[key] = true
				pin := m.Code[st.node]
				if pin.Push > st.skip {
					// Captured: this node produces the wanted value.
					if !producers[st.node] {
						producers[st.node] = true
						r.Targets[st.node] = append(r.Targets[st.node],
							Target{Consumer: c, Side: side})
						if st.node > c {
							r.BackMerges++
						}
					}
					continue
				}
				// Forwarded further up: buffer accounting.
				r.QUp[st.node]++
				next := st.skip - pin.Push + pin.Pop
				for _, s := range r.Sources[st.node] {
					work = append(work, state{s, next})
				}
				if len(r.Sources[st.node]) == 0 {
					// The need reached the Anchor without resolution —
					// the load-time validation error of Section 6.2.
					return nil, fmt.Errorf(
						"fabric: resolve %s: need from instruction %d side %d reached the anchor",
						m.Signature(), c, side)
				}
			}
			if len(producers) == 0 {
				return nil, fmt.Errorf(
					"fabric: resolve %s: instruction %d side %d found no producer",
					m.Signature(), c, side)
			}
			if len(producers) > 1 {
				r.Merges++
			}
		}
		// Own needs buffered before forwarding anything from below.
		r.QUp[c] += in.Pop
	}

	// Validation: every push must have found at least one consumer.
	for i, in := range m.Code {
		if in.Push > 0 && len(r.Targets[i]) == 0 {
			return nil, fmt.Errorf(
				"fabric: resolve %s: instruction %d (%s) pushes %d but has no consumers",
				m.Signature(), i, in.Op, in.Push)
		}
		sort.Slice(r.Targets[i], func(a, b int) bool {
			ta, tb := r.Targets[i][a], r.Targets[i][b]
			if ta.Consumer != tb.Consumer {
				return ta.Consumer < tb.Consumer
			}
			return ta.Side < tb.Side
		})
	}

	for _, q := range r.QUp {
		if q > r.MaxQUp {
			r.MaxQUp = q
		}
	}
	// Both passes traverse the full serial loop; branch sources add one
	// explicit message each.
	r.Cycles = 2*n + branchMessages
	return r, nil
}

// FanOut returns instruction i's consumer count.
func (r *Resolution) FanOut(i int) int { return len(r.Targets[i]) }
