package fabric

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/classfile"
)

// ConcurrentFabric runs the self-organizing load and address-resolution
// protocols with a real goroutine per Instruction Node and channels for the
// forward/reverse Serial Networks — a Globally-Asynchronous
// Locally-Synchronous realization of Section 6.2. There is no central
// assignment: each node decides locally whether to capture an instruction,
// and needs-up messages hop node to node until a producer claims them.
//
// The deterministic simulator remains the measurement vehicle (as in the
// dissertation); this runtime demonstrates that the distributed protocol is
// implementable with purely local decisions and produces the same resolved
// dataflow.
type ConcurrentFabric struct {
	Fabric *Fabric
	// Nodes is the physical chain length. Methods that do not fit are
	// rejected. Zero means 4× the method size.
	Nodes int
	// Timeout bounds the whole protocol run.
	Timeout time.Duration
}

// message is one serial-network transfer.
type message struct {
	kind msgKind
	// load
	instrIdx int
	// needs-up
	consumer int // instruction index of the requester
	side     int
	skip     int
}

type msgKind uint8

const (
	msgLoad msgKind = iota
	msgNeed
)

// concNode is the per-node goroutine state.
type concNode struct {
	idx        int
	kind       NodeKind
	down       chan message // from node idx-1
	up         chan message // from node idx+1
	instr      int          // hosted instruction index, -1 if free
	capturedBy int32
}

// LoadAndResolve executes the distributed protocol and returns the
// placement plus per-producer targets. Results are validated to match the
// deterministic resolver by the test suite.
func (cf *ConcurrentFabric) LoadAndResolve(m *classfile.Method) (*Placement, [][]Target, error) {
	if err := classfile.Verify(m); err != nil {
		return nil, nil, err
	}
	if err := eligible(m); err != nil {
		return nil, nil, err
	}
	nNodes := cf.Nodes
	if nNodes <= 0 {
		nNodes = 4 * len(m.Code)
		if nNodes < 64 {
			nNodes = 64
		}
	}
	timeout := cf.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// ---- Phase 1: self-organizing load. ----
	// Instructions stream down the chain; the first free matching node
	// captures each one. A node that captured instruction k refuses
	// instruction k+1 and passes it on, preserving serial order.
	type claim struct {
		instr, node int
	}
	claims := make(chan claim, len(m.Code))
	downCh := make([]chan message, nNodes+1)
	for i := range downCh {
		downCh[i] = make(chan message, 8)
	}
	var wg sync.WaitGroup
	loadCtx, loadDone := context.WithCancel(ctx)
	for n := 0; n < nNodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Local acceptance rule: capture only while nothing has been
			// forwarded past this node. Because instructions stream in
			// order, this keeps serial addresses in physical order with
			// no global coordination (the monotonic placement the
			// ordered networks rely on).
			free := true
			forwardedAny := false
			for {
				select {
				case <-loadCtx.Done():
					return
				case msg := <-downCh[n]:
					in := m.Code[msg.instrIdx]
					if free && !forwardedAny && cf.Fabric.Kind(n).Accepts(in.Group()) {
						free = false
						claims <- claim{msg.instrIdx, n}
						continue
					}
					forwardedAny = true
					select {
					case downCh[n+1] <- msg:
					case <-loadCtx.Done():
						return
					}
				}
			}
		}(n)
	}
	// The Anchor streams the method in order.
	go func() {
		for i := range m.Code {
			select {
			case downCh[0] <- message{kind: msgLoad, instrIdx: i}:
			case <-loadCtx.Done():
				return
			}
		}
	}()

	placement := &Placement{Fabric: cf.Fabric, Method: m, NodeOf: make([]int, len(m.Code))}
	for range m.Code {
		select {
		case c := <-claims:
			placement.NodeOf[c.instr] = c.node
			if c.node+1 > placement.MaxNode {
				placement.MaxNode = c.node + 1
			}
		case <-ctx.Done():
			loadDone()
			wg.Wait()
			return nil, nil, fmt.Errorf("fabric: concurrent load timed out (%s)", m.Signature())
		}
	}
	loadDone()
	wg.Wait()

	// Serial-order invariant: instruction order must match node order.
	for i := 1; i < len(placement.NodeOf); i++ {
		if placement.NodeOf[i] <= placement.NodeOf[i-1] {
			return nil, nil, fmt.Errorf("fabric: concurrent load broke serial order at %d", i)
		}
	}

	// ---- Phase 2: distributed needs-up resolution. ----
	targets, err := cf.resolveConcurrently(ctx, m)
	if err != nil {
		return nil, nil, err
	}
	return placement, targets, nil
}

// resolveConcurrently runs one goroutine per instruction connected by
// up/down channels, propagating needs until every message is consumed.
// Termination uses an outstanding-message counter: every send increments,
// every final consumption decrements.
func (cf *ConcurrentFabric) resolveConcurrently(ctx context.Context, m *classfile.Method) ([][]Target, error) {
	n := len(m.Code)

	// Pass 1 (addresses down) is a pure broadcast in the deterministic
	// resolver; compute sources locally per node, as each node would
	// after receiving CMD_SEND_ADDRESSES_DOWN.
	det, err := Resolve(&Placement{
		Fabric: cf.Fabric, Method: m,
		NodeOf: identityNodes(n), MaxNode: n,
	})
	if err != nil {
		return nil, err
	}
	sources := det.Sources

	type nodeChans struct {
		inbox chan message
	}
	// Generous buffering removes the possibility of cyclic blocking sends
	// (needs can only travel toward lower addresses, but loop back-edges
	// make the source graph cyclic).
	inboxCap := 4*n + 64
	nodes := make([]nodeChans, n)
	for i := range nodes {
		nodes[i] = nodeChans{inbox: make(chan message, inboxCap)}
	}

	var (
		mu          sync.Mutex
		targets     = make([][]Target, n)
		outstanding int64
		allDone     = make(chan struct{})
	)
	finishOne := func() {
		if atomic.AddInt64(&outstanding, -1) == 0 {
			close(allDone)
		}
	}
	send := func(to int, msg message) bool {
		atomic.AddInt64(&outstanding, 1)
		select {
		case nodes[to].inbox <- msg:
			return true
		case <-ctx.Done():
			atomic.AddInt64(&outstanding, -1)
			return false
		}
	}

	var wg sync.WaitGroup
	workCtx, stopWork := context.WithCancel(ctx)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := m.Code[i]
			captured := make(map[[2]int]bool) // (consumer, side) already handled
			for {
				select {
				case <-workCtx.Done():
					return
				case msg := <-nodes[i].inbox:
					key := [2]int{msg.consumer, msg.side}
					if captured[key] {
						finishOne()
						continue
					}
					if in.Push > msg.skip {
						// This node produces the wanted value: record
						// the consumer's mesh address.
						captured[key] = true
						mu.Lock()
						targets[i] = append(targets[i], Target{Consumer: msg.consumer, Side: msg.side})
						mu.Unlock()
						finishOne()
						continue
					}
					captured[key] = true
					next := msg.skip - in.Push + in.Pop
					for _, s := range sources[i] {
						if !send(s, message{kind: msgNeed, consumer: msg.consumer, side: msg.side, skip: next}) {
							return
						}
					}
					finishOne()
				}
			}
		}(i)
	}

	// Kick off: every instruction emits its needs to its sources, exactly
	// as CMD_SEND_NEEDS_UP sweeps the chain.
	atomic.AddInt64(&outstanding, 1) // guard against premature zero
	for c := 0; c < n; c++ {
		in := m.Code[c]
		for side := 1; side <= in.Pop; side++ {
			skip := in.Pop - side
			for _, s := range sources[c] {
				if !send(s, message{kind: msgNeed, consumer: c, side: side, skip: skip}) {
					stopWork()
					wg.Wait()
					return nil, fmt.Errorf("fabric: concurrent resolve aborted (%s)", m.Signature())
				}
			}
		}
	}
	if atomic.AddInt64(&outstanding, -1) == 0 {
		close(allDone)
	}

	select {
	case <-allDone:
	case <-ctx.Done():
		stopWork()
		wg.Wait()
		return nil, fmt.Errorf("fabric: concurrent resolve timed out (%s)", m.Signature())
	}
	stopWork()
	wg.Wait()

	for i := range targets {
		sortTargets(targets[i])
	}
	return targets, nil
}

func identityNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortTargets(ts []Target) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0; j-- {
			a, b := ts[j-1], ts[j]
			if a.Consumer < b.Consumer || (a.Consumer == b.Consumer && a.Side <= b.Side) {
				break
			}
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}
