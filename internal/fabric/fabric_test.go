package fabric

import (
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/dataflow"
	"javaflow/internal/workload"
)

func testMethod(t *testing.T, maxLocals int, build func(a *bytecode.Assembler)) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return &classfile.Method{
		Class: "T", Name: "m", MaxLocals: maxLocals,
		Code: code, Pool: classfile.NewConstantPool(),
	}
}

func TestNodeKindAcceptance(t *testing.T) {
	cases := []struct {
		kind NodeKind
		op   bytecode.Opcode
		want bool
	}{
		{KindUniversal, bytecode.Dmul, true},
		{KindBlank, bytecode.Nop, false},
		{KindArith, bytecode.Iadd, true},
		{KindArith, bytecode.Iload1, true},
		{KindArith, bytecode.Dmul, false},
		{KindFloat, bytecode.Dmul, true},
		{KindFloat, bytecode.I2d, true},
		{KindFloat, bytecode.Iadd, false},
		{KindStorage, bytecode.Iaload, true},
		{KindStorage, bytecode.Ldc, true},
		{KindStorage, bytecode.Goto, false},
		{KindControl, bytecode.Goto, true},
		{KindControl, bytecode.Invokestatic, true},
		{KindControl, bytecode.Ireturn, true},
		{KindControl, bytecode.New, true},
		{KindControl, bytecode.Iadd, false},
	}
	for _, c := range cases {
		if got := c.kind.Accepts(c.op.Group()); got != c.want {
			t.Errorf("%s accepts %s = %v, want %v", c.kind, c.op, got, c.want)
		}
	}
}

func TestHeteroPatternMix(t *testing.T) {
	counts := make(map[NodeKind]int)
	for _, k := range PatternHetero {
		counts[k]++
	}
	if counts[KindArith] != 6 || counts[KindFloat] != 1 ||
		counts[KindStorage] != 2 || counts[KindControl] != 1 {
		t.Errorf("hetero pattern = %v, want 6/1/2/1", counts)
	}
}

func TestPositionsAndDistances(t *testing.T) {
	f := NewFabric(10, PatternCompact)
	x, y := f.Position(23)
	if x != 3 || y != 2 {
		t.Errorf("Position(23) = (%d,%d), want (3,2)", x, y)
	}
	if d := f.MeshDistance(0, 23); d != 5 {
		t.Errorf("MeshDistance(0,23) = %d, want 5 (3+2)", d)
	}
	if d := f.MeshDistance(7, 7); d != 1 {
		t.Errorf("self distance = %d, want 1", d)
	}
	if d := f.SerialDistance(3, 11); d != 8 {
		t.Errorf("SerialDistance = %d, want 8", d)
	}

	base := NewFabric(10, PatternCompact)
	base.Collapsed = true
	if base.MeshDistance(0, 99) != 1 || base.SerialDistance(0, 99) != 1 {
		t.Error("collapsed baseline must have unit distances")
	}
}

func TestLoaderCompactIsIdentity(t *testing.T) {
	m := testMethod(t, 5, func(a *bytecode.Assembler) {
		a.ILoad(1).ILoad(2).ILoad(3).Op(bytecode.Iadd).Op(bytecode.Iadd).
			Local(bytecode.Istore, 4).Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	p, err := l.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range p.NodeOf {
		if n != i {
			t.Errorf("instruction %d at node %d, want identity", i, n)
		}
	}
	if p.Ratio() != 1.0 {
		t.Errorf("compact ratio = %v, want 1.0", p.Ratio())
	}
}

func TestLoaderSparseRatioTwo(t *testing.T) {
	m := testMethod(t, 5, func(a *bytecode.Assembler) {
		a.ILoad(1).ILoad(2).Op(bytecode.Iadd).IStore(3).Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternSparse)}
	p, err := l.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	// Instructions land on even nodes 0,2,4,...; span = 2n-1 nodes.
	want := (2*len(m.Code) - 1)
	if p.MaxNode != want {
		t.Errorf("MaxNode = %d, want %d", p.MaxNode, want)
	}
	if r := p.Ratio(); r < 1.5 || r > 2.0 {
		t.Errorf("sparse ratio = %v, want ≈2", r)
	}
}

func TestLoaderHeteroGreedy(t *testing.T) {
	m := testMethod(t, 3, func(a *bytecode.Assembler) {
		a.DLoad(0).DLoad(1). // arith nodes (local reads)
					Op(bytecode.Dmul).  // float node
					DStore(2).          // arith node
					Op(bytecode.Return) // control node
	})
	l := &Loader{Fabric: NewFabric(10, PatternHetero)}
	p, err := l.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	f := l.Fabric
	for i, in := range m.Code {
		k := f.Kind(p.NodeOf[i])
		if !k.Accepts(in.Group()) {
			t.Errorf("instruction %d (%s) on incompatible %s node", i, in.Op, k)
		}
	}
	// Two instructions of the same kind must not share a node.
	seen := make(map[int]bool)
	for _, n := range p.NodeOf {
		if seen[n] {
			t.Fatalf("node %d hosts two instructions", n)
		}
		seen[n] = true
	}
	if p.Ratio() <= 1.0 {
		t.Errorf("hetero ratio = %v, want > 1", p.Ratio())
	}
}

func TestLoaderRejectsSwitchMethods(t *testing.T) {
	m := testMethod(t, 1, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Switch(map[int64]string{1: "x"}, "x").
			Label("x").Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	if _, err := l.Load(m); err == nil {
		t.Fatal("switch method should be rejected (GPP execution)")
	}
}

func TestResolveFigure21Example(t *testing.T) {
	// The Figure 21 walkthrough: iload_1 iload_2 iload_3 iadd iadd istore_4
	// return. The second message from the first iadd must climb past
	// already-satisfied producers to reach iload_1.
	m := testMethod(t, 5, func(a *bytecode.Assembler) {
		a.ILoad(1).ILoad(2).ILoad(3).Op(bytecode.Iadd).Op(bytecode.Iadd).
			Local(bytecode.Istore, 4).Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	p, err := l.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	wantTargets := map[int]Target{
		0: {4, 1}, // iload_1 feeds the second iadd, side 1
		1: {3, 1},
		2: {3, 2},
		3: {4, 2},
		4: {5, 1},
	}
	for prod, want := range wantTargets {
		if len(r.Targets[prod]) != 1 || r.Targets[prod][0] != want {
			t.Errorf("producer %d targets %+v, want [%+v]", prod, r.Targets[prod], want)
		}
	}
	if r.Merges != 0 || r.BackMerges != 0 {
		t.Errorf("merges=%d back=%d, want 0", r.Merges, r.BackMerges)
	}
	if r.Cycles < 2*len(m.Code) {
		t.Errorf("cycles = %d, want >= 2N", r.Cycles)
	}
}

func TestResolveMergeBranchIDs(t *testing.T) {
	// Figure 22's shape: both arms push a value consumed at the join.
	m := testMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Branch(bytecode.Ifeq, "else").
			Op(bytecode.Iconst1).
			Branch(bytecode.Goto, "join").
			Label("else").
			Op(bytecode.Iconst2).
			Label("join").
			IStore(1).
			Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	p, _ := l.Load(m)
	r, err := Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges != 1 {
		t.Errorf("merges = %d, want 1", r.Merges)
	}
	if len(r.Targets[2]) != 1 || r.Targets[2][0] != (Target{5, 1}) {
		t.Errorf("then-arm targets = %+v", r.Targets[2])
	}
	if len(r.Targets[4]) != 1 || r.Targets[4][0] != (Target{5, 1}) {
		t.Errorf("else-arm targets = %+v", r.Targets[4])
	}
}

// Resolution must agree exactly with the independent static dataflow
// analysis across the whole corpus — the distributed protocol and the
// abstract interpretation compute the same arc set.
func TestResolveMatchesDataflowAnalysis(t *testing.T) {
	methods := workload.NamedMethods()
	for _, c := range workload.Generate(workload.GenConfig{Seed: 23, Count: 300}) {
		for _, m := range c.Methods {
			methods = append(methods, m)
		}
	}
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	checked := 0
	for _, m := range methods {
		p, err := l.Load(m)
		if err != nil {
			// switch/jsr methods are legitimately excluded
			continue
		}
		r, err := Resolve(p)
		if err != nil {
			t.Fatalf("%s: %v", m.Signature(), err)
		}
		an, err := dataflow.Analyze(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Signature(), err)
		}
		got := make(map[dataflow.Arc]bool)
		for prod, targets := range r.Targets {
			for _, tg := range targets {
				got[dataflow.Arc{Producer: prod, Consumer: tg.Consumer, Side: tg.Side}] = true
			}
		}
		if len(got) != len(an.Arcs) {
			t.Fatalf("%s: resolver found %d arcs, analysis %d", m.Signature(), len(got), len(an.Arcs))
		}
		for _, arc := range an.Arcs {
			if !got[arc] {
				t.Fatalf("%s: analysis arc %+v missing from resolution", m.Signature(), arc)
			}
		}
		if r.BackMerges != an.BackMerges {
			t.Fatalf("%s: back merges %d vs %d", m.Signature(), r.BackMerges, an.BackMerges)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d methods cross-checked", checked)
	}
}

func TestResolveCyclesApproxTwiceInstructions(t *testing.T) {
	// Table 7: total resolution cycles ≈ 2× the instruction count.
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	var cycles, insts int
	for _, m := range workload.NamedMethods() {
		p, err := l.Load(m)
		if err != nil {
			continue
		}
		r, err := Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		cycles += r.Cycles
		insts += len(m.Code)
	}
	ratio := float64(cycles) / float64(insts)
	if ratio < 1.9 || ratio > 2.4 {
		t.Errorf("resolution cycles / instructions = %.3f, want ≈2 (Table 7)", ratio)
	}
}

func TestResolveQueueDepths(t *testing.T) {
	// Table 11: Max Q Up mean ≈ 3, max ≈ 11 across Filter-1 methods.
	l := &Loader{Fabric: NewFabric(10, PatternCompact)}
	var maxes []int
	for _, m := range workload.NamedMethods() {
		if !dataflow.InFilter1(len(m.Code)) {
			continue
		}
		p, err := l.Load(m)
		if err != nil {
			continue
		}
		r, err := Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		maxes = append(maxes, r.MaxQUp)
	}
	if len(maxes) == 0 {
		t.Fatal("no methods measured")
	}
	var sum int
	for _, v := range maxes {
		sum += v
	}
	mean := float64(sum) / float64(len(maxes))
	if mean < 1.5 || mean > 10 {
		t.Errorf("mean MaxQUp = %.2f, want small (paper: 3.03)", mean)
	}
}

// A fabric with too few nodes must reject methods cleanly (the capacity
// failure the GPP falls back from by interpreting the method itself).
func TestLoaderCapacityExhaustion(t *testing.T) {
	m := testMethod(t, 3, func(a *bytecode.Assembler) {
		for i := 0; i < 30; i++ {
			a.ILoad(0).ILoad(1).Op(bytecode.Iadd).IStore(2)
		}
		a.Op(bytecode.Return)
	})
	l := &Loader{Fabric: NewFabric(10, PatternCompact), MaxNodes: 16}
	_, err := l.Load(m)
	var le *LoadError
	if err == nil {
		t.Fatal("expected capacity failure")
	}
	if !asLoadErr(err, &le) {
		t.Fatalf("want *LoadError, got %T: %v", err, err)
	}
}

func asLoadErr(err error, target **LoadError) bool {
	le, ok := err.(*LoadError)
	if ok {
		*target = le
	}
	return ok
}

// A heterogeneous fabric with no float nodes cannot host float methods.
func TestLoaderKindExhaustion(t *testing.T) {
	m := testMethod(t, 2, func(a *bytecode.Assembler) {
		a.DLoad(0).DLoad(1).Op(bytecode.Dmul).DStore(0).Op(bytecode.Return)
	})
	noFloat := []NodeKind{KindArith, KindStorage, KindControl}
	l := &Loader{Fabric: NewFabric(10, noFloat), MaxNodes: 1000}
	if _, err := l.Load(m); err == nil {
		t.Fatal("expected failure: no float-capable nodes")
	}
}
