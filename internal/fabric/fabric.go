// Package fabric implements the JavaFlow DataFlow Fabric: the tiled grid of
// Instruction Nodes connected by the ordered Serial Networks (method
// loading, address resolution, token bundles) and the X-Y routed Mesh
// Network (producer/consumer operand transfers), plus the interfaces to the
// Memory subsystem and the General Purpose Processor (Chapter 4 and
// Chapter 6 of the dissertation).
//
// The load-bearing invariant is that greedy loading is deterministic:
// the same method on the same geometry produces the same Placement and
// Resolution everywhere, and a method the fabric cannot host fails with
// a typed LoadError that is itself a stable, cacheable result — dispatch
// treats it as an answer (every node agrees), never as a reason to retry.
package fabric

import (
	"fmt"

	"javaflow/internal/bytecode"
)

// NodeKind is the hardware flavour of an Instruction Node in a
// heterogeneous fabric (Section 4.2: "for each 10 Instruction Nodes, 6
// could be general purpose logic/arithmetic, 1 floating point, 2 storage,
// 1 control").
type NodeKind uint8

const (
	// KindUniversal accepts every instruction (homogeneous fabrics).
	KindUniversal NodeKind = iota
	// KindArith hosts integer/logical arithmetic, moves, and register ops.
	KindArith
	// KindFloat hosts floating-point arithmetic and conversions.
	KindFloat
	// KindStorage hosts memory instructions and owns a ring interface to
	// the Storage subsystem.
	KindStorage
	// KindControl hosts jumps, calls, returns and GPP-serviced specials.
	KindControl
	// KindBlank is an empty site (the Sparse2 configuration separates
	// every Instruction Node with one of these).
	KindBlank
)

func (k NodeKind) String() string {
	switch k {
	case KindUniversal:
		return "universal"
	case KindArith:
		return "arith"
	case KindFloat:
		return "float"
	case KindStorage:
		return "storage"
	case KindControl:
		return "control"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Accepts reports whether a node of this kind can host an instruction of
// the given group.
func (k NodeKind) Accepts(g bytecode.Group) bool {
	switch k {
	case KindUniversal:
		return true
	case KindBlank:
		return false
	case KindArith:
		switch g {
		case bytecode.GroupMove, bytecode.GroupIntArith,
			bytecode.GroupLocalRead, bytecode.GroupLocalWrite, bytecode.GroupLocalInc:
			return true
		}
	case KindFloat:
		switch g {
		case bytecode.GroupFloatArith, bytecode.GroupFloatConv:
			return true
		}
	case KindStorage:
		switch g {
		case bytecode.GroupMemConst, bytecode.GroupMemRead, bytecode.GroupMemWrite:
			return true
		}
	case KindControl:
		switch g {
		case bytecode.GroupControl, bytecode.GroupCall,
			bytecode.GroupReturn, bytecode.GroupSpecial:
			return true
		}
	}
	return false
}

// KindFor returns the heterogeneous node kind that hosts a group.
func KindFor(g bytecode.Group) NodeKind {
	switch g {
	case bytecode.GroupMove, bytecode.GroupIntArith,
		bytecode.GroupLocalRead, bytecode.GroupLocalWrite, bytecode.GroupLocalInc:
		return KindArith
	case bytecode.GroupFloatArith, bytecode.GroupFloatConv:
		return KindFloat
	case bytecode.GroupMemConst, bytecode.GroupMemRead, bytecode.GroupMemWrite:
		return KindStorage
	default:
		return KindControl
	}
}

// Patterns for the studied configurations (Table 15, Figure 26).
var (
	// PatternCompact is the homogeneous fabric: every node hosts anything.
	PatternCompact = []NodeKind{KindUniversal}
	// PatternSparse interleaves blank sites between Instruction Nodes.
	PatternSparse = []NodeKind{KindUniversal, KindBlank}
	// PatternHetero is the Figure 26 static-mix row: 6 arithmetic, 1
	// floating point, 2 storage, 1 control per 10 nodes, spread so that
	// scarce kinds sit mid-row.
	PatternHetero = []NodeKind{
		KindArith, KindArith, KindStorage, KindArith, KindFloat,
		KindArith, KindControl, KindArith, KindStorage, KindArith,
	}
)

// Fabric describes one DataFlow Fabric geometry: a Width-wide grid whose
// nodes follow a repeating kind pattern along the serial (row-major) order.
type Fabric struct {
	// Width is the mesh width in nodes (the paper's studied segment is 10
	// wide).
	Width int
	// Pattern repeats along the serial order to type each node.
	Pattern []NodeKind
	// Collapsed marks the Baseline machine: every mesh transfer is a
	// single hop and serial distances vanish (Section 7.3, "Baseline
	// configuration").
	Collapsed bool
}

// NewFabric builds a fabric description.
func NewFabric(width int, pattern []NodeKind) *Fabric {
	if width <= 0 {
		width = 10
	}
	if len(pattern) == 0 {
		pattern = PatternCompact
	}
	return &Fabric{Width: width, Pattern: pattern}
}

// Kind returns the node kind at serial position n.
func (f *Fabric) Kind(n int) NodeKind {
	return f.Pattern[n%len(f.Pattern)]
}

// Position maps a serial node index to mesh (x, y) coordinates. The serial
// network snakes row-major through the grid.
func (f *Fabric) Position(n int) (x, y int) {
	return n % f.Width, n / f.Width
}

// MeshDistance is the X-Y routed hop count between two node positions
// (one mesh cycle per hop, Figure 25). The Baseline machine collapses all
// transfers to a single hop.
func (f *Fabric) MeshDistance(a, b int) int {
	if f.Collapsed || a == b {
		return 1
	}
	ax, ay := f.Position(a)
	bx, by := f.Position(b)
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	if dx+dy == 0 {
		return 1
	}
	return dx + dy
}

// SerialDistance is the number of serial hops between two node positions
// along the ordered network (one serial clock per hop).
func (f *Fabric) SerialDistance(a, b int) int {
	if f.Collapsed {
		return 1
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 1
	}
	return d
}
