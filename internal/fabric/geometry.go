package fabric

import "strconv"

// geometryLetters maps node kinds to the single-letter codes GeometryKey
// renders patterns with.
var geometryLetters = [...]byte{
	KindUniversal: 'U',
	KindArith:     'A',
	KindFloat:     'F',
	KindStorage:   'S',
	KindControl:   'C',
	KindBlank:     'B',
}

// GeometryKey renders the fabric's structural identity — width, collapsed
// flag, and node pattern — as a short stable string, e.g. "w10:UB" for the
// Sparse pattern or "w10!:U" for the collapsed Baseline. Two fabrics with
// equal keys place and resolve every method identically, so the key is
// what deployment caches and persistent result stores index by: the
// studied Compact10/Compact4/Compact2 configurations differ only in serial
// clocking and share one key (and therefore one placement).
func (f *Fabric) GeometryKey() string {
	if f == nil {
		return "nil"
	}
	buf := make([]byte, 0, 8+len(f.Pattern))
	buf = append(buf, 'w')
	buf = strconv.AppendInt(buf, int64(f.Width), 10)
	if f.Collapsed {
		buf = append(buf, '!')
	}
	buf = append(buf, ':')
	for _, k := range f.Pattern {
		if int(k) < len(geometryLetters) {
			buf = append(buf, geometryLetters[k])
		} else {
			buf = append(buf, 'k')
			buf = strconv.AppendInt(buf, int64(k), 10)
		}
	}
	return string(buf)
}
