package classfile

import (
	"fmt"

	"javaflow/internal/bytecode"
)

// VerifyError describes a verification failure at a specific instruction.
type VerifyError struct {
	Method string
	Index  int
	Reason string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("verify %s: instruction %d: %s", e.Method, e.Index, e.Reason)
}

// Verify performs the Preparation/Verification steps the General Purpose
// Processor must run before a method may be loaded into the DataFlow Fabric
// (Section 6.2): every instruction is reachable with a single consistent
// stack depth from all predecessors (the JVM restriction of Figure 9),
// stack depth never goes negative or exceeds a bound, local register
// accesses stay within MaxLocals, all call sites are signature-resolved,
// and branch targets are in range. On success it fills in m.MaxStack.
func Verify(m *Method) error {
	if len(m.Code) == 0 {
		return &VerifyError{m.Signature(), 0, "empty code"}
	}
	if m.ParamRegisters() > m.MaxLocals {
		return &VerifyError{m.Signature(), 0,
			fmt.Sprintf("parameters need %d registers but MaxLocals is %d", m.ParamRegisters(), m.MaxLocals)}
	}

	const unvisited = -1
	depthAt := make([]int, len(m.Code))
	for i := range depthAt {
		depthAt[i] = unvisited
	}

	type workItem struct{ idx, depth int }
	work := []workItem{{0, 0}}
	maxDepth := 0

	push := func(idx, depth int) error {
		if idx < 0 || idx >= len(m.Code) {
			return fmt.Errorf("branch target %d out of range", idx)
		}
		if prev := depthAt[idx]; prev != unvisited {
			if prev != depth {
				return fmt.Errorf("inconsistent stack depth at merge: %d vs %d (invalid per JVM rule, Figure 9)", prev, depth)
			}
			return nil
		}
		depthAt[idx] = depth
		work = append(work, workItem{idx, depth})
		return nil
	}
	depthAt[0] = 0

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[item.idx]

		if in.Pop == bytecode.VarPop {
			return &VerifyError{m.Signature(), item.idx,
				fmt.Sprintf("%s has unresolved signature (GPP resolution step missing)", in.Op)}
		}
		if reg, ok := in.LocalIndex(); ok && reg >= m.MaxLocals {
			return &VerifyError{m.Signature(), item.idx,
				fmt.Sprintf("register %d out of range (MaxLocals %d)", reg, m.MaxLocals)}
		}
		after := item.depth - in.Pop
		if after < 0 {
			return &VerifyError{m.Signature(), item.idx,
				fmt.Sprintf("%s pops %d with only %d on stack", in.Op, in.Pop, item.depth)}
		}
		after += in.Push
		if after > maxDepth {
			maxDepth = after
		}

		// Successors. jsr/ret need subroutine-aware treatment: the
		// subroutine entry sees the pushed return address; the jsr
		// fall-through resumes at the depth before the jsr (the
		// subroutine consumes the address and preserves the stack).
		if in.Op == bytecode.Jsr || in.Op == bytecode.JsrW {
			if err := push(in.Target, after); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
			if item.idx+1 >= len(m.Code) {
				return &VerifyError{m.Signature(), item.idx, "control flow falls off method end"}
			}
			if err := push(item.idx+1, item.depth); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
			continue
		}
		if in.Op == bytecode.Ret {
			continue // successor is dynamic (the captured return address)
		}
		if in.IsReturn() {
			if in.Op != bytecode.Return && in.Op != bytecode.Athrow && after != 0 {
				// value-returning forms consume their operand via Pop;
				// the stack must be clean afterwards in our single-method
				// model. (The architected JVM discards leftovers; the
				// fabric has no way to, so the corpus keeps stacks clean.)
				return &VerifyError{m.Signature(), item.idx,
					fmt.Sprintf("stack not empty (%d) at %s", after, in.Op)}
			}
			continue
		}
		switch {
		case in.Op == bytecode.Goto || in.Op == bytecode.GotoW:
			if err := push(in.Target, after); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
		case in.Op == bytecode.Lookupswitch || in.Op == bytecode.Tableswitch:
			if err := push(in.Target, after); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
			for _, t := range in.SwitchTargets {
				if err := push(t, after); err != nil {
					return &VerifyError{m.Signature(), item.idx, err.Error()}
				}
			}
		case in.IsBranch():
			if err := push(in.Target, after); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
			fallthrough
		default:
			if item.idx+1 >= len(m.Code) {
				return &VerifyError{m.Signature(), item.idx, "control flow falls off method end"}
			}
			if err := push(item.idx+1, after); err != nil {
				return &VerifyError{m.Signature(), item.idx, err.Error()}
			}
		}
	}

	for i, d := range depthAt {
		if d == unvisited {
			return &VerifyError{m.Signature(), i, "unreachable instruction"}
		}
	}
	if m.MaxStack != 0 && maxDepth > m.MaxStack {
		return &VerifyError{m.Signature(), 0,
			fmt.Sprintf("computed max stack %d exceeds declared %d", maxDepth, m.MaxStack)}
	}
	// Skip the no-op rewrite on re-verification: corpus methods are
	// verified (and stamped) serially at construction, but deployment
	// re-verifies them from worker goroutines — possibly the same method
	// concurrently on two fabric geometries — and an unconditional write
	// of the identical value is still a data race.
	if m.MaxStack != maxDepth {
		m.MaxStack = maxDepth
	}
	return nil
}

// EntryDepths returns the verified stack depth at entry to each instruction.
// The DataFlow address-resolution process depends on these depths being
// single-valued; the static analysis package uses them to enumerate
// producer/consumer arcs.
func EntryDepths(m *Method) ([]int, error) {
	if err := Verify(m); err != nil {
		return nil, err
	}
	depths := make([]int, len(m.Code))
	for i := range depths {
		depths[i] = -1
	}
	depths[0] = 0
	type workItem struct{ idx, depth int }
	work := []workItem{{0, 0}}
	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[item.idx]
		after := item.depth - in.Pop + in.Push
		visit := func(idx int) {
			if depths[idx] == -1 {
				depths[idx] = after
				work = append(work, workItem{idx, after})
			}
		}
		if in.IsReturn() || in.Op == bytecode.Ret {
			continue
		}
		switch {
		case in.Op == bytecode.Jsr || in.Op == bytecode.JsrW:
			visit(in.Target)
			if depths[item.idx+1] == -1 {
				depths[item.idx+1] = item.depth
				work = append(work, workItem{item.idx + 1, item.depth})
			}
		case in.Op == bytecode.Goto || in.Op == bytecode.GotoW:
			visit(in.Target)
		case in.Op == bytecode.Lookupswitch || in.Op == bytecode.Tableswitch:
			visit(in.Target)
			for _, t := range in.SwitchTargets {
				visit(t)
			}
		case in.IsBranch():
			visit(in.Target)
			visit(item.idx + 1)
		default:
			visit(item.idx + 1)
		}
	}
	return depths, nil
}
