package classfile

import (
	"strings"
	"testing"

	"javaflow/internal/bytecode"
)

func asm(t *testing.T, build func(a *bytecode.Assembler)) []bytecode.Instruction {
	t.Helper()
	a := bytecode.NewAssembler()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return code
}

func simpleMethod(t *testing.T, maxLocals int, build func(a *bytecode.Assembler)) *Method {
	t.Helper()
	return &Method{
		Class: "Test", Name: "m", MaxLocals: maxLocals,
		Code: asm(t, build), Pool: NewConstantPool(),
	}
}

func TestConstantPool(t *testing.T) {
	p := NewConstantPool()
	i1 := p.AddInt(42)
	i2 := p.AddDouble(3.5)
	i3 := p.AddMethodRef(MethodRef{Class: "C", Name: "f", Argc: 2, ReturnsValue: true})
	i4 := p.AddFieldRef(FieldRef{Class: "C", Name: "x", Slot: 1})
	if i1 != 1 || i2 != 2 || i3 != 3 || i4 != 4 {
		t.Fatalf("indices = %d %d %d %d, want 1..4 (index 0 reserved)", i1, i2, i3, i4)
	}
	c, err := p.At(i2)
	if err != nil || c.Kind != ConstDouble || c.F != 3.5 {
		t.Errorf("At(%d) = %+v, %v", i2, c, err)
	}
	if _, err := p.At(0); err == nil {
		t.Error("At(0) should fail: index 0 is reserved")
	}
	if _, err := p.At(99); err == nil {
		t.Error("At(99) should fail")
	}
	argc, rv, err := p.CallEffect(i3)
	if err != nil || argc != 2 || !rv {
		t.Errorf("CallEffect = (%d,%v,%v), want (2,true,nil)", argc, rv, err)
	}
	if _, _, err := p.CallEffect(i1); err == nil {
		t.Error("CallEffect on int constant should fail")
	}
}

func TestVerifyComputesMaxStack(t *testing.T) {
	m := simpleMethod(t, 4, func(a *bytecode.Assembler) {
		a.ILoad(0).ILoad(1).ILoad(2).Op(bytecode.Iadd).Op(bytecode.Iadd).
			IStore(3).Op(bytecode.Return)
	})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 3 {
		t.Errorf("MaxStack = %d, want 3", m.MaxStack)
	}
}

func TestVerifyRejectsUnderflow(t *testing.T) {
	m := simpleMethod(t, 1, func(a *bytecode.Assembler) {
		a.Op(bytecode.Iadd).Op(bytecode.Return)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "pops") {
		t.Fatalf("want underflow error, got %v", err)
	}
}

func TestVerifyRejectsInconsistentMerge(t *testing.T) {
	// One path pushes a value before the merge point, the other doesn't —
	// the exact Figure 9 invalid-stack example.
	m := simpleMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Branch(bytecode.Ifeq, "merge").
			Op(bytecode.Iconst1). // extra push on fall-through path
			Label("merge").
			Op(bytecode.Return)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "merge") {
		t.Fatalf("want merge-inconsistency error, got %v", err)
	}
}

func TestVerifyAcceptsConsistentMerge(t *testing.T) {
	m := simpleMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Branch(bytecode.Ifeq, "else").
			Op(bytecode.Iconst1).
			Branch(bytecode.Goto, "merge").
			Label("else").
			Op(bytecode.Iconst2).
			Label("merge").
			IStore(1).
			Op(bytecode.Return)
	})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 1 {
		t.Errorf("MaxStack = %d, want 1", m.MaxStack)
	}
}

func TestVerifyRejectsUnreachable(t *testing.T) {
	m := simpleMethod(t, 1, func(a *bytecode.Assembler) {
		a.Op(bytecode.Return).Op(bytecode.Nop)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

func TestVerifyRejectsRegisterOutOfRange(t *testing.T) {
	m := simpleMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(5).Op(bytecode.Pop).Op(bytecode.Return)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "register") {
		t.Fatalf("want register error, got %v", err)
	}
}

func TestVerifyRejectsFallOffEnd(t *testing.T) {
	m := simpleMethod(t, 1, func(a *bytecode.Assembler) {
		a.Op(bytecode.Nop)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("want fall-off error, got %v", err)
	}
}

func TestVerifyRejectsParamOverflow(t *testing.T) {
	m := simpleMethod(t, 1, func(a *bytecode.Assembler) {
		a.Op(bytecode.Return)
	})
	m.Argc = 3
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "MaxLocals") {
		t.Fatalf("want param-overflow error, got %v", err)
	}
}

func TestVerifyLoopBackBranch(t *testing.T) {
	m := simpleMethod(t, 2, func(a *bytecode.Assembler) {
		a.Label("loop").
			Iinc(1, 1).
			ILoad(1).
			PushInt(10).
			Branch(bytecode.IfIcmplt, "loop").
			Op(bytecode.Return)
	})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.MaxStack != 2 {
		t.Errorf("MaxStack = %d, want 2", m.MaxStack)
	}
}

func TestVerifyValueReturnNeedsCleanStack(t *testing.T) {
	m := simpleMethod(t, 1, func(a *bytecode.Assembler) {
		a.Op(bytecode.Iconst1).Op(bytecode.Iconst2).Op(bytecode.Ireturn)
	})
	err := Verify(m)
	if err == nil || !strings.Contains(err.Error(), "stack not empty") {
		t.Fatalf("want dirty-stack error, got %v", err)
	}
}

func TestEntryDepths(t *testing.T) {
	m := simpleMethod(t, 2, func(a *bytecode.Assembler) {
		a.ILoad(0). // depth 0 -> 1
				ILoad(1).           // 1 -> 2
				Op(bytecode.Iadd).  // 2 -> 1
				IStore(0).          // 1 -> 0
				Op(bytecode.Return) // 0
	})
	depths, err := EntryDepths(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1, 0}
	for i, w := range want {
		if depths[i] != w {
			t.Errorf("depth[%d] = %d, want %d", i, depths[i], w)
		}
	}
}

func TestClassRegistry(t *testing.T) {
	c := NewClass("Example")
	m := &Method{Name: "run", MaxLocals: 1, Pool: NewConstantPool()}
	c.Add(m)
	if m.Class != "Example" {
		t.Errorf("Add did not set class name: %q", m.Class)
	}
	got, err := c.Method("run")
	if err != nil || got != m {
		t.Errorf("Method lookup failed: %v", err)
	}
	if _, err := c.Method("missing"); err == nil {
		t.Error("expected error for missing method")
	}
}

func TestMethodSignature(t *testing.T) {
	m := &Method{Class: "A", Name: "f", Argc: 3, Instance: true}
	if got := m.Signature(); got != "A.f/3" {
		t.Errorf("Signature = %q", got)
	}
	if m.ParamRegisters() != 4 {
		t.Errorf("ParamRegisters = %d, want 4 (receiver + 3 args)", m.ParamRegisters())
	}
}
