// Package classfile models the subset of the Java ClassFile structure that
// the JavaFlow machine consumes: methods (bytecode streams with known
// max-stack/max-locals), the Constant Pool, and field/method references
// resolved to direct offsets by the General Purpose Processor's
// preparation/verification/resolution steps (Section 6.2).
//
// The load-bearing invariant is signature stability: Method.Signature is
// the fleet-wide addressing key — dispatch routes by it, the store keys
// records by it (plus the body hash), and replication dedups by it — so
// it must be a pure function of the method's identity, identical on
// every node serving the same corpus.
package classfile

import (
	"fmt"

	"javaflow/internal/bytecode"
)

// ConstKind discriminates constant-pool entries.
type ConstKind uint8

const (
	ConstInvalid ConstKind = iota
	ConstInt
	ConstLong
	ConstFloat
	ConstDouble
	ConstString
	ConstFieldRef
	ConstMethodRef
	ConstClassRef
)

func (k ConstKind) String() string {
	switch k {
	case ConstInt:
		return "int"
	case ConstLong:
		return "long"
	case ConstFloat:
		return "float"
	case ConstDouble:
		return "double"
	case ConstString:
		return "string"
	case ConstFieldRef:
		return "fieldref"
	case ConstMethodRef:
		return "methodref"
	case ConstClassRef:
		return "classref"
	default:
		return "invalid"
	}
}

// FieldRef is a field reference after the Resolution step: a direct slot
// offset into either the class static area (Method Area) or the instance
// data on the Heap. The _Quick instruction forms carry the pool index of one
// of these (Figure 10).
type FieldRef struct {
	Class  string
	Name   string
	Static bool
	Slot   int
}

// MethodRef is a call-site reference with its signature information, which
// the GPP uses to resolve the pop count of invoke instructions before
// loading a method into the fabric.
type MethodRef struct {
	Class        string
	Name         string
	Argc         int // declared arguments, excluding any receiver
	Instance     bool
	ReturnsValue bool
}

// Signature renders the canonical "Class.Name/argc" form used in reports.
func (r MethodRef) Signature() string {
	return fmt.Sprintf("%s.%s/%d", r.Class, r.Name, r.Argc)
}

// Constant is one constant-pool entry.
type Constant struct {
	Kind   ConstKind
	I      int64
	F      float64
	S      string
	Field  FieldRef
	Method MethodRef
}

// ConstantPool is the per-class constant pool. Index 0 is reserved (as in
// the architected class file), so the first added entry has index 1.
type ConstantPool struct {
	entries []Constant
}

// NewConstantPool returns a pool with the reserved zero entry.
func NewConstantPool() *ConstantPool {
	return &ConstantPool{entries: make([]Constant, 1)}
}

func (p *ConstantPool) add(c Constant) int {
	p.entries = append(p.entries, c)
	return len(p.entries) - 1
}

// AddInt adds an integer constant and returns its index.
func (p *ConstantPool) AddInt(v int64) int {
	return p.add(Constant{Kind: ConstInt, I: v})
}

// AddLong adds a long constant (loaded with ldc2_w).
func (p *ConstantPool) AddLong(v int64) int {
	return p.add(Constant{Kind: ConstLong, I: v})
}

// AddFloat adds a float constant.
func (p *ConstantPool) AddFloat(v float64) int {
	return p.add(Constant{Kind: ConstFloat, F: v})
}

// AddDouble adds a double constant (loaded with ldc2_w).
func (p *ConstantPool) AddDouble(v float64) int {
	return p.add(Constant{Kind: ConstDouble, F: v})
}

// AddString adds a string constant.
func (p *ConstantPool) AddString(s string) int {
	return p.add(Constant{Kind: ConstString, S: s})
}

// AddFieldRef adds a resolved field reference.
func (p *ConstantPool) AddFieldRef(r FieldRef) int {
	return p.add(Constant{Kind: ConstFieldRef, Field: r})
}

// AddMethodRef adds a method reference.
func (p *ConstantPool) AddMethodRef(r MethodRef) int {
	return p.add(Constant{Kind: ConstMethodRef, Method: r})
}

// Len returns the number of entries including the reserved zero entry.
func (p *ConstantPool) Len() int { return len(p.entries) }

// At returns entry i.
func (p *ConstantPool) At(i int) (Constant, error) {
	if i <= 0 || i >= len(p.entries) {
		return Constant{}, fmt.Errorf("constant pool index %d out of range [1,%d)", i, len(p.entries))
	}
	return p.entries[i], nil
}

// CallEffect implements bytecode.SignatureResolver over the pool.
func (p *ConstantPool) CallEffect(cpIndex int) (int, bool, error) {
	c, err := p.At(cpIndex)
	if err != nil {
		return 0, false, err
	}
	if c.Kind != ConstMethodRef {
		return 0, false, fmt.Errorf("constant %d is %s, not a method ref", cpIndex, c.Kind)
	}
	return c.Method.Argc, c.Method.ReturnsValue, nil
}

var _ bytecode.SignatureResolver = (*ConstantPool)(nil)

// Method is a verified, resolution-complete Java method ready for either
// interpretation or deployment to the DataFlow Fabric.
type Method struct {
	Class string
	Name  string

	// Argc is the number of declared arguments (excluding the receiver).
	Argc int
	// Instance methods receive their heap reference in local register 0.
	Instance bool
	// ReturnsValue reports whether the method pushes a result for its
	// caller.
	ReturnsValue bool

	// MaxLocals and MaxStack are fixed at compile time — a property of the
	// JVM the JavaFlow machine relies on to size fabric state (Section 3.6
	// item 2).
	MaxLocals int
	MaxStack  int

	Code []bytecode.Instruction
	Pool *ConstantPool
}

// ParamRegisters is the number of local registers consumed by parameters
// (receiver plus declared arguments; every value is one register in the
// single-slot model).
func (m *Method) ParamRegisters() int {
	n := m.Argc
	if m.Instance {
		n++
	}
	return n
}

// Ref returns the method's own reference record.
func (m *Method) Ref() MethodRef {
	return MethodRef{
		Class: m.Class, Name: m.Name, Argc: m.Argc,
		Instance: m.Instance, ReturnsValue: m.ReturnsValue,
	}
}

// Signature renders "Class.Name/argc".
func (m *Method) Signature() string { return m.Ref().Signature() }

// Class groups methods and static field slots, standing in for the loaded
// ClassFile plus its Method Area allocation.
type Class struct {
	Name        string
	Methods     map[string]*Method
	StaticSlots int
	// InstanceSlots sizes objects instantiated from this class.
	InstanceSlots int
	// order remembers Add insertion order so MethodNames is deterministic
	// without re-sorting on every traversal.
	order []string
}

// NewClass returns an empty class.
func NewClass(name string) *Class {
	return &Class{Name: name, Methods: make(map[string]*Method)}
}

// Add registers a method with the class, setting its Class name.
func (c *Class) Add(m *Method) *Class {
	m.Class = c.Name
	if _, exists := c.Methods[m.Name]; !exists {
		c.order = append(c.order, m.Name)
	}
	c.Methods[m.Name] = m
	return c
}

// MethodNames returns the method names in insertion order. Builders that add
// methods in a canonical order (the generated corpus adds m0000, m0001, ...)
// get deterministic traversal without re-sorting the map on every call.
func (c *Class) MethodNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Method looks up a method by bare name.
func (c *Class) Method(name string) (*Method, error) {
	m, ok := c.Methods[name]
	if !ok {
		return nil, fmt.Errorf("class %s has no method %s", c.Name, name)
	}
	return m, nil
}
