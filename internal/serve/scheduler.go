package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/obs"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// Job is one unit of schedulable work: execute one method on one
// configuration under both branch policies.
type Job struct {
	Config sim.Config
	Method *classfile.Method
}

// JobResult pairs a job with its outcome. Exactly one of Run/Err is
// meaningful; Err carries *fabric.LoadError for methods the fabric
// rejects and ctx.Err() for jobs cancelled before they started.
type JobResult struct {
	Job Job
	Run sim.MethodRun
	Err error
}

// SchedulerOptions configures a Scheduler.
type SchedulerOptions struct {
	// Workers bounds the worker pool (<=0 uses GOMAXPROCS).
	Workers int
	// Cache shares deployments across jobs (nil builds a private cache
	// with the default capacity).
	Cache *DeploymentCache
	// Metrics receives per-job accounting (nil allocates a fresh one).
	Metrics *Metrics
	// MaxMeshCycles bounds each simulated execution — the per-job timeout
	// in simulated time (<=0 uses sim.DefaultMaxMeshCycles).
	MaxMeshCycles int
	// Store persists completed MethodRuns and deployment outcomes across
	// process lives (nil disables persistence). The scheduler reads
	// through it before executing and writes results behind; it also
	// threads the store under the deployment cache.
	Store *store.Store
}

// BatchRunner is the RunBatch-shaped seam between the HTTP surface and
// whatever executes jobs: the process-local Scheduler, or a dispatcher
// fanning jobs across remote jfserved instances (internal/dispatch).
// Implementations must fill one result per job in submission order and,
// when emit is non-nil, deliver each completed result exactly once in
// submission order as the batch progresses.
type BatchRunner interface {
	// RunBatchCycles executes jobs with the given per-execution mesh-cycle
	// bound (0 = implementation default) and returns one result per job in
	// submission order.
	RunBatchCycles(ctx context.Context, jobs []Job, maxCycles int) []JobResult
	// RunBatchStream is RunBatchCycles with incremental delivery: emit is
	// called once per job, in submission order, as soon as that job and
	// every earlier one have completed.
	RunBatchStream(ctx context.Context, jobs []Job, maxCycles int, emit func(i int, r JobResult)) []JobResult
}

// Scheduler fans simulation jobs across a bounded goroutine pool, routing
// every deployment through a shared DeploymentCache. Results are returned
// in submission order regardless of completion order, so batch output is
// deterministic and byte-identical to the serial sim.Runner path.
type Scheduler struct {
	workers       int
	maxMeshCycles int
	cache         *DeploymentCache
	metrics       *Metrics
	store         *store.Store
}

// NewScheduler builds a scheduler from opts.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewDeploymentCache(0)
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}
	maxCycles := opts.MaxMeshCycles
	if maxCycles <= 0 {
		maxCycles = sim.DefaultMaxMeshCycles
	}
	if opts.Store != nil {
		cache.SetStore(opts.Store)
		opts.Store.RegisterMetrics(metrics.Registry())
	}
	registerCacheMetrics(metrics.Registry(), cache)
	return &Scheduler{
		workers:       workers,
		maxMeshCycles: maxCycles,
		cache:         cache,
		metrics:       metrics,
		store:         opts.Store,
	}
}

// registerCacheMetrics exposes the deployment cache's counters in the
// node registry. Re-registration over a shared cache replaces the
// readers, so two schedulers over one cache never duplicate series.
func registerCacheMetrics(reg *obs.Registry, cache *DeploymentCache) {
	reg.CounterFunc("javaflow_cache_hits_total", "Deployment-cache hits.",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.CounterFunc("javaflow_cache_misses_total", "Deployment-cache misses.",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.CounterFunc("javaflow_cache_store_hits_total", "Cache misses answered by the persistent store.",
		func() float64 { return float64(cache.Stats().StoreHits) })
	reg.CounterFunc("javaflow_cache_evictions_total", "Deployment-cache evictions.",
		func() float64 { return float64(cache.Stats().Evictions) })
	reg.GaugeFunc("javaflow_cache_entries", "Deployments currently cached.",
		func() float64 { return float64(cache.Stats().Entries) })
}

// Cache exposes the scheduler's deployment cache.
func (s *Scheduler) Cache() *DeploymentCache { return s.cache }

// Workers returns the worker-pool bound batches fan out over.
func (s *Scheduler) Workers() int { return s.workers }

// Metrics exposes the scheduler's metrics collector.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Store exposes the scheduler's persistent result store (nil when the
// scheduler runs memory-only).
func (s *Scheduler) Store() *store.Store { return s.store }

// MaxMeshCycles returns the scheduler's default per-execution mesh-cycle
// bound — what a job with no explicit bound runs under. Dispatch fronts
// resolve this before fanning jobs out so every backend simulates (and
// keys its store records by) the same bound.
func (s *Scheduler) MaxMeshCycles() int { return s.maxMeshCycles }

// Snapshot captures the metrics counters together with the cache and
// store statistics — the GET /metrics payload.
func (s *Scheduler) Snapshot() MetricsSnapshot {
	return s.metrics.Snapshot(s.cache, s.store)
}

// runner builds the per-call runner routed through the cache. The context
// reaches the engine's mid-run preemption check, so cancelling a batch
// aborts even a single multimillion-cycle execution promptly.
func (s *Scheduler) runner(ctx context.Context, maxCycles int) *sim.Runner {
	if maxCycles <= 0 {
		maxCycles = s.maxMeshCycles
	}
	return &sim.Runner{
		MaxMeshCycles: maxCycles,
		Ctx:           ctx,
		Resolve: func(cfg sim.Config, m *classfile.Method) (*fabric.Resolution, error) {
			return s.cache.ResolveMethod(cfg, m)
		},
	}
}

// RunMethod executes one job synchronously through the cache (no pool).
func (s *Scheduler) RunMethod(ctx context.Context, cfg sim.Config, m *classfile.Method) (sim.MethodRun, error) {
	return s.RunMethodCycles(ctx, cfg, m, 0)
}

// RunMethodCycles is RunMethod with an explicit per-execution mesh-cycle
// bound overriding the scheduler default (0 keeps the default). It is the
// per-job entry point dispatch backends call directly.
func (s *Scheduler) RunMethodCycles(ctx context.Context, cfg sim.Config, m *classfile.Method, maxCycles int) (sim.MethodRun, error) {
	if err := ctx.Err(); err != nil {
		return sim.MethodRun{}, err
	}
	if maxCycles <= 0 {
		maxCycles = s.maxMeshCycles
	}
	start := s.metrics.JobStarted()
	ctx, span := s.metrics.Tracer().StartSpan(ctx, "job.run")
	span.SetAttr("config", cfg.Name)
	span.SetAttr("method", m.Signature())

	// Read through the persistent store: a run persisted by an earlier
	// process life (or another configuration sharing this geometry and
	// clocking) replaces the whole two-policy execution. The Config label
	// is re-stamped because the store key is geometry-based, making the
	// payload byte-identical to a cold run under this configuration.
	var key store.RunKey
	if s.store != nil {
		key = store.RunKeyFor(cfg, m, maxCycles)
		if run, ok := s.store.GetRun(key); ok {
			run.BP1.Config = cfg.Name
			run.BP2.Config = cfg.Name
			s.metrics.JobFinished(start, span.Context().TraceID, nil)
			span.SetAttr("outcome", "warm")
			span.End(nil)
			return run, nil
		}
	}

	run, err := s.runner(ctx, maxCycles).RunMethod(cfg, m)
	s.metrics.JobFinished(start, span.Context().TraceID, err)
	if err == nil && s.store != nil {
		s.store.PutRun(key, run)
	}
	span.SetAttr("outcome", jobOutcome(err))
	span.End(err)
	return run, err
}

// jobOutcome classifies a job error for span attributes: cold engine
// runs, fabric rejections, deadline sheds, cancellations, and
// everything else.
func jobOutcome(err error) string {
	if err == nil {
		return "cold"
	}
	var le *fabric.LoadError
	if errors.As(err, &le) {
		return "rejected"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return "error"
}

// RunBatch executes jobs across the worker pool and returns one result per
// job, in submission order. Cancelling ctx stops the pool: jobs already
// executing abort at the engine's next preemption check, jobs not yet
// started report ctx.Err().
func (s *Scheduler) RunBatch(ctx context.Context, jobs []Job) []JobResult {
	return s.RunBatchCycles(ctx, jobs, 0)
}

// RunBatchCycles is RunBatch with an explicit per-execution mesh-cycle
// bound overriding the scheduler default (0 keeps the default).
func (s *Scheduler) RunBatchCycles(ctx context.Context, jobs []Job, maxCycles int) []JobResult {
	return s.RunBatchStream(ctx, jobs, maxCycles, nil)
}

// RunBatchStream executes jobs across the worker pool, delivering each
// result through emit (when non-nil) in submission order as soon as it and
// every earlier job have completed — the seam POST /v1/batch?stream=ndjson
// flows through. The returned slice is the same submission-ordered result
// set RunBatch produces.
func (s *Scheduler) RunBatchStream(ctx context.Context, jobs []Job, maxCycles int, emit func(i int, r JobResult)) []JobResult {
	results := make([]JobResult, len(jobs))
	for i, j := range jobs {
		results[i].Job = j
	}
	if len(jobs) == 0 {
		return results
	}

	indexes := make(chan int)
	// completed is buffered for the whole batch so neither workers nor the
	// feeder ever block on the collector.
	completed := make(chan int, len(jobs))
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				run, err := s.RunMethodCycles(ctx, jobs[i].Config, jobs[i].Method, maxCycles)
				results[i].Run = run
				results[i].Err = err
				completed <- i
			}
		}()
	}
	go func() {
	feed:
		for i := range jobs {
			select {
			case indexes <- i:
			case <-ctx.Done():
				// Indexes from i on were never handed to a worker; jobs
				// that were already delivered stamp ctx.Err() themselves
				// via the per-job check in RunMethodCycles.
				for k := i; k < len(jobs); k++ {
					results[k].Err = ctx.Err()
					completed <- k
				}
				break feed
			}
		}
		close(indexes)
		wg.Wait()
		close(completed)
	}()

	// Collect completions and emit the contiguous prefix in order. Every
	// index arrives exactly once: from the worker that ran it, or from the
	// feeder for jobs cancelled before they were handed out.
	collectOrdered(results, completed, emit)
	return results
}

// collectOrdered drains completed indexes and, when emit is non-nil, calls
// it for each result in submission order as soon as that result and every
// earlier one are done. It returns once all len(results) indexes arrived.
func collectOrdered(results []JobResult, completed <-chan int, emit func(i int, r JobResult)) {
	done := make([]bool, len(results))
	next := 0
	for i := range completed {
		done[i] = true
		for next < len(results) && done[next] {
			if emit != nil {
				emit(next, results[next])
			}
			next++
		}
	}
}

// Sweep fans a full cross product (methods × configs) across the pool and
// returns results grouped by configuration, each group in method order —
// the batch-submission shape POST /v1/batch and the Chapter-7 table sweeps
// share.
func (s *Scheduler) Sweep(ctx context.Context, configs []sim.Config, methods []*classfile.Method) [][]JobResult {
	jobs := make([]Job, 0, len(configs)*len(methods))
	for _, cfg := range configs {
		for _, m := range methods {
			jobs = append(jobs, Job{Config: cfg, Method: m})
		}
	}
	flat := s.RunBatch(ctx, jobs)
	out := make([][]JobResult, len(configs))
	for i := range configs {
		out[i] = flat[i*len(methods) : (i+1)*len(methods)]
	}
	return out
}

// RunAll is the pooled, cached equivalent of sim.Runner.RunAll: it executes
// the population on one configuration, skips fabric-rejected methods,
// filters timeouts, and produces results identical to the serial path.
func (s *Scheduler) RunAll(ctx context.Context, cfg sim.Config, methods []*classfile.Method) (*sim.ConfigResults, error) {
	return s.runAllCycles(ctx, cfg, methods, 0)
}

// RunAllCycles is RunAll with an explicit per-execution mesh-cycle bound
// overriding the scheduler default (0 keeps the default).
func (s *Scheduler) RunAllCycles(ctx context.Context, cfg sim.Config, methods []*classfile.Method, maxCycles int) (*sim.ConfigResults, error) {
	return s.runAllCycles(ctx, cfg, methods, maxCycles)
}

func (s *Scheduler) runAllCycles(ctx context.Context, cfg sim.Config, methods []*classfile.Method, maxCycles int) (*sim.ConfigResults, error) {
	jobs := make([]Job, len(methods))
	for i, m := range methods {
		jobs[i] = Job{Config: cfg, Method: m}
	}
	results := s.RunBatchCycles(ctx, jobs, maxCycles)
	return CollectRuns(cfg, results)
}

// CollectRuns folds ordered per-job results into the ConfigResults shape of
// sim.Runner.RunAll, applying the same skip and timeout filters.
func CollectRuns(cfg sim.Config, results []JobResult) (*sim.ConfigResults, error) {
	out := &sim.ConfigResults{Config: cfg}
	for _, r := range results {
		if r.Err != nil {
			var le *fabric.LoadError
			if errors.As(r.Err, &le) {
				out.Skipped++
				continue
			}
			return nil, fmt.Errorf("sim: %s: %w", r.Job.Method.Signature(), r.Err)
		}
		if r.Run.BP1.TimedOut || r.Run.BP2.TimedOut {
			out.TimedOut++
			continue
		}
		out.Runs = append(out.Runs, r.Run)
	}
	return out, nil
}
