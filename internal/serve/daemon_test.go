package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// TestDaemonShutdownDrainsAndFlushes is the SIGTERM ordering contract: a
// batch that is in flight when shutdown begins must complete with a full
// response, and its results must be flushed to the store before Run
// returns — no dispatched job is ever lost to a restart.
func TestDaemonShutdownDrainsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	methods := hostableMethods(t, 4)
	sched := NewScheduler(SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles, Store: st})
	svc := NewService(sched, sim.Configurations(), methods)

	daemon := &Daemon{
		Addr:    "127.0.0.1:0",
		Service: svc,
		Store:   st,
		Drain:   time.Minute,
	}

	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- daemon.Run(ctx, func(a net.Addr) { addrCh <- a.String() })
	}()
	addr := <-addrCh

	// Fire a sweep and wait until its jobs are actually executing.
	body, _ := json.Marshal(BatchRequest{Configs: []string{"Compact2", "Hetero2"}})
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	deadline := time.After(30 * time.Second)
	for sched.Metrics().Snapshot(nil, nil).Jobs == 0 {
		select {
		case <-deadline:
			t.Fatal("no job started within 30s")
		case err := <-errCh:
			t.Fatalf("batch request failed before shutdown: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// SIGTERM lands mid-batch.
	cancel()

	select {
	case resp := <-respCh:
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight batch got status %d: %s", resp.StatusCode, out)
		}
		var parsed BatchResponse
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatalf("in-flight batch response truncated: %v", err)
		}
		if len(parsed.Results) != 2 || parsed.Results[0].Summary.Methods == 0 {
			t.Fatalf("in-flight batch response incomplete: %+v", parsed)
		}
	case err := <-errCh:
		t.Fatalf("in-flight batch dropped during shutdown: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight batch never completed")
	}

	if err := <-runErr; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}

	// New connections are refused after Run returns.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}

	// The drained jobs' results were flushed: a fresh store serves them.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() == 0 {
		t.Fatal("store is empty after shutdown: in-flight results were lost")
	}
	cfg := testConfig(t, "Compact2")
	key := store.RunKeyFor(cfg, methods[0], testMaxCycles)
	if _, ok := st2.GetRun(key); !ok {
		t.Fatalf("run for %s not in the flushed store", methods[0].Signature())
	}
}

// TestDaemonAutoCompacts: a store whose segments are mostly superseded
// duplicates must be compacted by the background trigger once the garbage
// ratio passes the threshold — and the surviving records must still be
// readable afterwards.
func TestDaemonAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	methods := hostableMethods(t, 1)
	cfg := testConfig(t, "Compact2")
	key := store.RunKeyFor(cfg, methods[0], testMaxCycles)

	// Garbage-heavy store: the same key rewritten many times leaves one
	// live record atop dozens of superseded ones.
	run := sim.MethodRun{Signature: methods[0].Signature()}
	for i := 0; i < 60; i++ {
		run.BP1.Fired = i // vary the payload; only the last survives
		st.PutRun(key, run)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	before := st.Admin()
	if before.GarbageRatio < 0.5 {
		t.Fatalf("setup produced garbage ratio %.2f, want >= 0.5", before.GarbageRatio)
	}

	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: st})
	daemon := &Daemon{
		Addr:             "127.0.0.1:0",
		Service:          NewService(sched, sim.Configurations(), methods),
		Store:            st,
		Drain:            time.Minute,
		CompactThreshold: 0.5,
		CompactEvery:     5 * time.Millisecond,
		Logf:             t.Logf,
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		runErr <- daemon.Run(ctx, func(a net.Addr) { addrCh <- a.String() })
	}()
	<-addrCh

	deadline := time.After(30 * time.Second)
	for st.Stats().Compactions == 0 {
		select {
		case <-deadline:
			t.Fatal("compactor never fired within 30s")
		case err := <-runErr:
			t.Fatalf("daemon exited early: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}

	// The compacted store dropped the duplicates and kept the live record.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after := st2.Admin()
	if after.GarbageRatio >= before.GarbageRatio {
		t.Fatalf("garbage ratio did not improve: %.2f -> %.2f", before.GarbageRatio, after.GarbageRatio)
	}
	got, ok := st2.GetRun(key)
	if !ok {
		t.Fatal("live record lost by compaction")
	}
	if got.BP1.Fired != 59 {
		t.Fatalf("compaction kept stale payload: fired=%d, want 59", got.BP1.Fired)
	}
}

// TestDaemonListenFailureClosesStore: a daemon that cannot bind must still
// flush and close its store before returning.
func TestDaemonListenFailureClosesStore(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	methods := hostableMethods(t, 1)
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: st})
	svc := NewService(sched, sim.Configurations(), methods)

	// Seed one record so the flush is observable.
	if _, err := sched.RunMethod(context.Background(), testConfig(t, "Compact2"), methods[0]); err != nil {
		t.Fatal(err)
	}

	daemon := &Daemon{Addr: ln.Addr().String(), Service: svc, Store: st}
	if err := daemon.Run(context.Background(), nil); err == nil {
		t.Fatal("expected a listen error on an occupied port")
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() == 0 {
		t.Fatal("store not flushed on listen failure")
	}
}
