package serve

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

const testMaxCycles = 200_000

// TestRunAllMatchesSerialRunner is the core determinism contract: the
// pooled, cached sweep must be byte-identical to the serial sim.Runner
// path — same runs in the same order, same skip and timeout counts.
func TestRunAllMatchesSerialRunner(t *testing.T) {
	methods := workload.NamedMethods()
	for _, name := range []string{"Baseline", "Compact2", "Hetero2"} {
		cfg := testConfig(t, name)

		serialRunner := &sim.Runner{MaxMeshCycles: testMaxCycles}
		want, err := serialRunner.RunAll(cfg, methods)
		if err != nil {
			t.Fatalf("serial RunAll(%s): %v", name, err)
		}

		sched := NewScheduler(SchedulerOptions{Workers: 8, MaxMeshCycles: testMaxCycles})
		got, err := sched.RunAll(context.Background(), cfg, methods)
		if err != nil {
			t.Fatalf("scheduler RunAll(%s): %v", name, err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pooled results differ from serial results", name)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%s: pooled results not byte-identical to serial results", name)
		}
	}
}

// TestRunAllDeterministicAcrossRuns re-runs the same warm-cache sweep and
// demands identical output both times.
func TestRunAllDeterministicAcrossRuns(t *testing.T) {
	methods := workload.NamedMethods()
	cfg := testConfig(t, "Compact4")
	sched := NewScheduler(SchedulerOptions{Workers: 6, MaxMeshCycles: testMaxCycles})

	first, err := sched.RunAll(context.Background(), cfg, methods)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	second, err := sched.RunAll(context.Background(), cfg, methods)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm-cache sweep differs from cold-cache sweep")
	}
	st := sched.Cache().Stats()
	if st.Hits == 0 {
		t.Fatalf("second sweep should have hit the cache: %+v", st)
	}
}

func TestSweepSharesCacheAcrossConfigs(t *testing.T) {
	methods := hostableMethods(t, 4)
	configs := []sim.Config{testConfig(t, "Compact2"), testConfig(t, "Sparse2")}
	sched := NewScheduler(SchedulerOptions{Workers: 4, MaxMeshCycles: testMaxCycles})

	groups := sched.Sweep(context.Background(), configs, methods)
	if len(groups) != 2 || len(groups[0]) != 4 || len(groups[1]) != 4 {
		t.Fatalf("sweep shape = %d groups", len(groups))
	}
	for gi, group := range groups {
		for mi, r := range group {
			if r.Err != nil {
				t.Fatalf("group %d job %d: %v", gi, mi, r.Err)
			}
			if r.Run.Signature != methods[mi].Signature() {
				t.Fatalf("group %d job %d out of order: %s", gi, mi, r.Run.Signature)
			}
		}
	}
	// 4 methods × 2 configs = 8 distinct deployments, all misses.
	if st := sched.Cache().Stats(); st.Misses != 8 {
		t.Fatalf("expected 8 cold deployments: %+v", st)
	}

	// Re-sweeping is all hits.
	sched.Sweep(context.Background(), configs, methods)
	if st := sched.Cache().Stats(); st.Hits != 8 {
		t.Fatalf("expected warm sweep to hit 8 times: %+v", st)
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	methods := hostableMethods(t, 3)
	cfg := testConfig(t, "Compact2")
	sched := NewScheduler(SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, len(methods))
	for i, m := range methods {
		jobs[i] = Job{Config: cfg, Method: m}
	}
	results := sched.RunBatch(ctx, jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestRunBatchCancellationMidFlight cancels while the pool is draining a
// large batch: the call must return promptly with every slot populated —
// completed runs stay valid, unstarted jobs report the cancellation.
func TestRunBatchCancellationMidFlight(t *testing.T) {
	methods := workload.NamedMethods()
	cfg := testConfig(t, "Compact2")
	sched := NewScheduler(SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles})

	// Big batch: repeat the corpus so cancellation lands mid-stream.
	var jobs []Job
	for i := 0; i < 20; i++ {
		for _, m := range methods {
			jobs = append(jobs, Job{Config: cfg, Method: m})
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan []JobResult, 1)
	go func() { done <- sched.RunBatch(ctx, jobs) }()

	// Cancel once at least one job has completed, so the cancellation
	// lands mid-stream rather than before the pool starts.
	go func() {
		for sched.Metrics().Snapshot(nil, nil).Jobs == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	results := <-done

	cancelled, completed := 0, 0
	for i, r := range results {
		switch {
		case r.Err == nil && r.Run.Signature != "":
			completed++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		case r.Err != nil:
			// Load errors from fabric-rejected methods are fine.
		default:
			t.Fatalf("job %d has neither result nor error", i)
		}
	}
	if cancelled == 0 {
		t.Fatalf("expected some cancelled jobs (completed=%d of %d)", completed, len(jobs))
	}
}

func TestRunMethodThroughCache(t *testing.T) {
	methods := hostableMethods(t, 1)
	cfg := testConfig(t, "Hetero2")
	sched := NewScheduler(SchedulerOptions{Workers: 2, MaxMeshCycles: testMaxCycles})

	serial := &sim.Runner{MaxMeshCycles: testMaxCycles}
	want, err := serial.RunMethod(cfg, methods[0])
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := sched.RunMethod(context.Background(), cfg, methods[0])
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d differs from the serial path", i)
		}
	}
	st := sched.Cache().Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss / 2 hits", st)
	}
	m := sched.Snapshot()
	if m.Jobs != 3 || m.InFlight != 0 {
		t.Fatalf("metrics = %+v, want 3 jobs / 0 in flight", m)
	}
}
