package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestRunBatchStreamOrdered: the scheduler must emit every result exactly
// once, in submission order, and the returned slice must equal the
// non-streaming path.
func TestRunBatchStreamOrdered(t *testing.T) {
	methods := hostableMethods(t, 6)
	cfg := testConfig(t, "Compact2")
	sched := NewScheduler(SchedulerOptions{Workers: 4, MaxMeshCycles: testMaxCycles})

	jobs := make([]Job, 0, len(methods)*2)
	for i := 0; i < 2; i++ {
		for _, m := range methods {
			jobs = append(jobs, Job{Config: cfg, Method: m})
		}
	}

	var order []int
	streamed := sched.RunBatchStream(context.Background(), jobs, 0, func(i int, r JobResult) {
		order = append(order, i)
		if r.Job.Method != jobs[i].Method {
			t.Errorf("emit %d carries the wrong job", i)
		}
	})
	if len(order) != len(jobs) {
		t.Fatalf("emitted %d results for %d jobs", len(order), len(jobs))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emission out of submission order: %v", order)
		}
	}

	plain := NewScheduler(SchedulerOptions{Workers: 4, MaxMeshCycles: testMaxCycles}).
		RunBatch(context.Background(), jobs)
	for i := range plain {
		if streamed[i].Err != nil || plain[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, streamed[i].Err, plain[i].Err)
		}
		if streamed[i].Run != plain[i].Run {
			t.Fatalf("job %d: streamed run differs from buffered run", i)
		}
	}
}

// streamLine mirrors StreamEvent with raw payloads, so byte-level
// comparison against the buffered response does not pass through a struct
// round-trip.
type streamLine struct {
	Type      string          `json:"type"`
	Config    string          `json:"config"`
	Signature string          `json:"signature"`
	Run       json.RawMessage `json:"run"`
	Summary   json.RawMessage `json:"summary"`
}

// rawBatchResponse mirrors BatchResponse with raw run payloads.
type rawBatchResponse struct {
	Results []struct {
		Summary json.RawMessage   `json:"summary"`
		Runs    []json.RawMessage `json:"runs"`
	} `json:"results"`
}

func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %q: %v", raw, err)
	}
	return buf.String()
}

// TestHTTPStreamMatchesBuffered is the streaming acceptance contract: the
// NDJSON stream carries, in order, byte-identical run payloads and
// summaries to the buffered /v1/batch response for the same request.
func TestHTTPStreamMatchesBuffered(t *testing.T) {
	ts, _ := testServer(t, 4)
	req := BatchRequest{Configs: []string{"Compact2", "Hetero2"}}
	body, _ := json.Marshal(req)

	// Buffered.
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	buffered, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", resp.StatusCode, buffered)
	}
	var raw rawBatchResponse
	if err := json.Unmarshal(buffered, &raw); err != nil {
		t.Fatal(err)
	}

	// Streamed.
	resp, err = http.Post(ts.URL+"/v1/batch?stream=ndjson", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Reassemble per-config groups from the stream and compare
	// byte-for-byte (modulo whitespace) with the buffered response.
	groupIdx := 0
	var runs []string
	for _, line := range lines {
		switch line.Type {
		case "run":
			runs = append(runs, compactJSON(t, line.Run))
		case "skip", "timeout":
			// Counted in the summary; no payload to compare.
		case "summary":
			if groupIdx >= len(raw.Results) {
				t.Fatalf("stream produced more summaries than buffered groups")
			}
			group := raw.Results[groupIdx]
			if got, want := compactJSON(t, line.Summary), compactJSON(t, group.Summary); got != want {
				t.Fatalf("config group %d summary differs:\nstream   %s\nbuffered %s", groupIdx, got, want)
			}
			if len(runs) != len(group.Runs) {
				t.Fatalf("config group %d: stream carried %d runs, buffered %d", groupIdx, len(runs), len(group.Runs))
			}
			for i := range runs {
				if want := compactJSON(t, group.Runs[i]); runs[i] != want {
					t.Fatalf("config group %d run %d differs:\nstream   %s\nbuffered %s", groupIdx, i, runs[i], want)
				}
			}
			runs = nil
			groupIdx++
		case "error":
			t.Fatalf("unexpected error event: %+v", line)
		default:
			t.Fatalf("unknown event type %q", line.Type)
		}
	}
	if groupIdx != len(raw.Results) {
		t.Fatalf("stream closed after %d of %d config groups", groupIdx, len(raw.Results))
	}
}

// TestHTTPStreamBadRequest: request-shape errors must fail with a normal
// JSON error status, not a committed stream.
func TestHTTPStreamBadRequest(t *testing.T) {
	ts, _ := testServer(t, 2)
	body, _ := json.Marshal(BatchRequest{Configs: []string{"NoSuchConfig"}})
	resp, err := http.Post(ts.URL+"/v1/batch?stream=ndjson", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
