package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"javaflow/internal/obs"
	"javaflow/internal/sim"
)

// fleetNode builds one named test node: a service whose metrics carry a
// node name, served over httptest, the way jfserved names nodes by their
// advertise URL.
func fleetNode(t *testing.T, name string) (*httptest.Server, *Service) {
	t.Helper()
	methods := hostableMethods(t, 3)
	sched := NewScheduler(SchedulerOptions{
		Workers:       1,
		MaxMeshCycles: testMaxCycles,
		Metrics:       NewMetricsOpts(MetricsOptions{Node: name}),
	})
	svc := NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func getJSONBody(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decode %s: %v (body %q)", url, err, body)
		}
	}
	return resp
}

// TestFleetTraceAssembledAcrossNodes drives a two-node trace — a real
// hop-0 request on the front, then the hop-1 leg on the backend carrying
// the front span's context, exactly as dispatch injects it — and asserts
// GET /v1/trace/{id} on EITHER node stitches both nodes' spans into one
// tree.
func TestFleetTraceAssembledAcrossNodes(t *testing.T) {
	frontTS, frontSvc := fleetNode(t, "node-front")
	backTS, backSvc := fleetNode(t, "node-back")
	frontSvc.SetFleet(NewFleet([]string{backTS.URL}, nil))
	backSvc.SetFleet(NewFleet([]string{frontTS.URL}, nil))

	// Hop 0: an untraced request at the front mints the root server span.
	resp, err := http.Get(frontTS.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var root obs.Span
	for _, sp := range frontSvc.Scheduler().Metrics().Tracer().Recent(10) {
		if sp.Name == "GET /v1/configs" {
			root = sp
		}
	}
	if root.TraceID == "" {
		t.Fatal("front recorded no server span for GET /v1/configs")
	}
	if root.Hop != 0 {
		t.Fatalf("front server span hop = %d, want 0", root.Hop)
	}

	// Hop 1: the backend leg carries the front span's context one wire
	// crossing deeper, the way obs.Inject stamps dispatched requests.
	req, _ := http.NewRequest(http.MethodGet, backTS.URL+"/v1/configs", nil)
	req.Header.Set(obs.TraceHeader, obs.TraceContext{
		TraceID: root.TraceID, SpanID: root.SpanID, Hop: 1,
	}.Header())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, from := range []struct{ name, url string }{
		{"front", frontTS.URL},
		{"back", backTS.URL},
	} {
		var at obs.AssembledTrace
		if r := getJSONBody(t, from.url+"/v1/trace/"+root.TraceID, &at); r.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/trace from %s: status %d", from.name, r.StatusCode)
		}
		if at.Partial {
			t.Errorf("assembly from %s: partial, want complete (nodes %+v)", from.name, at.Nodes)
		}
		if at.Spans != 2 {
			t.Fatalf("assembly from %s: %d spans, want 2", from.name, at.Spans)
		}
		if len(at.Roots) != 1 {
			t.Fatalf("assembly from %s: %d roots, want 1", from.name, len(at.Roots))
		}
		r := at.Roots[0]
		if r.Node != "node-front" || r.Hop != 0 {
			t.Errorf("assembly from %s: root on %q at hop %d, want node-front at hop 0", from.name, r.Node, r.Hop)
		}
		if len(r.Children) != 1 || r.Children[0].Node != "node-back" || r.Children[0].Hop != 1 {
			t.Errorf("assembly from %s: root children = %+v, want one node-back span at hop 1", from.name, r.Children)
		}
	}
}

// TestFleetTraceDeadPeerIsPartial asserts an unreachable peer marks the
// assembly partial — still HTTP 200, never an error — with the peer's
// failure on its node row.
func TestFleetTraceDeadPeerIsPartial(t *testing.T) {
	frontTS, frontSvc := fleetNode(t, "node-front")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on
	frontSvc.SetFleet(NewFleet([]string{deadURL}, nil))

	// A local span so the trace exists on the live node.
	resp, err := http.Get(frontTS.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spans := frontSvc.Scheduler().Metrics().Tracer().Recent(1)
	if len(spans) == 0 {
		t.Fatal("no local span recorded")
	}

	var at obs.AssembledTrace
	if r := getJSONBody(t, frontTS.URL+"/v1/trace/"+spans[0].TraceID, &at); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace: status %d, want 200 despite the dead peer", r.StatusCode)
	}
	if !at.Partial {
		t.Error("assembly with a dead peer not marked partial")
	}
	var deadErr string
	for _, n := range at.Nodes {
		if n.Node == deadURL {
			deadErr = n.Err
		}
	}
	if deadErr == "" {
		t.Errorf("dead peer %s missing its error in nodes %+v", deadURL, at.Nodes)
	}
}

// TestFleetTraceRejectsBadID asserts the path value is vetted before any
// fan-out.
func TestFleetTraceRejectsBadID(t *testing.T) {
	ts, _ := fleetNode(t, "node-a")
	// (Traversal-shaped IDs like "../x" never reach the handler — the
	// server's path cleaning 404s them first.)
	for _, bad := range []string{"xyz", "CAFE0123", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"} {
		resp, err := http.Get(ts.URL + "/v1/trace/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/trace/%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestFleetSnapshotMergesNodes drives one job on each of two nodes and
// asserts GET /v1/fleet sums the counters, merges the latency histograms
// losslessly, and reports per-node health — including a dead third peer
// marking the document partial without hiding the live rows.
func TestFleetSnapshotMergesNodes(t *testing.T) {
	frontTS, frontSvc := fleetNode(t, "node-front")
	backTS, backSvc := fleetNode(t, "node-back")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	frontSvc.SetFleet(NewFleet([]string{backTS.URL, deadURL}, nil))

	for _, n := range []struct {
		ts  *httptest.Server
		svc *Service
	}{{frontTS, frontSvc}, {backTS, backSvc}} {
		resp, _ := postJSON(t, n.ts.URL+"/v1/run", RunRequest{
			Config: "Hetero2", Method: n.svc.MethodInfos()[0].Signature,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed run: status %d", resp.StatusCode)
		}
	}

	var snap FleetSnapshot
	if r := getJSONBody(t, frontTS.URL+"/v1/fleet", &snap); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet: status %d", r.StatusCode)
	}
	if snap.NodesTotal != 3 || snap.NodesUp != 2 {
		t.Fatalf("nodes up/total = %d/%d, want 2/3", snap.NodesUp, snap.NodesTotal)
	}
	if !snap.Partial {
		t.Error("fleet snapshot with a dead peer not marked partial")
	}
	if snap.Fleet.Jobs < 2 {
		t.Errorf("fleet jobs = %d, want >= 2 (one per live node)", snap.Fleet.Jobs)
	}
	if snap.Fleet.P99LatencyMS <= 0 {
		t.Error("fleet p99 latency is zero after two jobs — histogram merge lost the samples")
	}
	byNode := make(map[string]FleetNodeHealth, len(snap.Nodes))
	for _, n := range snap.Nodes {
		byNode[n.Node] = n
	}
	for _, name := range []string{"node-front", "node-back"} {
		n, ok := byNode[name]
		if !ok || !n.Up || n.Metrics == nil {
			t.Fatalf("live node %s missing or down in %+v", name, snap.Nodes)
		}
		if n.Metrics.Jobs < 1 {
			t.Errorf("node %s reports %d jobs, want >= 1", name, n.Metrics.Jobs)
		}
	}
	if n := byNode[deadURL]; n.Up || n.Err == "" {
		t.Errorf("dead peer row = %+v, want down with an error", n)
	}
}

// TestDebugEventsEndpoint exercises the journal's HTTP surface: filtered
// reads, severity floors, and the validation contract.
func TestDebugEventsEndpoint(t *testing.T) {
	ts, svc := fleetNode(t, "node-a")
	j := svc.Scheduler().Metrics().Journal()
	j.Emit("dispatch", "suspension", obs.SevWarn, "cafe0123cafe4567", "backend", "http://b:1")
	j.Emit("replicate", "ingest", obs.SevInfo, "", "peer", "http://b:1")
	j.Emit("dispatch", "recovery", obs.SevInfo, "", "backend", "http://b:1")

	var dump obs.EventDump
	if r := getJSONBody(t, ts.URL+"/debug/events", &dump); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events: status %d", r.StatusCode)
	}
	if dump.Node != "node-a" {
		t.Errorf("dump node = %q, want node-a", dump.Node)
	}
	if dump.Events < 3 || len(dump.Recent) < 3 {
		t.Fatalf("events = %d, recent = %d, want >= 3", dump.Events, len(dump.Recent))
	}
	if dump.Counts["dispatch/suspension"] != 1 {
		t.Errorf("countsByKind = %v, want dispatch/suspension = 1", dump.Counts)
	}

	// Subsystem and severity filters compose.
	if getJSONBody(t, ts.URL+"/debug/events?subsystem=dispatch&severity=warn", &dump); len(dump.Recent) != 1 {
		t.Fatalf("filtered dump = %+v, want exactly the suspension event", dump.Recent)
	}
	if e := dump.Recent[0]; e.Kind != "suspension" || e.TraceID != "cafe0123cafe4567" {
		t.Errorf("filtered event = %+v, want the suspension with its trace ID", e)
	}

	for _, bad := range []string{"?n=0", "?n=100000", "?severity=loud"} {
		resp, err := http.Get(ts.URL + "/debug/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/events%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDebugTracesByIDServesLocalSpans pins the per-trace local endpoint
// the fleet fan-out rides on: exactly this node's spans for the ID, no
// recursion.
func TestDebugTracesByIDServesLocalSpans(t *testing.T) {
	ts, svc := fleetNode(t, "node-a")
	resp, err := http.Get(ts.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spans := svc.Scheduler().Metrics().Tracer().Recent(1)
	if len(spans) == 0 {
		t.Fatal("no span recorded")
	}

	var ns obs.NodeSpans
	if r := getJSONBody(t, ts.URL+"/debug/traces/"+spans[0].TraceID, &ns); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id}: status %d", r.StatusCode)
	}
	if ns.Node != "node-a" || len(ns.Spans) == 0 {
		t.Fatalf("node spans = %+v, want node-a with the recorded span", ns)
	}
	for _, sp := range ns.Spans {
		if sp.TraceID != spans[0].TraceID {
			t.Errorf("span %s from foreign trace %s leaked into the dump", sp.SpanID, sp.TraceID)
		}
	}

	// An unknown (but well-formed) ID is an empty span set, not an error.
	unknown := fmt.Sprintf("%016x", uint64(0xdead))
	if r := getJSONBody(t, ts.URL+"/debug/traces/"+unknown, &ns); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces unknown id: status %d", r.StatusCode)
	}
	if len(ns.Spans) != 0 {
		t.Errorf("unknown trace returned %d spans", len(ns.Spans))
	}
}
