package serve

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/core"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// testConfig returns the named Table 15 configuration.
func testConfig(t testing.TB, name string) sim.Config {
	t.Helper()
	for _, cfg := range sim.Configurations() {
		if cfg.Name == name {
			return cfg
		}
	}
	t.Fatalf("no configuration %q", name)
	return sim.Config{}
}

// hostableMethods returns named corpus methods the compact fabric accepts.
func hostableMethods(t testing.TB, n int) []*classfile.Method {
	t.Helper()
	cfg := testConfig(t, "Compact2")
	var out []*classfile.Method
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err == nil {
			out = append(out, m)
			if len(out) == n {
				break
			}
		}
	}
	if len(out) < n {
		t.Fatalf("only %d hostable methods, want %d", len(out), n)
	}
	return out
}

func TestCacheHitMissAccounting(t *testing.T) {
	cache := NewDeploymentCache(64)
	cfg := testConfig(t, "Compact2")
	methods := hostableMethods(t, 3)

	for _, m := range methods {
		if _, err := cache.ResolveMethod(cfg, m); err != nil {
			t.Fatalf("resolve %s: %v", m.Signature(), err)
		}
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("after cold pass: %+v, want 0 hits / 3 misses / 3 entries", st)
	}

	for i := 0; i < 2; i++ {
		for _, m := range methods {
			res, err := cache.ResolveMethod(cfg, m)
			if err != nil {
				t.Fatalf("resolve %s: %v", m.Signature(), err)
			}
			if res.Placement.Method != m {
				t.Fatalf("cached resolution is for a different method")
			}
		}
	}
	st = cache.Stats()
	if st.Hits != 6 || st.Misses != 3 {
		t.Fatalf("after warm passes: %+v, want 6 hits / 3 misses", st)
	}

	// A different fabric geometry is a distinct cache line.
	other := testConfig(t, "Sparse2")
	if _, err := cache.ResolveMethod(other, methods[0]); err != nil {
		t.Fatalf("resolve on Sparse2: %v", err)
	}
	st = cache.Stats()
	if st.Misses != 4 {
		t.Fatalf("distinct geometry should miss: %+v", st)
	}
}

// TestCacheSharesDeploymentsAcrossConfigs pins the ROADMAP "cross-config
// deployment sharing" behaviour: Compact10, Compact4 and Compact2 differ
// only in serial clocking, so after one of them deploys a method the other
// two hit the same cache line.
func TestCacheSharesDeploymentsAcrossConfigs(t *testing.T) {
	cache := NewDeploymentCache(64)
	m := hostableMethods(t, 1)[0]

	first, err := cache.ResolveMethod(testConfig(t, "Compact10"), m)
	if err != nil {
		t.Fatalf("resolve on Compact10: %v", err)
	}
	for _, name := range []string{"Compact4", "Compact2"} {
		res, err := cache.ResolveMethod(testConfig(t, name), m)
		if err != nil {
			t.Fatalf("resolve on %s: %v", name, err)
		}
		if res != first {
			t.Fatalf("%s did not share Compact10's cached deployment", name)
		}
	}
	st := cache.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}

	// Baseline shares the compact pattern but is collapsed — a different
	// geometry, so it must not reuse the placement.
	if _, err := cache.ResolveMethod(testConfig(t, "Baseline"), m); err != nil {
		t.Fatalf("resolve on Baseline: %v", err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("collapsed Baseline should miss: %+v", st)
	}
}

func TestCacheCachesFailures(t *testing.T) {
	cache := NewDeploymentCache(64)
	cfg := testConfig(t, "Compact2")

	var rejected *classfile.Method
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err != nil {
			var le *fabric.LoadError
			if errors.As(err, &le) {
				rejected = m
				break
			}
		}
	}
	if rejected == nil {
		t.Skip("no fabric-rejected method in the named corpus")
	}

	_, err1 := cache.ResolveMethod(cfg, rejected)
	_, err2 := cache.ResolveMethod(cfg, rejected)
	if err1 == nil || err2 == nil {
		t.Fatalf("expected load errors, got %v / %v", err1, err2)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("failure should be memoized: %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity 16 = exactly one entry per shard: any shard receiving a
	// second key must evict its first.
	cache := NewDeploymentCache(cacheShards)
	cfg := testConfig(t, "Compact2")
	methods := hostableMethods(t, 8)

	for round := 0; round < 4; round++ {
		for _, m := range methods {
			if _, err := cache.ResolveMethod(cfg, m); err != nil {
				t.Fatalf("resolve: %v", err)
			}
		}
	}
	st := cache.Stats()
	if st.Entries > cacheShards {
		t.Fatalf("cache exceeded its bound: %+v", st)
	}
	if st.Evictions == 0 && st.Entries == cacheShards {
		// All 8 methods landed on distinct shards — nothing to evict;
		// force a collision by reusing one shard with many geometries.
		m := methods[0]
		for i := 0; i < 4; i++ {
			c := cfg
			c.Name = fmt.Sprintf("%s-v%d", cfg.Name, i)
			c.Fabric = fabric.NewFabric(11+i, fabric.PatternCompact)
			if _, err := cache.ResolveMethod(c, m); err != nil {
				t.Fatalf("resolve: %v", err)
			}
		}
		if cache.Stats().Entries > cacheShards {
			t.Fatalf("cache exceeded its bound after collisions: %+v", cache.Stats())
		}
	}
}

func TestCacheFabricMismatchGuard(t *testing.T) {
	cache := NewDeploymentCache(64)
	methods := hostableMethods(t, 1)
	m := methods[0]

	a := sim.Config{Name: "shared-name", Fabric: fabric.NewFabric(10, fabric.PatternCompact), SerialPerMesh: 2}
	b := sim.Config{Name: "shared-name", Fabric: fabric.NewFabric(10, fabric.PatternSparse), SerialPerMesh: 2}

	resA, err := cache.ResolveMethod(a, m)
	if err != nil {
		t.Fatalf("resolve a: %v", err)
	}
	resB, err := cache.ResolveMethod(b, m)
	if err != nil {
		t.Fatalf("resolve b: %v", err)
	}
	if resB.Placement.Fabric == resA.Placement.Fabric {
		t.Fatalf("name collision across fabrics returned the stale placement")
	}
	if got, want := resB.Placement.MaxNode, 2*resA.Placement.MaxNode-1; got != want {
		t.Fatalf("sparse placement span = %d, want %d (stale compact entry served?)", got, want)
	}
	// Same pointer geometry hits again.
	if _, err := cache.ResolveMethod(b, m); err != nil {
		t.Fatalf("resolve b again: %v", err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("structural re-check should hit once: %+v", st)
	}
}

// TestCacheBacksCoreMachine exercises the core.DeploymentProvider seam: a
// Machine routed through the cache deploys identically to a direct one and
// repeated deployments hit instead of re-running the pipeline.
func TestCacheBacksCoreMachine(t *testing.T) {
	cache := NewDeploymentCache(64)
	cfg := testConfig(t, "Compact2")
	m := hostableMethods(t, 1)[0]

	direct := core.NewMachine(cfg)
	want, err := direct.Deploy(m)
	if err != nil {
		t.Fatalf("direct deploy: %v", err)
	}

	cached := core.NewMachine(cfg)
	cached.SetProvider(cache)
	var prev *core.Deployment
	for i := 0; i < 3; i++ {
		d, err := cached.Deploy(m)
		if err != nil {
			t.Fatalf("cached deploy %d: %v", i, err)
		}
		if !reflect.DeepEqual(d.Resolution.Targets, want.Resolution.Targets) ||
			!reflect.DeepEqual(d.Placement.NodeOf, want.Placement.NodeOf) {
			t.Fatalf("cached deployment differs from direct deployment")
		}
		if prev != nil && d.Resolution != prev.Resolution {
			t.Fatalf("repeat deploy did not reuse the cached resolution")
		}
		prev = d
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 1 miss / 2 hits", st)
	}

	run, err := prev.ExecuteBoth()
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	wantRun, err := want.ExecuteBoth()
	if err != nil {
		t.Fatalf("execute direct: %v", err)
	}
	if run != wantRun {
		t.Fatalf("execution through cached deployment differs:\n got %+v\nwant %+v", run, wantRun)
	}
}
