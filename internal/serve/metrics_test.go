package serve

import (
	"context"
	"testing"

	"javaflow/internal/sim"
)

// The /metrics engine block must reflect real engine activity: after a
// scheduler executes a method, the process totals grow and the snapshot
// carries non-zero throughput gauges.
func TestMetricsEngineThroughput(t *testing.T) {
	methods := hostableMethods(t, 1)
	cfg := testConfig(t, "Compact2")
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles})

	before := sim.TotalEngineStats()
	if _, err := sched.RunMethod(context.Background(), cfg, methods[0]); err != nil {
		t.Fatal(err)
	}
	snap := sched.Snapshot()
	eng := snap.Engine
	if eng.Runs < before.Runs+2 {
		t.Fatalf("engine runs %d, want at least %d (both branch policies)", eng.Runs, before.Runs+2)
	}
	if eng.SimulatedMeshCycles <= before.SimulatedMeshCycles {
		t.Error("no simulated mesh cycles recorded")
	}
	if eng.Events <= before.Events {
		t.Error("no events recorded")
	}
	if eng.MeshCyclesPerSec <= 0 || eng.EventsPerSec <= 0 {
		t.Errorf("zero throughput gauges: %+v", eng)
	}
}
