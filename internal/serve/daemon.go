package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"javaflow/internal/obs"
	"javaflow/internal/replicate"
	"javaflow/internal/store"
)

// DefaultDrain is the graceful-shutdown window when Daemon.Drain is zero:
// long enough for a full in-flight batch sweep (the server's write timeout
// allows one to run for minutes).
const DefaultDrain = 5 * time.Minute

// DefaultCompactEvery is how often the background compactor re-checks the
// store's garbage ratio when Daemon.CompactEvery is zero.
const DefaultCompactEvery = 30 * time.Second

// Daemon runs the jfserved HTTP service with ordered shutdown. On context
// cancellation (SIGTERM) it:
//
//  1. closes the listener, so no new work is accepted;
//  2. drains in-flight requests — handlers block on their scheduler or
//     dispatch jobs, so waiting for connections waits for the jobs;
//  3. flushes and closes the store, so every result computed by a drained
//     job is durable before the process exits.
//
// Only after all three does Run return: a dispatched job that was in
// flight when the signal arrived is never lost, and a dispatch front
// pointing at this instance sees connection-refused (and reroutes) rather
// than a dead TCP peer holding its jobs.
type Daemon struct {
	// Addr is the listen address (":8077", "127.0.0.1:0", ...).
	Addr string
	// Service is the registry + scheduler the HTTP API serves. Required.
	Service *Service
	// Store, when non-nil, is flushed and closed after the drain. The
	// daemon owns its shutdown; callers must not Close it themselves.
	Store *store.Store
	// Drain bounds the in-flight drain window (0 uses DefaultDrain).
	Drain time.Duration
	// CompactThreshold, when > 0, enables the background compactor: every
	// CompactEvery the store's garbage ratio (superseded duplicates and
	// torn tails as a fraction of segment bytes) is checked, and a
	// store.Compact runs once it reaches the threshold. Only enable on a
	// sole-writer store: Compact in a directory shared with other live
	// writers can reclaim a segment another process is still appending to
	// (see store.Compact).
	CompactThreshold float64
	// CompactEvery is the compactor's check interval (0 uses
	// DefaultCompactEvery).
	CompactEvery time.Duration
	// Replicator, when non-nil, runs its pull-based anti-entropy loop for
	// the life of the daemon, next to the background compactor. The store
	// makes the two mutually exclusive per round (a losing Compact or
	// Ingest returns store.MaintenanceBusyError and retries), so enabling
	// both on one node is safe.
	Replicator *replicate.Replicator
	// Logf, when non-nil, receives operator-facing progress lines
	// (shutdown began, drain finished, compactions).
	Logf func(format string, args ...any)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Run listens on d.Addr and serves until ctx is cancelled, then performs
// the ordered shutdown above. ready (when non-nil) is called once with the
// bound address before serving — tests listen on ":0" and learn the port
// from it. The returned error is the first of: listen failure, serve
// failure, drain overrun, store-flush failure; nil on a clean shutdown.
func (d *Daemon) Run(ctx context.Context, ready func(addr net.Addr)) error {
	srv := NewServer(d.Addr, d.Service)
	stopCompactor := d.startCompactor()
	stopReplicator := d.startReplicator()
	ln, err := net.Listen("tcp", d.Addr)
	if err != nil {
		stopCompactor()
		stopReplicator()
		return errors.Join(err, d.closeStore())
	}
	if ready != nil {
		ready(ln.Addr())
	}
	journal := d.Service.Scheduler().Metrics().Journal()
	journal.Emit("serve", "start", obs.SevInfo, "", "addr", ln.Addr().String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain.
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		journal.Emit("serve", "stop", obs.SevWarn, "", "reason", "listener")
		stopCompactor()
		stopReplicator()
		return errors.Join(err, d.closeStore())
	case <-ctx.Done():
	}

	drain := d.Drain
	if drain <= 0 {
		drain = DefaultDrain
	}
	// Flip admission into draining mode before the listener closes: a
	// keep-alive client racing the shutdown gets a typed 429 telling it to
	// retry elsewhere instead of queueing behind a closing daemon.
	d.Service.Admission().SetDraining(true)
	d.logf("shutting down: draining in-flight requests (up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	journal.Emit("serve", "stop", obs.SevInfo, "", "reason", "signal")
	// The compactor and replicator must be idle before the store closes.
	stopCompactor()
	stopReplicator()
	// Flush the store even when the drain overran: whatever jobs did
	// complete must still reach disk.
	return errors.Join(err, d.closeStore())
}

// startReplicator launches the anti-entropy pull loop when configured,
// returning an idempotent stop that waits for any in-flight round.
func (d *Daemon) startReplicator() func() {
	if d.Replicator == nil {
		return func() {}
	}
	return d.Replicator.Start()
}

// startCompactor launches the background compaction loop when configured,
// returning a function that stops it and waits for any in-flight Compact.
// The returned stop is idempotent and safe to call when the compactor
// never started.
func (d *Daemon) startCompactor() func() {
	if d.Store == nil || d.CompactThreshold <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.compactLoop(stop)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
}

// compactLoop periodically compacts the store once its garbage ratio
// passes the threshold — the ROADMAP's background compaction trigger.
func (d *Daemon) compactLoop(stop <-chan struct{}) {
	every := d.CompactEvery
	if every <= 0 {
		every = DefaultCompactEvery
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		rep := d.Store.Admin()
		if rep.GarbageRatio < d.CompactThreshold {
			continue
		}
		if err := d.Store.Compact(); err != nil {
			d.logf("auto-compact: %v", err)
			continue
		}
		after := d.Store.Admin()
		d.logf("auto-compact: garbage %.0f%% >= %.0f%% — %d segments / %d bytes -> %d segments / %d bytes",
			100*rep.GarbageRatio, 100*d.CompactThreshold,
			rep.Segments, rep.DiskBytes, after.Segments, after.DiskBytes)
	}
}

// closeStore flushes and closes the store, reporting the first append
// failure of the store's lifetime. Nil store is a no-op.
func (d *Daemon) closeStore() error {
	if d.Store == nil {
		return nil
	}
	return d.Store.Close()
}
