package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"javaflow/internal/store"
)

// DefaultDrain is the graceful-shutdown window when Daemon.Drain is zero:
// long enough for a full in-flight batch sweep (the server's write timeout
// allows one to run for minutes).
const DefaultDrain = 5 * time.Minute

// Daemon runs the jfserved HTTP service with ordered shutdown. On context
// cancellation (SIGTERM) it:
//
//  1. closes the listener, so no new work is accepted;
//  2. drains in-flight requests — handlers block on their scheduler or
//     dispatch jobs, so waiting for connections waits for the jobs;
//  3. flushes and closes the store, so every result computed by a drained
//     job is durable before the process exits.
//
// Only after all three does Run return: a dispatched job that was in
// flight when the signal arrived is never lost, and a dispatch front
// pointing at this instance sees connection-refused (and reroutes) rather
// than a dead TCP peer holding its jobs.
type Daemon struct {
	// Addr is the listen address (":8077", "127.0.0.1:0", ...).
	Addr string
	// Service is the registry + scheduler the HTTP API serves. Required.
	Service *Service
	// Store, when non-nil, is flushed and closed after the drain. The
	// daemon owns its shutdown; callers must not Close it themselves.
	Store *store.Store
	// Drain bounds the in-flight drain window (0 uses DefaultDrain).
	Drain time.Duration
	// Logf, when non-nil, receives operator-facing progress lines
	// (shutdown began, drain finished).
	Logf func(format string, args ...any)
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Run listens on d.Addr and serves until ctx is cancelled, then performs
// the ordered shutdown above. ready (when non-nil) is called once with the
// bound address before serving — tests listen on ":0" and learn the port
// from it. The returned error is the first of: listen failure, serve
// failure, drain overrun, store-flush failure; nil on a clean shutdown.
func (d *Daemon) Run(ctx context.Context, ready func(addr net.Addr)) error {
	srv := NewServer(d.Addr, d.Service)
	ln, err := net.Listen("tcp", d.Addr)
	if err != nil {
		return errors.Join(err, d.closeStore())
	}
	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain.
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		return errors.Join(err, d.closeStore())
	case <-ctx.Done():
	}

	drain := d.Drain
	if drain <= 0 {
		drain = DefaultDrain
	}
	d.logf("shutting down: draining in-flight requests (up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	// Flush the store even when the drain overran: whatever jobs did
	// complete must still reach disk.
	return errors.Join(err, d.closeStore())
}

// closeStore flushes and closes the store, reporting the first append
// failure of the store's lifetime. Nil store is a no-op.
func (d *Daemon) closeStore() error {
	if d.Store == nil {
		return nil
	}
	return d.Store.Close()
}
