package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// TestHTTPStoreAdmin exercises GET /v1/store and POST /v1/store/compact
// against a live store, and the 404 contract without one.
func TestHTTPStoreAdmin(t *testing.T) {
	// Without a store both endpoints are 404.
	ts, _ := testServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/store without store: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/store/compact", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/store/compact without store: status %d, want 404", resp.StatusCode)
	}

	// With a store: run a method, then read the report.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	methods := hostableMethods(t, 2)
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: st})
	svc := NewService(sched, sim.Configurations(), methods)
	ts2 := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts2.Close)

	resp, body := postJSON(t, ts2.URL+"/v1/run", RunRequest{Config: "Compact2", Method: methods[0].Signature()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	var rep store.AdminReport
	getJSON(t, ts2.URL+"/v1/store", &rep)
	if rep.Records == 0 || rep.Segments == 0 {
		t.Fatalf("admin report empty after a run: %+v", rep)
	}
	foundGeom := false
	for _, g := range rep.Geometries {
		if g.Runs > 0 {
			foundGeom = true
		}
	}
	if !foundGeom {
		t.Fatalf("no geometry reports runs: %+v", rep.Geometries)
	}

	resp, body = postJSON(t, ts2.URL+"/v1/store/compact", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	getJSON(t, ts2.URL+"/v1/store", &rep)
	if rep.Compactions != 1 {
		t.Fatalf("compactions = %d after POST /v1/store/compact", rep.Compactions)
	}
}
