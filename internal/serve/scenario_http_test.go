package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"javaflow/internal/scenario"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// scenarioServer serves the full named corpus with a scenario registry
// attached, so catalog suite bundles resolve inside the node's population.
func scenarioServer(t *testing.T) (*httptest.Server, *scenario.Registry) {
	t.Helper()
	sched := NewScheduler(SchedulerOptions{Workers: 4, MaxMeshCycles: testMaxCycles})
	svc := NewService(sched, sim.Configurations(), workload.NamedMethods())
	reg := scenario.NewRegistry(scenario.Defaults{
		Seed: 2014, GenCount: 24, MaxMeshCycles: testMaxCycles,
	})
	svc.SetScenarios(reg)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestHTTPScenarioList(t *testing.T) {
	ts, reg := scenarioServer(t)

	var infos []ScenarioInfo
	getJSON(t, ts.URL+"/v1/scenarios", &infos)
	names := reg.Names()
	if len(infos) != len(names) {
		t.Fatalf("got %d scenarios, registry has %d", len(infos), len(names))
	}
	byName := make(map[string]ScenarioInfo, len(infos))
	for i, info := range infos {
		if info.Name != names[i] {
			t.Fatalf("scenario %d = %q, want catalog order %q", i, info.Name, names[i])
		}
		byName[info.Name] = info
	}
	if cf := byName["chaos-fleet"]; cf.Tier != scenario.TierAdversarial || len(cf.Faults) != 5 {
		t.Fatalf("chaos-fleet info = %+v, want adversarial with 5 faults", cf)
	}
	if ao := byName["adversarial-oracle"]; !ao.Oracle {
		t.Fatalf("adversarial-oracle info = %+v, want oracle=true", ao)
	}

	// Describe round-trips the full bundle.
	var b scenario.Bundle
	getJSON(t, ts.URL+"/v1/scenarios/crypto", &b)
	if b.Name != "crypto" || len(b.Workload.Suites) != 1 {
		t.Fatalf("described bundle = %+v", b)
	}

	// Unknown names 404 with the machine-readable kind.
	resp, err := http.Get(ts.URL + "/v1/scenarios/no-such")
	if err != nil {
		t.Fatal(err)
	}
	var ep ErrorPayload
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
		t.Fatalf("decode error payload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || ep.Kind != ErrKindNotFound {
		t.Fatalf("unknown scenario: status %d kind %q, want 404 %q", resp.StatusCode, ep.Kind, ErrKindNotFound)
	}
}

// TestHTTPScenarioListWithoutRegistry: a daemon started without a registry
// reports an empty catalog, not an error.
func TestHTTPScenarioListWithoutRegistry(t *testing.T) {
	ts, _ := testServer(t, 2)
	var infos []ScenarioInfo
	getJSON(t, ts.URL+"/v1/scenarios", &infos)
	if len(infos) != 0 {
		t.Fatalf("got %d scenarios from a registry-less node", len(infos))
	}
	resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Scenario: "crypto"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("scenario batch without registry: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPScenarioKeyedBatch: a {"scenario": name} batch must be
// byte-identical to the explicit configs+methods request it resolves to.
func TestHTTPScenarioKeyedBatch(t *testing.T) {
	ts, reg := scenarioServer(t)

	resolved, err := reg.Resolve("crypto")
	if err != nil {
		t.Fatal(err)
	}
	explicit := BatchRequest{MaxMeshCycles: testMaxCycles, SummaryOnly: true}
	for _, cfg := range resolved.Configs {
		explicit.Configs = append(explicit.Configs, cfg.Name)
	}
	for _, m := range resolved.Methods {
		explicit.Methods = append(explicit.Methods, m.Signature())
	}

	resp, wantBody := postJSON(t, ts.URL+"/v1/batch", explicit)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit batch: status %d: %s", resp.StatusCode, wantBody)
	}
	resp, gotBody := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Scenario: "crypto", SummaryOnly: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario batch: status %d: %s", resp.StatusCode, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("scenario-keyed batch differs from its explicit form:\n%s\nvs\n%s", gotBody, wantBody)
	}
}

// TestHTTPScenarioBatchErrors pins the error contract of scenario-keyed
// submission: combining forms is a 400, unknown scenarios 404, and a
// scenario whose population this node does not serve is a 400 the client
// can act on.
func TestHTTPScenarioBatchErrors(t *testing.T) {
	ts, _ := scenarioServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{
		Scenario: "crypto", Configs: []string{"Baseline"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("combined request: status %d: %s, want 400", resp.StatusCode, body)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Scenario: "no-such"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario: status %d, want 404", resp.StatusCode)
	}

	// chapter7 includes the generated corpus; this node serves only the
	// named methods, so the scenario is out of population.
	resp, body = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Scenario: "chapter7"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-corpus scenario: status %d: %s, want 400", resp.StatusCode, body)
	}
	var ep ErrorPayload
	if err := json.Unmarshal(body, &ep); err != nil || ep.Error == "" {
		t.Fatalf("out-of-corpus error payload = %s (%v)", body, err)
	}
}
