package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"javaflow/internal/classfile"
	"javaflow/internal/core"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
)

// A DeploymentCache backs both deployment seams: core.Machine.SetProvider
// and sim.Runner.Resolve.
var _ core.DeploymentProvider = (*DeploymentCache)(nil)

// cacheShards fixes the shard count; keys are spread by FNV-1a so
// concurrent sweeps over disjoint methods rarely contend on one lock.
const cacheShards = 16

// DefaultCacheCapacity holds a full Chapter-7 sweep: ~1,600 methods × 6
// configurations, with headroom for ad-hoc requests.
const DefaultCacheCapacity = 12288

// cacheKey identifies one deployment: the method signature and the
// configuration name it was deployed under.
type cacheKey struct {
	Signature string
	Config    string
}

// cacheEntry memoizes the full deploy outcome. Failures (LoadError for
// switch/jsr methods, resolution errors) are cached too: a population sweep
// re-encounters the same rejected methods on every configuration, and
// re-verifying them per run would defeat the cache for exactly the methods
// that are most expensive to reject. fab records the fabric the deploy ran
// against so failed entries (res == nil) can still be geometry-checked.
type cacheEntry struct {
	res *fabric.Resolution
	err error
	fab *fabric.Fabric
}

// cacheShard is one LRU segment.
type cacheShard struct {
	mu    sync.Mutex
	order *list.List // front = most recently used; values are *cacheItem
	items map[cacheKey]*list.Element
}

type cacheItem struct {
	key   cacheKey
	entry cacheEntry
}

// DeploymentCache is a sharded LRU of verified, loaded, address-resolved
// methods keyed by (method signature, configuration name). A hit skips the
// whole Figure 20 + Figure 22 pipeline; the cached Resolution is immutable
// and shared freely across concurrent executions. Because configuration
// names identify fabric geometry by convention only, each hit is guarded by
// a structural fabric comparison — a name collision across different
// geometries degrades to a miss instead of returning a wrong placement.
type DeploymentCache struct {
	shards   [cacheShards]cacheShard
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewDeploymentCache builds a cache bounded at capacity entries (0 uses
// DefaultCacheCapacity). The bound is split evenly across shards.
func NewDeploymentCache(capacity int) *DeploymentCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &DeploymentCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[cacheKey]*list.Element)
	}
	return c
}

// shardFor spreads keys across shards with FNV-1a over both key fields.
func (c *DeploymentCache) shardFor(k cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Signature); i++ {
		h ^= uint64(k.Signature[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(k.Config); i++ {
		h ^= uint64(k.Config[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// sameFabric reports whether a cached placement's fabric is structurally
// identical to the requesting configuration's (width, collapse, pattern).
func sameFabric(a, b *fabric.Fabric) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Width != b.Width || a.Collapsed != b.Collapsed || len(a.Pattern) != len(b.Pattern) {
		return false
	}
	for i := range a.Pattern {
		if a.Pattern[i] != b.Pattern[i] {
			return false
		}
	}
	return true
}

// ResolveMethod returns the deployment of m under cfg, computing and
// memoizing it on first use. It implements core.DeploymentProvider and
// plugs directly into sim.Runner.Resolve.
func (c *DeploymentCache) ResolveMethod(cfg sim.Config, m *classfile.Method) (*fabric.Resolution, error) {
	key := cacheKey{Signature: m.Signature(), Config: cfg.Name}
	shard := c.shardFor(key)

	shard.mu.Lock()
	if el, ok := shard.items[key]; ok {
		it := el.Value.(*cacheItem)
		if sameFabric(it.entry.fab, cfg.Fabric) {
			shard.order.MoveToFront(el)
			entry := it.entry
			shard.mu.Unlock()
			c.hits.Add(1)
			return entry.res, entry.err
		}
		// Same name, different geometry: drop the stale entry.
		shard.order.Remove(el)
		delete(shard.items, key)
	}
	shard.mu.Unlock()
	c.misses.Add(1)

	// Deploy outside the shard lock: resolution is pure, so concurrent
	// duplicate work is wasted effort at worst, never a correctness issue.
	res, err := sim.DeployMethod(cfg, m)
	entry := cacheEntry{res: res, err: err, fab: cfg.Fabric}

	shard.mu.Lock()
	if el, ok := shard.items[key]; ok {
		// Another goroutine won the race; keep its entry.
		shard.order.MoveToFront(el)
		entry = el.Value.(*cacheItem).entry
	} else {
		shard.items[key] = shard.order.PushFront(&cacheItem{key: key, entry: entry})
		for shard.order.Len() > c.perShard {
			oldest := shard.order.Back()
			shard.order.Remove(oldest)
			delete(shard.items, oldest.Value.(*cacheItem).key)
			c.evictions.Add(1)
		}
	}
	shard.mu.Unlock()
	return entry.res, entry.err
}

// Len returns the live entry count across all shards.
func (c *DeploymentCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *DeploymentCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
