package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"javaflow/internal/classfile"
	"javaflow/internal/core"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// A DeploymentCache backs both deployment seams: core.Machine.SetProvider
// and sim.Runner.Resolve.
var _ core.DeploymentProvider = (*DeploymentCache)(nil)

// cacheShards fixes the shard count; keys are spread by FNV-1a so
// concurrent sweeps over disjoint methods rarely contend on one lock.
const cacheShards = 16

// DefaultCacheCapacity holds a full Chapter-7 sweep: ~1,600 methods × 6
// configurations, with headroom for ad-hoc requests.
const DefaultCacheCapacity = 12288

// cacheKey identifies one deployment: the method signature and the fabric
// geometry it was deployed on. Keying by geometry instead of configuration
// name lets every configuration sharing a fabric pattern — Compact10,
// Compact4 and Compact2 differ only in serial clocking — share one cached
// placement (ROADMAP "cross-config deployment sharing").
type cacheKey struct {
	Signature string
	Geometry  string
}

// cacheEntry memoizes the full deploy outcome. Failures (LoadError for
// switch/jsr methods, resolution errors) are cached too: a population sweep
// re-encounters the same rejected methods on every configuration, and
// re-verifying them per run would defeat the cache for exactly the methods
// that are most expensive to reject. fab records the fabric the deploy ran
// against so failed entries (res == nil) can still be geometry-checked.
type cacheEntry struct {
	res *fabric.Resolution
	err error
	fab *fabric.Fabric
}

// cacheShard is one LRU segment.
type cacheShard struct {
	mu    sync.Mutex
	order *list.List // front = most recently used; values are *cacheItem
	items map[cacheKey]*list.Element
}

type cacheItem struct {
	key   cacheKey
	entry cacheEntry
}

// DeploymentCache is a sharded LRU of verified, loaded, address-resolved
// methods keyed by (method signature, fabric geometry). A hit skips the
// whole Figure 20 + Figure 22 pipeline; the cached Resolution is immutable
// and shared freely across concurrent executions. Although the geometry
// key already encodes structure, each hit is still guarded by a structural
// fabric comparison — a key collision across different geometries degrades
// to a miss instead of returning a wrong placement.
//
// An optional persistent store sits under the LRU as a read-through /
// write-behind layer: an LRU miss consults the store before running the
// deploy pipeline, and freshly computed outcomes (including fabric
// rejections) are persisted so they survive restarts.
type DeploymentCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	store    *store.Store

	hits      atomic.Int64
	misses    atomic.Int64
	storeHits atomic.Int64
	evictions atomic.Int64
}

// NewDeploymentCache builds a cache bounded at capacity entries (0 uses
// DefaultCacheCapacity). The bound is split evenly across shards.
func NewDeploymentCache(capacity int) *DeploymentCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &DeploymentCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[cacheKey]*list.Element)
	}
	return c
}

// SetStore attaches the persistent store the cache reads through to and
// writes deployments behind. Call before the cache starts serving traffic;
// the scheduler wires this up from SchedulerOptions.Store.
func (c *DeploymentCache) SetStore(st *store.Store) { c.store = st }

// shardFor spreads keys across shards with FNV-1a over both key fields.
func (c *DeploymentCache) shardFor(k cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Signature); i++ {
		h ^= uint64(k.Signature[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(k.Geometry); i++ {
		h ^= uint64(k.Geometry[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// sameFabric reports whether a cached placement's fabric is structurally
// identical to the requesting configuration's (width, collapse, pattern).
func sameFabric(a, b *fabric.Fabric) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Width != b.Width || a.Collapsed != b.Collapsed || len(a.Pattern) != len(b.Pattern) {
		return false
	}
	for i := range a.Pattern {
		if a.Pattern[i] != b.Pattern[i] {
			return false
		}
	}
	return true
}

// ResolveMethod returns the deployment of m under cfg, computing and
// memoizing it on first use. It implements core.DeploymentProvider and
// plugs directly into sim.Runner.Resolve.
func (c *DeploymentCache) ResolveMethod(cfg sim.Config, m *classfile.Method) (*fabric.Resolution, error) {
	key := cacheKey{Signature: m.Signature(), Geometry: cfg.Fabric.GeometryKey()}
	shard := c.shardFor(key)

	shard.mu.Lock()
	if el, ok := shard.items[key]; ok {
		it := el.Value.(*cacheItem)
		if sameFabric(it.entry.fab, cfg.Fabric) {
			shard.order.MoveToFront(el)
			entry := it.entry
			shard.mu.Unlock()
			c.hits.Add(1)
			return entry.res, entry.err
		}
		// Same key, different geometry (hash collision): drop the stale
		// entry.
		shard.order.Remove(el)
		delete(shard.items, key)
	}
	shard.mu.Unlock()
	c.misses.Add(1)

	// Read through to the persistent store before paying for the deploy
	// pipeline. A stored outcome (success or fabric rejection) from an
	// earlier process life is as good as a computed one.
	var dk store.DeployKey
	if c.store != nil {
		dk = store.DeployKey{Signature: key.Signature, MethodHash: store.MethodHash(m), Geometry: key.Geometry}
		if res, ok, derr := c.store.GetDeploy(dk, cfg.Fabric, m); ok {
			c.storeHits.Add(1)
			entry := c.insert(shard, key, cacheEntry{res: res, err: derr, fab: cfg.Fabric})
			return entry.res, entry.err
		}
	}

	// Deploy outside the shard lock: resolution is pure, so concurrent
	// duplicate work is wasted effort at worst, never a correctness issue.
	res, err := sim.DeployMethod(cfg, m)
	if c.store != nil {
		c.store.PutDeploy(dk, res, err)
	}
	entry := c.insert(shard, key, cacheEntry{res: res, err: err, fab: cfg.Fabric})
	return entry.res, entry.err
}

// insert memoizes entry under key, keeping a racing goroutine's entry if
// one landed first and evicting past the per-shard bound. It returns the
// entry that ended up cached.
func (c *DeploymentCache) insert(shard *cacheShard, key cacheKey, entry cacheEntry) cacheEntry {
	shard.mu.Lock()
	defer shard.mu.Unlock()
	if el, ok := shard.items[key]; ok {
		// Another goroutine won the race; keep its entry.
		shard.order.MoveToFront(el)
		return el.Value.(*cacheItem).entry
	}
	shard.items[key] = shard.order.PushFront(&cacheItem{key: key, entry: entry})
	for shard.order.Len() > c.perShard {
		oldest := shard.order.Back()
		shard.order.Remove(oldest)
		delete(shard.items, oldest.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
	return entry
}

// Len returns the live entry count across all shards.
func (c *DeploymentCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time counter snapshot. StoreHits counts the
// subset of Misses that a persistent store answered without running the
// deploy pipeline.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	StoreHits int64 `json:"storeHits"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the cache counters.
func (c *DeploymentCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		StoreHits: c.storeHits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
