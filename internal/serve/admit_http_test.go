package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"javaflow/internal/admit"
)

// admitServer is testServer with a bounded admission controller
// attached, the way cmd/jfserved wires one.
func admitServer(t *testing.T, workers int, opts admit.Options) (url string, svc *Service) {
	t.Helper()
	server, service := testServer(t, workers)
	if opts.Registry == nil {
		opts.Registry = service.Scheduler().Metrics().Registry()
	}
	service.SetAdmission(admit.New(opts))
	return server.URL, service
}

// postWithDeadline POSTs a run request carrying an explicit wire
// deadline header value.
func postWithDeadline(t *testing.T, url, deadline string, req RunRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(admit.DeadlineHeader, deadline)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func TestHTTPOverloadTyped429(t *testing.T) {
	url, svc := admitServer(t, 1, admit.Options{RunCap: 1, BatchCap: 1})
	sig := svc.Methods()[0].Signature()

	// Saturate the run lane by hand, then hit the endpoint: the request
	// must be rejected before any execution with the full 429 contract.
	release, err := svc.Admission().Admit(admit.ClassRun)
	if err != nil {
		t.Fatalf("pre-fill admit: %v", err)
	}

	resp, body := postJSON(t, url+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", ra)
	}
	var ep ErrorPayload
	if err := json.Unmarshal(body, &ep); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if ep.Kind != ErrKindOverloaded {
		t.Fatalf("kind = %q, want %q", ep.Kind, ErrKindOverloaded)
	}

	// Release the slot: the same request is admitted and runs normally —
	// the lane recovers, nothing is wedged.
	release()
	resp, body = postJSON(t, url+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d: %s", resp.StatusCode, body)
	}
	if got := svc.Admission().Depth(admit.ClassRun); got != 0 {
		t.Fatalf("run depth after recovery = %d, want 0", got)
	}
}

func TestHTTPFloodShedsAndStaysByteIdentical(t *testing.T) {
	// Flood at several times the run-lane capacity: shed requests get
	// typed 429s, zero requests get 5xx, and every admitted result is
	// byte-identical to the serial local path for the same job.
	url, svc := admitServer(t, 2, admit.Options{RunCap: 2})
	sig := svc.Methods()[0].Signature()

	want, err := svc.RunLocal(context.Background(), "Compact2", sig, 0)
	if err != nil {
		t.Fatalf("local oracle run: %v", err)
	}
	wantJSON, _ := json.Marshal(want)

	const flood = 16
	type outcome struct {
		status int
		body   []byte
		ra     string
	}
	results := make([]outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, url+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
			results[i] = outcome{resp.StatusCode, body, resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			var got RunPayload
			if err := json.Unmarshal(r.body, &got); err != nil {
				t.Fatalf("decode admitted result %d: %v", i, err)
			}
			gotJSON, _ := json.Marshal(got)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("admitted result %d diverged from serial path:\n got %s\nwant %s", i, gotJSON, wantJSON)
			}
		case http.StatusTooManyRequests:
			if secs, err := strconv.Atoi(r.ra); err != nil || secs < 1 {
				t.Fatalf("rejection %d Retry-After = %q, want positive seconds", i, r.ra)
			}
		default:
			t.Fatalf("request %d: status %d (flood must produce only 200s and 429s): %s", i, r.status, r.body)
		}
	}
	if ok == 0 {
		t.Fatal("flood starved every request; admitted work must still complete")
	}
	// Recovery: depth back to zero and a fresh request admitted.
	if got := svc.Admission().Depth(admit.ClassRun); got != 0 {
		t.Fatalf("run depth after flood = %d, want 0", got)
	}
	resp, body := postJSON(t, url+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-flood request status %d: %s", resp.StatusCode, body)
	}
}

func TestHTTPDeadlineShedExpiredOnArrival(t *testing.T) {
	url, svc := admitServer(t, 1, admit.Options{})
	sig := svc.Methods()[0].Signature()

	expired := admit.FormatDeadline(time.Now().Add(-2 * time.Second))
	resp := postWithDeadline(t, url+"/v1/run", expired, RunRequest{Config: "Compact2", Method: sig})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", resp.StatusCode)
	}
	var ep ErrorPayload
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
		t.Fatalf("decode shed body: %v", err)
	}
	if ep.Kind != ErrKindDeadline {
		t.Fatalf("kind = %q, want %q", ep.Kind, ErrKindDeadline)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Shed, not executed: no job ran.
	if jobs := svc.Scheduler().Metrics().Snapshot(nil, nil).Jobs; jobs != 0 {
		t.Fatalf("shed request still ran %d jobs", jobs)
	}
	if st := svc.Admission().Stats(); st.Classes[0].DeadlineSheds != 1 {
		t.Fatalf("deadline sheds = %d, want 1", st.Classes[0].DeadlineSheds)
	}
}

func TestHTTPMalformedDeadlineIsIgnored(t *testing.T) {
	url, svc := admitServer(t, 1, admit.Options{})
	sig := svc.Methods()[0].Signature()

	for _, hostile := range []string{"garbage", "-5", "99999999999999999999999"} {
		resp := postWithDeadline(t, url+"/v1/run", hostile, RunRequest{Config: "Compact2", Method: sig})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deadline %q: status %d, want 200 (hostile values mean no deadline)", hostile, resp.StatusCode)
		}
	}
}

func TestHTTPMetricsCarryAdmissionBlock(t *testing.T) {
	url, svc := admitServer(t, 1, admit.Options{RunCap: 1})
	// Force one rejection so the counters are non-zero.
	rel, err := svc.Admission().Admit(admit.ClassRun)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Admission().Admit(admit.ClassRun); err == nil {
		t.Fatal("second admit at cap 1 should reject")
	}
	rel()

	var snap MetricsSnapshot
	getJSON(t, url+"/metrics", &snap)
	if snap.Admission == nil {
		t.Fatal("GET /metrics missing admission block")
	}
	if len(snap.Admission.Classes) != 3 {
		t.Fatalf("admission classes = %d, want 3", len(snap.Admission.Classes))
	}
	if snap.Admission.Classes[0].Rejected != 1 {
		t.Fatalf("run rejected = %d, want 1", snap.Admission.Classes[0].Rejected)
	}

	// The Prometheus exposition carries the per-class gauges too.
	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET prometheus: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read prometheus body: %v", err)
	}
	for _, want := range []string{
		`javaflow_admit_queue_depth{class="run"}`,
		`javaflow_admit_rejections_total{class="run"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestHTTPDrainingRejectsNewWork(t *testing.T) {
	url, svc := admitServer(t, 1, admit.Options{})
	sig := svc.Methods()[0].Signature()
	svc.Admission().SetDraining(true)
	resp, body := postJSON(t, url+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining status %d, want 429: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), ErrKindOverloaded) {
		t.Fatalf("draining body missing typed kind: %s", body)
	}
}
