package serve

// This file is the fleet-level observability plane: cross-node trace
// assembly (GET /v1/trace/{traceID}) and fleet health aggregation
// (GET /v1/fleet). Both fan out to the configured peers with bounded
// concurrency and a per-peer timeout, tolerate dead peers, and mark
// the result partial rather than failing — a fleet view that goes dark
// whenever one node does would be useless exactly when it matters.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"javaflow/internal/obs"
)

const (
	// fleetPeerTimeout bounds each peer fetch during a fan-out.
	fleetPeerTimeout = 2 * time.Second
	// fleetFanOut bounds how many peers are queried concurrently.
	fleetFanOut = 8
)

// Fleet is the peer set the fleet-observability endpoints fan out to.
// Attach one with Service.SetFleet; without it the endpoints still
// work, reporting this node alone.
type Fleet struct {
	peers  []string
	client *http.Client
}

// NewFleet builds a fleet view over the given peer base URLs (the same
// -peers list dispatch and replication use). A nil client gets a
// default with the per-peer timeout baked in.
func NewFleet(peers []string, client *http.Client) *Fleet {
	if client == nil {
		client = &http.Client{Timeout: fleetPeerTimeout}
	}
	return &Fleet{peers: peers, client: client}
}

// Peers lists the configured peer base URLs.
func (f *Fleet) Peers() []string {
	if f == nil {
		return nil
	}
	return f.peers
}

// fanOut runs fn once per peer with bounded concurrency, collecting
// one result per peer in peer order. Each call gets its own
// timeout-bounded context, so one hung peer delays the fan-out by at
// most fleetPeerTimeout, not forever.
func fanOut[T any](ctx context.Context, peers []string, fn func(ctx context.Context, peer string) T) []T {
	out := make([]T, len(peers))
	sem := make(chan struct{}, fleetFanOut)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pctx, cancel := context.WithTimeout(ctx, fleetPeerTimeout)
			defer cancel()
			out[i] = fn(pctx, p)
		}()
	}
	wg.Wait()
	return out
}

// getJSON fetches url and decodes the body into v.
func (f *Fleet) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("http %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(v)
}

// localSpans builds this node's NodeSpans for one trace.
func localSpans(m *Metrics, traceID string) obs.NodeSpans {
	spans := m.Tracer().SpansFor(traceID)
	if spans == nil {
		spans = []obs.Span{}
	}
	return obs.NodeSpans{Node: localNodeName(m), Spans: spans}
}

// localNodeName names this node in fleet output: the advertise URL
// when configured, "local" otherwise.
func localNodeName(m *Metrics) string {
	if n := m.Node(); n != "" {
		return n
	}
	return "local"
}

// AssembleTrace gathers one trace's spans from this node and every
// fleet peer (each peer's local /debug/traces/{traceID} — never the
// recursive /v1/trace, so a fleet where every node lists the others
// terminates after one fan-out) and stitches them into one tree.
// Unreachable peers surface as partial results, never as errors.
func (s *Service) AssembleTrace(ctx context.Context, traceID string) obs.AssembledTrace {
	m := s.Scheduler().Metrics()
	nodes := []obs.NodeSpans{localSpans(m, traceID)}
	if f := s.fleet; f != nil {
		nodes = append(nodes, fanOut(ctx, f.peers, func(pctx context.Context, peer string) obs.NodeSpans {
			var got obs.NodeSpans
			if err := f.getJSON(pctx, peer+"/debug/traces/"+traceID, &got); err != nil {
				return obs.NodeSpans{Node: peer, Err: err.Error(), Spans: []obs.Span{}}
			}
			if got.Node == "" {
				got.Node = peer
			}
			return got
		})...)
	}
	return obs.AssembleTrace(traceID, nodes)
}

// FleetNodeHealth is one node's row in the GET /v1/fleet document.
type FleetNodeHealth struct {
	Node string `json:"node"`
	Up   bool   `json:"up"`
	Err  string `json:"error,omitempty"`
	// Metrics is the node's full /metrics snapshot when it answered.
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
}

// FleetAggregate is the fleet-wide merge: counters summed, latency
// histograms merged bucket-by-bucket (exact — every node shares the
// same boundaries) so the fleet percentiles are true percentiles of
// the union, not averages of per-node quantiles.
type FleetAggregate struct {
	Requests     int64   `json:"requests"`
	Jobs         int64   `json:"jobs"`
	JobErrors    int64   `json:"jobErrors"`
	InFlight     int64   `json:"inFlight"`
	Events       uint64  `json:"events"`
	P50LatencyMS float64 `json:"p50LatencyMs"`
	P95LatencyMS float64 `json:"p95LatencyMs"`
	P99LatencyMS float64 `json:"p99LatencyMs"`
}

// FleetSnapshot is the GET /v1/fleet response body.
type FleetSnapshot struct {
	NodesUp    int `json:"nodesUp"`
	NodesTotal int `json:"nodesTotal"`
	// Partial marks a document missing at least one node's numbers.
	Partial bool              `json:"partial"`
	Fleet   FleetAggregate    `json:"fleet"`
	Nodes   []FleetNodeHealth `json:"nodes"`
}

// FleetSnapshot scrapes every peer's /metrics JSON concurrently,
// folds the answers together with this node's own snapshot, and
// reports per-node up/down alongside the lossless fleet-wide merge.
func (s *Service) FleetSnapshot(ctx context.Context) FleetSnapshot {
	local := s.snapshotFull()
	nodes := []FleetNodeHealth{{
		Node:    localNodeName(s.Scheduler().Metrics()),
		Up:      true,
		Metrics: &local,
	}}
	if f := s.fleet; f != nil {
		nodes = append(nodes, fanOut(ctx, f.peers, func(pctx context.Context, peer string) FleetNodeHealth {
			var snap MetricsSnapshot
			if err := f.getJSON(pctx, peer+"/metrics", &snap); err != nil {
				return FleetNodeHealth{Node: peer, Err: err.Error()}
			}
			name := peer
			if snap.Node != "" {
				// Prefer the node's self-reported name (its advertise URL),
				// matching how trace assembly names peer span sets.
				name = snap.Node
			}
			return FleetNodeHealth{Node: name, Up: true, Metrics: &snap}
		})...)
	}

	out := FleetSnapshot{NodesTotal: len(nodes), Nodes: nodes}
	var lat obs.HistogramSnapshot
	for _, n := range nodes {
		if !n.Up || n.Metrics == nil {
			out.Partial = true
			continue
		}
		out.NodesUp++
		m := n.Metrics
		out.Fleet.Requests += m.Requests
		out.Fleet.Jobs += m.Jobs
		out.Fleet.JobErrors += m.JobErrors
		out.Fleet.InFlight += m.InFlight
		out.Fleet.Events += m.Events
		if m.JobLatency != nil {
			lat = lat.Merge(*m.JobLatency)
		}
	}
	out.Fleet.P50LatencyMS = float64(lat.Quantile(0.50)) / float64(time.Millisecond)
	out.Fleet.P95LatencyMS = float64(lat.Quantile(0.95)) / float64(time.Millisecond)
	out.Fleet.P99LatencyMS = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
	return out
}

// snapshotFull builds the GET /metrics JSON body: the scheduler
// snapshot plus the dispatch, replication and admission blocks.
func (s *Service) snapshotFull() MetricsSnapshot {
	snap := s.sched.Snapshot()
	if ds, ok := s.runner.(DispatchStatser); ok {
		snap.Dispatch = ds.DispatchStats()
	}
	if rp := s.replicator; rp != nil {
		stats := rp.Stats()
		snap.Replication = &stats
	}
	if ac := s.admission; ac != nil {
		stats := ac.Stats()
		snap.Admission = &stats
	}
	return snap
}
