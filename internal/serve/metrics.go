package serve

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/obs"
	"javaflow/internal/replicate"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// slowestWindowDur is how long a slowest-job exemplar stays current: the
// reported trace ID is the slowest sample of the last one-to-two
// windows, so a stale outlier from hours ago never masquerades as the
// reason today's p99 looks bad.
const slowestWindowDur = time.Minute

// Metrics tracks service-level counters: request and job volume, cache
// effectiveness, in-flight work, and job-latency percentiles from a
// log-bucketed histogram (no sample window — recording is atomic adds and
// quantiles are exact bucket bounds). Every Metrics owns the process
// Registry, Tracer and Journal the rest of the node registers into, so
// one GET /metrics?format=prometheus scrape, one GET /debug/traces dump
// and one GET /debug/events render cover every subsystem wired to this
// scheduler. All methods are safe for concurrent use.
type Metrics struct {
	requests  atomic.Int64 // HTTP requests served
	jobs      atomic.Int64 // simulation jobs completed
	jobErrors atomic.Int64 // jobs that returned an error (incl. skips)
	inFlight  atomic.Int64 // jobs currently executing

	start time.Time // rate base for the engine throughput gauges
	node  string    // this node's fleet name (advertise URL or "")

	reg         *obs.Registry
	tracer      *obs.Tracer
	journal     *obs.Journal
	jobLatency  *obs.Histogram    // all jobs, warm and cold
	httpLatency *obs.HistogramVec // per-endpoint request latency
	slowest     slowestWindow     // slowest-job trace exemplar
}

// MetricsOptions configures a Metrics collector. The zero value is
// valid: anonymous node, default ring sizes.
type MetricsOptions struct {
	// Node names this node in fleet-facing output (events, assembled
	// traces, /v1/fleet rows) — jfserved passes its advertise URL.
	Node string
	// TraceRing bounds the recent-span ring (<=0 uses the default 512).
	TraceRing int
	// EventRing bounds the event journal (<=0 uses the default 512).
	EventRing int
}

// NewMetrics returns a metrics collector with default options.
func NewMetrics() *Metrics { return NewMetricsOpts(MetricsOptions{}) }

// NewMetricsOpts returns a metrics collector with its registry
// pre-populated with the serve, engine, runtime and build-info
// instruments, its trace and event rings sized per opts.
func NewMetricsOpts(opts MetricsOptions) *Metrics {
	m := &Metrics{
		start:   time.Now(),
		node:    opts.Node,
		reg:     obs.NewRegistry(),
		tracer:  obs.NewTracer(opts.TraceRing),
		journal: obs.NewJournal(opts.Node, opts.EventRing),
	}
	m.slowest.win = slowestWindowDur
	m.jobLatency = m.reg.NewHistogram("javaflow_job_duration_seconds",
		"Simulation job latency, warm cache hits and cold engine runs alike.")
	m.httpLatency = m.reg.NewHistogramVec("javaflow_http_request_duration_seconds",
		"HTTP request latency by endpoint.", "endpoint")
	m.reg.CounterFunc("javaflow_http_requests_total", "HTTP requests served.",
		func() float64 { return float64(m.requests.Load()) })
	m.reg.CounterFunc("javaflow_jobs_total", "Simulation jobs completed.",
		func() float64 { return float64(m.jobs.Load()) })
	m.reg.CounterFunc("javaflow_job_errors_total", "Simulation jobs that returned an error.",
		func() float64 { return float64(m.jobErrors.Load()) })
	m.reg.GaugeFunc("javaflow_jobs_inflight", "Simulation jobs currently executing.",
		func() float64 { return float64(m.inFlight.Load()) })
	m.reg.CounterFunc("javaflow_engine_runs_total", "Engine method runs completed process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().Runs) })
	m.reg.CounterFunc("javaflow_engine_mesh_cycles_total", "Mesh cycles simulated process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().SimulatedMeshCycles) })
	m.reg.CounterFunc("javaflow_engine_events_total", "Engine events processed process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().Events) })
	m.reg.CounterFunc("javaflow_engine_cycles_skipped_total", "Mesh cycles fast-forwarded instead of ticked.",
		func() float64 { return float64(sim.TotalEngineStats().CyclesSkipped) })
	m.reg.GaugeFunc("javaflow_engine_mesh_cycles_per_second", "Simulated mesh cycles per second of uptime.",
		func() float64 { return m.engineThroughput().MeshCyclesPerSec })
	m.reg.CounterFunc("javaflow_trace_spans_total", "Trace spans finished on this node.",
		func() float64 { return float64(m.tracer.SpanCount()) })
	m.reg.GaugeFunc("javaflow_build_info",
		"Build metadata as labels; the value is always 1.",
		func() float64 { return 1 },
		"go_version", runtime.Version(),
		"engine_version", strconv.Itoa(sim.EngineVersion),
		"module_version", moduleVersion())
	// Every first-seen event kind mints its own javaflow_events_total
	// series; the counters live in the journal and survive ring
	// wraparound.
	m.journal.OnNewKind(func(subsystem, kind string, n *atomic.Uint64) {
		m.reg.CounterFunc("javaflow_events_total", "Structured journal events by subsystem and kind.",
			func() float64 { return float64(n.Load()) },
			"subsystem", subsystem, "kind", kind)
	})
	obs.RegisterRuntimeMetrics(m.reg)
	return m
}

// moduleVersion reports the main module's version from the build info
// ("(devel)" for plain go-build trees, "unknown" without build info).
func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// Registry is the node-wide instrument registry; subsystems wired to this
// scheduler (store, dispatch, replicate) register into it at startup.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Tracer records this node's spans; dispatch and replicate share it so
// one /debug/traces dump shows every hop the node participated in.
func (m *Metrics) Tracer() *obs.Tracer { return m.tracer }

// Journal is this node's structured event ring; every subsystem emits
// state transitions into it so one /debug/events render shows them all.
func (m *Metrics) Journal() *obs.Journal { return m.journal }

// Node reports this node's fleet name ("" when anonymous).
func (m *Metrics) Node() string { return m.node }

// RecordRequest counts one HTTP request.
func (m *Metrics) RecordRequest() { m.requests.Add(1) }

// RecordHTTP files one request's latency under its endpoint label.
func (m *Metrics) RecordHTTP(endpoint string, d time.Duration) {
	m.httpLatency.With(endpoint).Record(d)
}

// JobStarted marks a simulation job in flight and returns its start time.
func (m *Metrics) JobStarted() time.Time {
	m.inFlight.Add(1)
	return time.Now()
}

// JobFinished completes the accounting JobStarted opened. traceID, when
// non-empty, feeds the slowest-job exemplar so a bad percentile links
// straight to an assembled trace.
func (m *Metrics) JobFinished(start time.Time, traceID string, err error) {
	m.inFlight.Add(-1)
	m.jobs.Add(1)
	if err != nil {
		m.jobErrors.Add(1)
	}
	d := time.Since(start)
	m.jobLatency.Record(d)
	m.slowest.record(d, traceID)
}

// slowSample is one slowest-job candidate.
type slowSample struct {
	traceID string
	ns      int64
}

// slowestWindow keeps the slowest job sample over a two-bucket rotating
// window: the current window plus the previous one, so the exemplar
// never goes blank at a window boundary yet ages out within two
// windows. O(1) under a short mutex, per the obs invariant.
type slowestWindow struct {
	mu       sync.Mutex
	win      time.Duration
	curStart time.Time
	cur      slowSample
	prev     slowSample
}

func (w *slowestWindow) record(d time.Duration, traceID string) {
	if traceID == "" {
		return
	}
	ns := d.Nanoseconds()
	w.mu.Lock()
	w.rotate(time.Now())
	if ns > w.cur.ns || w.cur.traceID == "" {
		w.cur = slowSample{traceID: traceID, ns: ns}
	}
	w.mu.Unlock()
}

// slowestTraceID reports the trace of the slowest sample in the live
// windows ("" when no traced job ran recently).
func (w *slowestWindow) slowestTraceID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(time.Now())
	if w.prev.ns > w.cur.ns {
		return w.prev.traceID
	}
	return w.cur.traceID
}

// rotate advances the window buckets; callers hold mu.
func (w *slowestWindow) rotate(now time.Time) {
	if w.curStart.IsZero() {
		w.curStart = now
		return
	}
	age := now.Sub(w.curStart)
	switch {
	case age >= 2*w.win:
		// Idle across both buckets: everything is stale.
		w.cur, w.prev = slowSample{}, slowSample{}
		w.curStart = now
	case age >= w.win:
		w.prev = w.cur
		w.cur = slowSample{}
		w.curStart = w.curStart.Add(w.win)
	}
}

// EngineThroughput is the engine-core gauge block of /metrics: the
// process-wide totals of the event-driven simulation core plus derived
// rates over the service's uptime. CyclesSkipped over SimulatedMeshCycles
// is the fraction of simulated time the core fast-forwarded instead of
// ticking.
type EngineThroughput struct {
	sim.EngineTotals
	MeshCyclesPerSec float64 `json:"meshCyclesPerSec"`
	EventsPerSec     float64 `json:"eventsPerSec"`
}

// MetricsSnapshot is the JSON shape of GET /metrics. Store is nil when the
// service runs memory-only (no -store-dir).
type MetricsSnapshot struct {
	Node         string  `json:"node,omitempty"`
	Requests     int64   `json:"requests"`
	Jobs         int64   `json:"jobs"`
	JobErrors    int64   `json:"jobErrors"`
	InFlight     int64   `json:"inFlight"`
	P50LatencyMS float64 `json:"p50LatencyMs"`
	P95LatencyMS float64 `json:"p95LatencyMs"`
	P99LatencyMS float64 `json:"p99LatencyMs"`
	// SlowestTraceID is the trace of the slowest recent job — the
	// exemplar that links a bad p99 straight to GET /v1/trace/{id}.
	SlowestTraceID string `json:"slowestTraceId,omitempty"`
	// JobLatency is the raw job-latency bucket snapshot. GET /v1/fleet
	// merges these across nodes losslessly (all histograms share
	// boundaries), which averaged percentiles cannot do.
	JobLatency *obs.HistogramSnapshot `json:"jobLatency,omitempty"`
	Events     uint64                 `json:"events,omitempty"`
	Cache      CacheStats             `json:"cache"`
	Engine     EngineThroughput       `json:"engine"`
	Store      *store.Stats           `json:"store,omitempty"`
	// Dispatch carries the multi-node dispatcher's per-backend and ring
	// stats when the service fronts remote peers (dispatch.Stats; typed as
	// any because the dispatch layer builds on serve, not the reverse).
	Dispatch any `json:"dispatch,omitempty"`
	// Replication carries the anti-entropy replicator's per-peer cursor
	// and sync state when this node pulls warm results from peers.
	Replication *replicate.Stats `json:"replication,omitempty"`
	// Admission carries the overload-protection controller's per-class
	// queue depths, caps and rejection counters when admission is bounded.
	Admission *admit.Stats `json:"admission,omitempty"`
}

// Snapshot captures the current counters plus the given cache's and
// store's stats (either may be nil). Latency percentiles come straight
// from the job histogram's buckets — no copy, no sort.
func (m *Metrics) Snapshot(cache *DeploymentCache, st *store.Store) MetricsSnapshot {
	lat := m.jobLatency.Snapshot()
	snap := MetricsSnapshot{
		Node:           m.node,
		Requests:       m.requests.Load(),
		Jobs:           m.jobs.Load(),
		JobErrors:      m.jobErrors.Load(),
		InFlight:       m.inFlight.Load(),
		P50LatencyMS:   float64(lat.Quantile(0.50)) / float64(time.Millisecond),
		P95LatencyMS:   float64(lat.Quantile(0.95)) / float64(time.Millisecond),
		P99LatencyMS:   float64(lat.Quantile(0.99)) / float64(time.Millisecond),
		SlowestTraceID: m.slowest.slowestTraceID(),
		JobLatency:     &lat,
		Events:         m.journal.EventCount(),
		Engine:         m.engineThroughput(),
	}
	if cache != nil {
		snap.Cache = cache.Stats()
	}
	if st != nil {
		stats := st.Stats()
		snap.Store = &stats
	}
	return snap
}

// engineThroughput derives the engine gauges from the process-wide sim
// totals and this collector's uptime.
func (m *Metrics) engineThroughput() EngineThroughput {
	et := EngineThroughput{EngineTotals: sim.TotalEngineStats()}
	if secs := time.Since(m.start).Seconds(); secs > 0 {
		et.MeshCyclesPerSec = float64(et.SimulatedMeshCycles) / secs
		et.EventsPerSec = float64(et.Events) / secs
	}
	return et
}
