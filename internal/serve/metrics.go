package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"javaflow/internal/replicate"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// latencyWindow bounds the sliding sample set percentiles are computed
// over; at one sample per job, 4096 covers several recent sweeps.
const latencyWindow = 4096

// Metrics tracks service-level counters: request and job volume, cache
// effectiveness, in-flight work, and recent-latency percentiles. All
// methods are safe for concurrent use.
type Metrics struct {
	requests  atomic.Int64 // HTTP requests served
	jobs      atomic.Int64 // simulation jobs completed
	jobErrors atomic.Int64 // jobs that returned an error (incl. skips)
	inFlight  atomic.Int64 // jobs currently executing

	start time.Time // rate base for the engine throughput gauges

	mu      sync.Mutex
	samples []time.Duration // ring buffer of recent job latencies
	next    int
	filled  bool
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{samples: make([]time.Duration, latencyWindow), start: time.Now()}
}

// RecordRequest counts one HTTP request.
func (m *Metrics) RecordRequest() { m.requests.Add(1) }

// JobStarted marks a simulation job in flight and returns its start time.
func (m *Metrics) JobStarted() time.Time {
	m.inFlight.Add(1)
	return time.Now()
}

// JobFinished completes the accounting JobStarted opened.
func (m *Metrics) JobFinished(start time.Time, err error) {
	m.inFlight.Add(-1)
	m.jobs.Add(1)
	if err != nil {
		m.jobErrors.Add(1)
	}
	d := time.Since(start)
	m.mu.Lock()
	m.samples[m.next] = d
	m.next++
	if m.next == len(m.samples) {
		m.next = 0
		m.filled = true
	}
	m.mu.Unlock()
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// EngineThroughput is the engine-core gauge block of /metrics: the
// process-wide totals of the event-driven simulation core plus derived
// rates over the service's uptime. CyclesSkipped over SimulatedMeshCycles
// is the fraction of simulated time the core fast-forwarded instead of
// ticking.
type EngineThroughput struct {
	sim.EngineTotals
	MeshCyclesPerSec float64 `json:"meshCyclesPerSec"`
	EventsPerSec     float64 `json:"eventsPerSec"`
}

// MetricsSnapshot is the JSON shape of GET /metrics. Store is nil when the
// service runs memory-only (no -store-dir).
type MetricsSnapshot struct {
	Requests     int64            `json:"requests"`
	Jobs         int64            `json:"jobs"`
	JobErrors    int64            `json:"jobErrors"`
	InFlight     int64            `json:"inFlight"`
	P50LatencyMS float64          `json:"p50LatencyMs"`
	P95LatencyMS float64          `json:"p95LatencyMs"`
	Cache        CacheStats       `json:"cache"`
	Engine       EngineThroughput `json:"engine"`
	Store        *store.Stats     `json:"store,omitempty"`
	// Dispatch carries the multi-node dispatcher's per-backend and ring
	// stats when the service fronts remote peers (dispatch.Stats; typed as
	// any because the dispatch layer builds on serve, not the reverse).
	Dispatch any `json:"dispatch,omitempty"`
	// Replication carries the anti-entropy replicator's per-peer cursor
	// and sync state when this node pulls warm results from peers.
	Replication *replicate.Stats `json:"replication,omitempty"`
}

// Snapshot captures the current counters plus the given cache's and
// store's stats (either may be nil).
func (m *Metrics) Snapshot(cache *DeploymentCache, st *store.Store) MetricsSnapshot {
	m.mu.Lock()
	n := m.next
	if m.filled {
		n = len(m.samples)
	}
	sorted := make([]time.Duration, n)
	copy(sorted, m.samples[:n])
	m.mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	snap := MetricsSnapshot{
		Requests:     m.requests.Load(),
		Jobs:         m.jobs.Load(),
		JobErrors:    m.jobErrors.Load(),
		InFlight:     m.inFlight.Load(),
		P50LatencyMS: float64(percentile(sorted, 0.50)) / float64(time.Millisecond),
		P95LatencyMS: float64(percentile(sorted, 0.95)) / float64(time.Millisecond),
		Engine:       m.engineThroughput(),
	}
	if cache != nil {
		snap.Cache = cache.Stats()
	}
	if st != nil {
		stats := st.Stats()
		snap.Store = &stats
	}
	return snap
}

// engineThroughput derives the engine gauges from the process-wide sim
// totals and this collector's uptime.
func (m *Metrics) engineThroughput() EngineThroughput {
	et := EngineThroughput{EngineTotals: sim.TotalEngineStats()}
	if secs := time.Since(m.start).Seconds(); secs > 0 {
		et.MeshCyclesPerSec = float64(et.SimulatedMeshCycles) / secs
		et.EventsPerSec = float64(et.Events) / secs
	}
	return et
}
