package serve

import (
	"sync/atomic"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/obs"
	"javaflow/internal/replicate"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// Metrics tracks service-level counters: request and job volume, cache
// effectiveness, in-flight work, and job-latency percentiles from a
// log-bucketed histogram (no sample window — recording is atomic adds and
// quantiles are exact bucket bounds). Every Metrics owns the process
// Registry and Tracer the rest of the node registers into, so one
// GET /metrics?format=prometheus scrape and one GET /debug/traces dump
// cover every subsystem wired to this scheduler. All methods are safe
// for concurrent use.
type Metrics struct {
	requests  atomic.Int64 // HTTP requests served
	jobs      atomic.Int64 // simulation jobs completed
	jobErrors atomic.Int64 // jobs that returned an error (incl. skips)
	inFlight  atomic.Int64 // jobs currently executing

	start time.Time // rate base for the engine throughput gauges

	reg         *obs.Registry
	tracer      *obs.Tracer
	jobLatency  *obs.Histogram    // all jobs, warm and cold
	httpLatency *obs.HistogramVec // per-endpoint request latency
}

// NewMetrics returns a metrics collector with its registry pre-populated
// with the serve, engine and runtime instruments.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:  time.Now(),
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(0),
	}
	m.jobLatency = m.reg.NewHistogram("javaflow_job_duration_seconds",
		"Simulation job latency, warm cache hits and cold engine runs alike.")
	m.httpLatency = m.reg.NewHistogramVec("javaflow_http_request_duration_seconds",
		"HTTP request latency by endpoint.", "endpoint")
	m.reg.CounterFunc("javaflow_http_requests_total", "HTTP requests served.",
		func() float64 { return float64(m.requests.Load()) })
	m.reg.CounterFunc("javaflow_jobs_total", "Simulation jobs completed.",
		func() float64 { return float64(m.jobs.Load()) })
	m.reg.CounterFunc("javaflow_job_errors_total", "Simulation jobs that returned an error.",
		func() float64 { return float64(m.jobErrors.Load()) })
	m.reg.GaugeFunc("javaflow_jobs_inflight", "Simulation jobs currently executing.",
		func() float64 { return float64(m.inFlight.Load()) })
	m.reg.CounterFunc("javaflow_engine_runs_total", "Engine method runs completed process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().Runs) })
	m.reg.CounterFunc("javaflow_engine_mesh_cycles_total", "Mesh cycles simulated process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().SimulatedMeshCycles) })
	m.reg.CounterFunc("javaflow_engine_events_total", "Engine events processed process-wide.",
		func() float64 { return float64(sim.TotalEngineStats().Events) })
	m.reg.CounterFunc("javaflow_engine_cycles_skipped_total", "Mesh cycles fast-forwarded instead of ticked.",
		func() float64 { return float64(sim.TotalEngineStats().CyclesSkipped) })
	m.reg.GaugeFunc("javaflow_engine_mesh_cycles_per_second", "Simulated mesh cycles per second of uptime.",
		func() float64 { return m.engineThroughput().MeshCyclesPerSec })
	m.reg.CounterFunc("javaflow_trace_spans_total", "Trace spans finished on this node.",
		func() float64 { return float64(m.tracer.SpanCount()) })
	obs.RegisterRuntimeMetrics(m.reg)
	return m
}

// Registry is the node-wide instrument registry; subsystems wired to this
// scheduler (store, dispatch, replicate) register into it at startup.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Tracer records this node's spans; dispatch and replicate share it so
// one /debug/traces dump shows every hop the node participated in.
func (m *Metrics) Tracer() *obs.Tracer { return m.tracer }

// RecordRequest counts one HTTP request.
func (m *Metrics) RecordRequest() { m.requests.Add(1) }

// RecordHTTP files one request's latency under its endpoint label.
func (m *Metrics) RecordHTTP(endpoint string, d time.Duration) {
	m.httpLatency.With(endpoint).Record(d)
}

// JobStarted marks a simulation job in flight and returns its start time.
func (m *Metrics) JobStarted() time.Time {
	m.inFlight.Add(1)
	return time.Now()
}

// JobFinished completes the accounting JobStarted opened.
func (m *Metrics) JobFinished(start time.Time, err error) {
	m.inFlight.Add(-1)
	m.jobs.Add(1)
	if err != nil {
		m.jobErrors.Add(1)
	}
	m.jobLatency.Record(time.Since(start))
}

// EngineThroughput is the engine-core gauge block of /metrics: the
// process-wide totals of the event-driven simulation core plus derived
// rates over the service's uptime. CyclesSkipped over SimulatedMeshCycles
// is the fraction of simulated time the core fast-forwarded instead of
// ticking.
type EngineThroughput struct {
	sim.EngineTotals
	MeshCyclesPerSec float64 `json:"meshCyclesPerSec"`
	EventsPerSec     float64 `json:"eventsPerSec"`
}

// MetricsSnapshot is the JSON shape of GET /metrics. Store is nil when the
// service runs memory-only (no -store-dir).
type MetricsSnapshot struct {
	Requests     int64            `json:"requests"`
	Jobs         int64            `json:"jobs"`
	JobErrors    int64            `json:"jobErrors"`
	InFlight     int64            `json:"inFlight"`
	P50LatencyMS float64          `json:"p50LatencyMs"`
	P95LatencyMS float64          `json:"p95LatencyMs"`
	P99LatencyMS float64          `json:"p99LatencyMs"`
	Cache        CacheStats       `json:"cache"`
	Engine       EngineThroughput `json:"engine"`
	Store        *store.Stats     `json:"store,omitempty"`
	// Dispatch carries the multi-node dispatcher's per-backend and ring
	// stats when the service fronts remote peers (dispatch.Stats; typed as
	// any because the dispatch layer builds on serve, not the reverse).
	Dispatch any `json:"dispatch,omitempty"`
	// Replication carries the anti-entropy replicator's per-peer cursor
	// and sync state when this node pulls warm results from peers.
	Replication *replicate.Stats `json:"replication,omitempty"`
	// Admission carries the overload-protection controller's per-class
	// queue depths, caps and rejection counters when admission is bounded.
	Admission *admit.Stats `json:"admission,omitempty"`
}

// Snapshot captures the current counters plus the given cache's and
// store's stats (either may be nil). Latency percentiles come straight
// from the job histogram's buckets — no copy, no sort.
func (m *Metrics) Snapshot(cache *DeploymentCache, st *store.Store) MetricsSnapshot {
	lat := m.jobLatency.Snapshot()
	snap := MetricsSnapshot{
		Requests:     m.requests.Load(),
		Jobs:         m.jobs.Load(),
		JobErrors:    m.jobErrors.Load(),
		InFlight:     m.inFlight.Load(),
		P50LatencyMS: float64(lat.Quantile(0.50)) / float64(time.Millisecond),
		P95LatencyMS: float64(lat.Quantile(0.95)) / float64(time.Millisecond),
		P99LatencyMS: float64(lat.Quantile(0.99)) / float64(time.Millisecond),
		Engine:       m.engineThroughput(),
	}
	if cache != nil {
		snap.Cache = cache.Stats()
	}
	if st != nil {
		stats := st.Stats()
		snap.Store = &stats
	}
	return snap
}

// engineThroughput derives the engine gauges from the process-wide sim
// totals and this collector's uptime.
func (m *Metrics) engineThroughput() EngineThroughput {
	et := EngineThroughput{EngineTotals: sim.TotalEngineStats()}
	if secs := time.Since(m.start).Seconds(); secs > 0 {
		et.MeshCyclesPerSec = float64(et.SimulatedMeshCycles) / secs
		et.EventsPerSec = float64(et.Events) / secs
	}
	return et
}
