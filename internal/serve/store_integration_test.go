package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// storeSession is one simulated jfserved process life: a fresh scheduler,
// cache and HTTP handler over the given (persistent) store.
type storeSession struct {
	t     *testing.T
	sched *Scheduler
	ts    *httptest.Server
}

func newStoreSession(t *testing.T, st *store.Store, sigs []string) *storeSession {
	t.Helper()
	methods := hostableMethods(t, len(sigs))
	sched := NewScheduler(SchedulerOptions{Workers: 4, Store: st})
	svc := NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return &storeSession{t: t, sched: sched, ts: ts}
}

func (s *storeSession) post(path, body string) []byte {
	s.t.Helper()
	resp, err := http.Post(s.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		s.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		s.t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		s.t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestStoreWarmRestartByteIdentical is the PR's acceptance test: a second
// service process pointed at the same -store-dir must serve previously
// computed (signature, config) pairs from the store — byte-identical to
// the cold run and without re-running the engine.
func TestStoreWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sigs := make([]string, 3)
	for i, m := range hostableMethods(t, 3) {
		sigs[i] = m.Signature()
	}
	runBody := fmt.Sprintf(`{"config":"Compact2","method":%q}`, sigs[0])
	batchBody := fmt.Sprintf(`{"configs":["Compact4","Compact2"],"methods":[%q,%q,%q]}`,
		sigs[0], sigs[1], sigs[2])

	// --- Cold process life: everything computed by the engine. ---
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	cold := newStoreSession(t, st1, sigs)
	coldRun := cold.post("/v1/run", runBody)
	coldBatch := cold.post("/v1/batch", batchBody)
	coldSnap := cold.sched.Snapshot()
	// 7 jobs total; the batch's (Compact2, sigs[0]) job re-reads the
	// /v1/run result already persisted in this same process life, so the
	// cold pass itself sees exactly one store hit and six misses.
	if coldSnap.Store == nil || coldSnap.Store.RunMisses != 6 || coldSnap.Store.RunHits != 1 {
		t.Fatalf("cold store stats = %+v, want 6 run misses / 1 run hit", coldSnap.Store)
	}
	if coldSnap.Store.Puts == 0 {
		t.Fatalf("cold run persisted nothing: %+v", coldSnap.Store)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// --- Warm process life: same dir, fresh cache and scheduler. ---
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	warm := newStoreSession(t, st2, sigs)
	warmRun := warm.post("/v1/run", runBody)
	warmBatch := warm.post("/v1/batch", batchBody)
	warmSnap := warm.sched.Snapshot()

	if !bytes.Equal(coldRun, warmRun) {
		t.Fatalf("warm /v1/run differs from cold:\ncold %s\nwarm %s", coldRun, warmRun)
	}
	if !bytes.Equal(coldBatch, warmBatch) {
		t.Fatalf("warm /v1/batch differs from cold:\ncold %s\nwarm %s", coldBatch, warmBatch)
	}
	// 1 run + 2 configs x 3 methods = 7 jobs, all answered by the store.
	if warmSnap.Store == nil || warmSnap.Store.RunHits != 7 {
		t.Fatalf("warm store stats = %+v, want 7 run hits", warmSnap.Store)
	}
	// A store run-hit precedes deployment, so the warm process never
	// touched the deploy pipeline at all.
	if warmSnap.Cache.Misses != 0 {
		t.Fatalf("warm run re-deployed: cache stats %+v", warmSnap.Cache)
	}

	// A new mesh-cycle bound is a run miss — the engine must execute —
	// but the deployment itself is served from the persistent store.
	warm.post("/v1/run", fmt.Sprintf(`{"config":"Compact2","method":%q,"maxMeshCycles":250000}`, sigs[0]))
	snap := warm.sched.Snapshot()
	if snap.Cache.StoreHits != 1 {
		t.Fatalf("deployment not read through the store: cache stats %+v", snap.Cache)
	}
}
