package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"javaflow/internal/replicate"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// replicaServer builds a store-backed service with one computed run and
// returns the server plus its store.
func replicaServer(t *testing.T) (*httptest.Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	methods := hostableMethods(t, 1)
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: st})
	svc := NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "Compact2", Method: methods[0].Signature()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run: status %d: %s", resp.StatusCode, body)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return ts, st, methods[0].Signature()
}

// TestHTTPReplicateSegments exercises the segment-export surface: the
// manifest lists live bytes, the segment endpoint serves exactly them,
// ?from resumes, and the error contract holds (400 bad input, 404 unknown
// segment, 404 without a store).
func TestHTTPReplicateSegments(t *testing.T) {
	ts, _, _ := replicaServer(t)

	var manifest replicate.Manifest
	getJSON(t, ts.URL+"/v1/replicate/segments", &manifest)
	if len(manifest.Segments) != 1 || manifest.Segments[0].Size == 0 {
		t.Fatalf("manifest = %+v, want one non-empty segment", manifest.Segments)
	}
	seg := manifest.Segments[0]

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	url := ts.URL + "/v1/replicate/segment/"
	resp, data := get(url + itoa(seg.Seq))
	if resp.StatusCode != http.StatusOK || int64(len(data)) != seg.Size {
		t.Fatalf("segment fetch: status %d, %d bytes (manifest %d)", resp.StatusCode, len(data), seg.Size)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Resume from the middle and from the end.
	resp, tail := get(url + itoa(seg.Seq) + "?from=10")
	if resp.StatusCode != http.StatusOK || int64(len(tail)) != seg.Size-10 {
		t.Fatalf("resumed fetch: status %d, %d bytes", resp.StatusCode, len(tail))
	}
	if string(tail) != string(data[10:]) {
		t.Fatal("resumed bytes differ from the full fetch")
	}
	resp, end := get(url + itoa(seg.Seq) + "?from=" + itoa64(seg.Size))
	if resp.StatusCode != http.StatusOK || len(end) != 0 {
		t.Fatalf("fetch at end: status %d, %d bytes, want empty 200", resp.StatusCode, len(end))
	}

	resp, _ = get(url + "999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown segment: status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(url + "nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d, want 400", resp.StatusCode)
	}
	resp, _ = get(url + itoa(seg.Seq) + "?from=-3")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad offset: status %d, want 400", resp.StatusCode)
	}

	// Without a store the whole surface is 404.
	bare, _ := testServer(t, 1)
	resp, _ = get(bare.URL + "/v1/replicate/segments")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("manifest without store: status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(bare.URL + "/v1/replicate/segment/1")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("segment without store: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPReplicationReports: with a replicator attached, GET /v1/store
// and GET /metrics both expose the replication block after a sync.
func TestHTTPReplicationReports(t *testing.T) {
	src, _, _ := replicaServer(t)

	dstStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dstStore.Close() })
	rep, err := replicate.New(replicate.Options{Store: dstStore, Peers: []string{src.URL}})
	if err != nil {
		t.Fatal(err)
	}
	methods := hostableMethods(t, 1)
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: dstStore})
	svc := NewService(sched, sim.Configurations(), methods)
	svc.SetReplicator(rep)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/replicate/sync", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d: %s", resp.StatusCode, body)
	}

	var report StoreReport
	getJSON(t, ts.URL+"/v1/store", &report)
	if report.Replication == nil || report.Replication.Rounds == 0 || len(report.Replication.Peers) != 1 {
		t.Fatalf("store report replication block = %+v, want a synced peer", report.Replication)
	}
	peer := report.Replication.Peers[0]
	if peer.Peer != src.URL || !peer.CaughtUp || peer.LastSyncUnixMs == 0 {
		t.Fatalf("peer stats = %+v, want caught-up with a sync time", peer)
	}
	if len(peer.Cursor) == 0 {
		t.Fatalf("peer stats carry no cursor: %+v", peer)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Replication == nil || len(snap.Replication.Peers) != 1 {
		t.Fatalf("metrics replication block = %+v", snap.Replication)
	}
	if snap.Store == nil || snap.Store.IngestedRecords == 0 {
		t.Fatalf("metrics store block shows no ingested records: %+v", snap.Store)
	}
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

// TestDaemonRunsReplicatorLoop: a Daemon with a Replicator pulls peers in
// the background (no forced sync), and the ordered shutdown stops the loop
// before closing the store.
func TestDaemonRunsReplicatorLoop(t *testing.T) {
	src, _, _ := replicaServer(t)

	dstStore, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replicate.New(replicate.Options{
		Store:    dstStore,
		Peers:    []string{src.URL},
		Interval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	methods := hostableMethods(t, 1)
	sched := NewScheduler(SchedulerOptions{Workers: 1, MaxMeshCycles: testMaxCycles, Store: dstStore})
	svc := NewService(sched, sim.Configurations(), methods)

	d := &Daemon{
		Addr:       "127.0.0.1:0",
		Service:    svc,
		Store:      dstStore,
		Replicator: rep,
		Drain:      5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- d.Run(ctx, func(net.Addr) { close(ready) })
	}()
	<-ready

	key := store.RunKeyFor(testConfig(t, "Compact2"), methods[0], testMaxCycles)
	deadline := time.Now().Add(10 * time.Second)
	for !dstStore.HasRun(key) {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("background replication never pulled the peer's record")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
}
