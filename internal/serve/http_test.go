package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"javaflow/internal/sim"
)

// testServer builds a service over a small hostable corpus.
func testServer(t *testing.T, workers int) (*httptest.Server, *Service) {
	t.Helper()
	methods := hostableMethods(t, 5)
	sched := NewScheduler(SchedulerOptions{Workers: workers, MaxMeshCycles: testMaxCycles})
	svc := NewService(sched, sim.Configurations(), methods)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp, out
}

func TestHTTPRegistryEndpoints(t *testing.T) {
	ts, svc := testServer(t, 2)

	var configs []ConfigInfo
	getJSON(t, ts.URL+"/v1/configs", &configs)
	if len(configs) != 6 {
		t.Fatalf("got %d configs, want the 6 of Table 15", len(configs))
	}
	if configs[0].Name != "Baseline" || !configs[0].Collapsed {
		t.Fatalf("first config = %+v, want collapsed Baseline", configs[0])
	}

	var methods []MethodInfo
	getJSON(t, ts.URL+"/v1/methods", &methods)
	if len(methods) != len(svc.Methods()) {
		t.Fatalf("got %d methods, want %d", len(methods), len(svc.Methods()))
	}
	for _, mi := range methods {
		if mi.Instructions <= 0 {
			t.Fatalf("method %s reports %d instructions", mi.Signature, mi.Instructions)
		}
	}
}

func TestHTTPRunRoundTrip(t *testing.T) {
	ts, svc := testServer(t, 2)
	sig := svc.Methods()[0].Signature()

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "Compact2", Method: sig})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var payload RunPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if payload.Signature != sig || payload.Config != "Compact2" {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.BP1.Fired == 0 || payload.MeanIPC <= 0 {
		t.Fatalf("empty execution: %+v", payload)
	}

	// The HTTP result matches the serial runner exactly.
	serial := &sim.Runner{MaxMeshCycles: testMaxCycles}
	want, err := serial.RunMethod(mustConfig(t, svc, "Compact2"), svc.Methods()[0])
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if payload.BP1 != want.BP1 || payload.BP2 != want.BP2 {
		t.Fatalf("HTTP run differs from serial runner:\n got %+v\nwant %+v", payload, want)
	}

	// Unknown names map to 404.
	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "Compact2", Method: "NoSuch.method()V"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown method: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "NoSuchConfig", Method: sig})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown config: status %d, want 404", resp.StatusCode)
	}

	// Malformed body maps to 400.
	r, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", r.StatusCode)
	}
}

func mustConfig(t *testing.T, svc *Service, name string) sim.Config {
	t.Helper()
	cfg, err := svc.Config(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestHTTPConcurrentBatches fires parallel /v1/batch sweeps and demands
// every response be byte-identical — the service must stay deterministic
// under concurrent traffic.
func TestHTTPConcurrentBatches(t *testing.T) {
	ts, _ := testServer(t, 4)

	req := BatchRequest{Configs: []string{"Baseline", "Compact2", "Sparse2"}}
	const clients = 6
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			out, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d received a different batch response", i)
		}
	}

	var parsed BatchResponse
	if err := json.Unmarshal(bodies[0], &parsed); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	if len(parsed.Results) != 3 {
		t.Fatalf("got %d config groups, want 3", len(parsed.Results))
	}
	for _, res := range parsed.Results {
		if res.Summary.Methods != len(res.Runs) || res.Summary.Methods == 0 {
			t.Fatalf("summary/runs mismatch: %+v", res.Summary)
		}
	}
}

// TestHTTPBatchMatchesSerial is the acceptance contract end to end: a
// /v1/batch sweep over the wire equals the serial sim.Runner results.
func TestHTTPBatchMatchesSerial(t *testing.T) {
	ts, svc := testServer(t, 4)

	resp, body := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Configs: []string{"Hetero2"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var parsed BatchResponse
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("decode: %v", err)
	}

	serial := &sim.Runner{MaxMeshCycles: testMaxCycles}
	want, err := serial.RunAll(mustConfig(t, svc, "Hetero2"), svc.Methods())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	got := parsed.Results[0]
	if got.Summary.Skipped != want.Skipped || got.Summary.TimedOut != want.TimedOut {
		t.Fatalf("summary = %+v, serial skipped=%d timedOut=%d", got.Summary, want.Skipped, want.TimedOut)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("got %d runs, want %d", len(got.Runs), len(want.Runs))
	}
	for i, run := range got.Runs {
		if run.Signature != want.Runs[i].Signature || run.BP1 != want.Runs[i].BP1 || run.BP2 != want.Runs[i].BP2 {
			t.Fatalf("run %d differs:\n got %+v\nwant %+v", i, run, want.Runs[i])
		}
	}
}

func TestHTTPMetrics(t *testing.T) {
	ts, svc := testServer(t, 2)
	sig := svc.Methods()[0].Signature()

	// Two identical runs: one miss then one hit.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "Baseline", Method: sig})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2", snap.Jobs)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if snap.Requests < 3 {
		t.Fatalf("requests = %d, want >= 3", snap.Requests)
	}
	if snap.P95LatencyMS < snap.P50LatencyMS {
		t.Fatalf("p95 (%v) < p50 (%v)", snap.P95LatencyMS, snap.P50LatencyMS)
	}

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
}
