package serve

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// promLine accepts one Prometheus text-format 0.0.4 sample line:
// name{label="value",...} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

// TestMetricsPrometheusExposition drives real traffic through a service
// and checks that GET /metrics?format=prometheus emits grammatical text
// exposition covering every subsystem registered on the node.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, svc := testServer(t, 2)

	// Generate a sample first: one real run through the scheduler.
	resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "Hetero2", Method: svc.MethodInfos()[0].Signature,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run: status %d", resp.StatusCode)
	}

	res, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every non-comment line must match the exposition grammar.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("ungrammatical exposition line: %q", line)
		}
	}

	// One registry covers every subsystem wired on this node.
	for _, name := range []string{
		"javaflow_http_requests_total",
		"javaflow_http_request_duration_seconds_bucket",
		"javaflow_http_request_duration_seconds_sum",
		"javaflow_http_request_duration_seconds_count",
		"javaflow_jobs_total",
		"javaflow_job_duration_seconds_bucket",
		"javaflow_jobs_inflight",
		"javaflow_cache_hits_total",
		"javaflow_engine_runs_total",
		"javaflow_engine_mesh_cycles_total",
		"javaflow_trace_spans_total",
		"javaflow_goroutines",
		"javaflow_heap_alloc_bytes",
	} {
		if !strings.Contains(body, "\n"+name) && !strings.HasPrefix(body, name) {
			t.Errorf("exposition is missing %s", name)
		}
	}

	// The seeded run must be visible: at least one job counted, and the
	// histogram's +Inf bucket must agree with its _count.
	if !strings.Contains(body, `javaflow_http_request_duration_seconds_bucket{endpoint="POST /v1/run",le="+Inf"}`) {
		t.Error(`missing +Inf bucket for endpoint="POST /v1/run"`)
	}
}
