package serve

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"javaflow/internal/obs"
)

// promLine accepts one Prometheus text-format 0.0.4 sample line:
// name{label="value",...} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

// TestMetricsPrometheusExposition drives real traffic through a service
// and checks that GET /metrics?format=prometheus emits grammatical text
// exposition covering every subsystem registered on the node.
func TestMetricsPrometheusExposition(t *testing.T) {
	ts, svc := testServer(t, 2)

	// Generate a sample first: one real run through the scheduler.
	resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "Hetero2", Method: svc.MethodInfos()[0].Signature,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run: status %d", resp.StatusCode)
	}
	// Journal counters register lazily on the first emit of each
	// (subsystem, kind); seed one so javaflow_events_total is present.
	svc.Scheduler().Metrics().Journal().Emit("test", "probe", obs.SevInfo, "")

	res, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics?format=prometheus: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every non-comment line must match the exposition grammar.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("ungrammatical exposition line: %q", line)
		}
	}

	// One registry covers every subsystem wired on this node.
	for _, name := range []string{
		"javaflow_http_requests_total",
		"javaflow_http_request_duration_seconds_bucket",
		"javaflow_http_request_duration_seconds_sum",
		"javaflow_http_request_duration_seconds_count",
		"javaflow_jobs_total",
		"javaflow_job_duration_seconds_bucket",
		"javaflow_jobs_inflight",
		"javaflow_cache_hits_total",
		"javaflow_engine_runs_total",
		"javaflow_engine_mesh_cycles_total",
		"javaflow_trace_spans_total",
		"javaflow_events_total",
		"javaflow_goroutines",
		"javaflow_heap_alloc_bytes",
		"javaflow_build_info",
	} {
		if !strings.Contains(body, "\n"+name) && !strings.HasPrefix(body, name) {
			t.Errorf("exposition is missing %s", name)
		}
	}

	// The seeded run must be visible: at least one job counted, and the
	// histogram's +Inf bucket must agree with its _count.
	if !strings.Contains(body, `javaflow_http_request_duration_seconds_bucket{endpoint="POST /v1/run",le="+Inf"}`) {
		t.Error(`missing +Inf bucket for endpoint="POST /v1/run"`)
	}

	// build_info carries the build metadata as labels with a constant 1.
	buildInfo := regexp.MustCompile(`javaflow_build_info\{[^}]*engine_version="[0-9]+"[^}]*\} 1`)
	if !buildInfo.MatchString(body) {
		t.Error(`javaflow_build_info missing or missing its engine_version label`)
	}
	if !regexp.MustCompile(`javaflow_build_info\{[^}]*go_version="go[^"]+"[^}]*\} 1`).MatchString(body) {
		t.Error(`javaflow_build_info missing its go_version label`)
	}
}
