// Package serve turns the per-method JavaFlow simulator into a long-lived
// concurrent service. Three pieces compose:
//
//   - DeploymentCache: a sharded LRU keyed by (method signature,
//     configuration name) memoizing the verified fabric.Placement +
//     fabric.Resolution, so repeated runs skip the Figure 20 / Figure 22
//     deploy pipeline entirely;
//   - Scheduler: a bounded worker pool fanning batch submissions
//     (methods × configurations) across goroutines with context
//     cancellation and deterministic, submission-ordered results that are
//     byte-identical to the serial sim.Runner path;
//   - Service + Handler: a method/configuration registry and the
//     net/http API the jfserved daemon exposes (POST /v1/run,
//     POST /v1/batch, GET /v1/configs, GET /v1/methods, GET /metrics).
//
// An optional persistent result store (internal/store) sits beneath both
// layers: the cache reads deployment outcomes through it and the
// scheduler reads completed MethodRuns through it, writing fresh work
// behind, so a jfserved restart with the same -store-dir serves warm
// results without re-running the engine.
//
// cmd/jfserved serves the API; internal/experiments routes the Chapter-7
// table sweeps through the same Scheduler so batch and interactive traffic
// share one cache.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"javaflow/internal/admit"
	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/replicate"
	"javaflow/internal/scenario"
	"javaflow/internal/sim"
	"javaflow/internal/stats"
)

// NotFoundError reports a lookup against the registry that failed; the
// HTTP layer maps it to 404.
type NotFoundError struct {
	Kind string // "method", "config" or "scenario"
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("serve: no %s %q", e.Kind, e.Name)
}

// BadRequestError reports a request the client must reshape (e.g. a
// scenario key combined with explicit sweep lists); the HTTP layer maps it
// to 400.
type BadRequestError struct {
	Msg string
}

func (e *BadRequestError) Error() string { return e.Msg }

// Service binds a scheduler to a fixed registry of configurations and a
// method population, resolving the name-based requests the HTTP API speaks
// into the scheduler's typed jobs.
type Service struct {
	sched        *Scheduler
	runner       BatchRunner
	replicator   *replicate.Replicator
	admission    *admit.Controller
	fleet        *Fleet
	scenarios    *scenario.Registry
	configs      []sim.Config
	configByName map[string]sim.Config
	methods      []*classfile.Method
	methodBySig  map[string]*classfile.Method
}

// NewService builds a service over the given registry. Configurations and
// methods keep their given order (the population order batch results are
// reported in); duplicate names keep the first occurrence.
func NewService(sched *Scheduler, configs []sim.Config, methods []*classfile.Method) *Service {
	s := &Service{
		sched:        sched,
		runner:       sched,
		configByName: make(map[string]sim.Config, len(configs)),
		methodBySig:  make(map[string]*classfile.Method, len(methods)),
	}
	for _, cfg := range configs {
		if _, ok := s.configByName[cfg.Name]; ok {
			continue
		}
		s.configByName[cfg.Name] = cfg
		s.configs = append(s.configs, cfg)
	}
	for _, m := range methods {
		sig := m.Signature()
		if _, ok := s.methodBySig[sig]; ok {
			continue
		}
		s.methodBySig[sig] = m
		s.methods = append(s.methods, m)
	}
	return s
}

// Scheduler exposes the underlying scheduler.
func (s *Service) Scheduler() *Scheduler { return s.sched }

// SetBatchRunner replaces the executor run and batch requests flow through.
// The default is the service's own scheduler; a dispatch front installs an
// internal/dispatch.Dispatcher here so the same HTTP surface shards jobs
// across remote jfserved instances. Call before serving traffic.
func (s *Service) SetBatchRunner(r BatchRunner) {
	if r == nil {
		r = s.sched
	}
	s.runner = r
}

// BatchRunner returns the executor requests flow through.
func (s *Service) BatchRunner() BatchRunner { return s.runner }

// SetReplicator attaches the anti-entropy replicator, enabling POST
// /v1/replicate/sync and the replication blocks of GET /metrics and GET
// /v1/store. The segment-export endpoints need only a store, not this.
// Call before serving traffic.
func (s *Service) SetReplicator(r *replicate.Replicator) { s.replicator = r }

// Replicator returns the attached replicator (nil when this node does not
// pull from peers).
func (s *Service) Replicator() *replicate.Replicator { return s.replicator }

// SetAdmission attaches the overload-protection controller: the HTTP
// layer then bounds run/batch/replicate admission per class, sheds
// expired-on-arrival work, and answers over-cap requests with typed 429 +
// Retry-After. Nil (the default) admits everything — embedded schedulers
// and single-node tests pay nothing. Call before serving traffic.
func (s *Service) SetAdmission(c *admit.Controller) { s.admission = c }

// Admission returns the attached controller (nil when unbounded).
func (s *Service) Admission() *admit.Controller { return s.admission }

// SetFleet attaches the fleet-observability peer set: GET /v1/trace
// and GET /v1/fleet then fan out to these peers instead of reporting
// this node alone. Nil (the default) keeps both endpoints working
// single-node. Call before serving traffic.
func (s *Service) SetFleet(f *Fleet) { s.fleet = f }

// Fleet returns the attached fleet peer set (nil when single-node).
func (s *Service) Fleet() *Fleet { return s.fleet }

// SetScenarios attaches the scenario registry, enabling GET /v1/scenarios
// and scenario-keyed batch submission. Call before serving traffic.
func (s *Service) SetScenarios(r *scenario.Registry) { s.scenarios = r }

// Scenarios returns the attached scenario registry (nil when the daemon was
// started without one).
func (s *Service) Scenarios() *scenario.Registry { return s.scenarios }

// Scenario resolves one bundle by name, mapping registry misses (and a
// missing registry) to the HTTP layer's 404 shape.
func (s *Service) Scenario(name string) (*scenario.Bundle, error) {
	if s.scenarios == nil {
		return nil, &NotFoundError{Kind: "scenario", Name: name}
	}
	b, err := s.scenarios.Get(name)
	if err != nil {
		return nil, &NotFoundError{Kind: "scenario", Name: name}
	}
	return b, nil
}

// Configs lists the registered configurations in registry order.
func (s *Service) Configs() []sim.Config { return s.configs }

// Methods lists the registered methods in registry order.
func (s *Service) Methods() []*classfile.Method { return s.methods }

// Config resolves a configuration by name.
func (s *Service) Config(name string) (sim.Config, error) {
	cfg, ok := s.configByName[name]
	if !ok {
		return sim.Config{}, &NotFoundError{Kind: "config", Name: name}
	}
	return cfg, nil
}

// Method resolves a method by signature.
func (s *Service) Method(sig string) (*classfile.Method, error) {
	m, ok := s.methodBySig[sig]
	if !ok {
		return nil, &NotFoundError{Kind: "method", Name: sig}
	}
	return m, nil
}

// RunPayload is the JSON shape of one method execution (both policies).
type RunPayload struct {
	Signature string     `json:"signature"`
	Config    string     `json:"config"`
	MeanIPC   float64    `json:"meanIPC"`
	BP1       sim.Result `json:"bp1"`
	BP2       sim.Result `json:"bp2"`
}

func payloadFor(cfgName string, run sim.MethodRun) RunPayload {
	return RunPayload{
		Signature: run.Signature,
		Config:    cfgName,
		MeanIPC:   run.MeanIPC(),
		BP1:       run.BP1,
		BP2:       run.BP2,
	}
}

// Run executes one (method, config) pair; maxCycles 0 keeps the scheduler
// default (DefaultMaxMeshCycles-derived) per-job bound. The job flows
// through the installed batch runner, so on a dispatch front even single
// runs land on the backend that owns the method's cache affinity.
func (s *Service) Run(ctx context.Context, configName, signature string, maxCycles int) (RunPayload, error) {
	cfg, err := s.Config(configName)
	if err != nil {
		return RunPayload{}, err
	}
	m, err := s.Method(signature)
	if err != nil {
		return RunPayload{}, err
	}
	results := s.runner.RunBatchCycles(ctx, []Job{{Config: cfg, Method: m}}, maxCycles)
	if err := results[0].Err; err != nil {
		return RunPayload{}, err
	}
	return payloadFor(cfg.Name, results[0].Run), nil
}

// RunLocal is Run pinned to the in-process scheduler, bypassing any
// installed dispatch runner. The HTTP layer routes requests carrying
// DispatchedHeader here: a job another front already routed must execute
// on this node, not ring-hop again.
func (s *Service) RunLocal(ctx context.Context, configName, signature string, maxCycles int) (RunPayload, error) {
	cfg, err := s.Config(configName)
	if err != nil {
		return RunPayload{}, err
	}
	m, err := s.Method(signature)
	if err != nil {
		return RunPayload{}, err
	}
	run, err := s.sched.RunMethodCycles(ctx, cfg, m, maxCycles)
	if err != nil {
		return RunPayload{}, err
	}
	return payloadFor(cfg.Name, run), nil
}

// BatchRequest is the POST /v1/batch body: a population sweep over the
// cross product of the named configurations and methods. Empty lists mean
// "all registered".
type BatchRequest struct {
	Configs []string `json:"configs"`
	Methods []string `json:"methods"`
	// Scenario keys the sweep by a registered scenario bundle instead of
	// explicit config/method lists (which must then be empty): the bundle's
	// resolved workload and configurations become the sweep.
	Scenario string `json:"scenario,omitempty"`
	// MaxMeshCycles bounds each execution (0 = scheduler default, or the
	// scenario's resolved bound when Scenario is set).
	MaxMeshCycles int `json:"maxMeshCycles"`
	// SummaryOnly drops the per-run payloads from the response, keeping
	// only the aggregate rows (full sweeps are ~19k runs).
	SummaryOnly bool `json:"summaryOnly"`
}

// resolveScenario rewrites a scenario-keyed request into the explicit form:
// the bundle's configurations and method signatures, resolved against this
// node's registry. Methods outside the node's corpus are an error — the
// caller's scenario assumes a population this daemon does not serve.
func (s *Service) resolveScenario(req BatchRequest) (BatchRequest, error) {
	if req.Scenario == "" {
		return req, nil
	}
	if len(req.Configs) > 0 || len(req.Methods) > 0 {
		return req, &BadRequestError{Msg: fmt.Sprintf(
			"serve: batch request cannot combine scenario %q with explicit configs or methods", req.Scenario)}
	}
	if s.scenarios == nil {
		return req, &NotFoundError{Kind: "scenario", Name: req.Scenario}
	}
	resolved, err := s.scenarios.Resolve(req.Scenario)
	if err != nil {
		var nf *scenario.NotFoundError
		if errors.As(err, &nf) {
			return req, &NotFoundError{Kind: "scenario", Name: nf.Name}
		}
		return req, err
	}
	for _, cfg := range resolved.Configs {
		req.Configs = append(req.Configs, cfg.Name)
	}
	for _, m := range resolved.Methods {
		sig := m.Signature()
		if _, ok := s.methodBySig[sig]; !ok {
			return req, &BadRequestError{Msg: fmt.Sprintf(
				"serve: scenario %q method %s is not in this node's corpus (check -seed/-gen)", req.Scenario, sig)}
		}
		req.Methods = append(req.Methods, sig)
	}
	if req.MaxMeshCycles == 0 {
		req.MaxMeshCycles = resolved.MaxMeshCycles
	}
	return req, nil
}

// ConfigSummary aggregates one configuration's sweep the way the
// dissertation's Table 21 does.
type ConfigSummary struct {
	Config   string        `json:"config"`
	Methods  int           `json:"methods"`
	Skipped  int           `json:"skipped"`
	TimedOut int           `json:"timedOut"`
	IPC      stats.Summary `json:"ipc"`
}

// BatchConfigResult is one configuration's slice of a batch response.
type BatchConfigResult struct {
	Summary ConfigSummary `json:"summary"`
	Runs    []RunPayload  `json:"runs,omitempty"`
}

// BatchResponse is the POST /v1/batch reply, one entry per requested
// configuration in request order.
type BatchResponse struct {
	Results []BatchConfigResult `json:"results"`
}

// sweepJobs resolves a batch request into the flat submission-ordered job
// list (config-major, methods in registry order) shared by the buffered
// and streaming batch paths.
func (s *Service) sweepJobs(req BatchRequest) ([]sim.Config, []*classfile.Method, []Job, error) {
	configs, err := s.pickConfigs(req.Configs)
	if err != nil {
		return nil, nil, nil, err
	}
	methods, err := s.pickMethods(req.Methods)
	if err != nil {
		return nil, nil, nil, err
	}
	jobs := make([]Job, 0, len(configs)*len(methods))
	for _, cfg := range configs {
		for _, m := range methods {
			jobs = append(jobs, Job{Config: cfg, Method: m})
		}
	}
	return configs, methods, jobs, nil
}

// Batch executes a population sweep through the installed batch runner.
// Results are deterministic: per-configuration groups in request order,
// runs in method order, identical to running sim.Runner.RunAll per
// configuration — whether the jobs ran locally or were dispatched across
// remote backends.
func (s *Service) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	req, err := s.resolveScenario(req)
	if err != nil {
		return BatchResponse{}, err
	}
	configs, methods, jobs, err := s.sweepJobs(req)
	if err != nil {
		return BatchResponse{}, err
	}

	flat := s.runner.RunBatchCycles(ctx, jobs, req.MaxMeshCycles)
	resp := BatchResponse{Results: make([]BatchConfigResult, 0, len(configs))}
	for i, cfg := range configs {
		cr, err := CollectRuns(cfg, flat[i*len(methods):(i+1)*len(methods)])
		if err != nil {
			return BatchResponse{}, err
		}
		out := BatchConfigResult{Summary: ConfigSummary{
			Config:   cfg.Name,
			Methods:  len(cr.Runs),
			Skipped:  cr.Skipped,
			TimedOut: cr.TimedOut,
			IPC:      cr.IPCSummary(),
		}}
		if !req.SummaryOnly {
			out.Runs = make([]RunPayload, 0, len(cr.Runs))
			for _, run := range cr.Runs {
				out.Runs = append(out.Runs, payloadFor(cfg.Name, run))
			}
		}
		resp.Results = append(resp.Results, out)
	}
	return resp, nil
}

// StreamEvent is one NDJSON line of POST /v1/batch?stream=ndjson. Events
// arrive in submission order: for each requested configuration, one "run",
// "skip" or "timeout" event per method in registry order, then that
// configuration's "summary". A job that fails for any other reason (e.g.
// the batch's context is cancelled) produces an "error" event; the stream
// continues so later configurations still flow.
type StreamEvent struct {
	Type      string         `json:"type"` // run | skip | timeout | error | summary
	Config    string         `json:"config,omitempty"`
	Signature string         `json:"signature,omitempty"`
	Error     string         `json:"error,omitempty"`
	Run       *RunPayload    `json:"run,omitempty"`
	Summary   *ConfigSummary `json:"summary,omitempty"`
}

// BatchStream executes the same sweep as Batch but delivers per-job events
// through emit as jobs complete, in submission order, instead of buffering
// the full response. The "run" payloads and per-configuration summaries
// are identical to the buffered Batch response for the same request —
// streaming changes delivery, never content. An emit error (a client that
// went away) aborts the stream.
func (s *Service) BatchStream(ctx context.Context, req BatchRequest, emit func(StreamEvent) error) error {
	req, err := s.resolveScenario(req)
	if err != nil {
		return err
	}
	configs, methods, jobs, err := s.sweepJobs(req)
	if err != nil {
		return err
	}
	if len(methods) == 0 {
		return nil
	}

	var (
		emitErr  error
		cfgRuns  []sim.MethodRun
		skipped  int
		timedOut int
	)
	ctx, cancelJobs := context.WithCancel(ctx)
	defer cancelJobs()
	s.runner.RunBatchStream(ctx, jobs, req.MaxMeshCycles, func(i int, r JobResult) {
		if emitErr != nil {
			return
		}
		cfg := configs[i/len(methods)]
		ev := StreamEvent{Config: cfg.Name, Signature: r.Job.Method.Signature()}
		var le *fabric.LoadError
		switch {
		case errors.As(r.Err, &le):
			ev.Type = "skip"
			ev.Error = le.Error()
			skipped++
		case r.Err != nil:
			ev.Type = "error"
			ev.Error = r.Err.Error()
		case r.Run.BP1.TimedOut || r.Run.BP2.TimedOut:
			ev.Type = "timeout"
			timedOut++
		default:
			ev.Type = "run"
			payload := payloadFor(cfg.Name, r.Run)
			ev.Run = &payload
			cfgRuns = append(cfgRuns, r.Run)
		}
		if emitErr = emit(ev); emitErr != nil {
			// The client is gone: stop feeding the pool instead of
			// simulating the rest of the sweep for nobody.
			cancelJobs()
			return
		}
		if (i+1)%len(methods) == 0 {
			cr := &sim.ConfigResults{Config: cfg, Runs: cfgRuns, Skipped: skipped, TimedOut: timedOut}
			summary := ConfigSummary{
				Config:   cfg.Name,
				Methods:  len(cr.Runs),
				Skipped:  cr.Skipped,
				TimedOut: cr.TimedOut,
				IPC:      cr.IPCSummary(),
			}
			if emitErr = emit(StreamEvent{Type: "summary", Config: cfg.Name, Summary: &summary}); emitErr != nil {
				cancelJobs()
			}
			cfgRuns, skipped, timedOut = nil, 0, 0
		}
	})
	return emitErr
}

// pickConfigs resolves names to configurations (empty = all).
func (s *Service) pickConfigs(names []string) ([]sim.Config, error) {
	if len(names) == 0 {
		return s.configs, nil
	}
	out := make([]sim.Config, 0, len(names))
	for _, n := range names {
		cfg, err := s.Config(n)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

// pickMethods resolves signatures to methods (empty = all).
func (s *Service) pickMethods(sigs []string) ([]*classfile.Method, error) {
	if len(sigs) == 0 {
		return s.methods, nil
	}
	out := make([]*classfile.Method, 0, len(sigs))
	for _, sig := range sigs {
		m, err := s.Method(sig)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// MethodInfo is the GET /v1/methods row.
type MethodInfo struct {
	Signature    string `json:"signature"`
	Instructions int    `json:"instructions"`
	MaxLocals    int    `json:"maxLocals"`
}

// MethodInfos lists the registry sorted by signature.
func (s *Service) MethodInfos() []MethodInfo {
	out := make([]MethodInfo, 0, len(s.methods))
	for _, m := range s.methods {
		out = append(out, MethodInfo{
			Signature:    m.Signature(),
			Instructions: len(m.Code),
			MaxLocals:    m.MaxLocals,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}

// ScenarioInfo is the GET /v1/scenarios row: enough to pick a scenario
// without fetching the full bundle.
type ScenarioInfo struct {
	Name        string               `json:"name"`
	Description string               `json:"description,omitempty"`
	Tier        scenario.Tier        `json:"tier"`
	Suites      []string             `json:"suites,omitempty"`
	Generated   bool                 `json:"generated"`
	Configs     []string             `json:"configs,omitempty"` // empty = all
	Faults      []scenario.FaultKind `json:"faults,omitempty"`
	Oracle      bool                 `json:"oracle"`
}

// ScenarioInfos lists the registered scenarios in catalog order (empty
// when no registry is attached).
func (s *Service) ScenarioInfos() []ScenarioInfo {
	out := []ScenarioInfo{}
	if s.scenarios == nil {
		return out
	}
	for _, name := range s.scenarios.Names() {
		b, err := s.scenarios.Get(name)
		if err != nil {
			continue
		}
		info := ScenarioInfo{
			Name:        b.Name,
			Description: b.Description,
			Tier:        b.Tier,
			Suites:      b.Workload.Suites,
			Generated:   b.Workload.Generated != nil,
			Configs:     b.Configs,
			Oracle:      b.Oracle != nil,
		}
		for _, f := range b.Faults {
			info.Faults = append(info.Faults, f.Kind)
		}
		out = append(out, info)
	}
	return out
}

// ConfigInfo is the GET /v1/configs row.
type ConfigInfo struct {
	Name          string `json:"name"`
	Width         int    `json:"width"`
	SerialPerMesh int    `json:"serialPerMesh"`
	Collapsed     bool   `json:"collapsed"`
	Description   string `json:"description"`
}

// ConfigInfos lists the registered configurations in registry order.
func (s *Service) ConfigInfos() []ConfigInfo {
	out := make([]ConfigInfo, 0, len(s.configs))
	for _, cfg := range s.configs {
		info := ConfigInfo{
			Name:          cfg.Name,
			SerialPerMesh: cfg.SerialPerMesh,
			Description:   cfg.Description,
		}
		if cfg.Fabric != nil {
			info.Width = cfg.Fabric.Width
			info.Collapsed = cfg.Fabric.Collapsed
		}
		out = append(out, info)
	}
	return out
}
