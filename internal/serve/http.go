package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/fabric"
	"javaflow/internal/obs"
	"javaflow/internal/replicate"
	"javaflow/internal/store"
)

// maxBodyBytes bounds request bodies; batch requests listing the full
// population stay far below this.
const maxBodyBytes = 4 << 20

// DispatchedHeader marks a /v1/run request as already routed by a
// dispatch front. A node receiving it executes the job on its own
// scheduler instead of re-dispatching, so a fleet where every node lists
// the others (or itself) as peers terminates after one hop rather than
// recursing until the inflight semaphores deadlock.
const DispatchedHeader = "X-Javaflow-Dispatched"

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	Config string `json:"config"`
	Method string `json:"method"`
	// MaxMeshCycles bounds the execution (0 = server default).
	MaxMeshCycles int `json:"maxMeshCycles"`
}

// Error kinds carried by ErrorPayload.Kind, so machine clients (the
// internal/dispatch HTTP backend) can classify failures without parsing
// message text.
const (
	ErrKindNotFound = "not_found"
	ErrKindRejected = "rejected"
	ErrKindCanceled = "canceled"
	ErrKindInternal = "internal"
	// ErrKindOverloaded marks a typed admission rejection (HTTP 429): the
	// class's queue is at cap and the Retry-After header says when to
	// come back. The work was never started.
	ErrKindOverloaded = "overloaded"
	// ErrKindDeadline marks an expired-on-arrival shed (HTTP 503): the
	// request's X-Javaflow-Deadline had already passed at ingress, so the
	// work was shed instead of executed for a caller that gave up.
	ErrKindDeadline = "deadline_exceeded"
)

// ErrorPayload is the JSON error envelope. For fabric rejections (Kind ==
// ErrKindRejected) Method and Reason carry the structured *fabric.LoadError
// fields, so a dispatch front can rehydrate the typed error a local run
// would have produced.
type ErrorPayload struct {
	Error  string `json:"error"`
	Kind   string `json:"kind,omitempty"`
	Method string `json:"method,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Err converts the payload back into the error a local execution would
// have returned: a *fabric.LoadError for rejections, a plain error
// otherwise.
func (p ErrorPayload) Err() error {
	if p.Kind == ErrKindRejected {
		return &fabric.LoadError{Method: p.Method, Reason: p.Reason}
	}
	return errors.New(p.Error)
}

// NewHandler builds the jfserved HTTP API over svc.
//
//	POST /v1/run                     — one method on one configuration
//	POST /v1/batch                   — population sweep (methods × configs);
//	                                   ?stream=ndjson streams per-job results
//	GET  /v1/configs                 — configuration registry
//	GET  /v1/methods                 — method registry
//	GET  /v1/scenarios               — scenario catalog (list)
//	GET  /v1/scenarios/{name}        — one scenario bundle (describe)
//	GET  /v1/store                   — persistent-store admin report (+ replication)
//	POST /v1/store/compact           — fold the store's segments into one
//	GET  /v1/replicate/segments      — segment manifest for peer pullers
//	GET  /v1/replicate/segment/{seq} — raw segment frames (?from= resumes)
//	POST /v1/replicate/sync          — force one anti-entropy round now
//	POST /v1/replicate/notify        — gossip receiver: pull an advertised delta now
//	GET  /v1/trace/{traceID}         — cross-node assembled trace: fans out to the fleet peers
//	                                   and stitches every node's spans into one hop-ordered tree
//	GET  /v1/fleet                   — fleet health: every peer's /metrics merged into one document
//	GET  /metrics                    — service counters + cache/store/dispatch/replication stats;
//	                                   ?format=prometheus renders the full instrument registry
//	                                   in the Prometheus text exposition format
//	GET  /debug/traces               — recent + slowest spans from this node's trace ring (?n= caps each)
//	GET  /debug/traces/{traceID}     — this node's spans for one trace (the fan-out's local leg)
//	GET  /debug/events               — structured event journal (?subsystem=, ?severity=, ?n= filter)
//	GET  /healthz                    — liveness
//
// Every request runs under the trace middleware: an inbound
// X-Javaflow-Trace header joins its trace at the carried hop depth, any
// other request mints a fresh trace at hop 0, and the server span plus
// per-endpoint latency land in the node's tracer and histograms.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	metrics := svc.Scheduler().Metrics()

	mux.HandleFunc("POST /v1/run", guard(svc, admit.ClassRun, func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		run := svc.Run
		if r.Header.Get(DispatchedHeader) != "" {
			run = svc.RunLocal
		}
		payload, err := run(r.Context(), req.Config, req.Method, req.MaxMeshCycles)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, payload)
	}))

	mux.HandleFunc("POST /v1/batch", guard(svc, admit.ClassBatch, func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if r.URL.Query().Get("stream") == "ndjson" {
			streamBatch(w, r, svc, req)
			return
		}
		resp, err := svc.Batch(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /v1/configs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.ConfigInfos())
	})

	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.MethodInfos())
	})

	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.ScenarioInfos())
	})

	mux.HandleFunc("GET /v1/scenarios/{name}", func(w http.ResponseWriter, r *http.Request) {
		b, err := svc.Scenario(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, b)
	})

	mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Scheduler().Store()
		if st == nil {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: no persistent store attached (start with -store-dir)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		rep := StoreReport{AdminReport: st.Admin()}
		if rp := svc.Replicator(); rp != nil {
			stats := rp.Stats()
			rep.Replication = &stats
		}
		writeJSON(w, http.StatusOK, rep)
	})

	// Replication surface. The two GETs export this node's segment log to
	// peer pullers and need only a store; the POST forces a pull round on
	// this node's own replicator (tests and ops use it to avoid waiting an
	// interval).
	mux.HandleFunc("GET /v1/replicate/segments", guard(svc, admit.ClassReplicate, func(w http.ResponseWriter, r *http.Request) {
		st := svc.Scheduler().Store()
		if st == nil {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: no persistent store attached (start with -store-dir)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		manifest, err := st.Manifest()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, replicate.Manifest{Segments: manifest})
	}))

	mux.HandleFunc("GET /v1/replicate/segment/{seq}", guard(svc, admit.ClassReplicate, func(w http.ResponseWriter, r *http.Request) {
		st := svc.Scheduler().Store()
		if st == nil {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: no persistent store attached (start with -store-dir)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		seq, err := strconv.Atoi(r.PathValue("seq"))
		if err != nil || seq <= 0 {
			writeJSON(w, http.StatusBadRequest, ErrorPayload{
				Error: fmt.Sprintf("serve: bad segment seq %q", r.PathValue("seq")),
				Kind:  ErrKindInternal,
			})
			return
		}
		var from int64
		if q := r.URL.Query().Get("from"); q != "" {
			from, err = strconv.ParseInt(q, 10, 64)
			if err != nil || from < 0 {
				writeJSON(w, http.StatusBadRequest, ErrorPayload{
					Error: fmt.Sprintf("serve: bad segment offset %q", q),
					Kind:  ErrKindInternal,
				})
				return
			}
		}
		data, visible, err := st.ReadSegmentAt(seq, from)
		if err != nil {
			if os.IsNotExist(err) {
				writeJSON(w, http.StatusNotFound, ErrorPayload{
					Error: fmt.Sprintf("serve: no segment %d", seq),
					Kind:  ErrKindNotFound,
				})
				return
			}
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Javaflow-Segment-Visible", strconv.FormatInt(visible, 10))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	}))

	mux.HandleFunc("POST /v1/replicate/sync", guard(svc, admit.ClassReplicate, func(w http.ResponseWriter, r *http.Request) {
		rp := svc.Replicator()
		if rp == nil {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: no replicator attached (start with -peers and -replicate-interval)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		if err := rp.SyncNow(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rp.Stats())
	}))

	// Gossip receiver: a peer advertising freshly committed segment ranges.
	// The handler pulls the advertised delta synchronously — when the 200
	// goes out, this node has the data — and relays the rumor onward in the
	// background. 404 without a gossip-enabled replicator, so senders
	// account a pull-only peer as a failed send and the fleet still
	// converges through their pull loops.
	mux.HandleFunc("POST /v1/replicate/notify", guard(svc, admit.ClassReplicate, func(w http.ResponseWriter, r *http.Request) {
		rp := svc.Replicator()
		if rp == nil || !rp.GossipEnabled() {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: gossip not enabled on this node (start with -peers, -replicate-interval and no -gossip-disable)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		var n replicate.Notification
		if !decodeJSON(w, r, &n) {
			return
		}
		out, err := rp.HandleNotify(r.Context(), n)
		if err != nil {
			if errors.Is(err, replicate.ErrBadNotification) {
				writeError(w, &BadRequestError{Msg: err.Error()})
				return
			}
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}))

	// Compaction is sole-writer-only (see store.Compact): in a shared
	// -store-dir fleet, quiesce the other instances before POSTing here,
	// or a segment another process is still appending to can be dropped
	// beyond the bytes this process saw at startup.
	mux.HandleFunc("POST /v1/store/compact", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Scheduler().Store()
		if st == nil {
			writeJSON(w, http.StatusNotFound, ErrorPayload{
				Error: "serve: no persistent store attached (start with -store-dir)",
				Kind:  ErrKindNotFound,
			})
			return
		}
		if err := st.Compact(); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st.Admin())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.Registry().WritePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, svc.snapshotFull())
	})

	// Fleet health: every peer's /metrics JSON fetched concurrently and
	// merged into one document — per-node up/down plus fleet-wide
	// counters and losslessly merged latency percentiles.
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.FleetSnapshot(r.Context()))
	})

	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 || v > 4096 {
				writeJSON(w, http.StatusBadRequest, ErrorPayload{
					Error: fmt.Sprintf("serve: bad span count %q", q),
					Kind:  ErrKindInternal,
				})
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, metrics.Tracer().Dump(n))
	})

	// Local trace lookup: this node's spans for one trace, the leg the
	// /v1/trace fan-out queries on every peer.
	mux.HandleFunc("GET /debug/traces/{traceID}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("traceID")
		if !obs.ValidTraceID(id) {
			writeJSON(w, http.StatusBadRequest, ErrorPayload{
				Error: fmt.Sprintf("serve: bad trace id %q", id),
				Kind:  ErrKindInternal,
			})
			return
		}
		writeJSON(w, http.StatusOK, localSpans(metrics, id))
	})

	// Cross-node trace assembly: fan out to every fleet peer's local
	// lookup and stitch the spans into one hop-ordered tree. Dead peers
	// mark the result partial; the endpoint still answers 200.
	mux.HandleFunc("GET /v1/trace/{traceID}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("traceID")
		if !obs.ValidTraceID(id) {
			writeJSON(w, http.StatusBadRequest, ErrorPayload{
				Error: fmt.Sprintf("serve: bad trace id %q", id),
				Kind:  ErrKindInternal,
			})
			return
		}
		writeJSON(w, http.StatusOK, svc.AssembleTrace(r.Context(), id))
	})

	// Structured event journal: newest-first typed state transitions.
	// ?subsystem= keeps one subsystem, ?severity= sets the floor
	// (info|warn|error), ?n= caps the count.
	mux.HandleFunc("GET /debug/events", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 || v > 4096 {
				writeJSON(w, http.StatusBadRequest, ErrorPayload{
					Error: fmt.Sprintf("serve: bad event count %q", q),
					Kind:  ErrKindInternal,
				})
				return
			}
			n = v
		}
		minSev := obs.SevInfo
		if q := r.URL.Query().Get("severity"); q != "" {
			sev, ok := obs.ParseSeverity(q)
			if !ok {
				writeJSON(w, http.StatusBadRequest, ErrorPayload{
					Error: fmt.Sprintf("serve: bad severity %q (want info, warn or error)", q),
					Kind:  ErrKindInternal,
				})
				return
			}
			minSev = sev
		}
		writeJSON(w, http.StatusOK, metrics.Journal().Dump(r.URL.Query().Get("subsystem"), minSev, n))
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return instrument(metrics, mux)
}

// guard is the overload-protection wrapper for one admission class. It
// runs before the handler does any work:
//
//  1. An inbound X-Javaflow-Deadline already in the past sheds the
//     request — typed 503 ErrKindDeadline with Retry-After — instead of
//     executing for a caller that gave up. A live deadline tightens the
//     request context so the scheduler and any dispatch hop inherit it.
//  2. The admission controller claims a slot in the class's lane; at
//     cap the request gets a typed 429 ErrKindOverloaded with
//     Retry-After and is never executed. The slot is released when the
//     handler returns, which is what files the service time the
//     Retry-After estimate feeds on.
//
// With no controller attached only the deadline leg applies: admission
// on a nil controller is a no-op.
func guard(svc *Service, class admit.Class, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ac := svc.Admission()
		now := time.Now()
		if dl, ok := admit.FromRequest(r, now); ok {
			if !dl.After(now) {
				ac.RecordShed(class)
				writeShed(w, ac.RetryAfter(class), r.Header.Get(admit.DeadlineHeader))
				return
			}
			ctx, cancel := admit.WithDeadline(r.Context(), dl)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := ac.Admit(class)
		if err != nil {
			writeError(w, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// writeShed answers an expired-on-arrival request: the same Retry-After
// guidance a 429 carries, under the deadline_exceeded kind, so a client
// can distinguish "you were too slow" from "we are too busy".
func writeShed(w http.ResponseWriter, retryAfter time.Duration, wire string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
	writeJSON(w, http.StatusServiceUnavailable, ErrorPayload{
		Error: fmt.Sprintf("serve: deadline %s already expired at ingress; shed without executing", wire),
		Kind:  ErrKindDeadline,
	})
}

// retryAfterSeconds renders a duration for the Retry-After header:
// whole seconds, rounded up, never zero.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// StoreReport is the GET /v1/store payload: the store's admin report
// plus, on a replicating node, the per-peer cursor/sync state.
type StoreReport struct {
	store.AdminReport
	Replication *replicate.Stats `json:"replication,omitempty"`
}

// DispatchStatser is implemented by batch runners that front multiple
// backends (internal/dispatch.Dispatcher); GET /metrics folds their stats
// into the snapshot. The return type is any so serve does not import the
// dispatch layer built on top of it.
type DispatchStatser interface {
	DispatchStats() any
}

// streamBatch serves POST /v1/batch?stream=ndjson: one StreamEvent per
// line, flushed as each job completes, in submission order. The 200 is
// committed lazily at the first event, so request-shape errors (unknown
// names — the only failures that precede job execution) still get a
// normal JSON error status, while mid-sweep failures arrive as "error"
// events on the stream.
func streamBatch(w http.ResponseWriter, r *http.Request, svc *Service, req BatchRequest) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	committed := false
	err := svc.BatchStream(r.Context(), req, func(ev StreamEvent) error {
		if !committed {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			committed = true
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !committed {
		writeError(w, err)
	}
}

// instrument is the observability middleware: it counts the request,
// adopts an inbound X-Javaflow-Trace context (or lets StartSpan mint a
// fresh trace at hop 0), records a server span named after the endpoint,
// and files the latency in the per-endpoint histogram.
func instrument(m *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.RecordRequest()
		endpoint := endpointLabel(r.Method, r.URL.Path)
		ctx := r.Context()
		if tc, ok := obs.ParseTrace(r.Header.Get(obs.TraceHeader)); ok {
			ctx = obs.ContextWithTrace(ctx, tc)
		}
		ctx, span := m.Tracer().StartSpan(ctx, endpoint)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		m.RecordHTTP(endpoint, time.Since(start))
		span.SetAttr("status", strconv.Itoa(sw.status))
		var err error
		if sw.status >= 500 {
			err = fmt.Errorf("http %d", sw.status)
		}
		span.End(err)
	})
}

// statusWriter captures the response status for the server span. It must
// keep forwarding Flush or NDJSON batch streaming stalls behind buffers.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointLabel maps a request to a bounded histogram label: known
// routes keep their pattern (path parameters collapsed), everything else
// is "other" so hostile paths cannot mint unbounded label values.
func endpointLabel(method, path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/scenarios/"):
		path = "/v1/scenarios/{name}"
	case strings.HasPrefix(path, "/v1/replicate/segment/"):
		path = "/v1/replicate/segment/{seq}"
	case strings.HasPrefix(path, "/v1/trace/"):
		path = "/v1/trace/{traceID}"
	case strings.HasPrefix(path, "/debug/traces/"):
		path = "/debug/traces/{traceID}"
	}
	switch path {
	case "/v1/run", "/v1/batch", "/v1/configs", "/v1/methods", "/v1/scenarios",
		"/v1/scenarios/{name}", "/v1/store", "/v1/store/compact",
		"/v1/replicate/segments", "/v1/replicate/segment/{seq}",
		"/v1/replicate/sync", "/v1/replicate/notify",
		"/v1/trace/{traceID}", "/v1/fleet",
		"/metrics", "/debug/traces", "/debug/traces/{traceID}",
		"/debug/events", "/healthz":
		return method + " " + path
	}
	return method + " other"
}

// decodeJSON parses the body into v, replying 400 on malformed input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorPayload{
			Error: fmt.Sprintf("bad request body: %v", err),
			Kind:  ErrKindInternal,
		})
		return false
	}
	return true
}

// writeError maps service errors to HTTP statuses: unknown names are 404,
// malformed request shapes 400, fabric-rejected methods 422, cancelled
// requests 499-style 503, anything else 500. The payload carries a machine-readable kind (and, for
// rejections, the structured LoadError fields) so dispatch fronts can
// rehydrate typed errors.
func writeError(w http.ResponseWriter, err error) {
	var nf *NotFoundError
	var br *BadRequestError
	var le *fabric.LoadError
	var oe *admit.OverloadError
	switch {
	case errors.As(err, &nf):
		writeJSON(w, http.StatusNotFound, ErrorPayload{Error: nf.Error(), Kind: ErrKindNotFound})
	case errors.As(err, &br):
		writeJSON(w, http.StatusBadRequest, ErrorPayload{Error: br.Error(), Kind: ErrKindInternal})
	case errors.As(err, &le):
		writeJSON(w, http.StatusUnprocessableEntity, ErrorPayload{
			Error: le.Error(), Kind: ErrKindRejected, Method: le.Method, Reason: le.Reason,
		})
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", strconv.Itoa(oe.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorPayload{Error: oe.Error(), Kind: ErrKindOverloaded})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, ErrorPayload{Error: err.Error(), Kind: ErrKindDeadline})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, ErrorPayload{Error: err.Error(), Kind: ErrKindCanceled})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorPayload{Error: err.Error(), Kind: ErrKindInternal})
	}
}

// writeJSON encodes v with the standard headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// NewServer wraps the handler in an http.Server with sane timeouts for a
// long-lived daemon (batch sweeps can run minutes; write timeout is
// generous rather than absent).
func NewServer(addr string, svc *Service) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      30 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
