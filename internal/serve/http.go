package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"javaflow/internal/fabric"
)

// maxBodyBytes bounds request bodies; batch requests listing the full
// population stay far below this.
const maxBodyBytes = 4 << 20

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	Config string `json:"config"`
	Method string `json:"method"`
	// MaxMeshCycles bounds the execution (0 = server default).
	MaxMeshCycles int `json:"maxMeshCycles"`
}

// errorPayload is the JSON error envelope.
type errorPayload struct {
	Error string `json:"error"`
}

// NewHandler builds the jfserved HTTP API over svc.
//
//	POST /v1/run      — one method on one configuration
//	POST /v1/batch    — population sweep (methods × configs)
//	GET  /v1/configs  — configuration registry
//	GET  /v1/methods  — method registry
//	GET  /metrics     — service counters + cache stats as JSON
//	GET  /healthz     — liveness
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	metrics := svc.Scheduler().Metrics()

	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		payload, err := svc.Run(r.Context(), req.Config, req.Method, req.MaxMeshCycles)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, payload)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := svc.Batch(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/configs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.ConfigInfos())
	})

	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.MethodInfos())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Scheduler().Snapshot())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return countRequests(metrics, mux)
}

// countRequests is the metrics middleware.
func countRequests(m *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.RecordRequest()
		next.ServeHTTP(w, r)
	})
}

// decodeJSON parses the body into v, replying 400 on malformed input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeError maps service errors to HTTP statuses: unknown names are 404,
// fabric-rejected methods 422, cancelled requests 499-style 503, anything
// else 500.
func writeError(w http.ResponseWriter, err error) {
	var nf *NotFoundError
	var le *fabric.LoadError
	switch {
	case errors.As(err, &nf):
		writeJSON(w, http.StatusNotFound, errorPayload{Error: nf.Error()})
	case errors.As(err, &le):
		writeJSON(w, http.StatusUnprocessableEntity, errorPayload{Error: le.Error()})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, errorPayload{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorPayload{Error: err.Error()})
	}
}

// writeJSON encodes v with the standard headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// NewServer wraps the handler in an http.Server with sane timeouts for a
// long-lived daemon (batch sweeps can run minutes; write timeout is
// generous rather than absent).
func NewServer(addr string, svc *Service) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      30 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
