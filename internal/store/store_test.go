package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// testMethod returns a named corpus method the compact fabric hosts.
func testMethod(t testing.TB) (*classfile.Method, sim.Config) {
	t.Helper()
	var cfg sim.Config
	for _, c := range sim.Configurations() {
		if c.Name == "Compact2" {
			cfg = c
		}
	}
	for _, m := range workload.NamedMethods() {
		if _, err := sim.DeployMethod(cfg, m); err == nil {
			return m, cfg
		}
	}
	t.Fatal("no hostable method in the named corpus")
	return nil, sim.Config{}
}

func runFor(t testing.TB, cfg sim.Config, m *classfile.Method) sim.MethodRun {
	t.Helper()
	r := &sim.Runner{MaxMeshCycles: 400_000}
	run, err := r.RunMethod(cfg, m)
	if err != nil {
		t.Fatalf("run %s: %v", m.Signature(), err)
	}
	return run
}

func TestStoreRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	key := RunKeyFor(cfg, m, 400_000)

	if _, ok := st.GetRun(key); ok {
		t.Fatal("empty store reported a hit")
	}
	want := runFor(t, cfg, m)
	st.PutRun(key, want)

	got, ok := st.GetRun(key)
	if !ok {
		t.Fatal("put then get missed")
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The record must survive a process restart.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	got, ok = st2.GetRun(key)
	if !ok {
		t.Fatal("record lost across reopen")
	}
	if got != want {
		t.Fatalf("reopened record mismatch:\n got %+v\nwant %+v", got, want)
	}
	stats := st2.Stats()
	if stats.Records != 1 || stats.RunHits != 1 || stats.SkippedRecords != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestStoreRunKeyDiscriminates(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	m, cfg := testMethod(t)
	st.PutRun(RunKeyFor(cfg, m, 400_000), runFor(t, cfg, m))

	// A different mesh-cycle bound, clocking rule, or method body is a
	// different result.
	if _, ok := st.GetRun(RunKeyFor(cfg, m, 200_000)); ok {
		t.Fatal("different MaxMeshCycles hit the same record")
	}
	cfg2 := cfg
	cfg2.SerialPerMesh = 4
	if _, ok := st.GetRun(RunKeyFor(cfg2, m, 400_000)); ok {
		t.Fatal("different SerialPerMesh hit the same record")
	}
	k := RunKeyFor(cfg, m, 400_000)
	k.MethodHash++
	if _, ok := st.GetRun(k); ok {
		t.Fatal("different method body hit the same record")
	}

	// A renamed configuration with identical geometry and clocking shares
	// the record — keys are content-based, not name-based.
	cfg3 := cfg
	cfg3.Name = "Compact2-renamed"
	if _, ok := st.GetRun(RunKeyFor(cfg3, m, 400_000)); !ok {
		t.Fatal("identical geometry+clocking under a new name missed")
	}
}

func TestStoreDeployRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	key := DeployKeyFor(cfg, m)

	want, err := sim.DeployMethod(cfg, m)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	st.PutDeploy(key, want, nil)

	// Also persist a rejection under a synthetic key.
	failKey := key
	failKey.Signature = "rejected/method/sig/0"
	st.PutDeploy(failKey, nil, &fabric.LoadError{Method: "rejected", Reason: "tableswitch"})
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()

	got, ok, derr := st2.GetDeploy(key, cfg.Fabric, m)
	if !ok || derr != nil {
		t.Fatalf("deploy get: ok=%v err=%v", ok, derr)
	}
	if got.Placement.Method != m || got.Placement.Fabric != cfg.Fabric {
		t.Fatal("reconstructed placement not rebound to live method/fabric")
	}
	if fmt.Sprint(got.Targets) != fmt.Sprint(want.Targets) ||
		fmt.Sprint(got.Placement.NodeOf) != fmt.Sprint(want.Placement.NodeOf) ||
		got.MaxQUp != want.MaxQUp || got.Cycles != want.Cycles || got.Merges != want.Merges {
		t.Fatalf("reconstructed resolution differs:\n got %+v\nwant %+v", got, want)
	}

	_, ok, derr = st2.GetDeploy(failKey, cfg.Fabric, m)
	if !ok || derr == nil {
		t.Fatalf("persisted rejection not served: ok=%v err=%v", ok, derr)
	}
	if le, isLE := derr.(*fabric.LoadError); !isLE || le.Reason != "tableswitch" {
		t.Fatalf("rejection came back as %T %v", derr, derr)
	}
}

func TestStoreLastWriteWinsAndCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	key := RunKeyFor(cfg, m, 400_000)

	stale := runFor(t, cfg, m)
	stale.BP1.Fired = 1 // distinguishable stale value
	st.PutRun(key, stale)
	fresh := runFor(t, cfg, m)
	st.PutRun(key, fresh)
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok := st2.GetRun(key)
	if !ok || got != fresh {
		t.Fatalf("replay kept the stale record: ok=%v got=%+v", ok, got)
	}

	// Compaction folds duplicates into one live record and survives the
	// next reopen.
	if err := st2.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got, ok := st2.GetRun(key); !ok || got != fresh {
		t.Fatalf("post-compact read: ok=%v got=%+v", ok, got)
	}
	st2.Close()

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer st3.Close()
	if got, ok := st3.GetRun(key); !ok || got != fresh {
		t.Fatalf("compacted store lost the record: ok=%v got=%+v", ok, got)
	}
	if stats := st3.Stats(); stats.Records != 1 {
		t.Fatalf("compacted store has %d records, want 1", stats.Records)
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	run := runFor(t, cfg, m)
	for i := 0; i < 16; i++ {
		k := RunKeyFor(cfg, m, 400_000)
		k.Signature = fmt.Sprintf("%s#%d", k.Signature, i)
		st.PutRun(k, run)
	}
	st.Close()

	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(seqs) < 2 {
		t.Fatalf("tiny segment bound produced %d segments, want >=2", len(seqs))
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 16 {
		t.Fatalf("rotated store replayed %d records, want 16", st2.Len())
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	run := runFor(t, cfg, m)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := RunKeyFor(cfg, m, 400_000)
				k.Signature = fmt.Sprintf("g%d/i%d", g, i)
				st.PutRun(k, run)
				if _, ok := st.GetRun(k); !ok {
					t.Errorf("read-your-write missed for %s", k.Signature)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 400 {
		t.Fatalf("replayed %d records, want 400", st2.Len())
	}
}

// TestStoreCompactSparesForeignSegments: in a shared directory, Compact
// must only delete segments this store replayed or wrote — a segment
// another process created after our Open survives, and its records are
// visible to the next Open.
func TestStoreCompactSparesForeignSegments(t *testing.T) {
	dir := t.TempDir()
	keys, _ := writeSeedStore(t, dir, 2)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Simulate a concurrent process appending its own segment.
	m, cfg := testMethod(t)
	fk := RunKeyFor(cfg, m, 400_000)
	fk.Signature = "foreign-writer"
	val, _ := runFor(t, cfg, m).MarshalBinary()
	foreign := filepath.Join(dir, segmentName(50))
	if err := os.WriteFile(foreign, appendRecord(nil, record{typ: recTypeRun, key: fk.encode(), val: val}), 0o644); err != nil {
		t.Fatalf("write foreign segment: %v", err)
	}

	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("compact deleted a foreign segment: %v", err)
	}
	for _, k := range keys {
		if _, ok := st.GetRun(k); !ok {
			t.Fatalf("compact lost own record %s", k.Signature)
		}
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if _, ok := st2.GetRun(fk); !ok {
		t.Fatal("foreign record not replayed after compact + reopen")
	}
	for _, k := range keys {
		if _, ok := st2.GetRun(k); !ok {
			t.Fatalf("compacted record %s not replayed", k.Signature)
		}
	}
}

// TestStoreWarmOnlyLifeLeavesNoEmptySegment: process lives that only read
// must not accrete one empty segment file per restart.
func TestStoreWarmOnlyLifeLeavesNoEmptySegment(t *testing.T) {
	dir := t.TempDir()
	keys, _ := writeSeedStore(t, dir, 1)

	for i := 0; i < 5; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("warm open %d: %v", i, err)
		}
		if _, ok := st.GetRun(keys[0]); !ok {
			t.Fatalf("warm open %d missed the seed record", i)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("warm close %d: %v", i, err)
		}
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(seqs) != 1 {
		t.Fatalf("5 read-only lives left %d segments, want 1", len(seqs))
	}
}

// TestStoreOpenActiveSkipsClaimedSegments: two processes opening the same
// directory race for the next sequence number; the loser must slide past
// the O_EXCL-claimed file instead of failing at boot.
func TestStoreOpenActiveSkipsClaimedSegments(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int{1, 2} {
		if err := os.WriteFile(filepath.Join(dir, segmentName(seq)), nil, 0o644); err != nil {
			t.Fatalf("claim seg %d: %v", seq, err)
		}
	}
	s := &Store{dir: dir, activeSeq: 1}
	if err := s.openActive(); err != nil {
		t.Fatalf("openActive with claimed segments: %v", err)
	}
	defer s.active.Close()
	if s.activeSeq != 3 {
		t.Fatalf("activeSeq = %d, want 3 (slid past two claimed segments)", s.activeSeq)
	}
}

// TestStoreSharedDirTwoLiveProcesses models jfserved + jfbench pointing at
// one -store-dir concurrently: both must open, write to disjoint segments,
// and a later process must see both writers' records.
func TestStoreSharedDirTwoLiveProcesses(t *testing.T) {
	dir := t.TempDir()
	m, cfg := testMethod(t)
	run := runFor(t, cfg, m)

	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open b while a is live: %v", err)
	}
	ka := RunKeyFor(cfg, m, 400_000)
	ka.Signature = "writer-a"
	kb := RunKeyFor(cfg, m, 400_000)
	kb.Signature = "writer-b"
	a.PutRun(ka, run)
	b.PutRun(kb, run)
	if err := a.Close(); err != nil {
		t.Fatalf("close a: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close b: %v", err)
	}

	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c.Close()
	for _, k := range []RunKey{ka, kb} {
		if _, ok := c.GetRun(k); !ok {
			t.Fatalf("record from %s lost", k.Signature)
		}
	}
}

// TestStoreOpenSweepsOrphanedCompactTemps: a crash between Compact's
// CreateTemp and its rename must not leak temp files forever.
func TestStoreOpenSweepsOrphanedCompactTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "compact-123456.tmp")
	if err := os.WriteFile(orphan, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatalf("plant orphan: %v", err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned compact temp survived Open: %v", err)
	}
}

// TestStoreOpenOnEmptyAndMissingDir covers first-boot paths.
func TestStoreOpenOnEmptyAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open on missing dir: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("fresh store has %d records", st.Len())
	}
	st.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("store dir not created: %v", err)
	}
}
