package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Record framing constants (see the package doc for the full layout).
const (
	recordMagic = "JFS1"
	headerSize  = 4 + 1 + 4 + 4 // magic, type, key length, value length
	trailerSize = 4             // CRC32-C
	maxKeyBytes = 1 << 20
	maxValBytes = 64 << 20
	recTypeRun  = 1
	recTypeDep  = 2
	// recTypeMeta records node-local bookkeeping (replication cursors).
	// Meta records live in the same log for the same crash-safety, but are
	// never exported to peers by Ingest and never count as payload.
	recTypeMeta  = 3
	minValidType = recTypeRun
	maxValidType = recTypeMeta
)

// castagnoli is the CRC32-C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded log entry.
type record struct {
	typ byte
	key []byte
	val []byte
}

// appendRecord frames rec onto buf: header, key, value, then a CRC32-C
// over everything before the trailer.
func appendRecord(buf []byte, rec record) []byte {
	start := len(buf)
	buf = append(buf, recordMagic...)
	buf = append(buf, rec.typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.val)))
	buf = append(buf, rec.key...)
	buf = append(buf, rec.val...)
	sum := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// scanResult classifies what a segment scan saw after the last good record.
type scanResult struct {
	records int   // records decoded and delivered
	skipped int   // records present but failing their checksum
	tail    int64 // bytes of unusable trailing data (torn write / garbage)
}

// scanSegment walks one segment's records in order, calling fn for each
// checksum-valid record. Damage is tolerated, not fatal:
//
//   - a record whose header is intact but whose CRC fails is skipped and
//     the scan continues at the next record (a flipped byte loses one
//     record, not the segment);
//   - a header that is truncated, carries a wrong magic, an unknown type,
//     or an implausible length ends the scan (a torn append or rewritten
//     region — nothing after it can be trusted).
func scanSegment(data []byte, fn func(rec record)) scanResult {
	var res scanResult
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerSize {
			res.tail = int64(len(rest))
			return res
		}
		if string(rest[:4]) != recordMagic {
			res.tail = int64(len(rest))
			return res
		}
		typ := rest[4]
		keyLen := binary.LittleEndian.Uint32(rest[5:9])
		valLen := binary.LittleEndian.Uint32(rest[9:13])
		if typ < minValidType || typ > maxValidType ||
			keyLen > maxKeyBytes || valLen > maxValBytes {
			res.tail = int64(len(rest))
			return res
		}
		total := headerSize + int(keyLen) + int(valLen) + trailerSize
		if len(rest) < total {
			res.tail = int64(len(rest))
			return res
		}
		body := rest[:total-trailerSize]
		want := binary.LittleEndian.Uint32(rest[total-trailerSize : total])
		if crc32.Checksum(body, castagnoli) != want {
			res.skipped++
			off += total
			continue
		}
		fn(record{
			typ: typ,
			key: rest[headerSize : headerSize+int(keyLen)],
			val: rest[headerSize+int(keyLen) : total-trailerSize],
		})
		res.records++
		off += total
	}
	return res
}
