package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GeometryStats is one fabric geometry's slice of the store: how many run
// results and deployment outcomes are live for methods on that geometry.
type GeometryStats struct {
	Geometry string `json:"geometry"`
	Runs     int    `json:"runs"`
	Deploys  int    `json:"deploys"`
}

// AdminReport is the GET /v1/store payload: the live-record inventory, the
// on-disk footprint, and the garbage ratio — the fraction of segment bytes
// not covered by this store's live index: superseded duplicates and torn
// tails, plus (in a directory shared by several live processes) segments
// other writers created since this store opened. The first two are what a
// Compact from a sole writer reclaims.
type AdminReport struct {
	Dir     string `json:"dir"`
	Records int    `json:"records"`
	// MetaRecords is how many of Records are node-local bookkeeping
	// (replication cursors) rather than payload. Meta records never cross
	// nodes, so fleet convergence is judged on Records - MetaRecords.
	MetaRecords  int             `json:"metaRecords"`
	Segments     int             `json:"segments"`
	DiskBytes    int64           `json:"diskBytes"`
	LiveBytes    int64           `json:"liveBytes"`
	GarbageRatio float64         `json:"garbageRatio"`
	Compactions  int64           `json:"compactions"`
	Geometries   []GeometryStats `json:"geometries"`
}

// geometryOf extracts the fabric-geometry field from an encoded record key.
// Both key forms put it fourth: "run|e1|sig|hash|w10:UB|spm2|max400000" and
// "dep|e1|sig|hash|w10:UB". Signatures never contain '|' (they are
// class/method/arity paths), so a positional split is exact.
func geometryOf(key string) (string, bool) {
	parts := strings.Split(key, "|")
	if len(parts) < 5 {
		return "", false
	}
	return parts[4], true
}

// Admin builds the admin report. DiskBytes walks the directory so it also
// counts segments written by other processes sharing the store; LiveBytes
// is what this store's index would occupy if compacted today.
func (s *Store) Admin() AdminReport {
	s.mu.Lock()
	var live int64
	perGeom := make(map[string]*GeometryStats)
	records := len(s.index)
	meta := 0
	for k, e := range s.index {
		live += int64(headerSize + len(k) + len(e.val) + trailerSize)
		if e.typ == recTypeMeta {
			meta++
			continue
		}
		geom, ok := geometryOf(k)
		if !ok {
			continue
		}
		g := perGeom[geom]
		if g == nil {
			g = &GeometryStats{Geometry: geom}
			perGeom[geom] = g
		}
		if e.typ == recTypeRun {
			g.Runs++
		} else {
			g.Deploys++
		}
	}
	s.mu.Unlock()

	var disk int64
	segments := 0
	if seqs, err := listSegments(s.dir); err == nil {
		segments = len(seqs)
		for _, seq := range seqs {
			if fi, err := os.Stat(filepath.Join(s.dir, segmentName(seq))); err == nil {
				disk += fi.Size()
			}
		}
	}

	geoms := make([]GeometryStats, 0, len(perGeom))
	for _, g := range perGeom {
		geoms = append(geoms, *g)
	}
	sort.Slice(geoms, func(i, j int) bool { return geoms[i].Geometry < geoms[j].Geometry })

	rep := AdminReport{
		Dir:         s.dir,
		Records:     records,
		MetaRecords: meta,
		Segments:    segments,
		DiskBytes:   disk,
		LiveBytes:   live,
		Compactions: s.compactions.Load(),
		Geometries:  geoms,
	}
	// Write-behind appends still in the queue make live momentarily exceed
	// disk; clamp instead of reporting a negative ratio.
	if disk > live {
		rep.GarbageRatio = float64(disk-live) / float64(disk)
	}
	return rep
}
