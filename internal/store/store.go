// Package store is the persistent result store behind the simulation
// service: an on-disk, crash-safe, append-only log of completed
// sim.MethodRun results and deployment outcomes (including fabric
// rejections), so jfserved restarts and repeated jfbench invocations
// reuse verified work instead of recomputing sweeps.
//
// # Keying
//
// Records are content-keyed, never name-keyed. A deployment is identified
// by (method signature, method body hash, fabric geometry) and a run
// result additionally by (engine version, serial-per-mesh rule,
// mesh-cycle bound) — see DeployKey and RunKey. Because the key carries
// the fabric geometry rather than the configuration name, configurations
// that share a fabric (Compact10/Compact4/Compact2) share deployments,
// and renaming a configuration can never replay a wrong record.
//
// # On-disk format
//
// A store directory holds numbered segment files, "seg-000001.jfs",
// "seg-000002.jfs", ... Each segment is a sequence of framed records:
//
//	offset  size  field
//	0       4     magic "JFS1"
//	4       1     record type (1 = run result, 2 = deployment)
//	5       4     key length K  (uint32, little-endian)
//	9       4     value length V (uint32, little-endian)
//	13      K     key bytes (self-describing, human-greppable)
//	13+K    V     value bytes (run: sim.MethodRun stable binary codec;
//	              deployment: JSON deployRecord)
//	13+K+V  4     CRC32-C over bytes [0, 13+K+V)
//
// Records are append-only and idempotent: the same key may appear many
// times (across process lives or after races) and replay keeps the last
// occurrence. There are no tombstones — results are pure functions of
// their keys, so entries are never deleted, only superseded or dropped
// wholesale by an engine-version bump in the key.
//
// # Crash safety
//
// Appends go to the tail of the newest segment; a crash can only tear the
// final record, which the CRC detects, and replay discards the torn tail.
// Every Open starts a fresh segment rather than appending after a
// possibly-torn tail. A record whose frame is intact but whose checksum
// fails (bit rot, a flipped byte) is skipped individually and replay
// continues at the next frame. Compact rewrites the live records into a
// temporary file, fsyncs it, atomically renames it into place as the
// newest segment, and only then unlinks the old segments — a crash at any
// point leaves either the old segments, or the compacted segment plus
// harmless older duplicates.
//
// # Consistency
//
// Writes are write-behind: Put updates the in-memory index synchronously
// (readers immediately see their own writes) and a single writer
// goroutine appends to disk in the background. Flush blocks until the
// queue has drained and the segment is fsynced; Close flushes.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"javaflow/internal/obs"
)

// DefaultMaxSegmentBytes rotates the active segment once it passes 8 MiB
// — a full Chapter-7 sweep (≈10k runs at ≈100 B each) fits in one.
const DefaultMaxSegmentBytes = 8 << 20

// Options tunes a Store.
type Options struct {
	// MaxSegmentBytes rotates the active segment when it grows past this
	// (<=0 uses DefaultMaxSegmentBytes).
	MaxSegmentBytes int64
	// SyncEveryPut fsyncs after every append instead of only on rotate,
	// Flush and Close. Durable against power loss, ~100x slower.
	SyncEveryPut bool
}

// indexEntry is one live record in memory.
type indexEntry struct {
	typ byte
	val []byte
}

// writeReq is one queued append; done (when non-nil) is closed after the
// record — and everything queued before it — is on disk and fsynced.
type writeReq struct {
	rec  record
	done chan struct{}
}

// Store is the persistent result store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	index map[string]indexEntry

	qmu     sync.RWMutex // serializes queue sends against Close
	queue   chan writeReq
	writerD chan struct{} // closed when the writer goroutine exits

	fmu        sync.Mutex // guards the active segment (writer + compact)
	active     *os.File
	activeSize int64
	activeSeq  int
	// ownedSeqs are the closed segments whose full contents this store's
	// index covers: the segments replayed at Open plus segments this
	// process rotated or compacted. Compact deletes only these — never a
	// segment another process sharing the directory created afterwards.
	ownedSeqs []int
	segCount  int // ownedSeqs + the active segment (avoids ReadDir in Stats)
	// writeErr latches the first background append failure so Flush and
	// Close can report it instead of letting a caller exit believing its
	// results reached disk.
	writeErr error

	closed atomic.Bool

	// maintMu makes Compact and Ingest mutually exclusive: both rewrite
	// segment state, and interleaving would let a compact snapshot race
	// the foreign records an ingest is still appending. Acquired with
	// TryLock; the loser gets a typed *MaintenanceBusyError (see
	// lockMaint) and retries on its next round.
	maintMu sync.Mutex
	maintOp atomic.Value // string: which operation holds maintMu

	// manMu guards the sealed-segment manifest cache (see Manifest).
	manMu    sync.Mutex
	manCache map[int]manifestEntry

	// appendHook, when set, is called by the writer goroutine after each
	// payload (non-meta) record reaches the active segment. Replication
	// uses it as its push trigger; the hook must not block (it runs on the
	// single writer goroutine) and must not call back into the store.
	appendHook atomic.Pointer[func()]

	// journal, when set (SetJournal), receives compaction and quarantine
	// events. Held through an atomic pointer so late attachment cannot
	// race a live Compact.
	journal atomic.Pointer[obs.Journal]

	runHits, runMisses       atomic.Int64
	deployHits, deployMisses atomic.Int64
	puts, putErrors          atomic.Int64
	bytesAppended            atomic.Int64
	compactions              atomic.Int64
	ingested, ingestSkipped  atomic.Int64
	skippedRecords           int64 // set once during Open
	tornBytes                int64 // set once during Open
}

// Stats is a point-in-time snapshot of store effectiveness and health,
// exposed through serve.Metrics and GET /metrics.
type Stats struct {
	RunHits        int64 `json:"runHits"`
	RunMisses      int64 `json:"runMisses"`
	DeployHits     int64 `json:"deployHits"`
	DeployMisses   int64 `json:"deployMisses"`
	Puts           int64 `json:"puts"`
	PutErrors      int64 `json:"putErrors"`
	Records        int   `json:"records"`
	Segments       int   `json:"segments"`
	SkippedRecords int64 `json:"skippedRecords"`
	TornBytes      int64 `json:"tornBytes"`
	Compactions    int64 `json:"compactions"`
	BytesAppended  int64 `json:"bytesAppended"`
	// IngestedRecords / IngestSkipped count replication merges: records
	// pulled from peers versus records a peer offered that were already
	// live here (byte-exact dedup on content keys).
	IngestedRecords int64 `json:"ingestedRecords"`
	IngestSkipped   int64 `json:"ingestSkipped"`
}

func segmentName(seq int) string { return fmt.Sprintf("seg-%06d.jfs", seq) }

// listSegments returns the store's segment sequence numbers, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.jfs", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Open opens (creating if needed) the store rooted at dir, replaying every
// segment into the in-memory index. Damaged records are skipped, torn
// tails discarded; Open fails only on I/O errors or an unusable dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		index:   make(map[string]indexEntry),
		queue:   make(chan writeReq, 1024),
		writerD: make(chan struct{}),
	}

	// Sweep temp files a crashed Compact left behind. (In a shared
	// directory this can also race another process mid-Compact; that
	// compaction then fails at its rename and retries, losing nothing —
	// the segments it was folding are still in place.)
	if tmps, err := filepath.Glob(filepath.Join(dir, "compact-*.tmp")); err == nil {
		for _, t := range tmps {
			_ = os.Remove(t)
		}
	}

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		res := scanSegment(data, func(rec record) {
			// Replay keeps the newest occurrence of each key; copy out of
			// the segment buffer so segments can be garbage collected.
			s.index[string(rec.key)] = indexEntry{
				typ: rec.typ,
				val: append([]byte(nil), rec.val...),
			}
		})
		s.skippedRecords += int64(res.skipped)
		s.tornBytes += res.tail
	}

	// Always append to a fresh segment: the newest segment may end in a
	// torn record, and appending after garbage would hide later records
	// from replay.
	s.ownedSeqs = seqs
	s.activeSeq = 1
	if n := len(seqs); n > 0 {
		s.activeSeq = seqs[n-1] + 1
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	s.segCount = len(seqs) + 1
	go s.writer()
	return s, nil
}

// openActive creates the active segment at or after s.activeSeq, skipping
// sequence numbers another process writing the same directory grabbed
// first (O_EXCL makes the claim atomic; concurrent writers land in
// disjoint segments and replay merges them). Caller holds fmu or is the
// only goroutine with access (Open).
func (s *Store) openActive() error {
	for attempts := 0; ; attempts++ {
		f, err := os.OpenFile(filepath.Join(s.dir, segmentName(s.activeSeq)),
			os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err == nil {
			s.active = f
			s.activeSize = 0
			return nil
		}
		if !os.IsExist(err) || attempts >= 10000 {
			return fmt.Errorf("store: %w", err)
		}
		s.activeSeq++
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters. Segments counts the segment files this
// store knows of (replayed at Open or created since); another process
// sharing the directory may have added more.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records := len(s.index)
	s.mu.Unlock()
	s.fmu.Lock()
	segments := s.segCount
	s.fmu.Unlock()
	return Stats{
		RunHits:         s.runHits.Load(),
		RunMisses:       s.runMisses.Load(),
		DeployHits:      s.deployHits.Load(),
		DeployMisses:    s.deployMisses.Load(),
		Puts:            s.puts.Load(),
		PutErrors:       s.putErrors.Load(),
		Records:         records,
		Segments:        segments,
		SkippedRecords:  s.skippedRecords,
		TornBytes:       s.tornBytes,
		Compactions:     s.compactions.Load(),
		BytesAppended:   s.bytesAppended.Load(),
		IngestedRecords: s.ingested.Load(),
		IngestSkipped:   s.ingestSkipped.Load(),
	}
}

// get reads one live record.
func (s *Store) get(key []byte, typ byte) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.index[string(key)]
	s.mu.Unlock()
	if !ok || e.typ != typ {
		return nil, false
	}
	return e.val, true
}

// put indexes the record synchronously and queues the disk append. If the
// store is already closed the record stays in memory only and counts as a
// put error.
func (s *Store) put(typ byte, key, val []byte) {
	s.mu.Lock()
	s.index[string(key)] = indexEntry{typ: typ, val: val}
	s.mu.Unlock()
	s.puts.Add(1)
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed.Load() {
		s.putErrors.Add(1)
		return
	}
	s.queue <- writeReq{rec: record{typ: typ, key: key, val: val}}
}

// writer is the single background goroutine draining the append queue.
func (s *Store) writer() {
	defer close(s.writerD)
	for req := range s.queue {
		if req.done != nil {
			s.fmu.Lock()
			if s.active != nil {
				_ = s.active.Sync()
			}
			s.fmu.Unlock()
			close(req.done)
			continue
		}
		if err := s.appendToDisk(req.rec); err != nil {
			s.putErrors.Add(1)
			s.fmu.Lock()
			if s.writeErr == nil {
				s.writeErr = err
			}
			s.fmu.Unlock()
		} else if req.rec.typ != recTypeMeta {
			// Meta records (replication cursors, handoff hints) are
			// node-local bookkeeping — advertising them would make every
			// cursor write gossip about itself.
			if fn := s.appendHook.Load(); fn != nil {
				(*fn)()
			}
		}
	}
}

// SetAppendHook installs (or, with nil, removes) the post-append
// notification hook. The hook fires on the writer goroutine after a
// payload record lands in the active segment — before any fsync — so it
// must be cheap and non-blocking; flag-and-wake is the intended shape.
func (s *Store) SetAppendHook(fn func()) {
	if fn == nil {
		s.appendHook.Store(nil)
		return
	}
	s.appendHook.Store(&fn)
}

// appendToDisk frames and writes one record, rotating the segment first if
// it is full.
func (s *Store) appendToDisk(rec record) error {
	buf := appendRecord(nil, rec)
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.active == nil {
		return errors.New("store: closed")
	}
	if s.activeSize > 0 && s.activeSize+int64(len(buf)) > s.opts.MaxSegmentBytes {
		_ = s.active.Sync()
		_ = s.active.Close()
		s.ownedSeqs = append(s.ownedSeqs, s.activeSeq)
		s.activeSeq++
		if err := s.openActive(); err != nil {
			s.active = nil
			return err
		}
		s.segCount++
	}
	n, err := s.active.Write(buf)
	s.activeSize += int64(n)
	s.bytesAppended.Add(int64(n))
	if err != nil {
		// A failed or partial write leaves a torn frame at the tail;
		// appending after it would strand every later record behind
		// garbage the replay scanner discards. Retire this segment (its
		// good prefix still replays) and continue in a fresh one.
		_ = s.active.Close()
		s.ownedSeqs = append(s.ownedSeqs, s.activeSeq)
		s.activeSeq++
		if oerr := s.openActive(); oerr != nil {
			s.active = nil
		} else {
			s.segCount++
		}
		return err
	}
	if s.opts.SyncEveryPut {
		return s.active.Sync()
	}
	return nil
}

// Flush blocks until every queued append is on disk and fsynced. It
// returns the first background append failure, if any occurred — callers
// that treat persistence as load-bearing must check it.
func (s *Store) Flush() error {
	done := make(chan struct{})
	s.qmu.RLock()
	if s.closed.Load() {
		s.qmu.RUnlock()
		return s.takeWriteErr()
	}
	s.queue <- writeReq{done: done}
	s.qmu.RUnlock()
	<-done
	return s.takeWriteErr()
}

// takeWriteErr reads the latched first append failure.
func (s *Store) takeWriteErr() error {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	return s.writeErr
}

// Close flushes, stops the writer, and closes the active segment,
// reporting the first append failure of the store's lifetime if one
// occurred. The index stays readable; further Puts stay in memory only.
func (s *Store) Close() error {
	s.qmu.Lock()
	if s.closed.Swap(true) {
		s.qmu.Unlock()
		return nil
	}
	close(s.queue)
	s.qmu.Unlock()
	<-s.writerD
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.active == nil {
		return s.writeErr
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	// A read-only process life appended nothing; unlink its empty segment
	// so warm-only workloads don't accrete one file per restart. Best
	// effort: a failed unlink leaves a harmless empty file behind and
	// must not fail a Close whose data is already durable.
	if err == nil && s.activeSize == 0 {
		if rerr := os.Remove(filepath.Join(s.dir, segmentName(s.activeSeq))); rerr == nil {
			s.segCount--
		}
	}
	s.active = nil
	if err == nil {
		err = s.writeErr
	}
	return err
}

// Compact rewrites the live index into a single fresh segment (written to
// a temp file, fsynced, then atomically renamed over a name claimed with
// O_EXCL) and unlinks the segments it supersedes. Safe to call on a live
// store: concurrent appends land in a new active segment opened after the
// compacted one, preserving replay order. In a shared directory it only
// ever deletes segments whose contents this store's index fully covers —
// segments replayed at Open or written by this process — never one a
// concurrent process created since; note that a segment another process
// was still appending to at our Open is replayed (and thus superseded)
// only up to the bytes visible then, so run Compact from a sole writer.
func (s *Store) Compact() error {
	if s.closed.Load() {
		return errors.New("store: closed")
	}
	// Compact and Ingest are mutually exclusive: whichever starts second
	// gets a typed *MaintenanceBusyError and retries later instead of
	// silently interleaving with a segment rewrite.
	unlock, err := s.lockMaint("compact")
	if err != nil {
		return err
	}
	defer unlock()
	// Quiesce the writer so the compacted snapshot includes every record
	// already accepted by Put.
	if err := s.Flush(); err != nil {
		return err
	}

	s.fmu.Lock()
	defer s.fmu.Unlock()
	// Re-check under fmu: a Close that raced in after the entry check has
	// already retired the active segment, and compacting a closed store
	// would resurrect a stray active file nothing will ever close.
	if s.closed.Load() || s.active == nil {
		return errors.New("store: closed")
	}

	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		e := s.index[k]
		buf = appendRecord(buf, record{typ: e.typ, key: []byte(k), val: e.val})
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, "compact-*.tmp")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}

	// Claim the compacted segment's name atomically (as openActive does)
	// so the rename can never clobber a segment a concurrent process
	// created, then replace the claimed empty file with the snapshot. The
	// compacted segment goes after the current active one; the next
	// active segment goes after it, so later appends still win replay.
	compactSeq := s.activeSeq
	var claimed *os.File
	for {
		compactSeq++
		claimed, err = os.OpenFile(filepath.Join(s.dir, segmentName(compactSeq)),
			os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			_ = os.Remove(tmpName)
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	_ = claimed.Close()
	if err := os.Rename(tmpName, filepath.Join(s.dir, segmentName(compactSeq))); err != nil {
		_ = os.Remove(tmpName)
		_ = os.Remove(filepath.Join(s.dir, segmentName(compactSeq)))
		return fmt.Errorf("store: compact: %w", err)
	}

	// Drop the superseded segments: the ones this index was replayed or
	// rotated from, plus the active segment we are about to retire.
	_ = s.active.Sync()
	_ = s.active.Close()
	for _, seq := range append(s.ownedSeqs, s.activeSeq) {
		if seq != compactSeq {
			_ = os.Remove(filepath.Join(s.dir, segmentName(seq)))
		}
	}
	s.ownedSeqs = []int{compactSeq}
	s.activeSeq = compactSeq
	if err := s.openActive(); err != nil {
		s.active = nil
		return err
	}
	s.segCount = 2
	s.compactions.Add(1)
	s.journal.Load().Emit("store", "compaction", obs.SevInfo, "",
		"segment", strconv.Itoa(compactSeq),
		"bytes", strconv.Itoa(len(buf)))
	return nil
}
