package store

import (
	"testing"

	"javaflow/internal/fabric"
	"javaflow/internal/sim"
)

func adminRunKey(sig, geom string, h uint64) RunKey {
	return RunKey{
		DeployKey:     DeployKey{Signature: sig, MethodHash: h, Geometry: geom},
		SerialPerMesh: 2,
		MaxMeshCycles: 1000,
	}
}

func TestAdminReport(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	run := sim.MethodRun{Signature: "a/B.c/1", BP1: sim.Result{Fired: 3}, BP2: sim.Result{Fired: 4}}
	st.PutRun(adminRunKey("a/B.c/1", "w10:UB", 1), run)
	st.PutRun(adminRunKey("a/B.c/2", "w10:UB", 2), run)
	st.PutRun(adminRunKey("a/B.c/3", "w4:U", 3), run)
	st.PutDeploy(DeployKey{Signature: "a/B.c/4", MethodHash: 4, Geometry: "w4:U"},
		nil, &fabric.LoadError{Method: "a/B.c/4", Reason: "switch"})
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	rep := st.Admin()
	if rep.Records != 4 {
		t.Fatalf("records = %d, want 4", rep.Records)
	}
	if rep.Segments == 0 || rep.DiskBytes == 0 || rep.LiveBytes == 0 {
		t.Fatalf("empty footprint: %+v", rep)
	}
	if len(rep.Geometries) != 2 {
		t.Fatalf("geometries = %+v, want 2 entries", rep.Geometries)
	}
	// Sorted by geometry key: "w10:UB" < "w4:U".
	if g := rep.Geometries[0]; g.Geometry != "w10:UB" || g.Runs != 2 || g.Deploys != 0 {
		t.Fatalf("w10:UB breakdown = %+v", g)
	}
	if g := rep.Geometries[1]; g.Geometry != "w4:U" || g.Runs != 1 || g.Deploys != 1 {
		t.Fatalf("w4:U breakdown = %+v", g)
	}
	if rep.GarbageRatio > 0.01 {
		t.Fatalf("fresh store reports %.2f garbage", rep.GarbageRatio)
	}
}

func TestAdminGarbageRatioAndCompact(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	run := sim.MethodRun{Signature: "a/B.c/1", BP1: sim.Result{Fired: 1}}
	key := adminRunKey("a/B.c/1", "w10:UB", 1)
	// The same key rewritten many times: all but the last record are
	// garbage on disk.
	for i := 0; i < 50; i++ {
		st.PutRun(key, run)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	rep := st.Admin()
	if rep.Records != 1 {
		t.Fatalf("records = %d, want 1 live", rep.Records)
	}
	if rep.GarbageRatio < 0.9 {
		t.Fatalf("garbage ratio %.2f after 49 superseded rewrites, want > 0.9", rep.GarbageRatio)
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	rep = st.Admin()
	if rep.GarbageRatio > 0.01 {
		t.Fatalf("garbage ratio %.2f after compaction", rep.GarbageRatio)
	}
	if rep.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", rep.Compactions)
	}
	if rep.Records != 1 {
		t.Fatalf("compaction lost records: %+v", rep)
	}
}
