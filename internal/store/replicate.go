package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// This file is the store's replication surface: exporting the segment log
// to peers (Manifest, ReadSegmentAt), merging foreign segments back in
// (Ingest), and the node-local meta records replication bookkeeping lives
// in (GetMeta/PutMeta). internal/replicate drives it over HTTP; the store
// itself never talks to the network.

// SegmentInfo describes one replicable segment: its sequence number, the
// length of its replayable prefix (whole, frame-aligned records — a torn
// tail or a partially appended frame is excluded), and a CRC32-C over
// exactly those bytes. Peers compare Size against their per-segment cursor
// to decide what still needs fetching.
type SegmentInfo struct {
	Seq    int    `json:"seq"`
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// MaintenanceBusyError reports that Compact or Ingest was refused because
// the other maintenance operation currently holds the store's maintenance
// lock. Both rewrite segment state; interleaving them would let a compact
// snapshot race the foreign records an ingest is still appending. Callers
// retry on the next round instead.
type MaintenanceBusyError struct {
	Op     string // the operation that was refused: "compact" or "ingest"
	Holder string // the operation holding the lock
}

func (e *MaintenanceBusyError) Error() string {
	return fmt.Sprintf("store: %s refused: %s in progress", e.Op, e.Holder)
}

// maintHolder reads which maintenance operation holds maintMu (best-effort:
// the holder is stored right after acquisition).
func (s *Store) maintHolder() string {
	if h, ok := s.maintOp.Load().(string); ok && h != "" {
		return h
	}
	return "maintenance"
}

// lockMaint claims the maintenance lock for op, or returns the typed busy
// error naming the current holder.
func (s *Store) lockMaint(op string) (unlock func(), err error) {
	if !s.maintMu.TryLock() {
		return nil, &MaintenanceBusyError{Op: op, Holder: s.maintHolder()}
	}
	s.maintOp.Store(op)
	return func() {
		s.maintOp.Store("")
		s.maintMu.Unlock()
	}, nil
}

// readSegmentPrefix reads the first limit bytes of path (limit < 0 reads
// the whole file).
func readSegmentPrefix(path string, limit int64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if limit >= 0 && int64(len(data)) > limit {
		data = data[:limit]
	}
	return data, nil
}

// manifestEntry caches one sealed segment's manifest line. Sealed
// segments are immutable (seqs are never reused; compaction deletes files
// rather than rewriting them), so their replayable prefix and CRC are
// computed once and reused across polls; fileSize guards the entry in
// case the segment was still active when first scanned and grew since.
type manifestEntry struct {
	fileSize int64
	info     SegmentInfo
}

// Manifest lists the store's segments for replication, each reported at
// its current replayable prefix. The active segment is included up to the
// bytes already handed to the OS (appends are whole frames under fmu, so
// the prefix is always frame-aligned); a sealed segment's torn tail is
// excluded, so a puller that reaches Size has everything the segment will
// ever yield. Segments another process compacted away between the listing
// and the read are skipped. Sealed segments are scanned once and served
// from a cache afterwards, so a fleet polling an idle converged store
// costs stat calls, not full-log reads.
func (s *Store) Manifest() ([]SegmentInfo, error) {
	s.fmu.Lock()
	activeSeq, activeSize := s.activeSeq, s.activeSize
	s.fmu.Unlock()

	seqs, err := listSegments(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	out := make([]SegmentInfo, 0, len(seqs))
	live := make(map[int]bool, len(seqs))
	for _, seq := range seqs {
		live[seq] = true
		limit := int64(-1)
		sealed := seq != activeSeq
		if !sealed {
			if activeSize == 0 {
				continue
			}
			limit = activeSize
		}
		path := filepath.Join(s.dir, segmentName(seq))
		if sealed {
			fi, err := os.Stat(path)
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return nil, fmt.Errorf("store: manifest: %w", err)
			}
			s.manMu.Lock()
			e, ok := s.manCache[seq]
			s.manMu.Unlock()
			if ok && e.fileSize == fi.Size() {
				if e.info.Size > 0 {
					out = append(out, e.info)
				}
				continue
			}
		}
		data, err := readSegmentPrefix(path, limit)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("store: manifest: %w", err)
		}
		fileSize := int64(len(data))
		// Trim to the replayable prefix: everything up to (not including)
		// the first torn or unparseable frame. CRC-failed frames inside the
		// prefix stay — they are consumed (and skipped) identically by
		// replay and by a peer's Ingest.
		res := scanSegment(data, func(record) {})
		data = data[:int64(len(data))-res.tail]
		info := SegmentInfo{
			Seq:    seq,
			Size:   int64(len(data)),
			CRC32C: crc32.Checksum(data, castagnoli),
		}
		if sealed {
			s.manMu.Lock()
			if s.manCache == nil {
				s.manCache = make(map[int]manifestEntry)
			}
			s.manCache[seq] = manifestEntry{fileSize: fileSize, info: info}
			s.manMu.Unlock()
		}
		if info.Size == 0 {
			continue
		}
		out = append(out, info)
	}
	// Drop cache entries for segments compaction removed.
	s.manMu.Lock()
	for seq := range s.manCache {
		if !live[seq] {
			delete(s.manCache, seq)
		}
	}
	s.manMu.Unlock()
	return out, nil
}

// ReadSegmentAt returns the bytes of segment seq from offset from up to the
// currently visible end (for the active segment, the bytes fully appended
// so far). from past the visible end returns empty data, not an error; an
// unknown segment returns an error satisfying os.IsNotExist. Offsets are
// only meaningful at frame boundaries — pullers advance their cursor by
// the frame-aligned byte count Ingest reports, so that holds by
// construction.
func (s *Store) ReadSegmentAt(seq int, from int64) (data []byte, visible int64, err error) {
	if from < 0 {
		return nil, 0, fmt.Errorf("store: negative segment offset %d", from)
	}
	s.fmu.Lock()
	activeSeq, activeSize := s.activeSeq, s.activeSize
	s.fmu.Unlock()

	f, err := os.Open(filepath.Join(s.dir, segmentName(seq)))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	visible = fi.Size()
	if seq == activeSeq && activeSize < visible {
		visible = activeSize
	}
	if from >= visible {
		return nil, visible, nil
	}
	buf := make([]byte, visible-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, 0, fmt.Errorf("store: reading segment %d: %w", seq, err)
	}
	return buf, visible, nil
}

// IngestResult reports what one Ingest call did with a chunk of foreign
// segment bytes.
type IngestResult struct {
	// Ingested counts records merged into this store (key was absent).
	Ingested int
	// Skipped counts records whose key was already live here — the
	// byte-exact dedup content keys make safe (both copies encode the same
	// pure function of the key, so keeping ours is not conflict
	// resolution).
	Skipped int
	// SkippedMeta counts meta records (the source's own replication
	// cursors), which are node-local and never cross nodes.
	SkippedMeta int
	// CRCSkipped counts frames whose checksum failed; they are consumed
	// (replay on the source would skip them identically) but not merged.
	CRCSkipped int
	// Bytes is the frame-aligned byte count consumed from the chunk — what
	// the caller advances its per-peer cursor by. Torn trailing bytes are
	// not consumed and will be re-fetched.
	Bytes int64
	// TornBytes is the unusable tail of the chunk (a frame still being
	// appended on the source, or permanent tail damage the source's
	// manifest excludes).
	TornBytes int64
}

// Ingest merges a chunk of a foreign segment into the store: every frame
// is CRC-revalidated, records whose key is already live are skipped
// (content keys make the dedup byte-exact), and new records flow through
// the normal write-behind append path — so ingested data gets the same
// torn-tail crash-safety as local puts, and lands in this store's own
// segments where downstream peers can pull it onward (epidemic
// propagation). Chunks must start on a frame boundary; Ingest consumes
// whole frames and reports how far it got.
//
// Ingest and Compact are mutually exclusive: whichever starts second gets
// a *MaintenanceBusyError and retries later.
func (s *Store) Ingest(data []byte) (IngestResult, error) {
	var res IngestResult
	if s.closed.Load() {
		return res, errors.New("store: closed")
	}
	unlock, err := s.lockMaint("ingest")
	if err != nil {
		return res, err
	}
	defer unlock()

	scan := scanSegment(data, func(rec record) {
		if rec.typ == recTypeMeta {
			res.SkippedMeta++
			return
		}
		key := string(rec.key)
		s.mu.Lock()
		_, exists := s.index[key]
		s.mu.Unlock()
		if exists {
			res.Skipped++
			return
		}
		// Copy out of the network buffer: put retains both slices.
		s.put(rec.typ, []byte(key), append([]byte(nil), rec.val...))
		res.Ingested++
	})
	res.CRCSkipped = scan.skipped
	res.TornBytes = scan.tail
	res.Bytes = int64(len(data)) - scan.tail
	s.ingested.Add(int64(res.Ingested))
	s.ingestSkipped.Add(int64(res.Skipped))
	return res, nil
}

// metaKey frames a meta record key. Meta keys share the log's
// human-greppable style: "meta|replcursor|http://10.0.0.7:8077".
func metaKey(name string) []byte { return []byte("meta|" + name) }

// GetMeta reads one node-local meta record.
func (s *Store) GetMeta(name string) ([]byte, bool) {
	return s.get(metaKey(name), recTypeMeta)
}

// PutMeta writes one node-local meta record through the normal write-behind
// path. Because the log is strictly ordered, a meta record queued after a
// batch of ingested records can only become durable after them — the
// property replication cursors rely on: a crash that tears away ingested
// records necessarily tears away (or precedes) the cursor that would have
// claimed them.
func (s *Store) PutMeta(name string, val []byte) {
	s.put(recTypeMeta, metaKey(name), append([]byte(nil), val...))
}

// HasRun reports whether k is live without counting a hit or a miss — the
// peek dispatch fronts use to decide a retry can be served warm from the
// local store.
func (s *Store) HasRun(k RunKey) bool {
	s.mu.Lock()
	e, ok := s.index[string(k.encode())]
	s.mu.Unlock()
	return ok && e.typ == recTypeRun
}

// MarshalCursor / UnmarshalCursor give replication cursors one stable wire
// form (JSON, segment seqs as decimal strings) so the store and the
// replicator agree without sharing more types.
type cursorValue struct {
	Segments map[string]int64 `json:"segments"`
}

// MarshalCursor encodes a per-peer segment cursor (seq -> ingested bytes).
func MarshalCursor(segments map[int]int64) []byte {
	cv := cursorValue{Segments: make(map[string]int64, len(segments))}
	for seq, off := range segments {
		cv.Segments[fmt.Sprintf("%d", seq)] = off
	}
	data, _ := json.Marshal(cv)
	return data
}

// UnmarshalCursor decodes a cursor written by MarshalCursor. Damaged or
// empty input yields an empty cursor — the replicator then re-fetches and
// dedups, never loses data.
func UnmarshalCursor(data []byte) map[int]int64 {
	var cv cursorValue
	out := make(map[int]int64)
	if err := json.Unmarshal(data, &cv); err != nil {
		return out
	}
	for seqStr, off := range cv.Segments {
		var seq int
		if _, err := fmt.Sscanf(seqStr, "%d", &seq); err == nil {
			out[seq] = off
		}
	}
	return out
}
