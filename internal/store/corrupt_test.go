package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"javaflow/internal/scenario/chaosfs"
)

// writeSeedStore populates a fresh store with n run records and returns
// the keys and the path of the segment holding them.
func writeSeedStore(t *testing.T, dir string, n int) ([]RunKey, string) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, cfg := testMethod(t)
	run := runFor(t, cfg, m)
	keys := make([]RunKey, n)
	for i := range keys {
		k := RunKeyFor(cfg, m, 400_000)
		k.Signature = fmt.Sprintf("%s#%d", k.Signature, i)
		keys[i] = k
		st.PutRun(k, run)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return keys, filepath.Join(dir, segmentName(1))
}

func TestStoreRecoversFromTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	keys, seg := writeSeedStore(t, dir, 3)

	// Tear the final record as a crash mid-append would: keep its header
	// but lose part of its body and the checksum.
	if err := chaosfs.TruncateTail(seg, 10); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after truncation: %v", err)
	}
	defer st.Close()
	for _, k := range keys[:2] {
		if _, ok := st.GetRun(k); !ok {
			t.Fatalf("intact record %s lost after truncation", k.Signature)
		}
	}
	if _, ok := st.GetRun(keys[2]); ok {
		t.Fatal("torn record served")
	}
	stats := st.Stats()
	if stats.Records != 2 || stats.TornBytes == 0 {
		t.Fatalf("stats = %+v, want 2 records and nonzero torn bytes", stats)
	}
}

func TestStoreSkipsChecksumFlippedRecord(t *testing.T) {
	dir := t.TempDir()
	keys, seg := writeSeedStore(t, dir, 3)

	// Flip one bit in the final record's CRC trailer: the frame stays
	// parseable, the checksum fails, and replay must skip exactly that
	// record while keeping the ones before it.
	if err := chaosfs.FlipByte(seg, -1, 0x40); err != nil {
		t.Fatalf("flip CRC byte: %v", err)
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after bit flip: %v", err)
	}
	defer st.Close()
	for _, k := range keys[:2] {
		if _, ok := st.GetRun(k); !ok {
			t.Fatalf("clean record %s lost after unrelated bit flip", k.Signature)
		}
	}
	if _, ok := st.GetRun(keys[2]); ok {
		t.Fatal("checksum-failed record served")
	}
	stats := st.Stats()
	if stats.Records != 2 || stats.SkippedRecords != 1 || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v, want 2 records / 1 skipped / 0 torn", stats)
	}
}

func TestStoreSkipsFlippedValueByteMidSegment(t *testing.T) {
	dir := t.TempDir()
	keys, seg := writeSeedStore(t, dir, 3)

	// Corrupt a byte inside the FIRST record's value: replay must skip it
	// and still deliver both later records.
	firstKey := keys[0].encode()
	if err := chaosfs.FlipByte(seg, headerSize+len(firstKey)+4, 0xFF); err != nil {
		t.Fatalf("flip value byte: %v", err)
	}

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after value corruption: %v", err)
	}
	defer st.Close()
	if _, ok := st.GetRun(keys[0]); ok {
		t.Fatal("corrupted record served")
	}
	for _, k := range keys[1:] {
		if _, ok := st.GetRun(k); !ok {
			t.Fatalf("record %s after the corrupted one was lost", k.Signature)
		}
	}
	if stats := st.Stats(); stats.SkippedRecords != 1 || stats.Records != 2 {
		t.Fatalf("stats = %+v, want 1 skipped / 2 records", stats)
	}
}

// TestStoreIngestCrashRecovery kills a node "mid-ingest": the destination
// ingested foreign records and queued its per-peer cursor behind them, but
// the tail of the append — the final data record and the cursor — never
// fully reached disk. Reopening must discard the torn foreign tail AND the
// cursor that would have claimed it (the cursor is appended after the
// data, so a tear can never keep the claim while losing the goods), and a
// re-ingest of the same chunk must restore exactly the lost records.
func TestStoreIngestCrashRecovery(t *testing.T) {
	srcDir := t.TempDir()
	keys, _ := writeSeedStore(t, srcDir, 3)
	src, err := Open(srcDir, Options{})
	if err != nil {
		t.Fatalf("reopen src: %v", err)
	}
	chunk := exportAll(t, src)
	src.Close()

	const cursorName = "replcursor|http://peer-a"
	dstDir := t.TempDir()
	dst, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	res, err := dst.Ingest(chunk)
	if err != nil || res.Ingested != 3 {
		t.Fatalf("ingest = %+v, %v; want 3 ingested", res, err)
	}
	// The replicator's cursor write: strictly after the data records.
	dst.PutMeta(cursorName, MarshalCursor(map[int]int64{1: res.Bytes}))
	if err := dst.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the destination segment as a crash mid-append would: the cursor
	// record is last, so cutting back past it also tears the final data
	// record.
	seg := filepath.Join(dstDir, segmentName(1))
	cursorLen := len(appendRecord(nil, record{
		typ: recTypeMeta,
		key: metaKey(cursorName),
		val: MarshalCursor(map[int]int64{1: res.Bytes}),
	}))
	cut := cursorLen + 10 // the whole cursor plus part of the last data record
	if err := chaosfs.TruncateTail(seg, cut); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	dst2, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer dst2.Close()
	if _, ok := dst2.GetMeta(cursorName); ok {
		t.Fatal("cursor survived a tear that lost the records it claims")
	}
	if _, ok := dst2.GetRun(keys[2]); ok {
		t.Fatal("torn foreign record served")
	}
	for _, k := range keys[:2] {
		if _, ok := dst2.GetRun(k); !ok {
			t.Fatalf("durable foreign record %s lost", k.Signature)
		}
	}

	// The next anti-entropy round re-fetches from the last durable point
	// (here: no cursor, the whole chunk) and dedup absorbs the survivors.
	res, err = dst2.Ingest(chunk)
	if err != nil {
		t.Fatalf("re-ingest: %v", err)
	}
	if res.Ingested != 1 || res.Skipped != 2 {
		t.Fatalf("re-ingest = %+v, want exactly the torn record restored", res)
	}
	for _, k := range keys {
		if _, ok := dst2.GetRun(k); !ok {
			t.Fatalf("record %s missing after recovery round", k.Signature)
		}
	}
}

// TestStoreUndecodableValueIsMiss covers a value that passes the CRC but
// fails the codec (e.g. written by a future layout): it must read as a
// miss, not an error.
func TestStoreUndecodableValueIsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	m, cfg := testMethod(t)
	k := RunKeyFor(cfg, m, 400_000)
	st.put(recTypeRun, k.encode(), []byte{99, 1, 2, 3}) // bogus codec version
	if _, ok := st.GetRun(k); ok {
		t.Fatal("undecodable value served as a hit")
	}
}
