package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"javaflow/internal/classfile"
	"javaflow/internal/sim"
)

// DeployKey identifies one deployment outcome: a method placed and
// address-resolved on a fabric geometry. It deliberately omits the
// configuration *name* — Compact10/Compact4/Compact2 share a geometry, so
// they share deployments (ROADMAP "cross-config deployment sharing") —
// and carries a content hash of the method body so a population change
// that reuses a signature can never replay a stale deployment. Like
// RunKey it embeds sim.EngineVersion: a placement/resolution algorithm
// change bumps the version and orphans old deployment records instead of
// replaying stale NodeOf/Targets arrays.
type DeployKey struct {
	Signature  string
	MethodHash uint64
	Geometry   string
}

func (k DeployKey) encode() []byte {
	return []byte(fmt.Sprintf("dep|e%d|%s|%016x|%s",
		sim.EngineVersion, k.Signature, k.MethodHash, k.Geometry))
}

// RunKey identifies one MethodRun: a deployment plus everything else that
// can change the engine's observable output — the serial clocking rule,
// the mesh-cycle bound, and the engine version.
type RunKey struct {
	DeployKey
	SerialPerMesh int
	MaxMeshCycles int
}

func (k RunKey) encode() []byte {
	return []byte(fmt.Sprintf("run|e%d|%s|%016x|%s|spm%d|max%d",
		sim.EngineVersion, k.Signature, k.MethodHash, k.Geometry,
		k.SerialPerMesh, k.MaxMeshCycles))
}

// DeployKeyFor builds the deployment key of m on cfg's fabric.
func DeployKeyFor(cfg sim.Config, m *classfile.Method) DeployKey {
	return DeployKey{
		Signature:  m.Signature(),
		MethodHash: MethodHash(m),
		Geometry:   cfg.Fabric.GeometryKey(),
	}
}

// RunKeyFor builds the result key of m on cfg with the given effective
// mesh-cycle bound (the caller resolves defaults first; 0 here would make
// distinct bounds collide).
func RunKeyFor(cfg sim.Config, m *classfile.Method, maxMeshCycles int) RunKey {
	return RunKey{
		DeployKey:     DeployKeyFor(cfg, m),
		SerialPerMesh: cfg.SerialPerMesh,
		MaxMeshCycles: maxMeshCycles,
	}
}

// MethodHash fingerprints everything about a method that deployment and
// execution observe: identity, register/stack shape, and the full
// instruction stream (opcode, operands, branch and switch targets, stack
// effects). FNV-1a over a fixed little-endian field walk.
func MethodHash(m *classfile.Method) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(v))
		h.Write(scratch[:])
	}
	writeBool := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	h.Write([]byte(m.Class))
	h.Write([]byte{0})
	h.Write([]byte(m.Name))
	h.Write([]byte{0})
	writeInt(int64(m.Argc))
	writeBool(m.Instance)
	writeBool(m.ReturnsValue)
	writeInt(int64(m.MaxLocals))
	writeInt(int64(m.MaxStack))
	writeInt(int64(len(m.Code)))
	for _, in := range m.Code {
		writeInt(int64(in.Op))
		writeInt(in.A)
		writeInt(in.B)
		writeInt(int64(in.Target))
		writeInt(int64(len(in.SwitchKeys)))
		for _, k := range in.SwitchKeys {
			writeInt(k)
		}
		writeInt(int64(len(in.SwitchTargets)))
		for _, t := range in.SwitchTargets {
			writeInt(int64(t))
		}
		writeInt(int64(in.Pop))
		writeInt(int64(in.Push))
	}
	return h.Sum64()
}
