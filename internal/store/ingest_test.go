package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
)

// exportAll reads every manifest segment of src in full — the byte stream
// a peer's replicator would pull on a cold sync.
func exportAll(t *testing.T, src *Store) []byte {
	t.Helper()
	manifest, err := src.Manifest()
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var out []byte
	for _, seg := range manifest {
		data, _, err := src.ReadSegmentAt(seg.Seq, 0)
		if err != nil {
			t.Fatalf("read segment %d: %v", seg.Seq, err)
		}
		if int64(len(data)) < seg.Size {
			t.Fatalf("segment %d: read %d bytes, manifest says %d", seg.Seq, len(data), seg.Size)
		}
		out = append(out, data[:seg.Size]...)
	}
	return out
}

func TestStoreIngestMergesAndDedups(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open src: %v", err)
	}
	defer src.Close()
	m, cfg := testMethod(t)
	run := runFor(t, cfg, m)
	keys := make([]RunKey, 3)
	for i := range keys {
		k := RunKeyFor(cfg, m, 400_000)
		k.Signature = fmt.Sprintf("%s#%d", k.Signature, i)
		keys[i] = k
		src.PutRun(k, run)
	}
	if err := src.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	chunk := exportAll(t, src)

	dst, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	defer dst.Close()
	res, err := dst.Ingest(chunk)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Ingested != 3 || res.Skipped != 0 || res.Bytes != int64(len(chunk)) || res.TornBytes != 0 {
		t.Fatalf("ingest result = %+v, want 3 ingested / full chunk consumed", res)
	}

	// Every pulled record must be byte-identical to the source's copy.
	want, err := run.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, k := range keys {
		got, ok := dst.GetRun(k)
		if !ok {
			t.Fatalf("ingested key %s missing", k.Signature)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(gotBytes, want) {
			t.Fatalf("ingested run for %s not byte-identical", k.Signature)
		}
	}

	// Re-ingesting the same chunk is a pure dedup: content keys are
	// already live, nothing is appended.
	res, err = dst.Ingest(chunk)
	if err != nil {
		t.Fatalf("re-ingest: %v", err)
	}
	if res.Ingested != 0 || res.Skipped != 3 {
		t.Fatalf("re-ingest result = %+v, want 0 ingested / 3 skipped", res)
	}
	stats := dst.Stats()
	if stats.IngestedRecords != 3 || stats.IngestSkipped != 3 {
		t.Fatalf("stats = %+v, want 3 ingested / 3 skipped", stats)
	}
}

// TestStoreIngestIsDurable proves ingested records flow through the same
// crash-safe append path as local puts: a fresh Open replays them.
func TestStoreIngestIsDurable(t *testing.T) {
	srcDir := t.TempDir()
	keys, _ := writeSeedStore(t, srcDir, 2)
	src, err := Open(srcDir, Options{})
	if err != nil {
		t.Fatalf("reopen src: %v", err)
	}
	chunk := exportAll(t, src)
	src.Close()

	dstDir := t.TempDir()
	dst, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	if _, err := dst.Ingest(chunk); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := dst.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	dst2, err := Open(dstDir, Options{})
	if err != nil {
		t.Fatalf("reopen dst: %v", err)
	}
	defer dst2.Close()
	for _, k := range keys {
		if _, ok := dst2.GetRun(k); !ok {
			t.Fatalf("ingested key %s did not survive a restart", k.Signature)
		}
	}
}

func TestStoreIngestSkipsMetaRecords(t *testing.T) {
	src, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open src: %v", err)
	}
	defer src.Close()
	m, cfg := testMethod(t)
	k := RunKeyFor(cfg, m, 400_000)
	src.PutRun(k, runFor(t, cfg, m))
	src.PutMeta("replcursor|http://peer-a", []byte(`{"segments":{"1":100}}`))
	if err := src.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	chunk := exportAll(t, src)

	dst, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open dst: %v", err)
	}
	defer dst.Close()
	res, err := dst.Ingest(chunk)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Ingested != 1 || res.SkippedMeta != 1 {
		t.Fatalf("ingest result = %+v, want 1 ingested / 1 meta skipped", res)
	}
	if _, ok := dst.GetMeta("replcursor|http://peer-a"); ok {
		t.Fatal("a foreign replication cursor crossed nodes")
	}
	if _, ok := dst.GetRun(k); !ok {
		t.Fatal("payload record did not cross")
	}
	rep := dst.Admin()
	if rep.MetaRecords != 0 || rep.Records != 1 {
		t.Fatalf("admin = %+v, want 1 record / 0 meta", rep)
	}
}

// TestStoreManifestCoversActiveSegment: records still in the active
// (unsealed) segment replicate too — a peer does not have to wait for a
// rotation or restart.
func TestStoreManifestCoversActiveSegment(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	m, cfg := testMethod(t)
	st.PutRun(RunKeyFor(cfg, m, 400_000), runFor(t, cfg, m))
	if err := st.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	manifest, err := st.Manifest()
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(manifest) != 1 || manifest[0].Size == 0 {
		t.Fatalf("manifest = %+v, want the active segment with bytes", manifest)
	}
	data, visible, err := st.ReadSegmentAt(manifest[0].Seq, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if int64(len(data)) != manifest[0].Size || visible != manifest[0].Size {
		t.Fatalf("read %d bytes (visible %d), manifest says %d", len(data), visible, manifest[0].Size)
	}
	// Reading at the end returns empty, not an error (the puller's "caught
	// up" probe).
	tail, _, err := st.ReadSegmentAt(manifest[0].Seq, manifest[0].Size)
	if err != nil || len(tail) != 0 {
		t.Fatalf("read at end = %d bytes, %v; want empty, nil", len(tail), err)
	}
}

// TestStoreManifestExcludesTornTail: a sealed segment's torn tail is not
// offered to pullers, so a cursor that reaches Size is genuinely done.
func TestStoreManifestExcludesTornTail(t *testing.T) {
	dir := t.TempDir()
	_, seg := writeSeedStore(t, dir, 3)
	data, err := readSegmentPrefix(seg, -1)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if err := os.WriteFile(seg, data[:len(data)-10], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	manifest, err := st.Manifest()
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(manifest) != 1 {
		t.Fatalf("manifest = %+v, want one segment", manifest)
	}
	res := scanSegment(data[:len(data)-10], func(record) {})
	want := int64(len(data)-10) - res.tail
	if manifest[0].Size != want {
		t.Fatalf("manifest size %d, want torn tail excluded (%d)", manifest[0].Size, want)
	}
}

func TestStoreCompactIngestMutuallyExclusive(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()

	unlock, err := st.lockMaint("compact")
	if err != nil {
		t.Fatalf("lockMaint: %v", err)
	}
	_, err = st.Ingest(nil)
	var busy *MaintenanceBusyError
	if !errors.As(err, &busy) {
		t.Fatalf("Ingest during compact = %v, want *MaintenanceBusyError", err)
	}
	if busy.Op != "ingest" || busy.Holder != "compact" {
		t.Fatalf("busy = %+v, want ingest refused by compact", busy)
	}
	unlock()

	unlock, err = st.lockMaint("ingest")
	if err != nil {
		t.Fatalf("lockMaint: %v", err)
	}
	err = st.Compact()
	if !errors.As(err, &busy) {
		t.Fatalf("Compact during ingest = %v, want *MaintenanceBusyError", err)
	}
	if busy.Op != "compact" || busy.Holder != "ingest" {
		t.Fatalf("busy = %+v, want compact refused by ingest", busy)
	}
	unlock()

	// Both work once the lock is free.
	if _, err := st.Ingest(nil); err != nil {
		t.Fatalf("ingest after unlock: %v", err)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("compact after unlock: %v", err)
	}
}

func TestCursorCodecRoundTrip(t *testing.T) {
	in := map[int]int64{1: 100, 7: 8_388_608}
	out := UnmarshalCursor(MarshalCursor(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("cursor round trip = %v, want %v", out, in)
	}
	if got := UnmarshalCursor([]byte("not json")); len(got) != 0 {
		t.Fatalf("damaged cursor = %v, want empty", got)
	}
}
