package store

import (
	"encoding/json"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/sim"
)

// GetRun returns the persisted MethodRun for k, if present and decodable.
// The caller re-stamps the per-policy Config labels with the requesting
// configuration's name (the key is geometry-based, so the label of the
// process that computed the run may differ).
func (s *Store) GetRun(k RunKey) (sim.MethodRun, bool) {
	val, ok := s.get(k.encode(), recTypeRun)
	if !ok {
		s.runMisses.Add(1)
		return sim.MethodRun{}, false
	}
	var run sim.MethodRun
	if err := run.UnmarshalBinary(val); err != nil {
		// An undecodable value (codec bump without an engine bump) is a
		// miss; the fresh result will supersede it.
		s.runMisses.Add(1)
		return sim.MethodRun{}, false
	}
	s.runHits.Add(1)
	return run, true
}

// PutRun persists one completed MethodRun under k.
func (s *Store) PutRun(k RunKey, run sim.MethodRun) {
	val, err := run.MarshalBinary()
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	s.put(recTypeRun, k.encode(), val)
}

// deployRecord is the JSON value of a persisted deployment outcome: either
// a fabric rejection (Failed) or the pure derived data of a successful
// placement + address resolution. The method body and fabric themselves
// are not stored — they are reattached from the live registry on load,
// guarded by the MethodHash and geometry in the key.
type deployRecord struct {
	Failed    bool   `json:"failed,omitempty"`
	ErrMethod string `json:"errMethod,omitempty"`
	ErrReason string `json:"errReason,omitempty"`

	NodeOf  []int             `json:"nodeOf,omitempty"`
	MaxNode int               `json:"maxNode,omitempty"`
	Targets [][]fabric.Target `json:"targets,omitempty"`
	Sources [][]int           `json:"sources,omitempty"`
	QUp     []int             `json:"qUp,omitempty"`
	MaxQUp  int               `json:"maxQUp,omitempty"`
	Cycles  int               `json:"cycles,omitempty"`
	Merges  int               `json:"merges,omitempty"`
	// BackMerges is structurally 0 for any resolution that succeeded.
}

// PutDeploy persists the outcome of deploying a method: a successful
// resolution, or a *fabric.LoadError rejection. Other error kinds are not
// persisted (they cannot be reconstructed as their concrete type, and the
// sweep paths only memoize rejections).
func (s *Store) PutDeploy(k DeployKey, res *fabric.Resolution, derr error) {
	var rec deployRecord
	switch {
	case derr != nil:
		le, ok := derr.(*fabric.LoadError)
		if !ok {
			return
		}
		rec = deployRecord{Failed: true, ErrMethod: le.Method, ErrReason: le.Reason}
	case res != nil:
		rec = deployRecord{
			NodeOf:  res.Placement.NodeOf,
			MaxNode: res.Placement.MaxNode,
			Targets: res.Targets,
			Sources: res.Sources,
			QUp:     res.QUp,
			MaxQUp:  res.MaxQUp,
			Cycles:  res.Cycles,
			Merges:  res.Merges,
		}
	default:
		return
	}
	val, err := json.Marshal(rec)
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	s.put(recTypeDep, k.encode(), val)
}

// GetDeploy returns the persisted deployment outcome for k, rebinding it
// to the live fabric and method. ok is false on a miss; on a hit exactly
// one of the resolution and the error is non-nil, mirroring
// sim.DeployMethod.
func (s *Store) GetDeploy(k DeployKey, f *fabric.Fabric, m *classfile.Method) (res *fabric.Resolution, ok bool, derr error) {
	val, hit := s.get(k.encode(), recTypeDep)
	if !hit {
		s.deployMisses.Add(1)
		return nil, false, nil
	}
	var rec deployRecord
	if err := json.Unmarshal(val, &rec); err != nil {
		s.deployMisses.Add(1)
		return nil, false, nil
	}
	if rec.Failed {
		s.deployHits.Add(1)
		return nil, true, &fabric.LoadError{Method: rec.ErrMethod, Reason: rec.ErrReason}
	}
	// A well-keyed record always matches the live method's shape; treat a
	// mismatch (e.g. a hand-edited store) as a miss rather than handing
	// the engine an inconsistent resolution.
	n := len(m.Code)
	if len(rec.NodeOf) != n || len(rec.Targets) != n || len(rec.Sources) != n || len(rec.QUp) != n {
		s.deployMisses.Add(1)
		return nil, false, nil
	}
	s.deployHits.Add(1)
	return &fabric.Resolution{
		Placement: &fabric.Placement{
			Fabric:  f,
			Method:  m,
			NodeOf:  rec.NodeOf,
			MaxNode: rec.MaxNode,
		},
		Targets: rec.Targets,
		Sources: rec.Sources,
		QUp:     rec.QUp,
		MaxQUp:  rec.MaxQUp,
		Cycles:  rec.Cycles,
		Merges:  rec.Merges,
	}, true, nil
}
