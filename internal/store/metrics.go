package store

import (
	"strconv"

	"javaflow/internal/obs"
)

// SetJournal attaches the node's structured event journal: compactions
// emit through it from then on, and any replay damage Open discovered
// (skipped records, torn tail bytes) is surfaced immediately as a
// quarantine event — the log healed itself, but an operator should know
// the machine lost bytes. Nil detaches.
func (s *Store) SetJournal(j *obs.Journal) {
	s.journal.Store(j)
	if j != nil && (s.skippedRecords > 0 || s.tornBytes > 0) {
		j.Emit("store", "quarantine", obs.SevWarn, "",
			"skippedRecords", strconv.FormatInt(s.skippedRecords, 10),
			"tornBytes", strconv.FormatInt(s.tornBytes, 10))
	}
}

// RegisterMetrics exposes the store's counters and gauges in reg. All
// readers pull from Stats (atomics plus two short mutexed reads) except
// the garbage-ratio gauge, which walks the index via Admin once per
// scrape — milliseconds at fleet-sized indexes, and only paid when the
// Prometheus exposition is actually requested.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("javaflow_store_records", "Live records in the store index.",
		func() float64 { return float64(s.Stats().Records) })
	reg.GaugeFunc("javaflow_store_segments", "Segment files in the store log.",
		func() float64 { return float64(s.Stats().Segments) })
	reg.GaugeFunc("javaflow_store_garbage_ratio", "Fraction of on-disk bytes superseded or deleted.",
		func() float64 { return s.Admin().GarbageRatio })
	reg.CounterFunc("javaflow_store_run_hits_total", "MethodRun reads answered by the store.",
		func() float64 { return float64(s.runHits.Load()) })
	reg.CounterFunc("javaflow_store_run_misses_total", "MethodRun reads the store could not answer.",
		func() float64 { return float64(s.runMisses.Load()) })
	reg.CounterFunc("javaflow_store_deploy_hits_total", "Deployment reads answered by the store.",
		func() float64 { return float64(s.deployHits.Load()) })
	reg.CounterFunc("javaflow_store_deploy_misses_total", "Deployment reads the store could not answer.",
		func() float64 { return float64(s.deployMisses.Load()) })
	reg.CounterFunc("javaflow_store_puts_total", "Records appended to the log.",
		func() float64 { return float64(s.puts.Load()) })
	reg.CounterFunc("javaflow_store_put_errors_total", "Appends that failed.",
		func() float64 { return float64(s.putErrors.Load()) })
	reg.CounterFunc("javaflow_store_compactions_total", "Completed compactions.",
		func() float64 { return float64(s.compactions.Load()) })
	reg.CounterFunc("javaflow_store_bytes_appended_total", "Bytes appended to the log.",
		func() float64 { return float64(s.bytesAppended.Load()) })
	reg.CounterFunc("javaflow_store_ingested_records_total", "Records merged in from peer segments.",
		func() float64 { return float64(s.ingested.Load()) })
	reg.CounterFunc("javaflow_store_ingest_skipped_total", "Peer-offered records already live here.",
		func() float64 { return float64(s.ingestSkipped.Load()) })
}
