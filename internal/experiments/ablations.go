package experiments

import (
	"context"
	"fmt"

	"javaflow/internal/classfile"
	"javaflow/internal/fabric"
	"javaflow/internal/report"
	"javaflow/internal/sim"
	"javaflow/internal/workload"
)

// namedMethods is the hot-method corpus the sweeps run (small enough to
// sweep many configurations quickly).
func namedMethods() []*classfile.Method { return workload.NamedMethods() }

// Ablations explore the design-space questions the dissertation's
// Enhancement section raises (Section 6.4): how sensitive is the result to
// the serial/mesh clock ratio, the mesh width, and the memory service
// time? Each sweep runs the named hot-method corpus and reports mean IPC.

// AblationSerialRatio sweeps serial clocks per mesh clock on the compact
// fabric — the fine-grained version of Compact10/4/2.
func (c *Context) AblationSerialRatio() (*report.Table, error) {
	t := report.New("Ablation A1: serial clocks per mesh clock (compact fabric, named methods)",
		"Serial/Mesh", "IPC-Mean", "FM vs drain")
	f := fabric.NewFabric(10, fabric.PatternCompact)

	ratios := []int{sim.DrainSerial, 16, 10, 8, 4, 2, 1}
	var base float64
	for _, r := range ratios {
		cfg := sim.Config{Name: fmt.Sprintf("serial=%d", r), Fabric: f, SerialPerMesh: r}
		cr, err := c.Scheduler().RunAll(context.Background(), cfg, namedMethods())
		if err != nil {
			return nil, err
		}
		mean := cr.IPCSummary().Mean
		if r == sim.DrainSerial {
			base = mean
		}
		label := fmt.Sprint(r)
		if r == sim.DrainSerial {
			label = "drain (baseline rule)"
		}
		t.Add(label, mean, report.Pct(mean/base))
	}
	return t, nil
}

// AblationMeshWidth sweeps the fabric width: narrower fabrics shorten mesh
// columns but lengthen them vertically.
func (c *Context) AblationMeshWidth() (*report.Table, error) {
	t := report.New("Ablation A2: mesh width (2 serial clocks/mesh, named methods)",
		"Width", "IPC-Mean", "FM vs width 10")
	var base float64
	widths := []int{10, 5, 8, 16, 32}
	results := make(map[int]float64)
	for _, w := range widths {
		cfg := sim.Config{
			Name:          fmt.Sprintf("width=%d", w),
			Fabric:        fabric.NewFabric(w, fabric.PatternCompact),
			SerialPerMesh: 2,
		}
		cr, err := c.Scheduler().RunAll(context.Background(), cfg, namedMethods())
		if err != nil {
			return nil, err
		}
		results[w] = cr.IPCSummary().Mean
	}
	base = results[10]
	for _, w := range []int{5, 8, 10, 16, 32} {
		t.Add(w, results[w], report.Pct(results[w]/base))
	}
	return t, nil
}

// AblationHeteroPattern compares heterogeneous row orderings: the paper's
// ratio depends on where the scarce node kinds sit in the row.
func (c *Context) AblationHeteroPattern() (*report.Table, error) {
	t := report.New("Ablation A3: heterogeneous row orderings (2 serial clocks/mesh)",
		"Pattern", "IPC-Mean", "Nodes/Inst")
	patterns := []struct {
		name string
		p    []fabric.NodeKind
	}{
		{"spread (default)", fabric.PatternHetero},
		{"grouped", []fabric.NodeKind{
			fabric.KindArith, fabric.KindArith, fabric.KindArith,
			fabric.KindArith, fabric.KindArith, fabric.KindArith,
			fabric.KindFloat, fabric.KindStorage, fabric.KindStorage,
			fabric.KindControl,
		}},
		{"storage-first", []fabric.NodeKind{
			fabric.KindStorage, fabric.KindArith, fabric.KindArith,
			fabric.KindControl, fabric.KindArith, fabric.KindStorage,
			fabric.KindArith, fabric.KindFloat, fabric.KindArith,
			fabric.KindArith,
		}},
	}
	for _, pat := range patterns {
		cfg := sim.Config{
			Name:          pat.name,
			Fabric:        fabric.NewFabric(10, pat.p),
			SerialPerMesh: 2,
		}
		cr, err := c.Scheduler().RunAll(context.Background(), cfg, namedMethods())
		if err != nil {
			return nil, err
		}
		t.Add(pat.name, cr.IPCSummary().Mean, cr.RatioSummary().Mean)
	}
	return t, nil
}

// Ablations runs every sweep.
func (c *Context) Ablations() ([]*report.Table, error) {
	funcs := []func() (*report.Table, error){
		c.AblationSerialRatio, c.AblationMeshWidth, c.AblationHeteroPattern,
		c.AblationFolding,
	}
	out := make([]*report.Table, 0, len(funcs))
	for i, f := range funcs {
		tbl, err := f()
		if err != nil {
			return nil, fmt.Errorf("ablation %d: %w", i+1, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// AblationFolding measures the Section 6.4 folding enhancement upper bound:
// pure data-transfer instructions (register reads, stack moves — the
// "Locals+Stack" 26-54% of Table 2) eliminated after linkage. Effective IPC
// counts only the remaining real work per cycle.
func (c *Context) AblationFolding() (*report.Table, error) {
	t := report.New("Ablation A4: folding enhancement (Hetero2, named methods)",
		"Mode", "Total mesh cycles", "Cycles ratio")
	var hetero sim.Config
	for _, cfg := range sim.Configurations() {
		if cfg.Name == "Hetero2" {
			hetero = cfg
		}
	}
	loader := &fabric.Loader{Fabric: hetero.Fabric}
	var plainCycles, foldCycles int
	for _, m := range namedMethods() {
		p, err := loader.Load(m)
		if err != nil {
			continue
		}
		r, err := fabric.Resolve(p)
		if err != nil {
			return nil, err
		}
		plain := sim.NewEngine(hetero, r, sim.BP1)
		pr, err := plain.Run()
		if err != nil {
			return nil, err
		}
		folded := sim.NewEngine(hetero, r, sim.BP1)
		folded.EnableFolding()
		fr, err := folded.Run()
		if err != nil {
			return nil, err
		}
		plainCycles += pr.MeshCycles
		foldCycles += fr.MeshCycles
	}
	t.Add("unfolded", plainCycles, "100%")
	t.Add("folded", foldCycles,
		report.Pct(float64(foldCycles)/float64(plainCycles)))
	return t, nil
}
