package experiments

import (
	"strings"
	"testing"
)

// fastContext shrinks the population for unit testing.
func fastContext() *Context {
	c := NewContext()
	c.Scale = 1
	c.GenCount = 150
	c.MaxMeshCycles = 200_000
	return c
}

func TestChapter5Tables(t *testing.T) {
	c := fastContext()
	for n := 1; n <= 8; n++ {
		tbl, err := c.TableByNumber(n)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %d is empty", n)
		}
	}
}

func TestTable01Shape(t *testing.T) {
	c := fastContext()
	tbl, err := c.Table01()
	if err != nil {
		t.Fatal(err)
	}
	// Every suite appears; the 90% method counts must be small (the
	// paper's headline: a handful of methods dominate).
	if len(tbl.Rows) < 10 {
		t.Fatalf("only %d benchmark rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] == "0" {
			t.Errorf("%s: zero 90%% methods", row[0])
		}
	}
}

func TestTable05QuickShare(t *testing.T) {
	c := fastContext()
	tbl, err := c.Table05()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		// Paper: 97% and 99% — warm storage traffic is overwhelmingly
		// _Quick. At scale 1 the warm-up fraction is larger, so accept
		// anything clearly majority-Quick.
		pct := row[4]
		if !strings.HasSuffix(pct, "%") {
			t.Fatalf("bad percentage cell %q", pct)
		}
		var v int
		if _, err := sscan(pct[:len(pct)-1], &v); err != nil {
			t.Fatal(err)
		}
		if v < 80 {
			t.Errorf("%s: quick share %d%%, want >= 80%%", row[0], v)
		}
	}
}

func sscan(s string, v *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	*v = n
	return n, nil
}

func TestDataflowTables(t *testing.T) {
	c := fastContext()
	for n := 9; n <= 16; n++ {
		tbl, err := c.TableByNumber(n)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %d empty", n)
		}
	}
}

func TestTable09NoBackMerges(t *testing.T) {
	c := fastContext()
	tbl, err := c.Table09()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[0] == "Back Merge" {
			if row[4] != "0.000" {
				t.Errorf("back merge max = %s, want 0", row[4])
			}
			return
		}
	}
	t.Fatal("no Back Merge row")
}

func TestPerformanceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	c := fastContext()
	for _, n := range []int{17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28} {
		tbl, err := c.TableByNumber(n)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %d empty", n)
		}
	}
}

func TestTable22FigureOfMeritShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	c := fastContext()
	tbl, err := c.Table22()
	if err != nil {
		t.Fatal(err)
	}
	// The headline shape: monotonically declining FoM down the Compact
	// ladder, with Sparse2/Hetero2 at the bottom around the paper's ~0.5.
	foms := make(map[string]float64)
	for _, row := range tbl.Rows {
		var v float64
		if _, err := fscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		foms[row[0]] = v
	}
	if foms["Baseline"] != 1.0 {
		t.Errorf("baseline FoM = %v, want 1.0", foms["Baseline"])
	}
	order := []string{"Baseline", "Compact10", "Compact4", "Compact2"}
	for i := 1; i < len(order); i++ {
		if foms[order[i]] > foms[order[i-1]]+0.02 {
			t.Errorf("FoM(%s)=%.3f exceeds FoM(%s)=%.3f",
				order[i], foms[order[i]], order[i-1], foms[order[i-1]])
		}
	}
	for _, name := range []string{"Sparse2", "Hetero2"} {
		if foms[name] < 0.25 || foms[name] > 0.75 {
			t.Errorf("FoM(%s) = %.3f, want in the paper's 0.4-0.6 region", name, foms[name])
		}
		if foms[name] > foms["Compact2"]+0.02 {
			t.Errorf("FoM(%s)=%.3f should not exceed Compact2=%.3f",
				name, foms[name], foms["Compact2"])
		}
	}
}

func fscan(s string, v *float64) (int, error) {
	var whole, frac float64
	var seenDot bool
	var div float64 = 1
	for _, r := range s {
		if r == '.' {
			seenDot = true
			continue
		}
		if r < '0' || r > '9' {
			break
		}
		if seenDot {
			div *= 10
			frac = frac*10 + float64(r-'0')
		} else {
			whole = whole*10 + float64(r-'0')
		}
	}
	*v = whole + frac/div
	return 1, nil
}

func TestTableByNumberRejectsUnknown(t *testing.T) {
	c := fastContext()
	if _, err := c.TableByNumber(0); err == nil {
		t.Error("table 0 should fail")
	}
	if _, err := c.TableByNumber(29); err == nil {
		t.Error("table 29 should fail")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	c := fastContext()
	tables, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d ablation tables, want 4", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) < 2 {
			t.Errorf("%s: only %d rows", tbl.Title, len(tbl.Rows))
		}
	}
}
