package experiments

import (
	"fmt"

	"javaflow/internal/dataflow"
	"javaflow/internal/fabric"
	"javaflow/internal/report"
	"javaflow/internal/sim"
	"javaflow/internal/stats"
	"javaflow/internal/workload"
)

const summaryHeader = "Mean/StdDev/Median/Max/Min"

func (c *Context) filter1Rows() ([]dataflow.MethodRow, error) {
	rows, err := c.Rows()
	if err != nil {
		return nil, err
	}
	return dataflow.Select(rows, dataflow.Filter1, nil), nil
}

// Table09 reproduces "General Data Flow Analysis – Filter 1".
func (c *Context) Table09() (*report.Table, error) {
	rows, err := c.filter1Rows()
	if err != nil {
		return nil, err
	}
	sum := dataflow.Summarize(rows)
	t := report.New("Table 9: General Data Flow Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("Static Inst", sum.StaticInst)
	t.AddSummary("Local Regs", sum.Registers)
	t.AddSummary("Stack", sum.Stack)
	t.AddSummary("Back Merge", sum.BackMerge)
	return t, nil
}

// Table10 reproduces "DataFlow FanOut and Arc Analysis - Filter 1".
func (c *Context) Table10() (*report.Table, error) {
	rows, err := c.filter1Rows()
	if err != nil {
		return nil, err
	}
	sum := dataflow.Summarize(rows)
	t := report.New("Table 10: DataFlow FanOut and Arc Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("FanOut Avg", sum.FanOutAvg)
	t.AddSummary("FanOut Max", sum.FanOutMax)
	t.AddSummary("Arc Avg", sum.ArcAvg)
	t.AddSummary("Arc Max", sum.ArcMax)
	return t, nil
}

// Table11 reproduces "DataFlow Resolution Queue Analysis – Filter 1" by
// running the fabric resolver over the Filter-1 corpus.
func (c *Context) Table11() (*report.Table, error) {
	loader := &fabric.Loader{Fabric: fabric.NewFabric(10, fabric.PatternCompact)}
	var maxQ []float64
	for _, m := range c.Corpus() {
		if !dataflow.InFilter1(len(m.Code)) {
			continue
		}
		p, err := loader.Load(m)
		if err != nil {
			continue // GPP-executed methods
		}
		r, err := fabric.Resolve(p)
		if err != nil {
			return nil, err
		}
		maxQ = append(maxQ, float64(r.MaxQUp))
	}
	sum := stats.Summarize(maxQ)
	t := report.New("Table 11: DataFlow Resolution Queue Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("Max Q Up", sum)
	return t, nil
}

// Table12 reproduces "DataFlow Merge Analysis - Filter 1".
func (c *Context) Table12() (*report.Table, error) {
	rows, err := c.filter1Rows()
	if err != nil {
		return nil, err
	}
	sum := dataflow.Summarize(rows)
	t := report.New("Table 12: DataFlow Merge Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("Merges", sum.Merges)
	return t, nil
}

// Table13 reproduces "DataFlow Jump Forward Analysis - Filter 1".
func (c *Context) Table13() (*report.Table, error) {
	rows, err := c.filter1Rows()
	if err != nil {
		return nil, err
	}
	sum := dataflow.Summarize(rows)
	t := report.New("Table 13: DataFlow Jump Forward Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("Forward Jumps", sum.FwdJumps)
	t.AddSummary("Avg. Length", sum.FwdLenAvg)
	t.AddSummary("Max Length", sum.FwdLenMax)
	return t, nil
}

// Table14 reproduces "DataFlow Jump Backward Analysis - Filter 1".
func (c *Context) Table14() (*report.Table, error) {
	rows, err := c.filter1Rows()
	if err != nil {
		return nil, err
	}
	sum := dataflow.Summarize(rows)
	t := report.New("Table 14: DataFlow Jump Backward Analysis - Filter 1 (reproduction)",
		"Quantity", "Mean", "StdDev", "Median", "Max", "Min")
	t.AddSummary("Back Jumps", sum.BackJumps)
	t.AddSummary("Avg. Length", sum.BackLenAvg)
	t.AddSummary("Max Length", sum.BackLenMax)
	return t, nil
}

// Table15 reproduces "Benchmark Configurations".
func (c *Context) Table15() (*report.Table, error) {
	t := report.New("Table 15: Benchmark Configurations", "ID", "Description")
	for i, cfg := range sim.Configurations() {
		t.Add(fmt.Sprintf("%d - %s", i, cfg.Name), cfg.Description)
	}
	return t, nil
}

// Table16 reproduces "Filters on Methods".
func (c *Context) Table16() (*report.Table, error) {
	rows, err := c.Rows()
	if err != nil {
		return nil, err
	}
	f1 := dataflow.Select(rows, dataflow.Filter1, nil)
	f2 := dataflow.Select(rows, dataflow.Filter2, c.HotSet())
	t := report.New("Table 16: Filters on Methods (reproduction)",
		"Filter", "Selection", "# Executions", "# Methods")
	t.Add("Filter All", "All Methods", 2*len(rows), len(rows))
	t.Add("Filter 1", "10 < Inst < 1000", 2*len(f1), len(f1))
	t.Add("Filter 2", "Top 90% (Dyn), 10 < Inst < 1000", 2*len(f2), len(f2))
	return t, nil
}

// Table17 reproduces "Execution Cycles per Instruction" (model constants).
func (c *Context) Table17() (*report.Table, error) {
	t := report.New("Table 17: Execution Cycles per Instruction (model constants)",
		"Instruction Groups", "Mesh Cycles - Execution")
	t.Add("Move", sim.CyclesMove)
	t.Add("Floating point arithmetic", sim.CyclesFloat)
	t.Add("Integer-Float conversion", sim.CyclesConvert)
	t.Add("Special, Logical, Register, Memory", sim.CyclesDefault)
	t.Add("(service) Memory subsystem round trip", sim.MemoryServiceCycles)
	t.Add("(service) GPP call/service round trip", sim.GPPServiceCycles)
	return t, nil
}

// Table18 reproduces "Execution Coverage – All Methods".
func (c *Context) Table18() (*report.Table, error) {
	base, err := c.Baseline()
	if err != nil {
		return nil, err
	}
	bp1, bp2 := base.CoverageSummary()
	t := report.New("Table 18: Execution Coverage - All Methods (reproduction)",
		"Case", "BP-1", "BP-2")
	t.Add("Inst Exe / Inst Static", report.Pct(bp1), report.Pct(bp2))
	return t, nil
}

// Table19 reproduces "Ratio of Instructions to Max Node" per configuration.
func (c *Context) Table19() (*report.Table, error) {
	t := report.New("Table 19: Ratio of Instructions to Max Node (reproduction)",
		"Case", "MaxNode/Inst")
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(cfg.Name, cr.RatioSummary().Mean)
	}
	return t, nil
}

// Table20 reproduces "Heterogeneous Addressing Detail – Filter 1".
func (c *Context) Table20() (*report.Table, error) {
	var cfg sim.Config
	for _, cc := range sim.Configurations() {
		if cc.Name == "Hetero2" {
			cfg = cc
		}
	}
	cr, err := c.SimResults(cfg)
	if err != nil {
		return nil, err
	}
	f1 := cr.FilterRuns(func(mr sim.MethodRun) bool {
		return dataflow.InFilter1(mr.BP1.Static)
	})
	sum := f1.RatioSummary()
	t := report.New("Table 20: Heterogeneous Addressing Detail - Filter 1 (reproduction)",
		"Case", "Inst/MaxNode")
	t.Add("Average", sum.Mean)
	t.Add("Median", sum.Median)
	t.Add("Std Dev", sum.StdDev)
	t.Add("Max", sum.Max)
	t.Add("Min", sum.Min)
	return t, nil
}

// Table21 reproduces "Raw IPC Data - All Methods".
func (c *Context) Table21() (*report.Table, error) {
	t := report.New("Table 21: Raw IPC Data - All Methods (reproduction)",
		"Case", "IPC-Mean", "IPC-StdDev", "IPC-Median", "IPC-Max", "IPC-Min")
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		s := cr.IPCSummary()
		t.Add(cfg.Name, s.Mean, s.StdDev, s.Median, s.Max, s.Min)
	}
	return t, nil
}

// Table22 reproduces "Figure of Merit – Filter All".
func (c *Context) Table22() (*report.Table, error) {
	base, err := c.Baseline()
	if err != nil {
		return nil, err
	}
	t := report.New("Table 22: Figure of Merit - All Methods (reproduction)",
		"Case", "IPC-Mean", "FM", "FM StdDev")
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		fom := cr.FoMAgainst(base)
		t.Add(cfg.Name, cr.IPCSummary().Mean, fom.Mean, fom.StdDev)
	}
	return t, nil
}

// Table23 reproduces "Correlations with FM Hetero2 – Filter All".
func (c *Context) Table23() (*report.Table, error) {
	base, err := c.Baseline()
	if err != nil {
		return nil, err
	}
	var hetero sim.Config
	for _, cfg := range sim.Configurations() {
		if cfg.Name == "Hetero2" {
			hetero = cfg
		}
	}
	cr, err := c.SimResults(hetero)
	if err != nil {
		return nil, err
	}
	fom := cr.PerMethodFoM(base)

	rows, err := c.Rows()
	if err != nil {
		return nil, err
	}
	rowBySig := make(map[string]dataflow.MethodRow, len(rows))
	for _, r := range rows {
		rowBySig[r.Signature] = r
	}
	var fms, totalI, execI, maxNode, backJ []float64
	for _, run := range cr.Runs {
		f, ok := fom[run.Signature]
		if !ok {
			continue
		}
		row, ok := rowBySig[run.Signature]
		if !ok {
			continue
		}
		fms = append(fms, f)
		totalI = append(totalI, float64(row.StaticInst))
		execI = append(execI, float64(run.BP1.Fired+run.BP2.Fired)/2)
		maxNode = append(maxNode, float64(run.BP1.MaxNode))
		backJ = append(backJ, float64(row.BackJumps))
	}
	t := report.New("Table 23: Correlations with FM Hetero2 - Filter All (reproduction)",
		"Factor", "Correlation")
	t.Add("Total I", stats.Correlation(totalI, fms))
	t.Add("Executed I", stats.Correlation(execI, fms))
	t.Add("Max Node", stats.Correlation(maxNode, fms))
	t.Add("Back Jumps", stats.Correlation(backJ, fms))
	return t, nil
}

// filteredFoM renders the Table 24/25 layout for a run filter.
func (c *Context) filteredFoM(title string, keep func(sim.MethodRun) bool) (*report.Table, error) {
	base, err := c.Baseline()
	if err != nil {
		return nil, err
	}
	baseF := base.FilterRuns(keep)
	t := report.New(title, "Case", "IPC-Mean", "IPC-Median", "FM", "FM StdDev")
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		crF := cr.FilterRuns(keep)
		s := crF.IPCSummary()
		fom := crF.FoMAgainst(baseF)
		t.Add(cfg.Name, s.Mean, s.Median, fom.Mean, fom.StdDev)
	}
	return t, nil
}

// Table24 reproduces "All Data - Filter 1".
func (c *Context) Table24() (*report.Table, error) {
	return c.filteredFoM("Table 24: All Data - Filter 1 (reproduction)",
		func(mr sim.MethodRun) bool { return dataflow.InFilter1(mr.BP1.Static) })
}

// Table25 reproduces "All Data - Filter 2".
func (c *Context) Table25() (*report.Table, error) {
	hot := c.HotSet()
	return c.filteredFoM("Table 25: All Data - Filter 2 (reproduction)",
		func(mr sim.MethodRun) bool {
			return dataflow.InFilter1(mr.BP1.Static) && hot[mr.Signature]
		})
}

// Table26 reproduces "Parallelism - All Methods".
func (c *Context) Table26() (*report.Table, error) {
	t := report.New("Table 26: Parallelism - All Methods (reproduction)",
		"Case", "% Mesh Cycles with >= 2 Instructions Executing")
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		t.Add(cfg.Name, report.Pct(cr.ParallelismMean()))
	}
	return t, nil
}

// topFourFoM renders Tables 27/28: per named hot method, the FoM on every
// configuration.
func (c *Context) topFourFoM(era, title string) (*report.Table, error) {
	base, err := c.Baseline()
	if err != nil {
		return nil, err
	}
	perCfg := make(map[string]map[string]float64)
	ratios := make(map[string]float64)
	var cfgNames []string
	for _, cfg := range sim.Configurations() {
		cr, err := c.SimResults(cfg)
		if err != nil {
			return nil, err
		}
		perCfg[cfg.Name] = cr.PerMethodFoM(base)
		cfgNames = append(cfgNames, cfg.Name)
		if cfg.Name == "Hetero2" {
			for _, run := range cr.Runs {
				if run.BP1.Static > 0 {
					ratios[run.Signature] = float64(run.BP1.MaxNode)
				}
			}
		}
	}

	header := append([]string{"Method", "Total I", "Hetero N"}, cfgNames...)
	t := report.New(title, header...)
	var fomSums = make([]float64, len(cfgNames))
	var fomCount int
	seen := make(map[string]bool)
	for _, s := range c.Suites() {
		if s.Era != era {
			continue
		}
		for _, m := range s.AllMethods() {
			sig := m.Signature()
			if seen[sig] {
				continue // classes shared between suites (e.g. Random)
			}
			seen[sig] = true
			if _, ok := perCfg["Hetero2"][sig]; !ok {
				continue // excluded from the fabric (switch methods etc.)
			}
			cells := []interface{}{sig, len(m.Code), int(ratios[sig])}
			for i, name := range cfgNames {
				f := perCfg[name][sig]
				cells = append(cells, report.Pct(f))
				fomSums[i] += f
			}
			fomCount++
			t.Add(cells...)
		}
	}
	if fomCount > 0 {
		cells := []interface{}{"Mean", "", ""}
		for i := range cfgNames {
			cells = append(cells, report.Pct(fomSums[i]/float64(fomCount)))
		}
		t.Add(cells...)
	}
	return t, nil
}

// Table27 reproduces "Figure of Merit on Top 4 SpecJvm2008 Benchmarks".
func (c *Context) Table27() (*report.Table, error) {
	return c.topFourFoM("SpecJvm2008",
		"Table 27: Figure of Merit on Top SpecJvm2008-analog Methods (reproduction)")
}

// Table28 reproduces "Figure of Merit on Top 4 SpecJvm98 Benchmarks".
func (c *Context) Table28() (*report.Table, error) {
	return c.topFourFoM("SpecJvm98",
		"Table 28: Figure of Merit on Top SpecJvm98-analog Methods (reproduction)")
}

// Tables runs every table in order.
func (c *Context) Tables() ([]*report.Table, error) {
	funcs := []func() (*report.Table, error){
		c.Table01, c.Table02, c.Table03, c.Table04, c.Table05, c.Table06,
		c.Table07, c.Table08, c.Table09, c.Table10, c.Table11, c.Table12,
		c.Table13, c.Table14, c.Table15, c.Table16, c.Table17, c.Table18,
		c.Table19, c.Table20, c.Table21, c.Table22, c.Table23, c.Table24,
		c.Table25, c.Table26, c.Table27, c.Table28,
	}
	out := make([]*report.Table, 0, len(funcs))
	for i, f := range funcs {
		t, err := f()
		if err != nil {
			return nil, fmt.Errorf("table %d: %w", i+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// TableByNumber dispatches 1..28.
func (c *Context) TableByNumber(n int) (*report.Table, error) {
	funcs := map[int]func() (*report.Table, error){
		1: c.Table01, 2: c.Table02, 3: c.Table03, 4: c.Table04,
		5: c.Table05, 6: c.Table06, 7: c.Table07, 8: c.Table08,
		9: c.Table09, 10: c.Table10, 11: c.Table11, 12: c.Table12,
		13: c.Table13, 14: c.Table14, 15: c.Table15, 16: c.Table16,
		17: c.Table17, 18: c.Table18, 19: c.Table19, 20: c.Table20,
		21: c.Table21, 22: c.Table22, 23: c.Table23, 24: c.Table24,
		25: c.Table25, 26: c.Table26, 27: c.Table27, 28: c.Table28,
	}
	f, ok := funcs[n]
	if !ok {
		return nil, fmt.Errorf("experiments: no table %d (valid: 1-28)", n)
	}
	return f()
}

var _ = workload.NamedMethods // keep import symmetry with ch5 tables
