package experiments

import (
	"fmt"
	"sort"

	"javaflow/internal/bytecode"
	"javaflow/internal/dataflow"
	"javaflow/internal/report"
	"javaflow/internal/stats"
	"javaflow/internal/workload"
)

// Table01 reproduces "Method Utilization in SPEC Benchmarks": total dynamic
// instructions, methods used, and the method count covering 90% of
// execution, per benchmark.
func (c *Context) Table01() (*report.Table, error) {
	t := report.New("Table 1: Method Utilization in SPEC Benchmarks (reproduction)",
		"Benchmark", "Era", "Total Ops", "Methods", "90% Methods")
	for _, s := range c.Suites() {
		p, err := c.Profile(s)
		if err != nil {
			return nil, err
		}
		t.Add(s.Name, s.Era, report.Sci(float64(p.TotalOps())),
			p.MethodsExecuted(), len(p.MethodsFor(0.90)))
	}
	return t, nil
}

// mixColumns groups the dynamic mix into the Table 2 column families.
func mixColumns(mix map[bytecode.Group]uint64) (localsStack, fixed, float, control, calls, constants, storage, special uint64) {
	for g, n := range mix {
		switch g {
		case bytecode.GroupLocalRead, bytecode.GroupLocalWrite, bytecode.GroupLocalInc, bytecode.GroupMove:
			localsStack += n
		case bytecode.GroupIntArith:
			fixed += n
		case bytecode.GroupFloatArith, bytecode.GroupFloatConv:
			float += n
		case bytecode.GroupControl:
			control += n
		case bytecode.GroupCall, bytecode.GroupReturn:
			calls += n
		case bytecode.GroupMemConst:
			constants += n
		case bytecode.GroupMemRead, bytecode.GroupMemWrite:
			storage += n
		default:
			special += n
		}
	}
	return
}

// Table02 reproduces "Dynamic Instruction Mix of 90% Methods".
func (c *Context) Table02() (*report.Table, error) {
	t := report.New("Table 2: Dynamic Instruction Mix of 90% Methods (reproduction)",
		"Benchmark", "Locals+Stack", "Fixed Arith", "Float Arith",
		"Control", "Calls+Ret", "Constants-Stg", "Storage", "Obj+Special")
	for _, s := range c.Suites() {
		p, err := c.Profile(s)
		if err != nil {
			return nil, err
		}
		var sigs []string
		for _, ms := range p.MethodsFor(0.90) {
			sigs = append(sigs, ms.Signature)
		}
		mix := p.MixOf(sigs)
		total := float64(mix.Total())
		if total == 0 {
			continue
		}
		ls, fx, fl, ct, ca, cs, st, sp := mixColumns(mix)
		pc := func(v uint64) string { return report.Pct(float64(v) / total) }
		t.Add(s.Name, pc(ls), pc(fx), pc(fl), pc(ct), pc(ca), pc(cs), pc(st), pc(sp))
	}
	return t, nil
}

// topFour renders the Table 3/4 layout for one era.
func (c *Context) topFour(era, title string) (*report.Table, error) {
	t := report.New(title, "Benchmark", "Class-Method", "Ops", "% of BM")
	for _, s := range c.Suites() {
		if s.Era != era {
			continue
		}
		p, err := c.Profile(s)
		if err != nil {
			return nil, err
		}
		top := p.TopMethods()
		if len(top) > 4 {
			top = top[:4]
		}
		var covered float64
		for _, ms := range top {
			covered += ms.Share
		}
		t.Add(s.Name, fmt.Sprintf("(top 4 = %s)", report.Pct(covered)), "", "")
		for _, ms := range top {
			t.Add("", ms.Signature, report.Sci(float64(ms.Ops)), report.Pct(ms.Share))
		}
	}
	return t, nil
}

// Table03 reproduces "SpecJvm2008 - Top 4 Methods".
func (c *Context) Table03() (*report.Table, error) {
	return c.topFour("SpecJvm2008", "Table 3: SpecJvm2008-analog - Top 4 Methods (reproduction)")
}

// Table04 reproduces "SpecJvm98 - Top 4 Methods".
func (c *Context) Table04() (*report.Table, error) {
	return c.topFour("SpecJvm98", "Table 4: SpecJvm98-analog - Top 4 Methods (reproduction)")
}

// Table05 reproduces "Impact of Quick Instructions".
func (c *Context) Table05() (*report.Table, error) {
	t := report.New("Table 5: Impact of Quick Instructions (reproduction)",
		"Era", "Total Ops", "Storage Base", "Storage Quick", "Percentage")
	type acc struct {
		ops, base, quick uint64
	}
	byEra := map[string]*acc{}
	for _, s := range c.Suites() {
		p, err := c.Profile(s)
		if err != nil {
			return nil, err
		}
		a := byEra[s.Era]
		if a == nil {
			a = &acc{}
			byEra[s.Era] = a
		}
		qs := p.QuickStats()
		a.ops += p.TotalOps()
		a.base += qs.Base
		a.quick += qs.Quick
	}
	eras := make([]string, 0, len(byEra))
	for era := range byEra {
		eras = append(eras, era)
	}
	sort.Strings(eras)
	for _, era := range eras {
		a := byEra[era]
		pct := 0.0
		if a.base+a.quick > 0 {
			pct = float64(a.quick) / float64(a.base+a.quick)
		}
		t.Add(era, report.Sci(float64(a.ops)), report.Sci(float64(a.base)),
			report.Sci(float64(a.quick)), report.Pct(pct))
	}
	return t, nil
}

// Table06 reproduces "Static Mix Analysis" over the named benchmark
// methods, by benchmark suite.
func (c *Context) Table06() (*report.Table, error) {
	t := report.New("Table 6: Static Mix Analysis (reproduction)",
		"Benchmark", "%Arith", "%Float", "%Control", "%Storage", "Total Insts")
	var all dataflow.StaticMix
	for _, s := range c.Suites() {
		mix := dataflow.MixOf(s.AllMethods())
		total := float64(mix.Total())
		if total == 0 {
			continue
		}
		all.Arith += mix.Arith
		all.Float += mix.Float
		all.Control += mix.Control
		all.Storage += mix.Storage
		all.Other += mix.Other
		t.Add(s.Name,
			report.Pct(float64(mix.Arith)/total),
			report.Pct(float64(mix.Float)/total),
			report.Pct(float64(mix.Control)/total),
			report.Pct(float64(mix.Storage)/total),
			mix.Total())
	}
	total := float64(all.Total())
	t.Add("Total",
		report.Pct(float64(all.Arith)/total),
		report.Pct(float64(all.Float)/total),
		report.Pct(float64(all.Control)/total),
		report.Pct(float64(all.Storage)/total),
		all.Total())
	return t, nil
}

// Table07 reproduces "Benchmark DataFlow and Control Flow Analysis": per
// suite, branch counts, resolution cycles, dataflow transfer counts, merges
// and (zero) back merges.
func (c *Context) Table07() (*report.Table, error) {
	t := report.New("Table 7: Benchmark DataFlow and Control Flow Analysis (reproduction)",
		"Benchmark", "Forward", "Back", "Total Insts", "Total Cycles",
		"Total DFlows", "DFlows Merge", "DFlows Back")
	var sumF, sumB, sumI, sumC, sumD, sumM, sumBk int
	for _, s := range c.Suites() {
		rows, err := dataflow.AnalyzeAll(s.AllMethods())
		if err != nil {
			return nil, err
		}
		var f, b, insts, cycles, dflows, merges, back int
		for _, r := range rows {
			f += r.ForwardJumps
			b += r.BackJumps
			insts += r.StaticInst
			cycles += 2*r.StaticInst + r.ForwardJumps + r.BackJumps
			dflows += r.TotalArcs
			merges += r.Merges
			back += r.BackMerges
		}
		sumF += f
		sumB += b
		sumI += insts
		sumC += cycles
		sumD += dflows
		sumM += merges
		sumBk += back
		t.Add(s.Name, f, b, insts, cycles, dflows, merges, back)
	}
	t.Add("Sum", sumF, sumB, sumI, sumC, sumD, sumM, sumBk)
	return t, nil
}

// Table08 reproduces the "Analysis Summary".
func (c *Context) Table08() (*report.Table, error) {
	var totalOps, methods uint64
	hot := 0
	var hotInsts, hotRegs []float64
	var fwd, back []float64

	for _, s := range c.Suites() {
		p, err := c.Profile(s)
		if err != nil {
			return nil, err
		}
		totalOps += p.TotalOps()
		methods += uint64(p.MethodsExecuted())
		hot += len(p.MethodsFor(0.90))
	}
	rows, err := dataflow.AnalyzeAll(workload.NamedMethods())
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		hotInsts = append(hotInsts, float64(r.StaticInst))
		hotRegs = append(hotRegs, float64(r.Registers))
		fwd = append(fwd, float64(r.ForwardJumps))
		back = append(back, float64(r.BackJumps))
	}
	mix := dataflow.MixOf(workload.NamedMethods())
	total := float64(mix.Total())

	t := report.New("Table 8: Analysis Summary (reproduction)", "Quantity", "Value")
	t.Add("Dynamic Methods Executed", methods)
	t.Add("Dynamic Instructions Executed", report.Sci(float64(totalOps)))
	t.Add("Methods taking 90% total time", hot)
	t.Add("Methods analyzed (named analogs)", len(rows))
	t.Add("Avg. Inst/Method", stats.Mean(hotInsts))
	t.Add("Avg. Registers/Method", stats.Mean(hotRegs))
	t.Add("Static mix arith", report.Pct(float64(mix.Arith)/total))
	t.Add("Static mix float", report.Pct(float64(mix.Float)/total))
	t.Add("Static mix control", report.Pct(float64(mix.Control)/total))
	t.Add("Static mix storage", report.Pct(float64(mix.Storage)/total))
	t.Add("Average # Forward Branches", stats.Mean(fwd))
	t.Add("Average # Back Branches", stats.Mean(back))
	return t, nil
}
