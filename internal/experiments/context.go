// Package experiments regenerates every table of the dissertation's
// evaluation (Tables 1–28) from the reproduction's own substrates: the
// instrumented interpreter for the Chapter 5 dynamic analysis, the static
// dataflow analyzer for Tables 6–14, and the fabric simulator for the
// Chapter 7 performance studies. cmd/jfbench and the repository's
// bench_test.go both drive this package.
//
// The load-bearing invariant: every sweep routes through the same
// serve.Scheduler/collect path the daemon uses — never a private engine
// loop — so scenario-keyed, dispatched, replicated and legacy sweeps all
// produce byte-identical digests (CI diffs them).
package experiments

import (
	"context"
	"fmt"
	"runtime"

	"javaflow/internal/classfile"
	"javaflow/internal/dataflow"
	"javaflow/internal/dispatch"
	"javaflow/internal/jvm"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
	"javaflow/internal/workload"
)

// Context caches the expensive intermediate products so a full table sweep
// computes each once.
type Context struct {
	// Scale is the benchmark iteration multiplier for dynamic profiling.
	Scale int
	// Seed and GenCount parameterize the generated method population.
	Seed     int64
	GenCount int
	// MaxMeshCycles bounds each simulated execution.
	MaxMeshCycles int
	// Workers sizes the simulation worker pool the sweeps fan out over
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Peers lists remote jfserved base URLs to shard sweeps across
	// (consistent-hash dispatch); empty runs everything in process. The
	// peers must serve the same corpus (same -gen/-seed) and
	// configurations. Set before the first sweep.
	Peers []string

	sched     *serve.Scheduler
	runner    serve.BatchRunner
	store     *store.Store
	suites    []*workload.Suite
	profiles  map[string]*jvm.Profile // suite name -> dynamic profile
	corpus    []*classfile.Method
	rows      []dataflow.MethodRow
	simResult map[string]*sim.ConfigResults
	hotSet    map[string]bool
}

// NewContext returns a context with the defaults used throughout the
// reproduction: a ~1,600-method population (named SPEC analogs plus the
// generated corpus) matching the dissertation's 1,605.
func NewContext() *Context {
	return &Context{
		Scale:         2,
		Seed:          2014,
		GenCount:      1580,
		MaxMeshCycles: 400_000,
		Workers:       runtime.GOMAXPROCS(0),
	}
}

// Scheduler returns the context's simulation scheduler (built on first
// use): a bounded worker pool over a deployment cache shared by every
// sweep, so each (method, configuration) deployment happens once across
// all tables and ablations. If OpenStore was called first, the scheduler
// additionally reads prior MethodRuns through the persistent store.
func (c *Context) Scheduler() *serve.Scheduler {
	if c.sched == nil {
		c.sched = serve.NewScheduler(serve.SchedulerOptions{
			Workers:       c.Workers,
			MaxMeshCycles: c.MaxMeshCycles,
			Store:         c.store,
		})
	}
	return c.sched
}

// BatchRunner returns the executor sweeps fan out over (built on first
// use): the local scheduler, or — when Peers is set — a consistent-hash
// dispatcher fronting the remote instances with the scheduler as
// fallback.
func (c *Context) BatchRunner() (serve.BatchRunner, error) {
	if c.runner != nil {
		return c.runner, nil
	}
	if len(c.Peers) == 0 {
		c.runner = c.Scheduler()
		return c.runner, nil
	}
	d, err := dispatch.New(dispatch.Options{
		Peers:    c.Peers,
		Local:    c.Scheduler(),
		Tracer:   c.Scheduler().Metrics().Tracer(),
		Registry: c.Scheduler().Metrics().Registry(),
	})
	if err != nil {
		return nil, err
	}
	c.runner = d
	return c.runner, nil
}

// DispatchStats returns the dispatcher's routing stats, or nil when sweeps
// run purely in process.
func (c *Context) DispatchStats() *dispatch.Stats {
	if d, ok := c.runner.(*dispatch.Dispatcher); ok {
		s := d.Stats()
		return &s
	}
	return nil
}

// OpenStore attaches a persistent result store rooted at dir, so sweeps
// reuse MethodRuns computed by earlier jfbench or jfserved processes.
// Must be called before the first sweep (i.e. before Scheduler is built).
func (c *Context) OpenStore(dir string) error {
	if c.sched != nil {
		return fmt.Errorf("experiments: OpenStore called after the scheduler was built")
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	c.store = st
	return nil
}

// Store returns the attached persistent store (nil without OpenStore).
func (c *Context) Store() *store.Store { return c.store }

// Close flushes and closes the persistent store, if one is attached. The
// context remains usable for in-memory work.
func (c *Context) Close() error {
	if c.store == nil {
		return nil
	}
	err := c.store.Close()
	c.store = nil
	return err
}

// Suites returns the benchmark roster.
func (c *Context) Suites() []*workload.Suite {
	if c.suites == nil {
		c.suites = workload.AllSuites()
	}
	return c.suites
}

// Profile runs a suite's driver on a fresh machine and returns its dynamic
// profile (cached).
func (c *Context) Profile(s *workload.Suite) (*jvm.Profile, error) {
	if c.profiles == nil {
		c.profiles = make(map[string]*jvm.Profile)
	}
	if p, ok := c.profiles[s.Name]; ok {
		return p, nil
	}
	vm := jvm.NewMachine()
	if err := s.Register(vm); err != nil {
		return nil, err
	}
	if err := s.Run(vm, c.Scale); err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", s.Name, err)
	}
	c.profiles[s.Name] = vm.Profile
	return vm.Profile, nil
}

// Corpus returns the full simulation population: every named SPEC-analog
// method plus the generated methods.
func (c *Context) Corpus() []*classfile.Method {
	if c.corpus == nil {
		c.corpus = workload.Corpus(c.Seed, c.GenCount)
	}
	return c.corpus
}

// Rows returns the static dataflow analysis of the corpus.
func (c *Context) Rows() ([]dataflow.MethodRow, error) {
	if c.rows == nil {
		rows, err := dataflow.AnalyzeAll(c.Corpus())
		if err != nil {
			return nil, err
		}
		c.rows = rows
	}
	return c.rows, nil
}

// HotSet returns the signatures of the named hot methods (the top-90%
// dynamic set standing in for Filter 2's selection).
func (c *Context) HotSet() map[string]bool {
	if c.hotSet == nil {
		c.hotSet = make(map[string]bool)
		for _, s := range c.Suites() {
			for _, sig := range s.HotMethods {
				c.hotSet[sig] = true
			}
			// Every named method is part of the dynamically hot corpus.
			for _, m := range s.AllMethods() {
				c.hotSet[m.Signature()] = true
			}
		}
	}
	return c.hotSet
}

// SimResults runs the full population on one configuration (cached),
// fanning the sweep across the scheduler's worker pool with deployments
// served from the shared cache. Results are identical to the serial
// sim.Runner path.
func (c *Context) SimResults(cfg sim.Config) (*sim.ConfigResults, error) {
	if c.simResult == nil {
		c.simResult = make(map[string]*sim.ConfigResults)
	}
	if r, ok := c.simResult[cfg.Name]; ok {
		return r, nil
	}
	runner, err := c.BatchRunner()
	if err != nil {
		return nil, err
	}
	methods := c.Corpus()
	jobs := make([]serve.Job, len(methods))
	for i, m := range methods {
		jobs[i] = serve.Job{Config: cfg, Method: m}
	}
	results := runner.RunBatchCycles(context.Background(), jobs, c.MaxMeshCycles)
	cr, err := serve.CollectRuns(cfg, results)
	if err != nil {
		return nil, err
	}
	c.simResult[cfg.Name] = cr
	return cr, nil
}

// Baseline returns the Baseline configuration's results.
func (c *Context) Baseline() (*sim.ConfigResults, error) {
	for _, cfg := range sim.Configurations() {
		if cfg.Name == "Baseline" {
			return c.SimResults(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: no baseline configuration")
}
