package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"javaflow/internal/admit"
	"javaflow/internal/classfile"
	"javaflow/internal/dispatch"
	"javaflow/internal/fabric"
	"javaflow/internal/obs"
	"javaflow/internal/replicate"
	"javaflow/internal/scenario"
	"javaflow/internal/scenario/chaos"
	"javaflow/internal/scenario/chaosfs"
	"javaflow/internal/serve"
	"javaflow/internal/sim"
	"javaflow/internal/store"
)

// RunScenario executes a resolved scenario bundle end to end: the sweep tier
// runs the resolved methods × configurations through the context's
// BatchRunner — the exact code path SimResults uses, so catalog entries stay
// byte-identical to the legacy hard-coded sweeps — then the oracle tier (if
// any) and each scheduled fault, interpreted by the chaos harness against
// real dispatch/replicate/store instances.
func (c *Context) RunScenario(res *scenario.Resolved) (*scenario.Report, error) {
	b := res.Bundle
	rep := &scenario.Report{Scenario: b.Name, Tier: b.Tier}

	if len(res.Methods) > 0 {
		runner, err := c.BatchRunner()
		if err != nil {
			return nil, err
		}
		jobs := make([]serve.Job, len(res.Methods))
		for _, cfg := range res.Configs {
			for i, m := range res.Methods {
				jobs[i] = serve.Job{Config: cfg, Method: m}
			}
			results := runner.RunBatchCycles(context.Background(), jobs, res.MaxMeshCycles)
			cr, err := serve.CollectRuns(cfg, results)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s on %s: %w", b.Name, cfg.Name, err)
			}
			digest, err := scenario.DigestRuns(cr.Runs)
			if err != nil {
				return nil, err
			}
			rep.Configs = append(rep.Configs, scenario.ConfigDigest{
				Config: cfg.Name, Methods: len(cr.Runs),
				Skipped: cr.Skipped, TimedOut: cr.TimedOut, Digest: digest,
			})
		}
	}

	if b.Oracle != nil {
		or, err := scenario.RunOracle(*b.Oracle)
		if err != nil {
			return nil, err
		}
		rep.Oracle = or
	}

	for _, f := range b.Faults {
		out, err := c.runFault(f, res)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s, fault %s: %w", b.Name, f.Kind, err)
		}
		rep.Faults = append(rep.Faults, out)
	}

	rep.Finish()
	return rep, nil
}

// drillBudget bounds the corpus each fault drill runs: the drills prove
// recovery properties, not throughput, so a handful of methods suffices.
const drillBudget = 8

func drillMethods(res *scenario.Resolved) []*classfile.Method {
	n := len(res.Methods)
	if n > drillBudget {
		n = drillBudget
	}
	return res.Methods[:n]
}

func drillJobs(cfg sim.Config, methods []*classfile.Method) []serve.Job {
	jobs := make([]serve.Job, len(methods))
	for i, m := range methods {
		jobs[i] = serve.Job{Config: cfg, Method: m}
	}
	return jobs
}

func (c *Context) runFault(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	if len(res.Methods) == 0 || len(res.Configs) == 0 {
		return scenario.FaultOutcome{}, fmt.Errorf("fault schedules need a non-empty workload")
	}
	switch f.Kind {
	case scenario.FaultBackendDeath:
		return c.drillBackendDeath(f, res)
	case scenario.FaultPeerFlap:
		return c.drillPeerFlap(res)
	case scenario.FaultGossipPartition:
		return c.drillGossipPartition(res)
	case scenario.FaultStoreCorruption:
		return c.drillStoreCorruption(f, res)
	case scenario.FaultDeadlinePressure:
		return c.drillDeadlinePressure(f, res)
	case scenario.FaultOverload:
		return c.drillOverload(f, res)
	case scenario.FaultSlowPeer:
		return c.drillSlowPeer(f, res)
	default:
		return scenario.FaultOutcome{}, fmt.Errorf("unknown fault kind %q", f.Kind)
	}
}

// servePeer starts an in-process jfserved-shaped peer: a real HTTP server on
// a loopback port over the standard serve handler (optionally wrapped by an
// injector), backed by its own scheduler. Returns the base URL and a stop
// function.
func servePeer(handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	stop := func() { srv.Close() }
	return "http://" + ln.Addr().String(), stop, nil
}

// namedBackend pins a drill backend's ring name: servePeer binds ephemeral
// ports, and letting the port into the name would reshuffle the consistent
// hash — and with it which jobs the doomed backend owns — on every run.
type namedBackend struct {
	chaos.Backend
	name string
}

func (b namedBackend) Name() string { return b.name }

// drillBackendDeath re-runs PR 3's mid-batch death drill from the fault
// schedule: two live in-process peers behind a consistent-hash dispatcher,
// one wrapped in a chaos.FlakyBackend that dies after f.After jobs. The
// batch must still complete with results byte-identical to a purely local
// run, via retries and local fallback — and the structured event journal
// must narrate the episode: a dispatch "suspension" when the backend
// dies, a dispatch "recovery" when a probe sees it revived. A drill that
// survives the fault but leaves no journal trail fails, because an
// operator would have been blind to what just happened.
func (c *Context) drillBackendDeath(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: f.Kind}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	configs := sim.Configurations()

	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	urls := make([]string, 2)
	for i := range urls {
		sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
		url, stop, err := servePeer(serve.NewHandler(serve.NewService(sched, configs, methods)))
		if err != nil {
			return out, err
		}
		stops = append(stops, stop)
		urls[i] = url
	}

	after := int64(f.After)
	if after == 0 {
		after = 1
	}
	flaky := &chaos.FlakyBackend{
		Inner:     namedBackend{dispatch.NewRemote(urls[0], nil), "drill-peer-0"},
		FailAfter: after,
	}
	local := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
	journal := obs.NewJournal("drill", 128)
	d, err := dispatch.NewWithBackends(
		[]dispatch.Backend{flaky, namedBackend{dispatch.NewRemote(urls[1], nil), "drill-peer-1"}},
		dispatch.Options{
			Local: local, MaxInflight: 1,
			Journal: journal,
			// One failure suspends, and probes fire within milliseconds, so
			// the revival below is observed without a real backoff wait.
			FailureThreshold: 1,
			ProbeBackoffBase: time.Millisecond,
			ProbeBackoffCap:  2 * time.Millisecond,
		},
	)
	if err != nil {
		return out, err
	}

	jobs := drillJobs(cfg, methods)
	got := d.RunBatchCycles(context.Background(), jobs, res.MaxMeshCycles)
	want := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles}).
		RunBatchCycles(context.Background(), jobs, res.MaxMeshCycles)

	stats := d.Stats()
	out.Injected = flaky.Calls() > after && (stats.Retries > 0 || stats.LocalFallbacks > 0)
	ok, detail := sameJobResults(got, want)

	// Revive the dead backend and keep offering jobs until a probe lands
	// on it, turning the suspension into a journaled recovery.
	flaky.Revive()
	deadline := time.Now().Add(5 * time.Second)
	for !journalHasKind(journal, "dispatch", "recovery") && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		d.RunBatchCycles(context.Background(), jobs[:1], res.MaxMeshCycles)
	}
	sawSuspension := journalHasKind(journal, "dispatch", "suspension")
	sawRecovery := journalHasKind(journal, "dispatch", "recovery")

	out.Recovered = ok && sawSuspension && sawRecovery
	out.Detail = fmt.Sprintf("retries=%d localFallbacks=%d suspensionEvent=%t recoveryEvent=%t",
		stats.Retries, stats.LocalFallbacks, sawSuspension, sawRecovery)
	if !ok {
		out.Detail += "; " + detail
	}
	return out, nil
}

// journalHasKind reports whether the journal recorded at least one event
// of the given subsystem and kind.
func journalHasKind(j *obs.Journal, subsystem, kind string) bool {
	return j.CountsByKind()[subsystem+"/"+kind] > 0
}

func sameJobResults(got, want []serve.JobResult) (bool, string) {
	if len(got) != len(want) {
		return false, fmt.Sprintf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			return false, fmt.Sprintf("%s: error divergence: %v vs %v",
				want[i].Job.Method.Signature(), got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		gb, err := got[i].Run.MarshalBinary()
		if err != nil {
			return false, err.Error()
		}
		wb, err := want[i].Run.MarshalBinary()
		if err != nil {
			return false, err.Error()
		}
		if string(gb) != string(wb) {
			return false, fmt.Sprintf("%s: encoded run differs", want[i].Job.Method.Signature())
		}
	}
	return true, ""
}

// drillPeerFlap re-runs PR 5's flapping-peer drill: a source node computes
// and flushes runs (one record per segment), a destination replicates while
// the source 500s the final segment, partial cursor progress must persist,
// and after the peer heals the next round must converge byte-identically.
func (c *Context) drillPeerFlap(res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: scenario.FaultPeerFlap}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	ctx := context.Background()

	srcDir, err := os.MkdirTemp("", "jf-flap-src-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(srcDir)
	dstDir, err := os.MkdirTemp("", "jf-flap-dst-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dstDir)

	src, err := store.Open(srcDir, store.Options{MaxSegmentBytes: 1})
	if err != nil {
		return out, err
	}
	defer src.Close()
	srcSched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, MaxMeshCycles: res.MaxMeshCycles, Store: src,
	})
	for _, r := range srcSched.RunBatchCycles(ctx, drillJobs(cfg, methods), res.MaxMeshCycles) {
		if r.Err != nil && !isLoadError(r.Err) {
			return out, r.Err
		}
	}
	if err := src.Flush(); err != nil {
		return out, err
	}
	manifest, err := src.Manifest()
	if err != nil {
		return out, err
	}
	if len(manifest) == 0 {
		return out, fmt.Errorf("source flushed no segments")
	}
	lastSeq := manifest[len(manifest)-1].Seq
	for _, seg := range manifest {
		if seg.Seq > lastSeq {
			lastSeq = seg.Seq
		}
	}

	gate := &chaos.FlapGate{
		Inner: serve.NewHandler(serve.NewService(srcSched, sim.Configurations(), methods)),
		Match: func(r *http.Request) bool {
			return r.URL.Path == fmt.Sprintf("/v1/replicate/segment/%d", lastSeq)
		},
	}
	gate.Down()
	url, stop, err := servePeer(gate)
	if err != nil {
		return out, err
	}
	defer stop()

	dst, err := store.Open(dstDir, store.Options{})
	if err != nil {
		return out, err
	}
	defer dst.Close()
	repl, err := replicate.New(replicate.Options{Store: dst, Peers: []string{url}})
	if err != nil {
		return out, err
	}

	flapErr := repl.SyncNow(ctx)
	partial := repl.Stats().Peers[0].RecordsIngested
	out.Injected = gate.Faults() > 0 && flapErr != nil

	gate.Up()
	if err := repl.SyncNow(ctx); err != nil {
		out.Detail = fmt.Sprintf("post-heal sync failed: %v", err)
		return out, nil
	}
	missing := 0
	for _, m := range methods {
		key := store.RunKeyFor(cfg, m, res.MaxMeshCycles)
		srcRun, ok := src.GetRun(key)
		if !ok {
			continue // skipped (fabric-ineligible) methods never stored
		}
		dstRun, ok := dst.GetRun(key)
		if !ok {
			missing++
			continue
		}
		sb, err := srcRun.MarshalBinary()
		if err != nil {
			return out, err
		}
		db, err := dstRun.MarshalBinary()
		if err != nil {
			return out, err
		}
		if string(sb) != string(db) {
			missing++
		}
	}
	out.Recovered = missing == 0
	out.Detail = fmt.Sprintf("faulted=%d partialIngested=%d missingAfterHeal=%d",
		gate.Faults(), partial, missing)
	return out, nil
}

// drillGossipPartition proves the push path converges without the pull
// loop, and survives a partition. Two nodes with gossip-enabled
// replicators whose periodic pull is never started: node A computes
// results while node B's notify endpoint is down (the rumor is lost),
// then the partition heals and A's next advertisement must catch B up —
// to a byte-identical union including the records whose rumors were
// dropped, because notifications carry cumulative segment positions, not
// diffs.
func (c *Context) drillGossipPartition(res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: scenario.FaultGossipPartition}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	ctx := context.Background()
	configs := sim.Configurations()

	aDir, err := os.MkdirTemp("", "jf-gossip-a-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(aDir)
	bDir, err := os.MkdirTemp("", "jf-gossip-b-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(bDir)

	// One record per segment on the origin, so every commit visibly grows
	// the advertised delta.
	aSt, err := store.Open(aDir, store.Options{MaxSegmentBytes: 1})
	if err != nil {
		return out, err
	}
	defer aSt.Close()
	aSched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, MaxMeshCycles: res.MaxMeshCycles, Store: aSt,
	})
	aSvc := serve.NewService(aSched, configs, methods)
	aURL, aStop, err := servePeer(serve.NewHandler(aSvc))
	if err != nil {
		return out, err
	}
	defer aStop()

	bSt, err := store.Open(bDir, store.Options{})
	if err != nil {
		return out, err
	}
	defer bSt.Close()
	bSched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, MaxMeshCycles: res.MaxMeshCycles, Store: bSt,
	})
	bSvc := serve.NewService(bSched, configs, methods)
	gate := &chaos.FlapGate{
		Inner: serve.NewHandler(bSvc),
		Match: func(r *http.Request) bool { return r.URL.Path == "/v1/replicate/notify" },
	}
	bURL, bStop, err := servePeer(gate)
	if err != nil {
		return out, err
	}
	defer bStop()

	// Gossip-only replicators: Start (and with it the pull loop) is never
	// called, so every record B gains below arrived via push.
	aRep, err := replicate.New(replicate.Options{
		Store: aSt, Peers: []string{bURL}, Advertise: aURL, Interval: time.Hour,
	})
	if err != nil {
		return out, err
	}
	bRep, err := replicate.New(replicate.Options{
		Store: bSt, Peers: []string{aURL}, Advertise: bURL, Interval: time.Hour,
	})
	if err != nil {
		return out, err
	}
	aSvc.SetReplicator(aRep)
	bSvc.SetReplicator(bRep)

	// Partitioned phase: commit the first half, advertise into the wall.
	gate.Down()
	half := (len(methods) + 1) / 2
	for _, r := range aSched.RunBatchCycles(ctx, drillJobs(cfg, methods[:half]), res.MaxMeshCycles) {
		if r.Err != nil && !isLoadError(r.Err) {
			return out, r.Err
		}
	}
	partitionErr := aRep.AdvertiseNow(ctx)
	missedDuringPartition := 0
	for _, m := range methods[:half] {
		key := store.RunKeyFor(cfg, m, res.MaxMeshCycles)
		if aSt.HasRun(key) && !bSt.HasRun(key) {
			missedDuringPartition++
		}
	}
	out.Injected = gate.Faults() > 0 && partitionErr != nil && missedDuringPartition > 0

	// Healed phase: commit the second half and advertise again. The
	// receiver pulls synchronously inside the notify handler, so when
	// AdvertiseNow returns, B is caught up — lost rumors and all.
	gate.Up()
	for _, r := range aSched.RunBatchCycles(ctx, drillJobs(cfg, methods[half:]), res.MaxMeshCycles) {
		if r.Err != nil && !isLoadError(r.Err) {
			return out, r.Err
		}
	}
	if err := aRep.AdvertiseNow(ctx); err != nil {
		out.Detail = fmt.Sprintf("post-heal advertisement failed: %v", err)
		return out, nil
	}
	missing := 0
	for _, m := range methods {
		key := store.RunKeyFor(cfg, m, res.MaxMeshCycles)
		srcRun, ok := aSt.GetRun(key)
		if !ok {
			continue // skipped (fabric-ineligible) methods never stored
		}
		dstRun, ok := bSt.GetRun(key)
		if !ok {
			missing++
			continue
		}
		sb, err := srcRun.MarshalBinary()
		if err != nil {
			return out, err
		}
		db, err := dstRun.MarshalBinary()
		if err != nil {
			return out, err
		}
		if string(sb) != string(db) {
			missing++
		}
	}
	out.Recovered = missing == 0
	pulled := int64(0)
	if ps := bRep.Stats().Peers; len(ps) > 0 {
		pulled = ps[0].RecordsIngested
	}
	out.Detail = fmt.Sprintf("notifyFaults=%d missedDuringPartition=%d pulledRecords=%d missingAfterHeal=%d",
		gate.Faults(), missedDuringPartition, pulled, missing)
	return out, nil
}

// drillStoreCorruption flushes runs to a throwaway store, damages the last
// segment on disk (CRC bit-flip or tail truncation), and requires reopen to
// quarantine the damage and a recompute to restore byte-identical records.
func (c *Context) drillStoreCorruption(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: f.Kind}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "jf-corrupt-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return out, err
	}
	sched := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, MaxMeshCycles: res.MaxMeshCycles, Store: st,
	})
	expected := make(map[string][]byte)
	for _, r := range sched.RunBatchCycles(ctx, drillJobs(cfg, methods), res.MaxMeshCycles) {
		if r.Err != nil {
			if isLoadError(r.Err) {
				continue
			}
			st.Close()
			return out, r.Err
		}
		data, err := r.Run.MarshalBinary()
		if err != nil {
			st.Close()
			return out, err
		}
		expected[r.Job.Method.Signature()] = data
	}
	if err := st.Close(); err != nil {
		return out, err
	}

	seg, err := chaosfs.LastSegment(dir)
	if err != nil {
		return out, err
	}
	switch f.Mode {
	case scenario.CorruptTruncate:
		err = chaosfs.TruncateTail(seg, 10)
	default: // bitflip
		err = chaosfs.FlipByte(seg, -1, 0x40)
	}
	if err != nil {
		return out, err
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		out.Detail = fmt.Sprintf("reopen after corruption failed: %v", err)
		return out, nil
	}
	defer st2.Close()
	lost := 0
	for _, m := range methods {
		if _, ok := expected[m.Signature()]; !ok {
			continue
		}
		if !st2.HasRun(store.RunKeyFor(cfg, m, res.MaxMeshCycles)) {
			lost++
		}
	}
	out.Injected = lost > 0

	// Recompute through the surviving store: every record must come back
	// byte-identical to its pre-corruption encoding.
	sched2 := serve.NewScheduler(serve.SchedulerOptions{
		Workers: 2, MaxMeshCycles: res.MaxMeshCycles, Store: st2,
	})
	mismatched := 0
	for _, r := range sched2.RunBatchCycles(ctx, drillJobs(cfg, methods), res.MaxMeshCycles) {
		if r.Err != nil {
			if isLoadError(r.Err) {
				continue
			}
			return out, r.Err
		}
		data, err := r.Run.MarshalBinary()
		if err != nil {
			return out, err
		}
		if string(data) != string(expected[r.Job.Method.Signature()]) {
			mismatched++
		}
	}
	out.Recovered = mismatched == 0
	out.Detail = fmt.Sprintf("mode=%s lostRecords=%d mismatchedAfterRecompute=%d",
		modeOrDefault(f.Mode), lost, mismatched)
	return out, nil
}

// drillOverload floods a capped admission gate at 4x capacity (by default)
// with concurrent /v1/run requests: the overflow must shed with typed 429s
// carrying a positive integer Retry-After, nothing may 5xx, every admitted
// request must return results byte-identical to a local run, and once the
// flood drains a fresh request must be served normally with the run lane
// back at depth zero.
func (c *Context) drillOverload(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: scenario.FaultOverload}
	cfg := res.Configs[0]
	capN := f.Cap
	if capN == 0 {
		capN = 2
	}
	flood := f.Flood
	if flood == 0 {
		flood = 4 * capN
	}

	// One hostable method for the whole flood, so every admitted response
	// must carry the same bytes.
	var m *classfile.Method
	for _, cand := range drillMethods(res) {
		if _, err := sim.DeployMethod(cfg, cand); err == nil {
			m = cand
			break
		}
	}
	if m == nil {
		return out, fmt.Errorf("no hostable drill method for config %s", cfg.Name)
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
	svc := serve.NewService(sched, sim.Configurations(), []*classfile.Method{m})
	ac := admit.New(admit.Options{RunCap: capN, Parallelism: 2})
	svc.SetAdmission(ac)
	// Hold each run request briefly so the burst reaches the admission
	// gate together instead of draining one by one.
	gate := &chaos.SlowGate{
		Inner: serve.NewHandler(svc),
		Match: func(r *http.Request) bool { return r.URL.Path == "/v1/run" },
		Delay: 100 * time.Millisecond,
	}
	gate.Slow()
	url, stop, err := servePeer(gate)
	if err != nil {
		return out, err
	}
	defer stop()

	want, err := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles}).
		RunMethodCycles(context.Background(), cfg, m, res.MaxMeshCycles)
	if err != nil {
		return out, err
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		return out, err
	}

	post := func() (*http.Response, error) {
		body, err := json.Marshal(serve.RunRequest{
			Config: cfg.Name, Method: m.Signature(), MaxMeshCycles: res.MaxMeshCycles,
		})
		if err != nil {
			return nil, err
		}
		return http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	}

	var (
		mu                                  sync.Mutex
		admitted, shed, badShed, other, bad int
		firstErr                            error
	)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := post()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				admitted++
				var p serve.RunPayload
				if json.Unmarshal(data, &p) != nil {
					bad++
					return
				}
				rb, err := (sim.MethodRun{Signature: p.Signature, BP1: p.BP1, BP2: p.BP2}).MarshalBinary()
				if err != nil || string(rb) != string(wantBytes) {
					bad++
				}
			case http.StatusTooManyRequests:
				shed++
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					badShed++
				}
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}

	out.Injected = shed > 0

	// Recovery: the flood is gone, so a fresh request must be admitted and
	// the run lane must sit at depth zero again.
	gate.Fast()
	recovered := true
	if resp, err := post(); err != nil {
		recovered = false
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			recovered = false
		}
	}
	if ac.Depth(admit.ClassRun) != 0 {
		recovered = false
	}
	out.Recovered = recovered && bad == 0 && badShed == 0 && other == 0 && admitted > 0
	out.Detail = fmt.Sprintf("flood=%d cap=%d admitted=%d shed429=%d badRetryAfter=%d other=%d byteMismatch=%d",
		flood, capN, admitted, shed, badShed, other, bad)
	return out, nil
}

// drillSlowPeer wedges the only dispatch peer — it accepts connections but
// stalls longer than the client's header timeout before answering — and
// requires the batch to complete byte-identically anyway via timeout,
// suspension, and local fallback, instead of hanging on the slow peer.
func (c *Context) drillSlowPeer(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: scenario.FaultSlowPeer}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	delay := time.Duration(f.DelayMs) * time.Millisecond
	if delay == 0 {
		delay = 2 * time.Second
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
	gate := &chaos.SlowGate{
		Inner: serve.NewHandler(serve.NewService(sched, sim.Configurations(), methods)),
		Match: func(r *http.Request) bool { return r.URL.Path == "/v1/run" },
		Delay: delay,
	}
	gate.Slow()
	url, stop, err := servePeer(gate)
	if err != nil {
		return out, err
	}
	defer stop()

	client := &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: delay / 4}}
	local := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
	d, err := dispatch.NewWithBackends(
		[]dispatch.Backend{namedBackend{dispatch.NewRemote(url, client), "drill-slow-peer"}},
		dispatch.Options{Local: local, MaxInflight: 1},
	)
	if err != nil {
		return out, err
	}

	jobs := drillJobs(cfg, methods)
	start := time.Now()
	got := d.RunBatchCycles(context.Background(), jobs, res.MaxMeshCycles)
	elapsed := time.Since(start)
	want := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles}).
		RunBatchCycles(context.Background(), jobs, res.MaxMeshCycles)

	stats := d.Stats()
	out.Injected = gate.Delayed() > 0 && stats.LocalFallbacks > 0
	ok, detail := sameJobResults(got, want)
	out.Recovered = ok
	out.Detail = fmt.Sprintf("delayed=%d localFallbacks=%d suspensions=%d elapsed=%s",
		gate.Delayed(), stats.LocalFallbacks, stats.Suspensions, elapsed.Round(time.Millisecond))
	if !ok {
		out.Detail += "; " + detail
	}
	return out, nil
}

func isLoadError(err error) bool {
	var le *fabric.LoadError
	return errors.As(err, &le)
}

func modeOrDefault(mode string) string {
	if mode == "" {
		return scenario.CorruptBitFlip
	}
	return mode
}

// drillDeadlinePressure squeezes the mesh-cycle budget until runs time out
// (the simulated-time analog of deadline pressure), then restores the full
// budget: timeouts must be flagged, never silently returned as results, and
// the full-budget re-run must complete clean.
func (c *Context) drillDeadlinePressure(f scenario.Fault, res *scenario.Resolved) (scenario.FaultOutcome, error) {
	out := scenario.FaultOutcome{Kind: f.Kind}
	methods := drillMethods(res)
	cfg := res.Configs[0]
	ctx := context.Background()
	squeezed := f.MaxCycles
	if squeezed == 0 {
		squeezed = 500
	}

	timedOut := 0
	tight := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: squeezed})
	for _, r := range tight.RunBatchCycles(ctx, drillJobs(cfg, methods), squeezed) {
		if r.Err != nil {
			if isLoadError(r.Err) {
				continue
			}
			return out, r.Err
		}
		if r.Run.BP1.TimedOut || r.Run.BP2.TimedOut {
			timedOut++
		}
	}
	out.Injected = timedOut > 0

	full := serve.NewScheduler(serve.SchedulerOptions{Workers: 2, MaxMeshCycles: res.MaxMeshCycles})
	late := 0
	for _, r := range full.RunBatchCycles(ctx, drillJobs(cfg, methods), res.MaxMeshCycles) {
		if r.Err != nil {
			if isLoadError(r.Err) {
				continue
			}
			return out, r.Err
		}
		if r.Run.BP1.TimedOut || r.Run.BP2.TimedOut {
			late++
		}
	}
	out.Recovered = late == 0
	out.Detail = fmt.Sprintf("squeezedCycles=%d timedOut=%d fullBudgetTimedOut=%d",
		squeezed, timedOut, late)
	return out, nil
}
