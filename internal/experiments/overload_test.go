package experiments

import (
	"testing"

	"javaflow/internal/scenario"
)

// TestOverloadDrills exercises the two overload-protection fault drills
// (the catalog "overload" scenario's schedule) at test scale: the flood
// must inject — at least one typed 429 with a sane Retry-After — and
// recover with byte-identical admitted work and clean post-flood service;
// the slow peer must be timed out at the transport and routed around.
func TestOverloadDrills(t *testing.T) {
	c := fastContext()
	b := &scenario.Bundle{
		Name:          "overload-test",
		Tier:          scenario.TierAdversarial,
		Workload:      scenario.WorkloadSpec{Suites: []string{"crypto.signverify"}},
		Configs:       []string{"Compact2"},
		MaxMeshCycles: 200_000,
		Faults: []scenario.Fault{
			{Kind: scenario.FaultOverload, Cap: 2, Flood: 8},
			{Kind: scenario.FaultSlowPeer, DelayMs: 400},
		},
	}
	res, err := b.Resolve(scenario.Defaults{Seed: 2014, GenCount: 8, MaxMeshCycles: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range b.Faults {
		out, err := c.runFault(f, res)
		if err != nil {
			t.Fatalf("%s: %v", f.Kind, err)
		}
		if !out.Injected {
			t.Errorf("%s: fault did not inject: %s", f.Kind, out.Detail)
		}
		if !out.Recovered {
			t.Errorf("%s: did not recover: %s", f.Kind, out.Detail)
		}
		t.Logf("%s: %s", f.Kind, out.Detail)
	}
}
