package workload

import (
	"crypto/sha1"
	"encoding/binary"
	"testing"

	"javaflow/internal/jvm"
)

func TestSha160MatchesStdlib(t *testing.T) {
	s := CryptoSuite()
	vm := newVM(t, s)
	sha := s.method("gnu/java/security/hash/Sha160", "sha")

	// One-block message "abc" with SHA-1 padding, as 16 big-endian words.
	var block [64]byte
	copy(block[:], "abc")
	block[3] = 0x80
	binary.BigEndian.PutUint64(block[56:], 24) // bit length
	words := make([]int64, 16)
	for i := 0; i < 16; i++ {
		words[i] = int64(int32(binary.BigEndian.Uint32(block[4*i:])))
	}

	state := vm.NewIntArray([]int64{
		0x67452301, u32(0xEFCDAB89), u32(0x98BADCFE),
		0x10325476, u32(0xC3D2E1F0),
	})
	if _, err := vm.Invoke(sha, state, vm.NewIntArray(words)); err != nil {
		t.Fatal(err)
	}
	got, _ := vm.IntArrayData(state)

	want := sha1.Sum([]byte("abc"))
	for i := 0; i < 5; i++ {
		w := int64(int32(binary.BigEndian.Uint32(want[4*i:])))
		if got[i] != w {
			t.Fatalf("digest word %d = %08x, want %08x", i, uint32(got[i]), uint32(w))
		}
	}
}

func TestMPNMulMatchesBigInt(t *testing.T) {
	s := CryptoSuite()
	vm := newVM(t, s)
	mul := s.method("gnu/java/math/MPN", "mul")

	// 4-limb × 3-limb little-endian multiply, checked against Go uint64
	// schoolbook arithmetic.
	x := []int64{u32(0xFFFFFFFF), 0x12345678, u32(0x9ABCDEF0), 7}
	y := []int64{u32(0x89ABCDEF), 0x1000, u32(0xFFFFFFFE)}
	dest := vm.NewIntArray(make([]int64, len(x)+len(y)))
	_, err := vm.Invoke(mul, dest, vm.NewIntArray(x), jvm.Int(int64(len(x))),
		vm.NewIntArray(y), jvm.Int(int64(len(y))))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vm.IntArrayData(dest)

	want := make([]uint32, len(x)+len(y))
	for j := range y {
		var carry uint64
		yl := uint64(uint32(y[j]))
		for i := range x {
			t64 := uint64(uint32(x[i]))*yl + uint64(want[i+j]) + carry
			want[i+j] = uint32(t64)
			carry = t64 >> 32
		}
		want[len(x)+j] = uint32(carry)
	}
	for i := range want {
		if uint32(got[i]) != want[i] {
			t.Fatalf("limb %d = %08x, want %08x", i, uint32(got[i]), want[i])
		}
	}
}

func TestMPNSubmulMatchesReference(t *testing.T) {
	s := CryptoSuite()
	vm := newVM(t, s)
	submul := s.method("gnu/java/math/MPN", "submul_1")

	destInit := []int64{u32(0xDEADBEEF), 0x01234567, u32(0x89ABCDEF), 0x7FFFFFFF}
	x := []int64{u32(0xFFFFFFFF), 2, u32(0x80000000), 5}
	const y = 0x1234
	dest := vm.NewIntArray(destInit)

	res, err := vm.Invoke(submul, dest, vm.NewIntArray(x),
		jvm.Int(int64(len(x))), jvm.Int(y))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vm.IntArrayData(dest)

	// Reference: dest -= x*y limb-wise with borrow propagation.
	want := make([]uint32, len(x))
	var carry uint64
	for j := range x {
		prod := uint64(uint32(x[j]))*uint64(y) + carry
		lo := uint32(prod)
		carry = prod >> 32
		d := uint32(destInit[j])
		r := d - lo
		if r > d {
			carry++
		}
		want[j] = r
	}
	for i := range want {
		if uint32(got[i]) != want[i] {
			t.Fatalf("limb %d = %08x, want %08x", i, uint32(got[i]), want[i])
		}
	}
	if uint64(uint32(res.I)) != carry {
		t.Fatalf("borrow = %d, want %d", uint32(res.I), carry)
	}
}

func TestCompressRoundTripAndRatio(t *testing.T) {
	for _, s := range CompressSuites() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			vm := newVM(t, s)
			if err := s.Run(vm, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShellSortAndCompare(t *testing.T) {
	suites := Spec98Suites()
	var db *Suite
	for _, s := range suites {
		if s.Name == "_209_db" {
			db = s
		}
	}
	vm := newVM(t, db)
	compareTo := db.method("spec/benchmarks/_209_db/Database", "compareTo")

	cases := []struct {
		a, b []int64
		sign int
	}{
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, 0},
		{[]int64{1, 2, 3}, []int64{1, 2, 4}, -1},
		{[]int64{1, 3}, []int64{1, 2, 9}, 1},
		{[]int64{1, 2}, []int64{1, 2, 9}, -1},
		{[]int64{}, []int64{}, 0},
	}
	for _, c := range cases {
		got, err := vm.Invoke(compareTo, vm.NewIntArray(c.a), vm.NewIntArray(c.b))
		if err != nil {
			t.Fatal(err)
		}
		sign := 0
		if got.I > 0 {
			sign = 1
		} else if got.I < 0 {
			sign = -1
		}
		if sign != c.sign {
			t.Errorf("compareTo(%v,%v) sign = %d, want %d", c.a, c.b, sign, c.sign)
		}
	}
}

func TestAllSuitesRun(t *testing.T) {
	for _, s := range AllSuites() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			vm := newVM(t, s)
			if err := s.Run(vm, 1); err != nil {
				t.Fatal(err)
			}
			if vm.Profile.TotalOps() == 0 {
				t.Fatal("no profile data")
			}
		})
	}
}

func TestNamedMethodsPopulation(t *testing.T) {
	methods := NamedMethods()
	if len(methods) < 15 {
		t.Fatalf("only %d named methods, want the full SPEC-analog roster", len(methods))
	}
	seen := make(map[string]bool)
	for _, m := range methods {
		sig := m.Signature()
		if seen[sig] {
			t.Errorf("duplicate method %s", sig)
		}
		seen[sig] = true
		if m.MaxStack == 0 {
			t.Errorf("%s has MaxStack 0 (not verified?)", sig)
		}
	}
}

func TestJackScannerCountsTokens(t *testing.T) {
	var jack *Suite
	for _, s := range Spec98Suites() {
		if s.Name == "_228_jack" {
			jack = s
		}
	}
	vm := newVM(t, jack)
	scan := jack.method("spec/benchmarks/_228_jack/TokenEngine", "getNextTokenFromStream")
	// "ab 12, c" -> classes: 1 1 0 2 2 3 0 1 = tokens: ab, 12, ',', c = 4
	classes := []int64{1, 1, 0, 2, 2, 3, 0, 1}
	got, err := vm.Invoke(scan, vm.NewIntArray(classes))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 4 {
		t.Errorf("token count = %d, want 4", got.I)
	}
}

// u32 reinterprets a 32-bit pattern as a Java int value.
func u32(v uint32) int64 { return int64(int32(v)) }

func TestJessDataEquals(t *testing.T) {
	var jess *Suite
	for _, s := range Spec98Suites() {
		if s.Name == "_202_jess" {
			jess = s
		}
	}
	vm := newVM(t, jess)
	de := jess.method("spec/benchmarks/_202_jess/jess/Token", "data_equals")
	cases := []struct {
		a, b []int64
		want int64
	}{
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, 1},
		{[]int64{1, 2, 3}, []int64{1, 2, 4}, 0},
		{[]int64{1, 2}, []int64{1, 2, 3}, 0},
		{[]int64{}, []int64{}, 1},
	}
	for _, c := range cases {
		got, err := vm.Invoke(de, vm.NewIntArray(c.a), vm.NewIntArray(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != c.want {
			t.Errorf("data_equals(%v,%v) = %d, want %d", c.a, c.b, got.I, c.want)
		}
	}
}

func TestFindTreeNodeMatchesReference(t *testing.T) {
	var mtrt *Suite
	for _, s := range Spec98Suites() {
		if s.Name == "_227_mtrt" {
			mtrt = s
		}
	}
	vm := newVM(t, mtrt)
	find := mtrt.method("spec/benchmarks/_205_raytrace/OctNodeTree", "FindTreeNode")
	nodes, ref := BuildOctree(3)
	na := vm.NewDoubleArray(nodes)

	probes := [][]float64{
		{0.1, 0.1, 0.1},
		{15.9, 15.9, 15.9},
		{8.01, 3.2, 12.7},
		{7.99, 8.01, 0.5},
		{-1, 5, 5}, // outside
	}
	for _, p := range probes {
		got, err := vm.Invoke(find, na, vm.NewDoubleArray(p))
		if err != nil {
			t.Fatal(err)
		}
		if want := ref(p); got.I != int64(want) {
			t.Errorf("FindTreeNode(%v) = %d, want %d", p, got.I, want)
		}
	}
}
