package workload

import (
	"fmt"
	"math/rand"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// The dissertation's simulation population is ~1,605 methods spanning sizes
// from a few instructions to just under 1,000, with the Filter-1 subset
// (10 < size < 1000) showing mean 56 / median 29 instructions, ~4.5 local
// registers, ~3 forward branches and ~0.6 back branches per method
// (Tables 9, 13, 14). GeneratedMethods synthesizes a deterministic
// population with those distributions.

// GenConfig tunes the generated population.
type GenConfig struct {
	Seed  int64
	Count int
	// ClassSize is how many methods share one generated class (and its
	// static slots). Zero means a default of 64.
	ClassSize int
}

// profile weights segment selection to shape the method's static mix.
type profile struct {
	name                        string
	arith, float, storage, ctrl int
}

var profiles = []profile{
	{"arith", 38, 6, 28, 28},
	{"float", 16, 44, 22, 18},
	{"storage", 15, 5, 55, 25},
	{"control", 20, 8, 22, 50},
}

// Generate builds the population. Methods are grouped into classes named
// gen/GenNNN; all are static int-returning methods with no arguments so a
// single driver can execute every one of them.
func Generate(cfg GenConfig) []*classfile.Class {
	if cfg.Count <= 0 {
		return nil
	}
	classSize := cfg.ClassSize
	if classSize <= 0 {
		classSize = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var classes []*classfile.Class
	var cur *classfile.Class
	var pool *classfile.ConstantPool
	var statics, consts, dconsts []int

	for i := 0; i < cfg.Count; i++ {
		if i%classSize == 0 {
			cur = classfile.NewClass(fmt.Sprintf("gen/Gen%03d", len(classes)))
			cur.StaticSlots = 4
			pool = classfile.NewConstantPool()
			statics = make([]int, cur.StaticSlots)
			for s := range statics {
				statics[s] = pool.AddFieldRef(classfile.FieldRef{
					Class: cur.Name, Name: fmt.Sprintf("s%d", s), Static: true, Slot: s,
				})
			}
			consts = []int{
				pool.AddInt(0x10001), pool.AddInt(9973), pool.AddInt(-40503),
			}
			dconsts = []int{
				pool.AddDouble(1.618033988749895), pool.AddDouble(2.718281828459045),
			}
			classes = append(classes, cur)
		}
		m := generateMethod(rng, pool, statics, consts, dconsts, fmt.Sprintf("m%04d", i))
		cur.Add(m)
		if err := classfile.Verify(m); err != nil {
			panic(fmt.Sprintf("workload: generated method invalid: %v", err))
		}
	}
	return classes
}

// sampleSize draws a method size target reproducing the corpus shape: a
// large small-method tail, a lognormal-ish middle, and a few near-1000
// giants.
func sampleSize(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.40: // tiny methods (below Filter 1)
		return 3 + rng.Intn(7)
	case r < 0.96: // the Filter-1 bulk, median ≈ 29
		// exponential tail approximates the observed skew
		v := 10 + int(rng.ExpFloat64()*24)
		if v > 900 {
			v = 900
		}
		return v
	case r < 0.99: // large
		return 200 + rng.Intn(500)
	default: // beyond Filter 1's upper bound
		return 1000 + rng.Intn(400)
	}
}

type genState struct {
	rng     *rand.Rand
	a       *bytecode.Assembler
	pool    *classfile.ConstantPool
	statics []int
	consts  []int // int constant-pool entries for ldc
	dconsts []int // double constant-pool entries for ldc2_w
	prof    profile

	nInt    int // int locals at 0..nInt-1
	nDouble int // double locals at nInt..nInt+nDouble-1
	arrLoc  int // int array register
	darrLoc int // double array register (-1 when absent)
	idxLoc  int // shared in-bounds array index register
	scratch int // first free register (loop counters)
	depth   int // loop nesting
	target  int
	labels  int
}

func (g *genState) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

func (g *genState) intLocal() int    { return g.rng.Intn(g.nInt) }
func (g *genState) doubleLocal() int { return g.nInt + g.rng.Intn(g.nDouble) }

// generateMethod emits one synthetic method.
func generateMethod(rng *rand.Rand, pool *classfile.ConstantPool, statics, consts, dconsts []int, name string) *classfile.Method {
	g := &genState{
		rng:     rng,
		a:       bytecode.NewAssembler(),
		pool:    pool,
		statics: statics,
		consts:  consts,
		dconsts: dconsts,
		prof:    profiles[rng.Intn(len(profiles))],
		nInt:    2 + rng.Intn(4),
		nDouble: 1 + rng.Intn(3),
		target:  sampleSize(rng),
	}
	// Tiny methods (the sub-Filter-1 population) skip the array prologue:
	// they are the accessor-sized methods real benchmarks are full of.
	if g.target < 12 {
		g.nInt = 2
		g.a.PushInt(int64(rng.Intn(64) + 1)).IStore(0)
		g.a.PushInt(int64(rng.Intn(64) + 1)).IStore(1)
		for g.a.Len()+6 <= g.target {
			op := intBinOps[rng.Intn(3)] // iadd/isub/imul keep it 4 wide
			g.a.ILoad(0).ILoad(1).Op(op).IStore(0)
		}
		g.a.ILoad(0).Op(bytecode.Ireturn)
		code, err := g.a.Finish()
		if err != nil {
			panic(fmt.Sprintf("workload: generating %s: %v", name, err))
		}
		return &classfile.Method{
			Name: name, ReturnsValue: true, MaxLocals: 2, Code: code, Pool: pool,
		}
	}

	g.arrLoc = g.nInt + g.nDouble
	g.darrLoc = g.arrLoc + 1
	g.idxLoc = g.darrLoc + 1
	g.scratch = g.idxLoc + 1
	maxLocals := g.scratch + 3 // up to 3 nested loop counters

	// Prologue: deterministic initial state.
	for i := 0; i < g.nInt; i++ {
		g.a.PushInt(int64(rng.Intn(64) + 1)).IStore(i)
	}
	for i := 0; i < g.nDouble; i++ {
		if rng.Intn(2) == 0 {
			g.a.Op(bytecode.Dconst1)
		} else {
			g.a.Op(bytecode.Dconst0)
		}
		g.a.DStore(g.nInt + i)
	}
	g.a.PushInt(16).OpA(bytecode.Newarray, 10).AStore(g.arrLoc)
	g.a.PushInt(16).OpA(bytecode.Newarray, 7).AStore(g.darrLoc)
	g.a.PushInt(int64(rng.Intn(16))).IStore(g.idxLoc)

	for g.a.Len() < g.target {
		g.segment()
	}

	// Epilogue: fold an int local into the result.
	g.a.ILoad(g.intLocal()).Op(bytecode.Ireturn)

	code, err := g.a.Finish()
	if err != nil {
		panic(fmt.Sprintf("workload: generating %s: %v", name, err))
	}
	return &classfile.Method{
		Name:         name,
		ReturnsValue: true,
		MaxLocals:    maxLocals,
		Code:         code,
		Pool:         pool,
	}
}

// segment emits one stack-neutral code segment chosen by the profile.
func (g *genState) segment() {
	total := g.prof.arith + g.prof.float + g.prof.storage + g.prof.ctrl
	r := g.rng.Intn(total)
	switch {
	case r < g.prof.arith:
		g.intExpr()
	case r < g.prof.arith+g.prof.float:
		g.floatExpr()
	case r < g.prof.arith+g.prof.float+g.prof.storage:
		g.storageOp()
	default:
		g.controlOp()
	}
}

var intBinOps = []bytecode.Opcode{
	bytecode.Iadd, bytecode.Isub, bytecode.Imul, bytecode.Iand,
	bytecode.Ior, bytecode.Ixor, bytecode.Ishl, bytecode.Iushr,
}

// intExpr: load 2-4 int operands, fold, store.
func (g *genState) intExpr() {
	n := 2 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		if g.rng.Intn(3) == 0 {
			g.a.PushInt(int64(g.rng.Intn(256)))
		} else {
			g.a.ILoad(g.intLocal())
		}
	}
	for i := 0; i < n-1; i++ {
		op := intBinOps[g.rng.Intn(len(intBinOps))]
		if op == bytecode.Ishl || op == bytecode.Iushr {
			// keep shift distances sane: mask the top operand first
			g.a.PushInt(7).Op(bytecode.Iand)
			if g.a.Len() >= g.target+8 { // shifts add 2 instrs; stay near target
				op = bytecode.Ixor
			}
		}
		g.a.Op(op)
	}
	if g.rng.Intn(8) == 0 {
		// guarded division: x / (y|1)
		g.a.ILoad(g.intLocal()).Op(bytecode.Iconst1).Op(bytecode.Ior).Op(bytecode.Idiv)
	}
	g.a.IStore(g.intLocal())
}

var dblBinOps = []bytecode.Opcode{bytecode.Dadd, bytecode.Dsub, bytecode.Dmul}

// floatExpr: double arithmetic chains with conversions, occasionally
// narrowing back into an int register.
func (g *genState) floatExpr() {
	n := 3 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(5) {
		case 0:
			g.a.Op(bytecode.Dconst1)
		case 1:
			g.a.ILoad(g.intLocal()).Op(bytecode.I2d)
		case 2:
			g.a.Ldc(g.dconsts[g.rng.Intn(len(g.dconsts))], true)
		default:
			g.a.DLoad(g.doubleLocal())
		}
	}
	for i := 0; i < n-1; i++ {
		g.a.Op(dblBinOps[g.rng.Intn(len(dblBinOps))])
	}
	if g.rng.Intn(4) == 0 {
		// narrow the result into an int register (float-conversion group)
		g.a.Op(bytecode.D2i).PushInt(1023).Op(bytecode.Iand).IStore(g.intLocal())
		return
	}
	g.a.DStore(g.doubleLocal())
}

// storageOp: a run of array element and static field accesses — clustered,
// as real benchmark storage traffic is.
func (g *genState) storageOp() {
	idx := func() { g.a.ILoad(g.idxLoc) }
	n := 2 + g.rng.Intn(3)
	for k := 0; k < n; k++ {
		switch g.rng.Intn(8) {
		case 0: // int array read into a register
			g.a.ALoad(g.arrLoc)
			idx()
			g.a.Op(bytecode.Iaload).IStore(g.intLocal())
		case 1: // int array write
			g.a.ALoad(g.arrLoc)
			idx()
			g.a.ILoad(g.intLocal()).Op(bytecode.Iastore)
		case 2: // double array read/modify/write
			g.a.ALoad(g.darrLoc)
			idx()
			g.a.ALoad(g.darrLoc)
			idx()
			g.a.Op(bytecode.Daload).DLoad(g.doubleLocal()).Op(bytecode.Dadd).Op(bytecode.Dastore)
		case 3, 4, 5: // static-to-static shuffle
			f1 := g.statics[g.rng.Intn(len(g.statics))]
			f2 := g.statics[g.rng.Intn(len(g.statics))]
			g.a.Field(bytecode.Getstatic, f1).Field(bytecode.Putstatic, f2)
		case 6: // static read into a register
			f := g.statics[g.rng.Intn(len(g.statics))]
			g.a.Field(bytecode.Getstatic, f).IStore(g.intLocal())
		default: // constant-pool load (unordered Method Area access)
			g.a.Ldc(g.consts[g.rng.Intn(len(g.consts))], false).IStore(g.intLocal())
		}
	}
	// keep the shared index register in bounds for the next cluster
	g.a.ILoad(g.idxLoc).Op(bytecode.Iconst1).Op(bytecode.Iadd).
		PushInt(15).Op(bytecode.Iand).IStore(g.idxLoc)
}

// controlOp: an if, an if/else, a bounded counted loop, or one of the
// dataflow-shaping constructs (merge expression / split consumption) that
// produce the small-but-nonzero merge and fan-out counts of Tables 10/12.
func (g *genState) controlOp() {
	switch {
	case g.depth < 2 && g.rng.Intn(5) == 0:
		g.loop()
	case g.rng.Intn(8) == 0:
		g.mergeExpr()
	case g.rng.Intn(8) == 0:
		g.splitConsume()
	case g.rng.Intn(2) == 0:
		g.ifOnly()
	default:
		g.ifElse()
	}
}

// mergeExpr emits the Figure 22 shape: both branch arms push a value that
// a single consumer pops after the join — a DataFlow merge, where one
// consumer side resolves to two producers.
func (g *genState) mergeExpr() {
	alt := g.label("melse")
	end := g.label("mend")
	x := g.intLocal()
	g.a.ILoad(x).PushInt(int64(g.rng.Intn(64))).
		Branch(cmpOps[g.rng.Intn(len(cmpOps))], alt)
	g.a.ILoad(x).ILoad(g.intLocal()).Op(bytecode.Iadd)
	g.a.Branch(bytecode.Goto, end)
	g.a.Label(alt)
	g.a.ILoad(x).PushInt(int64(1 + g.rng.Intn(7))).Op(bytecode.Imul)
	g.a.Label(end)
	g.a.IStore(g.intLocal())
}

// splitConsume pushes one value before a split and consumes it with a
// different instruction in each arm — giving the producer a fan-out of two
// (the multi-consumer capability TRIPS needed move instructions for).
func (g *genState) splitConsume() {
	alt := g.label("selse")
	end := g.label("send")
	g.a.ILoad(g.intLocal()) // the shared producer
	g.a.ILoad(g.intLocal()).PushInt(int64(g.rng.Intn(64))).
		Branch(cmpOps[g.rng.Intn(len(cmpOps))], alt)
	g.a.PushInt(3).Op(bytecode.Iadd).IStore(g.intLocal())
	g.a.Branch(bytecode.Goto, end)
	g.a.Label(alt)
	g.a.PushInt(5).Op(bytecode.Ixor).IStore(g.intLocal())
	g.a.Label(end)
}

var cmpOps = []bytecode.Opcode{
	bytecode.IfIcmpeq, bytecode.IfIcmpne, bytecode.IfIcmplt,
	bytecode.IfIcmpge, bytecode.IfIcmpgt, bytecode.IfIcmple,
}

func (g *genState) ifOnly() {
	skip := g.label("skip")
	g.a.ILoad(g.intLocal()).PushInt(int64(g.rng.Intn(64))).
		Branch(cmpOps[g.rng.Intn(len(cmpOps))], skip)
	g.body(1 + g.rng.Intn(2))
	g.a.Label(skip)
}

func (g *genState) ifElse() {
	alt := g.label("else")
	end := g.label("end")
	g.a.ILoad(g.intLocal()).PushInt(int64(g.rng.Intn(64))).
		Branch(cmpOps[g.rng.Intn(len(cmpOps))], alt)
	g.body(1 + g.rng.Intn(2))
	g.a.Branch(bytecode.Goto, end)
	g.a.Label(alt)
	g.body(1 + g.rng.Intn(2))
	g.a.Label(end)
}

// loop emits a counted loop with 2–12 iterations.
func (g *genState) loop() {
	cnt := g.scratch + g.depth
	top := g.label("loop")
	done := g.label("done")
	iters := 2 + g.rng.Intn(11)
	g.a.PushInt(0).IStore(cnt)
	g.a.Label(top)
	g.a.ILoad(cnt).PushInt(int64(iters)).Branch(bytecode.IfIcmpge, done)
	g.depth++
	g.body(1 + g.rng.Intn(3))
	g.depth--
	g.a.Iinc(cnt, 1)
	g.a.Branch(bytecode.Goto, top)
	g.a.Label(done)
}

// body emits n segments inside a control construct. Nested control is
// allowed but bounded: loops to depth 2, and conditionals anywhere (all
// segments are stack-neutral, so merges stay consistent).
func (g *genState) body(n int) {
	for i := 0; i < n; i++ {
		if g.rng.Intn(8) == 0 {
			if g.depth < 2 && g.rng.Intn(4) == 0 {
				g.loop()
			} else {
				g.ifOnly()
			}
			continue
		}
		total := g.prof.arith + g.prof.float + g.prof.storage
		r := g.rng.Intn(total)
		switch {
		case r < g.prof.arith:
			g.intExpr()
		case r < g.prof.arith+g.prof.float:
			g.floatExpr()
		default:
			g.storageOp()
		}
	}
}
