package workload

import (
	"fmt"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

// LZW parameters matching the classic LZC layout used by the SPEC compress
// benchmarks: open-addressed hash table with secondary probing.
const (
	lzwHsize   = 69001
	lzwHshift  = 6
	lzwBitsSh  = 16
	lzwMaxCode = 1 << 16
	lzwFirst   = 256
)

// CompressClass builds the Compressor/Decompressor/Input_Buffer analog —
// compress(), output(), decompress() and getbyte() are the top-4 methods of
// both _201_compress and compress (Tables 3–4).
//
// State is carried in arrays rather than object fields so the methods stay
// pure ByteCode kernels: cursor cells live at index 0 of the in/out arrays.
func CompressClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	cHsize := pool.AddInt(lzwHsize)
	cMaxCode := pool.AddInt(lzwMaxCode)
	getbyteRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "spec/benchmarks/compress/Compressor", Name: "getbyte",
		Argc: 1, ReturnsValue: true})
	outputRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "spec/benchmarks/compress/Compressor", Name: "output", Argc: 2})

	// int getbyte(int[] in): in[0] is the read cursor (initially 1).
	// locals: 0=in 1=pos 2=v
	getbyte := build(pool, methodSpec{
		Name: "getbyte", Argc: 1, Returns: true, MaxLocals: 3,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Iconst0).Op(bytecode.Iaload).IStore(1).
			ILoad(1).ALoad(0).Op(bytecode.Arraylength).Branch(bytecode.IfIcmplt, "ok").
			Op(bytecode.IconstM1).Op(bytecode.Ireturn).
			Label("ok").
			ALoad(0).ILoad(1).Op(bytecode.Iaload).IStore(2).
			ALoad(0).Op(bytecode.Iconst0).ILoad(1).Op(bytecode.Iconst1).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			ILoad(2).Op(bytecode.Ireturn)
	})

	// void output(int[] out, int code): out[0] is the write cursor.
	// locals: 0=out 1=code 2=pos
	output := build(pool, methodSpec{
		Name: "output", Argc: 2, MaxLocals: 3,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Iconst0).Op(bytecode.Iaload).IStore(2).
			ALoad(0).ILoad(2).ILoad(1).Op(bytecode.Iastore).
			ALoad(0).Op(bytecode.Iconst0).ILoad(2).Op(bytecode.Iconst1).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			Op(bytecode.Return)
	})

	// void compress(int[] in, int[] out, int[] htab, int[] codetab)
	// locals: 0=in 1=out 2=htab 3=codetab 4=ent 5=c 6=fcode 7=i 8=disp
	//         9=free_ent
	compress := build(pool, methodSpec{
		Name: "compress", Argc: 4, MaxLocals: 10,
	}, func(a *bytecode.Assembler) {
		a.PushInt(lzwFirst).IStore(9).
			ALoad(0).Call(bytecode.Invokestatic, getbyteRef, 1, true).IStore(4).
			ILoad(4).Branch(bytecode.Ifge, "outer").
			Op(bytecode.Return). // empty input
			Label("outer").
			ALoad(0).Call(bytecode.Invokestatic, getbyteRef, 1, true).IStore(5).
			ILoad(5).Op(bytecode.IconstM1).Branch(bytecode.IfIcmpeq, "flush").
			// fcode = (c << 16) + ent ; i = (c << hshift) ^ ent
			ILoad(5).PushInt(lzwBitsSh).Op(bytecode.Ishl).ILoad(4).Op(bytecode.Iadd).IStore(6).
			ILoad(5).PushInt(lzwHshift).Op(bytecode.Ishl).ILoad(4).Op(bytecode.Ixor).IStore(7).
			// direct hit?
			ALoad(2).ILoad(7).Op(bytecode.Iaload).ILoad(6).Branch(bytecode.IfIcmpne, "nomatch").
			ALoad(3).ILoad(7).Op(bytecode.Iaload).IStore(4).
			Branch(bytecode.Goto, "outer").
			Label("nomatch").
			// empty slot?
			ALoad(2).ILoad(7).Op(bytecode.Iaload).Branch(bytecode.Iflt, "empty").
			// secondary probe: disp = hsize - i (or 1 when i == 0)
			Ldc(cHsize, false).ILoad(7).Op(bytecode.Isub).IStore(8).
			ILoad(7).Branch(bytecode.Ifne, "probe").
			Op(bytecode.Iconst1).IStore(8).
			Label("probe").
			ILoad(7).ILoad(8).Op(bytecode.Isub).IStore(7).
			ILoad(7).Branch(bytecode.Ifge, "noadjust").
			ILoad(7).Ldc(cHsize, false).Op(bytecode.Iadd).IStore(7).
			Label("noadjust").
			ALoad(2).ILoad(7).Op(bytecode.Iaload).ILoad(6).Branch(bytecode.IfIcmpne, "notfound").
			ALoad(3).ILoad(7).Op(bytecode.Iaload).IStore(4).
			Branch(bytecode.Goto, "outer").
			Label("notfound").
			ALoad(2).ILoad(7).Op(bytecode.Iaload).Branch(bytecode.Ifge, "probe").
			Label("empty").
			// emit current prefix, start new entry
			ALoad(1).ILoad(4).Call(bytecode.Invokestatic, outputRef, 2, false).
			ILoad(5).IStore(4).
			ILoad(9).Ldc(cMaxCode, false).Branch(bytecode.IfIcmpge, "skipadd").
			ALoad(3).ILoad(7).ILoad(9).Op(bytecode.Iastore).
			ALoad(2).ILoad(7).ILoad(6).Op(bytecode.Iastore).
			Iinc(9, 1).
			Label("skipadd").
			Branch(bytecode.Goto, "outer").
			Label("flush").
			ALoad(1).ILoad(4).Call(bytecode.Invokestatic, outputRef, 2, false).
			Op(bytecode.Return)
	})

	// void decompress(int[] in, int[] out, int[] prefix, int[] suffix,
	//                 int[] stack)
	// locals: 0=in 1=out 2=prefix 3=suffix 4=stack 5=finchar 6=oldcode
	//         7=code 8=incode 9=sp 10=free
	decompress := build(pool, methodSpec{
		Name: "decompress", Argc: 5, MaxLocals: 11,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Call(bytecode.Invokestatic, getbyteRef, 1, true).IStore(6).
			ILoad(6).Branch(bytecode.Ifge, "init").
			Op(bytecode.Return).
			Label("init").
			ILoad(6).IStore(5).
			ALoad(1).ILoad(5).Call(bytecode.Invokestatic, outputRef, 2, false).
			PushInt(lzwFirst).IStore(10).
			Label("loop").
			ALoad(0).Call(bytecode.Invokestatic, getbyteRef, 1, true).IStore(7).
			ILoad(7).Branch(bytecode.Ifge, "cont").
			Op(bytecode.Return).
			Label("cont").
			ILoad(7).IStore(8).
			PushInt(0).IStore(9).
			// KwKwK case: code not yet defined
			ILoad(7).ILoad(10).Branch(bytecode.IfIcmplt, "defined").
			ALoad(4).ILoad(9).ILoad(5).Op(bytecode.Iastore).
			Iinc(9, 1).
			ILoad(6).IStore(7).
			Label("defined").
			// unwind the chain onto the stack
			Label("unwind").
			ILoad(7).PushInt(lzwFirst).Branch(bytecode.IfIcmplt, "unwound").
			ALoad(4).ILoad(9).ALoad(3).ILoad(7).Op(bytecode.Iaload).Op(bytecode.Iastore).
			Iinc(9, 1).
			ALoad(2).ILoad(7).Op(bytecode.Iaload).IStore(7).
			Branch(bytecode.Goto, "unwind").
			Label("unwound").
			ILoad(7).IStore(5).
			ALoad(4).ILoad(9).ILoad(5).Op(bytecode.Iastore).
			Iinc(9, 1).
			// emit in reverse
			Label("emit").
			ILoad(9).Branch(bytecode.Ifle, "emitted").
			Iinc(9, -1).
			ALoad(1).ALoad(4).ILoad(9).Op(bytecode.Iaload).
			Call(bytecode.Invokestatic, outputRef, 2, false).
			Branch(bytecode.Goto, "emit").
			Label("emitted").
			// define the next code
			ILoad(10).ALoad(2).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "nodef").
			ALoad(2).ILoad(10).ILoad(6).Op(bytecode.Iastore).
			ALoad(3).ILoad(10).ILoad(5).Op(bytecode.Iastore).
			Iinc(10, 1).
			Label("nodef").
			ILoad(8).IStore(6).
			Branch(bytecode.Goto, "loop")
	})

	c := classfile.NewClass("spec/benchmarks/compress/Compressor")
	c.Add(getbyte).Add(output).Add(compress).Add(decompress)
	return c
}

// CompressInput builds the cursor-prefixed input array the compress kernels
// consume.
func CompressInput(vm *jvm.Machine, data []byte) jvm.Value {
	buf := make([]int64, len(data)+1)
	buf[0] = 1 // read cursor
	for i, b := range data {
		buf[i+1] = int64(b)
	}
	return vm.NewIntArray(buf)
}

// CompressOutputData extracts the emitted codes from an output array.
func CompressOutputData(vm *jvm.Machine, out jvm.Value) ([]int64, error) {
	raw, err := vm.IntArrayData(out)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 || raw[0] < 1 || raw[0] > int64(len(raw)) {
		return nil, fmt.Errorf("workload: malformed output cursor")
	}
	return raw[1:raw[0]], nil
}

// CompressSuites returns the SpecJvm2008 "compress" and SpecJvm98
// "_201_compress" suites (both eras exercise the same kernels, as in the
// dissertation's Tables 3 and 4).
func CompressSuites() []*Suite {
	mk := func(name, era string) *Suite {
		s := &Suite{
			Name: name, Era: era,
			Classes: []*classfile.Class{CompressClass()},
			HotMethods: []string{
				"spec/benchmarks/compress/Compressor.compress/4",
				"spec/benchmarks/compress/Compressor.decompress/5",
				"spec/benchmarks/compress/Compressor.output/2",
				"spec/benchmarks/compress/Compressor.getbyte/1",
			},
		}
		s.Run = func(vm *jvm.Machine, scale int) error {
			compress := s.method("spec/benchmarks/compress/Compressor", "compress")
			decompress := s.method("spec/benchmarks/compress/Compressor", "decompress")

			data := SyntheticText(4096 * scale)
			in := CompressInput(vm, data)
			out := vm.NewIntArray(make([]int64, len(data)+2))
			if err := setCursor(vm, out); err != nil {
				return err
			}
			htab := vm.NewIntArray(filled(lzwHsize, -1))
			codetab := vm.NewIntArray(make([]int64, lzwHsize))
			if _, err := vm.Invoke(compress, in, out, htab, codetab); err != nil {
				return err
			}

			codes, err := CompressOutputData(vm, out)
			if err != nil {
				return err
			}
			if len(codes) >= len(data) {
				return fmt.Errorf("%s: no compression (%d codes for %d bytes)", name, len(codes), len(data))
			}

			// Round trip through the decompressor.
			cin := make([]int64, len(codes)+1)
			cin[0] = 1
			copy(cin[1:], codes)
			codesArr := vm.NewIntArray(cin)
			plain := vm.NewIntArray(make([]int64, len(data)+2))
			if err := setCursor(vm, plain); err != nil {
				return err
			}
			prefix := vm.NewIntArray(make([]int64, lzwMaxCode))
			suffix := vm.NewIntArray(make([]int64, lzwMaxCode))
			stack := vm.NewIntArray(make([]int64, lzwMaxCode))
			if _, err := vm.Invoke(decompress, codesArr, plain, prefix, suffix, stack); err != nil {
				return err
			}
			got, err := CompressOutputData(vm, plain)
			if err != nil {
				return err
			}
			if len(got) != len(data) {
				return fmt.Errorf("%s: round trip length %d != %d", name, len(got), len(data))
			}
			for i := range data {
				if got[i] != int64(data[i]) {
					return fmt.Errorf("%s: round trip diverges at byte %d", name, i)
				}
			}
			return nil
		}
		return s
	}
	return []*Suite{
		mk("compress", "SpecJvm2008"),
		mk("_201_compress", "SpecJvm98"),
	}
}

func setCursor(vm *jvm.Machine, arr jvm.Value) error {
	obj, err := vm.Heap.Get(arr)
	if err != nil {
		return err
	}
	obj.Array[0] = jvm.Int(1)
	return nil
}

func filled(n int, v int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// SyntheticText produces deterministic, compressible pseudo-text.
func SyntheticText(n int) []byte {
	words := []string{"the ", "quick ", "brown ", "fox ", "jumps ", "over ",
		"lazy ", "dog ", "data ", "flow ", "token ", "fabric "}
	out := make([]byte, 0, n)
	state := uint32(2463534242)
	for len(out) < n {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		out = append(out, words[state%uint32(len(words))]...)
	}
	return out[:n]
}
