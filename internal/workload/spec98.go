package workload

import (
	"fmt"
	"math"
	"math/rand"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

// DatabaseClass builds the _209_db analog: String.compareTo over char
// arrays and Database.shell_sort (41% and 27% of _209_db, Table 4).
func DatabaseClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	fCmp := pool.AddFieldRef(classfile.FieldRef{
		Class: "spec/benchmarks/_209_db/Database", Name: "comparisons", Static: true, Slot: 0})

	// int compareTo(int[] a, int[] b): lexicographic compare, Java
	// String.compareTo semantics, bumping the database's comparison
	// counter field (giving the 98-era corpus its storage-instruction
	// traffic for the Table 5 _Quick analysis).
	// locals: 0=a 1=b 2=i 3=n 4=d
	compareTo := build(pool, methodSpec{
		Name: "compareTo", Argc: 2, Returns: true, MaxLocals: 5,
	}, func(a *bytecode.Assembler) {
		a.Field(bytecode.Getstatic, fCmp).Op(bytecode.Iconst1).Op(bytecode.Iadd).
			Field(bytecode.Putstatic, fCmp).
			ALoad(0).Op(bytecode.Arraylength).IStore(3).
			ALoad(1).Op(bytecode.Arraylength).ILoad(3).
			Branch(bytecode.IfIcmpge, "minok").
			ALoad(1).Op(bytecode.Arraylength).IStore(3).
			Label("minok").
			PushInt(0).IStore(2).
			Label("loop").
			ILoad(2).ILoad(3).Branch(bytecode.IfIcmpge, "tail").
			ALoad(0).ILoad(2).Op(bytecode.Iaload).
			ALoad(1).ILoad(2).Op(bytecode.Iaload).
			Op(bytecode.Isub).IStore(4).
			ILoad(4).Branch(bytecode.Ifeq, "same").
			ILoad(4).Op(bytecode.Ireturn).
			Label("same").
			Iinc(2, 1).
			Branch(bytecode.Goto, "loop").
			Label("tail").
			ALoad(0).Op(bytecode.Arraylength).
			ALoad(1).Op(bytecode.Arraylength).
			Op(bytecode.Isub).
			Op(bytecode.Ireturn)
	})

	// void shell_sort(int[] arr): gap-halving insertion sort.
	// locals: 0=arr 1=n 2=gap 3=i 4=j 5=tmp
	shellSort := build(pool, methodSpec{
		Name: "shell_sort", Argc: 1, MaxLocals: 6,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).IStore(1).
			ILoad(1).Op(bytecode.Iconst2).Op(bytecode.Idiv).IStore(2).
			Label("gaploop").
			ILoad(2).Branch(bytecode.Ifle, "done").
			ILoad(2).IStore(3).
			Label("iloop").
			ILoad(3).ILoad(1).Branch(bytecode.IfIcmpge, "idone").
			ALoad(0).ILoad(3).Op(bytecode.Iaload).IStore(5).
			ILoad(3).IStore(4).
			Label("jloop").
			ILoad(4).ILoad(2).Branch(bytecode.IfIcmplt, "insert").
			ALoad(0).ILoad(4).ILoad(2).Op(bytecode.Isub).Op(bytecode.Iaload).
			ILoad(5).Branch(bytecode.IfIcmple, "insert").
			ALoad(0).ILoad(4).
			ALoad(0).ILoad(4).ILoad(2).Op(bytecode.Isub).Op(bytecode.Iaload).
			Op(bytecode.Iastore).
			ILoad(4).ILoad(2).Op(bytecode.Isub).IStore(4).
			Branch(bytecode.Goto, "jloop").
			Label("insert").
			ALoad(0).ILoad(4).ILoad(5).Op(bytecode.Iastore).
			Iinc(3, 1).
			Branch(bytecode.Goto, "iloop").
			Label("idone").
			ILoad(2).Op(bytecode.Iconst2).Op(bytecode.Idiv).IStore(2).
			Branch(bytecode.Goto, "gaploop").
			Label("done").
			Op(bytecode.Return)
	})

	c := classfile.NewClass("spec/benchmarks/_209_db/Database")
	c.StaticSlots = 1
	c.Add(compareTo).Add(shellSort)
	return c
}

// MpegClass builds the _222_mpegaudio "q.l" analog: a synthesis-filter
// multiply-accumulate kernel, 43% of the benchmark (Table 4). The paper's
// q.l is a windowed subband MAC; this is the same shape.
func MpegClass() *classfile.Class {
	pool := classfile.NewConstantPool()

	// void l(double[] v, double[] window, double[] y)
	// y[i] = Σ_j window[j] * v[(i + (j<<5)) & (v.length-1)]
	// locals: 0=v 1=window 2=y 3=mask 4=i 5=j 6=sum
	lMethod := build(pool, methodSpec{
		Name: "l", Argc: 3, MaxLocals: 7,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).Op(bytecode.Iconst1).Op(bytecode.Isub).IStore(3).
			PushInt(0).IStore(4).
			Label("iloop").
			ILoad(4).ALoad(2).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "idone").
			Op(bytecode.Dconst0).DStore(6).
			PushInt(0).IStore(5).
			Label("jloop").
			ILoad(5).ALoad(1).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "jdone").
			DLoad(6).
			ALoad(1).ILoad(5).Op(bytecode.Daload).
			ALoad(0).
			ILoad(4).ILoad(5).PushInt(5).Op(bytecode.Ishl).Op(bytecode.Iadd).
			ILoad(3).Op(bytecode.Iand).
			Op(bytecode.Daload).
			Op(bytecode.Dmul).Op(bytecode.Dadd).DStore(6).
			Iinc(5, 1).
			Branch(bytecode.Goto, "jloop").
			Label("jdone").
			ALoad(2).ILoad(4).DLoad(6).Op(bytecode.Dastore).
			Iinc(4, 1).
			Branch(bytecode.Goto, "iloop").
			Label("idone").
			Op(bytecode.Return)
	})

	c := classfile.NewClass("spec/benchmarks/_222_mpegaudio/q")
	c.Add(lMethod)
	return c
}

// RaytraceClass builds the _227_mtrt OctNode.Intersect analog: a
// float-heavy, branch-heavy nearest-sphere intersection kernel (Table 4).
func RaytraceClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	sqrtRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "java/lang/Math", Name: "sqrt", Argc: 1, ReturnsValue: true})
	cBig := pool.AddDouble(1e30)
	cEps := pool.AddDouble(1e-9)

	// int Intersect(double[] ray /*ox,oy,oz,dx,dy,dz*/,
	//               double[] spheres /*cx,cy,cz,r × n*/)
	// returns index of nearest hit sphere, or -1.
	// locals: 0=ray 1=spheres 2=best 3=i 4=bestT
	//         5=ocx 6=ocy 7=ocz 8=b 9=c 10=disc 11=t
	intersect := build(pool, methodSpec{
		Name: "Intersect", Argc: 2, Returns: true, MaxLocals: 12,
	}, func(a *bytecode.Assembler) {
		a.PushInt(-1).IStore(2).
			Ldc(cBig, true).DStore(4).
			PushInt(0).IStore(3).
			Label("loop").
			ILoad(3).ALoad(1).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "done").
			// oc = center - origin
			ALoad(1).ILoad(3).Op(bytecode.Daload).
			ALoad(0).Op(bytecode.Iconst0).Op(bytecode.Daload).Op(bytecode.Dsub).DStore(5).
			ALoad(1).ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).
			ALoad(0).Op(bytecode.Iconst1).Op(bytecode.Daload).Op(bytecode.Dsub).DStore(6).
			ALoad(1).ILoad(3).Op(bytecode.Iconst2).Op(bytecode.Iadd).Op(bytecode.Daload).
			ALoad(0).Op(bytecode.Iconst2).Op(bytecode.Daload).Op(bytecode.Dsub).DStore(7).
			// b = oc · dir
			DLoad(5).ALoad(0).Op(bytecode.Iconst3).Op(bytecode.Daload).Op(bytecode.Dmul).
			DLoad(6).ALoad(0).Op(bytecode.Iconst4).Op(bytecode.Daload).Op(bytecode.Dmul).
			Op(bytecode.Dadd).
			DLoad(7).ALoad(0).Op(bytecode.Iconst5).Op(bytecode.Daload).Op(bytecode.Dmul).
			Op(bytecode.Dadd).DStore(8).
			// c = oc·oc - r²
			DLoad(5).DLoad(5).Op(bytecode.Dmul).
			DLoad(6).DLoad(6).Op(bytecode.Dmul).Op(bytecode.Dadd).
			DLoad(7).DLoad(7).Op(bytecode.Dmul).Op(bytecode.Dadd).
			ALoad(1).ILoad(3).Op(bytecode.Iconst3).Op(bytecode.Iadd).Op(bytecode.Daload).
			ALoad(1).ILoad(3).Op(bytecode.Iconst3).Op(bytecode.Iadd).Op(bytecode.Daload).
			Op(bytecode.Dmul).Op(bytecode.Dsub).DStore(9).
			// disc = b² - c
			DLoad(8).DLoad(8).Op(bytecode.Dmul).DLoad(9).Op(bytecode.Dsub).DStore(10).
			DLoad(10).Op(bytecode.Dconst0).Op(bytecode.Dcmpl).Branch(bytecode.Iflt, "miss").
			// t = b - sqrt(disc)
			DLoad(8).DLoad(10).Call(bytecode.Invokestatic, sqrtRef, 1, true).
			Op(bytecode.Dsub).DStore(11).
			// hit must be in front of the origin and nearer than best
			DLoad(11).Ldc(cEps, true).Op(bytecode.Dcmpl).Branch(bytecode.Ifle, "miss").
			DLoad(11).DLoad(4).Op(bytecode.Dcmpl).Branch(bytecode.Ifge, "miss").
			DLoad(11).DStore(4).
			ILoad(3).Op(bytecode.Iconst4).Op(bytecode.Idiv).IStore(2).
			Label("miss").
			Iinc(3, 4).
			Branch(bytecode.Goto, "loop").
			Label("done").
			ILoad(2).Op(bytecode.Ireturn)
	})

	c := classfile.NewClass("spec/benchmarks/_205_raytrace/OctNode")
	c.Add(intersect)
	return c
}

// JackClass builds the _228_jack token-scanner analog. It contains a
// lookupswitch, making it one of the methods the simulation excludes from
// fabric residency (Section 6.3, Special Instructions) — exactly as the
// dissertation's simulation did.
func JackClass() *classfile.Class {
	pool := classfile.NewConstantPool()

	// int scan(int[] input): counts tokens; character classes are switched
	// on. Classes: 0 space, 1 letter, 2 digit, 3 punct (precomputed by the
	// driver, as the real tokenizer's table lookup would).
	// locals: 0=input 1=i 2=tokens 3=inTok 4=cls
	scan := build(pool, methodSpec{
		Name: "getNextTokenFromStream", Argc: 1, Returns: true, MaxLocals: 5,
	}, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			PushInt(0).IStore(2).
			PushInt(0).IStore(3).
			Label("loop").
			ILoad(1).ALoad(0).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "done").
			ALoad(0).ILoad(1).Op(bytecode.Iaload).IStore(4).
			ILoad(4).
			Switch(map[int64]string{
				0: "space",
				1: "word",
				2: "word",
				3: "punct",
			}, "space").
			Label("space").
			PushInt(0).IStore(3).
			Branch(bytecode.Goto, "next").
			Label("word").
			ILoad(3).Branch(bytecode.Ifne, "next").
			Op(bytecode.Iconst1).IStore(3).
			Iinc(2, 1).
			Branch(bytecode.Goto, "next").
			Label("punct").
			PushInt(0).IStore(3).
			Iinc(2, 1).
			Label("next").
			Iinc(1, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			ILoad(2).Op(bytecode.Ireturn)
	})

	c := classfile.NewClass("spec/benchmarks/_228_jack/TokenEngine")
	c.Add(scan)
	return c
}

// Spec98Suites returns the SpecJvm98-era analog suites (beyond
// _201_compress, which CompressSuites provides).
func Spec98Suites() []*Suite {
	db := &Suite{
		Name: "_209_db", Era: "SpecJvm98",
		Classes: []*classfile.Class{DatabaseClass()},
		HotMethods: []string{
			"spec/benchmarks/_209_db/Database.compareTo/2",
			"spec/benchmarks/_209_db/Database.shell_sort/1",
		},
	}
	db.Run = func(vm *jvm.Machine, scale int) error {
		compareTo := db.method("spec/benchmarks/_209_db/Database", "compareTo")
		shellSort := db.method("spec/benchmarks/_209_db/Database", "shell_sort")
		rng := rand.New(rand.NewSource(55))

		// Sort several arrays, then run a compare-heavy pass as the
		// database's shell_sort/compareTo pairing does.
		for it := 0; it < scale; it++ {
			data := make([]int64, 200+100*it)
			for i := range data {
				data[i] = int64(rng.Intn(1000))
			}
			arr := vm.NewIntArray(data)
			if _, err := vm.Invoke(shellSort, arr); err != nil {
				return err
			}
			got, err := vm.IntArrayData(arr)
			if err != nil {
				return err
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] > got[i] {
					return fmt.Errorf("_209_db: not sorted at %d", i)
				}
			}
		}
		keys := make([]jvm.Value, 24)
		for i := range keys {
			k := make([]int64, 8+rng.Intn(8))
			for j := range k {
				k[j] = int64('a' + rng.Intn(26))
			}
			keys[i] = vm.NewIntArray(k)
		}
		for it := 0; it < 40*scale; it++ {
			a := keys[rng.Intn(len(keys))]
			b := keys[rng.Intn(len(keys))]
			if _, err := vm.Invoke(compareTo, a, b); err != nil {
				return err
			}
		}
		return nil
	}

	mpeg := &Suite{
		Name: "_222_mpegaudio", Era: "SpecJvm98",
		Classes:    []*classfile.Class{MpegClass()},
		HotMethods: []string{"spec/benchmarks/_222_mpegaudio/q.l/3"},
	}
	mpeg.Run = func(vm *jvm.Machine, scale int) error {
		l := mpeg.method("spec/benchmarks/_222_mpegaudio/q", "l")
		rng := rand.New(rand.NewSource(66))
		v := make([]float64, 512)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		window := make([]float64, 16)
		for i := range window {
			window[i] = rng.Float64()
		}
		va := vm.NewDoubleArray(v)
		wa := vm.NewDoubleArray(window)
		y := vm.NewDoubleArray(make([]float64, 32))
		for it := 0; it < 8*scale; it++ {
			if _, err := vm.Invoke(l, va, wa, y); err != nil {
				return err
			}
		}
		return nil
	}

	jess := &Suite{
		Name: "_202_jess", Era: "SpecJvm98",
		Classes: []*classfile.Class{JessClass()},
		HotMethods: []string{
			"spec/benchmarks/_202_jess/jess/Token.data_equals/2",
			"spec/benchmarks/_202_jess/jess/Token.runTestsVaryRight/3",
		},
	}
	jess.Run = func(vm *jvm.Machine, scale int) error {
		runTests := jess.method("spec/benchmarks/_202_jess/jess/Token", "runTestsVaryRight")
		rng := rand.New(rand.NewSource(88))
		tokens := make([]jvm.Value, 16)
		for i := range tokens {
			data := make([]int64, 6)
			for j := range data {
				data[j] = int64(rng.Intn(4))
			}
			tokens[i] = vm.NewIntArray(data)
		}
		for it := 0; it < 30*scale; it++ {
			a := tokens[rng.Intn(len(tokens))]
			b := tokens[rng.Intn(len(tokens))]
			if _, err := vm.Invoke(runTests, a, b, jvm.Int(8)); err != nil {
				return err
			}
		}
		return nil
	}

	mtrt := &Suite{
		Name: "_227_mtrt", Era: "SpecJvm98",
		Classes: []*classfile.Class{RaytraceClass(), OctNodeClass()},
		HotMethods: []string{
			"spec/benchmarks/_205_raytrace/OctNode.Intersect/2",
			"spec/benchmarks/_205_raytrace/OctNodeTree.FindTreeNode/2",
		},
	}
	mtrt.Run = func(vm *jvm.Machine, scale int) error {
		intersect := mtrt.method("spec/benchmarks/_205_raytrace/OctNode", "Intersect")
		rng := rand.New(rand.NewSource(77))
		spheres := make([]float64, 4*40)
		for i := 0; i < len(spheres); i += 4 {
			spheres[i] = rng.Float64()*10 - 5
			spheres[i+1] = rng.Float64()*10 - 5
			spheres[i+2] = rng.Float64()*10 - 5
			spheres[i+3] = 0.2 + rng.Float64()
		}
		sa := vm.NewDoubleArray(spheres)
		hits := 0
		for it := 0; it < 60*scale; it++ {
			dx, dy, dz := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
			norm := 1.0 / mathHypot3(dx, dy, dz)
			ray := vm.NewDoubleArray([]float64{0, 0, -20, dx * norm, dy * norm, dz*norm + 1})
			res, err := vm.Invoke(intersect, ray, sa)
			if err != nil {
				return err
			}
			if res.I >= 0 {
				hits++
			}
		}
		if hits == 0 {
			return fmt.Errorf("_227_mtrt: no ray hit any sphere")
		}
		// Octree descent: every probe must land in the leaf the Go-side
		// reference octree predicts.
		find := mtrt.method("spec/benchmarks/_205_raytrace/OctNodeTree", "FindTreeNode")
		nodes, ref := BuildOctree(3)
		na := vm.NewDoubleArray(nodes)
		for it := 0; it < 30*scale; it++ {
			p := []float64{rng.Float64() * 16, rng.Float64() * 16, rng.Float64() * 16}
			res, err := vm.Invoke(find, na, vm.NewDoubleArray(p))
			if err != nil {
				return err
			}
			if want := ref(p); res.I != int64(want) {
				return fmt.Errorf("_227_mtrt: FindTreeNode(%v) = %d, want %d", p, res.I, want)
			}
		}
		return nil
	}

	jack := &Suite{
		Name: "_228_jack", Era: "SpecJvm98",
		Classes:    []*classfile.Class{JackClass()},
		HotMethods: []string{"spec/benchmarks/_228_jack/TokenEngine.getNextTokenFromStream/1"},
	}
	jack.Run = func(vm *jvm.Machine, scale int) error {
		scan := jack.method("spec/benchmarks/_228_jack/TokenEngine", "getNextTokenFromStream")
		text := SyntheticText(2048 * scale)
		classes := make([]int64, len(text))
		for i, b := range text {
			switch {
			case b == ' ':
				classes[i] = 0
			case b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z':
				classes[i] = 1
			case b >= '0' && b <= '9':
				classes[i] = 2
			default:
				classes[i] = 3
			}
		}
		res, err := vm.Invoke(scan, vm.NewIntArray(classes))
		if err != nil {
			return err
		}
		if res.I <= 0 {
			return fmt.Errorf("_228_jack: scanned %d tokens", res.I)
		}
		return nil
	}

	return []*Suite{db, jess, mpeg, mtrt, jack}
}

func mathHypot3(x, y, z float64) float64 {
	s := math.Sqrt(x*x + y*y + z*z)
	if s == 0 {
		return 1
	}
	return s
}

// JessClass builds the _202_jess analogs: Token.data_equals and
// ValueVector.equals (Table 4's hot comparison methods) — early-exit array
// comparisons.
func JessClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	deRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "spec/benchmarks/_202_jess/jess/Token", Name: "data_equals",
		Argc: 2, ReturnsValue: true})

	// int data_equals(int[] a, int[] b): 1 when element-wise equal.
	// locals: 0=a 1=b 2=i
	dataEquals := build(pool, methodSpec{
		Name: "data_equals", Argc: 2, Returns: true, MaxLocals: 3,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).
			ALoad(1).Op(bytecode.Arraylength).
			Branch(bytecode.IfIcmpeq, "scan").
			PushInt(0).Op(bytecode.Ireturn).
			Label("scan").
			PushInt(0).IStore(2).
			Label("loop").
			ILoad(2).ALoad(0).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "eq").
			ALoad(0).ILoad(2).Op(bytecode.Iaload).
			ALoad(1).ILoad(2).Op(bytecode.Iaload).
			Branch(bytecode.IfIcmpeq, "next").
			PushInt(0).Op(bytecode.Ireturn).
			Label("next").
			Iinc(2, 1).
			Branch(bytecode.Goto, "loop").
			Label("eq").
			PushInt(1).Op(bytecode.Ireturn)
	})

	// int equals(int[][] rows..., flattened): runTests-style loop calling
	// data_equals over a window (locals: 0=a 1=b 2=w 3=i 4=hits).
	runTests := build(pool, methodSpec{
		Name: "runTestsVaryRight", Argc: 3, Returns: true, MaxLocals: 5,
	}, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(4).
			PushInt(0).IStore(3).
			Label("loop").
			ILoad(3).ILoad(2).Branch(bytecode.IfIcmpge, "done").
			ALoad(0).ALoad(1).
			Call(bytecode.Invokestatic, deRef, 2, true).
			Branch(bytecode.Ifeq, "miss").
			Iinc(4, 1).
			Label("miss").
			Iinc(3, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			ILoad(4).Op(bytecode.Ireturn)
	})

	c := classfile.NewClass("spec/benchmarks/_202_jess/jess/Token")
	c.Add(dataEquals).Add(runTests)
	return c
}

// OctNodeClass builds the _227_mtrt FindTreeNode analog: point-in-box
// descent through a flattened octree (the pointer-chasing control flow of
// Table 4's FindTreeNode). Node i occupies nodes[14i..14i+14):
// min x/y/z, max x/y/z, then eight child indices (-1 = none).
func OctNodeClass() *classfile.Class {
	pool := classfile.NewConstantPool()

	// int FindTreeNode(double[] nodes, double[] p)
	// locals: 0=nodes 1=p 2=cur 3=k 4=d 5=child 6=base 7=childBase
	find := build(pool, methodSpec{
		Name: "FindTreeNode", Argc: 2, Returns: true, MaxLocals: 8,
	}, func(a *bytecode.Assembler) {
		a.
			// root containment check
			PushInt(0).IStore(4).
			Label("rootdims").
			ILoad(4).PushInt(3).Branch(bytecode.IfIcmpge, "descend").
			ALoad(1).ILoad(4).Op(bytecode.Daload).
			ALoad(0).ILoad(4).Op(bytecode.Daload).
			Op(bytecode.Dcmpl).Branch(bytecode.Iflt, "outside").
			ALoad(1).ILoad(4).Op(bytecode.Daload).
			ALoad(0).PushInt(3).ILoad(4).Op(bytecode.Iadd).Op(bytecode.Daload).
			Op(bytecode.Dcmpg).Branch(bytecode.Ifgt, "outside").
			Iinc(4, 1).
			Branch(bytecode.Goto, "rootdims").
			Label("outside").
			PushInt(-1).Op(bytecode.Ireturn).
			Label("descend").
			PushInt(0).IStore(2).
			Label("node").
			ILoad(2).PushInt(14).Op(bytecode.Imul).IStore(6).
			PushInt(0).IStore(3).
			Label("kids").
			ILoad(3).PushInt(8).Branch(bytecode.IfIcmpge, "leaf").
			// child = (int) nodes[base+6+k]
			ALoad(0).ILoad(6).PushInt(6).Op(bytecode.Iadd).ILoad(3).Op(bytecode.Iadd).
			Op(bytecode.Daload).Op(bytecode.D2i).IStore(5).
			ILoad(5).Branch(bytecode.Iflt, "nextkid").
			ILoad(5).PushInt(14).Op(bytecode.Imul).IStore(7).
			// is p inside the child box?
			PushInt(0).IStore(4).
			Label("dims").
			ILoad(4).PushInt(3).Branch(bytecode.IfIcmpge, "inside").
			ALoad(1).ILoad(4).Op(bytecode.Daload).
			ALoad(0).ILoad(7).ILoad(4).Op(bytecode.Iadd).Op(bytecode.Daload).
			Op(bytecode.Dcmpl).Branch(bytecode.Iflt, "nextkid").
			ALoad(1).ILoad(4).Op(bytecode.Daload).
			ALoad(0).ILoad(7).PushInt(3).Op(bytecode.Iadd).ILoad(4).Op(bytecode.Iadd).
			Op(bytecode.Daload).
			Op(bytecode.Dcmpg).Branch(bytecode.Ifgt, "nextkid").
			Iinc(4, 1).
			Branch(bytecode.Goto, "dims").
			Label("inside").
			ILoad(5).IStore(2).
			Branch(bytecode.Goto, "node").
			Label("nextkid").
			Iinc(3, 1).
			Branch(bytecode.Goto, "kids").
			Label("leaf").
			ILoad(2).Op(bytecode.Ireturn)
	})

	c := classfile.NewClass("spec/benchmarks/_205_raytrace/OctNodeTree")
	c.Add(find)
	return c
}

// BuildOctree constructs a flattened octree over [0,16)³ with the given
// depth, plus a Go-side reference descent for validation. Node i occupies
// nodes[14i..14i+14): min x/y/z, max x/y/z, eight child indices (-1 none).
func BuildOctree(depth int) (nodes []float64, find func(p []float64) int) {
	type box struct{ min, max [3]float64 }
	var boxes []box
	var kids [][8]int

	var build func(b box, d int) int
	build = func(b box, d int) int {
		idx := len(boxes)
		boxes = append(boxes, b)
		kids = append(kids, [8]int{-1, -1, -1, -1, -1, -1, -1, -1})
		if d == 0 {
			return idx
		}
		mid := [3]float64{
			(b.min[0] + b.max[0]) / 2,
			(b.min[1] + b.max[1]) / 2,
			(b.min[2] + b.max[2]) / 2,
		}
		for k := 0; k < 8; k++ {
			var c box
			for dim := 0; dim < 3; dim++ {
				if k&(1<<dim) == 0 {
					c.min[dim], c.max[dim] = b.min[dim], mid[dim]
				} else {
					c.min[dim], c.max[dim] = mid[dim], b.max[dim]
				}
			}
			child := build(c, d-1)
			kids[idx][k] = child
		}
		return idx
	}
	root := box{max: [3]float64{16, 16, 16}}
	build(root, depth)

	nodes = make([]float64, 14*len(boxes))
	for i, b := range boxes {
		base := 14 * i
		copy(nodes[base:], b.min[:])
		copy(nodes[base+3:], b.max[:])
		for k := 0; k < 8; k++ {
			nodes[base+6+k] = float64(kids[i][k])
		}
	}
	find = func(p []float64) int {
		inBox := func(i int) bool {
			b := boxes[i]
			for d := 0; d < 3; d++ {
				if p[d] < b.min[d] || p[d] > b.max[d] {
					return false
				}
			}
			return true
		}
		if !inBox(0) {
			return -1
		}
		cur := 0
	descend:
		for {
			for k := 0; k < 8; k++ {
				c := kids[cur][k]
				if c >= 0 && inBox(c) {
					cur = c
					continue descend
				}
			}
			return cur
		}
	}
	return nodes, find
}
