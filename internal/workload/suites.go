package workload

import (
	"javaflow/internal/classfile"
)

// AllSuites returns the complete benchmark roster: SciMark, crypto, both
// compress eras, and the SpecJvm98 analogs — the populations behind
// Tables 1–8 and 27–28.
func AllSuites() []*Suite {
	var out []*Suite
	out = append(out, SciMarkSuites()...)
	out = append(out, CryptoSuite())
	out = append(out, CompressSuites()...)
	out = append(out, Spec98Suites()...)
	return out
}

// SuitesByEra partitions AllSuites by benchmark era.
func SuitesByEra() (jvm2008, jvm98 []*Suite) {
	for _, s := range AllSuites() {
		if s.Era == "SpecJvm98" {
			jvm98 = append(jvm98, s)
		} else {
			jvm2008 = append(jvm2008, s)
		}
	}
	return jvm2008, jvm98
}

// Corpus assembles the full simulation population the Chapter-7 sweeps
// study: every named SPEC-analog method followed by the seeded generated
// corpus, methods within each generated class in generation order (Generate
// emits m0000, m0001, ... so insertion order is already signature order).
// Both experiments.Context and the jfserved daemon build their population
// here, so the two always agree method for method.
func Corpus(seed int64, genCount int) []*classfile.Method {
	methods := NamedMethods()
	for _, cls := range Generate(GenConfig{Seed: seed, Count: genCount}) {
		for _, n := range cls.MethodNames() {
			methods = append(methods, cls.Methods[n])
		}
	}
	return methods
}

// NamedMethods returns every hand-built SPEC-analog method, deduplicated by
// signature, in deterministic order.
func NamedMethods() []*classfile.Method {
	seen := make(map[string]bool)
	var out []*classfile.Method
	for _, s := range AllSuites() {
		for _, m := range s.AllMethods() {
			sig := m.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			out = append(out, m)
		}
	}
	return out
}
