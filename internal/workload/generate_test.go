package workload

import (
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 42, Count: 50})
	b := Generate(GenConfig{Seed: 42, Count: 50})
	ma, mb := flatten(a), flatten(b)
	if len(ma) != 50 || len(mb) != 50 {
		t.Fatalf("generated %d/%d methods, want 50", len(ma), len(mb))
	}
	for i := range ma {
		if len(ma[i].Code) != len(mb[i].Code) {
			t.Fatalf("method %d size differs: %d vs %d", i, len(ma[i].Code), len(mb[i].Code))
		}
		for j := range ma[i].Code {
			if ma[i].Code[j].Op != mb[i].Code[j].Op {
				t.Fatalf("method %d instr %d differs", i, j)
			}
		}
	}
	c := flatten(Generate(GenConfig{Seed: 43, Count: 50}))
	same := true
	for i := range ma {
		if len(ma[i].Code) != len(c[i].Code) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical size sequences")
	}
}

func flatten(classes []*classfile.Class) []*classfile.Method {
	var out []*classfile.Method
	for _, c := range classes {
		for _, n := range c.MethodNames() {
			out = append(out, c.Methods[n])
		}
	}
	return out
}

// TestCorpusDeterministicAcrossCalls pins the satellite fix: the same seed
// must yield an identical signature list on every call, with generated
// classes traversed in insertion order (which Generate guarantees is also
// lexical order).
func TestCorpusDeterministicAcrossCalls(t *testing.T) {
	a := Corpus(2014, 120)
	b := Corpus(2014, 120)
	if len(a) != len(b) {
		t.Fatalf("corpus lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Signature() != b[i].Signature() {
			t.Fatalf("corpus order diverges at %d: %s vs %s", i, a[i].Signature(), b[i].Signature())
		}
	}
	for _, c := range Generate(GenConfig{Seed: 2014, Count: 120}) {
		names := c.MethodNames()
		sorted := append([]string(nil), names...)
		sortStrings(sorted)
		for i := range names {
			if names[i] != sorted[i] {
				t.Fatalf("class %s insertion order is not lexical at %d: %s", c.Name, i, names[i])
			}
		}
	}
}

func TestGenerateAllVerifyAndRun(t *testing.T) {
	classes := Generate(GenConfig{Seed: 7, Count: 200})
	vm := jvm.NewMachine()
	vm.MaxSteps = 1 << 22
	for _, c := range classes {
		if err := vm.Register(c); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	for _, m := range flatten(classes) {
		if _, err := vm.Invoke(m); err != nil {
			t.Fatalf("%s: %v\n%s", m.Signature(), err, bytecode.Disassemble(m.Code))
		}
	}
}

func TestGenerateSizeDistribution(t *testing.T) {
	methods := flatten(Generate(GenConfig{Seed: 11, Count: 1000}))
	var tiny, bulk, large, huge int
	var sumBulk int
	for _, m := range methods {
		n := len(m.Code)
		switch {
		case n <= 10:
			tiny++
		case n < 1000:
			bulk++
			sumBulk += n
		case n < 1400+400:
			huge++
		}
		if n >= 200 && n < 1000 {
			large++
		}
	}
	if tiny < 200 || tiny > 600 {
		t.Errorf("tiny methods = %d, want a substantial sub-Filter-1 tail", tiny)
	}
	if bulk < 400 {
		t.Errorf("Filter-1 bulk = %d, want the majority", bulk)
	}
	mean := float64(sumBulk) / float64(bulk)
	if mean < 25 || mean > 110 {
		t.Errorf("Filter-1 mean size = %.1f, want in the vicinity of the paper's 56", mean)
	}
	if large == 0 {
		t.Error("no large (200-1000) methods generated")
	}
	if huge == 0 {
		t.Error("no >1000 methods generated (needed to exercise Filter 1's upper bound)")
	}
}

func TestGenerateBranchStatistics(t *testing.T) {
	methods := flatten(Generate(GenConfig{Seed: 13, Count: 500}))
	var fwd, back, inFilter int
	for _, m := range methods {
		n := len(m.Code)
		if n <= 10 || n >= 1000 {
			continue
		}
		inFilter++
		for i, in := range m.Code {
			if in.IsBranch() {
				if in.Target > i {
					fwd++
				} else {
					back++
				}
			}
		}
	}
	if inFilter == 0 {
		t.Fatal("no Filter-1 methods")
	}
	fAvg := float64(fwd) / float64(inFilter)
	bAvg := float64(back) / float64(inFilter)
	if fAvg < 1.0 || fAvg > 8.0 {
		t.Errorf("forward branches/method = %.2f, want near the paper's ~3", fAvg)
	}
	if bAvg < 0.1 || bAvg > 2.5 {
		t.Errorf("back branches/method = %.2f, want near the paper's ~0.6", bAvg)
	}
}

func TestGenerateStaticMixShape(t *testing.T) {
	methods := flatten(Generate(GenConfig{Seed: 17, Count: 500}))
	counts := make(map[bytecode.MixClass]int)
	total := 0
	for _, m := range methods {
		for _, in := range m.Code {
			counts[in.Group().Mix()]++
			total++
		}
	}
	pct := func(c bytecode.MixClass) float64 {
		return float64(counts[c]) / float64(total)
	}
	// Table 6's conclusion row: ~60% arith, ~10% float, ~10% control,
	// ~20% storage — with per-benchmark spreads of 50-91% arith. Allow
	// generous bands.
	if p := pct(bytecode.MixArith); p < 0.45 || p > 0.80 {
		t.Errorf("arith share = %.2f, want ~0.60", p)
	}
	if p := pct(bytecode.MixFloat); p < 0.04 || p > 0.25 {
		t.Errorf("float share = %.2f, want ~0.10", p)
	}
	if p := pct(bytecode.MixControl); p < 0.04 || p > 0.25 {
		t.Errorf("control share = %.2f, want ~0.10", p)
	}
	if p := pct(bytecode.MixStorage); p < 0.10 || p > 0.35 {
		t.Errorf("storage share = %.2f, want ~0.20", p)
	}
}
