package workload

import (
	"fmt"
	"math"
	"math/rand"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

// Random instance field slots (class scimark/utils/Random).
const (
	randFieldM = 0 // int[] m
	randFieldI = 1 // int i
	randFieldJ = 2 // int j
)

// randM1 and randM2 are the SciMark lagged-Fibonacci generator constants.
const (
	randM1 = (1 << 30) + ((1 << 30) - 1) // 2^31 - 1
	randM2 = 1 << 16
)

// RandomClass builds the scimark/utils/Random class whose nextDouble() is
// the single hottest method across the paper's SciMark benchmarks
// (Tables 3, 27; Figures 27–31 analyze exactly this method).
func RandomClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	fM := pool.AddFieldRef(classfile.FieldRef{Class: "scimark/utils/Random", Name: "m", Slot: randFieldM})
	fI := pool.AddFieldRef(classfile.FieldRef{Class: "scimark/utils/Random", Name: "i", Slot: randFieldI})
	fJ := pool.AddFieldRef(classfile.FieldRef{Class: "scimark/utils/Random", Name: "j", Slot: randFieldJ})
	cM1 := pool.AddInt(randM1)
	cDM1 := pool.AddDouble(1.0 / float64(randM1))

	// double nextDouble():
	//   k = m[i] - m[j]; if (k < 0) k += m1; m[j] = k;
	//   if (i == 0) i = 16; else i--;
	//   if (j == 0) j = 16; else j--;
	//   return dm1 * (double) k;
	nextDouble := build(pool, methodSpec{
		Name: "nextDouble", Instance: true, Returns: true, MaxLocals: 2,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Field(bytecode.Getfield, fM).
			ALoad(0).Field(bytecode.Getfield, fI).
			Op(bytecode.Iaload).
			ALoad(0).Field(bytecode.Getfield, fM).
			ALoad(0).Field(bytecode.Getfield, fJ).
			Op(bytecode.Iaload).
			Op(bytecode.Isub).
			IStore(1).
			ILoad(1).Branch(bytecode.Ifge, "nonneg").
			ILoad(1).Ldc(cM1, false).Op(bytecode.Iadd).IStore(1).
			Label("nonneg").
			ALoad(0).Field(bytecode.Getfield, fM).
			ALoad(0).Field(bytecode.Getfield, fJ).
			ILoad(1).
			Op(bytecode.Iastore).
			// i bookkeeping
			ALoad(0).Field(bytecode.Getfield, fI).
			Branch(bytecode.Ifne, "deci").
			ALoad(0).PushInt(16).Field(bytecode.Putfield, fI).
			Branch(bytecode.Goto, "jpart").
			Label("deci").
			ALoad(0).
			ALoad(0).Field(bytecode.Getfield, fI).Op(bytecode.Iconst1).Op(bytecode.Isub).
			Field(bytecode.Putfield, fI).
			Label("jpart").
			// j bookkeeping
			ALoad(0).Field(bytecode.Getfield, fJ).
			Branch(bytecode.Ifne, "decj").
			ALoad(0).PushInt(16).Field(bytecode.Putfield, fJ).
			Branch(bytecode.Goto, "ret").
			Label("decj").
			ALoad(0).
			ALoad(0).Field(bytecode.Getfield, fJ).Op(bytecode.Iconst1).Op(bytecode.Isub).
			Field(bytecode.Putfield, fJ).
			Label("ret").
			Ldc(cDM1, true).
			ILoad(1).Op(bytecode.I2d).
			Op(bytecode.Dmul).
			Op(bytecode.Dreturn)
	})

	c := classfile.NewClass("scimark/utils/Random")
	c.InstanceSlots = 3
	c.Add(nextDouble)
	return c
}

// NewRandom allocates and seeds a Random instance using the SciMark
// initialization algorithm, so nextDouble() streams match ReferenceRandom.
func NewRandom(vm *jvm.Machine, seed int64) (jvm.Value, error) {
	obj, err := vm.AllocInstance("scimark/utils/Random")
	if err != nil {
		return jvm.Null, err
	}
	m := seedArray(seed)
	if err := vm.SetField(obj, randFieldM, vm.NewIntArray(m)); err != nil {
		return jvm.Null, err
	}
	if err := vm.SetField(obj, randFieldI, jvm.Int(4)); err != nil {
		return jvm.Null, err
	}
	if err := vm.SetField(obj, randFieldJ, jvm.Int(16)); err != nil {
		return jvm.Null, err
	}
	return obj, nil
}

// seedArray reproduces SciMark Random.initialize().
func seedArray(seed int64) []int64 {
	jseed := seed
	if jseed < 0 {
		jseed = -jseed
	}
	if jseed > randM1 {
		jseed = randM1
	}
	if jseed%2 == 0 {
		jseed--
	}
	k0 := int64(9069 % randM2)
	k1 := int64(9069 / randM2)
	j0 := jseed % randM2
	j1 := jseed / randM2
	m := make([]int64, 17)
	for iloop := 0; iloop < 17; iloop++ {
		jseed = j0 * k0
		j1 = (jseed/randM2 + j0*k1 + j1*k0) % (randM2 / 2)
		j0 = jseed % randM2
		m[iloop] = j0 + randM2*j1
	}
	return m
}

// ReferenceRandom is the Go-side oracle for the bytecode nextDouble().
type ReferenceRandom struct {
	m    []int64
	i, j int
}

// NewReferenceRandom seeds the oracle identically to NewRandom.
func NewReferenceRandom(seed int64) *ReferenceRandom {
	return &ReferenceRandom{m: seedArray(seed), i: 4, j: 16}
}

// NextDouble advances the oracle.
func (r *ReferenceRandom) NextDouble() float64 {
	k := r.m[r.i] - r.m[r.j]
	if k < 0 {
		k += randM1
	}
	r.m[r.j] = k
	if r.i == 0 {
		r.i = 16
	} else {
		r.i--
	}
	if r.j == 0 {
		r.j = 16
	} else {
		r.j--
	}
	return 1.0 / float64(randM1) * float64(k)
}

// FFTClass builds scimark/fft/FFT with transform_internal, bitreverse and
// inverse — the three hot methods of scimark.fft.large (Table 3 reports
// transform_internal alone at 87% of the benchmark's operations).
func FFTClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	sinRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "java/lang/Math", Name: "sin", Argc: 1, ReturnsValue: true})
	bitrevRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "scimark/fft/FFT", Name: "bitreverse", Argc: 1})
	transformRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "scimark/fft/FFT", Name: "transform_internal", Argc: 2})
	cTwo := pool.AddDouble(2.0)
	cPI := pool.AddDouble(math.Pi)

	// void bitreverse(double[] data)
	// locals: 0=data 1=n 2=nm1 3=i 4=j 5=ii 6=jj 7=k 8=tmp
	bitreverse := build(pool, methodSpec{
		Name: "bitreverse", Argc: 1, MaxLocals: 9,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).PushInt(2).Op(bytecode.Idiv).IStore(1).
			ILoad(1).Op(bytecode.Iconst1).Op(bytecode.Isub).IStore(2).
			PushInt(0).IStore(3).
			PushInt(0).IStore(4).
			Label("loop").
			ILoad(3).ILoad(2).Branch(bytecode.IfIcmpge, "done").
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Ishl).IStore(5).
			ILoad(4).Op(bytecode.Iconst1).Op(bytecode.Ishl).IStore(6).
			ILoad(1).Op(bytecode.Iconst1).Op(bytecode.Ishr).IStore(7).
			ILoad(3).ILoad(4).Branch(bytecode.IfIcmpge, "noswap").
			// swap data[ii] <-> data[jj]
			ALoad(0).ILoad(5).Op(bytecode.Daload).DStore(8).
			ALoad(0).ILoad(5).ALoad(0).ILoad(6).Op(bytecode.Daload).Op(bytecode.Dastore).
			ALoad(0).ILoad(6).DLoad(8).Op(bytecode.Dastore).
			// swap data[ii+1] <-> data[jj+1]
			ALoad(0).ILoad(5).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).DStore(8).
			ALoad(0).ILoad(5).Op(bytecode.Iconst1).Op(bytecode.Iadd).
			ALoad(0).ILoad(6).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).
			Op(bytecode.Dastore).
			ALoad(0).ILoad(6).Op(bytecode.Iconst1).Op(bytecode.Iadd).DLoad(8).Op(bytecode.Dastore).
			Label("noswap").
			Label("wloop").
			ILoad(7).ILoad(4).Branch(bytecode.IfIcmpgt, "wdone").
			ILoad(4).ILoad(7).Op(bytecode.Isub).IStore(4).
			ILoad(7).Op(bytecode.Iconst1).Op(bytecode.Ishr).IStore(7).
			Branch(bytecode.Goto, "wloop").
			Label("wdone").
			ILoad(4).ILoad(7).Op(bytecode.Iadd).IStore(4).
			Iinc(3, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			Op(bytecode.Return)
	})

	// void transform_internal(double[] data, int direction)
	// locals: 0=data 1=direction 2=n 3=logn 4=bit 5=dual 6=wr 7=wi
	//         8=s 9=theta/t 10=s2 11=b 12=i 13=j 14=wdr 15=wdi
	//         16=a 17=z1r 18=z1i 19=tmp
	transform := build(pool, methodSpec{
		Name: "transform_internal", Argc: 2, MaxLocals: 20,
	}, func(a *bytecode.Assembler) {
		butterfly := func(a *bytecode.Assembler) {
			// data[j]   = data[i]   - wdr ; data[j+1] = data[i+1] - wdi
			// data[i]  += wdr       ; data[i+1] += wdi
			a.ALoad(0).ILoad(13).
				ALoad(0).ILoad(12).Op(bytecode.Daload).DLoad(14).Op(bytecode.Dsub).
				Op(bytecode.Dastore).
				ALoad(0).ILoad(13).Op(bytecode.Iconst1).Op(bytecode.Iadd).
				ALoad(0).ILoad(12).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).
				DLoad(15).Op(bytecode.Dsub).
				Op(bytecode.Dastore).
				ALoad(0).ILoad(12).
				ALoad(0).ILoad(12).Op(bytecode.Daload).DLoad(14).Op(bytecode.Dadd).
				Op(bytecode.Dastore).
				ALoad(0).ILoad(12).Op(bytecode.Iconst1).Op(bytecode.Iadd).
				ALoad(0).ILoad(12).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).
				DLoad(15).Op(bytecode.Dadd).
				Op(bytecode.Dastore)
		}
		bumpB := func(a *bytecode.Assembler) {
			// b += 2 * dual
			a.ILoad(11).PushInt(2).ILoad(5).Op(bytecode.Imul).Op(bytecode.Iadd).IStore(11)
		}

		a.ALoad(0).Op(bytecode.Arraylength).PushInt(2).Op(bytecode.Idiv).IStore(2).
			ILoad(2).Op(bytecode.Iconst1).Branch(bytecode.IfIcmpne, "go").
			Op(bytecode.Return).
			Label("go").
			// logn = log2(n)
			PushInt(0).IStore(3).
			PushInt(1).IStore(4).
			Label("lgl").
			ILoad(4).ILoad(2).Branch(bytecode.IfIcmpge, "lgdone").
			ILoad(4).ILoad(4).Op(bytecode.Iadd).IStore(4).
			Iinc(3, 1).
			Branch(bytecode.Goto, "lgl").
			Label("lgdone").
			ALoad(0).Call(bytecode.Invokestatic, bitrevRef, 1, false).
			// for (bit = 0, dual = 1; bit < logn; bit++, dual *= 2)
			PushInt(0).IStore(4).
			PushInt(1).IStore(5).
			Label("bitloop").
			ILoad(4).ILoad(3).Branch(bytecode.IfIcmpge, "bitdone").
			// w = 1 + 0i
			Op(bytecode.Dconst1).DStore(6).
			Op(bytecode.Dconst0).DStore(7).
			// theta = 2*direction*PI / (2*dual)
			Ldc(cTwo, true).ILoad(1).Op(bytecode.I2d).Op(bytecode.Dmul).
			Ldc(cPI, true).Op(bytecode.Dmul).
			Ldc(cTwo, true).ILoad(5).Op(bytecode.I2d).Op(bytecode.Dmul).
			Op(bytecode.Ddiv).DStore(9).
			// s = sin(theta)
			DLoad(9).Call(bytecode.Invokestatic, sinRef, 1, true).DStore(8).
			// t = sin(theta/2); s2 = 2*t*t   (theta register reused for t)
			DLoad(9).Ldc(cTwo, true).Op(bytecode.Ddiv).
			Call(bytecode.Invokestatic, sinRef, 1, true).DStore(9).
			Ldc(cTwo, true).DLoad(9).Op(bytecode.Dmul).DLoad(9).Op(bytecode.Dmul).DStore(10)

		// a == 0 pass
		a.PushInt(0).IStore(11).
			Label("b0loop").
			ILoad(11).ILoad(2).Branch(bytecode.IfIcmpge, "b0done").
			PushInt(2).ILoad(11).Op(bytecode.Imul).IStore(12).
			PushInt(2).ILoad(11).ILoad(5).Op(bytecode.Iadd).Op(bytecode.Imul).IStore(13).
			// wd = data[j..j+1]
			ALoad(0).ILoad(13).Op(bytecode.Daload).DStore(14).
			ALoad(0).ILoad(13).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).DStore(15)
		butterfly(a)
		bumpB(a)
		a.Branch(bytecode.Goto, "b0loop").
			Label("b0done").
			// for (a = 1; a < dual; a++)
			PushInt(1).IStore(16).
			Label("aloop").
			ILoad(16).ILoad(5).Branch(bytecode.IfIcmpge, "adone").
			// trig recurrence
			DLoad(6).DLoad(8).DLoad(7).Op(bytecode.Dmul).Op(bytecode.Dsub).
			DLoad(10).DLoad(6).Op(bytecode.Dmul).Op(bytecode.Dsub).DStore(19).
			DLoad(7).DLoad(8).DLoad(6).Op(bytecode.Dmul).Op(bytecode.Dadd).
			DLoad(10).DLoad(7).Op(bytecode.Dmul).Op(bytecode.Dsub).DStore(7).
			DLoad(19).DStore(6).
			// inner b loop
			PushInt(0).IStore(11).
			Label("biloop").
			ILoad(11).ILoad(2).Branch(bytecode.IfIcmpge, "bidone").
			PushInt(2).ILoad(11).ILoad(16).Op(bytecode.Iadd).Op(bytecode.Imul).IStore(12).
			PushInt(2).ILoad(11).ILoad(5).Op(bytecode.Iadd).ILoad(16).Op(bytecode.Iadd).
			Op(bytecode.Imul).IStore(13).
			// z1 = data[j..j+1]
			ALoad(0).ILoad(13).Op(bytecode.Daload).DStore(17).
			ALoad(0).ILoad(13).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).DStore(18).
			// wd = w * z1 (complex)
			DLoad(6).DLoad(17).Op(bytecode.Dmul).DLoad(7).DLoad(18).Op(bytecode.Dmul).
			Op(bytecode.Dsub).DStore(14).
			DLoad(6).DLoad(18).Op(bytecode.Dmul).DLoad(7).DLoad(17).Op(bytecode.Dmul).
			Op(bytecode.Dadd).DStore(15)
		butterfly(a)
		bumpB(a)
		a.Branch(bytecode.Goto, "biloop").
			Label("bidone").
			Iinc(16, 1).
			Branch(bytecode.Goto, "aloop").
			Label("adone").
			Iinc(4, 1).
			ILoad(5).ILoad(5).Op(bytecode.Iadd).IStore(5).
			Branch(bytecode.Goto, "bitloop").
			Label("bitdone").
			Op(bytecode.Return)
	})

	// void inverse(double[] data): transform(-1) then scale by 1/n.
	// locals: 0=data 1=n 2=norm 3=i
	inverse := build(pool, methodSpec{
		Name: "inverse", Argc: 1, MaxLocals: 4,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).PushInt(-1).Call(bytecode.Invokestatic, transformRef, 2, false).
			ALoad(0).Op(bytecode.Arraylength).PushInt(2).Op(bytecode.Idiv).IStore(1).
			Op(bytecode.Dconst1).ILoad(1).Op(bytecode.I2d).Op(bytecode.Ddiv).DStore(2).
			PushInt(0).IStore(3).
			Label("loop").
			ILoad(3).ALoad(0).Op(bytecode.Arraylength).Branch(bytecode.IfIcmpge, "done").
			ALoad(0).ILoad(3).
			ALoad(0).ILoad(3).Op(bytecode.Daload).DLoad(2).Op(bytecode.Dmul).
			Op(bytecode.Dastore).
			Iinc(3, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			Op(bytecode.Return)
	})

	c := classfile.NewClass("scimark/fft/FFT")
	c.Add(bitreverse).Add(transform).Add(inverse)
	return c
}

// LUClass builds scimark/lu/LU.factor — 99% of scimark.lu.large (Table 3).
func LUClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	absRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "java/lang/Math", Name: "abs", Argc: 1, ReturnsValue: true})

	// int factor(double[][] A, int[] pivot) — in-place LU with partial
	// pivoting; returns 0 on success, 1 on singularity.
	// locals: 0=A 1=pivot 2=N 3=j 4=jp 5=t 6=i 7=ab 8=recp 9=k
	//         10=ii 11=Aii 12=Aj 13=AiiJ 14=jj 15=tA
	factor := build(pool, methodSpec{
		Name: "factor", Argc: 2, Returns: true, MaxLocals: 16,
	}, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).IStore(2).
			PushInt(0).IStore(3).
			Label("jloop").
			ILoad(3).ILoad(2).Branch(bytecode.IfIcmpge, "jdone").
			// jp = j; t = abs(A[j][j])
			ILoad(3).IStore(4).
			ALoad(0).ILoad(3).Op(bytecode.Aaload).ILoad(3).Op(bytecode.Daload).
			Call(bytecode.Invokestatic, absRef, 1, true).DStore(5).
			// pivot search
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Iadd).IStore(6).
			Label("ploop").
			ILoad(6).ILoad(2).Branch(bytecode.IfIcmpge, "pdone").
			ALoad(0).ILoad(6).Op(bytecode.Aaload).ILoad(3).Op(bytecode.Daload).
			Call(bytecode.Invokestatic, absRef, 1, true).DStore(7).
			DLoad(7).DLoad(5).Op(bytecode.Dcmpl).Branch(bytecode.Ifle, "pskip").
			ILoad(6).IStore(4).
			DLoad(7).DStore(5).
			Label("pskip").
			Iinc(6, 1).
			Branch(bytecode.Goto, "ploop").
			Label("pdone").
			// pivot[j] = jp
			ALoad(1).ILoad(3).ILoad(4).Op(bytecode.Iastore).
			// if (A[jp][j] == 0) return 1
			ALoad(0).ILoad(4).Op(bytecode.Aaload).ILoad(3).Op(bytecode.Daload).
			Op(bytecode.Dconst0).Op(bytecode.Dcmpl).Branch(bytecode.Ifne, "nonsing").
			Op(bytecode.Iconst1).Op(bytecode.Ireturn).
			Label("nonsing").
			// row swap if jp != j
			ILoad(4).ILoad(3).Branch(bytecode.IfIcmpeq, "noswap").
			ALoad(0).ILoad(3).Op(bytecode.Aaload).AStore(15).
			ALoad(0).ILoad(3).ALoad(0).ILoad(4).Op(bytecode.Aaload).Op(bytecode.Aastore).
			ALoad(0).ILoad(4).ALoad(15).Op(bytecode.Aastore).
			Label("noswap").
			// if (j < N-1) scale column and eliminate
			ILoad(3).ILoad(2).Op(bytecode.Iconst1).Op(bytecode.Isub).
			Branch(bytecode.IfIcmpge, "next").
			// recp = 1 / A[j][j]
			Op(bytecode.Dconst1).
			ALoad(0).ILoad(3).Op(bytecode.Aaload).ILoad(3).Op(bytecode.Daload).
			Op(bytecode.Ddiv).DStore(8).
			// for (k = j+1; k < N; k++) A[k][j] *= recp
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Iadd).IStore(9).
			Label("kloop").
			ILoad(9).ILoad(2).Branch(bytecode.IfIcmpge, "kdone").
			ALoad(0).ILoad(9).Op(bytecode.Aaload).ILoad(3).
			ALoad(0).ILoad(9).Op(bytecode.Aaload).ILoad(3).Op(bytecode.Daload).
			DLoad(8).Op(bytecode.Dmul).
			Op(bytecode.Dastore).
			Iinc(9, 1).
			Branch(bytecode.Goto, "kloop").
			Label("kdone").
			// elimination
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Iadd).IStore(10).
			Label("iiloop").
			ILoad(10).ILoad(2).Branch(bytecode.IfIcmpge, "iidone").
			ALoad(0).ILoad(10).Op(bytecode.Aaload).AStore(11).
			ALoad(0).ILoad(3).Op(bytecode.Aaload).AStore(12).
			ALoad(11).ILoad(3).Op(bytecode.Daload).DStore(13).
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Iadd).IStore(14).
			Label("jjloop").
			ILoad(14).ILoad(2).Branch(bytecode.IfIcmpge, "jjdone").
			ALoad(11).ILoad(14).
			ALoad(11).ILoad(14).Op(bytecode.Daload).
			DLoad(13).ALoad(12).ILoad(14).Op(bytecode.Daload).Op(bytecode.Dmul).
			Op(bytecode.Dsub).
			Op(bytecode.Dastore).
			Iinc(14, 1).
			Branch(bytecode.Goto, "jjloop").
			Label("jjdone").
			Iinc(10, 1).
			Branch(bytecode.Goto, "iiloop").
			Label("iidone").
			Label("next").
			Iinc(3, 1).
			Branch(bytecode.Goto, "jloop").
			Label("jdone").
			PushInt(0).Op(bytecode.Ireturn)
	})

	c := classfile.NewClass("scimark/lu/LU")
	c.Add(factor)
	return c
}

// SORClass builds scimark/sor/SOR.execute — 99% of scimark.sor.large.
func SORClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	cQuarter := pool.AddDouble(0.25)

	// double execute(double omega, double[][] G, int num_iterations)
	// locals: 0=omega 1=G 2=iters 3=M 4=N 5=oof 6=omo 7=p 8=i
	//         9=Gi 10=Gim1 11=Gip1 12=j 13=Mm1 14=Nm1
	execute := build(pool, methodSpec{
		Name: "execute", Argc: 3, Returns: true, MaxLocals: 15,
	}, func(a *bytecode.Assembler) {
		a.ALoad(1).Op(bytecode.Arraylength).IStore(3).
			ALoad(1).Op(bytecode.Iconst0).Op(bytecode.Aaload).Op(bytecode.Arraylength).IStore(4).
			// omega_over_four = omega * 0.25
			DLoad(0).Ldc(cQuarter, true).Op(bytecode.Dmul).DStore(5).
			// one_minus_omega = 1.0 - omega
			Op(bytecode.Dconst1).DLoad(0).Op(bytecode.Dsub).DStore(6).
			ILoad(3).Op(bytecode.Iconst1).Op(bytecode.Isub).IStore(13).
			ILoad(4).Op(bytecode.Iconst1).Op(bytecode.Isub).IStore(14).
			PushInt(0).IStore(7).
			Label("ploop").
			ILoad(7).ILoad(2).Branch(bytecode.IfIcmpge, "pdone").
			PushInt(1).IStore(8).
			Label("iloop").
			ILoad(8).ILoad(13).Branch(bytecode.IfIcmpge, "idone").
			ALoad(1).ILoad(8).Op(bytecode.Aaload).AStore(9).
			ALoad(1).ILoad(8).Op(bytecode.Iconst1).Op(bytecode.Isub).Op(bytecode.Aaload).AStore(10).
			ALoad(1).ILoad(8).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Aaload).AStore(11).
			PushInt(1).IStore(12).
			Label("jloop").
			ILoad(12).ILoad(14).Branch(bytecode.IfIcmpge, "jdone").
			// Gi[j] = oof*(Gim1[j]+Gip1[j]+Gi[j-1]+Gi[j+1]) + omo*Gi[j]
			ALoad(9).ILoad(12).
			DLoad(5).
			ALoad(10).ILoad(12).Op(bytecode.Daload).
			ALoad(11).ILoad(12).Op(bytecode.Daload).Op(bytecode.Dadd).
			ALoad(9).ILoad(12).Op(bytecode.Iconst1).Op(bytecode.Isub).Op(bytecode.Daload).Op(bytecode.Dadd).
			ALoad(9).ILoad(12).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Daload).Op(bytecode.Dadd).
			Op(bytecode.Dmul).
			DLoad(6).ALoad(9).ILoad(12).Op(bytecode.Daload).Op(bytecode.Dmul).
			Op(bytecode.Dadd).
			Op(bytecode.Dastore).
			Iinc(12, 1).
			Branch(bytecode.Goto, "jloop").
			Label("jdone").
			Iinc(8, 1).
			Branch(bytecode.Goto, "iloop").
			Label("idone").
			Iinc(7, 1).
			Branch(bytecode.Goto, "ploop").
			Label("pdone").
			// return G[1][1] as a convergence witness
			ALoad(1).Op(bytecode.Iconst1).Op(bytecode.Aaload).Op(bytecode.Iconst1).Op(bytecode.Daload).
			Op(bytecode.Dreturn)
	})

	c := classfile.NewClass("scimark/sor/SOR")
	c.Add(execute)
	return c
}

// SparseClass builds scimark/sparse/SparseCompRow.matmult — 99% of
// scimark.sparse.large.
func SparseClass() *classfile.Class {
	pool := classfile.NewConstantPool()

	// void matmult(double[] y, double[] val, int[] row, int[] col,
	//              double[] x, int NUM_ITERATIONS)
	// locals: 0=y 1=val 2=row 3=col 4=x 5=iters
	//         6=M 7=reps 8=r 9=sum 10=i 11=rowR 12=rowRp1
	matmult := build(pool, methodSpec{
		Name: "matmult", Argc: 6, MaxLocals: 13,
	}, func(a *bytecode.Assembler) {
		a.ALoad(2).Op(bytecode.Arraylength).Op(bytecode.Iconst1).Op(bytecode.Isub).IStore(6).
			PushInt(0).IStore(7).
			Label("reps").
			ILoad(7).ILoad(5).Branch(bytecode.IfIcmpge, "repsdone").
			PushInt(0).IStore(8).
			Label("rloop").
			ILoad(8).ILoad(6).Branch(bytecode.IfIcmpge, "rdone").
			Op(bytecode.Dconst0).DStore(9).
			ALoad(2).ILoad(8).Op(bytecode.Iaload).IStore(11).
			ALoad(2).ILoad(8).Op(bytecode.Iconst1).Op(bytecode.Iadd).Op(bytecode.Iaload).IStore(12).
			ILoad(11).IStore(10).
			Label("iloop").
			ILoad(10).ILoad(12).Branch(bytecode.IfIcmpge, "idone").
			// sum += x[col[i]] * val[i]
			DLoad(9).
			ALoad(4).ALoad(3).ILoad(10).Op(bytecode.Iaload).Op(bytecode.Daload).
			ALoad(1).ILoad(10).Op(bytecode.Daload).
			Op(bytecode.Dmul).Op(bytecode.Dadd).DStore(9).
			Iinc(10, 1).
			Branch(bytecode.Goto, "iloop").
			Label("idone").
			ALoad(0).ILoad(8).DLoad(9).Op(bytecode.Dastore).
			Iinc(8, 1).
			Branch(bytecode.Goto, "rloop").
			Label("rdone").
			Iinc(7, 1).
			Branch(bytecode.Goto, "reps").
			Label("repsdone").
			Op(bytecode.Return)
	})

	c := classfile.NewClass("scimark/sparse/SparseCompRow")
	c.Add(matmult)
	return c
}

// MonteCarloClass builds scimark/monte_carlo/MonteCarlo.integrate, which
// drives Random.nextDouble to 77% of the benchmark (Table 3).
func MonteCarloClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	ndRef := pool.AddMethodRef(classfile.MethodRef{
		Class: "scimark/utils/Random", Name: "nextDouble",
		Instance: true, ReturnsValue: true})
	cFour := pool.AddDouble(4.0)

	// double integrate(Random r, int numSamples)
	// locals: 0=r 1=numSamples 2=under 3=count 4=x 5=y
	integrate := build(pool, methodSpec{
		Name: "integrate", Argc: 2, Returns: true, MaxLocals: 6,
	}, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(2).
			PushInt(0).IStore(3).
			Label("loop").
			ILoad(3).ILoad(1).Branch(bytecode.IfIcmpge, "done").
			ALoad(0).Call(bytecode.Invokevirtual, ndRef, 0, true).DStore(4).
			ALoad(0).Call(bytecode.Invokevirtual, ndRef, 0, true).DStore(5).
			DLoad(4).DLoad(4).Op(bytecode.Dmul).
			DLoad(5).DLoad(5).Op(bytecode.Dmul).Op(bytecode.Dadd).
			Op(bytecode.Dconst1).Op(bytecode.Dcmpg).
			Branch(bytecode.Ifgt, "skip").
			Iinc(2, 1).
			Label("skip").
			Iinc(3, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			ILoad(2).Op(bytecode.I2d).ILoad(1).Op(bytecode.I2d).Op(bytecode.Ddiv).
			Ldc(cFour, true).Op(bytecode.Dmul).
			Op(bytecode.Dreturn)
	})

	c := classfile.NewClass("scimark/monte_carlo/MonteCarlo")
	c.Add(integrate)
	return c
}

// SciMarkSuites returns the five SciMark benchmark suites with drivers.
func SciMarkSuites() []*Suite {
	fft := &Suite{
		Name: "scimark.fft.large", Era: "SpecJvm2008",
		Classes: []*classfile.Class{FFTClass(), RandomClass()},
		HotMethods: []string{
			"scimark/fft/FFT.transform_internal/2",
			"scimark/fft/FFT.bitreverse/1",
		},
	}
	fft.Run = func(vm *jvm.Machine, scale int) error {
		transform := fft.method("scimark/fft/FFT", "transform_internal")
		inverse := fft.method("scimark/fft/FFT", "inverse")
		n := 64 << uint(min(scale, 4))
		rng := rand.New(rand.NewSource(101))
		data := make([]float64, 2*n)
		for i := range data {
			data[i] = rng.Float64()*2 - 1
		}
		arr := vm.NewDoubleArray(data)
		for it := 0; it < scale; it++ {
			if _, err := vm.Invoke(transform, arr, jvm.Int(1)); err != nil {
				return err
			}
			if _, err := vm.Invoke(inverse, arr); err != nil {
				return err
			}
		}
		return nil
	}

	lu := &Suite{
		Name: "scimark.lu.large", Era: "SpecJvm2008",
		Classes:    []*classfile.Class{LUClass()},
		HotMethods: []string{"scimark/lu/LU.factor/2"},
	}
	lu.Run = func(vm *jvm.Machine, scale int) error {
		factor := lu.method("scimark/lu/LU", "factor")
		n := 8 + 4*scale
		rng := rand.New(rand.NewSource(202))
		for it := 0; it < scale; it++ {
			mat := vm.NewMatrix(n, n)
			obj, err := vm.Heap.Get(mat)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				row, err := vm.Heap.Get(obj.Array[i])
				if err != nil {
					return err
				}
				for j := 0; j < n; j++ {
					row.Array[j] = jvm.Double(rng.Float64()*2 - 1)
				}
			}
			pivot := vm.NewIntArray(make([]int64, n))
			res, err := vm.Invoke(factor, mat, pivot)
			if err != nil {
				return err
			}
			if res.I != 0 {
				return fmt.Errorf("lu: singular matrix at iteration %d", it)
			}
		}
		return nil
	}

	sor := &Suite{
		Name: "scimark.sor.large", Era: "SpecJvm2008",
		Classes:    []*classfile.Class{SORClass()},
		HotMethods: []string{"scimark/sor/SOR.execute/3"},
	}
	sor.Run = func(vm *jvm.Machine, scale int) error {
		execute := sor.method("scimark/sor/SOR", "execute")
		n := 16 + 8*scale
		rng := rand.New(rand.NewSource(303))
		g := vm.NewMatrix(n, n)
		obj, err := vm.Heap.Get(g)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			row, err := vm.Heap.Get(obj.Array[i])
			if err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				row.Array[j] = jvm.Double(rng.Float64())
			}
		}
		_, err = vm.Invoke(execute, jvm.Double(1.25), g, jvm.Int(int64(4*scale)))
		return err
	}

	sparse := &Suite{
		Name: "scimark.sparse.large", Era: "SpecJvm2008",
		Classes:    []*classfile.Class{SparseClass()},
		HotMethods: []string{"scimark/sparse/SparseCompRow.matmult/6"},
	}
	sparse.Run = func(vm *jvm.Machine, scale int) error {
		matmult := sparse.method("scimark/sparse/SparseCompRow", "matmult")
		n := 100 * scale
		nz := 5 * n
		rng := rand.New(rand.NewSource(404))
		row := make([]int64, n+1)
		col := make([]int64, nz)
		val := make([]float64, nz)
		perRow := nz / n
		for r := 0; r < n; r++ {
			row[r+1] = row[r] + int64(perRow)
			for k := 0; k < perRow; k++ {
				col[int(row[r])+k] = int64(rng.Intn(n))
				val[int(row[r])+k] = rng.Float64()
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		_, err := vm.Invoke(matmult,
			vm.NewDoubleArray(make([]float64, n)),
			vm.NewDoubleArray(val),
			vm.NewIntArray(row),
			vm.NewIntArray(col),
			vm.NewDoubleArray(x),
			jvm.Int(int64(2*scale)))
		return err
	}

	mc := &Suite{
		Name: "scimark.monte_carlo", Era: "SpecJvm2008",
		Classes: []*classfile.Class{MonteCarloClass(), RandomClass()},
		HotMethods: []string{
			"scimark/utils/Random.nextDouble/0",
			"scimark/monte_carlo/MonteCarlo.integrate/2",
		},
	}
	mc.Run = func(vm *jvm.Machine, scale int) error {
		integrate := mc.method("scimark/monte_carlo/MonteCarlo", "integrate")
		rnd, err := NewRandom(vm, 113)
		if err != nil {
			return err
		}
		pi, err := vm.Invoke(integrate, rnd, jvm.Int(int64(2000*scale)))
		if err != nil {
			return err
		}
		if pi.F < 2.8 || pi.F > 3.5 {
			return fmt.Errorf("monte_carlo: π estimate %v implausible", pi.F)
		}
		return nil
	}

	return []*Suite{fft, lu, sor, sparse, mc}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
