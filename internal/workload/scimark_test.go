package workload

import (
	"math"
	"math/rand"
	"testing"

	"javaflow/internal/jvm"
)

func newVM(t *testing.T, suites ...*Suite) *jvm.Machine {
	t.Helper()
	vm := jvm.NewMachine()
	seen := make(map[string]bool)
	for _, s := range suites {
		for _, c := range s.Classes {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			if err := vm.Register(c); err != nil {
				t.Fatalf("register %s: %v", c.Name, err)
			}
		}
	}
	return vm
}

func findSuite(t *testing.T, name string) *Suite {
	t.Helper()
	for _, s := range SciMarkSuites() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no suite %q", name)
	return nil
}

func TestNextDoubleMatchesReference(t *testing.T) {
	s := findSuite(t, "scimark.monte_carlo")
	vm := newVM(t, s)
	nd := s.method("scimark/utils/Random", "nextDouble")

	obj, err := NewRandom(vm, 12345)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferenceRandom(12345)
	for i := 0; i < 1000; i++ {
		got, err := vm.Invoke(nd, obj)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		want := ref.NextDouble()
		if got.F != want {
			t.Fatalf("draw %d: bytecode %v != reference %v", i, got.F, want)
		}
		if got.F < 0 || got.F >= 1 {
			t.Fatalf("draw %d: %v outside [0,1)", i, got.F)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	s := findSuite(t, "scimark.fft.large")
	vm := newVM(t, s)
	transform := s.method("scimark/fft/FFT", "transform_internal")
	inverse := s.method("scimark/fft/FFT", "inverse")

	const n = 64
	rng := rand.New(rand.NewSource(7))
	orig := make([]float64, 2*n)
	for i := range orig {
		orig[i] = rng.Float64()*2 - 1
	}
	arr := vm.NewDoubleArray(orig)

	if _, err := vm.Invoke(transform, arr, jvm.Int(1)); err != nil {
		t.Fatal(err)
	}
	after, err := vm.DoubleArrayData(arr)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range after {
		if after[i] != orig[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("transform left data unchanged")
	}

	if _, err := vm.Invoke(inverse, arr); err != nil {
		t.Fatal(err)
	}
	got, err := vm.DoubleArrayData(arr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if math.Abs(got[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverges at %d: %v vs %v", i, got[i], orig[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	s := findSuite(t, "scimark.fft.large")
	vm := newVM(t, s)
	transform := s.method("scimark/fft/FFT", "transform_internal")

	const n = 16
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 2*n)
	for i := range data {
		data[i] = rng.Float64()
	}
	arr := vm.NewDoubleArray(data)
	if _, err := vm.Invoke(transform, arr, jvm.Int(1)); err != nil {
		t.Fatal(err)
	}
	got, err := vm.DoubleArrayData(arr)
	if err != nil {
		t.Fatal(err)
	}

	// Naive DFT with the SciMark sign convention (direction=+1 uses
	// exp(+2πi·jk/n)).
	for k := 0; k < n; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(j*k) / float64(n)
			c, sn := math.Cos(angle), math.Sin(angle)
			re += data[2*j]*c - data[2*j+1]*sn
			im += data[2*j]*sn + data[2*j+1]*c
		}
		if math.Abs(got[2*k]-re) > 1e-8 || math.Abs(got[2*k+1]-im) > 1e-8 {
			t.Fatalf("bin %d: got (%v,%v), want (%v,%v)", k, got[2*k], got[2*k+1], re, im)
		}
	}
}

func TestLUFactorMatchesReference(t *testing.T) {
	s := findSuite(t, "scimark.lu.large")
	vm := newVM(t, s)
	factor := s.method("scimark/lu/LU", "factor")

	const n = 12
	rng := rand.New(rand.NewSource(41))
	a := make([][]float64, n)
	mat := vm.NewMatrix(n, n)
	obj, _ := vm.Heap.Get(mat)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		row, _ := vm.Heap.Get(obj.Array[i])
		for j := 0; j < n; j++ {
			v := rng.Float64()*2 - 1
			a[i][j] = v
			row.Array[j] = jvm.Double(v)
		}
	}
	pivot := vm.NewIntArray(make([]int64, n))

	res, err := vm.Invoke(factor, mat, pivot)
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 0 {
		t.Fatalf("factor returned %d, want 0", res.I)
	}

	wantA, wantP := referenceLU(a)
	gotP, _ := vm.IntArrayData(pivot)
	for j := 0; j < n; j++ {
		if gotP[j] != int64(wantP[j]) {
			t.Fatalf("pivot[%d] = %d, want %d", j, gotP[j], wantP[j])
		}
	}
	for i := 0; i < n; i++ {
		row, _ := vm.Heap.Get(obj.Array[i])
		for j := 0; j < n; j++ {
			if math.Abs(row.Array[j].F-wantA[i][j]) > 1e-12 {
				t.Fatalf("A[%d][%d] = %v, want %v", i, j, row.Array[j].F, wantA[i][j])
			}
		}
	}
}

// referenceLU mirrors the bytecode factor() in Go.
func referenceLU(in [][]float64) ([][]float64, []int) {
	n := len(in)
	a := make([][]float64, n)
	for i := range in {
		a[i] = append([]float64(nil), in[i]...)
	}
	pivot := make([]int, n)
	for j := 0; j < n; j++ {
		jp := j
		t := math.Abs(a[j][j])
		for i := j + 1; i < n; i++ {
			if ab := math.Abs(a[i][j]); ab > t {
				jp, t = i, ab
			}
		}
		pivot[j] = jp
		if jp != j {
			a[j], a[jp] = a[jp], a[j]
		}
		if j < n-1 {
			recp := 1.0 / a[j][j]
			for k := j + 1; k < n; k++ {
				a[k][j] *= recp
			}
			for ii := j + 1; ii < n; ii++ {
				for jj := j + 1; jj < n; jj++ {
					a[ii][jj] -= a[ii][j] * a[j][jj]
				}
			}
		}
	}
	return a, pivot
}

func TestSORMatchesReference(t *testing.T) {
	s := findSuite(t, "scimark.sor.large")
	vm := newVM(t, s)
	execute := s.method("scimark/sor/SOR", "execute")

	const n = 10
	const iters = 3
	const omega = 1.25
	rng := rand.New(rand.NewSource(5))
	g := make([][]float64, n)
	mat := vm.NewMatrix(n, n)
	obj, _ := vm.Heap.Get(mat)
	for i := 0; i < n; i++ {
		g[i] = make([]float64, n)
		row, _ := vm.Heap.Get(obj.Array[i])
		for j := 0; j < n; j++ {
			v := rng.Float64()
			g[i][j] = v
			row.Array[j] = jvm.Double(v)
		}
	}

	got, err := vm.Invoke(execute, jvm.Double(omega), mat, jvm.Int(iters))
	if err != nil {
		t.Fatal(err)
	}

	// Go reference.
	oof := omega * 0.25
	omo := 1.0 - omega
	for p := 0; p < iters; p++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				g[i][j] = oof*(g[i-1][j]+g[i+1][j]+g[i][j-1]+g[i][j+1]) + omo*g[i][j]
			}
		}
	}
	if math.Abs(got.F-g[1][1]) > 1e-12 {
		t.Fatalf("execute = %v, want %v", got.F, g[1][1])
	}
	for i := 0; i < n; i++ {
		row, _ := vm.Heap.Get(obj.Array[i])
		for j := 0; j < n; j++ {
			if math.Abs(row.Array[j].F-g[i][j]) > 1e-12 {
				t.Fatalf("G[%d][%d] = %v, want %v", i, j, row.Array[j].F, g[i][j])
			}
		}
	}
}

func TestSparseMatmultMatchesReference(t *testing.T) {
	s := findSuite(t, "scimark.sparse.large")
	vm := newVM(t, s)
	matmult := s.method("scimark/sparse/SparseCompRow", "matmult")

	const n = 20
	rng := rand.New(rand.NewSource(77))
	row := make([]int64, n+1)
	var col []int64
	var val []float64
	for r := 0; r < n; r++ {
		nz := 1 + rng.Intn(4)
		row[r+1] = row[r] + int64(nz)
		for k := 0; k < nz; k++ {
			col = append(col, int64(rng.Intn(n)))
			val = append(val, rng.Float64())
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}

	y := vm.NewDoubleArray(make([]float64, n))
	_, err := vm.Invoke(matmult, y,
		vm.NewDoubleArray(val), vm.NewIntArray(row), vm.NewIntArray(col),
		vm.NewDoubleArray(x), jvm.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vm.DoubleArrayData(y)
	for r := 0; r < n; r++ {
		var want float64
		for i := row[r]; i < row[r+1]; i++ {
			want += x[col[i]] * val[i]
		}
		if math.Abs(got[r]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", r, got[r], want)
		}
	}
}

func TestMonteCarloMatchesReference(t *testing.T) {
	s := findSuite(t, "scimark.monte_carlo")
	vm := newVM(t, s)
	integrate := s.method("scimark/monte_carlo/MonteCarlo", "integrate")

	const samples = 5000
	rnd, err := NewRandom(vm, 113)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.Invoke(integrate, rnd, jvm.Int(samples))
	if err != nil {
		t.Fatal(err)
	}

	ref := NewReferenceRandom(113)
	under := 0
	for i := 0; i < samples; i++ {
		x := ref.NextDouble()
		y := ref.NextDouble()
		if x*x+y*y <= 1.0 {
			under++
		}
	}
	want := float64(under) / samples * 4.0
	if got.F != want {
		t.Fatalf("integrate = %v, want %v", got.F, want)
	}
	if math.Abs(got.F-math.Pi) > 0.15 {
		t.Errorf("π estimate %v far from π", got.F)
	}
}

func TestSciMarkSuitesRunAndProfile(t *testing.T) {
	for _, s := range SciMarkSuites() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			vm := newVM(t, s)
			if err := s.Run(vm, 1); err != nil {
				t.Fatalf("run: %v", err)
			}
			if vm.Profile.TotalOps() == 0 {
				t.Fatal("no instructions profiled")
			}
			// The named hot methods must dominate the dynamic mix, as in
			// Tables 3–4.
			top := vm.Profile.MethodsFor(0.90)
			sigs := make(map[string]bool, len(top))
			for _, ms := range top {
				sigs[ms.Signature] = true
			}
			found := false
			for _, hot := range s.HotMethods {
				if sigs[hot] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("none of %v in the 90%% set %v", s.HotMethods, top)
			}
		})
	}
}
