// Package workload provides the benchmark corpus standing in for the SPEC
// JVM98 / JVM2008 class files the dissertation analyzed (Chapter 5). It
// contains two populations:
//
//   - Named SPEC-analog methods: faithful bytecode re-creations of the hot
//     methods the paper identifies (Tables 3–4): scimark's nextDouble, FFT
//     transform/bitreverse, LU factor, SOR execute, sparse matmult, Monte
//     Carlo integrate; the crypto sha/mul/submul_1 kernels; compress;
//     string compare and shell sort; and control-flow-heavy scanners.
//     Each has a driver that executes it on the interpreting JVM so dynamic
//     instruction mixes can be gathered exactly as the paper gathered them.
//
//   - A generated population: a deterministic, seeded generator producing
//     valid, verified, terminating methods whose size/branch/register
//     distributions match the corpus statistics of Tables 9–14, filling the
//     ~1,600-method population the simulation studies sweep (Table 16).
package workload

import (
	"fmt"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

// methodSpec describes a method under construction.
type methodSpec struct {
	Name      string
	Argc      int
	Instance  bool
	Returns   bool
	MaxLocals int
}

// build assembles a method; workload construction errors are programming
// errors, so it panics rather than returning an error.
func build(pool *classfile.ConstantPool, spec methodSpec, body func(a *bytecode.Assembler)) *classfile.Method {
	a := bytecode.NewAssembler()
	body(a)
	code, err := a.Finish()
	if err != nil {
		panic(fmt.Sprintf("workload: assembling %s: %v", spec.Name, err))
	}
	m := &classfile.Method{
		Name:         spec.Name,
		Argc:         spec.Argc,
		Instance:     spec.Instance,
		ReturnsValue: spec.Returns,
		MaxLocals:    spec.MaxLocals,
		Code:         code,
		Pool:         pool,
	}
	if err := classfile.Verify(m); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return m
}

// Suite is a named benchmark: classes to register plus a driver that
// exercises the hot methods on a machine. Scale controls iteration counts so
// tests stay fast while profile shapes remain stable.
type Suite struct {
	Name    string
	Era     string // "SpecJvm2008" or "SpecJvm98" analog
	Classes []*classfile.Class
	// Run exercises the suite; the caller must have registered Classes.
	Run func(vm *jvm.Machine, scale int) error
	// HotMethods lists signatures expected to dominate the dynamic mix.
	HotMethods []string
}

// Register loads all of the suite's classes into the machine.
func (s *Suite) Register(vm *jvm.Machine) error {
	for _, c := range s.Classes {
		if err := vm.Register(c); err != nil {
			return fmt.Errorf("suite %s: %w", s.Name, err)
		}
	}
	return nil
}

// method looks a method up across the suite's classes, panicking when the
// suite is malformed (a programming error in this package).
func (s *Suite) method(class, name string) *classfile.Method {
	for _, c := range s.Classes {
		if c.Name == class {
			m, err := c.Method(name)
			if err != nil {
				panic(fmt.Sprintf("workload: %v", err))
			}
			return m
		}
	}
	panic(fmt.Sprintf("workload: suite %s has no class %s", s.Name, class))
}

// AllMethods flattens the suite's methods in deterministic order.
func (s *Suite) AllMethods() []*classfile.Method {
	var out []*classfile.Method
	for _, c := range s.Classes {
		names := make([]string, 0, len(c.Methods))
		for n := range c.Methods {
			names = append(names, n)
		}
		sortStrings(names)
		for _, n := range names {
			out = append(out, c.Methods[n])
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
