package workload

import (
	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
	"javaflow/internal/jvm"
)

// Sha160Class builds the SHA-1 compression function — the hot method of
// crypto.signverify (Table 3 reports Sha160.sha at 24% plus Sha256.sha; the
// paper's static size is ~315 instructions, matching this construction).
func Sha160Class() *classfile.Class {
	pool := classfile.NewConstantPool()
	k1 := pool.AddInt(0x5A827999)
	k2 := pool.AddInt(0x6ED9EBA1)
	k3 := pool.AddInt(int64(int32(-1894007588))) // 0x8F1BBCDC
	k4 := pool.AddInt(int64(int32(-899497514)))  // 0xCA62C1D6

	// void sha(int[] state5, int[] block16)
	// locals: 0=state 1=block 2=w 3=t 4=a 5=b 6=c 7=d 8=e 9=tmp 10=f 11=k
	sha := build(pool, methodSpec{
		Name: "sha", Argc: 2, MaxLocals: 12,
	}, func(a *bytecode.Assembler) {
		a.PushInt(80).OpA(bytecode.Newarray, 10 /* T_INT */).AStore(2).
			// message schedule: w[0..15] = block
			PushInt(0).IStore(3).
			Label("copy").
			ILoad(3).PushInt(16).Branch(bytecode.IfIcmpge, "copied").
			ALoad(2).ILoad(3).ALoad(1).ILoad(3).Op(bytecode.Iaload).Op(bytecode.Iastore).
			Iinc(3, 1).
			Branch(bytecode.Goto, "copy").
			Label("copied").
			// w[16..79] = rotl1(w[t-3]^w[t-8]^w[t-14]^w[t-16])
			PushInt(16).IStore(3).
			Label("expand").
			ILoad(3).PushInt(80).Branch(bytecode.IfIcmpge, "expanded").
			ALoad(2).ILoad(3).PushInt(3).Op(bytecode.Isub).Op(bytecode.Iaload).
			ALoad(2).ILoad(3).PushInt(8).Op(bytecode.Isub).Op(bytecode.Iaload).Op(bytecode.Ixor).
			ALoad(2).ILoad(3).PushInt(14).Op(bytecode.Isub).Op(bytecode.Iaload).Op(bytecode.Ixor).
			ALoad(2).ILoad(3).PushInt(16).Op(bytecode.Isub).Op(bytecode.Iaload).Op(bytecode.Ixor).
			IStore(9).
			ALoad(2).ILoad(3).
			ILoad(9).Op(bytecode.Iconst1).Op(bytecode.Ishl).
			ILoad(9).PushInt(31).Op(bytecode.Iushr).
			Op(bytecode.Ior).
			Op(bytecode.Iastore).
			Iinc(3, 1).
			Branch(bytecode.Goto, "expand").
			Label("expanded").
			// working variables
			ALoad(0).Op(bytecode.Iconst0).Op(bytecode.Iaload).IStore(4).
			ALoad(0).Op(bytecode.Iconst1).Op(bytecode.Iaload).IStore(5).
			ALoad(0).Op(bytecode.Iconst2).Op(bytecode.Iaload).IStore(6).
			ALoad(0).Op(bytecode.Iconst3).Op(bytecode.Iaload).IStore(7).
			ALoad(0).Op(bytecode.Iconst4).Op(bytecode.Iaload).IStore(8).
			// 80 rounds
			PushInt(0).IStore(3).
			Label("round").
			ILoad(3).PushInt(80).Branch(bytecode.IfIcmpge, "rounds_done").
			ILoad(3).PushInt(20).Branch(bytecode.IfIcmpge, "phase2").
			// f = (b & c) | (~b & d)
			ILoad(5).ILoad(6).Op(bytecode.Iand).
			ILoad(5).Op(bytecode.IconstM1).Op(bytecode.Ixor).ILoad(7).Op(bytecode.Iand).
			Op(bytecode.Ior).IStore(10).
			Ldc(k1, false).IStore(11).
			Branch(bytecode.Goto, "mix").
			Label("phase2").
			ILoad(3).PushInt(40).Branch(bytecode.IfIcmpge, "phase3").
			ILoad(5).ILoad(6).Op(bytecode.Ixor).ILoad(7).Op(bytecode.Ixor).IStore(10).
			Ldc(k2, false).IStore(11).
			Branch(bytecode.Goto, "mix").
			Label("phase3").
			ILoad(3).PushInt(60).Branch(bytecode.IfIcmpge, "phase4").
			// f = (b&c) | (b&d) | (c&d)
			ILoad(5).ILoad(6).Op(bytecode.Iand).
			ILoad(5).ILoad(7).Op(bytecode.Iand).Op(bytecode.Ior).
			ILoad(6).ILoad(7).Op(bytecode.Iand).Op(bytecode.Ior).IStore(10).
			Ldc(k3, false).IStore(11).
			Branch(bytecode.Goto, "mix").
			Label("phase4").
			ILoad(5).ILoad(6).Op(bytecode.Ixor).ILoad(7).Op(bytecode.Ixor).IStore(10).
			Ldc(k4, false).IStore(11).
			Label("mix").
			// tmp = rotl5(a) + f + e + k + w[t]
			ILoad(4).PushInt(5).Op(bytecode.Ishl).
			ILoad(4).PushInt(27).Op(bytecode.Iushr).Op(bytecode.Ior).
			ILoad(10).Op(bytecode.Iadd).
			ILoad(8).Op(bytecode.Iadd).
			ILoad(11).Op(bytecode.Iadd).
			ALoad(2).ILoad(3).Op(bytecode.Iaload).Op(bytecode.Iadd).
			IStore(9).
			// e=d; d=c; c=rotl30(b); b=a; a=tmp
			ILoad(7).IStore(8).
			ILoad(6).IStore(7).
			ILoad(5).PushInt(30).Op(bytecode.Ishl).
			ILoad(5).Op(bytecode.Iconst2).Op(bytecode.Iushr).Op(bytecode.Ior).IStore(6).
			ILoad(4).IStore(5).
			ILoad(9).IStore(4).
			Iinc(3, 1).
			Branch(bytecode.Goto, "round").
			Label("rounds_done").
			// state += working vars
			ALoad(0).Op(bytecode.Iconst0).
			ALoad(0).Op(bytecode.Iconst0).Op(bytecode.Iaload).ILoad(4).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			ALoad(0).Op(bytecode.Iconst1).
			ALoad(0).Op(bytecode.Iconst1).Op(bytecode.Iaload).ILoad(5).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			ALoad(0).Op(bytecode.Iconst2).
			ALoad(0).Op(bytecode.Iconst2).Op(bytecode.Iaload).ILoad(6).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			ALoad(0).Op(bytecode.Iconst3).
			ALoad(0).Op(bytecode.Iconst3).Op(bytecode.Iaload).ILoad(7).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			ALoad(0).Op(bytecode.Iconst4).
			ALoad(0).Op(bytecode.Iconst4).Op(bytecode.Iaload).ILoad(8).Op(bytecode.Iadd).
			Op(bytecode.Iastore).
			Op(bytecode.Return)
	})

	c := classfile.NewClass("gnu/java/security/hash/Sha160")
	c.Add(sha)
	return c
}

// MPNClass builds gnu/java/math/MPN's submul_1 and mul — the
// multi-precision kernels crypto.signverify and scimark.monte_carlo report
// as hot (Table 3).
func MPNClass() *classfile.Class {
	pool := classfile.NewConstantPool()
	cMask := pool.AddLong(0xffffffff)

	// int submul_1(int[] dest, int[] x, int size, int y)
	// Subtracts y*x from dest in place, returning the borrow word.
	// locals: 0=dest 1=x 2=size 3=y 4=yl(long) 5=carry 6=j 7=prod(long)
	//         8=prod_low 9=prod_high 10=x_j
	submul := build(pool, methodSpec{
		Name: "submul_1", Argc: 4, Returns: true, MaxLocals: 11,
	}, func(a *bytecode.Assembler) {
		a.ILoad(3).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).LStore(4).
			PushInt(0).IStore(5).
			PushInt(0).IStore(6).
			Label("loop").
			// prod = (x[j] & mask) * yl
			ALoad(1).ILoad(6).Op(bytecode.Iaload).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			LLoad(4).Op(bytecode.Lmul).LStore(7).
			// prod_low = (int) prod ; prod_high = (int)(prod >>> 32)
			LLoad(7).Op(bytecode.L2i).IStore(8).
			LLoad(7).PushInt(32).Op(bytecode.Lushr).Op(bytecode.L2i).IStore(9).
			// prod_low += carry; carry = (u32(prod_low) < u32(carry) ? 1:0) + prod_high
			ILoad(8).ILoad(5).Op(bytecode.Iadd).IStore(8).
			// unsigned compare via long masking
			ILoad(8).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			ILoad(5).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			Op(bytecode.Lcmp).Branch(bytecode.Ifge, "nocarry1").
			ILoad(9).Op(bytecode.Iconst1).Op(bytecode.Iadd).IStore(5).
			Branch(bytecode.Goto, "carried1").
			Label("nocarry1").
			ILoad(9).IStore(5).
			Label("carried1").
			// x_j = dest[j]; prod_low = x_j - prod_low
			ALoad(0).ILoad(6).Op(bytecode.Iaload).IStore(10).
			ILoad(10).ILoad(8).Op(bytecode.Isub).IStore(8).
			// if (u32(prod_low) > u32(x_j)) carry++
			ILoad(8).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			ILoad(10).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			Op(bytecode.Lcmp).Branch(bytecode.Ifle, "noborrow").
			Iinc(5, 1).
			Label("noborrow").
			ALoad(0).ILoad(6).ILoad(8).Op(bytecode.Iastore).
			Iinc(6, 1).
			ILoad(6).ILoad(2).Branch(bytecode.IfIcmplt, "loop").
			ILoad(5).Op(bytecode.Ireturn)
	})

	// void mul(int[] dest, int[] x, int xlen, int[] y, int ylen)
	// Schoolbook multiply of little-endian 32-bit limbs.
	// locals: 0=dest 1=x 2=xlen 3=y 4=ylen 5=j 6=yl(long) 7=carry(long)
	//         8=i 9=t(long)
	mul := build(pool, methodSpec{
		Name: "mul", Argc: 5, MaxLocals: 10,
	}, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(5).
			// clear dest[0 .. xlen+ylen)
			Label("clear").
			ILoad(5).ILoad(2).ILoad(4).Op(bytecode.Iadd).Branch(bytecode.IfIcmpge, "cleared").
			ALoad(0).ILoad(5).PushInt(0).Op(bytecode.Iastore).
			Iinc(5, 1).
			Branch(bytecode.Goto, "clear").
			Label("cleared").
			PushInt(0).IStore(5).
			Label("jloop").
			ILoad(5).ILoad(4).Branch(bytecode.IfIcmpge, "jdone").
			ALoad(3).ILoad(5).Op(bytecode.Iaload).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			LStore(6).
			PushInt(0).Op(bytecode.I2l).LStore(7).
			PushInt(0).IStore(8).
			Label("iloop").
			ILoad(8).ILoad(2).Branch(bytecode.IfIcmpge, "idone").
			// t = (x[i]&mask)*yl + (dest[i+j]&mask) + carry
			ALoad(1).ILoad(8).Op(bytecode.Iaload).Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			LLoad(6).Op(bytecode.Lmul).
			ALoad(0).ILoad(8).ILoad(5).Op(bytecode.Iadd).Op(bytecode.Iaload).
			Op(bytecode.I2l).Ldc(cMask, true).Op(bytecode.Land).
			Op(bytecode.Ladd).
			LLoad(7).Op(bytecode.Ladd).LStore(9).
			// dest[i+j] = (int) t; carry = t >>> 32
			ALoad(0).ILoad(8).ILoad(5).Op(bytecode.Iadd).
			LLoad(9).Op(bytecode.L2i).
			Op(bytecode.Iastore).
			LLoad(9).PushInt(32).Op(bytecode.Lushr).LStore(7).
			Iinc(8, 1).
			Branch(bytecode.Goto, "iloop").
			Label("idone").
			// dest[xlen+j] = (int) carry
			ALoad(0).ILoad(2).ILoad(5).Op(bytecode.Iadd).
			LLoad(7).Op(bytecode.L2i).
			Op(bytecode.Iastore).
			Iinc(5, 1).
			Branch(bytecode.Goto, "jloop").
			Label("jdone").
			Op(bytecode.Return)
	})

	c := classfile.NewClass("gnu/java/math/MPN")
	c.Add(submul).Add(mul)
	return c
}

// CryptoSuite assembles the crypto.signverify analog.
func CryptoSuite() *Suite {
	s := &Suite{
		Name: "crypto.signverify", Era: "SpecJvm2008",
		Classes: []*classfile.Class{Sha160Class(), MPNClass()},
		HotMethods: []string{
			"gnu/java/security/hash/Sha160.sha/2",
			"gnu/java/math/MPN.submul_1/4",
			"gnu/java/math/MPN.mul/5",
		},
	}
	s.Run = func(vm *jvm.Machine, scale int) error {
		sha := s.method("gnu/java/security/hash/Sha160", "sha")
		mul := s.method("gnu/java/math/MPN", "mul")
		submul := s.method("gnu/java/math/MPN", "submul_1")

		state := vm.NewIntArray([]int64{
			0x67452301, int64(int32(-271733879)), int64(int32(-1732584194)),
			0x10325476, int64(int32(-1009589776)),
		})
		block := make([]int64, 16)
		for i := range block {
			block[i] = int64(int32(0x01020304 * (i + 1)))
		}
		blockArr := vm.NewIntArray(block)
		for it := 0; it < 8*scale; it++ {
			if _, err := vm.Invoke(sha, state, blockArr); err != nil {
				return err
			}
		}

		const limbs = 16
		x := make([]int64, limbs)
		y := make([]int64, limbs)
		for i := range x {
			x[i] = int64(int32(0x9E3779B9 * (i + 1)))
			y[i] = int64(int32(0x7F4A7C15 * (i + 3)))
		}
		xa, ya := vm.NewIntArray(x), vm.NewIntArray(y)
		dest := vm.NewIntArray(make([]int64, 2*limbs))
		for it := 0; it < 4*scale; it++ {
			if _, err := vm.Invoke(mul, dest, xa, jvm.Int(limbs), ya, jvm.Int(limbs)); err != nil {
				return err
			}
			if _, err := vm.Invoke(submul, dest, xa, jvm.Int(limbs), jvm.Int(12345)); err != nil {
				return err
			}
		}
		return nil
	}
	return s
}
