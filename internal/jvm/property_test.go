package jvm

import (
	"math"
	"testing"
	"testing/quick"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// Property: int arithmetic in the interpreter matches Go int32 semantics
// (including overflow wraparound) for every operand pair.
func TestInt32ArithmeticProperty(t *testing.T) {
	vm := NewMachine()
	ops := map[bytecode.Opcode]func(a, b int32) int32{
		bytecode.Iadd: func(a, b int32) int32 { return a + b },
		bytecode.Isub: func(a, b int32) int32 { return a - b },
		bytecode.Imul: func(a, b int32) int32 { return a * b },
		bytecode.Iand: func(a, b int32) int32 { return a & b },
		bytecode.Ior:  func(a, b int32) int32 { return a | b },
		bytecode.Ixor: func(a, b int32) int32 { return a ^ b },
	}
	for op, ref := range ops {
		op, ref := op, ref
		m := buildBin(t, vm, "p_"+op.String(), op)
		f := func(a, b int32) bool {
			got, err := vm.Invoke(m, Int(int64(a)), Int(int64(b)))
			if err != nil {
				return false
			}
			return got.I == int64(ref(a, b))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func buildBin(t *testing.T, vm *Machine, name string, op bytecode.Opcode) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	a.ILoad(0).ILoad(1).Op(op).Op(bytecode.Ireturn)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{Name: name, Argc: 2, ReturnsValue: true,
		MaxLocals: 2, Code: code, Pool: classfile.NewConstantPool()}
	c := classfile.NewClass("P" + name)
	c.Add(m)
	if err := vm.Register(c); err != nil {
		t.Fatal(err)
	}
	return m
}

// Property: shift semantics mask the distance to 5 bits, as the JVM
// architects.
func TestShiftMaskingProperty(t *testing.T) {
	vm := NewMachine()
	m := buildBin(t, vm, "shl", bytecode.Ishl)
	f := func(a int32, dist int32) bool {
		got, err := vm.Invoke(m, Int(int64(a)), Int(int64(dist)))
		if err != nil {
			return false
		}
		return got.I == int64(a<<(uint(dist)&31))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: d2i saturates exactly like Java narrowing (NaN→0, ±∞→limits).
func TestD2IProperty(t *testing.T) {
	vm := NewMachine()
	a := bytecode.NewAssembler()
	a.DLoad(0).Op(bytecode.D2i).Op(bytecode.Ireturn)
	code, _ := a.Finish()
	m := &classfile.Method{Name: "d2i", Argc: 1, ReturnsValue: true,
		MaxLocals: 1, Code: code, Pool: classfile.NewConstantPool()}
	c := classfile.NewClass("PD2I")
	c.Add(m)
	if err := vm.Register(c); err != nil {
		t.Fatal(err)
	}
	ref := func(v float64) int64 {
		switch {
		case math.IsNaN(v):
			return 0
		case v <= math.MinInt32:
			return math.MinInt32
		case v >= math.MaxInt32:
			return math.MaxInt32
		default:
			return int64(v)
		}
	}
	f := func(v float64) bool {
		got, err := vm.Invoke(m, Double(v))
		if err != nil {
			return false
		}
		return got.I == ref(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Explicit edge cases quick rarely generates.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2147483647.9, -2147483648.9} {
		got, err := vm.Invoke(m, Double(v))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != ref(v) {
			t.Errorf("d2i(%v) = %d, want %d", v, got.I, ref(v))
		}
	}
}

// Property: the heap never hands out handle 0 and array bounds are
// enforced for every index.
func TestHeapBoundsProperty(t *testing.T) {
	h := NewHeap()
	ref, err := h.AllocArray(16, Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if ref.I == 0 {
		t.Fatal("allocated handle 0 (reserved for null)")
	}
	f := func(idx int16) bool {
		_, err := h.ArrayLoad(ref, Int(int64(idx)))
		inBounds := idx >= 0 && idx < 16
		return (err == nil) == inBounds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
