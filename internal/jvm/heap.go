package jvm

import "fmt"

// Object is a heap allocation: either a class instance with field slots or
// an array. (Figure 10: the Heap houses object instantiations of Classes.)
type Object struct {
	Class   string
	Fields  []Value
	Array   []Value
	IsArray bool
}

// Heap is the JVM heap. Handle 0 is reserved for null.
type Heap struct {
	objects []*Object
}

// NewHeap returns an empty heap with the null handle reserved.
func NewHeap() *Heap {
	return &Heap{objects: make([]*Object, 1)}
}

// Reset discards all allocations (a whole-heap garbage collection, used
// between benchmark iterations).
func (h *Heap) Reset() { h.objects = h.objects[:1] }

// Size returns the number of live allocations.
func (h *Heap) Size() int { return len(h.objects) - 1 }

// AllocObject allocates an instance of class with n field slots.
func (h *Heap) AllocObject(class string, n int) Value {
	h.objects = append(h.objects, &Object{Class: class, Fields: make([]Value, n)})
	return Ref(int64(len(h.objects) - 1))
}

// AllocArray allocates an array of length n (elements zero-initialized to
// elemZero, which fixes the element kind).
func (h *Heap) AllocArray(n int, elemZero Value) (Value, error) {
	if n < 0 {
		return Null, &ThrownError{Exception: "NegativeArraySizeException", Detail: fmt.Sprint(n)}
	}
	arr := make([]Value, n)
	for i := range arr {
		arr[i] = elemZero
	}
	h.objects = append(h.objects, &Object{Class: "[]", Array: arr, IsArray: true})
	return Ref(int64(len(h.objects) - 1)), nil
}

// Get dereferences a handle.
func (h *Heap) Get(ref Value) (*Object, error) {
	if ref.K != KindRef {
		return nil, fmt.Errorf("jvm: dereferencing non-reference %s", ref)
	}
	if ref.I == 0 {
		return nil, &ThrownError{Exception: "NullPointerException"}
	}
	if ref.I < 0 || ref.I >= int64(len(h.objects)) {
		return nil, fmt.Errorf("jvm: dangling heap handle %d", ref.I)
	}
	return h.objects[ref.I], nil
}

// ArrayLoad reads arr[idx] with the architected bounds check.
func (h *Heap) ArrayLoad(arrRef, idx Value) (Value, error) {
	obj, err := h.Get(arrRef)
	if err != nil {
		return Value{}, err
	}
	if !obj.IsArray {
		return Value{}, fmt.Errorf("jvm: array load on non-array %s", obj.Class)
	}
	i := idx.I
	if i < 0 || i >= int64(len(obj.Array)) {
		return Value{}, &ThrownError{
			Exception: "ArrayIndexOutOfBoundsException",
			Detail:    fmt.Sprintf("index %d, length %d", i, len(obj.Array)),
		}
	}
	return obj.Array[i], nil
}

// ArrayStore writes arr[idx] = v with the architected bounds check.
func (h *Heap) ArrayStore(arrRef, idx, v Value) error {
	obj, err := h.Get(arrRef)
	if err != nil {
		return err
	}
	if !obj.IsArray {
		return fmt.Errorf("jvm: array store on non-array %s", obj.Class)
	}
	i := idx.I
	if i < 0 || i >= int64(len(obj.Array)) {
		return &ThrownError{
			Exception: "ArrayIndexOutOfBoundsException",
			Detail:    fmt.Sprintf("index %d, length %d", i, len(obj.Array)),
		}
	}
	obj.Array[i] = v
	return nil
}

// ThrownError models a Java exception surfacing from execution; the fabric
// delegates these to the General Purpose Processor (Section 6.3,
// Exceptions).
type ThrownError struct {
	Exception string
	Detail    string
}

func (e *ThrownError) Error() string {
	if e.Detail == "" {
		return "java exception: " + e.Exception
	}
	return "java exception: " + e.Exception + ": " + e.Detail
}
