// Package jvm implements a baseline Java Virtual Machine bytecode
// interpreter: the instrumented-interpreter substrate the dissertation used
// (a modified JAMVM 1.5.3) to derive the dynamic instruction mixes of
// Chapter 5. It executes the same verified methods that the DataFlow Fabric
// loads, counting every ByteCode executed per method signature, and models
// the _Quick rewrite of storage instructions whose resolution Table 5
// quantifies.
//
// The load-bearing invariant: instrumentation observes, never perturbs —
// counting instructions must not change what the program computes, so
// the profiled interpreter's results stay comparable with every other
// execution substrate in the repository.
package jvm

import "fmt"

// Kind discriminates runtime values. The JavaFlow model carries every value
// as a single stack element; the kind corresponds to the strongly-typed tag
// each network message carries (Figure 15).
type Kind uint8

const (
	KindInt Kind = iota
	KindLong
	KindFloat
	KindDouble
	KindRef
	KindRetAddr
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindRef:
		return "ref"
	case KindRetAddr:
		return "retaddr"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single typed JVM value. Integral kinds use I; floating kinds
// use F; references hold a heap handle in I (handle 0 is null).
type Value struct {
	K Kind
	I int64
	F float64
}

// Int constructs an int value.
func Int(v int64) Value { return Value{K: KindInt, I: int64(int32(v))} }

// Long constructs a long value.
func Long(v int64) Value { return Value{K: KindLong, I: v} }

// Float constructs a float value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Double constructs a double value.
func Double(v float64) Value { return Value{K: KindDouble, F: v} }

// Ref constructs a reference to heap handle h.
func Ref(h int64) Value { return Value{K: KindRef, I: h} }

// Null is the null reference.
var Null = Value{K: KindRef, I: 0}

// IsNull reports whether v is the null reference.
func (v Value) IsNull() bool { return v.K == KindRef && v.I == 0 }

// AsBool interprets an int value as a branch condition.
func (v Value) AsBool() bool { return v.I != 0 }

func (v Value) String() string {
	switch v.K {
	case KindFloat, KindDouble:
		return fmt.Sprintf("%s(%g)", v.K, v.F)
	case KindRef:
		if v.I == 0 {
			return "null"
		}
		return fmt.Sprintf("ref(%d)", v.I)
	default:
		return fmt.Sprintf("%s(%d)", v.K, v.I)
	}
}
