package jvm

import (
	"fmt"
	"math"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// frame is one activation record: a method's locals, operand stack, and pc.
type frame struct {
	m      *classfile.Method
	locals []Value
	stack  []Value
	pc     int
}

func (f *frame) push(v Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() (Value, error) {
	if len(f.stack) == 0 {
		return Value{}, fmt.Errorf("jvm: stack underflow in %s at %d", f.m.Signature(), f.pc)
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v, nil
}

func (f *frame) popN(n int) ([]Value, error) {
	if len(f.stack) < n {
		return nil, fmt.Errorf("jvm: stack underflow (%d < %d) in %s at %d", len(f.stack), n, f.m.Signature(), f.pc)
	}
	vs := make([]Value, n)
	copy(vs, f.stack[len(f.stack)-n:])
	f.stack = f.stack[:len(f.stack)-n]
	return vs, nil
}

// Invoke executes method m with the given arguments (receiver first for
// instance methods) and returns the result value, if any.
func (vm *Machine) Invoke(m *classfile.Method, args ...Value) (Value, error) {
	if got, want := len(args), m.ParamRegisters(); got != want {
		return Value{}, fmt.Errorf("jvm: %s wants %d argument registers, got %d", m.Signature(), want, got)
	}
	maxSteps := vm.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	maxDepth := vm.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}

	frames := []*frame{newFrame(m, args)}
	if vm.Profile != nil {
		vm.Profile.recordInvocation(m.Signature())
	}
	var steps uint64

	for {
		f := frames[len(frames)-1]
		if f.pc < 0 || f.pc >= len(f.m.Code) {
			return Value{}, fmt.Errorf("jvm: pc %d out of range in %s", f.pc, f.m.Signature())
		}
		if steps++; steps > maxSteps {
			return Value{}, fmt.Errorf("jvm: step limit %d exceeded in %s", maxSteps, f.m.Signature())
		}

		in := f.m.Code[f.pc]
		op := in.Op

		// _Quick rewriting: the first execution of a base storage opcode
		// performs the constant-pool resolution and patches the site
		// (Section 3.6); subsequent executions run the _Quick form.
		if vm.QuickRewrite {
			if quick, ok := bytecode.QuickForm(op); ok && quick != op {
				if vm.Profile != nil {
					vm.Profile.record(f.m.Signature(), op)
				}
				f.m.Code[f.pc].Op = quick
				// The resolution itself (Constant Pool access) is counted
				// as the base-form execution; re-execute as _Quick next
				// iteration without advancing pc.
				continue
			}
		}
		if vm.Profile != nil {
			vm.Profile.record(f.m.Signature(), op)
		}

		next := f.pc + 1
		ret, retVal, err := vm.step(f, in, &next)
		if err != nil {
			return Value{}, fmt.Errorf("%s at %d (%s): %w", f.m.Signature(), f.pc, op, err)
		}

		switch ret {
		case stepNext:
			f.pc = next
		case stepCall:
			callee := retVal.callee
			if len(frames) >= maxDepth {
				return Value{}, &ThrownError{Exception: "StackOverflowError",
					Detail: fmt.Sprintf("depth %d", len(frames))}
			}
			f.pc = next // resume point after the call returns
			frames = append(frames, newFrame(callee, retVal.args))
			if vm.Profile != nil {
				vm.Profile.recordInvocation(callee.Signature())
			}
		case stepReturn:
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return retVal.value, nil
			}
			caller := frames[len(frames)-1]
			if retVal.hasValue {
				caller.push(retVal.value)
			}
		}
	}
}

func newFrame(m *classfile.Method, args []Value) *frame {
	f := &frame{
		m:      m,
		locals: make([]Value, m.MaxLocals),
		stack:  make([]Value, 0, m.MaxStack),
	}
	copy(f.locals, args)
	return f
}

type stepKind uint8

const (
	stepNext stepKind = iota
	stepCall
	stepReturn
)

type stepResult struct {
	callee   *classfile.Method
	args     []Value
	value    Value
	hasValue bool
}

// step executes one instruction. next is pre-set to pc+1 and may be
// redirected by control flow.
func (vm *Machine) step(f *frame, in bytecode.Instruction, next *int) (stepKind, stepResult, error) {
	op := in.Op
	switch {
	case op == bytecode.Nop:
		return stepNext, stepResult{}, nil

	// ----- constants and stack moves -----
	case op == bytecode.AconstNull:
		f.push(Null)
		return stepNext, stepResult{}, nil
	case op >= bytecode.IconstM1 && op <= bytecode.Iconst5:
		v, _ := in.IntConst()
		f.push(Int(v))
		return stepNext, stepResult{}, nil
	case op == bytecode.Lconst0 || op == bytecode.Lconst1:
		v, _ := in.IntConst()
		f.push(Long(v))
		return stepNext, stepResult{}, nil
	case op >= bytecode.Fconst0 && op <= bytecode.Fconst2:
		v, _ := in.FloatConst()
		f.push(Float(v))
		return stepNext, stepResult{}, nil
	case op == bytecode.Dconst0 || op == bytecode.Dconst1:
		v, _ := in.FloatConst()
		f.push(Double(v))
		return stepNext, stepResult{}, nil
	case op == bytecode.Bipush || op == bytecode.Sipush:
		f.push(Int(in.A))
		return stepNext, stepResult{}, nil

	case op == bytecode.Pop:
		_, err := f.pop()
		return stepNext, stepResult{}, err
	case op == bytecode.Pop2:
		_, err := f.popN(2)
		return stepNext, stepResult{}, err
	case op == bytecode.Dup:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(v)
		f.push(v)
		return stepNext, stepResult{}, nil
	case op == bytecode.DupX1:
		vs, err := f.popN(2) // vs = [v2 v1]
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[1])
		f.push(vs[0])
		f.push(vs[1])
		return stepNext, stepResult{}, nil
	case op == bytecode.DupX2:
		vs, err := f.popN(3) // [v3 v2 v1]
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[2])
		f.push(vs[0])
		f.push(vs[1])
		f.push(vs[2])
		return stepNext, stepResult{}, nil
	case op == bytecode.Dup2:
		vs, err := f.popN(2)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[0])
		f.push(vs[1])
		f.push(vs[0])
		f.push(vs[1])
		return stepNext, stepResult{}, nil
	case op == bytecode.Dup2X1:
		vs, err := f.popN(3) // [v3 v2 v1]
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[1])
		f.push(vs[2])
		f.push(vs[0])
		f.push(vs[1])
		f.push(vs[2])
		return stepNext, stepResult{}, nil
	case op == bytecode.Dup2X2:
		vs, err := f.popN(4) // [v4 v3 v2 v1]
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[2])
		f.push(vs[3])
		f.push(vs[0])
		f.push(vs[1])
		f.push(vs[2])
		f.push(vs[3])
		return stepNext, stepResult{}, nil
	case op == bytecode.Swap:
		vs, err := f.popN(2)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(vs[1])
		f.push(vs[0])
		return stepNext, stepResult{}, nil

	// ----- local registers -----
	case in.Group() == bytecode.GroupLocalRead:
		reg, _ := in.LocalIndex()
		f.push(f.locals[reg])
		return stepNext, stepResult{}, nil
	case in.Group() == bytecode.GroupLocalWrite:
		reg, _ := in.LocalIndex()
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.locals[reg] = v
		return stepNext, stepResult{}, nil
	case op == bytecode.Iinc:
		reg := int(in.A)
		f.locals[reg] = Int(f.locals[reg].I + in.B)
		return stepNext, stepResult{}, nil

	// ----- arithmetic -----
	case op >= bytecode.Iadd && op <= bytecode.Lxor:
		return stepNext, stepResult{}, vm.arith(f, op)
	case op >= bytecode.I2l && op <= bytecode.I2s:
		return stepNext, stepResult{}, vm.convert(f, op)
	case op >= bytecode.Lcmp && op <= bytecode.Dcmpg:
		return stepNext, stepResult{}, vm.compare(f, op)

	// ----- control flow -----
	case op == bytecode.Goto || op == bytecode.GotoW:
		*next = in.Target
		return stepNext, stepResult{}, nil
	case op >= bytecode.Ifeq && op <= bytecode.Ifle:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if intCondition(op, v.I) {
			*next = in.Target
		}
		return stepNext, stepResult{}, nil
	case op >= bytecode.IfIcmpeq && op <= bytecode.IfIcmple:
		vs, err := f.popN(2)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if intCondition(op-(bytecode.IfIcmpeq-bytecode.Ifeq), vs[0].I-vs[1].I) {
			*next = in.Target
		}
		return stepNext, stepResult{}, nil
	case op == bytecode.IfAcmpeq || op == bytecode.IfAcmpne:
		vs, err := f.popN(2)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		eq := vs[0].I == vs[1].I
		if (op == bytecode.IfAcmpeq) == eq {
			*next = in.Target
		}
		return stepNext, stepResult{}, nil
	case op == bytecode.Ifnull || op == bytecode.Ifnonnull:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if (op == bytecode.Ifnull) == v.IsNull() {
			*next = in.Target
		}
		return stepNext, stepResult{}, nil
	case op == bytecode.Lookupswitch:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		*next = in.Target
		for i, k := range in.SwitchKeys {
			if k == v.I {
				*next = in.SwitchTargets[i]
				break
			}
		}
		return stepNext, stepResult{}, nil
	case op == bytecode.Jsr || op == bytecode.JsrW:
		f.push(Value{K: KindRetAddr, I: int64(f.pc + 1)})
		*next = in.Target
		return stepNext, stepResult{}, nil
	case op == bytecode.Ret:
		ra := f.locals[int(in.A)]
		if ra.K != KindRetAddr {
			return stepNext, stepResult{}, fmt.Errorf("ret on non-return-address %s", ra)
		}
		*next = int(ra.I)
		return stepNext, stepResult{}, nil

	// ----- returns -----
	case op == bytecode.Return:
		return stepReturn, stepResult{}, nil
	case op == bytecode.Ireturn || op == bytecode.Lreturn || op == bytecode.Freturn ||
		op == bytecode.Dreturn || op == bytecode.Areturn:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		return stepReturn, stepResult{value: v, hasValue: true}, nil
	case op == bytecode.Athrow:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		exc := "java/lang/Throwable"
		if obj, derefErr := vm.Heap.Get(v); derefErr == nil {
			exc = obj.Class
		}
		return stepNext, stepResult{}, &ThrownError{Exception: exc}

	// ----- constant pool loads -----
	case op == bytecode.Ldc || op == bytecode.LdcW || op == bytecode.Ldc2W:
		c, err := f.m.Pool.At(int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		switch c.Kind {
		case classfile.ConstInt:
			f.push(Int(c.I))
		case classfile.ConstLong:
			f.push(Long(c.I))
		case classfile.ConstFloat:
			f.push(Float(c.F))
		case classfile.ConstDouble:
			f.push(Double(c.F))
		case classfile.ConstString:
			f.push(vm.internString(c.S))
		default:
			return stepNext, stepResult{}, fmt.Errorf("ldc of %s constant", c.Kind)
		}
		return stepNext, stepResult{}, nil

	// ----- arrays -----
	case op >= bytecode.Iaload && op <= bytecode.Saload:
		vs, err := f.popN(2)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		v, err := vm.Heap.ArrayLoad(vs[0], vs[1])
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(v)
		return stepNext, stepResult{}, nil
	case op >= bytecode.Iastore && op <= bytecode.Sastore:
		vs, err := f.popN(3)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		return stepNext, stepResult{}, vm.Heap.ArrayStore(vs[0], vs[1], vs[2])
	case op == bytecode.Arraylength:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		obj, err := vm.Heap.Get(v)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if !obj.IsArray {
			return stepNext, stepResult{}, fmt.Errorf("arraylength of non-array")
		}
		f.push(Int(int64(len(obj.Array))))
		return stepNext, stepResult{}, nil
	case op == bytecode.Newarray:
		n, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		zero := arrayZero(int(in.A))
		ref, err := vm.Heap.AllocArray(int(n.I), zero)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(ref)
		return stepNext, stepResult{}, nil
	case op == bytecode.Anewarray:
		n, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		ref, err := vm.Heap.AllocArray(int(n.I), Null)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(ref)
		return stepNext, stepResult{}, nil
	case op == bytecode.Multianewarray:
		dims := int(in.B)
		vs, err := f.popN(dims)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		ref, err := vm.allocMulti(vs)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(ref)
		return stepNext, stepResult{}, nil

	// ----- fields -----
	case op == bytecode.GetstaticQuick || op == bytecode.Getstatic:
		fr, err := vm.fieldRef(f, int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		v, err := vm.Static(fr.Class, fr.Slot)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		f.push(v)
		return stepNext, stepResult{}, nil
	case op == bytecode.PutstaticQuick || op == bytecode.Putstatic:
		fr, err := vm.fieldRef(f, int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		return stepNext, stepResult{}, vm.SetStatic(fr.Class, fr.Slot, v)
	case op == bytecode.GetfieldQuick || op == bytecode.Getfield:
		fr, err := vm.fieldRef(f, int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		ref, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		obj, err := vm.Heap.Get(ref)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if fr.Slot < 0 || fr.Slot >= len(obj.Fields) {
			return stepNext, stepResult{}, fmt.Errorf("field slot %d out of range (%d)", fr.Slot, len(obj.Fields))
		}
		f.push(obj.Fields[fr.Slot])
		return stepNext, stepResult{}, nil
	case op == bytecode.PutfieldQuick || op == bytecode.Putfield:
		fr, err := vm.fieldRef(f, int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		vs, err := f.popN(2) // [objectref value]
		if err != nil {
			return stepNext, stepResult{}, err
		}
		obj, err := vm.Heap.Get(vs[0])
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if fr.Slot < 0 || fr.Slot >= len(obj.Fields) {
			return stepNext, stepResult{}, fmt.Errorf("field slot %d out of range (%d)", fr.Slot, len(obj.Fields))
		}
		obj.Fields[fr.Slot] = vs[1]
		return stepNext, stepResult{}, nil

	// ----- calls -----
	case in.IsCall():
		c, err := f.m.Pool.At(int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if c.Kind != classfile.ConstMethodRef {
			return stepNext, stepResult{}, fmt.Errorf("invoke of %s constant", c.Kind)
		}
		// GPP-serviced (native) methods short-circuit the frame machinery,
		// as Service instructions do in the fabric.
		if fn, ok := vm.Native(c.Method.Class, c.Method.Name); ok {
			args, err := f.popN(in.Pop)
			if err != nil {
				return stepNext, stepResult{}, err
			}
			res, err := fn(vm, args)
			if err != nil {
				return stepNext, stepResult{}, err
			}
			if c.Method.ReturnsValue {
				f.push(res)
			}
			return stepNext, stepResult{}, nil
		}
		callee, err := vm.LookupMethod(c.Method)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		args, err := f.popN(in.Pop)
		if err != nil {
			return stepNext, stepResult{}, err
		}
		full := make([]Value, callee.MaxLocals)
		copy(full, args)
		return stepCall, stepResult{callee: callee, args: full[:callee.ParamRegisters()]}, nil

	// ----- specials -----
	case op == bytecode.New:
		c, err := f.m.Pool.At(int(in.A))
		if err != nil {
			return stepNext, stepResult{}, err
		}
		name := c.S
		slots := 0
		if cls, ok := vm.Classes[name]; ok {
			slots = cls.InstanceSlots
		}
		f.push(vm.Heap.AllocObject(name, slots))
		return stepNext, stepResult{}, nil
	case op == bytecode.Checkcast:
		return stepNext, stepResult{}, nil // type system is trusted in the corpus
	case op == bytecode.Instanceof:
		v, err := f.pop()
		if err != nil {
			return stepNext, stepResult{}, err
		}
		if v.IsNull() {
			f.push(Int(0))
		} else {
			f.push(Int(1))
		}
		return stepNext, stepResult{}, nil
	case op == bytecode.Monitorenter || op == bytecode.Monitorexit:
		_, err := f.pop()
		return stepNext, stepResult{}, err

	default:
		return stepNext, stepResult{}, fmt.Errorf("unimplemented opcode %s", op)
	}
}

// fieldRef resolves a constant-pool field reference.
func (vm *Machine) fieldRef(f *frame, cpIndex int) (classfile.FieldRef, error) {
	c, err := f.m.Pool.At(cpIndex)
	if err != nil {
		return classfile.FieldRef{}, err
	}
	if c.Kind != classfile.ConstFieldRef {
		return classfile.FieldRef{}, fmt.Errorf("constant %d is %s, not a field ref", cpIndex, c.Kind)
	}
	return c.Field, nil
}

// allocMulti allocates nested reference arrays for multianewarray; leaves
// are reference arrays of nulls (the corpus types them on first store).
func (vm *Machine) allocMulti(dims []Value) (Value, error) {
	n := int(dims[0].I)
	if len(dims) == 1 {
		return vm.Heap.AllocArray(n, Null)
	}
	outer, err := vm.Heap.AllocArray(n, Null)
	if err != nil {
		return Null, err
	}
	obj, err := vm.Heap.Get(outer)
	if err != nil {
		return Null, err
	}
	for i := 0; i < n; i++ {
		inner, err := vm.allocMulti(dims[1:])
		if err != nil {
			return Null, err
		}
		obj.Array[i] = inner
	}
	return outer, nil
}

// arrayZero maps the architected newarray atype codes to element zeros.
func arrayZero(atype int) Value {
	switch atype {
	case 6: // T_FLOAT
		return Float(0)
	case 7: // T_DOUBLE
		return Double(0)
	case 11: // T_LONG
		return Long(0)
	default: // boolean, char, byte, short, int
		return Int(0)
	}
}

// intCondition evaluates an ifXX opcode against v (v is the left-right
// difference for if_icmp forms).
func intCondition(op bytecode.Opcode, v int64) bool {
	switch op {
	case bytecode.Ifeq:
		return v == 0
	case bytecode.Ifne:
		return v != 0
	case bytecode.Iflt:
		return v < 0
	case bytecode.Ifge:
		return v >= 0
	case bytecode.Ifgt:
		return v > 0
	case bytecode.Ifle:
		return v <= 0
	}
	return false
}

// arith implements the integer, long, float and double arithmetic opcodes.
func (vm *Machine) arith(f *frame, op bytecode.Opcode) error {
	info := bytecode.MustLookup(op)
	vs, err := f.popN(info.Pop)
	if err != nil {
		return err
	}
	switch op {
	// unary
	case bytecode.Ineg:
		f.push(Int(-vs[0].I))
	case bytecode.Lneg:
		f.push(Long(-vs[0].I))
	case bytecode.Fneg:
		f.push(Float(-vs[0].F))
	case bytecode.Dneg:
		f.push(Double(-vs[0].F))

	// int binary
	case bytecode.Iadd:
		f.push(Int(vs[0].I + vs[1].I))
	case bytecode.Isub:
		f.push(Int(vs[0].I - vs[1].I))
	case bytecode.Imul:
		f.push(Int(vs[0].I * vs[1].I))
	case bytecode.Idiv:
		if vs[1].I == 0 {
			return &ThrownError{Exception: "ArithmeticException", Detail: "/ by zero"}
		}
		f.push(Int(vs[0].I / vs[1].I))
	case bytecode.Irem:
		if vs[1].I == 0 {
			return &ThrownError{Exception: "ArithmeticException", Detail: "% by zero"}
		}
		f.push(Int(vs[0].I % vs[1].I))
	case bytecode.Ishl:
		f.push(Int(vs[0].I << uint(vs[1].I&31)))
	case bytecode.Ishr:
		f.push(Int(int64(int32(vs[0].I)) >> uint(vs[1].I&31)))
	case bytecode.Iushr:
		f.push(Int(int64(uint32(vs[0].I) >> uint(vs[1].I&31))))
	case bytecode.Iand:
		f.push(Int(vs[0].I & vs[1].I))
	case bytecode.Ior:
		f.push(Int(vs[0].I | vs[1].I))
	case bytecode.Ixor:
		f.push(Int(vs[0].I ^ vs[1].I))

	// long binary
	case bytecode.Ladd:
		f.push(Long(vs[0].I + vs[1].I))
	case bytecode.Lsub:
		f.push(Long(vs[0].I - vs[1].I))
	case bytecode.Lmul:
		f.push(Long(vs[0].I * vs[1].I))
	case bytecode.Ldiv:
		if vs[1].I == 0 {
			return &ThrownError{Exception: "ArithmeticException", Detail: "/ by zero"}
		}
		f.push(Long(vs[0].I / vs[1].I))
	case bytecode.Lrem:
		if vs[1].I == 0 {
			return &ThrownError{Exception: "ArithmeticException", Detail: "% by zero"}
		}
		f.push(Long(vs[0].I % vs[1].I))
	case bytecode.Lshl:
		f.push(Long(vs[0].I << uint(vs[1].I&63)))
	case bytecode.Lshr:
		f.push(Long(vs[0].I >> uint(vs[1].I&63)))
	case bytecode.Lushr:
		f.push(Long(int64(uint64(vs[0].I) >> uint(vs[1].I&63))))
	case bytecode.Land:
		f.push(Long(vs[0].I & vs[1].I))
	case bytecode.Lor:
		f.push(Long(vs[0].I | vs[1].I))
	case bytecode.Lxor:
		f.push(Long(vs[0].I ^ vs[1].I))

	// float/double binary
	case bytecode.Fadd:
		f.push(Float(vs[0].F + vs[1].F))
	case bytecode.Fsub:
		f.push(Float(vs[0].F - vs[1].F))
	case bytecode.Fmul:
		f.push(Float(vs[0].F * vs[1].F))
	case bytecode.Fdiv:
		f.push(Float(vs[0].F / vs[1].F))
	case bytecode.Frem:
		f.push(Float(math.Mod(vs[0].F, vs[1].F)))
	case bytecode.Dadd:
		f.push(Double(vs[0].F + vs[1].F))
	case bytecode.Dsub:
		f.push(Double(vs[0].F - vs[1].F))
	case bytecode.Dmul:
		f.push(Double(vs[0].F * vs[1].F))
	case bytecode.Ddiv:
		f.push(Double(vs[0].F / vs[1].F))
	case bytecode.Drem:
		f.push(Double(math.Mod(vs[0].F, vs[1].F)))

	default:
		return fmt.Errorf("arith: unhandled %s", op)
	}
	return nil
}

// convert implements the conversion opcodes (Table 29).
func (vm *Machine) convert(f *frame, op bytecode.Opcode) error {
	v, err := f.pop()
	if err != nil {
		return err
	}
	switch op {
	case bytecode.I2l:
		f.push(Long(v.I))
	case bytecode.I2f:
		f.push(Float(float64(v.I)))
	case bytecode.I2d:
		f.push(Double(float64(v.I)))
	case bytecode.L2i:
		f.push(Int(v.I))
	case bytecode.L2f:
		f.push(Float(float64(v.I)))
	case bytecode.L2d:
		f.push(Double(float64(v.I)))
	case bytecode.F2i:
		f.push(Int(floatToInt(v.F, math.MinInt32, math.MaxInt32)))
	case bytecode.F2l:
		f.push(Long(floatToInt(v.F, math.MinInt64, math.MaxInt64)))
	case bytecode.F2d:
		f.push(Double(v.F))
	case bytecode.D2i:
		f.push(Int(floatToInt(v.F, math.MinInt32, math.MaxInt32)))
	case bytecode.D2l:
		f.push(Long(floatToInt(v.F, math.MinInt64, math.MaxInt64)))
	case bytecode.D2f:
		f.push(Float(v.F))
	case bytecode.I2b:
		f.push(Int(int64(int8(v.I))))
	case bytecode.I2c:
		f.push(Int(int64(uint16(v.I))))
	case bytecode.I2s:
		f.push(Int(int64(int16(v.I))))
	default:
		return fmt.Errorf("convert: unhandled %s", op)
	}
	return nil
}

// floatToInt applies Java narrowing semantics: NaN to zero, out-of-range
// saturates.
func floatToInt(f float64, min, max int64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f <= float64(min):
		return min
	case f >= float64(max):
		return max
	default:
		return int64(f)
	}
}

// compare implements lcmp and the NaN-biased float/double compares.
func (vm *Machine) compare(f *frame, op bytecode.Opcode) error {
	vs, err := f.popN(2)
	if err != nil {
		return err
	}
	var r int64
	switch op {
	case bytecode.Lcmp:
		switch {
		case vs[0].I < vs[1].I:
			r = -1
		case vs[0].I > vs[1].I:
			r = 1
		}
	case bytecode.Fcmpl, bytecode.Dcmpl:
		switch {
		case math.IsNaN(vs[0].F) || math.IsNaN(vs[1].F):
			r = -1
		case vs[0].F < vs[1].F:
			r = -1
		case vs[0].F > vs[1].F:
			r = 1
		}
	case bytecode.Fcmpg, bytecode.Dcmpg:
		switch {
		case math.IsNaN(vs[0].F) || math.IsNaN(vs[1].F):
			r = 1
		case vs[0].F < vs[1].F:
			r = -1
		case vs[0].F > vs[1].F:
			r = 1
		}
	default:
		return fmt.Errorf("compare: unhandled %s", op)
	}
	f.push(Int(r))
	return nil
}
