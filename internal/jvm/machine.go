package jvm

import (
	"fmt"
	"math"

	"javaflow/internal/classfile"
)

// Machine is the interpreting JVM: loaded classes, static field areas, the
// heap, and the dynamic-mix profiler. It is the baseline substrate whose
// instrumentation drives the Chapter 5 analysis.
type Machine struct {
	Classes map[string]*classfile.Class
	Statics map[string][]Value
	Heap    *Heap
	Profile *Profile

	// QuickRewrite enables rewriting base storage opcodes to their _Quick
	// forms on first execution, as classic interpreters do (Section 3.6).
	QuickRewrite bool

	// MaxSteps bounds total executed instructions per Invoke (0 = default).
	MaxSteps uint64
	// MaxDepth bounds the call stack (0 = default).
	MaxDepth int

	strings map[string]Value
	natives map[string]NativeFunc
}

// NativeFunc implements a method outside the bytecode world — the
// interpreter's equivalent of the fabric delegating a Service instruction to
// the General Purpose Processor (Section 6.3, Service Operations).
type NativeFunc func(vm *Machine, args []Value) (Value, error)

// DefaultMaxSteps bounds a single Invoke unless overridden.
const DefaultMaxSteps = 1 << 32

// DefaultMaxDepth bounds call nesting unless overridden.
const DefaultMaxDepth = 512

// NewMachine returns an empty machine with profiling enabled.
func NewMachine() *Machine {
	vm := &Machine{
		Classes:      make(map[string]*classfile.Class),
		Statics:      make(map[string][]Value),
		Heap:         NewHeap(),
		Profile:      NewProfile(),
		QuickRewrite: true,
		strings:      make(map[string]Value),
		natives:      make(map[string]NativeFunc),
	}
	registerMathNatives(vm)
	return vm
}

// RegisterNative binds a GPP-serviced method under "Class.Name".
func (vm *Machine) RegisterNative(class, name string, fn NativeFunc) {
	vm.natives[class+"."+name] = fn
}

// Native looks up a registered native method.
func (vm *Machine) Native(class, name string) (NativeFunc, bool) {
	fn, ok := vm.natives[class+"."+name]
	return fn, ok
}

// registerMathNatives provides the small java/lang/Math subset the SPEC
// analog workloads call.
func registerMathNatives(vm *Machine) {
	unary := func(f func(float64) float64) NativeFunc {
		return func(_ *Machine, args []Value) (Value, error) {
			if len(args) != 1 {
				return Value{}, fmt.Errorf("math native wants 1 arg, got %d", len(args))
			}
			return Double(f(args[0].F)), nil
		}
	}
	vm.RegisterNative("java/lang/Math", "cos", unary(mathCos))
	vm.RegisterNative("java/lang/Math", "sin", unary(mathSin))
	vm.RegisterNative("java/lang/Math", "sqrt", unary(mathSqrt))
	vm.RegisterNative("java/lang/Math", "abs", unary(mathAbs))
}

// Register loads a class: verifies every method and allocates its static
// area (the Preparation and Verification steps of Section 6.2).
func (vm *Machine) Register(c *classfile.Class) error {
	for _, m := range c.Methods {
		if err := classfile.Verify(m); err != nil {
			return fmt.Errorf("register %s: %w", c.Name, err)
		}
	}
	vm.Classes[c.Name] = c
	vm.Statics[c.Name] = make([]Value, c.StaticSlots)
	return nil
}

// LookupMethod resolves a method reference against the loaded classes.
func (vm *Machine) LookupMethod(ref classfile.MethodRef) (*classfile.Method, error) {
	c, ok := vm.Classes[ref.Class]
	if !ok {
		return nil, fmt.Errorf("jvm: class %s not loaded", ref.Class)
	}
	return c.Method(ref.Name)
}

// Static reads a static field slot.
func (vm *Machine) Static(class string, slot int) (Value, error) {
	area, ok := vm.Statics[class]
	if !ok {
		return Value{}, fmt.Errorf("jvm: class %s not loaded", class)
	}
	if slot < 0 || slot >= len(area) {
		return Value{}, fmt.Errorf("jvm: static slot %d out of range for %s", slot, class)
	}
	return area[slot], nil
}

// SetStatic writes a static field slot.
func (vm *Machine) SetStatic(class string, slot int, v Value) error {
	area, ok := vm.Statics[class]
	if !ok {
		return fmt.Errorf("jvm: class %s not loaded", class)
	}
	if slot < 0 || slot >= len(area) {
		return fmt.Errorf("jvm: static slot %d out of range for %s", slot, class)
	}
	area[slot] = v
	return nil
}

// internString returns a canonical heap reference for a string constant.
func (vm *Machine) internString(s string) Value {
	if ref, ok := vm.strings[s]; ok {
		return ref
	}
	ref := vm.Heap.AllocObject("java/lang/String", 1)
	obj, _ := vm.Heap.Get(ref)
	obj.Fields[0] = Int(int64(len(s)))
	vm.strings[s] = ref
	return ref
}

// NewIntArray is a convenience allocator used by workload drivers.
func (vm *Machine) NewIntArray(data []int64) Value {
	ref, _ := vm.Heap.AllocArray(len(data), Int(0))
	obj, _ := vm.Heap.Get(ref)
	for i, v := range data {
		obj.Array[i] = Int(v)
	}
	return ref
}

// NewDoubleArray is a convenience allocator used by workload drivers.
func (vm *Machine) NewDoubleArray(data []float64) Value {
	ref, _ := vm.Heap.AllocArray(len(data), Double(0))
	obj, _ := vm.Heap.Get(ref)
	for i, v := range data {
		obj.Array[i] = Double(v)
	}
	return ref
}

// NewMatrix allocates a rows×cols array of double arrays.
func (vm *Machine) NewMatrix(rows, cols int) Value {
	outer, _ := vm.Heap.AllocArray(rows, Null)
	obj, _ := vm.Heap.Get(outer)
	for i := 0; i < rows; i++ {
		inner, _ := vm.Heap.AllocArray(cols, Double(0))
		obj.Array[i] = inner
	}
	return outer
}

// DoubleArrayData copies out the contents of a double array for assertions.
func (vm *Machine) DoubleArrayData(ref Value) ([]float64, error) {
	obj, err := vm.Heap.Get(ref)
	if err != nil {
		return nil, err
	}
	if !obj.IsArray {
		return nil, fmt.Errorf("jvm: not an array")
	}
	out := make([]float64, len(obj.Array))
	for i, v := range obj.Array {
		out[i] = v.F
	}
	return out, nil
}

// IntArrayData copies out the contents of an int/long array for assertions.
func (vm *Machine) IntArrayData(ref Value) ([]int64, error) {
	obj, err := vm.Heap.Get(ref)
	if err != nil {
		return nil, err
	}
	if !obj.IsArray {
		return nil, fmt.Errorf("jvm: not an array")
	}
	out := make([]int64, len(obj.Array))
	for i, v := range obj.Array {
		out[i] = v.I
	}
	return out, nil
}

// Math natives are thin aliases so the import stays local to this file's
// package block.
func mathCos(x float64) float64  { return math.Cos(x) }
func mathSin(x float64) float64  { return math.Sin(x) }
func mathSqrt(x float64) float64 { return math.Sqrt(x) }
func mathAbs(x float64) float64  { return math.Abs(x) }

// AllocInstance allocates an object of a registered class, sized by its
// InstanceSlots.
func (vm *Machine) AllocInstance(class string) (Value, error) {
	c, ok := vm.Classes[class]
	if !ok {
		return Null, fmt.Errorf("jvm: class %s not loaded", class)
	}
	return vm.Heap.AllocObject(class, c.InstanceSlots), nil
}

// SetField writes an instance field slot directly (driver convenience).
func (vm *Machine) SetField(obj Value, slot int, v Value) error {
	o, err := vm.Heap.Get(obj)
	if err != nil {
		return err
	}
	if slot < 0 || slot >= len(o.Fields) {
		return fmt.Errorf("jvm: field slot %d out of range (%d)", slot, len(o.Fields))
	}
	o.Fields[slot] = v
	return nil
}

// GetField reads an instance field slot directly (driver convenience).
func (vm *Machine) GetField(obj Value, slot int) (Value, error) {
	o, err := vm.Heap.Get(obj)
	if err != nil {
		return Value{}, err
	}
	if slot < 0 || slot >= len(o.Fields) {
		return Value{}, fmt.Errorf("jvm: field slot %d out of range (%d)", slot, len(o.Fields))
	}
	return o.Fields[slot], nil
}
