package jvm

import (
	"sort"

	"javaflow/internal/bytecode"
)

// Profile accumulates dynamic execution statistics, reproducing the
// methodology of Section 5.2: "establish a 256 element array for each method
// signature which was executed. Each element in the array is a counter for
// the corresponding ByteCode instruction."
type Profile struct {
	perMethod   map[string]*[256]uint64
	invocations map[string]uint64
	totalOps    uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		perMethod:   make(map[string]*[256]uint64),
		invocations: make(map[string]uint64),
	}
}

func (p *Profile) record(sig string, op bytecode.Opcode) {
	counts, ok := p.perMethod[sig]
	if !ok {
		counts = new([256]uint64)
		p.perMethod[sig] = counts
	}
	counts[byte(op)]++
	p.totalOps++
}

func (p *Profile) recordInvocation(sig string) {
	p.invocations[sig]++
}

// TotalOps returns the total ByteCode instructions executed.
func (p *Profile) TotalOps() uint64 { return p.totalOps }

// MethodsExecuted returns the number of distinct method signatures executed.
func (p *Profile) MethodsExecuted() int { return len(p.perMethod) }

// Invocations returns how many times sig was invoked.
func (p *Profile) Invocations(sig string) uint64 { return p.invocations[sig] }

// OpsOf returns the total instructions executed within sig.
func (p *Profile) OpsOf(sig string) uint64 {
	counts, ok := p.perMethod[sig]
	if !ok {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// OpCount returns how many times op executed within sig.
func (p *Profile) OpCount(sig string, op bytecode.Opcode) uint64 {
	if counts, ok := p.perMethod[sig]; ok {
		return counts[byte(op)]
	}
	return 0
}

// MethodShare is one row of the method-utilization analysis.
type MethodShare struct {
	Signature string
	Ops       uint64
	Share     float64 // fraction of total ops
}

// TopMethods returns every executed method ordered by descending dynamic
// instruction count, with its share of the total (Tables 3–4).
func (p *Profile) TopMethods() []MethodShare {
	out := make([]MethodShare, 0, len(p.perMethod))
	for sig := range p.perMethod {
		out = append(out, MethodShare{Signature: sig, Ops: p.OpsOf(sig)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Signature < out[j].Signature
	})
	if p.totalOps > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Ops) / float64(p.totalOps)
		}
	}
	return out
}

// MethodsFor90Percent returns the smallest prefix of TopMethods covering at
// least the given fraction (0.9 reproduces the dissertation's "90% methods",
// Table 1).
func (p *Profile) MethodsFor(fraction float64) []MethodShare {
	top := p.TopMethods()
	var cum float64
	for i, ms := range top {
		cum += ms.Share
		if cum >= fraction {
			return top[:i+1]
		}
	}
	return top
}

// GroupMix is a dynamic instruction-mix breakdown by instruction group.
type GroupMix map[bytecode.Group]uint64

// MixOf computes the dynamic group mix across the given method signatures
// (Table 2). Empty sigs means all methods.
func (p *Profile) MixOf(sigs []string) GroupMix {
	mix := make(GroupMix)
	use := func(counts *[256]uint64) {
		for b, c := range counts {
			if c == 0 {
				continue
			}
			op := bytecode.Opcode(b)
			if op.IsDefined() {
				mix[op.Group()] += c
			}
		}
	}
	if len(sigs) == 0 {
		for _, counts := range p.perMethod {
			use(counts)
		}
		return mix
	}
	for _, sig := range sigs {
		if counts, ok := p.perMethod[sig]; ok {
			use(counts)
		}
	}
	return mix
}

// Total sums all group counts.
func (g GroupMix) Total() uint64 {
	var t uint64
	for _, c := range g {
		t += c
	}
	return t
}

// QuickStats reports dynamic counts of base vs resolved _Quick storage
// instructions (Table 5).
type QuickStats struct {
	Base  uint64
	Quick uint64
}

// QuickPercent is the fraction of storage accesses executed in resolved
// form.
func (q QuickStats) QuickPercent() float64 {
	total := q.Base + q.Quick
	if total == 0 {
		return 0
	}
	return float64(q.Quick) / float64(total)
}

// QuickStats scans the profile for base-vs-_Quick storage instruction
// executions.
func (p *Profile) QuickStats() QuickStats {
	var qs QuickStats
	base := []bytecode.Opcode{bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield}
	quick := []bytecode.Opcode{bytecode.GetstaticQuick, bytecode.PutstaticQuick, bytecode.GetfieldQuick, bytecode.PutfieldQuick}
	for _, counts := range p.perMethod {
		for _, op := range base {
			qs.Base += counts[byte(op)]
		}
		for _, op := range quick {
			qs.Quick += counts[byte(op)]
		}
	}
	return qs
}
