package jvm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"javaflow/internal/bytecode"
	"javaflow/internal/classfile"
)

// buildMethod assembles, wraps and registers a single static method.
func buildMethod(t *testing.T, vm *Machine, name string, argc, maxLocals int,
	returns bool, pool *classfile.ConstantPool, build func(a *bytecode.Assembler)) *classfile.Method {
	t.Helper()
	a := bytecode.NewAssembler()
	build(a)
	code, err := a.Finish()
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	if pool == nil {
		pool = classfile.NewConstantPool()
	}
	m := &classfile.Method{
		Name: name, Argc: argc, ReturnsValue: returns,
		MaxLocals: maxLocals, Code: code, Pool: pool,
	}
	c := classfile.NewClass("T")
	c.Add(m)
	if err := vm.Register(c); err != nil {
		t.Fatalf("register: %v", err)
	}
	return m
}

func TestInvokeAddMethod(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "add", 2, 2, true, nil, func(a *bytecode.Assembler) {
		a.ILoad(0).ILoad(1).Op(bytecode.Iadd).Op(bytecode.Ireturn)
	})
	got, err := vm.Invoke(m, Int(17), Int(25))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 42 {
		t.Errorf("add(17,25) = %d, want 42", got.I)
	}
}

func TestInvokeLoopSum(t *testing.T) {
	vm := NewMachine()
	// sum = 0; for i = 0; i < n; i++ { sum += i }  (locals: 0=n 1=sum 2=i)
	m := buildMethod(t, vm, "sum", 1, 3, true, nil, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			PushInt(0).IStore(2).
			Label("loop").
			ILoad(2).ILoad(0).
			Branch(bytecode.IfIcmpge, "done").
			ILoad(1).ILoad(2).Op(bytecode.Iadd).IStore(1).
			Iinc(2, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").
			ILoad(1).Op(bytecode.Ireturn)
	})
	got, err := vm.Invoke(m, Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 4950 {
		t.Errorf("sum(100) = %d, want 4950", got.I)
	}
}

func TestInt32Overflow(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "ovf", 2, 2, true, nil, func(a *bytecode.Assembler) {
		a.ILoad(0).ILoad(1).Op(bytecode.Imul).Op(bytecode.Ireturn)
	})
	got, err := vm.Invoke(m, Int(1<<20), Int(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 0 {
		t.Errorf("2^40 as int32 = %d, want 0", got.I)
	}
}

func TestDoubleArithmetic(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "hyp", 2, 2, true, nil, func(a *bytecode.Assembler) {
		a.DLoad(0).DLoad(0).Op(bytecode.Dmul).
			DLoad(1).DLoad(1).Op(bytecode.Dmul).
			Op(bytecode.Dadd).Op(bytecode.Dreturn)
	})
	got, err := vm.Invoke(m, Double(3), Double(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.F != 25 {
		t.Errorf("3^2+4^2 = %g, want 25", got.F)
	}
}

func TestDivideByZeroThrows(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "div", 2, 2, true, nil, func(a *bytecode.Assembler) {
		a.ILoad(0).ILoad(1).Op(bytecode.Idiv).Op(bytecode.Ireturn)
	})
	_, err := vm.Invoke(m, Int(1), Int(0))
	var thrown *ThrownError
	if !errors.As(err, &thrown) || thrown.Exception != "ArithmeticException" {
		t.Fatalf("want ArithmeticException, got %v", err)
	}
}

func TestArrayRoundTrip(t *testing.T) {
	vm := NewMachine()
	// a[i] = a[i] * 2 for all i; locals: 0=arr 1=i
	m := buildMethod(t, vm, "dbl", 1, 2, false, nil, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			Label("loop").
			ILoad(1).ALoad(0).Op(bytecode.Arraylength).
			Branch(bytecode.IfIcmpge, "done").
			ALoad(0).ILoad(1).
			ALoad(0).ILoad(1).Op(bytecode.Iaload).
			PushInt(2).Op(bytecode.Imul).
			Op(bytecode.Iastore).
			Iinc(1, 1).
			Branch(bytecode.Goto, "loop").
			Label("done").Op(bytecode.Return)
	})
	arr := vm.NewIntArray([]int64{1, 2, 3, 4})
	if _, err := vm.Invoke(m, arr); err != nil {
		t.Fatal(err)
	}
	got, err := vm.IntArrayData(arr)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 4, 6, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestArrayBoundsThrow(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "oob", 1, 1, true, nil, func(a *bytecode.Assembler) {
		a.ALoad(0).PushInt(99).Op(bytecode.Iaload).Op(bytecode.Ireturn)
	})
	arr := vm.NewIntArray([]int64{1})
	_, err := vm.Invoke(m, arr)
	var thrown *ThrownError
	if !errors.As(err, &thrown) || thrown.Exception != "ArrayIndexOutOfBoundsException" {
		t.Fatalf("want bounds exception, got %v", err)
	}
}

func TestNullDereferenceThrows(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "npe", 1, 1, true, nil, func(a *bytecode.Assembler) {
		a.ALoad(0).Op(bytecode.Arraylength).Op(bytecode.Ireturn)
	})
	_, err := vm.Invoke(m, Null)
	var thrown *ThrownError
	if !errors.As(err, &thrown) || thrown.Exception != "NullPointerException" {
		t.Fatalf("want NPE, got %v", err)
	}
}

func TestFieldsAndQuickRewrite(t *testing.T) {
	vm := NewMachine()
	pool := classfile.NewConstantPool()
	fx := pool.AddFieldRef(classfile.FieldRef{Class: "T", Name: "x", Static: true, Slot: 0})

	a := bytecode.NewAssembler()
	a.Label("loop").
		Field(bytecode.Getstatic, fx).
		PushInt(1).Op(bytecode.Iadd).
		Field(bytecode.Putstatic, fx).
		Iinc(0, 1).
		ILoad(0).PushInt(10).
		Branch(bytecode.IfIcmplt, "loop").
		Field(bytecode.Getstatic, fx).
		Op(bytecode.Ireturn)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{Name: "inc", Argc: 1, ReturnsValue: true, MaxLocals: 1, Code: code, Pool: pool}
	c := classfile.NewClass("T")
	c.StaticSlots = 1
	c.Add(m)
	if err := vm.Register(c); err != nil {
		t.Fatal(err)
	}

	got, err := vm.Invoke(m, Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 10 {
		t.Errorf("counter = %d, want 10", got.I)
	}

	// After the run the hot sites must have been rewritten to _Quick form.
	quicks := 0
	for _, in := range m.Code {
		if bytecode.IsQuick(in.Op) {
			quicks++
		}
	}
	if quicks != 3 {
		t.Errorf("rewrote %d sites to _Quick, want 3", quicks)
	}

	// Table 5 shape: overwhelmingly _Quick executions after warm-up.
	qs := vm.Profile.QuickStats()
	if qs.Base != 3 {
		t.Errorf("base executions = %d, want 3 (one per site)", qs.Base)
	}
	if qs.QuickPercent() < 0.85 {
		t.Errorf("quick share = %.2f, want > 0.85", qs.QuickPercent())
	}
}

func TestInvokeNested(t *testing.T) {
	vm := NewMachine()
	pool := classfile.NewConstantPool()
	sqRef := pool.AddMethodRef(classfile.MethodRef{Class: "T", Name: "sq", Argc: 1, ReturnsValue: true})

	aSq := bytecode.NewAssembler()
	aSq.ILoad(0).ILoad(0).Op(bytecode.Imul).Op(bytecode.Ireturn)
	sqCode, _ := aSq.Finish()
	sq := &classfile.Method{Name: "sq", Argc: 1, ReturnsValue: true, MaxLocals: 1, Code: sqCode, Pool: pool}

	aMain := bytecode.NewAssembler()
	aMain.ILoad(0).Call(bytecode.Invokestatic, sqRef, 1, true).
		ILoad(1).Call(bytecode.Invokestatic, sqRef, 1, true).
		Op(bytecode.Iadd).Op(bytecode.Ireturn)
	mainCode, _ := aMain.Finish()
	main := &classfile.Method{Name: "main", Argc: 2, ReturnsValue: true, MaxLocals: 2, Code: mainCode, Pool: pool}

	c := classfile.NewClass("T")
	c.Add(sq).Add(main)
	if err := vm.Register(c); err != nil {
		t.Fatal(err)
	}
	got, err := vm.Invoke(main, Int(3), Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 25 {
		t.Errorf("3²+4² = %d, want 25", got.I)
	}
	if vm.Profile.Invocations("T.sq/1") != 2 {
		t.Errorf("sq invoked %d times, want 2", vm.Profile.Invocations("T.sq/1"))
	}
}

func TestInstanceMethodAndObjectFields(t *testing.T) {
	vm := NewMachine()
	pool := classfile.NewConstantPool()
	fv := pool.AddFieldRef(classfile.FieldRef{Class: "Acc", Name: "v", Slot: 0})

	a := bytecode.NewAssembler()
	// this.v = this.v + arg; return this.v  (locals: 0=this 1=arg)
	a.ALoad(0).
		ALoad(0).Field(bytecode.Getfield, fv).
		ILoad(1).Op(bytecode.Iadd).
		Field(bytecode.Putfield, fv).
		ALoad(0).Field(bytecode.Getfield, fv).
		Op(bytecode.Ireturn)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &classfile.Method{Name: "acc", Argc: 1, Instance: true, ReturnsValue: true,
		MaxLocals: 2, Code: code, Pool: pool}
	c := classfile.NewClass("Acc")
	c.InstanceSlots = 1
	c.Add(m)
	if err := vm.Register(c); err != nil {
		t.Fatal(err)
	}

	obj := vm.Heap.AllocObject("Acc", 1)
	for i, want := range []int64{5, 12} {
		got, err := vm.Invoke(m, obj, Int(int64(5+i*2)))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != want {
			t.Errorf("acc call %d = %d, want %d", i, got.I, want)
		}
	}
}

func TestLookupswitch(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "sw", 1, 1, true, nil, func(a *bytecode.Assembler) {
		a.ILoad(0).
			Switch(map[int64]string{1: "one", 7: "seven"}, "def").
			Label("one").PushInt(100).Op(bytecode.Ireturn).
			Label("seven").PushInt(700).Op(bytecode.Ireturn).
			Label("def").PushInt(-1).Op(bytecode.Ireturn)
	})
	cases := map[int64]int64{1: 100, 7: 700, 3: -1}
	for in, want := range cases {
		got, err := vm.Invoke(m, Int(in))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != want {
			t.Errorf("sw(%d) = %d, want %d", in, got.I, want)
		}
	}
}

func TestConversionsAndCompares(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "conv", 1, 1, true, nil, func(a *bytecode.Assembler) {
		a.DLoad(0).Op(bytecode.D2i).Op(bytecode.Ireturn)
	})
	cases := []struct {
		in   float64
		want int64
	}{
		{3.99, 3},
		{-3.99, -3},
		{math.NaN(), 0},
		{1e18, math.MaxInt32},
		{-1e18, math.MinInt32},
	}
	for _, c := range cases {
		got, err := vm.Invoke(m, Double(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != c.want {
			t.Errorf("d2i(%g) = %d, want %d", c.in, got.I, c.want)
		}
	}

	cmp := buildMethod(t, vm, "cmp", 2, 2, true, nil, func(a *bytecode.Assembler) {
		a.DLoad(0).DLoad(1).Op(bytecode.Dcmpl).Op(bytecode.Ireturn)
	})
	if got, _ := vm.Invoke(cmp, Double(1), Double(2)); got.I != -1 {
		t.Errorf("dcmpl(1,2) = %d, want -1", got.I)
	}
	if got, _ := vm.Invoke(cmp, Double(math.NaN()), Double(2)); got.I != -1 {
		t.Errorf("dcmpl(NaN,2) = %d, want -1 (l-form NaN bias)", got.I)
	}
}

func TestLdcConstants(t *testing.T) {
	vm := NewMachine()
	pool := classfile.NewConstantPool()
	di := pool.AddDouble(2.5)
	ii := pool.AddInt(1234567)
	m := buildMethod(t, vm, "ldc", 0, 0, true, pool, func(a *bytecode.Assembler) {
		a.Ldc(di, true).Ldc(ii, false).Op(bytecode.I2d).Op(bytecode.Dmul).Op(bytecode.Dreturn)
	})
	got, err := vm.Invoke(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.F != 2.5*1234567 {
		t.Errorf("ldc result = %g", got.F)
	}
}

func TestStepLimit(t *testing.T) {
	vm := NewMachine()
	vm.MaxSteps = 100
	m := buildMethod(t, vm, "spin", 0, 1, false, nil, func(a *bytecode.Assembler) {
		// Spins until the int32 counter wraps negative — far past MaxSteps.
		a.Label("top").Iinc(0, 1).ILoad(0).Branch(bytecode.Ifge, "top").Op(bytecode.Return)
	})
	_, err := vm.Invoke(m)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestProfileDynamicMix(t *testing.T) {
	vm := NewMachine()
	m := buildMethod(t, vm, "mix", 1, 3, true, nil, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).PushInt(0).IStore(2).
			Label("loop").
			ILoad(2).ILoad(0).Branch(bytecode.IfIcmpge, "done").
			ILoad(1).ILoad(2).Op(bytecode.Iadd).IStore(1).
			Iinc(2, 1).Branch(bytecode.Goto, "loop").
			Label("done").ILoad(1).Op(bytecode.Ireturn)
	})
	if _, err := vm.Invoke(m, Int(50)); err != nil {
		t.Fatal(err)
	}
	sig := m.Signature()
	if vm.Profile.OpCount(sig, bytecode.Iadd) != 50 {
		t.Errorf("iadd count = %d, want 50", vm.Profile.OpCount(sig, bytecode.Iadd))
	}
	if vm.Profile.OpCount(sig, bytecode.Iinc) != 50 {
		t.Errorf("iinc count = %d, want 50", vm.Profile.OpCount(sig, bytecode.Iinc))
	}
	mix := vm.Profile.MixOf(nil)
	if mix[bytecode.GroupIntArith] != 50 {
		t.Errorf("int-arith group count = %d, want 50", mix[bytecode.GroupIntArith])
	}
	if mix.Total() != vm.Profile.TotalOps() {
		t.Errorf("group totals %d != total ops %d", mix.Total(), vm.Profile.TotalOps())
	}
	top := vm.Profile.TopMethods()
	if len(top) != 1 || top[0].Signature != sig || top[0].Share != 1.0 {
		t.Errorf("TopMethods = %+v", top)
	}
}

func TestJsrRet(t *testing.T) {
	vm := NewMachine()
	// jsr to a subroutine that stores the retaddr, increments local 1, rets.
	m := buildMethod(t, vm, "fin", 0, 3, true, nil, func(a *bytecode.Assembler) {
		a.PushInt(0).IStore(1).
			Branch(bytecode.Jsr, "sub").
			Branch(bytecode.Jsr, "sub").
			ILoad(1).Op(bytecode.Ireturn).
			Label("sub").
			AStore(2). // return address
			Iinc(1, 1).
			OpA(bytecode.Ret, 2)
	})
	got, err := vm.Invoke(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 2 {
		t.Errorf("subroutine ran %d times, want 2", got.I)
	}
}

func TestNewObjectAndInstanceof(t *testing.T) {
	vm := NewMachine()
	pool := classfile.NewConstantPool()
	ci := pool.AddString("Point") // class name payload for new
	// Manually add a classref-style constant: reuse string constant; New
	// reads c.S.
	_ = ci
	m := buildMethod(t, vm, "mk", 0, 1, true, pool, func(a *bytecode.Assembler) {
		a.OpA(bytecode.New, int64(ci)).
			AStore(0).
			ALoad(0).
			OpA(bytecode.Instanceof, int64(ci)).
			Op(bytecode.Ireturn)
	})
	got, err := vm.Invoke(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 1 {
		t.Errorf("instanceof new Point() = %d, want 1", got.I)
	}
}
