package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %v, want 4.5", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 2 {
		t.Errorf("Min = %v", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty inputs should produce 0")
	}
	one := []float64{3}
	if Mean(one) != 3 || Median(one) != 3 || Max(one) != 3 || Min(one) != 3 || StdDev(one) != 0 {
		t.Error("singleton statistics wrong")
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v, want 1", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %v, want -1", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := Correlation(xs, flat); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Correlation(xs, []float64{1}); got != 0 {
		t.Errorf("mismatched lengths = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Max != 3 || s.Min != 1 {
		t.Errorf("Summarize = %+v", s)
	}
}

// Property: min <= median <= max and min <= mean <= max for any input.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: correlation is symmetric and within [-1, 1].
func TestCorrelationProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(raw[i])
			ys[i] = float64(raw[n+i])
		}
		c1 := Correlation(xs, ys)
		c2 := Correlation(ys, xs)
		return math.Abs(c1-c2) < 1e-9 && c1 >= -1.0000001 && c1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting a series by a constant leaves StdDev unchanged and
// shifts the mean by that constant.
func TestShiftInvarianceProperty(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(StdDev(xs)-StdDev(ys)) < 1e-9 &&
			math.Abs((Mean(ys)-Mean(xs))-float64(shift)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
