// Package stats provides the descriptive statistics the dissertation's
// result tables report: mean, standard deviation, median, extrema
// (Tables 9–14, 19–21) and Pearson correlation (Table 23).
//
// The load-bearing invariant: every function is a pure, order-stable
// computation over its input slice — no randomness, no map iteration —
// so tables built from the same runs are byte-identical across
// processes, which the CI digest comparisons rely on.
package stats

import (
	"math"
	"sort"
)

// Summary is the five-number description used throughout the result tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Median float64
	Max    float64
	Min    float64
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the middle value (mean of the two middle values for even
// lengths; 0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Summarize computes all five statistics in one pass over a copy.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Median: Median(xs),
		Max:    Max(xs),
		Min:    Min(xs),
	}
}

// Correlation returns the Pearson correlation coefficient of two equal-
// length series (0 when undefined: mismatched lengths, fewer than two
// samples, or zero variance).
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ints converts an integer series for use with the float statistics.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
