package obs

import "sort"

// NodeSpans is one node's contribution to a cross-node trace: the
// spans its ring still holds for the trace, or the error that kept
// them from being fetched. It is both the GET /debug/traces/{traceID}
// response body and the unit the fleet fan-out collects per peer.
type NodeSpans struct {
	Node  string `json:"node"`
	Err   string `json:"error,omitempty"`
	Spans []Span `json:"spans"`
}

// TraceNode is one span in the assembled tree, stamped with the node
// whose ring held it, with its children nested beneath it.
type TraceNode struct {
	Span
	Node     string       `json:"node,omitempty"`
	Children []*TraceNode `json:"children,omitempty"`
}

// NodeStatus summarizes one node's part in an assembled trace.
type NodeStatus struct {
	Node  string `json:"node"`
	Spans int    `json:"spans"`
	Err   string `json:"error,omitempty"`
}

// AssembledTrace is the GET /v1/trace/{traceID} response: every
// reachable node's spans for one trace stitched into a hop-ordered
// tree. Partial marks a best-effort result — a peer was down, timed
// out, or had already evicted its spans — so operators can tell a
// complete picture from a fragmentary one.
type AssembledTrace struct {
	TraceID    string       `json:"traceId"`
	Spans      int          `json:"spans"`
	Partial    bool         `json:"partial"`
	DurationNS int64        `json:"durationNs"`
	Nodes      []NodeStatus `json:"nodes"`
	Roots      []*TraceNode `json:"roots"`
}

// AssembleTrace stitches per-node span sets into one tree. Spans whose
// parent was found (on any node) nest beneath it; orphans — the hop-0
// ingress span (whose parent, if any, is the client's own span outside
// the fleet), plus any span whose parent was evicted — become roots.
// Roots and children are ordered by hop depth then start time, so the
// first root is the fleet-ingress span and each wire crossing reads
// top to bottom. Pure function; safe on empty or nil input.
func AssembleTrace(traceID string, nodes []NodeSpans) AssembledTrace {
	out := AssembledTrace{TraceID: traceID, Roots: []*TraceNode{}, Nodes: []NodeStatus{}}
	byID := make(map[string]*TraceNode)
	var all []*TraceNode
	var minStart, maxEnd int64
	for _, ns := range nodes {
		st := NodeStatus{Node: ns.Node, Spans: len(ns.Spans), Err: ns.Err}
		out.Nodes = append(out.Nodes, st)
		if ns.Err != "" {
			out.Partial = true
		}
		for _, sp := range ns.Spans {
			if sp.TraceID != traceID {
				continue
			}
			n := &TraceNode{Span: sp, Node: ns.Node}
			all = append(all, n)
			// Duplicate span IDs across nodes can only come from a
			// hostile peer; first occurrence wins.
			if byID[sp.SpanID] == nil {
				byID[sp.SpanID] = n
			}
			if minStart == 0 || sp.StartNanos < minStart {
				minStart = sp.StartNanos
			}
			if end := sp.StartNanos + sp.DurationNS; end > maxEnd {
				maxEnd = end
			}
		}
	}
	out.Spans = len(all)
	if maxEnd > minStart {
		out.DurationNS = maxEnd - minStart
	}
	for _, n := range all {
		if n.ParentID != "" {
			if parent := byID[n.ParentID]; parent != nil && parent != n {
				parent.Children = append(parent.Children, n)
				continue
			}
			// No node holds the parent. At hop 0 that is expected — the
			// parent is the client's own span, outside the fleet. Deeper
			// in, it means the parent was evicted or its node is
			// unreachable: surface the span as a root rather than
			// dropping it, and mark the assembly incomplete.
			if n.Hop > 0 {
				out.Partial = true
			}
		}
		out.Roots = append(out.Roots, n)
	}
	sortTraceNodes(out.Roots)
	for _, n := range all {
		sortTraceNodes(n.Children)
	}
	return out
}

// sortTraceNodes orders siblings by hop depth then start time.
func sortTraceNodes(nodes []*TraceNode) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Hop != nodes[j].Hop {
			return nodes[i].Hop < nodes[j].Hop
		}
		return nodes[i].StartNanos < nodes[j].StartNanos
	})
}
