package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBucketFor(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0},
		{1001, 1}, {2000, 1},
		{2001, 2}, {4000, 2},
		{1_000_000, 10}, // 1ms: 1000<<10 = 1_024_000 ≥ 1e6, 1000<<9 = 512_000 < 1e6
		{1 << 62, histBuckets},
	}
	for _, c := range cases {
		got := bucketFor(c.ns)
		if got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
		if got < histBuckets && bucketBound(got) < c.ns {
			t.Errorf("bucketFor(%d) = %d but bound %d < value", c.ns, got, bucketBound(got))
		}
		if got > 0 && got <= histBuckets && bucketBound(got-1) >= c.ns {
			t.Errorf("bucketFor(%d) = %d but previous bound %d already covers it", c.ns, got, bucketBound(got-1))
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	// 100 observations at ~1ms, 10 at ~100ms.
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms bucket bound", p50)
	}
	// Rank 104 of 110 falls in the 100ms group, whose bucket bound is
	// 131.072ms (1µs << 17).
	if p95 < 100*time.Millisecond || p95 > 200*time.Millisecond {
		t.Errorf("p95 = %v, want ~100ms bucket bound", p95)
	}
	if p99 < 100*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms bucket bound", p99)
	}
	if p95 < p50 || p99 < p95 {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if got := h.Quantile(1); got < 100*time.Millisecond {
		t.Errorf("p100 = %v, want ≥ 100ms", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Record(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		b.Record(time.Second)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	wantSum := int64(50)*time.Millisecond.Nanoseconds() + int64(50)*time.Second.Nanoseconds()
	if m.SumNS != wantSum {
		t.Errorf("merged sum = %d, want %d", m.SumNS, wantSum)
	}
	// Half the mass is at 1ms, half at 1s: p50 in the 1ms bucket, p99 ≥ 1s.
	if p50 := m.Quantile(0.5); p50 > 2*time.Millisecond {
		t.Errorf("merged p50 = %v, want ≤ ~1ms bucket", p50)
	}
	if p99 := m.Quantile(0.99); p99 < time.Second {
		t.Errorf("merged p99 = %v, want ≥ 1s", p99)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	vec := NewHistogramVec("worker")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := string(rune('a' + g%4))
			for i := 0; i < perG; i++ {
				d := time.Duration(i%1000) * time.Microsecond
				h.Record(d)
				vec.With(label).Record(d)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	var total uint64
	for _, c := range vec.snapshotAll() {
		total += c.snap.Count
	}
	if total != goroutines*perG {
		t.Errorf("vec total = %d, want %d", total, goroutines*perG)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot should be empty")
	}
	var v *HistogramVec
	v.With("x").Record(time.Second) // nil vec → nil child → no-op
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistogramVecRecord(b *testing.B) {
	vec := NewHistogramVec("backend", "outcome")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("http://peer:8080", "ok").Record(time.Millisecond)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTracer(0)
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: NewID(), SpanID: NewID()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, "bench")
		sp.End(nil)
	}
}
