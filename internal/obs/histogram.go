package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram buckets are log-spaced powers of two over microseconds:
// bucket i has upper bound 1µs<<i, i = 0..histBuckets-1 (1µs ... ~134s),
// plus one overflow bucket. Every histogram shares the same boundaries so
// snapshots merge bucket-by-bucket.
const histBuckets = 28

// bucketBound reports bucket i's inclusive upper bound in nanoseconds.
func bucketBound(i int) int64 {
	return int64(1000) << uint(i)
}

// bucketFor maps a duration in nanoseconds to its bucket index
// (histBuckets for overflow).
func bucketFor(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	i := bits.Len64(uint64(ns-1) / 1000)
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// Histogram is a race-safe log-bucketed latency histogram: recording is
// three atomic adds, no locks, no allocation. A nil *Histogram is a
// valid no-op.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// NewHistogram builds an unregistered standalone histogram; prefer
// Registry.NewHistogram so it shows up in the exposition.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Record files one observation.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Snapshot captures a point-in-time copy of the bucket counts. Buckets
// are read individually, so a snapshot taken during concurrent recording
// may be off by the in-flight observations — never torn below zero.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	return s
}

// Quantile reports the p-quantile (0 < p <= 1) as the upper bound of the
// bucket containing that rank — an exact upper bound on the true value,
// within one power of two. Zero observations reports 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	return h.Snapshot().Quantile(p)
}

// HistogramSnapshot is an immutable copy of a histogram's state. The
// JSON shape is the /metrics wire format fleet aggregation rides on:
// GET /v1/fleet fetches each node's raw buckets and Merge folds them,
// so fleet percentiles are exact rather than averaged approximations.
type HistogramSnapshot struct {
	Counts [histBuckets + 1]uint64 `json:"counts"`
	Count  uint64                  `json:"count"`
	SumNS  int64                   `json:"sumNs"`
}

// Merge combines two snapshots bucket-by-bucket (all histograms share
// boundaries, so this is exact).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.SumNS += o.SumNS
	return out
}

// Quantile reports the p-quantile as the containing bucket's upper bound.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == histBuckets {
				// Overflow bucket: no finite bound; report the largest.
				return time.Duration(bucketBound(histBuckets - 1))
			}
			return time.Duration(bucketBound(i))
		}
	}
	return time.Duration(bucketBound(histBuckets - 1))
}

// Mean reports the exact arithmetic mean of all observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// HistogramVec is a family of histograms keyed by label values (e.g. one
// per backend × outcome). Children are created on first use and live
// forever — label cardinality must be bounded by the caller. A nil
// *HistogramVec is a valid no-op (With returns a nil *Histogram).
type HistogramVec struct {
	keys []string

	mu       sync.RWMutex
	children map[string]*Histogram
	// onNew, when set by the owning registry, is invoked (outside mu)
	// with the label values of each newly created child.
	onNew func(values []string, h *Histogram)
}

// NewHistogramVec builds an unregistered vector with the given label keys.
func NewHistogramVec(keys ...string) *HistogramVec {
	return &HistogramVec{keys: keys, children: make(map[string]*Histogram)}
}

// With returns the child histogram for the given label values (one per
// key, in key order), creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	k := strings.Join(values, "\x00")
	v.mu.RLock()
	h := v.children[k]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	h = v.children[k]
	var created bool
	if h == nil {
		h = &Histogram{}
		v.children[k] = h
		created = true
	}
	onNew := v.onNew
	v.mu.Unlock()
	if created && onNew != nil {
		onNew(values, h)
	}
	return h
}

// snapshotAll returns every child's label values and snapshot, sorted by
// label key for deterministic iteration.
func (v *HistogramVec) snapshotAll() []vecChild {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]vecChild, 0, len(v.children))
	for k, h := range v.children {
		out = append(out, vecChild{values: strings.Split(k, "\x00"), snap: h.Snapshot()})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\x00") < strings.Join(out[j].values, "\x00")
	})
	return out
}

type vecChild struct {
	values []string
	snap   HistogramSnapshot
}
