package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestJournalEmitAndFilter(t *testing.T) {
	j := NewJournal("node-a", 8)
	j.Emit("dispatch", "suspension", SevWarn, "cafe0123cafe4567", "backend", "b1")
	j.Emit("admit", "shed", SevWarn, "")
	j.Emit("replicate", "ingest", SevInfo, "", "peer", "b2", "records", "7")

	if got := j.EventCount(); got != 3 {
		t.Fatalf("EventCount = %d, want 3", got)
	}

	all := j.Events("", SevInfo, 10)
	if len(all) != 3 {
		t.Fatalf("Events() = %d events, want 3", len(all))
	}
	// Newest first.
	if all[0].Kind != "ingest" || all[2].Kind != "suspension" {
		t.Fatalf("order wrong: got %q ... %q", all[0].Kind, all[2].Kind)
	}
	if all[2].TraceID != "cafe0123cafe4567" {
		t.Errorf("TraceID = %q", all[2].TraceID)
	}
	if all[2].Attrs["backend"] != "b1" {
		t.Errorf("Attrs = %v", all[2].Attrs)
	}
	if all[0].Node != "node-a" {
		t.Errorf("Node = %q", all[0].Node)
	}

	if got := j.Events("dispatch", SevInfo, 10); len(got) != 1 || got[0].Kind != "suspension" {
		t.Fatalf("subsystem filter: %+v", got)
	}
	if got := j.Events("", SevWarn, 10); len(got) != 2 {
		t.Fatalf("severity filter: %d events, want 2", len(got))
	}
	if got := j.Events("", SevError, 10); len(got) != 0 {
		t.Fatalf("severity=error: %d events, want 0", len(got))
	}
	if got := j.Events("", SevInfo, 1); len(got) != 1 {
		t.Fatalf("n=1: %d events", len(got))
	}
}

func TestJournalWraparound(t *testing.T) {
	j := NewJournal("n", 4)
	for i := 0; i < 10; i++ {
		j.Emit("s", "k", SevInfo, "")
	}
	if got := j.EventCount(); got != 10 {
		t.Fatalf("EventCount = %d, want 10", got)
	}
	if got := len(j.Events("", SevInfo, 100)); got != 4 {
		t.Fatalf("ring kept %d events, want 4", got)
	}
	// The counters remember every emission, not just the ring's worth.
	if got := j.CountsByKind()["s/k"]; got != 10 {
		t.Fatalf("CountsByKind = %d, want 10", got)
	}
}

func TestJournalOnNewKind(t *testing.T) {
	j := NewJournal("n", 8)
	var seen []string
	j.OnNewKind(func(subsystem, kind string, n *atomic.Uint64) {
		seen = append(seen, subsystem+"/"+kind)
	})
	j.Emit("a", "x", SevInfo, "")
	j.Emit("a", "x", SevInfo, "")
	j.Emit("b", "y", SevInfo, "")
	if len(seen) != 2 || seen[0] != "a/x" || seen[1] != "b/y" {
		t.Fatalf("OnNewKind fired %v, want [a/x b/y]", seen)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Emit("s", "k", SevError, "id", "k", "v") // must not panic
	j.OnNewKind(nil)
	if j.EventCount() != 0 || j.Events("", SevInfo, 10) != nil || j.CountsByKind() != nil {
		t.Fatal("nil journal must report nothing")
	}
	d := j.Dump("", SevInfo, 10)
	if d.Recent == nil || len(d.Recent) != 0 {
		t.Fatalf("nil Dump = %+v", d)
	}
	j.WriteText(&strings.Builder{}, 10)
}

// TestJournalConcurrent hammers emit and render from many goroutines;
// run under -race it proves the ring needs no global lock.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal("n", 64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Emit("dispatch", "suspension", SevWarn, "cafe0123cafe4567", "backend", "b1", "i", "x")
			}
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range j.Events("", SevInfo, 64) {
					// Every stable cell must be internally consistent:
					// a torn mix of two writers would fail these.
					if ev.Subsystem != "dispatch" || ev.Kind != "suspension" {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := j.EventCount(); got != writers*perWriter {
		t.Fatalf("EventCount = %d, want %d", got, writers*perWriter)
	}
	if got := j.CountsByKind()["dispatch/suspension"]; got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarn, SevError} {
		got, ok := ParseSeverity(sev.String())
		if !ok || got != sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", sev.String(), got, ok)
		}
	}
	if _, ok := ParseSeverity("loud"); ok {
		t.Error("ParseSeverity accepted junk")
	}
}

func TestJournalWriteText(t *testing.T) {
	j := NewJournal("n", 8)
	j.Emit("store", "compaction", SevInfo, "", "segments", "3")
	var b strings.Builder
	j.WriteText(&b, 10)
	out := b.String()
	if !strings.Contains(out, "store/compaction") || !strings.Contains(out, "segments=3") {
		t.Fatalf("WriteText output %q", out)
	}
}

// BenchmarkEventEmit is CI-gated next to BenchmarkHistogramRecord:
// the journal's hot path must stay allocation-free and under 100ns or
// emit sites on the dispatch and admission paths would perturb the
// system they observe.
func BenchmarkEventEmit(b *testing.B) {
	j := NewJournal("bench", 512)
	j.Emit("dispatch", "suspension", SevWarn, "cafe0123cafe4567", "backend", "b1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Emit("dispatch", "suspension", SevWarn, "cafe0123cafe4567", "backend", "b1")
	}
}
