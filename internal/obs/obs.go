// Package obs is the fleet's observability substrate: request-scoped
// distributed tracing, a structured event journal, log-bucketed latency
// histograms, and a Prometheus text-exposition registry that every
// subsystem registers its instruments into instead of hand-rolling
// snapshot structs.
//
// Tracing is propagation-first: a TraceContext (trace ID, span ID, hop
// depth) is minted at ingress, carried through contexts inside a process,
// and crosses processes in the X-Javaflow-Trace header — dispatch /v1/run
// hops, replication segment pulls, and gossip notify relays all inject it
// — so one request's spans can be reconstructed across the fleet from
// each node's bounded in-memory ring (GET /debug/traces). The ring is
// indexed by trace ID (Tracer.SpansFor) and AssembleTrace stitches
// per-node span sets into one hop-ordered tree, which is how
// GET /v1/trace/{traceID} shows a shed/reroute/warm-hit decision chain
// end to end. The Journal records typed state transitions (suspensions,
// sheds, gossip heals, compactions) into a wait-free ring next to the
// spans. Histograms are fixed log-spaced buckets updated with three
// atomic adds, cheap enough for every job, request, dispatch attempt and
// replication round, and their snapshots merge losslessly across nodes.
//
// Load-bearing invariant: observation never perturbs the observed system.
// Every instrument is wait-free or O(1) under a short mutex, recording
// costs nanoseconds (CI-pinned under 100ns per histogram record and per
// journal emit), buffers are bounded (span and event rings, fixed bucket
// counts), and a nil Tracer, Journal, Registry, Histogram or
// HistogramVec is a valid no-op — instrumented code never branches on
// "is observability wired".
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
)

// TraceHeader carries a TraceContext across process boundaries. The value
// is "<traceID>-<spanID>-<hop>": two 16-hex-digit IDs and the decimal hop
// depth (how many wire crossings the request has made; ingress at the
// originating node is hop 0).
const TraceHeader = "X-Javaflow-Trace"

// TraceContext identifies the active span of one distributed request.
type TraceContext struct {
	// TraceID names the whole request tree, identical on every hop.
	TraceID string
	// SpanID names the current span; a child span records it as parent.
	SpanID string
	// Hop is the wire-crossing depth: 0 at the node the request entered
	// the fleet on, incremented each time the context is sent to a peer.
	Hop int
}

// Header renders the X-Javaflow-Trace wire value.
func (tc TraceContext) Header() string {
	return tc.TraceID + "-" + tc.SpanID + "-" + strconv.Itoa(tc.Hop)
}

// ParseTrace parses an X-Javaflow-Trace value. Malformed input (wrong
// field count, bad IDs, negative or absurd hop) reports ok=false and the
// receiver simply starts a fresh trace — a hostile header can never be
// more than a no-op.
func ParseTrace(s string) (TraceContext, bool) {
	if s == "" {
		return TraceContext{}, false
	}
	parts := strings.Split(s, "-")
	if len(parts) != 3 || !validID(parts[0]) || !validID(parts[1]) {
		return TraceContext{}, false
	}
	hop, err := strconv.Atoi(parts[2])
	if err != nil || hop < 0 || hop > 64 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: parts[0], SpanID: parts[1], Hop: hop}, true
}

// ValidTraceID reports whether s is a well-formed trace (or span) ID —
// the HTTP layer vets /v1/trace/{traceID} path values with it before
// fanning them out to peers.
func ValidTraceID(s string) bool { return validID(s) }

// validID accepts non-empty lowercase-hex IDs up to 32 digits.
func validID(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewID mints a random 16-hex-digit trace or span ID.
func NewID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

type traceCtxKey struct{}

// ContextWithTrace attaches tc to ctx; spans started under the returned
// context become children of tc's span.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the active trace context, if any.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// Inject stamps req with ctx's trace context at hop+1 — one wire crossing
// deeper. No-op when ctx carries no trace, so uninstrumented callers cost
// nothing.
func Inject(req *http.Request, ctx context.Context) {
	if tc, ok := TraceFrom(ctx); ok {
		req.Header.Set(TraceHeader, TraceContext{
			TraceID: tc.TraceID, SpanID: tc.SpanID, Hop: tc.Hop + 1,
		}.Header())
	}
}
