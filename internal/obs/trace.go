package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// defaultRingSpans bounds the per-process recent-span ring.
	defaultRingSpans = 512
	// slowestSpans bounds the separately-kept slowest-span list.
	slowestSpans = 32
)

// Span is one finished unit of work inside a trace. JSON field names are
// the /debug/traces wire format.
type Span struct {
	TraceID    string            `json:"traceId"`
	SpanID     string            `json:"spanId"`
	ParentID   string            `json:"parentId,omitempty"`
	Name       string            `json:"name"`
	Hop        int               `json:"hop"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	StartNanos int64             `json:"startUnixNano"`
	DurationNS int64             `json:"durationNs"`
	Error      string            `json:"error,omitempty"`
}

// Tracer records finished spans into a bounded ring plus a slowest-N
// list. The zero number of spans it can lose to concurrent eviction is
// not guaranteed — it is a diagnostic buffer, not a durable log. A nil
// *Tracer is a valid no-op tracer.
type Tracer struct {
	spans atomic.Int64 // total spans ever finished

	mu      sync.Mutex
	ring    []Span // fixed capacity, ringNext is the next write slot
	next    int
	filled  bool
	slowest []Span // kept sorted descending by DurationNS, ≤ slowestSpans
	// byTrace indexes the ring by trace ID — which slots currently hold
	// spans of each trace — so SpansFor (and through it cross-node trace
	// assembly) is a map hit instead of a ring scan. Entries are evicted
	// as the ring overwrites their slots, so the index is bounded by the
	// ring capacity.
	byTrace map[string][]int
}

// NewTracer builds a tracer whose recent-span ring holds cap spans
// (cap <= 0 selects the default of 512).
func NewTracer(capSpans int) *Tracer {
	if capSpans <= 0 {
		capSpans = defaultRingSpans
	}
	return &Tracer{ring: make([]Span, capSpans), byTrace: make(map[string][]int)}
}

// ActiveSpan is an in-flight span; End finishes it into the tracer. A
// nil *ActiveSpan is a valid no-op.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
}

// StartSpan begins a span named name. If ctx already carries a trace
// context the span joins that trace as a child at the same hop depth;
// otherwise a fresh trace is minted at hop 0. The returned context
// carries the new span's context so children and Inject see it.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	sp := Span{Name: name, SpanID: NewID()}
	if tc, ok := TraceFrom(ctx); ok {
		sp.TraceID = tc.TraceID
		sp.ParentID = tc.SpanID
		sp.Hop = tc.Hop
	} else {
		sp.TraceID = NewID()
	}
	now := time.Now()
	sp.StartNanos = now.UnixNano()
	ctx = ContextWithTrace(ctx, TraceContext{TraceID: sp.TraceID, SpanID: sp.SpanID, Hop: sp.Hop})
	return ctx, &ActiveSpan{t: t, span: sp, start: now}
}

// SetAttr attaches a key/value attribute to the span.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = value
}

// Context reports the span's trace context (for manual propagation).
func (s *ActiveSpan) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID, Hop: s.span.Hop}
}

// End finishes the span, recording err's text as the error kind when
// non-nil, and files it into the tracer's ring and slowest list.
func (s *ActiveSpan) End(err error) {
	if s == nil {
		return
	}
	s.span.DurationNS = time.Since(s.start).Nanoseconds()
	if err != nil {
		s.span.Error = err.Error()
	}
	s.t.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.spans.Add(1)
	t.mu.Lock()
	// The ring is about to overwrite slot t.next: drop the evicted
	// span's slot from the trace index first.
	if t.filled {
		if old := t.ring[t.next].TraceID; old != "" {
			slots := t.byTrace[old]
			for i, s := range slots {
				if s == t.next {
					slots = append(slots[:i], slots[i+1:]...)
					break
				}
			}
			if len(slots) == 0 {
				delete(t.byTrace, old)
			} else {
				t.byTrace[old] = slots
			}
		}
	}
	t.byTrace[sp.TraceID] = append(t.byTrace[sp.TraceID], t.next)
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	// Maintain the slowest list: insert if it has room or sp beats the
	// current floor, then re-sort (N ≤ 32, negligible).
	if len(t.slowest) < slowestSpans {
		t.slowest = append(t.slowest, sp)
		sortSlowest(t.slowest)
	} else if sp.DurationNS > t.slowest[len(t.slowest)-1].DurationNS {
		t.slowest[len(t.slowest)-1] = sp
		sortSlowest(t.slowest)
	}
	t.mu.Unlock()
}

func sortSlowest(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].DurationNS > spans[j].DurationNS })
}

// SpanCount reports the total number of spans ever finished.
func (t *Tracer) SpanCount() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Recent returns up to n most recently finished spans, newest first.
func (t *Tracer) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Slowest returns up to n slowest spans seen so far, slowest first.
func (t *Tracer) Slowest(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.slowest) {
		n = len(t.slowest)
	}
	out := make([]Span, n)
	copy(out, t.slowest[:n])
	return out
}

// SpansFor returns every span of the given trace still held in the
// ring, ordered by hop depth then start time — the local half of
// cross-node trace assembly (GET /debug/traces/{traceID}). Spans
// evicted by ring wraparound are gone; assembly marks such traces
// partial rather than failing.
func (t *Tracer) SpansFor(traceID string) []Span {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	slots := t.byTrace[traceID]
	out := make([]Span, 0, len(slots))
	for _, idx := range slots {
		out = append(out, t.ring[idx])
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hop != out[j].Hop {
			return out[i].Hop < out[j].Hop
		}
		return out[i].StartNanos < out[j].StartNanos
	})
	return out
}

// TraceDump is the GET /debug/traces response body.
type TraceDump struct {
	Spans   int64  `json:"spans"`
	Recent  []Span `json:"recent"`
	Slowest []Span `json:"slowest"`
}

// Dump builds the /debug/traces payload with up to n spans per section.
func (t *Tracer) Dump(n int) TraceDump {
	if t == nil {
		return TraceDump{Recent: []Span{}, Slowest: []Span{}}
	}
	recent := t.Recent(n)
	if recent == nil {
		recent = []Span{}
	}
	slowest := t.Slowest(n)
	if slowest == nil {
		slowest = []Span{}
	}
	return TraceDump{Spans: t.SpanCount(), Recent: recent, Slowest: slowest}
}
